GO ?= go

.PHONY: check build vet test race bench bench-json fuzz serve-smoke

# check is the CI gate: vet, build everything, run the full suite with the
# race detector, then smoke the online serving layer end-to-end.
check: vet build race serve-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-json snapshots the engine micro-benchmarks (fused vs unfused narrow
# chains, streaming Cartesian, pre-sized Join, plus the RealParallel
# work-stealing scaling sweep from 1 worker to NumCPU appended into the
# same engine snapshot), the pairwise-distance kernel (legacy string-set vs
# interned merge-scan vs cache-tiled sweep), the speculative execution
# straggler exhibit (off/on makespan ratio), the candidate generation wall
# (prefix-filtered funnel vs extrapolated brute force on a 100k-report
# corpus), the executor-loss recovery exhibit (faulty/clean makespan ratio
# under deterministic kills), and the memory-pressure spill exhibit
# (budgeted/unbounded makespan ratio with byte-identical output) as
# test2json lines, seeding the perf trajectory across PRs.
bench-json:
	$(GO) test -run='^$$' -bench='NarrowChain|CartesianFilter|JoinPartition' -benchmem -json ./internal/rdd > BENCH_engine.json
	$(GO) test -run='^$$' -bench='RealParallelScaling' -benchmem -json ./internal/pairdist >> BENCH_engine.json
	$(GO) test -run='^$$' -bench='PairKernel|Extract' -benchmem -json ./internal/pairdist > BENCH_pairdist.json
	$(GO) test -run='^$$' -bench='SpeculationSkew' -benchtime=3x -json ./internal/experiments > BENCH_speculation.json
	$(GO) test -run='^$$' -bench='CandidateGen' -benchtime=1x -timeout=60m -json ./internal/experiments > BENCH_candidates.json
	$(GO) test -run='^$$' -bench='RecoveryOverhead' -benchtime=1x -json ./internal/experiments > BENCH_recovery.json
	$(GO) test -run='^$$' -bench='SpillOverhead' -benchtime=1x -json ./internal/experiments > BENCH_spill.json
	$(GO) test -run='^$$' -bench='ServeSustained' -benchtime=1x -timeout=30m -json ./internal/experiments > BENCH_serve.json

# fuzz runs each native fuzz target briefly (CI smoke; extend -fuzztime for
# real hunting).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzStem -fuzztime=10s ./internal/text
	$(GO) test -run='^$$' -fuzz=FuzzHashKey -fuzztime=10s ./internal/rdd
	$(GO) test -run='^$$' -fuzz=FuzzIntern -fuzztime=10s ./internal/intern
	$(GO) test -run='^$$' -fuzz=FuzzPrefixPlan -fuzztime=10s ./internal/candgen
	$(GO) test -run='^$$' -fuzz=FuzzCheckpointRoundTrip -fuzztime=10s ./internal/rdd
	$(GO) test -run='^$$' -fuzz=FuzzSpillCodec -fuzztime=10s ./internal/cluster
	$(GO) test -run='^$$' -fuzz=FuzzIngestRequest -fuzztime=10s ./internal/serve

# serve-smoke boots adrdedupd on a random port, drives 50k reports at it
# with adrload, and asserts zero errors, non-zero matches, and a clean
# SIGTERM drain.
serve-smoke:
	bash scripts/serve_smoke.sh
