GO ?= go

.PHONY: check build vet test race bench

# check is the CI gate: vet, build everything, run the full suite with the
# race detector.
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
