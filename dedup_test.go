package adrdedup

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"adrdedup/internal/adr"
	"adrdedup/internal/adrgen"
	"adrdedup/internal/cluster"
	"adrdedup/internal/core"
	"adrdedup/internal/pairdist"
	"adrdedup/internal/rdd"
)

// testCorpus returns a small deterministic corpus plus a detector pre-loaded
// with all but the last `holdout` reports.
func testCorpus(t *testing.T, holdout int) (*adrgen.Corpus, *Detector, []adr.Report) {
	t.Helper()
	c := adrgen.Generate(adrgen.Config{
		NumReports: 500, DuplicatePairs: 40, NumDrugs: 80, NumADRs: 120, Seed: 42,
	})
	det, err := New(Options{
		Cluster:    cluster.Config{Executors: 4, CoresPerExecutor: 2},
		Classifier: core.Config{K: 7, B: 8, C: 4, Theta: 0, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	cut := len(c.Reports) - holdout
	// Strip generator arrival sequences; the database assigns its own.
	existing := make([]adr.Report, cut)
	copy(existing, c.Reports[:cut])
	batch := make([]adr.Report, holdout)
	copy(batch, c.Reports[cut:])
	if err := det.AddKnownReports(existing); err != nil {
		t.Fatal(err)
	}
	return c, det, batch
}

// trainOnGroundTruth trains the detector on all duplicate pairs fully inside
// the loaded database plus sampled negatives.
func trainOnGroundTruth(t *testing.T, c *adrgen.Corpus, det *Detector, negatives int) {
	t.Helper()
	var labelled []LabeledCasePair
	for _, d := range c.Duplicates {
		if _, okA := det.Database().Get(d.CaseA); !okA {
			continue
		}
		if _, okB := det.Database().Get(d.CaseB); !okB {
			continue
		}
		labelled = append(labelled, LabeledCasePair{CaseA: d.CaseA, CaseB: d.CaseB, Duplicate: true})
	}
	// Negative sampling mirrors the paper's curated non-duplicate
	// database: it must contain the confusable pairs (same campaign)
	// alongside ordinary ones, or the classifier never learns the
	// boundary that matters.
	reports := det.Database().Reports()
	count := 0
	byCampaign := make(map[int][]int)
	for i, camp := range c.CampaignOf {
		if camp < 0 {
			continue
		}
		if _, ok := det.Database().Get(c.Reports[i].CaseNumber); ok {
			byCampaign[camp] = append(byCampaign[camp], i)
		}
	}
	// Iterate campaigns in sorted order: map iteration order would make
	// the training set differ run to run.
	campIDs := make([]int, 0, len(byCampaign))
	for id := range byCampaign {
		campIDs = append(campIDs, id)
	}
	sort.Ints(campIDs)
	hardBudget := negatives / 3
	for _, id := range campIDs {
		members := byCampaign[id]
		for i := 0; i+1 < len(members) && count < hardBudget; i++ {
			a, b := members[i], members[i+1]
			if c.IsDuplicatePair(a, b) {
				continue
			}
			labelled = append(labelled, LabeledCasePair{
				CaseA: c.Reports[a].CaseNumber, CaseB: c.Reports[b].CaseNumber,
			})
			count++
		}
	}
	step := len(reports)*len(reports)/(2*negatives) + 1
	for i := 0; i < len(reports) && count < negatives; i++ {
		for j := i + 1; j < len(reports) && count < negatives; j += step {
			a, b := reports[i], reports[j]
			if c.IsDuplicatePair(a.ArrivalSeq, b.ArrivalSeq) {
				continue
			}
			labelled = append(labelled, LabeledCasePair{CaseA: a.CaseNumber, CaseB: b.CaseNumber})
			count++
		}
	}
	if err := det.TrainFromLabeledCases(labelled); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidatesClassifierConfig(t *testing.T) {
	if _, err := New(Options{Classifier: core.Config{K: 4}}); err == nil {
		t.Error("even k must be rejected")
	}
}

func TestDetectRequiresTraining(t *testing.T) {
	det, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Detect([]adr.Report{{CaseNumber: "X"}}); err == nil {
		t.Error("Detect before training must fail")
	}
}

func TestTrainFromLabeledCasesUnknownCase(t *testing.T) {
	det, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = det.TrainFromLabeledCases([]LabeledCasePair{{CaseA: "nope", CaseB: "also-nope"}})
	if err == nil {
		t.Error("unknown case numbers must fail")
	}
	if err := det.TrainFromLabeledCases(nil); err == nil {
		t.Error("empty training must fail")
	}
}

func TestEndToEndDetectFindsInjectedDuplicate(t *testing.T) {
	c, det, batch := testCorpus(t, 20)
	trainOnGroundTruth(t, c, det, 2000)
	if !det.Trained() {
		t.Fatal("not trained")
	}

	// Find a ground-truth duplicate pair with one half in the batch and
	// one half in the database; there is usually at least one with a
	// 20-report batch and 40 duplicate pairs.
	type target struct{ inDB, inBatch string }
	var targets []target
	inBatch := make(map[string]bool)
	for _, r := range batch {
		inBatch[r.CaseNumber] = true
	}
	for _, d := range c.Duplicates {
		_, aDB := det.Database().Get(d.CaseA)
		_, bDB := det.Database().Get(d.CaseB)
		switch {
		case aDB && inBatch[d.CaseB]:
			targets = append(targets, target{inDB: d.CaseA, inBatch: d.CaseB})
		case bDB && inBatch[d.CaseA]:
			targets = append(targets, target{inDB: d.CaseB, inBatch: d.CaseA})
		}
	}

	matches, err := det.Detect(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no matches returned")
	}
	found := make(map[[2]string]Match)
	for _, m := range matches {
		found[[2]string{m.CaseA, m.CaseB}] = m
		found[[2]string{m.CaseB, m.CaseA}] = m
	}
	if len(targets) > 0 {
		recovered := 0
		for _, tg := range targets {
			if m, ok := found[[2]string{tg.inDB, tg.inBatch}]; ok && m.Duplicate {
				recovered++
			}
		}
		if recovered == 0 {
			t.Errorf("none of %d cross-batch ground-truth duplicates detected", len(targets))
		}
	}
	// Matches must be sorted by descending score.
	for i := 1; i < len(matches); i++ {
		if matches[i].Score > matches[i-1].Score {
			t.Fatal("matches not sorted by score")
		}
	}
	// Precision sanity: most positive decisions should be true duplicates.
	dups := Duplicates(matches)
	if len(dups) > 0 {
		correct := 0
		for _, m := range dups {
			a, _ := det.Database().Get(m.CaseA)
			b, _ := det.Database().Get(m.CaseB)
			if c.IsDuplicatePair(a.ArrivalSeq, b.ArrivalSeq) {
				correct++
			}
		}
		if float64(correct) < 0.5*float64(len(dups)) {
			t.Errorf("only %d/%d detected duplicates are real", correct, len(dups))
		}
	}
	// The batch was absorbed: database grew.
	if det.Database().Len() != 500 {
		t.Errorf("database has %d reports, want 500", det.Database().Len())
	}
}

func TestDetectEmptyBatch(t *testing.T) {
	c, det, _ := testCorpus(t, 10)
	trainOnGroundTruth(t, c, det, 500)
	matches, err := det.Detect(nil)
	if err != nil || matches != nil {
		t.Errorf("empty batch: %v, %v", matches, err)
	}
}

func TestDetectAllIncludesPruned(t *testing.T) {
	c := adrgen.Generate(adrgen.Config{
		NumReports: 300, DuplicatePairs: 25, NumDrugs: 50, NumADRs: 80, Seed: 7,
	})
	det, err := New(Options{
		Cluster: cluster.Config{Executors: 2},
		Classifier: core.Config{K: 5, B: 4, C: 2, Seed: 2,
			Pruning: &core.PruningConfig{Clusters: 4, FTheta: 0.25}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := det.AddKnownReports(c.Reports[:290]); err != nil {
		t.Fatal(err)
	}
	trainOnGroundTruth(t, c, det, 800)
	all, err := det.DetectAll(c.Reports[290:])
	if err != nil {
		t.Fatal(err)
	}
	pruned := 0
	for _, m := range all {
		if m.Pruned {
			pruned++
		}
	}
	if pruned == 0 {
		t.Error("expected some pruned candidate pairs with pruning enabled")
	}
	concise, err := det.Detect(nil)
	_ = concise
	if err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalBatchesAccumulate(t *testing.T) {
	c, det, batch := testCorpus(t, 30)
	trainOnGroundTruth(t, c, det, 1000)
	first := batch[:15]
	second := batch[15:]
	if _, err := det.Detect(first); err != nil {
		t.Fatal(err)
	}
	lenAfterFirst := det.Database().Len()
	if _, err := det.Detect(second); err != nil {
		t.Fatal(err)
	}
	if det.Database().Len() != lenAfterFirst+15 {
		t.Errorf("second batch not absorbed: %d", det.Database().Len())
	}
}

func TestTrainFromIDPairsMatchesLabeledCases(t *testing.T) {
	c, det, _ := testCorpus(t, 10)
	_ = c
	ids := []pairdist.IDPair{{A: 0, B: 1, Label: -1}, {A: 2, B: 3, Label: +1}, {A: 4, B: 5, Label: -1}}
	if err := det.TrainFromIDPairs(ids); err != nil {
		t.Fatal(err)
	}
	if det.TrainingSize() != 3 {
		t.Errorf("training size = %d", det.TrainingSize())
	}
}

func TestCandidateBlockingKeepsDuplicatesCutsPairs(t *testing.T) {
	c := adrgen.Generate(adrgen.Config{
		NumReports: 500, DuplicatePairs: 40, NumDrugs: 80, NumADRs: 120, Seed: 42,
	})
	build := func(blocking bool) (*Detector, []adr.Report) {
		det, err := New(Options{
			Cluster:           cluster.Config{Executors: 4},
			Classifier:        core.Config{K: 7, B: 8, C: 4, Seed: 1},
			CandidateBlocking: blocking,
		})
		if err != nil {
			t.Fatal(err)
		}
		cut := len(c.Reports) - 20
		existing := make([]adr.Report, cut)
		copy(existing, c.Reports[:cut])
		batch := make([]adr.Report, 20)
		copy(batch, c.Reports[cut:])
		if err := det.AddKnownReports(existing); err != nil {
			t.Fatal(err)
		}
		trainOnGroundTruth(t, c, det, 1000)
		return det, batch
	}

	detFull, batch := build(false)
	full, err := detFull.Detect(batch)
	if err != nil {
		t.Fatal(err)
	}
	detBlocked, batch2 := build(true)
	blocked, err := detBlocked.Detect(batch2)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocked) >= len(full) {
		t.Errorf("blocking scored %d pairs vs exhaustive %d; expected far fewer", len(blocked), len(full))
	}
	// Every ground-truth duplicate flagged by the exhaustive run must
	// still be flagged under blocking (duplicates share their drug).
	flaggedBlocked := make(map[[2]string]bool)
	for _, m := range Duplicates(blocked) {
		flaggedBlocked[[2]string{m.CaseA, m.CaseB}] = true
		flaggedBlocked[[2]string{m.CaseB, m.CaseA}] = true
	}
	for _, m := range Duplicates(full) {
		a, _ := detFull.Database().Get(m.CaseA)
		b, _ := detFull.Database().Get(m.CaseB)
		if !c.IsDuplicatePair(a.ArrivalSeq, b.ArrivalSeq) {
			continue
		}
		if !flaggedBlocked[[2]string{m.CaseA, m.CaseB}] {
			t.Errorf("blocking lost true duplicate %s/%s", m.CaseA, m.CaseB)
		}
	}
}

func TestSaveLoadModelOnDetector(t *testing.T) {
	c, det, batch := testCorpus(t, 10)
	trainOnGroundTruth(t, c, det, 800)
	var buf bytes.Buffer
	if err := det.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}

	// Fresh detector, same database contents, model loaded instead of
	// retrained: Detect must work and produce scored matches.
	det2, err := New(Options{
		Cluster:    cluster.Config{Executors: 2},
		Classifier: core.Config{K: 7, B: 8, C: 4, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	existing := make([]adr.Report, 490)
	copy(existing, c.Reports[:490])
	for i := range existing {
		existing[i].ArrivalSeq = 0
	}
	if err := det2.AddKnownReports(existing); err != nil {
		t.Fatal(err)
	}
	if err := det2.LoadModel(&buf); err != nil {
		t.Fatal(err)
	}
	if !det2.Trained() {
		t.Fatal("loaded detector not trained")
	}
	matches, err := det2.Detect(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Error("loaded model produced no matches")
	}

	// Saving before training must fail.
	det3, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := det3.SaveModel(&bytes.Buffer{}); err == nil {
		t.Error("SaveModel before training must fail")
	}
}

func TestValidateBatch(t *testing.T) {
	det, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	batch := []adr.Report{
		{CaseNumber: "OK", CalculatedAge: 30, Sex: "F",
			GenericNameDesc: "Atorvastatin", MedDRAPTName: "Myalgia"},
		{CaseNumber: "BAD", CalculatedAge: 400, Sex: "Z"},
		{CalculatedAge: 30, GenericNameDesc: "X", MedDRAPTName: "Y"}, // no case number
	}
	issues := det.ValidateBatch(batch)
	if len(issues) != 2 {
		t.Fatalf("flagged %d reports, want 2: %v", len(issues), issues)
	}
	if len(issues["BAD"]) < 2 {
		t.Errorf("BAD issues = %v", issues["BAD"])
	}
	if _, ok := issues["OK"]; ok {
		t.Error("clean report flagged")
	}
}

func TestDetectUnderFaultInjectionMatchesCleanRun(t *testing.T) {
	c := adrgen.Generate(adrgen.Config{
		NumReports: 400, DuplicatePairs: 30, NumDrugs: 60, NumADRs: 90, Seed: 21,
	})
	run := func(failureRate float64) []Match {
		det, err := New(Options{
			Cluster: cluster.Config{
				Executors: 4, FailureRate: failureRate, MaxTaskRetries: 40, Seed: 9,
			},
			Classifier: core.Config{K: 7, B: 6, C: 3, Seed: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		existing := make([]adr.Report, 385)
		copy(existing, c.Reports[:385])
		batch := make([]adr.Report, 15)
		copy(batch, c.Reports[385:])
		for i := range existing {
			existing[i].ArrivalSeq = 0
		}
		for i := range batch {
			batch[i].ArrivalSeq = 0
		}
		if err := det.AddKnownReports(existing); err != nil {
			t.Fatal(err)
		}
		trainOnGroundTruth(t, c, det, 600)
		matches, err := det.Detect(batch)
		if err != nil {
			t.Fatal(err)
		}
		return matches
	}
	clean := run(0)
	faulty := run(0.2)
	if len(clean) != len(faulty) {
		t.Fatalf("match counts differ: %d vs %d", len(clean), len(faulty))
	}
	for i := range clean {
		if clean[i].CaseA != faulty[i].CaseA || clean[i].CaseB != faulty[i].CaseB ||
			clean[i].Duplicate != faulty[i].Duplicate {
			t.Fatalf("fault injection changed match %d: %+v vs %+v", i, clean[i], faulty[i])
		}
	}
}

// TestDetectMatchesLegacyKernelBitExact runs the full pipeline twice over
// the same corpus — once on the interned merge-scan kernel, once with
// interning disabled so every distance goes through the legacy string-set
// kernel — and requires the Detect output to be identical, scores compared
// bit-exactly. This is the end-to-end guarantee on top of the per-pair
// differential tests in internal/pairdist.
func TestDetectMatchesLegacyKernelBitExact(t *testing.T) {
	run := func(legacy bool) []Match {
		c, det, batch := testCorpus(t, 20)
		det.disableInterning = legacy
		if legacy {
			// testCorpus already featurized the database through the
			// interned path; rebuild everything through the oracle.
			det.feats = det.feats[:0]
			if err := det.extendFeatures(); err != nil {
				t.Fatal(err)
			}
		}
		for i := range det.feats {
			if det.feats[i].Interned == legacy {
				t.Fatalf("feature %d: Interned=%v in legacy=%v run", i, det.feats[i].Interned, legacy)
			}
		}
		trainOnGroundTruth(t, c, det, 2000)
		matches, err := det.DetectAll(batch)
		if err != nil {
			t.Fatal(err)
		}
		// Detect sorts by descending score with an unstable sort; order
		// ties deterministically by case pair before comparing.
		sort.Slice(matches, func(i, j int) bool {
			if matches[i].CaseA != matches[j].CaseA {
				return matches[i].CaseA < matches[j].CaseA
			}
			return matches[i].CaseB < matches[j].CaseB
		})
		return matches
	}
	interned := run(false)
	oracle := run(true)
	if len(interned) != len(oracle) {
		t.Fatalf("match counts differ: interned %d vs legacy %d", len(interned), len(oracle))
	}
	for i := range interned {
		if interned[i] != oracle[i] {
			t.Fatalf("match %d differs: interned %+v vs legacy %+v", i, interned[i], oracle[i])
		}
	}
	if len(Duplicates(interned)) == 0 {
		t.Fatal("differential run found no duplicates; test would be vacuous")
	}
}

// TestBlockedCandidatesMatchStringIndexReference pins the interned-ID
// inverted index in blockedCandidates to a straightforward string-keyed
// reference over the same features: identical candidate pair sets.
func TestBlockedCandidatesMatchStringIndexReference(t *testing.T) {
	c, det, batch := testCorpus(t, 20)
	_ = c
	if err := det.db.Add(batch...); err != nil {
		t.Fatal(err)
	}
	if err := det.extendFeatures(); err != nil {
		t.Fatal(err)
	}
	existing := det.db.Len() - len(batch)
	total := det.db.Len()
	got := det.blockedCandidates(existing, total)

	byTerm := make(map[string][]int)
	for i := 0; i < total; i++ {
		for _, s := range det.feats[i].DrugSet {
			byTerm["drug\x00"+s] = append(byTerm["drug\x00"+s], i)
		}
		for _, s := range det.feats[i].ADRSet {
			byTerm["adr\x00"+s] = append(byTerm["adr\x00"+s], i)
		}
	}
	want := make(map[[2]int]bool)
	for b := existing; b < total; b++ {
		for kind, terms := range map[string][]string{
			"drug\x00": det.feats[b].DrugSet, "adr\x00": det.feats[b].ADRSet,
		} {
			for _, s := range terms {
				for _, a := range byTerm[kind+s] {
					if a < b {
						want[[2]int{a, b}] = true
					}
				}
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("blocked candidates: %d pairs, reference %d", len(got), len(want))
	}
	for _, p := range got {
		if !want[[2]int{p.A, p.B}] {
			t.Errorf("pair (%d,%d) not in string-indexed reference", p.A, p.B)
		}
	}
	if len(got) == 0 {
		t.Fatal("no blocked candidates; test would be vacuous")
	}
}

func TestMetricsExposed(t *testing.T) {
	c, det, _ := testCorpus(t, 10)
	_ = c
	m := det.Metrics()
	if m.RecordsProcessed == 0 {
		t.Error("feature extraction should have processed records")
	}
	if det.Engine() == nil {
		t.Error("engine must be exposed")
	}
}

// TestDetectRollsBackOnEngineFailure pins the atomicity of Detect on the
// early error path: the batch is absorbed into the database *before*
// feature extraction, so a failed extraction must put the database back or
// the batch is silently lost — a retry then failed on its own case numbers
// instead of detecting anything.
func TestDetectRollsBackOnEngineFailure(t *testing.T) {
	c, det, batch := testCorpus(t, 20)
	trainOnGroundTruth(t, c, det, 2000)
	existing := det.Database().Len()
	nFeats := len(det.feats)

	// Swap in an engine whose tasks always fail: extraction of the new
	// batch dies after the database has absorbed it.
	goodCl, goodCtx := det.cl, det.ctx
	badCl := cluster.New(cluster.Config{Executors: 2, FailureRate: 1, MaxTaskRetries: 1, Seed: 5})
	det.cl, det.ctx = badCl, rdd.NewContext(badCl)
	if _, err := det.Detect(batch); err == nil {
		t.Fatal("expected Detect to fail on the always-failing engine")
	}
	det.cl, det.ctx = goodCl, goodCtx

	if got := det.Database().Len(); got != existing {
		t.Fatalf("failed Detect left the database at %d reports, want %d", got, existing)
	}
	if got := len(det.feats); got != nFeats {
		t.Fatalf("failed Detect left %d features, want %d", got, nFeats)
	}

	// The same batch retried must now be fully processed.
	matches, err := det.Detect(batch)
	if err != nil {
		t.Fatalf("retrying the batch after a failed Detect: %v", err)
	}
	if len(matches) == 0 {
		t.Fatal("retried Detect returned no matches")
	}
	if got := det.Database().Len(); got != existing+len(batch) {
		t.Fatalf("retried Detect absorbed to %d reports, want %d", got, existing+len(batch))
	}
	_ = c
}

// TestDetectRollsBackOnClassifierFailure pins the late error path: the
// failure strikes *after* the batch's features were extracted and appended,
// so both the database and the feature slice must roll back together.
func TestDetectRollsBackOnClassifierFailure(t *testing.T) {
	c, det, batch := testCorpus(t, 20)
	trainOnGroundTruth(t, c, det, 2000)
	existing := det.Database().Len()
	nFeats := len(det.feats)

	// A classifier trained on 5-dimensional vectors rejects the
	// 7-dimensional pair vectors, deterministically failing Detect at the
	// classification step.
	goodClf := det.clf
	bogus := make([]core.TrainingPair, 8)
	for i := range bogus {
		v := make([]float64, 5)
		v[i%5] = float64(i + 1)
		label := -1
		if i%2 == 0 {
			label = 1
		}
		bogus[i] = core.TrainingPair{Vec: v, Label: label}
	}
	badClf, err := core.Train(det.ctx, bogus, core.Config{K: 1, B: 2, C: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	det.clf = badClf
	if _, err := det.Detect(batch); err == nil {
		t.Fatal("expected Detect to fail on the wrong-dimension classifier")
	}
	det.clf = goodClf

	if got := det.Database().Len(); got != existing {
		t.Fatalf("failed Detect left the database at %d reports, want %d", got, existing)
	}
	if got := len(det.feats); got != nFeats {
		t.Fatalf("failed Detect left %d features, want %d (features not rolled back)", got, nFeats)
	}

	matches, err := det.Detect(batch)
	if err != nil {
		t.Fatalf("retrying the batch after a failed Detect: %v", err)
	}
	if len(matches) == 0 {
		t.Fatal("retried Detect returned no matches")
	}
	if got := det.Database().Len(); got != existing+len(batch) {
		t.Fatalf("retried Detect absorbed to %d reports, want %d", got, existing+len(batch))
	}
	_ = c
}

// TestDetectMatchOrderDeterministic pins the total order of Detect's output:
// descending score, ties broken by (CaseA, CaseB). kNN scores take at most
// k+1 distinct values, so equal-score runs are long and an unstable sort
// keyed on score alone shuffled them unpredictably.
func TestDetectMatchOrderDeterministic(t *testing.T) {
	run := func() []Match {
		c, det, batch := testCorpus(t, 20)
		trainOnGroundTruth(t, c, det, 2000)
		matches, err := det.DetectAll(batch)
		if err != nil {
			t.Fatal(err)
		}
		return matches
	}
	matches := run()
	if len(matches) < 2 {
		t.Fatalf("only %d matches; ordering test is vacuous", len(matches))
	}
	ties := 0
	for i := 1; i < len(matches); i++ {
		a, b := matches[i-1], matches[i]
		if a.Score < b.Score {
			t.Fatalf("matches %d,%d not in descending score order: %v < %v", i-1, i, a.Score, b.Score)
		}
		if a.Score == b.Score {
			ties++
			if a.CaseA > b.CaseA || (a.CaseA == b.CaseA && a.CaseB >= b.CaseB) {
				t.Fatalf("equal-score matches %d,%d not ordered by case numbers: (%s,%s) before (%s,%s)",
					i-1, i, a.CaseA, a.CaseB, b.CaseA, b.CaseB)
			}
		}
	}
	if ties == 0 {
		t.Fatal("no equal-score runs in output; tie-break untested")
	}
	// A fully independent re-run must reproduce the identical sequence.
	again := run()
	if len(again) != len(matches) {
		t.Fatalf("re-run returned %d matches, first run %d", len(again), len(matches))
	}
	for i := range matches {
		if matches[i] != again[i] {
			t.Fatalf("match %d differs between identical runs: %+v vs %+v", i, matches[i], again[i])
		}
	}
}

// TestCandidatePrefixIndexKeepsDuplicatesCutsPairs runs the full pipeline
// under the prefix-filtered candidate generator: far fewer pairs are scored
// than exhaustively, and every ground-truth duplicate the exhaustive run
// flags survives (duplicate reports re-describe the same drugs, reactions,
// and narrative, so their signature overlap clears the threshold).
func TestCandidatePrefixIndexKeepsDuplicatesCutsPairs(t *testing.T) {
	c := adrgen.Generate(adrgen.Config{
		NumReports: 500, DuplicatePairs: 40, NumDrugs: 80, NumADRs: 120, Seed: 42,
	})
	build := func(strategy CandidateStrategy) (*Detector, []adr.Report) {
		det, err := New(Options{
			Cluster:        cluster.Config{Executors: 4},
			Classifier:     core.Config{K: 7, B: 8, C: 4, Seed: 1},
			Candidates:     strategy,
			CandidateTheta: 0.25,
		})
		if err != nil {
			t.Fatal(err)
		}
		cut := len(c.Reports) - 20
		existing := make([]adr.Report, cut)
		copy(existing, c.Reports[:cut])
		batch := make([]adr.Report, 20)
		copy(batch, c.Reports[cut:])
		if err := det.AddKnownReports(existing); err != nil {
			t.Fatal(err)
		}
		trainOnGroundTruth(t, c, det, 1000)
		return det, batch
	}

	detFull, batch := build(CandidateBruteForce)
	full, err := detFull.DetectAll(batch)
	if err != nil {
		t.Fatal(err)
	}
	detPrefix, batch2 := build(CandidatePrefixIndex)
	prefixed, err := detPrefix.DetectAll(batch2)
	if err != nil {
		t.Fatal(err)
	}
	if len(prefixed) == 0 {
		t.Fatal("prefix-index run scored no pairs")
	}
	if len(prefixed)*2 >= len(full) {
		t.Errorf("prefix index scored %d pairs vs exhaustive %d; expected far fewer", len(prefixed), len(full))
	}
	flagged := make(map[[2]string]bool)
	for _, m := range Duplicates(prefixed) {
		flagged[[2]string{m.CaseA, m.CaseB}] = true
		flagged[[2]string{m.CaseB, m.CaseA}] = true
	}
	for _, m := range Duplicates(full) {
		a, _ := detFull.Database().Get(m.CaseA)
		b, _ := detFull.Database().Get(m.CaseB)
		if !c.IsDuplicatePair(a.ArrivalSeq, b.ArrivalSeq) {
			continue
		}
		if !flagged[[2]string{m.CaseA, m.CaseB}] {
			t.Errorf("prefix index lost true duplicate %s/%s", m.CaseA, m.CaseB)
		}
	}
}

// blockTestDetector builds a CandidateBlock detector over the shared test
// corpus, pre-loaded with all but the last `holdout` reports and trained on
// ground truth — the fixture for the incremental-index tests below.
func blockTestDetector(t *testing.T, holdout int) (*adrgen.Corpus, *Detector, []adr.Report) {
	t.Helper()
	c := adrgen.Generate(adrgen.Config{
		NumReports: 500, DuplicatePairs: 40, NumDrugs: 80, NumADRs: 120, Seed: 42,
	})
	det, err := New(Options{
		Cluster:    cluster.Config{Executors: 4, CoresPerExecutor: 2},
		Classifier: core.Config{K: 7, B: 8, C: 4, Theta: 0, Seed: 1},
		Candidates: CandidateBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	cut := len(c.Reports) - holdout
	existing := make([]adr.Report, cut)
	copy(existing, c.Reports[:cut])
	batch := make([]adr.Report, holdout)
	copy(batch, c.Reports[cut:])
	if err := det.AddKnownReports(existing); err != nil {
		t.Fatal(err)
	}
	trainOnGroundTruth(t, c, det, 2000)
	return c, det, batch
}

// rebuildTermIndex re-derives the blocking index from scratch over a
// detector's current features — the reference the incrementally-maintained
// index is compared against.
func rebuildTermIndex(d *Detector) map[uint64][]int32 {
	fresh := &Detector{feats: d.feats}
	fresh.extendTermIndex(len(d.feats))
	if fresh.termIndex == nil {
		fresh.termIndex = map[uint64][]int32{}
	}
	return fresh.termIndex
}

func sortCasePairs(matches []Match) {
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].CaseA != matches[j].CaseA {
			return matches[i].CaseA < matches[j].CaseA
		}
		return matches[i].CaseB < matches[j].CaseB
	})
}

// TestBlockedIndexIncrementalEqualsOneShot pins the incremental blocking
// index across Detect calls: detecting a stream in several batches must
// score the identical match set as one Detect over the whole stream, and the
// incrementally-extended index must equal a from-scratch rebuild. This is
// what lets a long-lived ingest service (internal/serve) append postings per
// arrival instead of re-indexing the database every batch.
func TestBlockedIndexIncrementalEqualsOneShot(t *testing.T) {
	_, detInc, batch := blockTestDetector(t, 30)
	var union []Match
	for _, chunk := range [][]adr.Report{batch[:7], batch[7:8], batch[8:20], batch[20:]} {
		m, err := detInc.DetectAll(chunk)
		if err != nil {
			t.Fatal(err)
		}
		union = append(union, m...)
	}
	if got, want := detInc.termIndexed, len(detInc.feats); got != want {
		t.Fatalf("index covers %d features, want %d", got, want)
	}
	if !reflect.DeepEqual(detInc.termIndex, rebuildTermIndex(detInc)) {
		t.Fatal("incrementally-extended term index differs from a from-scratch rebuild")
	}

	_, detOne, batch2 := blockTestDetector(t, 30)
	oneShot, err := detOne.DetectAll(batch2)
	if err != nil {
		t.Fatal(err)
	}

	sortCasePairs(union)
	sortCasePairs(oneShot)
	if !reflect.DeepEqual(union, oneShot) {
		t.Fatalf("incremental union (%d matches) differs from one-shot Detect (%d matches)",
			len(union), len(oneShot))
	}
	if len(Duplicates(union)) == 0 {
		t.Fatal("no duplicates found; equivalence test would be vacuous")
	}
}

// TestBlockedIndexRollsBackOnFailedDetect: a failed Detect must pop the
// failed batch's postings back off the index, or every later batch would be
// paired against reports that are no longer in the database.
func TestBlockedIndexRollsBackOnFailedDetect(t *testing.T) {
	_, det, batch := blockTestDetector(t, 20)
	// Warm the index past the seed database.
	if _, err := det.Detect(batch[:5]); err != nil {
		t.Fatal(err)
	}

	// Same wrong-dimension classifier trick as the rollback tests above:
	// Detect fails after features (and postings) were appended.
	goodClf := det.clf
	bogus := make([]core.TrainingPair, 8)
	for i := range bogus {
		v := make([]float64, 5)
		v[i%5] = float64(i + 1)
		label := -1
		if i%2 == 0 {
			label = 1
		}
		bogus[i] = core.TrainingPair{Vec: v, Label: label}
	}
	badClf, err := core.Train(det.ctx, bogus, core.Config{K: 1, B: 2, C: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	det.clf = badClf
	if _, err := det.Detect(batch[5:15]); err == nil {
		t.Fatal("expected Detect to fail on the wrong-dimension classifier")
	}
	det.clf = goodClf

	if got, want := det.termIndexed, len(det.feats); got != want {
		t.Fatalf("after rollback the index covers %d features, want %d", got, want)
	}
	if !reflect.DeepEqual(det.termIndex, rebuildTermIndex(det)) {
		t.Fatal("rolled-back term index differs from a from-scratch rebuild")
	}

	// The failed batch retried, then the rest: all postings land once.
	for _, chunk := range [][]adr.Report{batch[5:15], batch[15:]} {
		if _, err := det.Detect(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(det.termIndex, rebuildTermIndex(det)) {
		t.Fatal("term index diverged from rebuild after retry")
	}
}

// TestDetectReleasesShuffleState pins the serving-layer memory contract: a
// Detect call releases its own shuffle map outputs on exit, so a long-lived
// detector (the online service) stays flat across an unbounded stream of
// batches instead of retaining every batch's shuffles for the cluster's
// lifetime. Training-era shuffles are left alone.
func TestDetectReleasesShuffleState(t *testing.T) {
	_, det, batch := blockTestDetector(t, 20)
	shuffles := det.Engine().Cluster().Shuffles()
	before := shuffles.Registered()
	mark := shuffles.Mark()
	for i := 0; i < 4; i++ {
		lo, hi := i*5, (i+1)*5
		if _, err := det.Detect(batch[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if shuffles.Mark() == mark {
		t.Fatal("Detect registered no shuffles; test is vacuous")
	}
	if got := shuffles.Registered(); got != before {
		t.Fatalf("registered shuffles grew from %d to %d across 4 Detects; per-batch state leaked", before, got)
	}
}
