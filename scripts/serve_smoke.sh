#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the online serving layer.
#
# Builds adrdedupd and adrload, boots the daemon on a random port with a
# small bootstrap, pushes 50k synthetic reports at it, and asserts:
#   - the load run finishes with zero errors and a non-zero match count
#   - the daemon's /v1/stats agrees it ingested every report
#   - SIGTERM drains gracefully and the daemon exits 0
set -euo pipefail

cd "$(dirname "$0")/.."
TMP="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
    if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -KILL "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "serve-smoke: building binaries"
go build -o "$TMP/adrdedupd" ./cmd/adrdedupd
go build -o "$TMP/adrload" ./cmd/adrload

echo "serve-smoke: booting adrdedupd"
"$TMP/adrdedupd" \
    -addr 127.0.0.1:0 \
    -seed-reports 1000 -seed-dups 50 -train-pairs 800 \
    -workers 2 -queue-depth 64 \
    -candidates prefix-index -cand-theta 0.8 \
    >"$TMP/daemon.out" 2>"$TMP/daemon.err" &
DAEMON_PID=$!

# The daemon prints "adrdedupd: listening on http://HOST:PORT" on stdout
# once the bootstrap finishes; wait for it.
BASE_URL=""
for _ in $(seq 1 300); do
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "serve-smoke: daemon died during bootstrap" >&2
        cat "$TMP/daemon.err" >&2
        exit 1
    fi
    BASE_URL="$(sed -n 's/^adrdedupd: listening on \(http:.*\)$/\1/p' "$TMP/daemon.out")"
    [[ -n "$BASE_URL" ]] && break
    sleep 0.2
done
if [[ -z "$BASE_URL" ]]; then
    echo "serve-smoke: daemon never reported its listen address" >&2
    cat "$TMP/daemon.err" >&2
    exit 1
fi
echo "serve-smoke: daemon up at $BASE_URL (pid $DAEMON_PID)"

echo "serve-smoke: driving 50k reports"
"$TMP/adrload" \
    -addr "$BASE_URL" \
    -count 50000 -batch-size 1000 -workers 2 \
    -report-interval 10s \
    -summary-json "$TMP/load.json" \
    | tee "$TMP/load.out"

SUMMARY="$(grep '^adrload: sent=' "$TMP/load.out")"
SENT="$(sed -n 's/.*sent=\([0-9]*\).*/\1/p' <<<"$SUMMARY")"
ERRORS="$(sed -n 's/.*errors=\([0-9]*\).*/\1/p' <<<"$SUMMARY")"
MATCHED="$(sed -n 's/.*matched=\([0-9]*\).*/\1/p' <<<"$SUMMARY")"
if [[ "$SENT" != "50000" || "$ERRORS" != "0" ]]; then
    echo "serve-smoke: FAIL: sent=$SENT errors=$ERRORS (want 50000/0)" >&2
    exit 1
fi
if [[ "$MATCHED" -le 0 ]]; then
    echo "serve-smoke: FAIL: no duplicates matched" >&2
    exit 1
fi

STATS="$(curl -fsS "$BASE_URL/v1/stats")"
echo "serve-smoke: /v1/stats: $STATS"
if ! grep -q '"ingested":50000' <<<"$STATS"; then
    echo "serve-smoke: FAIL: daemon stats disagree with the load summary" >&2
    exit 1
fi

echo "serve-smoke: draining daemon with SIGTERM"
kill -TERM "$DAEMON_PID"
EXIT=0
wait "$DAEMON_PID" || EXIT=$?
if [[ "$EXIT" != "0" ]]; then
    echo "serve-smoke: FAIL: daemon exited $EXIT after SIGTERM" >&2
    cat "$TMP/daemon.err" >&2
    exit 1
fi
DAEMON_PID=""

echo "serve-smoke: PASS (sent=$SENT matched=$MATCHED errors=$ERRORS)"
