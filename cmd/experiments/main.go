// Command experiments regenerates the tables and figures of Wang & Karimi
// (EDBT 2016) on the synthetic TGA-profile corpus. Each subcommand prints
// the rows or series of one exhibit; "all" runs everything.
//
// Usage:
//
//	experiments [flags] <table1|table2|table3|fig5|fig6|fig7|fig8|fig9|fig10|fig11|ablation|loadbalance|speculation|recovery|candidates|spill|all>
//
// Pair counts default to one tenth of the paper's (100k-500k instead of
// 1M-5M); -scale multiplies them back up (-scale 10 reproduces paper-scale
// counts, at a correspondingly longer runtime). Reported execution times are
// virtual cluster times; see DESIGN.md §6.
//
// -real-parallel runs the shared experiment cluster's stages on the
// work-stealing worker pool (-workers, default NumCPU) instead of
// goroutine-per-task; results and committed counters are bit-identical, only
// host wall-clock changes. -cpuprofile and -memprofile write runtime/pprof
// profiles of the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"adrdedup/internal/cluster"
	"adrdedup/internal/eval"
	"adrdedup/internal/experiments"
	"adrdedup/internal/prof"
)

func main() {
	scale := flag.Float64("scale", 1, "multiplier on pair-set sizes (10 = paper scale)")
	seed := flag.Int64("seed", 1, "corpus and sampling seed")
	quick := flag.Bool("quick", false, "reduced corpus and pair counts for smoke runs")
	tracePath := flag.String("trace", "", "write a JSON stage/task trace event log to this file and print a per-stage summary to stderr")
	metricsPath := flag.String("metrics-out", "", "write the final cluster metrics snapshot as JSON to this file")
	realParallel := flag.Bool("real-parallel", false, "run stages on the work-stealing worker pool instead of goroutine-per-task (bit-identical results)")
	workers := flag.Int("workers", 0, "worker-pool size for -real-parallel (0 = NumCPU)")
	cpuProfile := flag.String("cpuprofile", "", "write a runtime/pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a runtime/pprof heap profile at the end of the run to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [flags] <exhibit>\n")
		fmt.Fprintf(os.Stderr, "exhibits: table1 table2 table3 fig5 fig6 fig7 fig8 fig9 fig10 fig11 ablation loadbalance speculation recovery candidates spill all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	profile, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	r := &runner{
		scale: *scale, seed: *seed, quick: *quick,
		trace: *tracePath, metricsOut: *metricsPath,
		realParallel: *realParallel, workers: *workers,
	}
	runErr := r.run(flag.Arg(0))
	// Export observability artifacts even after a failed exhibit: a trace
	// of the failing run is exactly what's needed to debug it.
	artErr := r.writeArtifacts()
	profErr := profile.Stop()
	for _, e := range []error{artErr, profErr, runErr} {
		if e != nil {
			fmt.Fprintln(os.Stderr, "experiments:", e)
		}
	}
	if artErr != nil || profErr != nil || runErr != nil {
		os.Exit(1)
	}
}

type runner struct {
	scale        float64
	seed         int64
	quick        bool
	trace        string
	metricsOut   string
	realParallel bool
	workers      int
	env          *experiments.Env
}

// writeArtifacts exports the trace event log (spanning every engine reset of
// the run) and the final cluster's metrics snapshot, if requested.
func (r *runner) writeArtifacts() error {
	if r.env == nil {
		return nil
	}
	cl := r.env.Ctx.Cluster()
	if r.trace != "" {
		f, err := os.Create(r.trace)
		if err != nil {
			return err
		}
		if err := cl.Tracer().WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", r.trace, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "\ntrace: %d events written to %s (%d dropped)\n",
			cl.Tracer().Len(), r.trace, cl.Tracer().Dropped())
		fmt.Fprintln(os.Stderr, "per-stage summary (current engine, most recent 512 stages):")
		cluster.WriteStageSummary(os.Stderr, cl.StageHistory())
	}
	if r.metricsOut != "" {
		f, err := os.Create(r.metricsOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cl.Metrics().Snapshot()); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", r.metricsOut, err)
		}
		return f.Close()
	}
	return nil
}

func (r *runner) run(exhibit string) error {
	switch exhibit {
	case "table1", "table2", "table3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "ablation", "loadbalance", "speculation", "recovery", "candidates", "spill":
		return r.dispatch(exhibit)
	case "all":
		for _, e := range []string{"table1", "table2", "table3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "ablation", "loadbalance", "speculation", "recovery", "candidates", "spill"} {
			fmt.Printf("==================== %s ====================\n", e)
			if err := r.dispatch(e); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown exhibit %q", exhibit)
	}
}

// n scales a default pair count.
func (r *runner) n(base int) int {
	if r.quick {
		base /= 10
	}
	return int(float64(base) * r.scale)
}

func (r *runner) environment() (*experiments.Env, error) {
	if r.env != nil {
		return r.env, nil
	}
	corpus := experiments.DefaultCorpus(r.seed)
	if r.quick {
		corpus = experiments.SmallCorpus(r.seed)
	}
	clusterCfg := experiments.DefaultCluster()
	clusterCfg.Trace = r.trace != ""
	clusterCfg.RealParallel = r.realParallel
	clusterCfg.RealWorkers = r.workers
	start := time.Now()
	env, err := experiments.NewEnv(experiments.EnvConfig{
		Cluster: clusterCfg,
		Corpus:  corpus,
		Seed:    r.seed,
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("corpus: %d reports, %d duplicate pairs (prepared in %v)\n\n",
		len(env.Corpus.Reports), len(env.Corpus.Duplicates), time.Since(start).Round(time.Millisecond))
	r.env = env
	return env, nil
}

func (r *runner) dispatch(exhibit string) error {
	switch exhibit {
	case "table2":
		experiments.Table2(os.Stdout)
		return nil
	case "table1":
		env, err := r.environment()
		if err != nil {
			return err
		}
		return experiments.Table1(os.Stdout, env.Corpus)
	case "table3":
		env, err := r.environment()
		if err != nil {
			return err
		}
		res, err := experiments.Table3(env.Corpus)
		if err != nil {
			return err
		}
		experiments.WriteTable3(os.Stdout, res)
		return nil
	case "fig5":
		return r.fig5()
	case "fig6":
		return r.fig6()
	case "fig7", "fig8":
		return r.fig7(exhibit == "fig8")
	case "fig9":
		return r.fig9()
	case "fig10":
		return r.fig10()
	case "fig11":
		return r.fig11()
	case "ablation":
		return r.ablation()
	case "loadbalance":
		return r.loadbalance()
	case "speculation":
		return r.speculation()
	case "recovery":
		return r.recovery()
	case "candidates":
		return r.candidates()
	case "spill":
		return r.spill()
	}
	return fmt.Errorf("unhandled exhibit %q", exhibit)
}

func (r *runner) candidates() error {
	records := 100_000
	if r.quick {
		records = 5_000
	}
	res, err := experiments.Candidates(experiments.CandidatesParams{
		Records: records, Seed: r.seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("Candidate generation wall: %d reports, theta %.2f, %s partitioning, %d partitions\n",
		res.Records, res.Theta, res.Mode, res.Partitions)
	fmt.Printf("%-22s %18s\n", "funnel stage", "pairs")
	fmt.Printf("%-22s %18d\n", "quadratic space", res.TotalPairs)
	fmt.Printf("%-22s %18d\n", "prefix-index scanned", res.Scanned)
	fmt.Printf("%-22s %18d\n", "exactly verified", res.Verified)
	fmt.Printf("%-22s %18d\n", "candidates emitted", res.Candidates)
	fmt.Printf("candidate reduction: %.0fx\n", res.ReductionX)
	fmt.Printf("prefix path: %v generation (index entries: %d) + %v downstream vectorization = %v\n",
		res.PrefixWall.Round(time.Millisecond), res.IndexEntries,
		res.PrefixDownstream.Round(time.Millisecond), res.PrefixTotal.Round(time.Millisecond))
	fmt.Printf("brute path: %d-pair sample vectorized in %v; extrapolated %v over the quadratic space (%.0fx slower)\n",
		res.SamplePairs, res.SampleWall.Round(time.Millisecond),
		res.BruteExtrapolated.Round(time.Second), res.SpeedupX)
	return nil
}

func (r *runner) speculation() error {
	env, err := r.environment()
	if err != nil {
		return err
	}
	rows, err := experiments.Speculation(env, experiments.SpeculationParams{Seed: r.seed})
	if err != nil {
		return err
	}
	fmt.Println("Speculative execution on the skewed straggler-injected workload")
	fmt.Printf("%-12s %16s %10s %6s %14s %12s\n",
		"speculation", "exec time", "launched", "wins", "wasted", "stragglers")
	for _, row := range rows {
		mode := "off"
		if row.Speculation {
			mode = "on"
		}
		fmt.Printf("%-12s %16v %10d %6d %14v %12d\n",
			mode, row.ExecutionTime.Round(time.Millisecond),
			row.SpeculativeLaunches, row.SpeculativeWins,
			row.WastedTime.Round(time.Millisecond), row.Stragglers)
	}
	fmt.Printf("makespan reduction: %.2fx\n", experiments.SpeculationSpeedup(rows))
	return nil
}

func (r *runner) recovery() error {
	env, err := r.environment()
	if err != nil {
		return err
	}
	rows, err := experiments.Recovery(env, experiments.RecoveryParams{Seed: r.seed})
	if err != nil {
		return err
	}
	fmt.Println("Executor-loss recovery on the shuffle workload (clean vs deterministic kills)")
	fmt.Printf("%-8s %16s %8s %12s %14s %14s\n",
		"kills", "exec time", "lost", "fetch fails", "recomp tasks", "recomp stages")
	for _, row := range rows {
		mode := "off"
		if row.Faulty {
			mode = "on"
		}
		fmt.Printf("%-8s %16v %8d %12d %14d %14d\n",
			mode, row.ExecutionTime.Round(time.Millisecond),
			row.MapOutputsLost, row.FetchFailures, row.RecomputedTasks, row.RecomputedStages)
	}
	fmt.Printf("recovery overhead: %.2fx\n", experiments.RecoveryOverhead(rows))
	return nil
}

func (r *runner) spill() error {
	params := experiments.SpillParams{Seed: r.seed}
	if r.quick {
		params.Records = 1500
		params.Partitions = 8
	}
	rows, err := experiments.Spill(params)
	if err != nil {
		return err
	}
	fmt.Println("Memory-pressure spilling on the candidate pipeline (unbounded vs per-executor budget)")
	fmt.Printf("%-10s %12s %16s %12s %14s %12s\n",
		"budget", "candidates", "exec time", "spills", "spilled bytes", "coalesced")
	for _, row := range rows {
		budget := "unbounded"
		if row.Budgeted {
			budget = fmt.Sprintf("%d B", row.MemoryPerExecutorBytes)
		}
		fmt.Printf("%-10s %12d %16v %12d %14d %12d\n",
			budget, row.Candidates, row.ExecutionTime.Round(time.Millisecond),
			row.SpillEvents, row.SpilledBytes, row.CoalescedPartitions)
	}
	fmt.Printf("spill overhead: %.2fx (output byte-identical)\n", experiments.SpillOverhead(rows))
	return nil
}

func (r *runner) loadbalance() error {
	env, err := r.environment()
	if err != nil {
		return err
	}
	rows, err := experiments.LoadBalance(env, experiments.LoadBalanceParams{
		TrainSize: r.n(200_000), TestSize: r.n(10_000), Seed: r.seed,
	})
	if err != nil {
		return err
	}
	fmt.Println("Load balancing (paper §7 future work): FIFO vs LPT scheduling")
	fmt.Printf("%-8s %16s\n", "policy", "exec time")
	for _, row := range rows {
		fmt.Printf("%-8s %16v\n", row.Policy, row.ExecutionTime.Round(time.Millisecond))
	}
	return nil
}

func (r *runner) fig5() error {
	env, err := r.environment()
	if err != nil {
		return err
	}
	sizes := []int{r.n(100_000), r.n(200_000), r.n(300_000), r.n(400_000), r.n(500_000)}
	res, err := experiments.Fig5(env, experiments.Fig5Params{
		TrainSizes: sizes, TestSize: r.n(20_000), Seed: r.seed,
	})
	if err != nil {
		return err
	}
	fmt.Println("Fig 5(c): AUPR by training size")
	fmt.Printf("%12s %8s %8s %14s\n", "train pairs", "kNN", "SVM", "SVM clustering")
	for _, p := range res.Points {
		fmt.Printf("%12d %8.3f %8.3f %14.3f\n", p.TrainPairs, p.AUPRKNN, p.AUPRSVM, p.AUPRSVMClustering)
	}
	fmt.Printf("mean kNN improvement over SVM: %.1f%% (paper: 19.1%%)\n\n", 100*res.ImprovementOverSVM)

	fmt.Printf("Fig 5(a): PR curve at %d training pairs (recall, precision)\n", sizes[len(sizes)-1])
	printCurves(res.CurveLargest)
	fmt.Printf("Fig 5(b): PR curve at %d training pairs (recall, precision)\n", sizes[0])
	printCurves(res.CurveSmall)
	return nil
}

func printCurves(curves map[string][]eval.Point) {
	for _, name := range []string{"kNN", "SVM"} {
		points := curves[name]
		fmt.Printf("  %s:", name)
		step := len(points)/10 + 1
		for i := 0; i < len(points); i += step {
			fmt.Printf(" (%.2f,%.2f)", points[i].Recall, points[i].Precision)
		}
		fmt.Println()
	}
}

func (r *runner) fig6() error {
	env, err := r.environment()
	if err != nil {
		return err
	}
	points, err := experiments.Fig6(env, experiments.Fig6Params{
		TrainSize: r.n(300_000), TestSize: r.n(10_000), Seed: r.seed,
	})
	if err != nil {
		return err
	}
	fmt.Println("Fig 6: effect of k (train=3M-scaled, test=10k-scaled)")
	fmt.Printf("%4s %8s %16s %18s\n", "k", "AUPR", "exec time", "clusters checked")
	for _, p := range points {
		fmt.Printf("%4d %8.3f %16v %18d\n", p.K, p.AUPR, p.ExecutionTime.Round(time.Millisecond), p.CrossChecked)
	}
	if len(points) >= 2 {
		first, last := points[0], points[len(points)-1]
		growth := float64(last.ExecutionTime-first.ExecutionTime) / float64(first.ExecutionTime)
		fmt.Printf("time growth k=%d -> k=%d: %.0f%% (paper: 31%%)\n", first.K, last.K, 100*growth)
	}
	return nil
}

func (r *runner) fig7(asFig8 bool) error {
	env, err := r.environment()
	if err != nil {
		return err
	}
	params := experiments.Fig7Params{
		Bs:        []int{10, 25, 40, 55, 70},
		TrainSize: r.n(400_000), TestSize: r.n(10_000), Seed: r.seed,
	}
	if asFig8 {
		params.PressureMemoryMB = 1
	}
	points, err := experiments.Fig7(env, params)
	if err != nil {
		return err
	}
	if asFig8 {
		fmt.Println("Fig 8: cross/intra ratio and execution time by cluster number (1MB executors)")
		fmt.Printf("%4s %12s %16s %10s %8s\n", "b", "cross/intra", "exec time", "pressure", "retries")
		for _, p := range points {
			fmt.Printf("%4d %12.4f %16v %10d %8d\n",
				p.B, p.CrossIntraRatio, p.ExecutionTime.Round(time.Millisecond), p.PressureEvents, p.TaskRetries)
		}
		return nil
	}
	fmt.Println("Fig 7: comparison counts by training cluster number")
	fmt.Printf("%4s %18s %20s %18s\n", "b", "intra comparisons", "additional clusters", "cross comparisons")
	for _, p := range points {
		fmt.Printf("%4d %18d %20d %18d\n",
			p.B, p.IntraClusterComparisons, p.AdditionalClustersChecked, p.CrossClusterComparisons)
	}
	return nil
}

func (r *runner) fig9() error {
	env, err := r.environment()
	if err != nil {
		return err
	}
	points, err := experiments.Fig9(env, experiments.Fig9Params{
		TrainSizes: []int{r.n(100_000), r.n(200_000), r.n(300_000), r.n(400_000), r.n(500_000)},
		TestSize:   r.n(10_000),
		Seed:       r.seed,
	})
	if err != nil {
		return err
	}
	fmt.Println("Fig 9: scalability with training set size (b=32, 25 executors)")
	fmt.Printf("%12s %8s %16s\n", "train pairs", "blocks", "exec time")
	for _, p := range points {
		fmt.Printf("%12d %8d %16v\n", p.TrainPairs, p.BlockNumber, p.ExecutionTime.Round(time.Millisecond))
	}
	return nil
}

func (r *runner) fig10() error {
	env, err := r.environment()
	if err != nil {
		return err
	}
	points, err := experiments.Fig10(env, experiments.Fig10Params{
		TrainSizes:    []int{r.n(200_000), r.n(300_000), r.n(400_000)},
		TestSize:      r.n(10_000),
		DistancePairs: r.n(100_000),
		Seed:          r.seed,
	})
	if err != nil {
		return err
	}
	fmt.Println("Fig 10: execution time by executor count (b=48, block number 5)")
	fmt.Printf("%10s %12s %16s %18s\n", "executors", "train pairs", "exec time", "distance time")
	for _, p := range points {
		fmt.Printf("%10d %12d %16v %18v\n",
			p.Executors, p.TrainPairs,
			p.ExecutionTime.Round(time.Millisecond), p.DistanceTime.Round(time.Millisecond))
	}
	return nil
}

func (r *runner) fig11() error {
	env, err := r.environment()
	if err != nil {
		return err
	}
	points, err := experiments.Fig11(env, experiments.Fig11Params{
		TrainSize: r.n(100_000), TestSize: r.n(200_000), Seed: r.seed,
	})
	if err != nil {
		return err
	}
	fmt.Println("Fig 11: testing-set pruning (threshold -1 = no pruning)")
	fmt.Printf("%10s %10s %16s %22s\n", "f(theta)", "included", "detection time", "true duplicates lost")
	for _, p := range points {
		fmt.Printf("%10.1f %9.1f%% %16v %22d\n",
			p.Threshold, 100*p.IncludedFraction, p.DetectionTime.Round(time.Millisecond), p.TrueDuplicatesPruned)
	}
	return nil
}

func (r *runner) ablation() error {
	env, err := r.environment()
	if err != nil {
		return err
	}
	rows, err := experiments.Ablation(env, experiments.AblationParams{
		TrainSize: r.n(200_000), TestSize: r.n(10_000), Seed: r.seed,
	})
	if err != nil {
		return err
	}
	fmt.Println("Ablations of Fast kNN design choices")
	fmt.Printf("%-22s %8s %18s %18s %14s %16s\n",
		"variant", "AUPR", "intra comparisons", "cross comparisons", "add. clusters", "exec time")
	for _, row := range rows {
		fmt.Printf("%-22s %8.3f %18d %18d %14d %16v\n",
			row.Variant, row.AUPR, row.IntraClusterComparisons,
			row.CrossClusterComparisons, row.AdditionalClusters,
			row.ExecutionTime.Round(time.Millisecond))
	}
	return nil
}
