package main

import "testing"

func TestRunnerDispatchTables(t *testing.T) {
	r := &runner{scale: 1, seed: 1, quick: true}
	for _, exhibit := range []string{"table2", "table1", "table3"} {
		if err := r.run(exhibit); err != nil {
			t.Errorf("%s: %v", exhibit, err)
		}
	}
}

func TestRunnerRejectsUnknownExhibit(t *testing.T) {
	r := &runner{scale: 1, seed: 1, quick: true}
	if err := r.run("fig99"); err == nil {
		t.Error("unknown exhibit must error")
	}
}

func TestRunnerScaling(t *testing.T) {
	r := &runner{scale: 2, quick: false}
	if got := r.n(1000); got != 2000 {
		t.Errorf("n(1000) at scale 2 = %d", got)
	}
	r = &runner{scale: 1, quick: true}
	if got := r.n(1000); got != 100 {
		t.Errorf("quick n(1000) = %d", got)
	}
}
