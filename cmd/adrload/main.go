// Command adrload is the traffic driver for adrdedupd: it pregenerates a
// deterministic synthetic report stream (same TGA profile as the seed
// corpus, campaign clustering disabled, case numbers namespaced so they
// never collide with the daemon's seed database) and pushes it at the
// service from concurrent workers, reporting throughput and latency
// percentiles as it goes.
//
// Usage:
//
//	adrload -addr http://127.0.0.1:8080
//	        [-workers 4] [-batch-size 100] [-push-interval 0]
//	        [-count 0] [-duration 0] [-profile steady]
//	        [-report-interval 5s] [-seed 1] [-dup-fraction 0.02]
//	        [-case-prefix LOAD] [-timeout 60s] [-summary-json out.json]
//
// At least one of -count (total reports, exact) or -duration (wall clock)
// must be set; the run stops at whichever limit is hit first. Profiles:
//
//	steady  each worker sends batches back-to-back, pausing -push-interval
//	        between sends
//	ramp    worker start times are staggered across the first half of the
//	        run, so offered load climbs from one worker to all of them
//	burst   workers alternate bursts of 8 back-to-back batches with an idle
//	        gap of 8×-push-interval — the same average rate as steady but
//	        maximally bunched, for exercising 429 backpressure
//
// 429/503 responses are retried after the server's Retry-After hint and
// counted as "throttled", not as errors. The process exits 1 if any request
// ultimately failed, so CI smokes can assert a zero-error run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adrdedup/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adrload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("adrload", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "service base URL")
	workers := fs.Int("workers", 4, "concurrent submitter goroutines")
	batchSize := fs.Int("batch-size", 100, "reports per request (1 uses the single-report endpoint)")
	pushInterval := fs.Duration("push-interval", 0, "per-worker pause between sends (0 = as fast as the service admits)")
	count := fs.Int("count", 0, "total reports to send (0 = unbounded, requires -duration)")
	duration := fs.Duration("duration", 0, "wall-clock bound on the run (0 = unbounded, requires -count)")
	profileName := fs.String("profile", "steady", "load shape: steady, ramp, or burst")
	reportInterval := fs.Duration("report-interval", 5*time.Second, "progress report period (0 = no progress reports)")
	seed := fs.Int64("seed", 1, "deterministic traffic seed")
	dupFraction := fs.Float64("dup-fraction", 0.02, "share of stream reports belonging to an injected duplicate pair")
	casePrefix := fs.String("case-prefix", "LOAD", "case-number namespace of the stream")
	timeout := fs.Duration("timeout", 60*time.Second, "per-request HTTP timeout")
	summaryJSON := fs.String("summary-json", "", "also write the final summary as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *count <= 0 && *duration <= 0 {
		return fmt.Errorf("set -count and/or -duration (run 'adrload -h' for usage)")
	}
	profile, err := serve.ParseProfile(*profileName)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	cfg := serve.LoadConfig{
		BaseURL:      strings.TrimRight(*addr, "/"),
		Workers:      *workers,
		BatchSize:    *batchSize,
		PushInterval: *pushInterval,
		Duration:     *duration,
		Count:        *count,
		Profile:      profile,
		Traffic: serve.TrafficConfig{
			DupFraction: *dupFraction,
			Seed:        *seed,
			CasePrefix:  *casePrefix,
		},
		ReportEvery: *reportInterval,
		Client:      &http.Client{Timeout: *timeout},
		OnReport: func(s serve.LoadSnapshot) {
			fmt.Fprintf(os.Stderr,
				"adrload: t=%s sent=%d errors=%d throttled=%d matched=%d rate=%.0f/s p50=%.1fms p95=%.1fms p99=%.1fms\n",
				s.Elapsed.Round(time.Second), s.Sent, s.Errors, s.Throttled, s.Matched,
				s.IntervalThroughput, s.Latency.P50MS, s.Latency.P95MS, s.Latency.P99MS)
		},
	}

	fmt.Fprintf(os.Stderr, "adrload: %s profile, %d workers, batch %d -> %s\n",
		profile, cfg.Workers, cfg.BatchSize, cfg.BaseURL)
	res, err := serve.RunLoad(ctx, cfg)
	if err != nil && err != context.Canceled {
		return err
	}

	fmt.Printf("adrload: sent=%d batches=%d errors=%d throttled=%d matched=%d scored=%d throughput=%.0f/s p50=%.1fms p95=%.1fms p99=%.1fms max=%.1fms\n",
		res.Sent, res.Batches, res.Errors, res.Throttled, res.Matched, res.Scored,
		res.Reports, res.Latency.P50MS, res.Latency.P95MS, res.Latency.P99MS, res.Latency.MaxMS)
	if res.FirstError != "" {
		fmt.Fprintln(os.Stderr, "adrload: first error:", res.FirstError)
	}
	if *summaryJSON != "" {
		data, jerr := json.MarshalIndent(res, "", "  ")
		if jerr != nil {
			return jerr
		}
		if werr := os.WriteFile(*summaryJSON, append(data, '\n'), 0o644); werr != nil {
			return werr
		}
	}
	if res.Errors > 0 {
		return fmt.Errorf("%d requests failed", res.Errors)
	}
	return nil
}
