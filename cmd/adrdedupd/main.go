// Command adrdedupd is the online duplicate-detection daemon: it bootstraps
// a synthetic seed database, trains the Fast kNN classifier on pairs sampled
// from the seed's ground truth, and then serves continuous report ingestion
// over HTTP. Each arriving report or batch is checked against the live
// database through the detector's incremental candidate index and the scored
// matches are returned to the submitter.
//
// Usage:
//
//	adrdedupd [-addr 127.0.0.1:8080]
//	          [-workers 2] [-queue-depth 64] [-max-batch 5000]
//	          [-seed-reports 2000] [-seed-dups 80] [-train-pairs 1200] [-seed 1]
//	          [-candidates prefix-index] [-cand-theta 0] [-k 0] [-b 0] [-theta 0]
//	          [-executors 8] [-engine-workers 0] [-virtual-engine]
//	          [-drain-timeout 30s]
//
// Endpoints:
//
//	POST /v1/reports        ingest one report object
//	POST /v1/reports:batch  ingest {"reports": [...]} or a bare array
//	GET  /v1/stats          live counters + latency percentiles (JSON)
//	GET  /healthz           200 while running, 503 otherwise
//	GET  /debug/vars        expvar, including the "adrdedupd" stats var
//
// A full ingest queue answers 429 with a Retry-After header (backpressure
// instead of collapse). SIGTERM/SIGINT triggers a graceful drain: the
// listener stops accepting, every already-accepted batch completes, and the
// process exits 0. -addr supports port 0; the chosen address is printed as
// "adrdedupd: listening on http://HOST:PORT" on stdout so harnesses can
// parse it.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"adrdedup"
	"adrdedup/internal/cluster"
	"adrdedup/internal/core"
	"adrdedup/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adrdedupd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("adrdedupd", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	workers := fs.Int("workers", 2, "pipeline workers claiming batches from the ingest queue")
	queueDepth := fs.Int("queue-depth", 64, "ingest queue capacity; a full queue answers 429")
	maxBatch := fs.Int("max-batch", 5000, "max reports per submitted batch")
	seedReports := fs.Int("seed-reports", 2000, "synthetic seed database size")
	seedDups := fs.Int("seed-dups", 80, "injected duplicate pairs in the seed database")
	trainPairs := fs.Int("train-pairs", 1200, "labelled pairs sampled from the seed's ground truth for training")
	seed := fs.Int64("seed", 1, "deterministic bootstrap seed")
	candidates := fs.String("candidates", "prefix-index", "candidate strategy: brute-force, block, or prefix-index")
	candTheta := fs.Float64("cand-theta", 0, "signature Jaccard threshold for prefix-index candidates (0 = default)")
	k := fs.Int("k", 0, "kNN neighbor count (0 = default)")
	b := fs.Int("b", 0, "kNN cluster count (0 = default)")
	theta := fs.Float64("theta", 0, "duplicate probability threshold (0 = default)")
	executors := fs.Int("executors", 8, "engine executors")
	engineWorkers := fs.Int("engine-workers", 0, "work-stealing pool size (0 = NumCPU)")
	virtualEngine := fs.Bool("virtual-engine", false, "run the engine on the virtual-time scheduler instead of the work-stealing pool")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max time to drain in-flight batches on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var strategy adrdedup.CandidateStrategy
	switch *candidates {
	case "brute-force":
		strategy = adrdedup.CandidateBruteForce
	case "block":
		strategy = adrdedup.CandidateBlock
	case "prefix-index":
		strategy = adrdedup.CandidatePrefixIndex
	default:
		return fmt.Errorf("unknown -candidates strategy %q (want brute-force, block, or prefix-index)", *candidates)
	}

	fmt.Fprintf(os.Stderr, "adrdedupd: bootstrapping (%d seed reports, %d dup pairs, %d training pairs, seed %d)\n",
		*seedReports, *seedDups, *trainPairs, *seed)
	boot, err := serve.NewBootstrap(serve.BootstrapConfig{
		SeedReports:    *seedReports,
		SeedDuplicates: *seedDups,
		TrainPairs:     *trainPairs,
		Seed:           *seed,
		VirtualEngine:  *virtualEngine,
		Detector: adrdedup.Options{
			Cluster: cluster.Config{
				Executors:   *executors,
				RealWorkers: *engineWorkers,
			},
			Classifier:     core.Config{K: *k, B: *b, Theta: *theta, Seed: *seed},
			Candidates:     strategy,
			CandidateTheta: *candTheta,
		},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "adrdedupd: seeded %d reports in %v, trained in %v\n",
		boot.Detector.Database().Len(), boot.SeedDuration.Round(time.Millisecond),
		boot.TrainDuration.Round(time.Millisecond))

	srv := serve.New(boot.Detector, serve.Config{
		Workers:    *workers,
		QueueDepth: *queueDepth,
		MaxBatch:   *maxBatch,
	})
	if err := srv.Start(); err != nil {
		boot.Detector.Engine().Cluster().Close()
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		_ = srv.Close(shutdownCtx)
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	// The listening line goes to stdout so scripts can parse the bound port.
	fmt.Printf("adrdedupd: listening on http://%s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "adrdedupd: %v: draining\n", sig)
	case err := <-serveErr:
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		_ = srv.Close(shutdownCtx)
		return fmt.Errorf("http server: %w", err)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting new connections and wait for in-flight requests; the
	// pipeline drain below finishes every batch those requests enqueued.
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "adrdedupd: http shutdown:", err)
	}
	if err := srv.Close(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "adrdedupd: drained: ingested=%d batches=%d matched=%d\n",
		st.Ingested, st.Batches, st.Matched)
	return nil
}
