package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"adrdedup/internal/adr"
	"adrdedup/internal/adrgen"
)

func TestGenSummaryDetectRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reportsPath := filepath.Join(dir, "reports.json")
	truthPath := filepath.Join(dir, "truth.json")

	if err := runGen([]string{
		"-out", reportsPath, "-truth", truthPath,
		"-n", "600", "-dups", "30", "-seed", "5",
	}); err != nil {
		t.Fatal(err)
	}

	reports, err := readReports(reportsPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 600 {
		t.Fatalf("generated %d reports", len(reports))
	}
	tf, err := os.Open(truthPath)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := adrgen.ReadGroundTruth(tf)
	tf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) != 30 {
		t.Fatalf("generated %d truth pairs", len(truth))
	}

	if err := runSummary([]string{"-db", reportsPath}); err != nil {
		t.Fatal(err)
	}

	// Split into db + batch, build labels from the truth pairs that are
	// fully inside the db plus strided negatives.
	dbPath := filepath.Join(dir, "db.json")
	batchPath := filepath.Join(dir, "batch.json")
	labelsPath := filepath.Join(dir, "labels.json")
	cut := 580
	if err := writeReports(dbPath, reports[:cut]); err != nil {
		t.Fatal(err)
	}
	if err := writeReports(batchPath, reports[cut:]); err != nil {
		t.Fatal(err)
	}
	inDB := make(map[string]bool, cut)
	for _, r := range reports[:cut] {
		inDB[r.CaseNumber] = true
	}
	var labels []labelPair
	for _, tp := range truth {
		if inDB[tp.CaseA] && inDB[tp.CaseB] {
			labels = append(labels, labelPair{CaseA: tp.CaseA, CaseB: tp.CaseB, Duplicate: true})
		}
	}
	isDup := make(map[[2]string]bool)
	for _, tp := range truth {
		isDup[[2]string{tp.CaseA, tp.CaseB}] = true
		isDup[[2]string{tp.CaseB, tp.CaseA}] = true
	}
	for i := 0; i+9 < cut && len(labels) < 1000; i++ {
		a, b := reports[i].CaseNumber, reports[i+9].CaseNumber
		if isDup[[2]string{a, b}] {
			continue
		}
		labels = append(labels, labelPair{CaseA: a, CaseB: b})
	}
	if err := writeJSON(labelsPath, labels); err != nil {
		t.Fatal(err)
	}

	if err := runDetect([]string{
		"-db", dbPath, "-batch", batchPath, "-labels", labelsPath,
		"-k", "7", "-b", "8", "-top", "5",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestGenDeterministicFiles(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	ta := filepath.Join(dir, "ta.json")
	tb := filepath.Join(dir, "tb.json")
	for _, args := range [][]string{
		{"-out", a, "-truth", ta, "-n", "100", "-dups", "5", "-seed", "9"},
		{"-out", b, "-truth", tb, "-n", "100", "-dups", "5", "-seed", "9"},
	} {
		if err := runGen(args); err != nil {
			t.Fatal(err)
		}
	}
	ba, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Error("same seed produced different corpus files")
	}
}

func TestDetectMissingFiles(t *testing.T) {
	if err := runDetect([]string{"-db", "/nonexistent.json"}); err == nil {
		t.Error("expected error for missing database file")
	}
	if err := runSummary([]string{"-db", "/nonexistent.json"}); err == nil {
		t.Error("expected error for missing database file")
	}
}

func TestReadJSONHelpers(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "x.json")
	if err := writeJSON(p, []labelPair{{CaseA: "a", CaseB: "b", Duplicate: true}}); err != nil {
		t.Fatal(err)
	}
	var got []labelPair
	if err := readJSON(p, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Duplicate {
		t.Errorf("round trip = %+v", got)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := readJSON(bad, &got); err == nil {
		t.Error("expected error for invalid JSON")
	}
}

func TestWriteReadReports(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "r.json")
	in := []adr.Report{{CaseNumber: "X", CalculatedAge: 30, Sex: "F"}}
	if err := writeReports(p, in); err != nil {
		t.Fatal(err)
	}
	got, err := readReports(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].CaseNumber != "X" {
		t.Errorf("round trip = %+v", got)
	}
	// Sanity: the file is actual JSON.
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	var generic []map[string]any
	if err := json.Unmarshal(raw, &generic); err != nil {
		t.Errorf("file is not JSON: %v", err)
	}
}
