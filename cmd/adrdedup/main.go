// Command adrdedup is the operational duplicate detection tool: it
// generates synthetic ADR corpora, summarizes report databases, and detects
// duplicates in new report batches against an existing database using the
// Fast kNN classifier.
//
// Usage:
//
//	adrdedup gen     -out reports.json -truth truth.json [-n 10382] [-dups 286] [-seed 1]
//	adrdedup summary -db reports.json
//	adrdedup detect  -db reports.json -batch batch.json -labels labels.json [-theta 0] [-top 20]
//	                 [-memory-mb 0] [-target-partition-mb 0]
//	                 [-real-parallel] [-workers N]
//	                 [-trace trace.json] [-metrics-out metrics.json]
//	                 [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// detect's -trace flag records a structured stage/task event log on the
// embedded cluster, exports it as JSON, and prints a per-stage virtual-time
// summary to stderr; -metrics-out dumps the final cluster counter snapshot.
// -memory-mb bounds each simulated executor's memory: blocks and shuffle
// buffers over the budget spill to a virtual local disk (visible as spill
// events in the trace) without changing any output. -target-partition-mb
// turns on adaptive post-shuffle partition coalescing toward that size.
// -real-parallel swaps the goroutine-per-task launcher for the work-stealing
// worker pool (-workers, default NumCPU) — results and committed counters
// are bit-identical, only wall-clock changes. -cpuprofile / -memprofile
// write runtime/pprof profiles of the whole detect run.
//
// File formats: reports and batches are JSON arrays of report objects (see
// internal/adr); labels are a JSON array of {"caseA", "caseB", "duplicate"}
// objects; truth is the generator's ground-truth duplicate list.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"adrdedup"
	"adrdedup/internal/adr"
	"adrdedup/internal/adrgen"
	"adrdedup/internal/cluster"
	"adrdedup/internal/core"
	"adrdedup/internal/prof"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "summary":
		err = runSummary(os.Args[2:])
	case "detect":
		err = runDetect(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "adrdedup:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  adrdedup gen     -out reports.json -truth truth.json [-n 10382] [-dups 286] [-seed 1]
  adrdedup summary -db reports.json
  adrdedup detect  -db reports.json -batch batch.json -labels labels.json [-theta 0] [-top 20]
                   [-memory-mb 0] [-target-partition-mb 0]
                   [-real-parallel] [-workers N]
                   [-trace trace.json] [-metrics-out metrics.json]
                   [-cpuprofile cpu.pprof] [-memprofile mem.pprof]`)
}

// labelPair is the expert-label record the detect command consumes.
type labelPair struct {
	CaseA     string `json:"caseA"`
	CaseB     string `json:"caseB"`
	Duplicate bool   `json:"duplicate"`
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "reports.json", "output path for the report corpus")
	truthPath := fs.String("truth", "truth.json", "output path for ground-truth duplicate pairs")
	n := fs.Int("n", 10382, "number of reports (Table 3 default)")
	dups := fs.Int("dups", 286, "number of injected duplicate pairs")
	seed := fs.Int64("seed", 1, "generation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	corpus := adrgen.Generate(adrgen.Config{NumReports: *n, DuplicatePairs: *dups, Seed: *seed})
	if err := writeReports(*out, corpus.Reports); err != nil {
		return err
	}
	f, err := os.Create(*truthPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := adrgen.WriteGroundTruth(f, corpus.Duplicates); err != nil {
		return fmt.Errorf("writing %s: %w", *truthPath, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d reports to %s and %d duplicate pairs to %s\n",
		len(corpus.Reports), *out, len(corpus.Duplicates), *truthPath)
	return nil
}

func runSummary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	dbPath := fs.String("db", "reports.json", "report database path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reports, err := readReports(*dbPath)
	if err != nil {
		return err
	}
	db := adr.NewDatabase()
	for _, r := range reports {
		r.ArrivalSeq = 0
		if err := db.Add(r); err != nil {
			return err
		}
	}
	s := db.Summarize()
	fmt.Printf("Report period:    %s\n", s.ReportPeriod)
	fmt.Printf("Cases:            %d\n", s.NumCases)
	fmt.Printf("Fields/report:    %d\n", s.NumFields)
	fmt.Printf("Unique drugs:     %d\n", s.UniqueDrugs)
	fmt.Printf("Unique ADRs:      %d\n", s.UniqueADRs)
	return nil
}

func runDetect(args []string) (retErr error) {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	dbPath := fs.String("db", "reports.json", "existing report database")
	batchPath := fs.String("batch", "batch.json", "new report batch to check")
	labelsPath := fs.String("labels", "labels.json", "expert-labelled pairs for training")
	theta := fs.Float64("theta", 0, "duplicate score threshold")
	k := fs.Int("k", 9, "neighbor count (odd)")
	b := fs.Int("b", 32, "training cluster number")
	top := fs.Int("top", 20, "matches to print")
	executors := fs.Int("executors", 8, "simulated executors")
	candidates := fs.String("candidates", "brute-force", "candidate strategy: brute-force, block, or prefix-index")
	candTheta := fs.Float64("cand-theta", 0, "signature Jaccard threshold for prefix-index candidates (0 = default)")
	speculation := fs.Bool("speculation", false, "speculatively re-launch straggler tasks (first completion wins)")
	stragglerRate := fs.Float64("straggler-rate", 0, "deterministic straggler injection rate per task attempt")
	stragglerMS := fs.Float64("straggler-ms", 0, "virtual slowdown charged to each injected straggler (ms; 0 = default)")
	failExecutors := fs.Float64("fail-executors", 0, "deterministic executor-kill rate per stage submission (lost shuffle outputs are recomputed from lineage)")
	maxStageRetries := fs.Int("max-stage-retries", 0, "stage resubmissions after shuffle fetch failures before aborting (0 = default)")
	memoryMB := fs.Int("memory-mb", 0, "per-executor memory budget in MB; blocks and shuffle buffers over budget spill to virtual disk (0 = unbounded default)")
	targetPartitionMB := fs.Int("target-partition-mb", 0, "adaptive post-shuffle coalescing target partition size in MB (0 = off)")
	realParallel := fs.Bool("real-parallel", false, "run stages on the work-stealing worker pool instead of goroutine-per-task (bit-identical results)")
	workers := fs.Int("workers", 0, "worker-pool size for -real-parallel (0 = NumCPU)")
	tracePath := fs.String("trace", "", "write a JSON stage/task trace event log to this file and print a per-stage summary to stderr")
	metricsPath := fs.String("metrics-out", "", "write the final cluster metrics snapshot as JSON to this file")
	cpuProfile := fs.String("cpuprofile", "", "write a runtime/pprof CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a runtime/pprof heap profile at the end of the run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	profile, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := profile.Stop(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	existing, err := readReports(*dbPath)
	if err != nil {
		return err
	}
	batch, err := readReports(*batchPath)
	if err != nil {
		return err
	}
	var labels []labelPair
	if err := readJSON(*labelsPath, &labels); err != nil {
		return err
	}

	var strategy adrdedup.CandidateStrategy
	switch *candidates {
	case "brute-force":
		strategy = adrdedup.CandidateBruteForce
	case "block":
		strategy = adrdedup.CandidateBlock
	case "prefix-index":
		strategy = adrdedup.CandidatePrefixIndex
	default:
		return fmt.Errorf("unknown -candidates strategy %q (want brute-force, block, or prefix-index)", *candidates)
	}
	det, err := adrdedup.New(adrdedup.Options{
		Cluster: cluster.Config{
			Executors:           *executors,
			Trace:               *tracePath != "",
			Speculation:         *speculation,
			StragglerRate:       *stragglerRate,
			StragglerVirtualMS:  *stragglerMS,
			ExecutorFailureRate: *failExecutors,
			MaxStageRetries:     *maxStageRetries,
			MemoryPerExecutorMB: *memoryMB,
			SpillToDisk:         *memoryMB > 0,
			TargetPartitionMB:   *targetPartitionMB,
			RealParallel:        *realParallel,
			RealWorkers:         *workers,
		},
		Classifier:     core.Config{K: *k, B: *b, Theta: *theta},
		Candidates:     strategy,
		CandidateTheta: *candTheta,
	})
	if err != nil {
		return err
	}
	for i := range existing {
		existing[i].ArrivalSeq = 0
	}
	for i := range batch {
		batch[i].ArrivalSeq = 0
	}
	if err := det.AddKnownReports(existing); err != nil {
		return err
	}
	labelled := make([]adrdedup.LabeledCasePair, len(labels))
	for i, l := range labels {
		labelled[i] = adrdedup.LabeledCasePair{CaseA: l.CaseA, CaseB: l.CaseB, Duplicate: l.Duplicate}
	}
	if err := det.TrainFromLabeledCases(labelled); err != nil {
		return err
	}
	if issues := det.ValidateBatch(batch); len(issues) > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d of %d batch reports have validation issues\n",
			len(issues), len(batch))
	}
	matches, err := det.Detect(batch)
	if err != nil {
		return err
	}

	dups := adrdedup.Duplicates(matches)
	fmt.Printf("checked %d new reports against %d existing: %d candidate pairs scored, %d flagged duplicate\n",
		len(batch), len(existing), len(matches), len(dups))
	fmt.Printf("%-18s %-18s %12s %s\n", "case A", "case B", "score", "duplicate")
	for i, m := range matches {
		if i >= *top {
			break
		}
		flag := ""
		if m.Duplicate {
			flag = "yes"
		}
		fmt.Printf("%-18s %-18s %12.3f %s\n", m.CaseA, m.CaseB, m.Score, flag)
	}
	return writeObservability(det.Engine().Cluster(), *tracePath, *metricsPath)
}

// writeObservability exports the trace event log and metrics snapshot of a
// finished run, plus a human-readable per-stage summary on stderr when
// tracing was on.
func writeObservability(cl *cluster.Cluster, tracePath, metricsPath string) error {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := cl.Tracer().WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", tracePath, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "\ntrace: %d events written to %s (%d dropped)\n",
			cl.Tracer().Len(), tracePath, cl.Tracer().Dropped())
		cluster.WriteStageSummary(os.Stderr, cl.StageHistory())
	}
	if metricsPath != "" {
		if err := writeJSON(metricsPath, cl.Metrics().Snapshot()); err != nil {
			return err
		}
	}
	return nil
}

func writeReports(path string, reports []adr.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := adr.WriteJSON(f, reports); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}

func readReports(path string) ([]adr.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	reports, err := adr.ReadJSON(f)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return reports, nil
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}

func readJSON(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(v); err != nil {
		return fmt.Errorf("reading %s: %w", path, err)
	}
	return nil
}
