// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5), one benchmark per exhibit, plus ablation and engine micro-benchmarks.
// Pair counts are scaled down (see EXPERIMENTS.md) so the full suite runs in
// minutes; cmd/experiments runs the same code at larger scale. Paper-shape
// quantities (AUPR, comparison counts, virtual times) are emitted as custom
// benchmark metrics.
package adrdedup_test

import (
	"fmt"
	"sync"
	"testing"

	"adrdedup"
	"adrdedup/internal/adr"
	"adrdedup/internal/adrgen"
	"adrdedup/internal/cluster"
	"adrdedup/internal/core"
	"adrdedup/internal/eval"
	"adrdedup/internal/experiments"
	"adrdedup/internal/kmeans"
	"adrdedup/internal/knn"
	"adrdedup/internal/pairdist"
	"adrdedup/internal/rdd"
	"adrdedup/internal/svm"
	"adrdedup/internal/text"
)

// benchState is shared, lazily-built benchmark input: a small corpus with
// pair data at two sizes.
type benchState struct {
	env   *experiments.Env
	data  *experiments.PairData // 30k train / 4k test
	large *experiments.PairData // 60k train / 4k test
}

var (
	benchOnce sync.Once
	bench     benchState
	benchErr  error
)

func benchSetup(b *testing.B) *benchState {
	b.Helper()
	benchOnce.Do(func() {
		env, err := experiments.NewEnv(experiments.EnvConfig{
			Cluster: experiments.DefaultCluster(),
			Corpus:  experiments.SmallCorpus(1),
			Seed:    2,
		})
		if err != nil {
			benchErr = err
			return
		}
		bench.env = env
		if bench.data, benchErr = env.BuildPairData(30_000, 4_000, 0.3, 3); benchErr != nil {
			return
		}
		bench.large, benchErr = env.BuildPairData(60_000, 4_000, 0.3, 4)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return &bench
}

func knnAUPR(b *testing.B, s *benchState, data *experiments.PairData, cfg core.Config) (float64, core.Stats) {
	b.Helper()
	clf, err := core.Train(s.env.Ctx, data.Train, cfg)
	if err != nil {
		b.Fatal(err)
	}
	results, stats, err := clf.Classify(data.TestVecs)
	if err != nil {
		b.Fatal(err)
	}
	scores := make([]float64, len(results))
	for _, r := range results {
		scores[r.ID] = r.Score
	}
	aupr, err := eval.AUPR(scores, data.TestLabels)
	if err != nil {
		b.Fatal(err)
	}
	return aupr, stats
}

// BenchmarkTable3DatasetSummary times the Table 3 corpus summary over the
// full 10,382-report profile.
func BenchmarkTable3DatasetSummary(b *testing.B) {
	corpus := adrgen.Generate(experiments.DefaultCorpus(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(corpus)
		if err != nil {
			b.Fatal(err)
		}
		if res.Summary.NumCases != 10382 {
			b.Fatalf("cases = %d", res.Summary.NumCases)
		}
	}
}

// BenchmarkFig5PRCurves regenerates the Fig. 5(a)/(b) comparison: Fast kNN
// vs SVM PR behaviour on one imbalanced pair set.
func BenchmarkFig5PRCurves(b *testing.B) {
	s := benchSetup(b)
	for i := 0; i < b.N; i++ {
		aupr, _ := knnAUPR(b, s, s.data, core.Config{K: 9, B: 24, C: 6, Seed: 5})
		vecs, labels := experiments.SVMLabels(s.data.Train)
		m, err := svm.Train(vecs, labels, svm.Options{Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		svmAUPR, err := eval.AUPR(m.DecisionBatch(s.data.TestVecs), s.data.TestLabels)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(aupr, "kNN-AUPR")
		b.ReportMetric(svmAUPR, "SVM-AUPR")
	}
}

// BenchmarkFig5cAUPRByTrainingSize regenerates the Fig. 5(c) bars at two
// training sizes per classifier.
func BenchmarkFig5cAUPRByTrainingSize(b *testing.B) {
	s := benchSetup(b)
	for _, tc := range []struct {
		name string
		data *experiments.PairData
	}{
		{"train=30k", s.data},
		{"train=60k", s.large},
	} {
		b.Run(tc.name+"/kNN", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				aupr, _ := knnAUPR(b, s, tc.data, core.Config{K: 9, B: 24, C: 6, Seed: 6})
				b.ReportMetric(aupr, "AUPR")
			}
		})
		b.Run(tc.name+"/SVM", func(b *testing.B) {
			vecs, labels := experiments.SVMLabels(tc.data.Train)
			for i := 0; i < b.N; i++ {
				m, err := svm.Train(vecs, labels, svm.Options{Seed: 6})
				if err != nil {
					b.Fatal(err)
				}
				aupr, err := eval.AUPR(m.DecisionBatch(tc.data.TestVecs), tc.data.TestLabels)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(aupr, "AUPR")
			}
		})
		b.Run(tc.name+"/SVMclustering", func(b *testing.B) {
			vecs, labels := experiments.SVMLabels(tc.data.Train)
			for i := 0; i < b.N; i++ {
				m, err := svm.TrainClustered(vecs, labels, 8, svm.Options{Seed: 6})
				if err != nil {
					b.Fatal(err)
				}
				aupr, err := eval.AUPR(m.DecisionBatch(tc.data.TestVecs), tc.data.TestLabels)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(aupr, "AUPR")
			}
		})
	}
}

// BenchmarkFig6EffectOfK regenerates Fig. 6: AUPR stability and execution
// cost across k.
func BenchmarkFig6EffectOfK(b *testing.B) {
	s := benchSetup(b)
	for _, k := range []int{5, 13, 21} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				aupr, stats := knnAUPR(b, s, s.data, core.Config{K: k, B: 24, C: 6, Seed: 7})
				b.ReportMetric(aupr, "AUPR")
				b.ReportMetric(float64(stats.VirtualTime.Milliseconds()), "virtual-ms")
			}
		})
	}
}

// BenchmarkFig7ClusterNumber regenerates Fig. 7: comparison counts across
// the training cluster number.
func BenchmarkFig7ClusterNumber(b *testing.B) {
	s := benchSetup(b)
	for _, bb := range []int{10, 40, 70} {
		b.Run(fmt.Sprintf("b=%d", bb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, stats := knnAUPR(b, s, s.large, core.Config{K: 9, B: bb, C: 6, Seed: 8})
				b.ReportMetric(float64(stats.IntraClusterComparisons), "intra-cmps")
				b.ReportMetric(float64(stats.CrossClusterComparisons), "cross-cmps")
				b.ReportMetric(float64(stats.AdditionalClustersChecked), "clusters-checked")
			}
		})
	}
}

// BenchmarkFig8CrossIntraRatio regenerates Fig. 8(a)-(b): the cross/intra
// ratio and the memory-pressure regime at a small cluster number.
func BenchmarkFig8CrossIntraRatio(b *testing.B) {
	s := benchSetup(b)
	b.Run("comfortable-memory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, stats := knnAUPR(b, s, s.large, core.Config{K: 9, B: 40, C: 6, Seed: 9})
			b.ReportMetric(float64(stats.CrossClusterComparisons)/float64(stats.IntraClusterComparisons), "cross/intra")
			b.ReportMetric(float64(stats.VirtualTime.Milliseconds()), "virtual-ms")
		}
	})
	b.Run("tight-memory-small-b", func(b *testing.B) {
		cfg := experiments.DefaultCluster()
		cfg.MemoryPerExecutorMB = 1
		cfg.PressureTimeouts = true
		for i := 0; i < b.N; i++ {
			env, err := experiments.NewEnv(experiments.EnvConfig{
				Cluster: cfg, Corpus: experiments.SmallCorpus(1), Seed: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			clf, err := core.Train(env.Ctx, s.large.Train, core.Config{K: 9, B: 5, C: 6, Seed: 9})
			if err != nil {
				b.Fatal(err)
			}
			_, stats, err := clf.Classify(s.large.TestVecs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(stats.VirtualTime.Milliseconds()), "virtual-ms")
			b.ReportMetric(float64(env.Ctx.Cluster().Metrics().PressureEvents.Load()), "pressure-events")
		}
	})
}

// BenchmarkFig9TrainingScalability regenerates Fig. 9: virtual time growth
// with training size.
func BenchmarkFig9TrainingScalability(b *testing.B) {
	s := benchSetup(b)
	for _, tc := range []struct {
		name string
		data *experiments.PairData
	}{
		{"train=30k", s.data},
		{"train=60k", s.large},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, stats := knnAUPR(b, s, tc.data, core.Config{K: 9, B: 32, C: 8, Seed: 10})
				b.ReportMetric(float64(stats.VirtualTime.Milliseconds()), "virtual-ms")
			}
		})
	}
}

// BenchmarkFig10ExecutorScaling regenerates Fig. 10: virtual time across
// executor counts for the same workload.
func BenchmarkFig10ExecutorScaling(b *testing.B) {
	s := benchSetup(b)
	for _, execs := range []int{5, 25} {
		b.Run(fmt.Sprintf("executors=%d", execs), func(b *testing.B) {
			cfg := experiments.DefaultCluster()
			cfg.Executors = execs
			for i := 0; i < b.N; i++ {
				cl := cluster.New(cfg)
				ctx := rdd.NewContext(cl)
				clf, err := core.Train(ctx, s.data.Train, core.Config{K: 9, B: 48, C: 5, Seed: 11})
				if err != nil {
					b.Fatal(err)
				}
				_, stats, err := clf.Classify(s.data.TestVecs)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(stats.VirtualTime.Milliseconds()), "virtual-ms")
			}
		})
	}
}

// BenchmarkFig11TestSetPruning regenerates Fig. 11: detection cost with and
// without §4.3.4 testing-set pruning.
func BenchmarkFig11TestSetPruning(b *testing.B) {
	s := benchSetup(b)
	run := func(b *testing.B, pruning *core.PruningConfig) {
		for i := 0; i < b.N; i++ {
			clf, err := core.Train(s.env.Ctx, s.data.Train, core.Config{
				K: 9, B: 24, C: 6, Seed: 12, Pruning: pruning,
			})
			if err != nil {
				b.Fatal(err)
			}
			_, stats, err := clf.Classify(s.data.TestVecs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(1-float64(stats.PrunedPairs)/float64(stats.TestPairs), "included-frac")
			b.ReportMetric(float64(stats.VirtualTime.Milliseconds()), "virtual-ms")
		}
	}
	b.Run("no-pruning", func(b *testing.B) { run(b, nil) })
	for _, th := range []float64{0.5, 0.9} {
		b.Run(fmt.Sprintf("ftheta=%.1f", th), func(b *testing.B) {
			run(b, &core.PruningConfig{Clusters: 10, FTheta: th})
		})
	}
}

// BenchmarkAblationVoteVsWeighted compares Eq. 5 inverse-distance scoring
// against Eq. 1 majority voting under imbalance.
func BenchmarkAblationVoteVsWeighted(b *testing.B) {
	s := benchSetup(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablation(s.env, experiments.AblationParams{
			TrainSize: 20_000, TestSize: 3_000, Seed: 13,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Variant {
			case "fast-knn":
				b.ReportMetric(r.AUPR, "weighted-AUPR")
			case "majority-vote":
				b.ReportMetric(r.AUPR, "vote-AUPR")
			}
		}
	}
}

// BenchmarkAblationPartitionPruning measures what Algorithm 1 saves over
// exhaustive cross-cluster search.
func BenchmarkAblationPartitionPruning(b *testing.B) {
	s := benchSetup(b)
	b.Run("algorithm1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, stats := knnAUPR(b, s, s.data, core.Config{K: 9, B: 24, C: 6, Seed: 14})
			b.ReportMetric(float64(stats.CrossClusterComparisons), "cross-cmps")
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, stats := knnAUPR(b, s, s.data, core.Config{
				K: 9, B: 24, C: 6, Seed: 14, DisablePartitionPruning: true,
			})
			b.ReportMetric(float64(stats.CrossClusterComparisons), "cross-cmps")
		}
	})
}

// BenchmarkAblationRandomPartition measures what k-means Voronoi
// partitioning buys over random partitioning.
func BenchmarkAblationRandomPartition(b *testing.B) {
	s := benchSetup(b)
	b.Run("kmeans", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, stats := knnAUPR(b, s, s.data, core.Config{K: 9, B: 24, C: 6, Seed: 15})
			b.ReportMetric(float64(stats.CrossClusterComparisons), "cross-cmps")
		}
	})
	b.Run("random", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, stats := knnAUPR(b, s, s.data, core.Config{
				K: 9, B: 24, C: 6, Seed: 15, RandomPartition: true,
			})
			b.ReportMetric(float64(stats.CrossClusterComparisons), "cross-cmps")
		}
	})
}

// BenchmarkAblationLoadBalancing compares FIFO and LPT task placement —
// the paper's §7 future work — on the same classification workload.
func BenchmarkAblationLoadBalancing(b *testing.B) {
	s := benchSetup(b)
	for _, policy := range []cluster.SchedulePolicy{cluster.ScheduleFIFO, cluster.ScheduleLPT} {
		b.Run(policy.String(), func(b *testing.B) {
			cfg := experiments.DefaultCluster()
			cfg.Executors = 16
			cfg.Scheduling = policy
			for i := 0; i < b.N; i++ {
				ctx := rdd.NewContext(cluster.New(cfg))
				clf, err := core.Train(ctx, s.data.Train, core.Config{K: 9, B: 48, C: 8, Seed: 18})
				if err != nil {
					b.Fatal(err)
				}
				_, stats, err := clf.Classify(s.data.TestVecs)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(stats.VirtualTime.Milliseconds()), "virtual-ms")
			}
		})
	}
}

// BenchmarkLearnedPruningThreshold measures §5.2.6's future work: learning
// f(θ) from labelled data, then classifying with the learned setting.
func BenchmarkLearnedPruningThreshold(b *testing.B) {
	s := benchSetup(b)
	validation, err := s.env.BuildPairData(5_000, 100, 0.3, 19)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pruning, err := core.LearnPruningThreshold(s.data.Train, validation.Train, 10, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		clf, err := core.Train(s.env.Ctx, s.data.Train, core.Config{
			K: 9, B: 24, C: 6, Seed: 20, Pruning: pruning,
		})
		if err != nil {
			b.Fatal(err)
		}
		_, stats, err := clf.Classify(s.data.TestVecs)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pruning.FTheta, "learned-ftheta")
		b.ReportMetric(1-float64(stats.PrunedPairs)/float64(stats.TestPairs), "included-frac")
	}
}

// BenchmarkNaiveKNNJoinBaseline measures the §4.3.1 block nested-loop join
// that Fast kNN replaces, at matched data size.
func BenchmarkNaiveKNNJoinBaseline(b *testing.B) {
	s := benchSetup(b)
	train := make([]knn.Item, 10_000)
	for i := range train {
		train[i] = knn.Item{ID: i, Vec: s.data.Train[i].Vec, Label: s.data.Train[i].Label}
	}
	queries := make([]knn.Item, 1_000)
	for i := range queries {
		queries[i] = knn.Item{ID: 100_000 + i, Vec: s.data.TestVecs[i]}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := rdd.NewContext(cluster.New(experiments.DefaultCluster()))
		if _, err := knn.NaiveJoin(ctx, queries, train, 9, 5, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- engine and substrate micro-benchmarks ---

func BenchmarkPairDistance(b *testing.B) {
	s := benchSetup(b)
	f1 := s.env.Feats[0]
	f2 := s.env.Feats[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pairdist.Distance(f1, f2)
	}
}

func BenchmarkTextPipeline(b *testing.B) {
	s := benchSetup(b)
	desc := s.env.Corpus.Reports[0].ReportDescription
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text.Process(desc)
	}
}

func BenchmarkPorterStemmer(b *testing.B) {
	words := []string{"vaccination", "uncontrollable", "rhabdomyolysis", "experienced", "hospitalization"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text.Stem(words[i%len(words)])
	}
}

func BenchmarkKMeansPartitioning(b *testing.B) {
	s := benchSetup(b)
	vecs := make([][]float64, len(s.data.Train))
	for i, p := range s.data.Train {
		vecs[i] = p.Vec
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kmeans.Run(vecs, 32, kmeans.Options{Seed: 16, MaxIter: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactKNNQuery(b *testing.B) {
	s := benchSetup(b)
	vecs := make([][]float64, 10_000)
	labels := make([]int, 10_000)
	for i := range vecs {
		vecs[i] = s.data.Train[i].Vec
		labels[i] = s.data.Train[i].Label
	}
	q := s.data.TestVecs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		knn.Query(q, vecs, labels, 9)
	}
}

func BenchmarkRDDShuffleReduceByKey(b *testing.B) {
	pairs := make([]rdd.Pair[int, int], 100_000)
	for i := range pairs {
		pairs[i] = rdd.KV(i%1000, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := rdd.NewContext(cluster.New(cluster.Config{Executors: 8}))
		r := rdd.Parallelize(ctx, pairs, 16)
		if _, err := rdd.ReduceByKey(r, func(a, b int) int { return a + b }, 8).Count(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEndDetectBatch(b *testing.B) {
	corpus := adrgen.Generate(adrgen.Config{
		NumReports: 1000, DuplicatePairs: 40, NumDrugs: 200, NumADRs: 300, Seed: 17,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det, err := adrdedup.New(adrdedup.Options{
			Cluster:    cluster.Config{Executors: 8},
			Classifier: core.Config{K: 7, B: 12, C: 4},
		})
		if err != nil {
			b.Fatal(err)
		}
		all := corpus.Reports
		if err := det.AddKnownReports(stripArrival(all[:980])); err != nil {
			b.Fatal(err)
		}
		var labelled []adrdedup.LabeledCasePair
		for _, d := range corpus.Duplicates {
			if _, ok := det.Database().Get(d.CaseA); !ok {
				continue
			}
			if _, ok := det.Database().Get(d.CaseB); !ok {
				continue
			}
			labelled = append(labelled, adrdedup.LabeledCasePair{CaseA: d.CaseA, CaseB: d.CaseB, Duplicate: true})
		}
		dbReports := det.Database().Reports()
		for j := 0; j+13 < len(dbReports) && len(labelled) < 1500; j++ {
			labelled = append(labelled, adrdedup.LabeledCasePair{
				CaseA: dbReports[j].CaseNumber, CaseB: dbReports[j+13].CaseNumber,
			})
		}
		if err := det.TrainFromLabeledCases(labelled); err != nil {
			b.Fatal(err)
		}
		if _, err := det.Detect(stripArrival(all[980:])); err != nil {
			b.Fatal(err)
		}
	}
}

// stripArrival clears generator arrival sequences so the database assigns
// its own.
func stripArrival(rs []adr.Report) []adr.Report {
	out := make([]adr.Report, len(rs))
	copy(out, rs)
	for i := range out {
		out[i].ArrivalSeq = 0
	}
	return out
}
