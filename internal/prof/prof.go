// Package prof wires the standard runtime/pprof CPU and heap profiles into
// the command binaries' -cpuprofile / -memprofile flags, so kernel-level
// changes (cache tiling, real-parallel scaling) are measurable with
// `go tool pprof` on real workloads rather than only in microbenchmarks.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Session is one run's profiling state: an in-progress CPU profile and a
// pending heap snapshot path. The zero Session (from Start("", "")) is
// inert and Stop on it is a no-op, so callers can wire it unconditionally.
type Session struct {
	cpu     *os.File
	memPath string
}

// Start begins a CPU profile to cpuPath (when non-empty) and remembers
// memPath for the heap snapshot Stop writes. On error nothing is left
// running.
func Start(cpuPath, memPath string) (*Session, error) {
	s := &Session{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("starting CPU profile: %w", err)
		}
		s.cpu = f
	}
	return s, nil
}

// Stop ends the CPU profile and writes the heap profile (after a GC, so the
// snapshot reflects live heap rather than garbage). Safe to call on a nil
// or zero Session and idempotent.
func (s *Session) Stop() error {
	if s == nil {
		return nil
	}
	var first error
	if s.cpu != nil {
		pprof.StopCPUProfile()
		if err := s.cpu.Close(); err != nil {
			first = err
		}
		s.cpu = nil
	}
	if s.memPath != "" {
		f, err := os.Create(s.memPath)
		if err != nil {
			if first == nil {
				first = err
			}
			s.memPath = ""
			return first
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
			first = fmt.Errorf("writing heap profile: %w", err)
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		s.memPath = ""
	}
	return first
}
