package adr

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sample(caseNum string) Report {
	return Report{
		CaseNumber:          caseNum,
		ReportDate:          "2013-10-02",
		CalculatedAge:       46,
		Sex:                 "M",
		ResidentialState:    "NSW",
		OnsetDate:           "30/04/2013 00:00:00",
		ReactionOutcomeDesc: "Recovered",
		GenericNameDesc:     "Atorvastatin",
		MedDRAPTName:        "Rhabdomyolysis",
		MedDRAPTCode:        "PT0001",
		ReportDescription:   "The 46-year-old male subject started treatment with atorvastatin.",
	}
}

func TestSchemaShape(t *testing.T) {
	s := Schema()
	if len(s) != NumFields {
		t.Fatalf("schema has %d fields, want %d", len(s), NumFields)
	}
	selected := 0
	groups := make(map[string]int)
	for _, f := range s {
		if f.Selected {
			selected++
		}
		groups[f.Group]++
	}
	if selected != 7 {
		t.Errorf("selected fields = %d, want 7 (age, sex, state, onset, PT code, generic name, description)", selected)
	}
	wantGroups := map[string]int{
		"Case Details": 2, "Patient Details": 5, "Reaction Information": 14,
		"Medicine Information": 14, "Reporter Details": 2,
	}
	if !reflect.DeepEqual(groups, wantGroups) {
		t.Errorf("groups = %v, want %v", groups, wantGroups)
	}
}

func TestFieldTypeString(t *testing.T) {
	cases := map[FieldType]string{
		Numerical: "numerical", Categorical: "categorical",
		String: "string", Text: "text", FieldType(99): "unknown",
	}
	for ft, want := range cases {
		if got := ft.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ft, got, want)
		}
	}
}

func TestDatabaseAddAndOrder(t *testing.T) {
	db := NewDatabase()
	if err := db.Add(sample("A"), sample("B"), sample("C")); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 3 {
		t.Fatalf("Len = %d", db.Len())
	}
	reports := db.Reports()
	for i, r := range reports {
		if r.ArrivalSeq != i {
			t.Errorf("report %d has ArrivalSeq %d", i, r.ArrivalSeq)
		}
	}
	got, ok := db.Get("B")
	if !ok || got.ArrivalSeq != 1 {
		t.Errorf("Get(B) = %+v, %v", got, ok)
	}
	if _, ok := db.Get("missing"); ok {
		t.Error("Get of missing case should fail")
	}
}

func TestDatabaseRejectsDuplicatesAndEmptyCase(t *testing.T) {
	db := NewDatabase()
	if err := db.Add(sample("A")); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(sample("A")); err == nil {
		t.Error("expected error on duplicate case number")
	}
	if err := db.Add(Report{}); err == nil {
		t.Error("expected error on empty case number")
	}
}

func TestDatabaseBefore(t *testing.T) {
	db := NewDatabase()
	if err := db.Add(sample("A"), sample("B"), sample("C")); err != nil {
		t.Fatal(err)
	}
	if got := db.Before(2); len(got) != 2 || got[1].CaseNumber != "B" {
		t.Errorf("Before(2) = %v", got)
	}
	if got := db.Before(10); len(got) != 3 {
		t.Errorf("Before(10) len = %d", len(got))
	}
	if got := db.Before(-1); len(got) != 0 {
		t.Errorf("Before(-1) len = %d", len(got))
	}
}

func TestSummarize(t *testing.T) {
	db := NewDatabase()
	a := sample("A")
	a.GenericNameDesc = "Influenza Vaccine,Dtpa Vaccine"
	a.MedDRAPTName = "Vomiting,Pyrexia,Cough"
	a.ReportDate = "2013-07-01"
	b := sample("B")
	b.GenericNameDesc = "Atorvastatin"
	b.MedDRAPTName = "Rhabdomyolysis,Cough"
	b.ReportDate = "2013-12-31"
	if err := db.Add(a, b); err != nil {
		t.Fatal(err)
	}
	s := db.Summarize()
	if s.NumCases != 2 || s.NumFields != 37 {
		t.Errorf("cases/fields = %d/%d", s.NumCases, s.NumFields)
	}
	if s.UniqueDrugs != 3 {
		t.Errorf("unique drugs = %d, want 3", s.UniqueDrugs)
	}
	if s.UniqueADRs != 4 {
		t.Errorf("unique ADRs = %d, want 4", s.UniqueADRs)
	}
	if s.ReportPeriod != "2013-07-01 - 2013-12-31" {
		t.Errorf("period = %q", s.ReportPeriod)
	}
}

func TestSplitMulti(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"A", []string{"A"}},
		{"A,B", []string{"A", "B"}},
		{"A, B ,C", []string{"A", "B", "C"}},
		{",,A,,", []string{"A"}},
	}
	for _, c := range cases {
		if got := SplitMulti(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitMulti(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := []Report{sample("A"), sample("B")}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Error("JSON round trip changed reports")
	}
}

func TestJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("expected error for invalid JSON")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	in := []Report{sample("A"), sample("B")}
	// The description includes a comma to exercise CSV quoting.
	in[0].ReportDescription = "cough, then choking; called ambulance"
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("rows = %d", len(out))
	}
	if out[0].ReportDescription != in[0].ReportDescription {
		t.Errorf("description mangled: %q", out[0].ReportDescription)
	}
	if out[1].CalculatedAge != 46 || out[1].MedDRAPTCode != "PT0001" {
		t.Errorf("row 2 = %+v", out[1])
	}
}

func TestCSVRejectsBadHeaderAndAge(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("wrong,header\n")); err == nil {
		t.Error("expected error for wrong header")
	}
	bad := strings.Join(csvHeader, ",") + "\nA,2013,notanage,M,NSW,x,y,z,w,v,desc\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Error("expected error for non-numeric age")
	}
}

func TestFormatOnsetDate(t *testing.T) {
	// Table 1 shows "30/04/2013 00:00:00".
	got := FormatOnsetDate(time.Date(2013, 4, 30, 0, 0, 0, 0, time.UTC))
	if got != "30/04/2013 00:00:00" {
		t.Errorf("FormatOnsetDate = %q", got)
	}
}

func TestDatabaseAddAtomic(t *testing.T) {
	db := NewDatabase()
	if err := db.Add(sample("A"), sample("B")); err != nil {
		t.Fatal(err)
	}
	// Mid-batch collision with a stored report: nothing may be absorbed,
	// not even the valid prefix before the colliding report.
	if err := db.Add(sample("C"), sample("A"), sample("D")); err == nil {
		t.Fatal("expected error on mid-batch collision")
	}
	if db.Len() != 2 {
		t.Fatalf("rejected batch changed Len: %d, want 2", db.Len())
	}
	if _, ok := db.Get("C"); ok {
		t.Error("prefix of rejected batch was absorbed")
	}
	// Intra-batch collision, no overlap with stored reports.
	if err := db.Add(sample("E"), sample("E")); err == nil {
		t.Fatal("expected error on intra-batch collision")
	}
	if _, ok := db.Get("E"); ok {
		t.Error("intra-batch colliding report was absorbed")
	}
	// The database still works after rejections.
	if err := db.Add(sample("C"), sample("D")); err != nil {
		t.Fatal(err)
	}
	if got, _ := db.Get("C"); got.ArrivalSeq != 2 {
		t.Errorf("C has ArrivalSeq %d, want 2", got.ArrivalSeq)
	}
}

func TestDatabaseTruncate(t *testing.T) {
	db := NewDatabase()
	if err := db.Add(sample("A"), sample("B"), sample("C"), sample("D")); err != nil {
		t.Fatal(err)
	}
	db.Truncate(2)
	if db.Len() != 2 {
		t.Fatalf("Len after Truncate(2) = %d", db.Len())
	}
	if _, ok := db.Get("C"); ok {
		t.Error("truncated case C still resolvable")
	}
	if _, ok := db.Get("B"); !ok {
		t.Error("surviving case B lost")
	}
	// Truncated case numbers are free again and sequences continue from
	// the truncation point.
	if err := db.Add(sample("C"), sample("E")); err != nil {
		t.Fatal(err)
	}
	if got, _ := db.Get("C"); got.ArrivalSeq != 2 {
		t.Errorf("re-added C has ArrivalSeq %d, want 2", got.ArrivalSeq)
	}
	// Out-of-range truncations are no-ops / clamps.
	db.Truncate(99)
	if db.Len() != 4 {
		t.Errorf("Truncate(99) changed Len to %d", db.Len())
	}
	db.Truncate(-1)
	if db.Len() != 0 {
		t.Errorf("Truncate(-1) left Len %d", db.Len())
	}
}
