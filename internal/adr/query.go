package adr

import "strings"

// FindByDrug returns the reports whose generic-name field contains the
// given drug (case-insensitive exact term match within the comma-separated
// list), in arrival order. Disproportionality analyses and candidate
// blocking both start from per-drug report sets.
func (d *Database) FindByDrug(drug string) []Report {
	return d.filter(func(r Report) bool {
		return containsTerm(r.GenericNameDesc, drug)
	})
}

// FindByADR returns the reports whose MedDRA PT list contains the given
// reaction term (case-insensitive), in arrival order.
func (d *Database) FindByADR(term string) []Report {
	return d.filter(func(r Report) bool {
		return containsTerm(r.MedDRAPTName, term)
	})
}

// FindByReportDateRange returns the reports whose report date lies within
// [from, to] (inclusive, ISO "2006-01-02" strings, lexicographic compare),
// in arrival order.
func (d *Database) FindByReportDateRange(from, to string) []Report {
	return d.filter(func(r Report) bool {
		return r.ReportDate >= from && r.ReportDate <= to
	})
}

// DrugReactionCounts returns, for the given drug, how many of its reports
// mention each reaction term — the contingency row that disproportionality
// methods (PRR; the paper's §1 motivation) consume.
func (d *Database) DrugReactionCounts(drug string) map[string]int {
	out := make(map[string]int)
	for _, r := range d.FindByDrug(drug) {
		for _, term := range SplitMulti(r.MedDRAPTName) {
			out[term]++
		}
	}
	return out
}

func (d *Database) filter(keep func(Report) bool) []Report {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []Report
	for _, r := range d.reports {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

func containsTerm(csv, term string) bool {
	term = strings.TrimSpace(term)
	for _, v := range SplitMulti(csv) {
		if strings.EqualFold(v, term) {
			return true
		}
	}
	return false
}
