// Package adr models adverse drug reaction (ADR) reports with the TGA schema
// the paper works with (Table 2): 37 fields across case, patient, reaction,
// medicine, and reporter groups. It also provides the report database
// abstraction of §3 — an arrival-ordered store that new report batches are
// checked against — plus JSON and CSV codecs.
package adr

import "time"

// Report is one adverse drug reaction report. Multi-valued fields (drug
// names, ADR terms) hold comma-separated lists, as in the TGA extract the
// paper shows in Table 1 ("Influenza Vaccine,Dtpa Vaccine").
type Report struct {
	// Case Details.
	CaseNumber string `json:"caseNumber"`
	ReportDate string `json:"reportDate"`

	// Patient Details.
	CalculatedAge    int    `json:"calculatedAge"`
	Sex              string `json:"sex"`
	WeightCode       string `json:"weightCode"`
	EthnicityCode    string `json:"ethnicityCode"`
	ResidentialState string `json:"residentialState"`

	// Reaction Information.
	OnsetDate           string `json:"onsetDate"`
	DateOfOutcome       string `json:"dateOfOutcome"`
	ReactionOutcomeCode string `json:"reactionOutcomeCode"`
	ReactionOutcomeDesc string `json:"reactionOutcomeDesc"`
	SeverityCode        string `json:"severityCode"`
	SeverityDesc        string `json:"severityDesc"`
	ReportDescription   string `json:"reportDescription"`
	TreatmentText       string `json:"treatmentText"`
	HospitalisationCode string `json:"hospitalisationCode"`
	HospitalisationDesc string `json:"hospitalisationDesc"`
	MedDRALLTCode       string `json:"meddraLLTCode"`
	MedDRALLTName       string `json:"meddraLLTName"`
	MedDRAPTCode        string `json:"meddraPTCode"`
	MedDRAPTName        string `json:"meddraPTName"`

	// Medicine Information.
	SuspectCode        string `json:"suspectCode"`
	SuspectDesc        string `json:"suspectDesc"`
	TradeNameCode      string `json:"tradeNameCode"`
	TradeNameDesc      string `json:"tradeNameDesc"`
	GenericNameCode    string `json:"genericNameCode"`
	GenericNameDesc    string `json:"genericNameDesc"`
	DosageAmount       string `json:"dosageAmount"`
	UnitProportionCode string `json:"unitProportionCode"`
	DosageFormCode     string `json:"dosageFormCode"`
	DosageFormDesc     string `json:"dosageFormDesc"`
	RouteOfAdminCode   string `json:"routeOfAdminCode"`
	RouteOfAdminDesc   string `json:"routeOfAdminDesc"`
	DosageStartDate    string `json:"dosageStartDate"`
	DosageHaltDate     string `json:"dosageHaltDate"`

	// Reporter Details.
	ReporterType   string `json:"reporterType"`
	ReportTypeDesc string `json:"reportTypeDesc"`

	// ArrivalSeq orders reports by arrival in the database (§3: later
	// arrivals are checked against earlier ones). It is assigned by the
	// Database, not part of the TGA schema.
	ArrivalSeq int `json:"arrivalSeq"`
}

// FieldType classifies a schema field for distance computation (§4.2).
type FieldType int

const (
	// Numerical fields compare by exact value (distance 0 or 1 in the
	// paper's scheme).
	Numerical FieldType = iota
	// Categorical fields compare by exact value.
	Categorical
	// String fields compare by Jaccard over their token sets.
	String
	// Text fields are long free text, tokenized, stop-worded, and stemmed
	// before Jaccard comparison.
	Text
)

func (t FieldType) String() string {
	switch t {
	case Numerical:
		return "numerical"
	case Categorical:
		return "categorical"
	case String:
		return "string"
	case Text:
		return "text"
	default:
		return "unknown"
	}
}

// FieldInfo describes one schema field.
type FieldInfo struct {
	Name     string
	Group    string
	Type     FieldType
	Selected bool // bold in Table 2: used for duplicate detection
}

// Schema lists the 37 TGA report fields of Table 2 in order, marking the
// seven fields the paper's duplicate detection method uses.
func Schema() []FieldInfo {
	return []FieldInfo{
		{"case number", "Case Details", String, false},
		{"report date", "Case Details", Categorical, false},
		{"calculated age", "Patient Details", Numerical, true},
		{"sex", "Patient Details", Categorical, true},
		{"weight code", "Patient Details", Categorical, false},
		{"ethnicity code", "Patient Details", Categorical, false},
		{"residential state", "Patient Details", Categorical, true},
		{"onset date", "Reaction Information", Categorical, true},
		{"date of outcome", "Reaction Information", Categorical, false},
		{"reaction outcome code", "Reaction Information", Categorical, false},
		{"reaction outcome description", "Reaction Information", String, false},
		{"severity code", "Reaction Information", Categorical, false},
		{"severity description", "Reaction Information", String, false},
		{"report description", "Reaction Information", Text, true},
		{"treatment text", "Reaction Information", Text, false},
		{"hospitalisation code", "Reaction Information", Categorical, false},
		{"hospitalisation description", "Reaction Information", String, false},
		{"MedDRA LLT code", "Reaction Information", String, false},
		{"LLT name", "Reaction Information", String, false},
		{"MedDRA PT code", "Reaction Information", String, true},
		{"PT name", "Reaction Information", String, false},
		{"suspect code", "Medicine Information", Categorical, false},
		{"suspect description", "Medicine Information", String, false},
		{"trade name code", "Medicine Information", String, false},
		{"trade name description", "Medicine Information", String, false},
		{"generic name code", "Medicine Information", String, false},
		{"generic name description", "Medicine Information", String, true},
		{"dosage amount", "Medicine Information", Categorical, false},
		{"unit proportion code", "Medicine Information", Categorical, false},
		{"dosage form code", "Medicine Information", Categorical, false},
		{"dosage form description", "Medicine Information", String, false},
		{"route of administration code", "Medicine Information", Categorical, false},
		{"route of administration description", "Medicine Information", String, false},
		{"dosage start date", "Medicine Information", Categorical, false},
		{"dosage halt date", "Medicine Information", Categorical, false},
		{"reporter type", "Reporter Details", Categorical, false},
		{"report type description", "Reporter Details", String, false},
	}
}

// NumFields is the TGA schema width the paper reports in Table 3.
const NumFields = 37

// DateLayout is the timestamp format TGA extracts use for onset dates
// ("30/04/2013 00:00:00" in Table 1).
const DateLayout = "02/01/2006 15:04:05"

// FormatOnsetDate renders t in the TGA onset-date format.
func FormatOnsetDate(t time.Time) string {
	return t.Format(DateLayout)
}
