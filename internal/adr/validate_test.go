package adr

import (
	"strings"
	"testing"
)

func validReport() Report {
	r := sample("OK-1")
	return r
}

func issuesFor(t *testing.T, r Report, field string) []ValidationIssue {
	t.Helper()
	var hits []ValidationIssue
	for _, i := range Validate(r) {
		if i.Field == field {
			hits = append(hits, i)
		}
	}
	return hits
}

func TestValidateCleanReport(t *testing.T) {
	if issues := Validate(validReport()); len(issues) != 0 {
		t.Errorf("clean report has issues: %v", issues)
	}
}

func TestValidateMissingCaseNumber(t *testing.T) {
	r := validReport()
	r.CaseNumber = "  "
	if len(issuesFor(t, r, "case number")) == 0 {
		t.Error("missing case number not flagged")
	}
}

func TestValidateAgeRange(t *testing.T) {
	for _, age := range []int{-1, 131, 999} {
		r := validReport()
		r.CalculatedAge = age
		if len(issuesFor(t, r, "calculated age")) == 0 {
			t.Errorf("age %d not flagged", age)
		}
	}
	r := validReport()
	r.CalculatedAge = 0 // newborns are valid
	if len(issuesFor(t, r, "calculated age")) != 0 {
		t.Error("age 0 wrongly flagged")
	}
}

func TestValidateSexCodes(t *testing.T) {
	r := validReport()
	r.Sex = "X"
	if len(issuesFor(t, r, "sex")) == 0 {
		t.Error("bad sex code not flagged")
	}
	for _, ok := range []string{"M", "F", "U", ""} {
		r.Sex = ok
		if len(issuesFor(t, r, "sex")) != 0 {
			t.Errorf("sex %q wrongly flagged", ok)
		}
	}
}

func TestValidateOnsetDate(t *testing.T) {
	r := validReport()
	r.OnsetDate = "April 30th 2013"
	if len(issuesFor(t, r, "onset date")) == 0 {
		t.Error("malformed onset date not flagged")
	}
	for _, ok := range []string{"-", "", "Not Known", "30/04/2013 00:00:00"} {
		r.OnsetDate = ok
		if len(issuesFor(t, r, "onset date")) != 0 {
			t.Errorf("onset %q wrongly flagged", ok)
		}
	}
}

func TestValidateMissingSelectedFields(t *testing.T) {
	r := validReport()
	r.GenericNameDesc = "-"
	r.MedDRAPTName = ""
	if len(issuesFor(t, r, "generic name description")) == 0 {
		t.Error("missing drug not flagged")
	}
	if len(issuesFor(t, r, "MedDRA PT name")) == 0 {
		t.Error("missing ADR not flagged")
	}
}

func TestValidateShortDescription(t *testing.T) {
	r := validReport()
	r.ReportDescription = "bad"
	if len(issuesFor(t, r, "report description")) == 0 {
		t.Error("short description not flagged")
	}
	r.ReportDescription = "" // absent is allowed (handled as missing data)
	if len(issuesFor(t, r, "report description")) != 0 {
		t.Error("empty description wrongly flagged")
	}
}

func TestValidateCodeTermMismatch(t *testing.T) {
	r := validReport()
	r.MedDRAPTName = "Cough,Headache"
	r.MedDRAPTCode = "PT000001"
	if len(issuesFor(t, r, "MedDRA PT code")) == 0 {
		t.Error("code/term count mismatch not flagged")
	}
}

func TestIsMissing(t *testing.T) {
	for _, v := range []string{"", "-", "Not Known", "Unknown", "  -  "} {
		if !IsMissing(v) {
			t.Errorf("IsMissing(%q) = false", v)
		}
	}
	if IsMissing("Atorvastatin") {
		t.Error("real value reported missing")
	}
}

func TestValidationIssueString(t *testing.T) {
	s := ValidationIssue{Field: "sex", Message: "bad"}.String()
	if !strings.Contains(s, "sex") || !strings.Contains(s, "bad") {
		t.Errorf("String() = %q", s)
	}
}
