package adr

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteJSON streams reports as a JSON array.
func WriteJSON(w io.Writer, reports []Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}

// ReadJSON parses a JSON array of reports.
func ReadJSON(r io.Reader) ([]Report, error) {
	var out []Report
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("adr: decoding reports: %w", err)
	}
	return out, nil
}

// csvHeader lists the CSV columns in a stable order. Only a compact subset
// of fields round-trips through CSV: the seven selected fields plus
// identifiers — the columns the duplicate detection pipeline consumes.
var csvHeader = []string{
	"case_number", "report_date", "calculated_age", "sex",
	"residential_state", "onset_date", "reaction_outcome_description",
	"generic_name_description", "meddra_pt_name", "meddra_pt_code",
	"report_description",
}

// WriteCSV writes the pipeline-relevant columns of the reports.
func WriteCSV(w io.Writer, reports []Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range reports {
		rec := []string{
			r.CaseNumber, r.ReportDate, strconv.Itoa(r.CalculatedAge),
			r.Sex, r.ResidentialState, r.OnsetDate, r.ReactionOutcomeDesc,
			r.GenericNameDesc, r.MedDRAPTName, r.MedDRAPTCode,
			r.ReportDescription,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses reports previously written by WriteCSV.
func ReadCSV(r io.Reader) ([]Report, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("adr: reading CSV header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("adr: CSV has %d columns, want %d", len(header), len(csvHeader))
	}
	for i, col := range header {
		if col != csvHeader[i] {
			return nil, fmt.Errorf("adr: CSV column %d is %q, want %q", i, col, csvHeader[i])
		}
	}
	var out []Report
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("adr: reading CSV line %d: %w", line, err)
		}
		age, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("adr: CSV line %d: bad age %q", line, rec[2])
		}
		out = append(out, Report{
			CaseNumber:          rec[0],
			ReportDate:          rec[1],
			CalculatedAge:       age,
			Sex:                 rec[3],
			ResidentialState:    rec[4],
			OnsetDate:           rec[5],
			ReactionOutcomeDesc: rec[6],
			GenericNameDesc:     rec[7],
			MedDRAPTName:        rec[8],
			MedDRAPTCode:        rec[9],
			ReportDescription:   rec[10],
		})
	}
	return out, nil
}
