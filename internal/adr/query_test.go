package adr

import "testing"

func queryDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	a := sample("A")
	a.GenericNameDesc = "Atorvastatin"
	a.MedDRAPTName = "Rhabdomyolysis,Myalgia"
	a.ReportDate = "2013-08-01"
	b := sample("B")
	b.GenericNameDesc = "Influenza Vaccine,Dtpa Vaccine"
	b.MedDRAPTName = "Cough,Headache"
	b.ReportDate = "2013-10-15"
	c := sample("C")
	c.GenericNameDesc = "Atorvastatin,Omeprazole"
	c.MedDRAPTName = "Myalgia"
	c.ReportDate = "2013-12-01"
	if err := db.Add(a, b, c); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFindByDrug(t *testing.T) {
	db := queryDB(t)
	got := db.FindByDrug("atorvastatin") // case-insensitive
	if len(got) != 2 || got[0].CaseNumber != "A" || got[1].CaseNumber != "C" {
		t.Errorf("FindByDrug = %v", caseNumbers(got))
	}
	if got := db.FindByDrug("Dtpa Vaccine"); len(got) != 1 || got[0].CaseNumber != "B" {
		t.Errorf("multi-valued match = %v", caseNumbers(got))
	}
	if got := db.FindByDrug("Ator"); got != nil {
		t.Errorf("substring must not match: %v", caseNumbers(got))
	}
}

func TestFindByADR(t *testing.T) {
	db := queryDB(t)
	got := db.FindByADR("myalgia")
	if len(got) != 2 {
		t.Errorf("FindByADR = %v", caseNumbers(got))
	}
	if got := db.FindByADR("Vertigo"); got != nil {
		t.Errorf("absent term matched: %v", caseNumbers(got))
	}
}

func TestFindByReportDateRange(t *testing.T) {
	db := queryDB(t)
	got := db.FindByReportDateRange("2013-09-01", "2013-12-31")
	if len(got) != 2 || got[0].CaseNumber != "B" {
		t.Errorf("range = %v", caseNumbers(got))
	}
	if got := db.FindByReportDateRange("2014-01-01", "2014-06-30"); got != nil {
		t.Errorf("empty range returned %v", caseNumbers(got))
	}
}

func TestDrugReactionCounts(t *testing.T) {
	db := queryDB(t)
	counts := db.DrugReactionCounts("Atorvastatin")
	if counts["Myalgia"] != 2 || counts["Rhabdomyolysis"] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if len(counts) != 2 {
		t.Errorf("unexpected terms: %v", counts)
	}
}

func caseNumbers(rs []Report) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.CaseNumber
	}
	return out
}
