package adr

import (
	"fmt"
	"strings"
	"sync"
)

// Database is the report database of §3: an arrival-ordered store of ADR
// reports. New reports are appended with increasing arrival sequence numbers;
// duplicate detection checks each arriving batch against all earlier reports
// plus the batch itself (Eq. 3).
//
// Database is safe for concurrent use.
type Database struct {
	mu      sync.RWMutex
	reports []Report
	byCase  map[string]int
}

// NewDatabase creates an empty report database.
func NewDatabase() *Database {
	return &Database{byCase: make(map[string]int)}
}

// Add appends reports in arrival order, assigning arrival sequence numbers.
// It returns an error if a case number collides with an existing report —
// case numbers identify records, and a collision means the feed is broken
// (duplicate *reports* have different case numbers; that is the problem this
// system exists to solve).
//
// Add is atomic: the whole batch is validated before anything is stored, so
// a rejected batch leaves the database exactly as it was — no prefix of the
// batch is absorbed.
func (d *Database) Add(reports ...Report) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	inBatch := make(map[string]struct{}, len(reports))
	for _, r := range reports {
		if r.CaseNumber == "" {
			return fmt.Errorf("adr: report without case number")
		}
		if _, exists := d.byCase[r.CaseNumber]; exists {
			return fmt.Errorf("adr: duplicate case number %q", r.CaseNumber)
		}
		if _, exists := inBatch[r.CaseNumber]; exists {
			return fmt.Errorf("adr: duplicate case number %q", r.CaseNumber)
		}
		inBatch[r.CaseNumber] = struct{}{}
	}
	for _, r := range reports {
		r.ArrivalSeq = len(d.reports)
		d.byCase[r.CaseNumber] = len(d.reports)
		d.reports = append(d.reports, r)
	}
	return nil
}

// Truncate discards every report with arrival sequence >= n, restoring the
// database to its state before those reports were added. Callers use it to
// roll back an absorbed batch when a later step of an atomic operation
// fails. Truncating beyond the current length is a no-op.
func (d *Database) Truncate(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n >= len(d.reports) {
		return
	}
	for _, r := range d.reports[n:] {
		delete(d.byCase, r.CaseNumber)
	}
	d.reports = d.reports[:n]
}

// Len returns the number of stored reports.
func (d *Database) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.reports)
}

// Reports returns a snapshot of all reports in arrival order.
func (d *Database) Reports() []Report {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Report, len(d.reports))
	copy(out, d.reports)
	return out
}

// Get returns the report with the given case number.
func (d *Database) Get(caseNumber string) (Report, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	i, ok := d.byCase[caseNumber]
	if !ok {
		return Report{}, false
	}
	return d.reports[i], true
}

// Before returns a snapshot of the reports that arrived before the given
// arrival sequence — the "existing database" a new batch is compared
// against.
func (d *Database) Before(seq int) []Report {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if seq > len(d.reports) {
		seq = len(d.reports)
	}
	if seq < 0 {
		seq = 0
	}
	out := make([]Report, seq)
	copy(out, d.reports[:seq])
	return out
}

// Summary holds the corpus statistics the paper reports in Table 3.
type Summary struct {
	NumCases     int
	NumFields    int
	UniqueDrugs  int
	UniqueADRs   int
	ReportPeriod string
}

// Summarize computes Table 3-style statistics over the stored reports.
// Multi-valued drug and ADR fields are split on commas before counting
// unique values.
func (d *Database) Summarize() Summary {
	d.mu.RLock()
	defer d.mu.RUnlock()
	drugs := make(map[string]struct{})
	adrs := make(map[string]struct{})
	minDate, maxDate := "", ""
	for _, r := range d.reports {
		for _, v := range SplitMulti(r.GenericNameDesc) {
			drugs[v] = struct{}{}
		}
		for _, v := range SplitMulti(r.MedDRAPTName) {
			adrs[v] = struct{}{}
		}
		if r.ReportDate != "" {
			if minDate == "" || r.ReportDate < minDate {
				minDate = r.ReportDate
			}
			if r.ReportDate > maxDate {
				maxDate = r.ReportDate
			}
		}
	}
	period := ""
	if minDate != "" {
		period = minDate + " - " + maxDate
	}
	return Summary{
		NumCases:     len(d.reports),
		NumFields:    NumFields,
		UniqueDrugs:  len(drugs),
		UniqueADRs:   len(adrs),
		ReportPeriod: period,
	}
}

// SplitMulti splits a comma-separated multi-valued field into trimmed
// values, dropping empties.
func SplitMulti(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if v := strings.TrimSpace(part); v != "" {
			out = append(out, v)
		}
	}
	return out
}
