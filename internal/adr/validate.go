package adr

import (
	"fmt"
	"strings"
	"time"
)

// ValidationIssue describes one problem found in a report. Issues are
// warnings, not fatal: real SRS feeds are full of partial records, and the
// duplicate detection pipeline is designed to tolerate them — but regulators
// want them surfaced.
type ValidationIssue struct {
	Field   string
	Message string
}

func (v ValidationIssue) String() string {
	return fmt.Sprintf("%s: %s", v.Field, v.Message)
}

// missingMarkers are the values TGA extracts use for absent data.
var missingMarkers = map[string]bool{"": true, "-": true, "Not Known": true, "Unknown": true}

// IsMissing reports whether a field value denotes absent data.
func IsMissing(v string) bool { return missingMarkers[strings.TrimSpace(v)] }

// Validate checks a report for structural problems: a missing case number
// (fatal for storage), out-of-range ages, malformed onset dates, empty
// selected fields. It returns the issues found; an empty slice means the
// report is clean.
func Validate(r Report) []ValidationIssue {
	var issues []ValidationIssue
	add := func(field, format string, args ...any) {
		issues = append(issues, ValidationIssue{Field: field, Message: fmt.Sprintf(format, args...)})
	}
	if strings.TrimSpace(r.CaseNumber) == "" {
		add("case number", "missing")
	}
	if r.CalculatedAge < 0 || r.CalculatedAge > 130 {
		add("calculated age", "implausible value %d", r.CalculatedAge)
	}
	switch r.Sex {
	case "M", "F", "U", "":
	default:
		add("sex", "unrecognized code %q", r.Sex)
	}
	if !IsMissing(r.OnsetDate) {
		if _, err := time.Parse(DateLayout, r.OnsetDate); err != nil {
			add("onset date", "not in TGA format %q: %q", DateLayout, r.OnsetDate)
		}
	}
	if IsMissing(r.GenericNameDesc) {
		add("generic name description", "missing; drug matching degraded")
	}
	if IsMissing(r.MedDRAPTName) {
		add("MedDRA PT name", "missing; reaction matching degraded")
	}
	if len(r.ReportDescription) > 0 && len(r.ReportDescription) < 20 {
		add("report description", "suspiciously short (%d chars)", len(r.ReportDescription))
	}
	names := SplitMulti(r.MedDRAPTName)
	codes := SplitMulti(r.MedDRAPTCode)
	if len(names) > 0 && len(codes) > 0 && len(names) != len(codes) {
		add("MedDRA PT code", "%d codes for %d terms", len(codes), len(names))
	}
	return issues
}
