package eval

import (
	"math"
	"math/rand"
	"testing"
)

func TestROCPerfectRanking(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.3, 0.2}
	labels := []int{1, 1, -1, -1}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Errorf("perfect AUC = %v, want 1", auc)
	}
	points, err := ROCCurve(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	last := points[len(points)-1]
	if last.FPR != 1 || last.TPR != 1 {
		t.Errorf("curve must end at (1,1), got %+v", last)
	}
}

func TestROCWorstRanking(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.3, 0.2}
	labels := []int{-1, -1, 1, 1}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0 {
		t.Errorf("inverted AUC = %v, want 0", auc)
	}
}

func TestAUCChanceLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 20000
	scores := make([]float64, n)
	labels := make([]int, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = -1
		if rng.Float64() < 0.05 {
			labels[i] = 1
		}
	}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.05 {
		t.Errorf("random AUC = %v, want ~0.5", auc)
	}
}

func TestROCvsPROnImbalance(t *testing.T) {
	// The Davis & Goadrich point the paper cites: with heavy imbalance, a
	// mediocre ranker keeps a high AUC while AUPR exposes it.
	rng := rand.New(rand.NewSource(4))
	var scores []float64
	var labels []int
	for i := 0; i < 100; i++ { // positives score high-ish
		scores = append(scores, 0.6+0.3*rng.Float64())
		labels = append(labels, 1)
	}
	for i := 0; i < 10000; i++ { // negatives broadly lower, long tail up
		scores = append(scores, rng.Float64())
		labels = append(labels, -1)
	}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	aupr, err := AUPR(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.7 {
		t.Errorf("AUC = %v; scenario mis-built", auc)
	}
	if aupr > auc-0.2 {
		t.Errorf("AUPR (%v) should sit far below AUC (%v) under imbalance", aupr, auc)
	}
}

func TestROCErrors(t *testing.T) {
	if _, err := ROCCurve([]float64{1}, []int{-1}); err != ErrNoPositives {
		t.Errorf("err = %v", err)
	}
	if _, err := AUC([]float64{1, 2}, []int{1}); err == nil {
		t.Error("length mismatch must error")
	}
	// All-positive labels: FPR undefined but curve must not panic.
	points, err := ROCCurve([]float64{0.5, 0.4}, []int{1, 1})
	if err != nil || len(points) == 0 {
		t.Errorf("all-positive curve: %v, %v", points, err)
	}
}

func TestAUCTiedScores(t *testing.T) {
	// All tied: one diagonal step; AUC = 0.5.
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []int{1, -1, 1, -1}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 1e-12 {
		t.Errorf("tied AUC = %v, want 0.5", auc)
	}
}
