// Package eval computes precision-recall curves and the area under them
// (AUPR), the paper's classification quality metric (§5.2.2, citing Davis &
// Goadrich for PR analysis on highly imbalanced data).
package eval

import (
	"errors"
	"fmt"
	"io"
	"sort"
)

// Point is one precision-recall operating point at a score threshold.
type Point struct {
	Threshold float64
	Recall    float64
	Precision float64
}

// ErrNoPositives is returned when the labels contain no positive examples,
// for which recall is undefined.
var ErrNoPositives = errors.New("eval: no positive labels")

// PRCurve sweeps the decision threshold over the scores (descending) and
// returns the precision-recall points. Tied scores are processed as one
// group so the curve is threshold-consistent. Labels are +1/-1.
func PRCurve(scores []float64, labels []int) ([]Point, error) {
	if len(scores) != len(labels) {
		return nil, fmt.Errorf("eval: %d scores but %d labels", len(scores), len(labels))
	}
	totalPos := 0
	for _, l := range labels {
		if l > 0 {
			totalPos++
		}
	}
	if totalPos == 0 {
		return nil, ErrNoPositives
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	var points []Point
	tp, fp := 0, 0
	i := 0
	for i < len(idx) {
		j := i
		threshold := scores[idx[i]]
		for j < len(idx) && scores[idx[j]] == threshold {
			if labels[idx[j]] > 0 {
				tp++
			} else {
				fp++
			}
			j++
		}
		points = append(points, Point{
			Threshold: threshold,
			Recall:    float64(tp) / float64(totalPos),
			Precision: float64(tp) / float64(tp+fp),
		})
		i = j
	}
	return points, nil
}

// AUPR returns the area under the precision-recall curve, computed as
// average precision (the step-wise integral that Davis & Goadrich recommend
// over trapezoidal interpolation in PR space).
func AUPR(scores []float64, labels []int) (float64, error) {
	if len(scores) != len(labels) {
		return 0, fmt.Errorf("eval: %d scores but %d labels", len(scores), len(labels))
	}
	totalPos := 0
	for _, l := range labels {
		if l > 0 {
			totalPos++
		}
	}
	if totalPos == 0 {
		return 0, ErrNoPositives
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	var ap float64
	tp, fp := 0, 0
	i := 0
	for i < len(idx) {
		j := i
		threshold := scores[idx[i]]
		groupPos := 0
		for j < len(idx) && scores[idx[j]] == threshold {
			if labels[idx[j]] > 0 {
				tp++
				groupPos++
			} else {
				fp++
			}
			j++
		}
		if groupPos > 0 {
			precision := float64(tp) / float64(tp+fp)
			ap += precision * float64(groupPos)
		}
		i = j
	}
	return ap / float64(totalPos), nil
}

// Confusion counts outcomes at a fixed threshold: scores >= theta are
// predicted positive.
type Confusion struct {
	TP, FP, TN, FN int
}

// ConfusionAt computes the confusion counts at threshold theta.
func ConfusionAt(scores []float64, labels []int, theta float64) Confusion {
	var c Confusion
	for i, s := range scores {
		predicted := s >= theta
		actual := labels[i] > 0
		switch {
		case predicted && actual:
			c.TP++
		case predicted && !actual:
			c.FP++
		case !predicted && actual:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Precision returns TP / (TP + FP), or 0 when nothing was predicted
// positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP / (TP + FN), or 0 when there are no positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// WriteCurve renders a PR curve as tab-separated rows (threshold, recall,
// precision) for plotting.
func WriteCurve(w io.Writer, points []Point) error {
	if _, err := fmt.Fprintln(w, "threshold\trecall\tprecision"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%.6g\t%.4f\t%.4f\n", p.Threshold, p.Recall, p.Precision); err != nil {
			return err
		}
	}
	return nil
}
