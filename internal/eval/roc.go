package eval

import "sort"

// ROCPoint is one receiver-operating-characteristic operating point.
type ROCPoint struct {
	Threshold float64
	FPR       float64 // false positive rate
	TPR       float64 // true positive rate (recall)
}

// ROCCurve sweeps the decision threshold and returns the ROC points. The
// paper cites Davis & Goadrich for preferring PR curves on imbalanced data;
// ROC is provided so users can see the difference for themselves — a
// classifier can look excellent in ROC space while its PR curve exposes the
// precision collapse.
func ROCCurve(scores []float64, labels []int) ([]ROCPoint, error) {
	if len(scores) != len(labels) {
		return nil, errLen(len(scores), len(labels))
	}
	totalPos, totalNeg := 0, 0
	for _, l := range labels {
		if l > 0 {
			totalPos++
		} else {
			totalNeg++
		}
	}
	if totalPos == 0 {
		return nil, ErrNoPositives
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	var points []ROCPoint
	tp, fp := 0, 0
	i := 0
	for i < len(idx) {
		j := i
		threshold := scores[idx[i]]
		for j < len(idx) && scores[idx[j]] == threshold {
			if labels[idx[j]] > 0 {
				tp++
			} else {
				fp++
			}
			j++
		}
		p := ROCPoint{Threshold: threshold, TPR: float64(tp) / float64(totalPos)}
		if totalNeg > 0 {
			p.FPR = float64(fp) / float64(totalNeg)
		}
		points = append(points, p)
		i = j
	}
	return points, nil
}

// AUC returns the area under the ROC curve via trapezoidal integration
// (valid in ROC space, unlike PR space). 0.5 is chance; 1 is perfect.
func AUC(scores []float64, labels []int) (float64, error) {
	points, err := ROCCurve(scores, labels)
	if err != nil {
		return 0, err
	}
	area := 0.0
	prev := ROCPoint{FPR: 0, TPR: 0}
	for _, p := range points {
		area += (p.FPR - prev.FPR) * (p.TPR + prev.TPR) / 2
		prev = p
	}
	// Close the curve to (1, 1); with any negatives present the last
	// point already sits there.
	area += (1 - prev.FPR) * (1 + prev.TPR) / 2
	return area, nil
}

func errLen(a, b int) error {
	return lengthError{a, b}
}

type lengthError struct{ scores, labels int }

func (e lengthError) Error() string {
	return "eval: length mismatch between scores and labels"
}
