package eval

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestPRCurvePerfectRanking(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.3, 0.2, 0.1}
	labels := []int{1, 1, -1, -1, -1}
	points, err := PRCurve(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	// First point: threshold 0.9, 1 TP: precision 1, recall 0.5.
	if points[0].Precision != 1 || points[0].Recall != 0.5 {
		t.Errorf("first point = %+v", points[0])
	}
	// Second point: both positives found, no FP yet.
	if points[1].Precision != 1 || points[1].Recall != 1 {
		t.Errorf("second point = %+v", points[1])
	}
	// Last point: everything predicted positive.
	last := points[len(points)-1]
	if last.Recall != 1 || math.Abs(last.Precision-0.4) > 1e-12 {
		t.Errorf("last point = %+v", last)
	}
	aupr, err := AUPR(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if aupr != 1 {
		t.Errorf("perfect ranking AUPR = %v, want 1", aupr)
	}
}

func TestAUPRWorstRanking(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.2, 0.1}
	labels := []int{-1, -1, -1, 1, 1}
	aupr, err := AUPR(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	// Positives at ranks 4 and 5: AP = (1/4 + 2/5)/2 = 0.325.
	if math.Abs(aupr-0.325) > 1e-12 {
		t.Errorf("AUPR = %v, want 0.325", aupr)
	}
}

func TestAUPRTiedScores(t *testing.T) {
	// All scores tied: one group; precision = base rate; AP = base rate.
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []int{1, -1, -1, -1}
	aupr, err := AUPR(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(aupr-0.25) > 1e-12 {
		t.Errorf("tied AUPR = %v, want 0.25", aupr)
	}
	points, err := PRCurve(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Errorf("tied scores should yield one PR point, got %d", len(points))
	}
}

func TestRandomScoresApproachBaseRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 20000
	scores := make([]float64, n)
	labels := make([]int, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = -1
		if rng.Float64() < 0.05 {
			labels[i] = 1
		}
	}
	aupr, err := AUPR(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if aupr < 0.03 || aupr > 0.08 {
		t.Errorf("random AUPR = %v, want near base rate 0.05", aupr)
	}
}

func TestErrNoPositives(t *testing.T) {
	if _, err := AUPR([]float64{1, 2}, []int{-1, -1}); err != ErrNoPositives {
		t.Errorf("AUPR err = %v", err)
	}
	if _, err := PRCurve([]float64{1}, []int{-1}); err != ErrNoPositives {
		t.Errorf("PRCurve err = %v", err)
	}
	if _, err := AUPR([]float64{1}, []int{1, 1}); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestPRCurveMonotoneRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	scores := make([]float64, 500)
	labels := make([]int, 500)
	for i := range scores {
		scores[i] = rng.NormFloat64()
		if rng.Float64() < 0.1 {
			labels[i] = 1
		} else {
			labels[i] = -1
		}
	}
	points, err := PRCurve(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, p := range points {
		if p.Recall < prev {
			t.Fatal("recall decreased along the curve")
		}
		if p.Precision < 0 || p.Precision > 1 {
			t.Fatalf("precision out of range: %v", p.Precision)
		}
		prev = p.Recall
	}
	if points[len(points)-1].Recall != 1 {
		t.Error("curve must end at full recall")
	}
}

func TestConfusionAndDerivedMetrics(t *testing.T) {
	scores := []float64{0.9, 0.6, 0.4, 0.1}
	labels := []int{1, -1, 1, -1}
	c := ConfusionAt(scores, labels, 0.5)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Precision() != 0.5 || c.Recall() != 0.5 || c.F1() != 0.5 {
		t.Errorf("metrics = %v %v %v", c.Precision(), c.Recall(), c.F1())
	}
	empty := Confusion{}
	if empty.Precision() != 0 || empty.Recall() != 0 || empty.F1() != 0 {
		t.Error("empty confusion metrics must be 0")
	}
}

func TestWriteCurve(t *testing.T) {
	points := []Point{{Threshold: 0.5, Recall: 0.25, Precision: 0.75}}
	var sb strings.Builder
	if err := WriteCurve(&sb, points); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "threshold") || !strings.Contains(out, "0.2500\t0.7500") {
		t.Errorf("output = %q", out)
	}
}

func TestBetterRankingHigherAUPR(t *testing.T) {
	// Property: moving a positive up in the ranking never lowers AUPR.
	scores := []float64{5, 4, 3, 2, 1}
	worse := []int{-1, -1, 1, -1, 1}
	better := []int{1, -1, -1, -1, 1}
	a1, err := AUPR(scores, worse)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := AUPR(scores, better)
	if err != nil {
		t.Fatal(err)
	}
	if a2 <= a1 {
		t.Errorf("better ranking AUPR %v <= worse %v", a2, a1)
	}
}
