package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adrdedup"
	"adrdedup/internal/adr"
)

// newIdleServer wraps an untrained detector: enough for exercising the HTTP
// decode and error paths, which all run before the pipeline.
func newIdleServer(t *testing.T) *Server {
	t.Helper()
	det, err := adrdedup.New(adrdedup.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { det.Engine().Cluster().Close() })
	return New(det, Config{MaxBatch: 5, MaxBodyBytes: 4096})
}

// gatedServer builds a started single-worker server whose worker blocks in
// the pre-Detect test hook until gate is closed; entered reports each job the
// worker picks up. The deterministic seam for backpressure and drain tests.
func gatedServer(t *testing.T, seed int64, cfg Config) (srv *Server, gate chan struct{}, entered chan struct{}) {
	t.Helper()
	boot := mustBootstrap(t, testBootCfg(seed, 120, 6, 150))
	srv = New(boot.Detector, cfg)
	gate = make(chan struct{})
	entered = make(chan struct{}, 16)
	srv.testHookBeforeDetect = func() {
		entered <- struct{}{}
		<-gate
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	return srv, gate, entered
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func marshalBatch(t *testing.T, reports []adr.Report) []byte {
	t.Helper()
	data, err := json.Marshal(struct {
		Reports []adr.Report `json:"reports"`
	}{reports})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestQueueFullReturns429: with one worker held mid-batch and a depth-1
// queue occupied, the next ingest is refused with 429 and the configured
// Retry-After hint, and the refusal is counted. Releasing the worker drains
// both accepted batches successfully.
func TestQueueFullReturns429(t *testing.T) {
	srv, gate, entered := gatedServer(t, 41, Config{
		Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	traffic := GenerateTraffic(TrafficConfig{Reports: 30, Seed: 19})
	type result struct {
		matches []adrdedup.Match
		err     error
	}
	res1, res2 := make(chan result, 1), make(chan result, 1)
	go func() {
		m, err := srv.Submit(context.Background(), traffic[0:5])
		res1 <- result{m, err}
	}()
	<-entered // worker is now holding batch 1
	go func() {
		m, err := srv.Submit(context.Background(), traffic[5:10])
		res2 <- result{m, err}
	}()
	// Wait until batch 2 occupies the queue's only slot.
	for deadline := time.Now().Add(5 * time.Second); srv.Stats().QueueDepth != 1; {
		if time.Now().After(deadline) {
			t.Fatal("second batch never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postJSON(t, ts.URL+"/v1/reports:batch", marshalBatch(t, traffic[10:15]))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue answered %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want %q", got, "2")
	}
	if st := srv.Stats(); st.QueueFullRejects != 1 {
		t.Errorf("QueueFullRejects = %d, want 1", st.QueueFullRejects)
	}

	close(gate)
	for i, ch := range []chan result{res1, res2} {
		r := <-ch
		if r.err != nil {
			t.Fatalf("accepted batch %d failed after release: %v", i+1, r.err)
		}
	}
	closeServer(t, srv)
	if st := srv.Stats(); st.Ingested != 10 || st.Batches != 2 {
		t.Errorf("after drain: ingested=%d batches=%d, want 10/2", st.Ingested, st.Batches)
	}
}

// TestDrainCompletesInFlight: Shutdown refuses new work immediately (503
// over HTTP) but the already-accepted batch still completes and is absorbed.
func TestDrainCompletesInFlight(t *testing.T) {
	srv, gate, entered := gatedServer(t, 43, Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	traffic := GenerateTraffic(TrafficConfig{Reports: 30, Seed: 23})
	inflight := make(chan error, 1)
	go func() {
		_, err := srv.Submit(context.Background(), traffic[0:8])
		inflight <- err
	}()
	<-entered // worker holds the batch mid-Detect

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	for deadline := time.Now().Add(5 * time.Second); srv.Stats().State != "draining"; {
		if time.Now().After(deadline) {
			t.Fatal("server never reached draining state")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := srv.Submit(context.Background(), traffic[8:10]); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit during drain returned %v, want ErrShuttingDown", err)
	}
	resp, _ := postJSON(t, ts.URL+"/v1/reports:batch", marshalBatch(t, traffic[10:12]))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest during drain answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 during drain should carry Retry-After")
	}
	if hresp, _ := http.Get(ts.URL + "/healthz"); hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain = %d, want 503", hresp.StatusCode)
	}

	close(gate)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("drain returned %v", err)
	}
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight batch failed during drain: %v", err)
	}
	st := srv.Stats()
	if st.State != "stopped" {
		t.Errorf("state after drain = %q, want stopped", st.State)
	}
	if st.Ingested != 8 {
		t.Errorf("in-flight batch not absorbed: ingested=%d, want 8", st.Ingested)
	}
	if _, err := srv.Submit(context.Background(), traffic[12:14]); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit after shutdown returned %v, want ErrShuttingDown", err)
	}
	srv.Detector().Engine().Cluster().Close()
}

// TestShutdownTimeout: a deadline shorter than the in-flight batch makes
// Shutdown return the context error while the drain continues; a second
// Shutdown call then completes it.
func TestShutdownTimeout(t *testing.T) {
	srv, gate, entered := gatedServer(t, 47, Config{Workers: 1, QueueDepth: 2})
	traffic := GenerateTraffic(TrafficConfig{Reports: 10, Seed: 29})
	go func() { _, _ = srv.Submit(context.Background(), traffic[:5]) }()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown with expired deadline returned %v, want DeadlineExceeded", err)
	}
	close(gate)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown returned %v, want nil", err)
	}
	srv.Detector().Engine().Cluster().Close()
}

// TestIngestDecodeErrors pins the decoder's HTTP status mapping: every
// malformed request is a typed 4xx, never a 500 and never a hang.
func TestIngestDecodeErrors(t *testing.T) {
	srv := newIdleServer(t) // MaxBatch 5, MaxBodyBytes 4096
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bigBatch, err := json.Marshal(map[string]any{"reports": []map[string]string{
		{"caseNumber": "A"}, {"caseNumber": "B"}, {"caseNumber": "C"},
		{"caseNumber": "D"}, {"caseNumber": "E"}, {"caseNumber": "F"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"malformed json", "/v1/reports", `{`, 400},
		{"trailing data", "/v1/reports", `{"caseNumber":"A"} {"caseNumber":"B"}`, 400},
		{"missing case number", "/v1/reports", `{"sex":"F"}`, 422},
		{"age out of range", "/v1/reports", `{"caseNumber":"A","calculatedAge":900}`, 422},
		{"empty batch object", "/v1/reports:batch", `{"reports":[]}`, 400},
		{"empty batch array", "/v1/reports:batch", `[]`, 400},
		{"batch over max", "/v1/reports:batch", string(bigBatch), 413},
		{"duplicate case in batch", "/v1/reports:batch",
			`{"reports":[{"caseNumber":"A"},{"caseNumber":"A"}]}`, 422},
		{"bad report in batch", "/v1/reports:batch", `[{"caseNumber":""}]`, 422},
		{"oversized body", "/v1/reports", fmt.Sprintf(`{"caseNumber":%q}`, strings.Repeat("x", 8192)), 413},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+tc.path, []byte(tc.body))
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.want, body)
			}
			var e errorResponse
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error body %q is not an {error} object", body)
			}
		})
	}

	// Method and state mapping outside the table's shape.
	if resp, err := http.Get(ts.URL + "/v1/reports"); err != nil {
		t.Fatal(err)
	} else if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/reports = %d, want 405", resp.StatusCode)
	}
	resp, _ := postJSON(t, ts.URL+"/v1/reports", []byte(`{"caseNumber":"A"}`))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("ingest before Start = %d, want 503", resp.StatusCode)
	}
	if hresp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz before Start = %d, want 503", hresp.StatusCode)
	}
}

// TestHTTPIngestEndToEnd drives both ingest endpoints over real HTTP and
// checks the stats surfaces: /v1/stats JSON shape and the expvar var.
func TestHTTPIngestEndToEnd(t *testing.T) {
	boot := mustBootstrap(t, testBootCfg(31, 250, 12, 300))
	srv := New(boot.Detector, Config{Workers: 2, QueueDepth: 8})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer closeServer(t, srv)

	traffic := GenerateTraffic(TrafficConfig{Reports: 30, DupFraction: 0.2, Seed: 17})

	single, err := json.Marshal(traffic[0])
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/reports", single)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single ingest = %d (body %s)", resp.StatusCode, body)
	}
	var ir ingestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Ingested != 1 {
		t.Errorf("single ingest reported %d ingested, want 1", ir.Ingested)
	}

	resp, body = postJSON(t, ts.URL+"/v1/reports:batch", marshalBatch(t, traffic[1:21]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch ingest = %d (body %s)", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Ingested != 20 {
		t.Errorf("batch ingest reported %d ingested, want 20", ir.Ingested)
	}
	if ir.Duplicates != len(ir.Matches) {
		t.Errorf("duplicates=%d but %d matches returned", ir.Duplicates, len(ir.Matches))
	}
	for _, m := range ir.Matches {
		if !m.Duplicate {
			t.Errorf("match %s/%s returned with duplicate=false", m.CaseA, m.CaseB)
		}
	}

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.State != "running" {
		t.Errorf("stats state = %q, want running", st.State)
	}
	if st.Ingested != 21 || st.Batches != 2 {
		t.Errorf("stats ingested=%d batches=%d, want 21/2", st.Ingested, st.Batches)
	}
	if want := boot.Config.SeedReports + 21; st.DatabaseReports != want {
		t.Errorf("stats databaseReports=%d, want %d", st.DatabaseReports, want)
	}
	if st.Latency.Count != 2 {
		t.Errorf("stats latency count=%d, want 2", st.Latency.Count)
	}

	vresp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	vars, err := io.ReadAll(vresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(vars, []byte(`"adrdedupd"`)) {
		t.Error("/debug/vars does not expose the adrdedupd var")
	}
}
