package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"adrdedup/internal/adr"
	"adrdedup/internal/adrgen"
)

// TrafficConfig describes the synthetic report stream a load run pushes at
// the service. The stream is self-contained: it is generated from the same
// TGA-profile generator as the seed corpus but with campaign clustering
// disabled (campaign members are deliberately confusable, which would make
// candidate volume grow with database size instead of with true duplicate
// rate) and with case numbers re-prefixed so they can never collide with
// the daemon's seed database.
type TrafficConfig struct {
	// Reports is the stream length to pregenerate.
	Reports int
	// DupFraction is the share of reports that belong to an injected
	// duplicate pair (default 0.02) — these are what the service should
	// flag, keeping the smoke's matched count non-zero.
	DupFraction float64
	// Seed makes the stream deterministic.
	Seed int64
	// CasePrefix namespaces the stream's case numbers (default "LOAD").
	CasePrefix string
}

func (c TrafficConfig) withDefaults() TrafficConfig {
	if c.Reports <= 0 {
		c.Reports = 20000
	}
	switch {
	case c.DupFraction < 0:
		c.DupFraction = 0
	case c.DupFraction == 0:
		c.DupFraction = 0.02
	case c.DupFraction > 1:
		c.DupFraction = 1
	}
	if c.CasePrefix == "" {
		c.CasePrefix = "LOAD"
	}
	return c
}

// GenerateTraffic pregenerates the report stream of a load run.
func GenerateTraffic(cfg TrafficConfig) []adr.Report {
	cfg = cfg.withDefaults()
	dupPairs := int(float64(cfg.Reports) * cfg.DupFraction / 2)
	if dupPairs == 0 {
		dupPairs = -1 // adrgen: 0 means "default", negative means none
	}
	corpus := adrgen.Generate(adrgen.Config{
		NumReports:       cfg.Reports,
		DuplicatePairs:   dupPairs,
		Seed:             cfg.Seed,
		CampaignFraction: -1,
	})
	out := make([]adr.Report, len(corpus.Reports))
	for i, r := range corpus.Reports {
		r.CaseNumber = cfg.CasePrefix + "-" + r.CaseNumber
		r.ArrivalSeq = 0
		out[i] = r
	}
	return out
}

// LoadProfile shapes how workers pace their sends.
type LoadProfile int

const (
	// LoadSteady sends batches at a constant per-worker cadence
	// (PushInterval between sends; 0 = as fast as the service admits).
	LoadSteady LoadProfile = iota
	// LoadRamp staggers worker start times across the ramp window, so
	// offered load climbs from one worker to all of them.
	LoadRamp
	// LoadBurst alternates bursts of burstBatches back-to-back sends
	// with an idle gap of burstBatches*PushInterval — the same average
	// rate as steady but maximally bunched, the backpressure stressor.
	LoadBurst
)

// burstBatches is the burst length of LoadBurst.
const burstBatches = 8

func (p LoadProfile) String() string {
	switch p {
	case LoadRamp:
		return "ramp"
	case LoadBurst:
		return "burst"
	default:
		return "steady"
	}
}

// ParseProfile parses a profile name (steady, ramp, burst).
func ParseProfile(s string) (LoadProfile, error) {
	switch s {
	case "steady", "":
		return LoadSteady, nil
	case "ramp":
		return LoadRamp, nil
	case "burst":
		return LoadBurst, nil
	default:
		return 0, fmt.Errorf("serve: unknown load profile %q (want steady, ramp, or burst)", s)
	}
}

// LoadConfig configures a load run against a running service.
type LoadConfig struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Workers is the number of concurrent submitters (default 4).
	Workers int
	// BatchSize is reports per request (default 100). 1 uses the
	// single-report endpoint, exercising the other ingest path.
	BatchSize int
	// PushInterval is each worker's pause between sends (0 = none).
	PushInterval time.Duration
	// Duration bounds the run's wall clock; Count bounds the total
	// reports sent. At least one must be set; the run stops at whichever
	// limit is hit first. With only Duration set the pregenerated stream
	// is replayed in laps, with case numbers re-prefixed per lap so every
	// ingested report stays unique.
	Duration time.Duration
	Count    int
	// Profile shapes pacing; see LoadProfile.
	Profile LoadProfile
	// Traffic configures the synthetic stream. Traffic.Reports is
	// overridden by Count when Count is set.
	Traffic TrafficConfig
	// MaxRetries bounds per-batch retries on 429/503 backpressure
	// (default 64; the driver honors Retry-After between attempts).
	// Exhausting the budget counts the batch as an error.
	MaxRetries int
	// ReportEvery triggers the OnReport callback periodically (0 = off).
	ReportEvery time.Duration
	OnReport    func(LoadSnapshot)
	// Client overrides the HTTP client (default: 60s timeout).
	Client *http.Client
}

// LoadSnapshot is one periodic progress report.
type LoadSnapshot struct {
	Elapsed time.Duration
	// Cumulative counters.
	Sent, Batches, Errors, Throttled, Matched, Scored uint64
	// IntervalSent and IntervalThroughput cover the window since the
	// previous snapshot.
	IntervalSent       uint64
	IntervalThroughput float64
	// Latency is the cumulative request-latency distribution.
	Latency LatencySummary
}

// LoadResult is a finished run's totals. Request failures are counted in
// Errors (with FirstError kept for diagnosis), not returned as RunLoad
// errors.
type LoadResult struct {
	Profile   string        `json:"profile"`
	Workers   int           `json:"workers"`
	BatchSize int           `json:"batchSize"`
	Elapsed   float64       `json:"elapsedSeconds"`
	Sent      uint64        `json:"sent"`
	Batches   uint64        `json:"batches"`
	Errors    uint64        `json:"errors"`
	Throttled uint64        `json:"throttled"`
	Matched   uint64        `json:"matched"`
	Scored    uint64        `json:"scored"`
	Reports   float64       `json:"throughputPerSec"`
	Latency   LatencySummary `json:"latency"`
	FirstError string       `json:"firstError,omitempty"`
}

// loadState is the shared mutable state of one run.
type loadState struct {
	cfg     LoadConfig
	traffic []adr.Report
	client  *http.Client

	cursor atomic.Int64 // next report index in the (possibly lapped) stream

	sent, batches, errors, throttled, matched, scored atomic.Uint64
	hist                                              *Histogram

	errMu    sync.Mutex
	firstErr string

	stop chan struct{} // closed at the duration deadline
}

// RunLoad drives the configured load against the service and returns the
// totals. The returned error covers configuration and context failures
// only; per-request failures are counted in LoadResult.Errors.
func RunLoad(ctx context.Context, cfg LoadConfig) (LoadResult, error) {
	if cfg.BaseURL == "" {
		return LoadResult{}, errors.New("serve: load config needs a BaseURL")
	}
	if cfg.Duration <= 0 && cfg.Count <= 0 {
		return LoadResult{}, errors.New("serve: load config needs a Duration or a Count")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 100
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 64
	}
	if cfg.Count > 0 {
		cfg.Traffic.Reports = cfg.Count
	}
	st := &loadState{
		cfg:     cfg,
		traffic: GenerateTraffic(cfg.Traffic),
		client:  cfg.Client,
		hist:    NewHistogram(),
		stop:    make(chan struct{}),
	}
	if st.client == nil {
		st.client = &http.Client{Timeout: 60 * time.Second}
	}

	start := time.Now()
	var deadline *time.Timer
	if cfg.Duration > 0 {
		deadline = time.AfterFunc(cfg.Duration, func() { close(st.stop) })
		defer deadline.Stop()
	}

	var reporterWG sync.WaitGroup
	reporterDone := make(chan struct{})
	if cfg.ReportEvery > 0 && cfg.OnReport != nil {
		reporterWG.Add(1)
		go func() {
			defer reporterWG.Done()
			tick := time.NewTicker(cfg.ReportEvery)
			defer tick.Stop()
			var prevSent uint64
			var prevAt time.Duration
			for {
				select {
				case <-tick.C:
					now := time.Since(start)
					snap := st.snapshot(now)
					snap.IntervalSent = snap.Sent - prevSent
					if w := (now - prevAt).Seconds(); w > 0 {
						snap.IntervalThroughput = float64(snap.IntervalSent) / w
					}
					prevSent, prevAt = snap.Sent, now
					cfg.OnReport(snap)
				case <-reporterDone:
					return
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st.workerLoop(ctx, w)
		}(w)
	}
	wg.Wait()
	close(reporterDone)
	reporterWG.Wait()

	elapsed := time.Since(start)
	res := LoadResult{
		Profile:   cfg.Profile.String(),
		Workers:   cfg.Workers,
		BatchSize: cfg.BatchSize,
		Elapsed:   elapsed.Seconds(),
		Sent:      st.sent.Load(),
		Batches:   st.batches.Load(),
		Errors:    st.errors.Load(),
		Throttled: st.throttled.Load(),
		Matched:   st.matched.Load(),
		Scored:    st.scored.Load(),
		Latency:   st.hist.Summary(),
	}
	if s := elapsed.Seconds(); s > 0 {
		res.Reports = float64(res.Sent) / s
	}
	st.errMu.Lock()
	res.FirstError = st.firstErr
	st.errMu.Unlock()
	return res, ctx.Err()
}

func (st *loadState) snapshot(elapsed time.Duration) LoadSnapshot {
	return LoadSnapshot{
		Elapsed:   elapsed,
		Sent:      st.sent.Load(),
		Batches:   st.batches.Load(),
		Errors:    st.errors.Load(),
		Throttled: st.throttled.Load(),
		Matched:   st.matched.Load(),
		Scored:    st.scored.Load(),
		Latency:   st.hist.Summary(),
	}
}

// stopped reports whether the run should claim no further batches.
func (st *loadState) stopped(ctx context.Context) bool {
	select {
	case <-st.stop:
		return true
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// sleep pauses without overshooting the run's stop signals.
func (st *loadState) sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-st.stop:
	case <-ctx.Done():
	}
}

// claim reserves the next batch of the stream. In lapped (duration-only)
// mode, case numbers of lap L>0 are re-prefixed "L<L>-" to stay unique.
func (st *loadState) claim() ([]adr.Report, bool) {
	n := int64(len(st.traffic))
	start := st.cursor.Add(int64(st.cfg.BatchSize)) - int64(st.cfg.BatchSize)
	if st.cfg.Count > 0 {
		if start >= int64(st.cfg.Count) {
			return nil, false
		}
		end := start + int64(st.cfg.BatchSize)
		if end > int64(st.cfg.Count) {
			end = int64(st.cfg.Count)
		}
		return st.traffic[start:end], true
	}
	batch := make([]adr.Report, 0, st.cfg.BatchSize)
	for i := start; i < start+int64(st.cfg.BatchSize); i++ {
		r := st.traffic[i%n]
		if lap := i / n; lap > 0 {
			r.CaseNumber = "L" + strconv.FormatInt(lap, 10) + "-" + r.CaseNumber
		}
		batch = append(batch, r)
	}
	return batch, true
}

func (st *loadState) workerLoop(ctx context.Context, w int) {
	cfg := st.cfg
	if cfg.Profile == LoadRamp && cfg.Workers > 1 {
		// Stagger starts across the ramp window: worker 0 immediately,
		// the last worker at the window's end.
		window := cfg.Duration / 2
		if window <= 0 {
			window = 4 * time.Second
		}
		st.sleep(ctx, window*time.Duration(w)/time.Duration(cfg.Workers))
	}
	inBurst := 0
	for !st.stopped(ctx) {
		batch, ok := st.claim()
		if !ok {
			return
		}
		st.send(ctx, batch)
		switch cfg.Profile {
		case LoadBurst:
			inBurst++
			if inBurst >= burstBatches {
				inBurst = 0
				st.sleep(ctx, time.Duration(burstBatches)*cfg.PushInterval)
			}
		default:
			st.sleep(ctx, cfg.PushInterval)
		}
	}
}

// send posts one batch, honoring backpressure: 429/503 responses are
// retried after the server's Retry-After hint, up to MaxRetries, and do not
// count as errors unless the budget is exhausted.
func (st *loadState) send(ctx context.Context, batch []adr.Report) {
	var url string
	var payload any
	if st.cfg.BatchSize == 1 && len(batch) == 1 {
		url = st.cfg.BaseURL + "/v1/reports"
		payload = batch[0]
	} else {
		url = st.cfg.BaseURL + "/v1/reports:batch"
		payload = struct {
			Reports []adr.Report `json:"reports"`
		}{batch}
	}
	body, err := json.Marshal(payload)
	if err != nil {
		st.fail("encoding batch: " + err.Error())
		return
	}

	for attempt := 0; ; attempt++ {
		begin := time.Now()
		status, retryAfter, resp, err := st.post(ctx, url, body)
		st.hist.Observe(time.Since(begin))
		switch {
		case err != nil:
			st.fail(err.Error())
			return
		case status == http.StatusOK:
			st.batches.Add(1)
			st.sent.Add(uint64(len(batch)))
			st.matched.Add(uint64(resp.Duplicates))
			st.scored.Add(uint64(resp.Scored))
			return
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			st.throttled.Add(1)
			if attempt >= st.cfg.MaxRetries {
				st.fail(fmt.Sprintf("giving up after %d backpressure retries (HTTP %d)", attempt, status))
				return
			}
			if st.stopped(ctx) {
				// The run is over; an unfinished retry is not an error.
				return
			}
			st.sleep(ctx, retryAfter)
		default:
			st.fail(fmt.Sprintf("HTTP %d: %s", status, resp.Error))
			return
		}
	}
}

// postResponse is the union of the success and error response shapes.
type postResponse struct {
	Ingested   int    `json:"ingested"`
	Scored     int    `json:"scored"`
	Duplicates int    `json:"duplicates"`
	Error      string `json:"error"`
}

func (st *loadState) post(ctx context.Context, url string, body []byte) (status int, retryAfter time.Duration, out postResponse, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, 0, out, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := st.client.Do(req)
	if err != nil {
		return 0, 0, out, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return 0, 0, out, err
	}
	_ = json.Unmarshal(data, &out) // non-JSON bodies leave the zero value
	retryAfter = 50 * time.Millisecond
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, perr := strconv.Atoi(s); perr == nil && secs >= 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, retryAfter, out, nil
}

func (st *loadState) fail(msg string) {
	st.errors.Add(1)
	st.errMu.Lock()
	if st.firstErr == "" {
		st.firstErr = msg
	}
	st.errMu.Unlock()
}
