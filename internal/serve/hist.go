package serve

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram shape: geometric buckets growing histGrowth per step from
// histMin. Observations above the last bucket bound clamp into it, so the
// error of any reported quantile is bounded by one growth factor across the
// whole tracked range.
const (
	histMin    = 10 * time.Microsecond
	histMax    = 10 * time.Minute
	histGrowth = 1.05
)

// histBuckets covers histMin..histMax at histGrowth spacing, plus bucket 0
// for everything at or below histMin.
var histBuckets = int(math.Ceil(math.Log(float64(histMax)/float64(histMin))/math.Log(histGrowth))) + 1

// Histogram is a streaming latency histogram safe for concurrent Observe:
// fixed geometric buckets with atomic counters, O(buckets) quantile reads,
// no locks and no allocation on the hot path. The serve layer records one
// observation per processed batch; adrload records one per request.
type Histogram struct {
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Uint64, histBuckets)}
}

// histBucket maps a duration to its bucket index.
func histBucket(d time.Duration) int {
	if d <= histMin {
		return 0
	}
	i := int(math.Log(float64(d)/float64(histMin))/math.Log(histGrowth)) + 1
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// histBound is the upper bound of a bucket: histMin * growth^i.
func histBound(i int) time.Duration {
	return time.Duration(float64(histMin) * math.Pow(histGrowth, float64(i)))
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[histBucket(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile returns an upper bound on the q-quantile (q in [0, 1]) of the
// recorded samples: the bound of the bucket holding the ceil(q*n)-th sample,
// capped at the maximum observation. Within one growth factor of exact.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			bound := histBound(i)
			if max := time.Duration(h.max.Load()); bound > max {
				bound = max
			}
			return bound
		}
	}
	return time.Duration(h.max.Load())
}

// LatencySummary is a point-in-time quantile snapshot in milliseconds, the
// shape /v1/stats and the load driver report.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"meanMs"`
	P50MS  float64 `json:"p50Ms"`
	P90MS  float64 `json:"p90Ms"`
	P95MS  float64 `json:"p95Ms"`
	P99MS  float64 `json:"p99Ms"`
	MaxMS  float64 `json:"maxMs"`
}

// Summary snapshots the histogram. Concurrent Observes make the snapshot
// approximate (counters are read without a global lock), which is fine for
// monitoring output.
func (h *Histogram) Summary() LatencySummary {
	n := h.count.Load()
	s := LatencySummary{Count: n}
	if n == 0 {
		return s
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	s.MeanMS = float64(h.sum.Load()) / float64(n) / float64(time.Millisecond)
	s.P50MS = ms(h.Quantile(0.50))
	s.P90MS = ms(h.Quantile(0.90))
	s.P95MS = ms(h.Quantile(0.95))
	s.P99MS = ms(h.Quantile(0.99))
	s.MaxMS = ms(time.Duration(h.max.Load()))
	return s
}
