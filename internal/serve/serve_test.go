package serve

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"adrdedup"
	"adrdedup/internal/adr"
	"adrdedup/internal/cluster"
	"adrdedup/internal/core"
)

// testBootCfg is a small deterministic bootstrap sized for unit tests:
// identical seeds give bit-identical detectors, which the oracle tests rely
// on. CandidateBlock keeps candidate volume meaningful on a tiny corpus.
func testBootCfg(seed int64, seedReports, seedDups, trainPairs int) BootstrapConfig {
	return BootstrapConfig{
		SeedReports:    seedReports,
		SeedDuplicates: seedDups,
		TrainPairs:     trainPairs,
		Seed:           seed,
		Detector: adrdedup.Options{
			Cluster:    cluster.Config{Executors: 4},
			Classifier: core.Config{K: 5, B: 6, C: 3, Seed: seed},
			Candidates: adrdedup.CandidateBlock,
		},
	}
}

func mustBootstrap(t testing.TB, cfg BootstrapConfig) *Bootstrap {
	t.Helper()
	boot, err := NewBootstrap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return boot
}

// closeServer drains and closes a server with a generous deadline.
func closeServer(t testing.TB, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentIngestMatchesSequentialOracle is the -race stress test:
// many goroutines push singles and batches through the live server, then the
// recorded arrival order is replayed sequentially on a fresh identical
// bootstrap. The two match sets must be exactly equal — concurrency may
// reorder arrivals but must never change what a given arrival order detects.
func TestConcurrentIngestMatchesSequentialOracle(t *testing.T) {
	cfg := testBootCfg(7, 250, 12, 300)
	boot := mustBootstrap(t, cfg)
	srv := New(boot.Detector, Config{Workers: 4, QueueDepth: 8, RecordArrivals: true})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	traffic := GenerateTraffic(TrafficConfig{Reports: 90, DupFraction: 0.2, Seed: 11})
	rng := rand.New(rand.NewSource(3))
	var batches [][]adr.Report
	for i := 0; i < len(traffic); {
		n := 1 + rng.Intn(8) // mix singles with batches
		if i+n > len(traffic) {
			n = len(traffic) - i
		}
		batches = append(batches, traffic[i:i+n])
		i += n
	}

	work := make(chan []adr.Report)
	var mu sync.Mutex
	var got []adrdedup.Match
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range work {
				for {
					matches, err := srv.Submit(context.Background(), b)
					if errors.Is(err, ErrQueueFull) {
						time.Sleep(time.Millisecond)
						continue
					}
					if err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					got = append(got, matches...)
					mu.Unlock()
					break
				}
			}
		}()
	}
	for _, b := range batches {
		work <- b
	}
	close(work)
	wg.Wait()
	arrivals := srv.ArrivalBatches()
	closeServer(t, srv)
	if t.Failed() {
		t.FailNow()
	}

	absorbed := 0
	for _, b := range arrivals {
		absorbed += len(b)
	}
	if absorbed != len(traffic) {
		t.Fatalf("arrival log covers %d reports, want %d", absorbed, len(traffic))
	}

	// Sequential oracle: fresh identical bootstrap, same arrival order.
	oracle := mustBootstrap(t, cfg)
	defer oracle.Detector.Engine().Cluster().Close()
	byCase := make(map[string]adr.Report, len(traffic))
	for _, r := range traffic {
		byCase[r.CaseNumber] = r
	}
	var want []adrdedup.Match
	for _, cases := range arrivals {
		batch := make([]adr.Report, len(cases))
		for i, cn := range cases {
			batch[i] = byCase[cn]
		}
		m, err := oracle.Detector.Detect(batch)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, m...)
	}

	SortMatches(got)
	SortMatches(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("concurrent ingest match set (%d) diverges from sequential oracle replay (%d)",
			len(got), len(want))
	}
	if len(adrdedup.Duplicates(got)) == 0 {
		t.Fatal("no duplicates flagged; oracle comparison would be vacuous")
	}
}

// TestIngestPartitioningProperty: however a stream is partitioned into
// batches, the service detects the same match set as one-shot Detect over
// the whole stream. Per-pair classification depends only on the pair and the
// trained model, never on batch boundaries — this is the property that makes
// the online service equivalent to the paper's batch pipeline.
func TestIngestPartitioningProperty(t *testing.T) {
	cfg := testBootCfg(9, 250, 12, 300)
	traffic := GenerateTraffic(TrafficConfig{Reports: 60, DupFraction: 0.2, Seed: 13})

	ref := mustBootstrap(t, cfg)
	want, err := ref.Detector.Detect(traffic)
	ref.Detector.Engine().Cluster().Close()
	if err != nil {
		t.Fatal(err)
	}
	SortMatches(want)
	if len(adrdedup.Duplicates(want)) == 0 {
		t.Fatal("one-shot reference found no duplicates; property would be vacuous")
	}

	prop := func(seed int64) bool {
		boot := mustBootstrap(t, cfg)
		srv := New(boot.Detector, Config{Workers: 2, QueueDepth: 8})
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		var got []adrdedup.Match
		for i := 0; i < len(traffic); {
			n := 1 + rng.Intn(len(traffic)-i)
			m, err := srv.Submit(context.Background(), traffic[i:i+n])
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, m...)
			i += n
		}
		closeServer(t, srv)
		SortMatches(got)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(prop, &quick.Config{
		MaxCount: 4,
		Rand:     rand.New(rand.NewSource(1)),
	}); err != nil {
		t.Fatalf("a batch partitioning changed the match set: %v", err)
	}
}

// TestServerGoroutineLeak pins the full lifecycle against goroutine leaks:
// repeated bootstrap / start / ingest / drain / close cycles must return the
// process to its baseline goroutine count (workers exit on queue close, the
// engine pool stops on Close).
func TestServerGoroutineLeak(t *testing.T) {
	runtime.GC()
	baseline := runtime.NumGoroutine()

	traffic := GenerateTraffic(TrafficConfig{Reports: 20, DupFraction: 0.2, Seed: 17})
	for i := int64(0); i < 2; i++ {
		boot := mustBootstrap(t, testBootCfg(21+i, 120, 6, 150))
		srv := New(boot.Detector, Config{Workers: 3, QueueDepth: 4})
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Submit(context.Background(), traffic[:10]); err != nil {
			t.Fatal(err)
		}
		closeServer(t, srv)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d live, baseline %d (+2 tolerance)", n, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
