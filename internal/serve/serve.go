// Package serve wraps a trained adrdedup.Detector in a long-running online
// ingest service: reports arrive continuously over HTTP (singles or
// batches), each arrival is checked against the live database through the
// detector's incremental candidate index (the shared interner and
// kind-tagged term index from the blocking path, or the prefix-filtered
// MinArrival path of internal/candgen), and the scored matches are returned
// to the submitter.
//
// The service is a bounded pipeline:
//
//	HTTP handler -> bounded queue -> worker pool -> Detector (serialized)
//
// Handlers enqueue a job and wait for its result, so client-observed
// latency covers queueing plus scoring. The queue has a fixed depth; when
// it is full the submitter gets ErrQueueFull, which the HTTP layer turns
// into 429 with a Retry-After header — backpressure instead of collapse.
// Workers claim jobs from the queue and run Detect under one mutex: the
// detector is a single-driver pipeline (like a Spark driver), and the
// arrival order of the database is defined by the order batches win that
// mutex. Scoring itself is parallelized inside the engine, which the
// bootstrap runs in RealParallel mode (the work-stealing pool) by default.
//
// Shutdown is a drain: Shutdown flips the server to draining (new submits
// are refused with ErrShuttingDown, HTTP 503), closes the queue, and waits
// for the workers to finish every already-accepted batch, so no accepted
// report is ever dropped.
package serve

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adrdedup"
	"adrdedup/internal/adr"
)

// Sentinel errors Submit returns; the HTTP layer maps them to status codes.
var (
	// ErrQueueFull signals backpressure: the ingest queue is at capacity.
	ErrQueueFull = errors.New("serve: ingest queue full")
	// ErrShuttingDown is returned once Shutdown has begun (or completed).
	ErrShuttingDown = errors.New("serve: server is shutting down")
	// ErrNotStarted is returned before Start.
	ErrNotStarted = errors.New("serve: server not started")
)

// Config tunes the serving pipeline. Zero values take defaults.
type Config struct {
	// Workers is the number of pipeline workers claiming batches from the
	// queue (default 2). Detection is serialized on the detector; extra
	// workers overlap a batch's post-processing and response delivery
	// with the next batch's scoring.
	Workers int
	// QueueDepth bounds the ingest queue (default 64). A full queue
	// refuses new batches with ErrQueueFull / HTTP 429.
	QueueDepth int
	// MaxBatch bounds the reports per submitted batch (default 5000);
	// larger batches are refused with a 413-coded RequestError.
	MaxBatch int
	// MaxBodyBytes bounds an HTTP request body (default 8 MiB).
	MaxBodyBytes int64
	// RetryAfter is the Retry-After hint sent with 429/503 responses
	// (default 1s).
	RetryAfter time.Duration
	// RecordArrivals keeps a log of each absorbed batch's case numbers in
	// arrival order, so tests can replay the exact arrival sequence
	// against a sequential oracle. Off in production: the log grows
	// without bound.
	RecordArrivals bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 5000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server states: New -> (Start) -> running -> (Shutdown) -> draining ->
// stopped. Submits are accepted only while running.
const (
	stateNew = iota
	stateRunning
	stateDraining
	stateStopped
)

func stateName(s int) string {
	switch s {
	case stateRunning:
		return "running"
	case stateDraining:
		return "draining"
	case stateStopped:
		return "stopped"
	default:
		return "new"
	}
}

// job is one queued ingest batch; done is buffered so a worker never blocks
// on a submitter that gave up.
type job struct {
	batch    []adr.Report
	enqueued time.Time
	done     chan jobResult
}

type jobResult struct {
	matches []adrdedup.Match
	err     error
}

// Server is the online dedup service around one trained detector. Create
// with New, call Start, serve HTTP via Handler (or call Submit directly),
// and stop with Shutdown/Close.
type Server struct {
	cfg Config
	det *adrdedup.Detector

	// mu guards state against the queue lifecycle: submits hold it shared
	// while enqueueing, Shutdown holds it exclusively to flip the state
	// and close the queue, so a send can never race the close.
	mu    sync.RWMutex
	state int
	queue chan *job
	wg    sync.WaitGroup

	// detMu serializes detector access across workers; acquisition order
	// defines the database's arrival order.
	detMu sync.Mutex

	started time.Time
	hist    *Histogram

	ingested, batches, scored, matched  atomic.Uint64
	queueRejects, drainRefusals, failed atomic.Uint64

	arrivalMu sync.Mutex
	arrivals  [][]string

	// testHookBeforeDetect, when set, runs in the worker just before each
	// Detect — the seam deterministic backpressure/drain tests use to
	// hold a worker mid-batch.
	testHookBeforeDetect func()
}

// New creates a Server around a trained detector. The server does not own
// the detector's engine; Close tears both down for callers that want one
// lifecycle.
func New(det *adrdedup.Detector, cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:  cfg,
		det:  det,
		hist: NewHistogram(),
	}
}

// Start launches the worker pool. Starting an already-started or stopped
// server is an error.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != stateNew {
		return errors.New("serve: Start on a " + stateName(s.state) + " server")
	}
	if !s.det.Trained() {
		return errors.New("serve: detector is not trained")
	}
	s.queue = make(chan *job, s.cfg.QueueDepth)
	s.state = stateRunning
	s.started = time.Now()
	s.wg.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker()
	}
	registerExpvar(s)
	return nil
}

// Submit enqueues a batch and waits for its matches. It returns
// ErrQueueFull when the queue is at capacity, ErrShuttingDown once Shutdown
// began, a *RequestError for an invalid batch, or the Detect error (the
// detector rolls the batch back, so the same batch may be resubmitted). If
// ctx expires while the batch is queued or scoring, Submit returns the
// context error but the batch is still processed — accepted work is never
// dropped.
func (s *Server) Submit(ctx context.Context, batch []adr.Report) ([]adrdedup.Match, error) {
	if len(batch) == 0 {
		return nil, errEmptyBatch
	}
	if len(batch) > s.cfg.MaxBatch {
		return nil, errBatchTooLarge(len(batch), s.cfg.MaxBatch)
	}
	j := &job{batch: batch, enqueued: time.Now(), done: make(chan jobResult, 1)}

	s.mu.RLock()
	switch s.state {
	case stateRunning:
	case stateNew:
		s.mu.RUnlock()
		return nil, ErrNotStarted
	default:
		s.mu.RUnlock()
		s.drainRefusals.Add(1)
		return nil, ErrShuttingDown
	}
	select {
	case s.queue <- j:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.queueRejects.Add(1)
		return nil, ErrQueueFull
	}

	select {
	case r := <-j.done:
		return r.matches, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.process(j)
	}
}

func (s *Server) process(j *job) {
	if hook := s.testHookBeforeDetect; hook != nil {
		hook()
	}
	s.detMu.Lock()
	matches, err := s.det.Detect(j.batch)
	if err == nil && s.cfg.RecordArrivals {
		cases := make([]string, len(j.batch))
		for i, r := range j.batch {
			cases[i] = r.CaseNumber
		}
		s.arrivalMu.Lock()
		s.arrivals = append(s.arrivals, cases)
		s.arrivalMu.Unlock()
	}
	s.detMu.Unlock()

	s.hist.Observe(time.Since(j.enqueued))
	if err != nil {
		s.failed.Add(1)
		j.done <- jobResult{err: err}
		return
	}
	s.batches.Add(1)
	s.ingested.Add(uint64(len(j.batch)))
	s.scored.Add(uint64(len(matches)))
	dups := 0
	for _, m := range matches {
		if m.Duplicate {
			dups++
		}
	}
	s.matched.Add(uint64(dups))
	j.done <- jobResult{matches: matches}
}

// Shutdown drains the server: new submits are refused immediately, every
// already-accepted batch completes, then Shutdown returns nil. If ctx
// expires first it returns ctx.Err() while the drain continues in the
// background; a later Shutdown call waits for it again.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	switch s.state {
	case stateRunning:
		s.state = stateDraining
		close(s.queue)
	case stateNew:
		s.state = stateStopped
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.mu.Lock()
		s.state = stateStopped
		s.mu.Unlock()
		unregisterExpvar(s)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close drains the server and then closes the detector's engine (stopping
// the RealParallel worker pool). For callers that gave the server sole
// ownership of the detector.
func (s *Server) Close(ctx context.Context) error {
	err := s.Shutdown(ctx)
	s.det.Engine().Cluster().Close()
	return err
}

// Detector exposes the wrapped detector, for stats and model export. The
// caller must not call detection methods on it while the server runs.
func (s *Server) Detector() *adrdedup.Detector { return s.det }

// ArrivalBatches returns the recorded arrival log (Config.RecordArrivals):
// the case numbers of each absorbed batch, in the order the batches won the
// detector. Tests replay it against a sequential oracle.
func (s *Server) ArrivalBatches() [][]string {
	s.arrivalMu.Lock()
	defer s.arrivalMu.Unlock()
	out := make([][]string, len(s.arrivals))
	for i, b := range s.arrivals {
		out[i] = append([]string(nil), b...)
	}
	return out
}

// Stats is the live counter snapshot behind /v1/stats and /debug/vars.
type Stats struct {
	// State is new, running, draining, or stopped.
	State         string  `json:"state"`
	UptimeSeconds float64 `json:"uptimeSeconds"`

	Workers    int `json:"workers"`
	QueueDepth int `json:"queueDepth"`
	QueueCap   int `json:"queueCap"`

	// Ingested counts absorbed reports; Batches the absorbed batches;
	// Scored the candidate pairs scored; Matched the pairs flagged
	// duplicate.
	Ingested uint64 `json:"ingested"`
	Batches  uint64 `json:"batches"`
	Scored   uint64 `json:"scored"`
	Matched  uint64 `json:"matched"`

	// QueueFullRejects counts submits refused with 429, DrainRefusals
	// submits refused during/after shutdown, FailedBatches batches whose
	// Detect errored (and rolled back).
	QueueFullRejects uint64 `json:"queueFullRejects"`
	DrainRefusals    uint64 `json:"drainRefusals"`
	FailedBatches    uint64 `json:"failedBatches"`

	// DatabaseReports is the live database size (seed + ingested).
	DatabaseReports int `json:"databaseReports"`

	// Latency is the enqueue-to-scored batch latency distribution.
	Latency LatencySummary `json:"latency"`
}

// Stats snapshots the live counters.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	state := s.state
	started := s.started
	var depth int
	if s.queue != nil && state == stateRunning {
		depth = len(s.queue)
	}
	s.mu.RUnlock()
	st := Stats{
		State:            stateName(state),
		Workers:          s.cfg.Workers,
		QueueDepth:       depth,
		QueueCap:         s.cfg.QueueDepth,
		Ingested:         s.ingested.Load(),
		Batches:          s.batches.Load(),
		Scored:           s.scored.Load(),
		Matched:          s.matched.Load(),
		QueueFullRejects: s.queueRejects.Load(),
		DrainRefusals:    s.drainRefusals.Load(),
		FailedBatches:    s.failed.Load(),
		DatabaseReports:  s.det.Database().Len(),
		Latency:          s.hist.Summary(),
	}
	if !started.IsZero() {
		st.UptimeSeconds = time.Since(started).Seconds()
	}
	return st
}

// SortMatches sorts matches the way Detect orders one batch — descending
// score, ties by (CaseA, CaseB) — so match sets merged across incremental
// batches compare deterministically against a one-shot run.
func SortMatches(matches []adrdedup.Match) {
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Score != matches[j].Score {
			return matches[i].Score > matches[j].Score
		}
		if matches[i].CaseA != matches[j].CaseA {
			return matches[i].CaseA < matches[j].CaseA
		}
		return matches[i].CaseB < matches[j].CaseB
	})
}
