package serve

import (
	"fmt"
	"time"

	"adrdedup"
	"adrdedup/internal/adrgen"
	"adrdedup/internal/pairdist"
)

// BootstrapConfig describes a self-contained service bootstrap: a synthetic
// seed database plus a classifier trained on pairs sampled from its ground
// truth. Zero values take defaults sized for a responsive single-machine
// daemon.
type BootstrapConfig struct {
	// SeedReports is the initial database size (default 2000) and
	// SeedDuplicates the injected ground-truth duplicate pairs in it
	// (default 80) — the labelled positives the classifier trains on.
	SeedReports    int
	SeedDuplicates int
	// TrainPairs is the labelled training-set size (default 1200);
	// HardFraction the share of confusable negatives in it (default 0.5).
	TrainPairs   int
	HardFraction float64
	// Seed drives corpus generation and pair sampling; the whole
	// bootstrap is deterministic in it.
	Seed int64
	// Detector configures the wrapped pipeline. Unless VirtualEngine is
	// set, the engine is forced onto the RealParallel work-stealing pool:
	// a serving process wants real cores, not the virtual-time scheduler.
	Detector      adrdedup.Options
	VirtualEngine bool
}

func (c BootstrapConfig) withDefaults() BootstrapConfig {
	if c.SeedReports <= 0 {
		c.SeedReports = 2000
	}
	if c.SeedDuplicates <= 0 {
		c.SeedDuplicates = 80
	}
	if 2*c.SeedDuplicates > c.SeedReports {
		c.SeedDuplicates = c.SeedReports / 2
	}
	if c.TrainPairs <= 0 {
		c.TrainPairs = 1200
	}
	if c.TrainPairs < c.SeedDuplicates {
		c.TrainPairs = 2 * c.SeedDuplicates
	}
	if c.HardFraction <= 0 || c.HardFraction > 1 {
		c.HardFraction = 0.5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Bootstrap is a ready-to-serve detector plus the corpus it was seeded
// with.
type Bootstrap struct {
	Detector *adrdedup.Detector
	Corpus   *adrgen.Corpus
	Config   BootstrapConfig
	// SeedDuration and TrainDuration record how long database seeding
	// (feature extraction included) and classifier training took.
	SeedDuration  time.Duration
	TrainDuration time.Duration
}

// NewBootstrap generates the seed corpus, loads it into a fresh detector,
// and trains the classifier on sampled labelled pairs. Deterministic in
// cfg.Seed.
func NewBootstrap(cfg BootstrapConfig) (*Bootstrap, error) {
	cfg = cfg.withDefaults()
	if !cfg.VirtualEngine {
		cfg.Detector.Cluster.RealParallel = true
	}
	det, err := adrdedup.New(cfg.Detector)
	if err != nil {
		return nil, fmt.Errorf("serve: creating detector: %w", err)
	}
	corpus := adrgen.Generate(adrgen.Config{
		NumReports:     cfg.SeedReports,
		DuplicatePairs: cfg.SeedDuplicates,
		Seed:           cfg.Seed,
	})

	seedStart := time.Now()
	if err := det.AddKnownReports(corpus.Reports); err != nil {
		det.Engine().Cluster().Close()
		return nil, fmt.Errorf("serve: seeding database: %w", err)
	}
	seedDur := time.Since(seedStart)

	labelled, err := corpus.SamplePairs(adrgen.PairSampleOptions{
		Total:        cfg.TrainPairs,
		HardFraction: cfg.HardFraction,
		Seed:         cfg.Seed + 1,
	})
	if err != nil {
		det.Engine().Cluster().Close()
		return nil, fmt.Errorf("serve: sampling training pairs: %w", err)
	}
	ids := make([]pairdist.IDPair, len(labelled))
	for i, p := range labelled {
		ids[i] = pairdist.IDPair{A: p.A, B: p.B, Label: p.Label}
	}
	trainStart := time.Now()
	if err := det.TrainFromIDPairs(ids); err != nil {
		det.Engine().Cluster().Close()
		return nil, fmt.Errorf("serve: training classifier: %w", err)
	}

	return &Bootstrap{
		Detector:      det,
		Corpus:        corpus,
		Config:        cfg,
		SeedDuration:  seedDur,
		TrainDuration: time.Since(trainStart),
	}, nil
}
