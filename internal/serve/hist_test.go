package serve

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// refQuantile is the exact reference the histogram is pinned against: the
// same rank rule (ceil(q*n)-th smallest) evaluated on the sorted samples.
func refQuantile(samples []time.Duration, q float64) time.Duration {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(math.Ceil(q * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// TestHistogramQuantilesPinned: on fixed sample sets, every reported
// quantile must bracket the exact reference from above within one bucket
// growth factor — the histogram's accuracy contract.
func TestHistogramQuantilesPinned(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sets := map[string][]time.Duration{}

	constant := make([]time.Duration, 500)
	for i := range constant {
		constant[i] = 3 * time.Millisecond
	}
	sets["constant"] = constant

	uniform := make([]time.Duration, 1000)
	for i := range uniform {
		uniform[i] = time.Duration(i+1) * time.Millisecond
	}
	sets["uniform"] = uniform

	// Heavily skewed: a fast bulk with a slow tail, the shape that makes
	// p99 interesting.
	skewed := make([]time.Duration, 0, 2100)
	for i := 0; i < 2000; i++ {
		skewed = append(skewed, time.Duration(500+rng.Intn(1500))*time.Microsecond)
	}
	for i := 0; i < 100; i++ {
		skewed = append(skewed, time.Duration(50+rng.Intn(450))*time.Millisecond)
	}
	sets["skewed"] = skewed

	for name, samples := range sets {
		h := NewHistogram()
		for _, d := range samples {
			h.Observe(d)
		}
		if h.Count() != uint64(len(samples)) {
			t.Fatalf("%s: count %d, want %d", name, h.Count(), len(samples))
		}
		for _, q := range []float64{0.50, 0.90, 0.95, 0.99, 1.0} {
			got := h.Quantile(q)
			ref := refQuantile(samples, q)
			lo := time.Duration(float64(ref) * 0.999)
			hi := time.Duration(float64(ref) * histGrowth * 1.001)
			if got < lo || got > hi {
				t.Errorf("%s p%g = %v, want within [%v, %v] (exact %v)",
					name, q*100, got, lo, hi, ref)
			}
		}
		max := refQuantile(samples, 1.0)
		if got := h.Summary().MaxMS; got != float64(max)/float64(time.Millisecond) {
			t.Errorf("%s max = %vms, want %v", name, got, max)
		}
	}
}

// TestHistogramEmptyAndEdge: the zero state reports zeros, and negative or
// sub-minimum samples are clamped instead of panicking or corrupting ranks.
func TestHistogramEmptyAndEdge(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.99) != 0 || h.Count() != 0 {
		t.Error("empty histogram must report zero")
	}
	if s := h.Summary(); s.Count != 0 || s.P99MS != 0 {
		t.Errorf("empty summary = %+v", s)
	}

	h.Observe(-time.Second)
	h.Observe(0)
	h.Observe(time.Microsecond)
	if h.Count() != 3 {
		t.Fatalf("count %d, want 3", h.Count())
	}
	// All samples are at or below histMin; quantiles cap at the true max.
	if got := h.Quantile(0.99); got != time.Microsecond {
		t.Errorf("sub-minimum quantile = %v, want %v (capped at max)", got, time.Microsecond)
	}
}

// TestHistogramConcurrentObserve: concurrent observers never lose a sample
// (the -race run also checks the memory model of the atomics).
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const (
		workers = 8
		each    = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(w+1) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*each {
		t.Fatalf("count %d, want %d", h.Count(), workers*each)
	}
	if max := time.Duration(h.max.Load()); max != workers*time.Millisecond {
		t.Errorf("max %v, want %v", max, workers*time.Millisecond)
	}
	if got, want := h.Quantile(1.0), time.Duration(workers)*time.Millisecond; got != want {
		t.Errorf("p100 %v, want %v", got, want)
	}
}
