package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sort"
	"strconv"
	"sync"

	"adrdedup"
	"adrdedup/internal/adr"
)

// MaxFieldBytes bounds any single string field of an ingested report. TGA
// narratives run to a few kilobytes; anything beyond this is a broken or
// hostile client, refused with 413 before it bloats the database.
const MaxFieldBytes = 64 << 10

// RequestError is the typed 4xx error every decoding or validation failure
// maps to. The decoder never panics and never returns an untyped error:
// FuzzIngestRequest pins both properties.
type RequestError struct {
	Status int    // HTTP status, always in [400, 500)
	Msg    string
}

func (e *RequestError) Error() string {
	return fmt.Sprintf("serve: %s (HTTP %d)", e.Msg, e.Status)
}

var errEmptyBatch = &RequestError{Status: http.StatusBadRequest, Msg: "empty batch"}

func errBatchTooLarge(n, max int) error {
	return &RequestError{Status: http.StatusRequestEntityTooLarge,
		Msg: fmt.Sprintf("batch of %d reports exceeds limit %d", n, max)}
}

// DecodeReport parses one JSON report object with the service's structural
// guards: well-formed JSON, exactly one object, a non-empty case number,
// every string field at most MaxFieldBytes, a plausible age. ArrivalSeq is
// always reset — arrival order is assigned by the database, never by the
// client. All failures are *RequestError (4xx).
func DecodeReport(data []byte) (adr.Report, error) {
	var r adr.Report
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&r); err != nil {
		return adr.Report{}, &RequestError{Status: http.StatusBadRequest,
			Msg: "invalid report JSON: " + err.Error()}
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return adr.Report{}, &RequestError{Status: http.StatusBadRequest,
			Msg: "trailing data after report object"}
	}
	if err := checkReport(&r); err != nil {
		return adr.Report{}, err
	}
	r.ArrivalSeq = 0
	return r, nil
}

// checkReport enforces the per-field guards on a decoded report.
func checkReport(r *adr.Report) error {
	if r.CaseNumber == "" {
		return &RequestError{Status: http.StatusUnprocessableEntity,
			Msg: "report without case number"}
	}
	if r.CalculatedAge < 0 || r.CalculatedAge > 150 {
		return &RequestError{Status: http.StatusUnprocessableEntity,
			Msg: fmt.Sprintf("calculated age %d out of range [0, 150]", r.CalculatedAge)}
	}
	v := reflect.ValueOf(r).Elem()
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		if t.Field(i).Type.Kind() != reflect.String {
			continue
		}
		if n := len(v.Field(i).String()); n > MaxFieldBytes {
			return &RequestError{Status: http.StatusRequestEntityTooLarge,
				Msg: fmt.Sprintf("field %s is %d bytes, limit %d", t.Field(i).Name, n, MaxFieldBytes)}
		}
	}
	return nil
}

// DecodeBatch parses a batch ingest body: either {"reports": [...]} or a
// bare JSON array of report objects. Beyond the per-report guards it
// refuses empty batches, batches over maxBatch, and duplicate case numbers
// within the batch (which the database would reject anyway — refusing them
// at the door keeps the rejection a typed 4xx). All failures are
// *RequestError.
func DecodeBatch(data []byte, maxBatch int) ([]adr.Report, error) {
	var raws []json.RawMessage
	bare := false
	for _, b := range data {
		if b == ' ' || b == '\t' || b == '\n' || b == '\r' {
			continue
		}
		bare = b == '['
		break
	}
	if bare {
		if err := json.Unmarshal(data, &raws); err != nil {
			return nil, &RequestError{Status: http.StatusBadRequest,
				Msg: "invalid batch JSON: " + err.Error()}
		}
	} else {
		var req struct {
			Reports []json.RawMessage `json:"reports"`
		}
		if err := json.Unmarshal(data, &req); err != nil {
			return nil, &RequestError{Status: http.StatusBadRequest,
				Msg: "invalid batch JSON: " + err.Error()}
		}
		raws = req.Reports
	}
	if len(raws) == 0 {
		return nil, errEmptyBatch
	}
	if maxBatch > 0 && len(raws) > maxBatch {
		return nil, errBatchTooLarge(len(raws), maxBatch)
	}
	out := make([]adr.Report, len(raws))
	seen := make(map[string]int, len(raws))
	for i, raw := range raws {
		r, err := DecodeReport(raw)
		if err != nil {
			re := err.(*RequestError)
			return nil, &RequestError{Status: re.Status,
				Msg: fmt.Sprintf("report %d: %s", i, re.Msg)}
		}
		if j, dup := seen[r.CaseNumber]; dup {
			return nil, &RequestError{Status: http.StatusUnprocessableEntity,
				Msg: fmt.Sprintf("reports %d and %d share case number %q", j, i, r.CaseNumber)}
		}
		seen[r.CaseNumber] = i
		out[i] = r
	}
	return out, nil
}

// matchJSON is the wire form of one flagged duplicate.
type matchJSON struct {
	CaseA     string  `json:"caseA"`
	CaseB     string  `json:"caseB"`
	Score     float64 `json:"score"`
	Duplicate bool    `json:"duplicate"`
}

// ingestResponse is the wire response of both ingest endpoints. Matches
// carries only the pairs flagged duplicate; Scored counts every scored
// candidate pair.
type ingestResponse struct {
	Ingested   int         `json:"ingested"`
	Scored     int         `json:"scored"`
	Duplicates int         `json:"duplicates"`
	Matches    []matchJSON `json:"matches"`
}

// errorResponse is the wire form of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP mux:
//
//	POST /v1/reports        one report object
//	POST /v1/reports:batch  {"reports": [...]} or a bare array
//	GET  /v1/stats          live Stats
//	GET  /healthz           200 while running, 503 otherwise
//	GET  /debug/vars        expvar (includes the adrdedupd stats var)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/reports", func(w http.ResponseWriter, r *http.Request) {
		s.handleIngest(w, r, true)
	})
	mux.HandleFunc("POST /v1/reports:batch", func(w http.ResponseWriter, r *http.Request) {
		s.handleIngest(w, r, false)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.RLock()
		running := s.state == stateRunning
		s.mu.RUnlock()
		if running {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": stateName(s.state)})
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request, single bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
				Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "reading request body: " + err.Error()})
		return
	}
	var batch []adr.Report
	if single {
		rep, derr := DecodeReport(body)
		if derr == nil {
			batch = []adr.Report{rep}
		}
		err = derr
	} else {
		batch, err = DecodeBatch(body, s.cfg.MaxBatch)
	}
	if err != nil {
		s.writeError(w, err)
		return
	}

	matches, err := s.Submit(r.Context(), batch)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := ingestResponse{Ingested: len(batch), Scored: len(matches), Matches: []matchJSON{}}
	for _, m := range adrdedup.Duplicates(matches) {
		resp.Matches = append(resp.Matches, matchJSON{CaseA: m.CaseA, CaseB: m.CaseB, Score: m.Score, Duplicate: true})
	}
	resp.Duplicates = len(resp.Matches)
	writeJSON(w, http.StatusOK, resp)
}

// writeError maps pipeline errors to HTTP statuses: typed request errors
// keep their status, backpressure and drain map to 429/503 with a
// Retry-After hint, and a Detect failure (batch rolled back, safe to
// resubmit) maps to 422.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	retryAfter := strconv.Itoa(int((s.cfg.RetryAfter + 999_999_999) / 1_000_000_000))
	var re *RequestError
	switch {
	case errors.As(err, &re):
		writeJSON(w, re.Status, errorResponse{Error: re.Msg})
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", retryAfter)
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrShuttingDown), errors.Is(err, ErrNotStarted):
		w.Header().Set("Retry-After", retryAfter)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// The expvar integration publishes one "adrdedupd" var holding the stats of
// every live server in this process (tests run several), keyed by start
// order. Registered lazily on the first Start so importing the package does
// not pollute expvar.
var (
	expvarOnce sync.Once
	expvarMu   sync.Mutex
	expvarSrvs = map[*Server]int{}
	expvarSeq  int
)

func registerExpvar(s *Server) {
	expvarOnce.Do(func() {
		expvar.Publish("adrdedupd", expvar.Func(func() any {
			expvarMu.Lock()
			defer expvarMu.Unlock()
			type entry struct {
				ID int `json:"id"`
				Stats
			}
			out := make([]entry, 0, len(expvarSrvs))
			for srv, id := range expvarSrvs {
				out = append(out, entry{ID: id, Stats: srv.Stats()})
			}
			sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
			return out
		}))
	})
	expvarMu.Lock()
	expvarSeq++
	expvarSrvs[s] = expvarSeq
	expvarMu.Unlock()
}

func unregisterExpvar(s *Server) {
	expvarMu.Lock()
	delete(expvarSrvs, s)
	expvarMu.Unlock()
}
