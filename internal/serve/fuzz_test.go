package serve

import (
	"errors"
	"strings"
	"testing"
)

// FuzzIngestRequest fuzzes both HTTP decoders with arbitrary bodies. The
// contract under fuzz: never panic, and every rejection is a *RequestError
// carrying a 4xx status and a message — the handler turns exactly that into
// the client response, so an untyped error here would surface as a
// misleading 422 and a panic would kill the worker.
func FuzzIngestRequest(f *testing.F) {
	seeds := []string{
		`{"caseNumber":"TGA-2013-000001","calculatedAge":34,"sex":"F","genericNameDesc":"Influenza Vaccine","meddraPTName":"Headache"}`,
		`{"reports":[{"caseNumber":"A"},{"caseNumber":"B"}]}`,
		`[{"caseNumber":"A"},{"caseNumber":"B"}]`,
		`{"caseNumber":""}`,
		`{"caseNumber":"A","calculatedAge":-3}`,
		`{"caseNumber":"A","calculatedAge":1e99}`,
		`{"caseNumber":"A"} {"caseNumber":"B"}`,
		`{"reports":[{"caseNumber":"A"},{"caseNumber":"A"}]}`,
		`{"reports": 7}`,
		`not json at all`,
		`[]`,
		`null`,
		`{"caseNumber":"` + strings.Repeat("x", MaxFieldBytes+1) + `"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := DecodeReport(data); err != nil {
			checkTyped(t, "DecodeReport", err)
		}
		if _, err := DecodeBatch(data, 50); err != nil {
			checkTyped(t, "DecodeBatch", err)
		}
	})
}

func checkTyped(t *testing.T, fn string, err error) {
	t.Helper()
	var re *RequestError
	if !errors.As(err, &re) {
		t.Fatalf("%s returned untyped error %T: %v", fn, err, err)
	}
	if re.Status < 400 || re.Status >= 500 {
		t.Fatalf("%s returned status %d, want 4xx: %v", fn, re.Status, err)
	}
	if re.Msg == "" {
		t.Fatalf("%s returned a RequestError without a message", fn)
	}
}
