package text

// Stem reduces an English word to its root form using the Porter stemming
// algorithm (Porter, 1980). The input is expected to be a lowercase token as
// produced by Tokenize; words shorter than three letters and tokens
// containing non a-z characters are returned unchanged, matching the
// reference implementation's behaviour.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	for i := 0; i < len(word); i++ {
		if word[i] < 'a' || word[i] > 'z' {
			return word
		}
	}
	s := &stemmer{b: []byte(word), k: len(word) - 1}
	s.step1ab()
	// step1ab can strip the word down to a single letter (e.g. "aed" →
	// "a"); the remaining steps all inspect b[k-1] and require at least
	// two letters, so stop here — found by FuzzStem.
	if s.k > 0 {
		s.step1c()
		s.step2()
		s.step3()
		s.step4()
		s.step5()
	}
	return string(s.b[:s.k+1])
}

// stemmer is a direct port of Porter's reference implementation. b[0..k]
// holds the word being stemmed; j is a general offset into the word.
type stemmer struct {
	b []byte
	k int
	j int
}

// cons reports whether b[i] is a consonant.
func (s *stemmer) cons(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.cons(i - 1)
	}
	return true
}

// m measures the number of consonant-vowel sequences between 0 and j.
func (s *stemmer) m() int {
	n := 0
	i := 0
	for {
		if i > s.j {
			return n
		}
		if !s.cons(i) {
			break
		}
		i++
	}
	i++
	for {
		for {
			if i > s.j {
				return n
			}
			if s.cons(i) {
				break
			}
			i++
		}
		i++
		n++
		for {
			if i > s.j {
				return n
			}
			if !s.cons(i) {
				break
			}
			i++
		}
		i++
	}
}

// vowelInStem reports whether b[0..j] contains a vowel.
func (s *stemmer) vowelInStem() bool {
	for i := 0; i <= s.j; i++ {
		if !s.cons(i) {
			return true
		}
	}
	return false
}

// doubleC reports whether b[i-1..i] is a double consonant.
func (s *stemmer) doubleC(i int) bool {
	if i < 1 {
		return false
	}
	if s.b[i] != s.b[i-1] {
		return false
	}
	return s.cons(i)
}

// cvc reports whether b[i-2..i] is consonant-vowel-consonant and the final
// consonant is not w, x or y. Used to restore a trailing e (e.g. cav(e),
// lov(e), hop(e)).
func (s *stemmer) cvc(i int) bool {
	if i < 2 || !s.cons(i) || s.cons(i-1) || !s.cons(i-2) {
		return false
	}
	switch s.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// ends reports whether b[0..k] ends with suffix, setting j on success.
func (s *stemmer) ends(suffix string) bool {
	l := len(suffix)
	o := s.k - l + 1
	if o < 0 {
		return false
	}
	for i := 0; i < l; i++ {
		if s.b[o+i] != suffix[i] {
			return false
		}
	}
	s.j = s.k - l
	return true
}

// setTo replaces b[j+1..k] with t and adjusts k.
func (s *stemmer) setTo(t string) {
	l := len(t)
	o := s.j + 1
	for i := 0; i < l; i++ {
		s.b[o+i] = t[i]
	}
	s.k = s.j + l
}

// r replaces the suffix with t when m() > 0.
func (s *stemmer) r(t string) {
	if s.m() > 0 {
		s.setTo(t)
	}
}

// step1ab removes plurals and -ed or -ing:
// caresses→caress, ponies→poni, ties→ti, caress→caress, cats→cat,
// feed→feed, agreed→agree, plastered→plaster, motoring→motor.
func (s *stemmer) step1ab() {
	if s.b[s.k] == 's' {
		switch {
		case s.ends("sses"):
			s.k -= 2
		case s.ends("ies"):
			s.setTo("i")
		case s.b[s.k-1] != 's':
			s.k--
		}
	}
	if s.ends("eed") {
		if s.m() > 0 {
			s.k--
		}
	} else if (s.ends("ed") || s.ends("ing")) && s.vowelInStem() {
		s.k = s.j
		switch {
		case s.ends("at"):
			s.setTo("ate")
		case s.ends("bl"):
			s.setTo("ble")
		case s.ends("iz"):
			s.setTo("ize")
		case s.doubleC(s.k):
			s.k--
			switch s.b[s.k] {
			case 'l', 's', 'z':
				s.k++
			}
		default:
			if s.m() == 1 && s.cvc(s.k) {
				s.setTo("e")
			}
		}
	}
}

// step1c turns terminal y to i when there is another vowel in the stem.
func (s *stemmer) step1c() {
	if s.ends("y") && s.vowelInStem() {
		s.b[s.k] = 'i'
	}
}

// step2 maps double suffixes to single ones when m() > 0:
// -ization → -ize, -ational → -ate, etc.
func (s *stemmer) step2() {
	switch s.b[s.k-1] {
	case 'a':
		if s.ends("ational") {
			s.r("ate")
		} else if s.ends("tional") {
			s.r("tion")
		}
	case 'c':
		if s.ends("enci") {
			s.r("ence")
		} else if s.ends("anci") {
			s.r("ance")
		}
	case 'e':
		if s.ends("izer") {
			s.r("ize")
		}
	case 'l':
		if s.ends("bli") {
			s.r("ble")
		} else if s.ends("alli") {
			s.r("al")
		} else if s.ends("entli") {
			s.r("ent")
		} else if s.ends("eli") {
			s.r("e")
		} else if s.ends("ousli") {
			s.r("ous")
		}
	case 'o':
		if s.ends("ization") {
			s.r("ize")
		} else if s.ends("ation") {
			s.r("ate")
		} else if s.ends("ator") {
			s.r("ate")
		}
	case 's':
		if s.ends("alism") {
			s.r("al")
		} else if s.ends("iveness") {
			s.r("ive")
		} else if s.ends("fulness") {
			s.r("ful")
		} else if s.ends("ousness") {
			s.r("ous")
		}
	case 't':
		if s.ends("aliti") {
			s.r("al")
		} else if s.ends("iviti") {
			s.r("ive")
		} else if s.ends("biliti") {
			s.r("ble")
		}
	case 'g':
		if s.ends("logi") {
			s.r("log")
		}
	}
}

// step3 deals with -ic-, -full, -ness etc., like step2.
func (s *stemmer) step3() {
	switch s.b[s.k] {
	case 'e':
		if s.ends("icate") {
			s.r("ic")
		} else if s.ends("ative") {
			s.r("")
		} else if s.ends("alize") {
			s.r("al")
		}
	case 'i':
		if s.ends("iciti") {
			s.r("ic")
		}
	case 'l':
		if s.ends("ical") {
			s.r("ic")
		} else if s.ends("ful") {
			s.r("")
		}
	case 's':
		if s.ends("ness") {
			s.r("")
		}
	}
}

// step4 removes -ant, -ence etc. when m() > 1.
func (s *stemmer) step4() {
	switch s.b[s.k-1] {
	case 'a':
		if !s.ends("al") {
			return
		}
	case 'c':
		if !s.ends("ance") && !s.ends("ence") {
			return
		}
	case 'e':
		if !s.ends("er") {
			return
		}
	case 'i':
		if !s.ends("ic") {
			return
		}
	case 'l':
		if !s.ends("able") && !s.ends("ible") {
			return
		}
	case 'n':
		if !s.ends("ant") && !s.ends("ement") && !s.ends("ment") && !s.ends("ent") {
			return
		}
	case 'o':
		if s.ends("ion") && s.j >= 0 && (s.b[s.j] == 's' || s.b[s.j] == 't') {
			// keep
		} else if !s.ends("ou") {
			return
		}
	case 's':
		if !s.ends("ism") {
			return
		}
	case 't':
		if !s.ends("ate") && !s.ends("iti") {
			return
		}
	case 'u':
		if !s.ends("ous") {
			return
		}
	case 'v':
		if !s.ends("ive") {
			return
		}
	case 'z':
		if !s.ends("ize") {
			return
		}
	default:
		return
	}
	if s.m() > 1 {
		s.k = s.j
	}
}

// step5 removes a final -e when m() > 1, and changes -ll to -l when m() > 1.
func (s *stemmer) step5() {
	s.j = s.k
	if s.b[s.k] == 'e' {
		a := s.m()
		if a > 1 || a == 1 && !s.cvc(s.k-1) {
			s.k--
		}
	}
	if s.b[s.k] == 'l' && s.doubleC(s.k) && s.m() > 1 {
		s.k--
	}
}
