package text

import "testing"

// FuzzStem fuzzes the Porter stemmer. For any input, Stem must not panic,
// must never grow the word, and must *converge*: repeated stemming reaches a
// fixed point (idempotence) within a handful of applications. Strict
// one-step idempotence is not a true Porter invariant — the reference
// algorithm maps "agreed" → "agre" → "agr" → "agr" — but convergence is:
// every non-fixed application either shortens the word or rewrites a final
// y to i, so no oscillation is possible. A stemmer bug that breaks
// termination, grows words, or cycles trips this target.
//
// The committed corpus under testdata/fuzz/FuzzStem seeds the usual
// suspects: suffix families, short words, non-letters, repeated letters,
// and the known two-step chain "agreed".
func FuzzStem(f *testing.F) {
	for _, w := range []string{
		"", "a", "be", "cat", "caresses", "ponies", "relational",
		"conditional", "adjustment", "triplicate", "dependent",
		"probate", "controllable", "hopefulness", "agreed", "feed",
		"matting", "sky", "y", "oscillate", "vietnamization",
		"ADR!", "naïve", "aspirin", "headache", "dizziness",
	} {
		f.Add(w)
	}
	f.Fuzz(func(t *testing.T, word string) {
		cur := Stem(word)
		if len(cur) > len(word) {
			t.Fatalf("Stem(%q) = %q grew the word", word, cur)
		}
		// Convergence: within a few applications the stem must be its own
		// stem. Three extra rounds is generous — no known English chain
		// needs more than two.
		const maxRounds = 3
		for i := 0; i < maxRounds; i++ {
			next := Stem(cur)
			if len(next) > len(cur) {
				t.Fatalf("Stem(%q) = %q grew the word (round %d from %q)", cur, next, i+1, word)
			}
			if next == cur {
				return
			}
			cur = next
		}
		if next := Stem(cur); next != cur {
			t.Errorf("Stem(%q) did not reach a fixed point after %d rounds: still %q -> %q",
				word, maxRounds, cur, next)
		}
	})
}
