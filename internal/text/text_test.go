package text

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"Hello, World!", []string{"hello", "world"}},
		{"On 30 April 2013, in the evening", []string{"on", "30", "april", "2013", "in", "the", "evening"}},
		{"atorvastatin calcium 80 mg", []string{"atorvastatin", "calcium", "80", "mg"}},
		{"02-Oct-2013", []string{"02", "oct", "2013"}},
		{"  spaces   everywhere  ", []string{"spaces", "everywhere"}},
		{"!!!", nil},
		{"UPPER lower MiXeD", []string{"upper", "lower", "mixed"}},
		{"myalgia,shoulder/hips", []string{"myalgia", "shoulder", "hips"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeNoEmptyTokens(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenizeIdempotentOnJoined(t *testing.T) {
	// Tokenizing the space-join of a token list returns the same list.
	f := func(s string) bool {
		first := Tokenize(s)
		joined := ""
		for i, tok := range first {
			if i > 0 {
				joined += " "
			}
			joined += tok
		}
		second := Tokenize(joined)
		if len(first) == 0 {
			return len(second) == 0
		}
		return reflect.DeepEqual(first, second)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStopwords(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "patient", "subject", "report"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"rhabdomyolysis", "atorvastatin", "headache", "cough"} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true, want false", w)
		}
	}
}

func TestRemoveStopwords(t *testing.T) {
	in := []string{"the", "patient", "experienced", "severe", "headache"}
	want := []string{"severe", "headache"}
	if got := RemoveStopwords(in); !reflect.DeepEqual(got, want) {
		t.Errorf("RemoveStopwords(%v) = %v, want %v", in, got, want)
	}
}

// Porter's published vocabulary gives exact expected outputs; these cases
// are drawn from the reference test set plus ADR-domain words.
func TestPorterStemmer(t *testing.T) {
	cases := []struct{ in, want string }{
		{"caresses", "caress"},
		{"ponies", "poni"},
		{"ties", "ti"},
		{"caress", "caress"},
		{"cats", "cat"},
		{"feed", "feed"},
		{"agreed", "agre"},
		{"plastered", "plaster"},
		{"bled", "bled"},
		{"motoring", "motor"},
		{"sing", "sing"},
		{"conflated", "conflat"},
		{"troubled", "troubl"},
		{"sized", "size"},
		{"hopping", "hop"},
		{"tanned", "tan"},
		{"falling", "fall"},
		{"hissing", "hiss"},
		{"fizzed", "fizz"},
		{"failing", "fail"},
		{"filing", "file"},
		{"happy", "happi"},
		{"sky", "sky"},
		{"relational", "relat"},
		{"conditional", "condit"},
		{"rational", "ration"},
		{"valenci", "valenc"},
		{"hesitanci", "hesit"},
		{"digitizer", "digit"},
		{"conformabli", "conform"},
		{"radicalli", "radic"},
		{"differentli", "differ"},
		{"vileli", "vile"},
		{"analogousli", "analog"},
		{"vietnamization", "vietnam"},
		{"predication", "predic"},
		{"operator", "oper"},
		{"feudalism", "feudal"},
		{"decisiveness", "decis"},
		{"hopefulness", "hope"},
		{"callousness", "callous"},
		{"formaliti", "formal"},
		{"sensitiviti", "sensit"},
		{"sensibiliti", "sensibl"},
		{"triplicate", "triplic"},
		{"formative", "form"},
		{"formalize", "formal"},
		{"electriciti", "electr"},
		{"electrical", "electr"},
		{"hopeful", "hope"},
		{"goodness", "good"},
		{"revival", "reviv"},
		{"allowance", "allow"},
		{"inference", "infer"},
		{"airliner", "airlin"},
		{"gyroscopic", "gyroscop"},
		{"adjustable", "adjust"},
		{"defensible", "defens"},
		{"irritant", "irrit"},
		{"replacement", "replac"},
		{"adjustment", "adjust"},
		{"dependent", "depend"},
		{"adoption", "adopt"},
		{"homologou", "homolog"},
		{"communism", "commun"},
		{"activate", "activ"},
		{"angulariti", "angular"},
		{"homologous", "homolog"},
		{"effective", "effect"},
		{"bowdlerize", "bowdler"},
		{"probate", "probat"},
		{"rate", "rate"},
		{"cease", "ceas"},
		{"controll", "control"},
		{"roll", "roll"},
		// ADR-domain vocabulary.
		{"vaccination", "vaccin"},
		{"vaccinated", "vaccin"},
		{"choking", "choke"},
		{"vomiting", "vomit"},
		{"treatments", "treatment"},
		{"headaches", "headach"},
		// Short and non-alphabetic tokens pass through.
		{"be", "be"},
		{"a", "a"},
		{"80", "80"},
		{"x2y", "x2y"},
	}
	for _, c := range cases {
		if got := Stem(c.in); got != c.want {
			t.Errorf("Stem(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestStemIdempotent(t *testing.T) {
	// A stemmed word stems to itself for typical vocabulary. (True Porter
	// idempotence holds for the overwhelming majority of English words;
	// we assert it on domain vocabulary to catch regressions.)
	words := []string{
		"vaccination", "rhabdomyolysis", "headaches", "experienced",
		"treatment", "hospitalization", "reactions", "choking", "myalgia",
		"weakness", "uncontrollable", "ambulance", "oxygen",
	}
	for _, w := range words {
		once := Stem(w)
		twice := Stem(once)
		if once != twice {
			t.Errorf("Stem not idempotent for %q: %q -> %q", w, once, twice)
		}
	}
}

func TestStemNeverGrows(t *testing.T) {
	f := func(s string) bool {
		return len(Stem(s)) <= len(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProcessPipeline(t *testing.T) {
	got := Process("The patient experienced uncontrollable coughing and headaches.")
	want := []string{"uncontrol", "cough", "headach"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Process = %v, want %v", got, want)
	}
}

func TestProcessParaphraseOverlap(t *testing.T) {
	// Two paraphrased descriptions of the same event should share a
	// substantial fraction of processed tokens — the property the paper's
	// text pipeline exists to expose.
	a := Process("The subject experienced uncontrollable cough for 2 hours, then started choking and had to call an ambulance.")
	b := Process("Within hours of vaccination the patient experienced an uncontrollable cough and felt like she was choking.")
	set := make(map[string]struct{})
	for _, tok := range a {
		set[tok] = struct{}{}
	}
	shared := 0
	for _, tok := range b {
		if _, ok := set[tok]; ok {
			shared++
		}
	}
	if shared < 2 {
		t.Errorf("paraphrases share %d processed tokens, want >= 2 (a=%v b=%v)", shared, a, b)
	}
}
