// Package text implements the natural-language processing pipeline the
// paper applies to the free-text "report description" field (§4.2):
// tokenization, stop-word removal, and Porter stemming. The output token
// sets feed the Jaccard distance used for string-typed fields.
package text

import (
	"strings"
	"unicode"
)

// Tokenize splits s into lowercase word tokens. A token is a maximal run of
// letters or digits; everything else (punctuation, whitespace) separates
// tokens. Purely numeric tokens are kept: dates and dosages carry signal for
// duplicate detection.
func Tokenize(s string) []string {
	if s == "" {
		return nil
	}
	tokens := make([]string, 0, len(s)/5)
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	if len(tokens) == 0 {
		return nil
	}
	return tokens
}

// stopwords is a standard English stop-word list augmented with tokens that
// are boilerplate in ADR report narratives ("patient", "subject", "report",
// "experienced") and therefore carry no duplicate-detection signal. The
// augmentation mirrors common practice for clinical narrative processing.
var stopwords = func() map[string]struct{} {
	words := []string{
		"a", "about", "above", "after", "again", "against", "all", "am",
		"an", "and", "any", "are", "as", "at", "be", "because", "been",
		"before", "being", "below", "between", "both", "but", "by", "can",
		"could", "did", "do", "does", "doing", "down", "during", "each",
		"few", "for", "from", "further", "had", "has", "have", "having",
		"he", "her", "here", "hers", "herself", "him", "himself", "his",
		"how", "i", "if", "in", "into", "is", "it", "its", "itself",
		"just", "me", "more", "most", "my", "myself", "no", "nor", "not",
		"now", "of", "off", "on", "once", "only", "or", "other", "our",
		"ours", "ourselves", "out", "over", "own", "same", "she", "should",
		"so", "some", "such", "than", "that", "the", "their", "theirs",
		"them", "themselves", "then", "there", "these", "they", "this",
		"those", "through", "to", "too", "under", "until", "up", "very",
		"was", "we", "were", "what", "when", "where", "which", "while",
		"who", "whom", "why", "will", "with", "you", "your", "yours",
		"yourself", "yourselves",
		// ADR-narrative boilerplate.
		"patient", "subject", "report", "reported", "reporting",
		"experienced", "case", "pertaining", "received",
	}
	m := make(map[string]struct{}, len(words))
	for _, w := range words {
		m[w] = struct{}{}
	}
	return m
}()

// IsStopword reports whether the (lowercase) token is on the stop-word list.
func IsStopword(token string) bool {
	_, ok := stopwords[token]
	return ok
}

// RemoveStopwords filters stop-words out of tokens, returning a new slice.
func RemoveStopwords(tokens []string) []string {
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if !IsStopword(t) {
			out = append(out, t)
		}
	}
	return out
}

// Process runs the full pipeline of §4.2 on a free-text field: tokenize,
// remove stop-words, and stem each remaining token to its root form. The
// stop-word filter and stemmer run in place on the freshly tokenized slice
// (Tokenize always returns a new slice), so the pipeline allocates once.
func Process(s string) []string {
	tokens := Tokenize(s)
	out := tokens[:0]
	for _, t := range tokens {
		if !IsStopword(t) {
			out = append(out, Stem(t))
		}
	}
	return out
}
