package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"adrdedup/internal/kmeans"
	"adrdedup/internal/knn"
	"adrdedup/internal/rdd"
	"adrdedup/internal/vecmath"
)

// Classifier is a trained Fast kNN duplicate classifier. Train builds it;
// Classify labels batches of testing pairs. A Classifier is bound to the
// rdd.Context it was trained on.
type Classifier struct {
	ctx *rdd.Context
	cfg Config

	dim     int
	centers [][]float64

	// negBlocks holds the negative training pairs of each Voronoi cell,
	// keyed by cluster ID, one block per element — cached on the cluster
	// so repeated Classify calls reuse it (Spark persistence).
	negBlocks *rdd.RDD[rdd.Pair[int, []ipair]]
	negSizes  []int
	totalNeg  int

	// positives is the full positive set, broadcast to tasks
	// (observation 1: it is small).
	positives []ipair

	// negTrees holds an optional k-d tree per negative block
	// (Config.LocalIndex), aligned with cluster IDs.
	negTrees []*knn.KDTree

	// pruneCenters/pruneRadii implement §4.3.4 when cfg.Pruning is set.
	pruneCenters [][]float64
	pruneRadii   []float64

	intraComparisons    atomic.Int64
	crossComparisons    atomic.Int64
	positiveComparisons atomic.Int64
	additionalClusters  atomic.Int64
}

// Train partitions the labelled pairs and prepares the cluster-resident
// training structures. It implements lines 1-4 of Algorithm 2 plus the
// §4.3.4 pruning preparation.
func Train(ctx *rdd.Context, pairs []TrainingPair, cfg Config) (*Classifier, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(pairs) == 0 {
		return nil, errors.New("core: no training pairs")
	}
	dim := len(pairs[0].Vec)
	vecs := make([][]float64, len(pairs))
	for i, p := range pairs {
		if len(p.Vec) != dim {
			return nil, fmt.Errorf("core: training pair %d has dim %d, want %d", i, len(p.Vec), dim)
		}
		if p.Label != 1 && p.Label != -1 {
			return nil, fmt.Errorf("core: training pair %d has label %d, want +1 or -1", i, p.Label)
		}
		vecs[i] = p.Vec
	}

	c := &Classifier{ctx: ctx, cfg: cfg, dim: dim}

	// Line 1: partition T into b clusters.
	var assign []int
	if cfg.RandomPartition {
		rng := rand.New(rand.NewSource(cfg.Seed))
		assign = make([]int, len(pairs))
		centers := make([][]float64, cfg.B)
		counts := make([]int, cfg.B)
		for i := range centers {
			centers[i] = make([]float64, dim)
		}
		for i := range pairs {
			a := rng.Intn(cfg.B)
			assign[i] = a
			counts[a]++
			vecmath.Add(centers[a], pairs[i].Vec)
		}
		for i := range centers {
			if counts[i] > 0 {
				vecmath.Scale(centers[i], 1/float64(counts[i]))
			}
		}
		c.centers = centers
	} else {
		res, err := kmeans.Run(vecs, cfg.B, kmeans.Options{
			MaxIter: cfg.KMeansMaxIter, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("core: partitioning training pairs: %w", err)
		}
		c.centers = res.Centers
		assign = res.Assign
	}

	// Split by label; group negatives per cluster. Every pair keeps its
	// global training index so neighbor lists merge exactly.
	b := len(c.centers)
	negByCluster := make([][]ipair, b)
	for i, p := range pairs {
		ip := ipair{Idx: i, Vec: p.Vec, Label: p.Label}
		if p.Label > 0 {
			c.positives = append(c.positives, ip)
			continue
		}
		negByCluster[assign[i]] = append(negByCluster[assign[i]], ip)
	}
	c.negSizes = make([]int, b)
	blocks := make([]rdd.Pair[int, []ipair], 0, b)
	for cl, block := range negByCluster {
		c.negSizes[cl] = len(block)
		c.totalNeg += len(block)
		blocks = append(blocks, rdd.KV(cl, block))
	}
	avg := int64(1)
	if b > 0 {
		avg = int64(c.totalNeg/b+1) * int64(8*dim+16)
	}
	c.negBlocks = rdd.Parallelize(ctx, blocks, b).
		SetName("T-neg.blocks").
		WithBytesPerRecord(avg).
		Cache()

	// Broadcast the centers and positives to the executors.
	ctx.Cluster().Broadcast(int64(len(c.centers)) * int64(8*dim))
	ctx.Cluster().Broadcast(int64(len(c.positives)) * int64(8*dim+8))

	if cfg.LocalIndex {
		c.buildLocalIndexes(negByCluster)
	}

	// §4.3.4 preparation: cluster the positives, record radii.
	if cfg.Pruning != nil && len(c.positives) > 0 {
		posVecs := make([][]float64, len(c.positives))
		for i, p := range c.positives {
			posVecs[i] = p.Vec
		}
		res, err := kmeans.Run(posVecs, cfg.Pruning.Clusters, kmeans.Options{
			MaxIter: cfg.KMeansMaxIter, Seed: cfg.Seed + 1,
		})
		if err != nil {
			return nil, fmt.Errorf("core: clustering positives for pruning: %w", err)
		}
		c.pruneCenters = res.Centers
		c.pruneRadii = kmeans.Radii(posVecs, res)
	}
	return c, nil
}

// buildLocalIndexes constructs one k-d tree per negative block. Trees are
// block-local (like Zhang et al.'s per-block R-trees) so partition pruning
// and the index compose.
func (c *Classifier) buildLocalIndexes(negByCluster [][]ipair) {
	c.negTrees = make([]*knn.KDTree, len(negByCluster))
	for cl, block := range negByCluster {
		if len(block) == 0 {
			continue
		}
		pts := make([][]float64, len(block))
		labels := make([]int, len(block))
		ids := make([]int, len(block))
		for i, p := range block {
			pts[i] = p.Vec
			labels[i] = p.Label
			ids[i] = p.Idx
		}
		c.negTrees[cl] = knn.BuildKDTree(pts, labels, ids)
	}
}

// Centers returns the Voronoi cell centers of the training partition.
func (c *Classifier) Centers() [][]float64 { return c.centers }

// Positives returns the count of positive training pairs.
func (c *Classifier) Positives() int { return len(c.positives) }

// NegativeSizes returns the per-cluster negative pair counts.
func (c *Classifier) NegativeSizes() []int { return c.negSizes }

// Result is one classified testing pair.
type Result struct {
	// ID is the caller-assigned pair identity (index into the Classify
	// input).
	ID int
	// Score is the Eq. 5 inverse-distance-weighted score; pruned pairs
	// keep a score of negative infinity substitute (see Pruned).
	Score float64
	// Label is +1 (duplicate) when Score >= theta, else -1 (Eq. 6).
	Label int
	// Pruned marks pairs removed by §4.3.4 pruning before classification.
	Pruned bool
	// Neighbors holds the final k nearest labelled neighbors (empty for
	// pruned pairs), ascending by distance.
	Neighbors []knn.Neighbor
}

// Stats summarizes one Classify call, feeding the paper's Figs. 7, 8, 11.
type Stats struct {
	TestPairs                 int
	PrunedPairs               int
	IntraClusterComparisons   int64
	CrossClusterComparisons   int64
	PositiveScanComparisons   int64
	AdditionalClustersChecked int64
	VirtualTime               time.Duration
}

// ipair is a training pair with its global index, the element the negative
// blocks and positive scan work over.
type ipair struct {
	Idx   int
	Vec   []float64
	Label int
}

// sItem is a testing pair routed through the RDD stages.
type sItem struct {
	ID      int
	Vec     []float64
	Cluster int
}

// stage1Out carries a testing pair's state after the intra-cluster stage.
type stage1Out struct {
	Item       sItem
	Neighbors  []knn.Neighbor
	NeedCross  bool
	Additional []int
}
