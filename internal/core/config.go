// Package core implements the paper's contribution: the Fast kNN
// classification method for duplicate detection over highly imbalanced
// report-pair datasets (§4.3), built on the Spark-like RDD engine.
//
// The training pairs T are Voronoi-partitioned with k-means into b clusters;
// each testing pair s is assigned to its nearest cluster. Classification
// runs in two stages (Algorithm 2):
//
//  1. Intra-cluster: the k nearest neighbors of s among the negative pairs
//     of its own cluster are found with a join on cluster IDs, then merged
//     with the distances from s to *all* positive pairs — positives are few
//     (observation 1), so scanning them exhaustively is cheap and makes the
//     cross-cluster decision sound.
//  2. Cross-cluster: only when the merged top-k contains a positive pair
//     (observations 2-3) are additional partitions searched, and only those
//     partitions whose separating hyperplane lies closer to s than its
//     current k-th neighbor (observation 4, Eq. 7 — Algorithm 1).
//
// Scores follow Eq. 5 (inverse-distance weighting, which neutralizes the
// overwhelming negative majority) and labels follow Eq. 6 (threshold θ).
// The optional testing-set pruning of §4.3.4 drops testing pairs that lie
// outside every positive cluster's radius + f(θ) before classification.
package core

import (
	"errors"
	"fmt"
)

// Config parameterizes the Fast kNN classifier. Zero values take the
// defaults noted per field.
type Config struct {
	// K is the neighbor count (paper sweeps 5-21; default 9). The paper
	// assumes an odd k for the majority vote of Eq. 1; the weighted score
	// of Eq. 5 does not need it, but Validate still rejects even values
	// to stay faithful.
	K int
	// B is the number of k-means clusters the training set is partitioned
	// into (paper sweeps 10-70 and uses 32-200; default 32).
	B int
	// C is the number of partitions the testing set is split into
	// (paper: "block number", 4-30; default 8).
	C int
	// Theta is the Eq. 6 score threshold; pairs scoring >= Theta are
	// labelled duplicates. Default 0.
	Theta float64
	// Epsilon smooths the 1/distance weights of Eq. 5: a neighbor's
	// weight is 1/(dist+Epsilon), bounding coincident-vector weights at
	// 1/Epsilon. The default (DefaultEpsilon) keeps an exact-match
	// neighbor dominant without letting a single coincident pair swamp
	// the score ranking — with a near-zero epsilon one confusable
	// zero-distance negative sends a score to -1e9 and ruins AUPR.
	Epsilon float64
	// KMeansMaxIter bounds the partitioning step. Default 20.
	KMeansMaxIter int
	// Seed drives k-means seeding.
	Seed int64

	// Pruning, when non-nil, enables the §4.3.4 testing-set pruning.
	Pruning *PruningConfig

	// DisablePartitionPruning searches every other partition during the
	// cross-cluster stage instead of applying Algorithm 1's hyperplane
	// bound (the naive strategy of §4.3.1; ablation).
	DisablePartitionPruning bool
	// DisablePositiveShortcut always runs the cross-cluster stage instead
	// of skipping it when the top-k is all-negative (observations 2-3;
	// ablation).
	DisablePositiveShortcut bool
	// RandomPartition replaces k-means Voronoi partitioning with uniform
	// random partitioning (ablation). Because random partitions have no
	// Voronoi property, the hyperplane bound is unsound and the
	// cross-cluster stage degrades to searching every partition.
	RandomPartition bool
	// LocalIndex builds a k-d tree over each negative block so the
	// intra- and cross-cluster searches visit a fraction of each block
	// instead of scanning it (the per-block index of Zhang et al.,
	// related work §6). Results are identical; the comparison counters
	// then report distance computations actually performed.
	LocalIndex bool
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 9
	}
	if c.B <= 0 {
		c.B = 32
	}
	if c.C <= 0 {
		c.C = 8
	}
	if c.Epsilon <= 0 {
		c.Epsilon = DefaultEpsilon
	}
	if c.KMeansMaxIter <= 0 {
		c.KMeansMaxIter = 20
	}
	return c
}

// Validate rejects configurations the classifier cannot run with.
func (c Config) Validate() error {
	if c.K < 0 || c.B < 0 || c.C < 0 {
		return fmt.Errorf("core: negative parameter in config %+v", c)
	}
	k := c.K
	if k == 0 {
		k = 9
	}
	if k%2 == 0 {
		return fmt.Errorf("core: k must be odd, got %d", k)
	}
	if c.Pruning != nil {
		if c.Pruning.Clusters <= 0 {
			return errors.New("core: pruning requires a positive cluster count")
		}
		if c.Pruning.FTheta < 0 {
			return errors.New("core: pruning distance threshold must be non-negative")
		}
	}
	return nil
}

// PruningConfig enables §4.3.4 testing-set pruning: positive training pairs
// are clustered into Clusters groups; a testing pair is kept only when its
// distance to some positive-cluster center is at most that cluster's radius
// plus f(θ).
type PruningConfig struct {
	// Clusters is l, the number of positive-pair clusters (paper: 200).
	Clusters int
	// FTheta is f(θ) expressed as a fraction of the maximum possible
	// pair-vector distance (sqrt(dims) for unit-cube distance vectors),
	// so thresholds are comparable across feature dimensionalities. The
	// paper sweeps 0.3-0.9, where 0.9 keeps nearly the whole testing set.
	FTheta float64
}

// DefaultEpsilon is the default Eq. 5 weight smoothing (weight bound
// 1/0.01 = 100): large enough that a single zero-distance neighbor cannot
// send a score to ±1e9 and wreck the ranking, small enough that near
// matches still weigh far above distant ones.
const DefaultEpsilon = 0.01

// TrainingPair is one labelled report pair: its §4.2 distance vector and its
// duplicate label (+1) or non-duplicate label (-1).
type TrainingPair struct {
	Vec   []float64
	Label int
}
