package core

import (
	"errors"
	"fmt"

	"adrdedup/internal/knn"
)

// ExactClassify is the single-node reference classifier: an exact
// brute-force kNN join against the full training set, scored with Eq. 5 and
// thresholded with Eq. 6. Fast kNN's partitioned search is exact-by-
// construction for labels (its pruning rules never discard a neighbor that
// could change the decision), which the test suite verifies against this
// implementation. It is also the "kNN without parallelization" baseline the
// paper motivates Fast kNN with.
func ExactClassify(train []TrainingPair, test [][]float64, k int, theta, eps float64) ([]Result, error) {
	if len(train) == 0 {
		return nil, errors.New("core: no training pairs")
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: k = %d", k)
	}
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	vecs := make([][]float64, len(train))
	labels := make([]int, len(train))
	for i, p := range train {
		vecs[i] = p.Vec
		labels[i] = p.Label
	}
	neighborLists := knn.BruteForce(test, vecs, labels, k)
	out := make([]Result, len(test))
	for i, neighbors := range neighborLists {
		score := ScoreNeighbors(neighbors, eps)
		label := -1
		if score >= theta {
			label = 1
		}
		out[i] = Result{ID: i, Score: score, Label: label, Neighbors: neighbors}
	}
	return out, nil
}
