package core

import (
	"testing"
)

func TestLearnPruningThresholdKeepsValidationPositives(t *testing.T) {
	const dim = 7
	train := synthData(30, 3000, dim, 41)
	validation := synthData(20, 0, dim, 42) // positives only

	pruning, err := LearnPruningThreshold(train, validation, 6, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if pruning.FTheta < 0 || pruning.FTheta > 1 {
		t.Fatalf("learned f(theta) = %v out of [0,1]", pruning.FTheta)
	}

	ctx := testCtx()
	cfg := Config{K: 9, B: 10, C: 4, Seed: 43, Pruning: pruning}
	clf, err := Train(ctx, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var valVecs [][]float64
	for _, p := range validation {
		valVecs = append(valVecs, p.Vec)
	}
	res, _, err := clf.Classify(valVecs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Pruned {
			t.Errorf("validation positive %d pruned at learned threshold %.3f", i, pruning.FTheta)
		}
	}
}

func TestLearnPruningThresholdTighterThanManualDefault(t *testing.T) {
	const dim = 7
	train := synthData(30, 3000, dim, 44)
	validation := synthData(20, 0, dim, 45)
	pruning, err := LearnPruningThreshold(train, validation, 6, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// The point of learning: the threshold should be far below the "keep
	// everything" setting of 0.9 the paper sweeps to, so pruning still
	// saves work.
	if pruning.FTheta >= 0.9 {
		t.Errorf("learned f(theta) = %.3f; not tighter than the manual ceiling", pruning.FTheta)
	}

	// And it must actually prune far pairs.
	ctx := testCtx()
	clf, err := Train(ctx, train, Config{K: 9, B: 10, C: 4, Seed: 46, Pruning: pruning})
	if err != nil {
		t.Fatal(err)
	}
	queries, _ := synthQueries(300, dim, 47)
	_, stats, err := clf.Classify(queries)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PrunedPairs == 0 {
		t.Error("learned threshold pruned nothing; it is vacuous")
	}
}

func TestLearnPruningThresholdValidation(t *testing.T) {
	const dim = 3
	train := synthData(5, 50, dim, 48)
	validation := synthData(5, 0, dim, 49)
	if _, err := LearnPruningThreshold(train, validation, 0, 0.1); err == nil {
		t.Error("l=0 must be rejected")
	}
	if _, err := LearnPruningThreshold(train, validation, 4, -1); err == nil {
		t.Error("negative safety must be rejected")
	}
	onlyNeg := synthData(0, 50, dim, 50)
	if _, err := LearnPruningThreshold(onlyNeg, validation, 4, 0.1); err == nil {
		t.Error("training without positives must be rejected")
	}
	if _, err := LearnPruningThreshold(train, onlyNeg, 4, 0.1); err == nil {
		t.Error("validation without positives must be rejected")
	}
}
