package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"adrdedup/internal/rdd"
)

// modelVersion guards the on-disk format.
const modelVersion = 1

// modelFile is the serialized form of a trained classifier. Negative blocks
// are stored per cluster so Load can rebuild the cluster-resident RDD
// without re-running k-means.
type modelFile struct {
	Version      int
	Config       Config
	Dim          int
	Centers      [][]float64
	NegBlocks    [][]savedPair
	Positives    []savedPair
	PruneCenters [][]float64
	PruneRadii   []float64
}

type savedPair struct {
	Idx   int
	Vec   []float64
	Label int
}

// Save serializes the trained classifier (partitioning, negative blocks,
// positives, pruning state) with encoding/gob. The engine context is not
// part of the model; Load binds the model to a new context.
func (c *Classifier) Save(w io.Writer) error {
	mf := modelFile{
		Version:      modelVersion,
		Config:       c.cfg,
		Dim:          c.dim,
		Centers:      c.centers,
		NegBlocks:    make([][]savedPair, 0, len(c.negSizes)),
		Positives:    make([]savedPair, len(c.positives)),
		PruneCenters: c.pruneCenters,
		PruneRadii:   c.pruneRadii,
	}
	for i, p := range c.positives {
		mf.Positives[i] = savedPair(p)
	}
	blocks, err := c.negBlocks.Collect()
	if err != nil {
		return fmt.Errorf("core: collecting negative blocks: %w", err)
	}
	ordered := make([][]savedPair, len(c.negSizes))
	for _, kv := range blocks {
		sp := make([]savedPair, len(kv.Value))
		for i, p := range kv.Value {
			sp[i] = savedPair(p)
		}
		ordered[kv.Key] = sp
	}
	mf.NegBlocks = ordered
	if err := gob.NewEncoder(w).Encode(mf); err != nil {
		return fmt.Errorf("core: encoding model: %w", err)
	}
	return nil
}

// Load reconstructs a classifier previously written by Save, binding it to
// the given engine context. The loaded model classifies identically to the
// saved one.
func Load(ctx *rdd.Context, r io.Reader) (*Classifier, error) {
	var mf modelFile
	if err := gob.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if mf.Version != modelVersion {
		return nil, fmt.Errorf("core: model version %d, want %d", mf.Version, modelVersion)
	}
	if len(mf.Centers) == 0 || mf.Dim <= 0 {
		return nil, fmt.Errorf("core: corrupt model (dim=%d, centers=%d)", mf.Dim, len(mf.Centers))
	}
	c := &Classifier{
		ctx:          ctx,
		cfg:          mf.Config,
		dim:          mf.Dim,
		centers:      mf.Centers,
		pruneCenters: mf.PruneCenters,
		pruneRadii:   mf.PruneRadii,
	}
	c.positives = arenaPairs(mf.Positives, mf.Dim)
	b := len(mf.NegBlocks)
	c.negSizes = make([]int, b)
	blocks := make([]rdd.Pair[int, []ipair], 0, b)
	negByCluster := make([][]ipair, b)
	for cl, saved := range mf.NegBlocks {
		block := arenaPairs(saved, mf.Dim)
		c.negSizes[cl] = len(block)
		c.totalNeg += len(block)
		negByCluster[cl] = block
		blocks = append(blocks, rdd.KV(cl, block))
	}
	if mf.Config.LocalIndex {
		c.buildLocalIndexes(negByCluster)
	}
	avg := int64(1)
	if b > 0 {
		avg = int64(c.totalNeg/b+1) * int64(8*mf.Dim+16)
	}
	c.negBlocks = rdd.Parallelize(ctx, blocks, b).
		SetName("T-neg.blocks(loaded)").
		WithBytesPerRecord(avg).
		Cache()
	ctx.Cluster().Broadcast(int64(len(c.centers)) * int64(8*mf.Dim))
	ctx.Cluster().Broadcast(int64(len(c.positives)) * int64(8*mf.Dim+8))
	return c, nil
}

// arenaPairs rebuilds a block of training pairs with every vector copied
// into one flat arena — one allocation per block instead of one per vector,
// and contiguous memory for the distance scans. Vectors whose saved width
// does not match dim (possible only in a hand-corrupted file) keep their
// decoded slice rather than corrupting the arena layout.
func arenaPairs(saved []savedPair, dim int) []ipair {
	block := make([]ipair, len(saved))
	arena := make([]float64, dim*len(saved))
	for i, p := range saved {
		block[i] = ipair(p)
		if len(p.Vec) == dim {
			v := arena[i*dim : (i+1)*dim : (i+1)*dim]
			copy(v, p.Vec)
			block[i].Vec = v
		}
	}
	return block
}
