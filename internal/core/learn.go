package core

import (
	"errors"
	"fmt"
	"math"

	"adrdedup/internal/kmeans"
	"adrdedup/internal/vecmath"
)

// LearnPruningThreshold implements the future work the paper sketches in
// §5.2.6: choose f(θ) from labelled data instead of fixing it by hand.
//
// The training positives are clustered into l groups (exactly as Classify's
// pruning step will do). For every *validation* positive pair, the slack it
// needs to survive pruning is its distance to the nearest cluster center
// minus that cluster's radius. The learned f(θ) is the maximum required
// slack across validation positives, inflated by safety (a fraction, e.g.
// 0.1 for 10% headroom), normalized to the space diameter as PruningConfig
// expects. Using held-out positives rather than the training ones is what
// makes the bound meaningful: training positives are inside their own
// clusters by construction.
//
// The returned PruningConfig keeps every validation positive by
// construction; the safety margin covers unseen duplicates.
func LearnPruningThreshold(train, validation []TrainingPair, l int, safety float64) (*PruningConfig, error) {
	if l <= 0 {
		return nil, fmt.Errorf("core: cluster count l = %d", l)
	}
	if safety < 0 {
		return nil, fmt.Errorf("core: negative safety margin %v", safety)
	}
	var posVecs [][]float64
	for _, p := range train {
		if p.Label > 0 {
			posVecs = append(posVecs, p.Vec)
		}
	}
	if len(posVecs) == 0 {
		return nil, errors.New("core: no positive training pairs to learn from")
	}
	var valPos [][]float64
	for _, p := range validation {
		if p.Label > 0 {
			valPos = append(valPos, p.Vec)
		}
	}
	if len(valPos) == 0 {
		return nil, errors.New("core: no positive validation pairs to learn from")
	}
	dim := len(posVecs[0])

	res, err := kmeans.Run(posVecs, l, kmeans.Options{MaxIter: 20, Seed: 1})
	if err != nil {
		return nil, fmt.Errorf("core: clustering positives: %w", err)
	}
	radii := kmeans.Radii(posVecs, res)

	required := 0.0
	for _, v := range valPos {
		// Slack needed for this positive: distance beyond the closest
		// cluster ball.
		best := math.Inf(1)
		for ci, center := range res.Centers {
			if need := vecmath.Dist(v, center) - radii[ci]; need < best {
				best = need
			}
		}
		if best > required {
			required = best
		}
	}
	if required < 0 {
		required = 0
	}
	// Safety headroom: proportional to the required slack, but never below
	// a share of the mean cluster radius — when every validation positive
	// already sits inside a ball, required is 0 and a purely
	// multiplicative margin would degenerate to f(θ) = 0, pruning every
	// unseen duplicate that lands just outside a ball.
	var meanRadius float64
	for _, r := range radii {
		meanRadius += r
	}
	meanRadius /= float64(len(radii))
	slack := required*(1+safety) + safety*meanRadius
	ftheta := slack / math.Sqrt(float64(dim))
	if ftheta > 1 {
		ftheta = 1
	}
	return &PruningConfig{Clusters: l, FTheta: ftheta}, nil
}
