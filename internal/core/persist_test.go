package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSaveLoadRoundTripClassifiesIdentically(t *testing.T) {
	const dim = 7
	train := synthData(20, 2000, dim, 51)
	queries, _ := synthQueries(150, dim, 52)

	ctx := testCtx()
	original, err := Train(ctx, train, Config{
		K: 9, B: 10, C: 4, Seed: 53,
		Pruning: &PruningConfig{Clusters: 5, FTheta: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := original.Classify(queries)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := original.Save(&buf); err != nil {
		t.Fatal(err)
	}

	ctx2 := testCtx()
	loaded, err := Load(ctx2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := loaded.Classify(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("result counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Label != want[i].Label || got[i].Pruned != want[i].Pruned {
			t.Errorf("query %d: loaded (%d,%v) vs original (%d,%v)",
				i, got[i].Label, got[i].Pruned, want[i].Label, want[i].Pruned)
		}
		if !got[i].Pruned && math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Errorf("query %d: score %v vs %v", i, got[i].Score, want[i].Score)
		}
	}
	if loaded.Positives() != original.Positives() {
		t.Errorf("positives %d vs %d", loaded.Positives(), original.Positives())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	ctx := testCtx()
	if _, err := Load(ctx, strings.NewReader("not a gob stream")); err == nil {
		t.Error("expected decode error")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	const dim = 3
	train := synthData(5, 100, dim, 54)
	ctx := testCtx()
	clf, err := Train(ctx, train, Config{K: 3, B: 2, C: 2, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Gob streams carry field values; corrupt by re-encoding a bumped
	// version through the public API is not possible, so simulate a
	// future version by checking the guard path with a hand-built file.
	// The practical check: a valid stream loads, and loading it twice
	// from the same buffer fails cleanly (stream exhausted).
	if _, err := Load(testCtx(), &buf); err != nil {
		t.Fatalf("first load failed: %v", err)
	}
	if _, err := Load(testCtx(), &buf); err == nil {
		t.Error("expected error on exhausted stream")
	}
}
