package core

import (
	"fmt"
	"math"
	"sort"

	"adrdedup/internal/knn"
	"adrdedup/internal/rdd"
	"adrdedup/internal/vecmath"
)

// Classify labels a batch of testing pair vectors with Algorithm 2. The
// returned results are ordered by input index. Classify may be called
// repeatedly (the cached training blocks are reused) but not concurrently
// with itself, matching the sequential job submission of a Spark driver.
func (c *Classifier) Classify(test [][]float64) ([]Result, Stats, error) {
	var stats Stats
	stats.TestPairs = len(test)
	if len(test) == 0 {
		return nil, stats, nil
	}
	for i, v := range test {
		if len(v) != c.dim {
			return nil, stats, fmt.Errorf("core: test pair %d has dim %d, want %d", i, len(v), c.dim)
		}
	}

	startVirtual := c.ctx.Cluster().VirtualElapsed()
	baseIntra := c.intraComparisons.Load()
	baseCross := c.crossComparisons.Load()
	basePos := c.positiveComparisons.Load()
	baseAdd := c.additionalClusters.Load()

	// §4.3.4 testing-set pruning.
	keep, err := c.pruneMask(test)
	if err != nil {
		return nil, stats, err
	}

	// Lines 2-4 of Algorithm 2: assign each testing pair to its nearest
	// training cluster and split the survivors into C partitions.
	items, pruned, err := c.assignClusters(test, keep)
	if err != nil {
		return nil, stats, err
	}
	stats.PrunedPairs = len(pruned)

	results := make([]Result, 0, len(test))
	for _, id := range pruned {
		results = append(results, Result{ID: id, Score: math.Inf(-1), Label: -1, Pruned: true})
	}

	if len(items) > 0 {
		classified, err := c.classifyItems(items)
		if err != nil {
			return nil, stats, err
		}
		results = append(results, classified...)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].ID < results[j].ID })

	stats.IntraClusterComparisons = c.intraComparisons.Load() - baseIntra
	stats.CrossClusterComparisons = c.crossComparisons.Load() - baseCross
	stats.PositiveScanComparisons = c.positiveComparisons.Load() - basePos
	stats.AdditionalClustersChecked = c.additionalClusters.Load() - baseAdd
	stats.VirtualTime = c.ctx.Cluster().VirtualElapsed() - startVirtual
	return results, stats, nil
}

// pruneMask returns, per testing pair, whether it survives §4.3.4 pruning.
// With pruning disabled (or no positive clusters) every pair survives.
func (c *Classifier) pruneMask(test [][]float64) ([]bool, error) {
	keep := make([]bool, len(test))
	if c.cfg.Pruning == nil || len(c.pruneCenters) == 0 {
		for i := range keep {
			keep[i] = true
		}
		return keep, nil
	}
	centers := c.pruneCenters
	radii := c.pruneRadii
	// f(θ) is a fraction of the space diameter; convert to a distance.
	slack := c.cfg.Pruning.FTheta * math.Sqrt(float64(c.dim))
	type verdict struct {
		ID   int
		Keep bool
	}
	idx := make([]int, len(test))
	for i := range idx {
		idx[i] = i
	}
	src := rdd.Parallelize(c.ctx, idx, c.cfg.C).SetName("S.pruneIDs")
	verdicts, err := rdd.Map(src, func(i int) verdict {
		t := test[i]
		for ci, cp := range centers {
			if vecmath.Dist(t, cp) <= radii[ci]+slack {
				return verdict{ID: i, Keep: true}
			}
		}
		return verdict{ID: i, Keep: false}
	}).SetName("S.pruned").Collect()
	if err != nil {
		return nil, fmt.Errorf("core: pruning testing set: %w", err)
	}
	for _, v := range verdicts {
		keep[v.ID] = v.Keep
	}
	return keep, nil
}

// assignClusters maps surviving testing pairs to their nearest Voronoi cell
// (lines 2-3 of Algorithm 2) and returns the pruned IDs separately.
func (c *Classifier) assignClusters(test [][]float64, keep []bool) ([]sItem, []int, error) {
	var pruned []int
	ids := make([]int, 0, len(test))
	for i, k := range keep {
		if k {
			ids = append(ids, i)
		} else {
			pruned = append(pruned, i)
		}
	}
	if len(ids) == 0 {
		return nil, pruned, nil
	}
	centers := c.centers
	src := rdd.Parallelize(c.ctx, ids, c.cfg.C).SetName("S.ids")
	items, err := rdd.Map(src, func(i int) sItem {
		cl, _ := vecmath.ArgMinDist(test[i], centers)
		return sItem{ID: i, Vec: test[i], Cluster: cl}
	}).SetName("S.assigned").Collect()
	if err != nil {
		return nil, nil, fmt.Errorf("core: assigning testing pairs: %w", err)
	}
	return items, pruned, nil
}

// classifyItems runs the two comparison stages of Algorithm 2 over the
// surviving testing pairs.
func (c *Classifier) classifyItems(items []sItem) ([]Result, error) {
	k := c.cfg.K
	positives := c.positives
	eps := c.cfg.Epsilon

	// Keyed testing pairs, split into C partitions (line 4).
	sKeyed := rdd.Map(
		rdd.Parallelize(c.ctx, items, c.cfg.C).SetName("S.items").WithBytesPerRecord(int64(8*c.dim+24)),
		func(s sItem) rdd.Pair[int, sItem] { return rdd.KV(s.Cluster, s) },
	).SetName("S.byCluster")

	// Stage 1 (lines 6-12): join testing pairs with their own cluster's
	// negative block, take the local top-k, fold in the exhaustive
	// positive scan, and decide whether cross-cluster search is needed.
	// The join is partitioned per training cluster (b partitions), so a
	// task's working set is one cluster's block: small cluster numbers
	// mean big blocks, which is what overruns executor memory in the
	// paper's Fig. 8(b).
	// The stage-1 output feeds two consumers (the no-cross results and the
	// cross-cluster fanout), so it is persisted — exactly the distributed
	// memory management the paper credits Spark for (§2.2); without it
	// the intra-cluster scans would run twice.
	joined := rdd.Join(sKeyed, c.negBlocks, len(c.centers)).SetName("S⋈T-neg")
	stage1 := rdd.Map(joined, func(row rdd.Pair[int, rdd.Tuple2[sItem, []ipair]]) stage1Out {
		s := row.Value.A
		block := row.Value.B
		neighbors := c.topKAgainst(s.Vec, row.Key, block, k, &c.intraComparisons)

		// Line 9-10: distances to every positive pair, merged in.
		posNeighbors := c.topKPositives(s.Vec, k)
		neighbors = knn.Merge(k, neighbors, posNeighbors)

		out := stage1Out{Item: s, Neighbors: neighbors}
		hasPositive := false
		for _, n := range neighbors {
			if n.Label > 0 {
				hasPositive = true
				break
			}
		}
		// Line 11 (observations 2-3): cross-cluster search is only
		// justified when a positive made it into the current top-k —
		// an all-negative top-k stays all-negative no matter what
		// nearer negatives other clusters hold. Searching is also
		// required when the own cluster could not supply k neighbors.
		out.NeedCross = hasPositive || len(neighbors) < k
		if c.cfg.DisablePositiveShortcut {
			out.NeedCross = true
		}
		if out.NeedCross {
			out.Additional = c.selectPartitions(s, neighbors)
			c.additionalClusters.Add(int64(len(out.Additional)))
			if len(out.Additional) == 0 {
				out.NeedCross = false
			}
		}
		return out
	}).SetName("S.stage1").WithBytesPerRecord(int64(8*c.dim + 48 + 48*c.cfg.K)).Cache()
	defer stage1.Unpersist()

	// Stage 2 (lines 12-15): fan surviving queries out to their additional
	// partitions, join with those negative blocks, and merge the per-
	// partition top-k lists back per testing pair.
	base := rdd.Map(stage1, func(o stage1Out) rdd.Pair[int, []knn.Neighbor] {
		return rdd.KV(o.Item.ID, o.Neighbors)
	}).SetName("S.stage1.neighbors")

	type crossQuery struct {
		ID  int
		Vec []float64
	}
	fanout := rdd.FlatMap(stage1, func(o stage1Out) []rdd.Pair[int, crossQuery] {
		if !o.NeedCross {
			return nil
		}
		out := make([]rdd.Pair[int, crossQuery], 0, len(o.Additional))
		for _, p := range o.Additional {
			out = append(out, rdd.KV(p, crossQuery{ID: o.Item.ID, Vec: o.Item.Vec}))
		}
		return out
	}).SetName("S.crossFanout")

	crossJoined := rdd.Join(fanout, c.negBlocks, len(c.centers)).SetName("Scross⋈T-neg")
	crossResults := rdd.Map(crossJoined, func(row rdd.Pair[int, rdd.Tuple2[crossQuery, []ipair]]) rdd.Pair[int, []knn.Neighbor] {
		q := row.Value.A
		block := row.Value.B
		return rdd.KV(q.ID, c.topKAgainst(q.Vec, row.Key, block, k, &c.crossComparisons))
	}).SetName("S.crossNeighbors")

	merged := rdd.ReduceByKey(rdd.Union(base, crossResults), func(a, b []knn.Neighbor) []knn.Neighbor {
		return knn.Merge(k, a, b)
	}, c.cfg.C).SetName("S.finalNeighbors")

	// Line 17: score (Eq. 5) and label (Eq. 6).
	theta := c.cfg.Theta
	scored := rdd.Map(merged, func(kv rdd.Pair[int, []knn.Neighbor]) Result {
		score := ScoreNeighbors(kv.Value, eps)
		label := -1
		if score >= theta {
			label = 1
		}
		return Result{ID: kv.Key, Score: score, Label: label, Neighbors: kv.Value}
	}).SetName("S.scored")

	results, err := scored.Collect()
	if err != nil {
		return nil, fmt.Errorf("core: classification: %w", err)
	}
	// Any positives needed? Count positive-scan comparisons driver-side:
	// one full positive scan per classified item.
	c.positiveComparisons.Add(int64(len(items)) * int64(len(positives)))
	return results, nil
}

// topKAgainst finds the query's k nearest members of a negative block,
// charging the comparison counter with the distance computations actually
// performed. With Config.LocalIndex the block's k-d tree answers the query;
// otherwise the block is scanned. Neighbors keep their global training
// index, so later merges deduplicate exactly.
func (c *Classifier) topKAgainst(q []float64, cluster int, block []ipair, k int, counter interface{ Add(int64) int64 }) []knn.Neighbor {
	if c.negTrees != nil && cluster >= 0 && cluster < len(c.negTrees) && c.negTrees[cluster] != nil {
		neighbors, computed := c.negTrees[cluster].Query(q, k)
		counter.Add(computed)
		return neighbors
	}
	counter.Add(int64(len(block)))
	cands := make([]knn.Neighbor, len(block))
	for j, t := range block {
		cands[j] = knn.Neighbor{Index: t.Idx, Dist: vecmath.Dist(q, t.Vec), Label: t.Label}
	}
	return rdd.BoundedMin(cands, k, knn.Less)
}

// topKPositives returns the k nearest positive pairs (observation 1: the
// positive set is scanned exhaustively).
func (c *Classifier) topKPositives(q []float64, k int) []knn.Neighbor {
	if len(c.positives) == 0 {
		return nil
	}
	cands := make([]knn.Neighbor, len(c.positives))
	for j, t := range c.positives {
		cands[j] = knn.Neighbor{Index: t.Idx, Dist: vecmath.Dist(q, t.Vec), Label: +1}
	}
	return rdd.BoundedMin(cands, k, knn.Less)
}

// selectPartitions is Algorithm 1: choose which other partitions must be
// searched for the query's true k nearest neighbors. With Voronoi
// partitioning, partition j can hold a nearer neighbor only when the
// hyperplane separating i from j is closer to s than its current k-th
// neighbor (observation 4, Eq. 7).
func (c *Classifier) selectPartitions(s sItem, neighbors []knn.Neighbor) []int {
	var out []int
	i := s.Cluster
	exhaustive := c.cfg.DisablePartitionPruning || c.cfg.RandomPartition
	dsk := math.Inf(1) // fewer than k neighbors: every partition qualifies
	if len(neighbors) >= c.cfg.K {
		dsk = neighbors[len(neighbors)-1].Dist
	}
	pi := c.centers[i]
	dspi2 := vecmath.SqDist(s.Vec, pi)
	for j := range c.centers {
		if j == i || c.negSizes[j] == 0 {
			continue
		}
		if exhaustive {
			out = append(out, j)
			continue
		}
		pj := c.centers[j]
		dpipj := vecmath.Dist(pi, pj)
		if dpipj == 0 {
			// Coincident centers: the hyperplane is undefined; be
			// conservative and search the partition.
			out = append(out, j)
			continue
		}
		dsh := (vecmath.SqDist(s.Vec, pj) - dspi2) / (2 * dpipj)
		if dsk > dsh {
			out = append(out, j)
		}
	}
	return out
}

// ScoreNeighbors computes the Eq. 5 score: positive neighbors add an
// inverse-distance weight, negative neighbors subtract it. The weight is
// 1/(dist+eps) — smoothly bounded at 1/eps for coincident vectors while
// staying strictly monotone in distance, so ranking among very close
// neighbors is preserved.
func ScoreNeighbors(neighbors []knn.Neighbor, eps float64) float64 {
	var score float64
	for _, n := range neighbors {
		w := 1 / (n.Dist + eps)
		if n.Label > 0 {
			score += w
		} else {
			score -= w
		}
	}
	return score
}
