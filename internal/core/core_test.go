package core

import (
	"math"
	"math/rand"
	"testing"

	"adrdedup/internal/cluster"
	"adrdedup/internal/knn"
	"adrdedup/internal/rdd"
)

func testCtx() *rdd.Context {
	return rdd.NewContext(cluster.New(cluster.Config{Executors: 4, CoresPerExecutor: 2}))
}

// synthData builds an imbalanced training set shaped like the paper's pair
// vectors: positives (duplicates) have small distance vectors, negatives
// spread across the unit cube, with some negatives near the positive region
// (hard negatives).
func synthData(nPos, nNeg, dim int, seed int64) []TrainingPair {
	rng := rand.New(rand.NewSource(seed))
	out := make([]TrainingPair, 0, nPos+nNeg)
	for i := 0; i < nPos; i++ {
		v := make([]float64, dim)
		for d := range v {
			v[d] = math.Abs(rng.NormFloat64() * 0.08)
		}
		out = append(out, TrainingPair{Vec: v, Label: +1})
	}
	for i := 0; i < nNeg; i++ {
		v := make([]float64, dim)
		base := 0.25 + 0.75*rng.Float64()
		if i%10 == 0 { // hard negative
			base = 0.12 + 0.2*rng.Float64()
		}
		for d := range v {
			v[d] = math.Min(1, math.Max(0, base+rng.NormFloat64()*0.1))
		}
		out = append(out, TrainingPair{Vec: v, Label: -1})
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func synthQueries(n, dim int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	qs := make([][]float64, n)
	truth := make([]int, n)
	for i := range qs {
		v := make([]float64, dim)
		if i%7 == 0 { // ~14% near the positive region
			for d := range v {
				v[d] = math.Abs(rng.NormFloat64() * 0.08)
			}
			truth[i] = +1
		} else {
			base := 0.3 + 0.7*rng.Float64()
			for d := range v {
				v[d] = math.Min(1, math.Max(0, base+rng.NormFloat64()*0.1))
			}
			truth[i] = -1
		}
		qs[i] = v
	}
	return qs, truth
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{K: 4}).Validate(); err == nil {
		t.Error("even k must be rejected")
	}
	if err := (Config{K: 5}).Validate(); err != nil {
		t.Errorf("odd k rejected: %v", err)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	if err := (Config{Pruning: &PruningConfig{Clusters: 0}}).Validate(); err == nil {
		t.Error("pruning with zero clusters must be rejected")
	}
	if err := (Config{Pruning: &PruningConfig{Clusters: 5, FTheta: -1}}).Validate(); err == nil {
		t.Error("negative f(theta) must be rejected")
	}
}

func TestTrainValidation(t *testing.T) {
	ctx := testCtx()
	if _, err := Train(ctx, nil, Config{}); err == nil {
		t.Error("empty training set must be rejected")
	}
	bad := []TrainingPair{{Vec: []float64{1, 2}, Label: 1}, {Vec: []float64{1}, Label: -1}}
	if _, err := Train(ctx, bad, Config{}); err == nil {
		t.Error("ragged dimensions must be rejected")
	}
	badLabel := []TrainingPair{{Vec: []float64{1}, Label: 0}}
	if _, err := Train(ctx, badLabel, Config{}); err == nil {
		t.Error("label 0 must be rejected")
	}
}

func TestFastEqualsExactLabels(t *testing.T) {
	const dim = 7
	train := synthData(25, 3000, dim, 1)
	queries, _ := synthQueries(300, dim, 2)

	ctx := testCtx()
	cfg := Config{K: 9, B: 12, C: 4, Seed: 3}
	clf, err := Train(ctx, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := clf.Classify(queries)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExactClassify(train, queries, cfg.K, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("results = %d, want %d", len(got), len(want))
	}
	scoreChecked := 0
	for i := range got {
		if got[i].ID != i {
			t.Fatalf("result %d has ID %d", i, got[i].ID)
		}
		if got[i].Label != want[i].Label {
			t.Errorf("query %d: fast label %d != exact label %d (scores %v vs %v)",
				i, got[i].Label, want[i].Label, got[i].Score, want[i].Score)
		}
		// When a positive reached the top-k, the cross-cluster search
		// guarantees the exact neighbor set, hence the exact score.
		hasPos := false
		for _, n := range got[i].Neighbors {
			if n.Label > 0 {
				hasPos = true
			}
		}
		if hasPos {
			scoreChecked++
			if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Errorf("query %d: fast score %v != exact score %v", i, got[i].Score, want[i].Score)
			}
		}
	}
	if scoreChecked == 0 {
		t.Error("no query had a positive neighbor; test data is degenerate")
	}
	if stats.IntraClusterComparisons == 0 {
		t.Error("no intra-cluster comparisons counted")
	}
	t.Logf("stats: %+v (exact-score-checked: %d)", stats, scoreChecked)
}

// TestLocalIndexIdenticalResultsFewerComparisons verifies the k-d tree
// local index: same labels and scores, fewer distance computations.
func TestLocalIndexIdenticalResultsFewerComparisons(t *testing.T) {
	const dim = 7
	train := synthData(20, 4000, dim, 61)
	queries, _ := synthQueries(200, dim, 62)

	run := func(local bool) ([]Result, Stats) {
		ctx := testCtx()
		clf, err := Train(ctx, train, Config{K: 9, B: 8, C: 4, Seed: 63, LocalIndex: local})
		if err != nil {
			t.Fatal(err)
		}
		res, stats, err := clf.Classify(queries)
		if err != nil {
			t.Fatal(err)
		}
		return res, stats
	}
	scan, scanStats := run(false)
	tree, treeStats := run(true)
	for i := range scan {
		if scan[i].Label != tree[i].Label {
			t.Errorf("query %d: label %d (scan) vs %d (tree)", i, scan[i].Label, tree[i].Label)
		}
		if math.Abs(scan[i].Score-tree[i].Score) > 1e-9 {
			t.Errorf("query %d: score %v vs %v", i, scan[i].Score, tree[i].Score)
		}
	}
	if treeStats.IntraClusterComparisons >= scanStats.IntraClusterComparisons {
		t.Errorf("tree computed %d distances, scan %d; index saved nothing",
			treeStats.IntraClusterComparisons, scanStats.IntraClusterComparisons)
	}
	t.Logf("distance computations: scan=%d tree=%d (%.0f%%)",
		scanStats.IntraClusterComparisons, treeStats.IntraClusterComparisons,
		100*float64(treeStats.IntraClusterComparisons)/float64(scanStats.IntraClusterComparisons))
}

// TestFastEqualsExactAcrossSeeds is the exactness property over several
// random datasets and configurations: Fast kNN labels always match the
// brute-force reference.
func TestFastEqualsExactAcrossSeeds(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		k, b int
	}{
		{seed: 100, k: 5, b: 7},
		{seed: 200, k: 13, b: 25},
		{seed: 300, k: 21, b: 3},
		{seed: 400, k: 9, b: 50},
	} {
		train := synthData(18, 1200, 6, tc.seed)
		queries, _ := synthQueries(120, 6, tc.seed+1)
		ctx := testCtx()
		clf, err := Train(ctx, train, Config{K: tc.k, B: tc.b, C: 3, Seed: tc.seed})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := clf.Classify(queries)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ExactClassify(train, queries, tc.k, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i].Label != want[i].Label {
				t.Errorf("seed=%d k=%d b=%d query %d: label %d != exact %d",
					tc.seed, tc.k, tc.b, i, got[i].Label, want[i].Label)
			}
		}
	}
}

func TestCrossClusterSearchIsSelective(t *testing.T) {
	const dim = 7
	train := synthData(20, 4000, dim, 4)
	queries, _ := synthQueries(200, dim, 5)

	ctx := testCtx()
	clf, err := Train(ctx, train, Config{K: 9, B: 20, C: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := clf.Classify(queries)
	if err != nil {
		t.Fatal(err)
	}
	// The headline claim of §5.2.4: cross-cluster comparisons are a small
	// fraction of intra-cluster comparisons (paper: 1.4-1.9%).
	ratio := float64(stats.CrossClusterComparisons) / float64(stats.IntraClusterComparisons)
	if ratio > 0.3 {
		t.Errorf("cross/intra ratio = %.3f; pruning is not selective", ratio)
	}
	t.Logf("cross/intra ratio = %.4f", ratio)
}

func TestAblationExhaustiveCrossSearch(t *testing.T) {
	const dim = 5
	train := synthData(15, 2000, dim, 7)
	queries, _ := synthQueries(150, dim, 8)

	run := func(cfg Config) ([]Result, Stats) {
		ctx := testCtx()
		clf, err := Train(ctx, train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, stats, err := clf.Classify(queries)
		if err != nil {
			t.Fatal(err)
		}
		return res, stats
	}
	pruned, prunedStats := run(Config{K: 7, B: 10, C: 4, Seed: 9})
	naive, naiveStats := run(Config{K: 7, B: 10, C: 4, Seed: 9, DisablePartitionPruning: true})
	for i := range pruned {
		if pruned[i].Label != naive[i].Label {
			t.Errorf("query %d: pruned label %d != exhaustive label %d", i, pruned[i].Label, naive[i].Label)
		}
	}
	if naiveStats.CrossClusterComparisons <= prunedStats.CrossClusterComparisons {
		t.Errorf("exhaustive search (%d) should cost more than Algorithm 1 (%d)",
			naiveStats.CrossClusterComparisons, prunedStats.CrossClusterComparisons)
	}
}

func TestAblationDisablePositiveShortcut(t *testing.T) {
	const dim = 5
	train := synthData(15, 2000, dim, 10)
	queries, _ := synthQueries(150, dim, 11)

	ctxA := testCtx()
	a, err := Train(ctxA, train, Config{K: 7, B: 10, C: 4, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	resA, statsA, err := a.Classify(queries)
	if err != nil {
		t.Fatal(err)
	}
	ctxB := testCtx()
	b, err := Train(ctxB, train, Config{K: 7, B: 10, C: 4, Seed: 12, DisablePositiveShortcut: true})
	if err != nil {
		t.Fatal(err)
	}
	resB, statsB, err := b.Classify(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range resA {
		if resA[i].Label != resB[i].Label {
			t.Errorf("query %d labels differ: %d vs %d", i, resA[i].Label, resB[i].Label)
		}
	}
	if statsB.CrossClusterComparisons < statsA.CrossClusterComparisons {
		t.Errorf("disabling the shortcut should not reduce cross comparisons (%d vs %d)",
			statsB.CrossClusterComparisons, statsA.CrossClusterComparisons)
	}
}

func TestRandomPartitionStillCorrectLabels(t *testing.T) {
	const dim = 5
	train := synthData(12, 1500, dim, 13)
	queries, _ := synthQueries(100, dim, 14)

	ctx := testCtx()
	clf, err := Train(ctx, train, Config{K: 7, B: 8, C: 3, Seed: 15, RandomPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := clf.Classify(queries)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExactClassify(train, queries, 7, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Label != want[i].Label {
			t.Errorf("query %d: random-partition label %d != exact %d", i, got[i].Label, want[i].Label)
		}
	}
}

func TestClassificationQuality(t *testing.T) {
	const dim = 7
	train := synthData(30, 5000, dim, 16)
	queries, truth := synthQueries(400, dim, 17)

	ctx := testCtx()
	clf, err := Train(ctx, train, Config{K: 9, B: 16, C: 4, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := clf.Classify(queries)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, r := range res {
		if r.Label == truth[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(res))
	if acc < 0.9 {
		t.Errorf("accuracy = %.3f, want >= 0.9 on well-separated synthetic data", acc)
	}
}

func TestPruningDropsFarPairsKeepsNearOnes(t *testing.T) {
	const dim = 4
	train := synthData(20, 1000, dim, 19)
	ctx := testCtx()
	clf, err := Train(ctx, train, Config{
		K: 5, B: 6, C: 3, Seed: 20,
		Pruning: &PruningConfig{Clusters: 4, FTheta: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	near := make([]float64, dim) // at the positive centroid: must survive
	far := make([]float64, dim)
	for d := range far {
		far[d] = 1 // opposite corner: must be pruned
	}
	res, stats, err := clf.Classify([][]float64{near, far})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Pruned {
		t.Error("near-positive pair was pruned")
	}
	if !res[1].Pruned {
		t.Error("far pair was not pruned")
	}
	if res[1].Label != -1 || !math.IsInf(res[1].Score, -1) {
		t.Errorf("pruned pair result = %+v", res[1])
	}
	if stats.PrunedPairs != 1 {
		t.Errorf("PrunedPairs = %d", stats.PrunedPairs)
	}
}

func TestPruningNeverDropsTruePositives(t *testing.T) {
	// The paper reports that all threshold settings kept every true
	// duplicate; with FTheta covering the positive spread this must hold.
	const dim = 7
	train := synthData(25, 2000, dim, 21)
	queries, truth := synthQueries(300, dim, 22)
	ctx := testCtx()
	clf, err := Train(ctx, train, Config{
		K: 9, B: 10, C: 4, Seed: 23,
		Pruning: &PruningConfig{Clusters: 8, FTheta: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := clf.Classify(queries)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PrunedPairs == 0 {
		t.Error("expected some pruning on far pairs")
	}
	for i, r := range res {
		if truth[i] == +1 && r.Pruned {
			t.Errorf("true duplicate %d was pruned", i)
		}
	}
}

func TestClassifyEdgeCases(t *testing.T) {
	ctx := testCtx()
	train := synthData(5, 100, 3, 24)
	clf, err := Train(ctx, train, Config{K: 3, B: 4, C: 2, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := clf.Classify(nil)
	if err != nil || len(res) != 0 || stats.TestPairs != 0 {
		t.Errorf("empty classify: %v, %v, %+v", res, err, stats)
	}
	if _, _, err := clf.Classify([][]float64{{1, 2}}); err == nil {
		t.Error("dimension mismatch must be rejected")
	}
}

func TestKLargerThanTrainingSet(t *testing.T) {
	ctx := testCtx()
	train := synthData(3, 10, 3, 26)
	clf, err := Train(ctx, train, Config{K: 21, B: 2, C: 2, Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	queries, _ := synthQueries(10, 3, 28)
	got, _, err := clf.Classify(queries)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExactClassify(train, queries, 21, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Label != want[i].Label {
			t.Errorf("query %d label mismatch with tiny training set", i)
		}
	}
}

func TestRepeatedClassifyReusesCachedBlocks(t *testing.T) {
	ctx := testCtx()
	train := synthData(10, 800, 4, 29)
	clf, err := Train(ctx, train, Config{K: 5, B: 6, C: 3, Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	queries, _ := synthQueries(50, 4, 31)
	if _, _, err := clf.Classify(queries); err != nil {
		t.Fatal(err)
	}
	hitsBefore := ctx.Cluster().Metrics().BlockHits.Load()
	if _, _, err := clf.Classify(queries); err != nil {
		t.Fatal(err)
	}
	if hits := ctx.Cluster().Metrics().BlockHits.Load(); hits <= hitsBefore {
		t.Error("second Classify did not hit the cached training blocks")
	}
}

func TestVirtualTimeAdvancesWithWork(t *testing.T) {
	ctx := testCtx()
	train := synthData(10, 2000, 5, 32)
	clf, err := Train(ctx, train, Config{K: 5, B: 8, C: 4, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	queries, _ := synthQueries(100, 5, 34)
	_, stats, err := clf.Classify(queries)
	if err != nil {
		t.Fatal(err)
	}
	if stats.VirtualTime <= 0 {
		t.Errorf("virtual time = %v", stats.VirtualTime)
	}
}

func TestScoreNeighborsUnit(t *testing.T) {
	n := []knn.Neighbor{
		{Index: 0, Dist: 0.1, Label: +1},
		{Index: 1, Dist: 0.2, Label: -1},
		{Index: 2, Dist: 0.5, Label: -1},
	}
	got := ScoreNeighbors(n, 1e-9)
	// +1/0.1 - 1/0.2 - 1/0.5 = 10 - 5 - 2 = 3 (eps negligible here).
	if math.Abs(got-3) > 1e-6 {
		t.Errorf("score = %v, want ~3", got)
	}
	if s := ScoreNeighbors(nil, 1e-9); s != 0 {
		t.Errorf("empty score = %v", s)
	}
	// A coincident positive is bounded by 1/eps, not infinite.
	n[0].Dist = 0
	if s := ScoreNeighbors(n, DefaultEpsilon); s < 50 || s > 1/DefaultEpsilon {
		t.Errorf("coincident positive score = %v, want in (50, %v]", s, 1/DefaultEpsilon)
	}
}

func TestTheta(t *testing.T) {
	ctx := testCtx()
	train := synthData(10, 500, 3, 35)
	clf, err := Train(ctx, train, Config{K: 5, B: 4, C: 2, Seed: 36, Theta: math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	queries, _ := synthQueries(40, 3, 37)
	res, _, err := clf.Classify(queries)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Label != -1 {
			t.Error("with theta = +Inf nothing may be labelled duplicate")
		}
	}
}
