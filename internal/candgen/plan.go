// Package candgen generates candidate report pairs for duplicate detection
// without enumerating the quadratic all-pairs space. Reports are reduced to
// signature sets of interned token IDs, re-ordered by ascending global token
// frequency, and only each set's length-derived *prefix* is entered into an
// inverted index: two sets whose Jaccard similarity reaches the threshold θ
// must share a token inside both prefixes, so scanning prefix posting lists
// finds every qualifying pair. Survivors of the length bound
// (strsim.JaccardSimUpperBound) are verified exactly with the merge-scan
// strsim.JaccardSimAtLeast, making the emitted pair set identical to the
// brute-force ≥θ set.
//
// Generation is sharded onto the embedded engine as rdd stages using the
// 1-D (record-block) and 2-D (block-pair) all-pairs partitionings of
// Özkural & Aykanat (arXiv:1402.3010), so candidate generation runs with
// traces, speculative execution, and chaos injection like every other stage.
package candgen

import (
	"sort"

	"adrdedup/internal/strsim"
)

// plan is the driver-side preparation shared by both partitionings: every
// signature mapped into frequency-rank space, records ordered by set size,
// and prefix lengths fixed by θ.
//
// Rank space: tokens are renumbered so that rank order == (ascending global
// frequency, then token ID). The renumbering is a bijection, so Jaccard over
// rank sets equals Jaccard over the original ID sets — verification runs
// directly on the rank-space signatures. Sorting each signature ascending by
// rank puts its rarest tokens first, which is exactly what keeps prefix
// posting lists short.
type plan struct {
	theta   float64
	ordered [][]uint32 // rank-space signatures, each sorted ascending

	// order lists the non-empty record IDs by (set size, ID) ascending —
	// the processing order. pos is its inverse (-1 for empty records).
	order []int32
	pos   []int32
	// lens[p] is the signature size of the record at order[p]; ascending
	// along order, which is what lets posting-list scans early-out on the
	// length bound.
	lens []int32
	// prefixLen[id] is the number of leading rank-space tokens indexed
	// for record id: len - minOverlap(len) + 1.
	prefixLen []int32
	// empty lists record IDs with empty signatures, ascending. Two empty
	// sets have Jaccard similarity 1 (the strsim convention), so empty
	// records pair with each other regardless of θ; they never pair with
	// non-empty records (similarity 0 < θ).
	empty []int32
}

// minOverlap returns the smallest integer o with float64(o) >= theta*float64(l)
// — the least intersection size any pair involving a size-l set needs under
// the verification predicate (inter >= theta*union >= theta*l). The loop
// lift makes the ceiling exact under the same floating-point operations the
// verifier uses, so prefix pruning can never drop a qualifying pair.
func minOverlap(theta float64, l int) int {
	o := int(theta * float64(l))
	for float64(o) < theta*float64(l) {
		o++
	}
	if o > l {
		o = l
	}
	if o < 1 {
		o = 1
	}
	return o
}

// countTokens tallies token frequencies over a slice of signatures; stages
// run it per partition and the driver merges the partials.
func countTokens(sigs [][]uint32) map[uint32]int64 {
	counts := make(map[uint32]int64)
	for _, s := range sigs {
		for _, t := range s {
			counts[t]++
		}
	}
	return counts
}

// mergeCounts folds src into dst.
func mergeCounts(dst, src map[uint32]int64) {
	for t, c := range src {
		dst[t] += c
	}
}

// rankTokens assigns each distinct token its frequency rank: ascending
// global count, ties broken by token ID so the ordering is total and
// deterministic.
func rankTokens(counts map[uint32]int64) map[uint32]uint32 {
	toks := make([]uint32, 0, len(counts))
	for t := range counts {
		toks = append(toks, t)
	}
	sort.Slice(toks, func(i, j int) bool {
		if counts[toks[i]] != counts[toks[j]] {
			return counts[toks[i]] < counts[toks[j]]
		}
		return toks[i] < toks[j]
	})
	ranks := make(map[uint32]uint32, len(toks))
	for r, t := range toks {
		ranks[t] = uint32(r)
	}
	return ranks
}

// rankTransform maps one signature into rank space, sorted ascending
// (rarest first). The input is a set, the rank map a bijection, so the
// output is a set of the same size.
func rankTransform(sig []uint32, ranks map[uint32]uint32) []uint32 {
	if len(sig) == 0 {
		return nil
	}
	out := make([]uint32, len(sig))
	for i, t := range sig {
		out[i] = ranks[t]
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// assemblePlan builds the processing order, inverse positions, length table,
// and prefix lengths from the rank-space signatures.
func assemblePlan(ordered [][]uint32, theta float64) *plan {
	pl := &plan{theta: theta, ordered: ordered}
	n := len(ordered)
	pl.pos = make([]int32, n)
	pl.prefixLen = make([]int32, n)
	for id, sig := range ordered {
		if len(sig) == 0 {
			pl.pos[id] = -1
			pl.empty = append(pl.empty, int32(id))
			continue
		}
		pl.order = append(pl.order, int32(id))
		pl.prefixLen[id] = int32(len(sig) - minOverlap(theta, len(sig)) + 1)
	}
	sort.Slice(pl.order, func(i, j int) bool {
		a, b := pl.order[i], pl.order[j]
		if len(ordered[a]) != len(ordered[b]) {
			return len(ordered[a]) < len(ordered[b])
		}
		return a < b
	})
	pl.lens = make([]int32, len(pl.order))
	for p, id := range pl.order {
		pl.pos[id] = int32(p)
		pl.lens[p] = int32(len(ordered[id]))
	}
	return pl
}

// buildPlan is the sequential composition of the stage computations —
// identical output to the engine-staged path; tests and the fuzz target
// exercise it directly.
func buildPlan(sigs [][]uint32, theta float64) *plan {
	ranks := rankTokens(countTokens(sigs))
	ordered := make([][]uint32, len(sigs))
	for i, s := range sigs {
		ordered[i] = rankTransform(s, ranks)
	}
	return assemblePlan(ordered, theta)
}

// prefix returns record id's indexed prefix in rank space.
func (pl *plan) prefix(id int32) []uint32 {
	return pl.ordered[id][:pl.prefixLen[id]]
}

// lengthAdmissible reports whether set sizes la and lb pass the Jaccard
// length bound for θ, under the exact verification predicate: a pair fails
// iff min < theta*max in float64, in which case the intersection can never
// reach theta*union. Equivalent to JaccardSimUpperBound(la, lb) >= theta up
// to division rounding; this multiplicative form matches the verifier
// exactly.
func (pl *plan) lengthAdmissible(la, lb int32) bool {
	lo, hi := la, lb
	if lo > hi {
		lo, hi = hi, lo
	}
	return float64(lo) >= pl.theta*float64(hi)
}

// postEntry is one inverted-index posting: the order position of a record
// whose prefix contains the token, plus the token's index within that
// prefix (which is also its index in the full rank-space signature — a
// prefix is a signature prefix). The index feeds the positional filter.
type postEntry struct {
	pos int32
	idx int32
}

// postings is an inverted index over prefix tokens: rank → postings of the
// records whose prefix contains that rank, ascending by position — and
// therefore ascending by set size too.
type postings map[uint32][]postEntry

// indexRange enters the prefixes of order positions [lo, hi) into idx.
func (pl *plan) indexRange(idx postings, lo, hi int) int64 {
	var entries int64
	for p := lo; p < hi; p++ {
		id := pl.order[p]
		for k, t := range pl.prefix(id) {
			idx[t] = append(idx[t], postEntry{pos: int32(p), idx: int32(k)})
			entries++
		}
	}
	return entries
}

// pairNeed returns the smallest intersection size that lets two sets of
// sizes la and lb reach theta, under the exact verification predicate
// (inter >= theta*(la+lb-inter) in float64) — the same loop-lifted ceiling
// strsim.JaccardSimAtLeast computes.
func pairNeed(theta float64, la, lb int) int {
	total := la + lb
	need := int(theta * float64(total) / (1 + theta))
	for float64(need) < theta*float64(total-need) {
		need++
	}
	return need
}

// probeEmit is called with a verified pair, a < b in record-ID order.
type probeEmit func(a, b int32)

// proberSet tells probeRecord which records count as probers, for the
// pair-emitted-exactly-once discipline (see probeRecord).
type proberSet func(id int32) bool

// probeScratch is per-task probe state, reused across probe records so the
// hot loop allocates nothing: count is indexed by order position (0 unseen,
// -1 positionally pruned, >0 shared prefix tokens so far), touched lists the
// positions to reset.
type probeScratch struct {
	count   []int32
	touched []int32
}

func (pl *plan) newProbeScratch() *probeScratch {
	return &probeScratch{count: make([]int32, len(pl.order))}
}

// probeRecord scans record rid's prefix tokens against idx and emits every
// verified pair exactly once. Candidates are accumulated AllPairs-style: the
// first shared prefix token registers the counterpart in the scratch table,
// later shared tokens only bump its count, and each surviving candidate is
// verified exactly once after the scan — so multiple shared tokens cannot
// duplicate a pair and cost O(1) apiece. When the counterpart is itself a
// prober, only the record at the later processing position emits, breaking
// the two-prober symmetry; counterparts that never probe (records already in
// the database during an incremental Detect) are emitted unconditionally by
// the prober.
//
// Posting lists ascend by set size, so each scan starts at the first
// admissible length (binary search) and breaks at the last. At the pair's
// first common token the positional filter (PPJoin) applies: all common
// tokens of the pair sit at or after the first common token's positions
// (anything smaller in both prefixes would itself be a first common prefix
// token), so the intersection is at most 1 + min of the remaining suffix
// lengths; pairs whose bound misses the required overlap are pruned without
// verification.
func (pl *plan) probeRecord(idx postings, rid int32, isProber proberSet, sc *probeScratch, st *Stats, emit probeEmit) {
	pr := pl.pos[rid]
	sig := pl.ordered[rid]
	lr := int32(len(sig))
	minLen := int32(minOverlap(pl.theta, int(lr)))
	for i, t := range pl.prefix(rid) {
		list := idx[t]
		lo := sort.Search(len(list), func(k int) bool { return pl.lens[list[k].pos] >= minLen })
		for _, e := range list[lo:] {
			pa := e.pos
			la := pl.lens[pa]
			if float64(lr) < pl.theta*float64(la) {
				break // longer entries only get worse
			}
			aid := pl.order[pa]
			if aid == rid {
				continue
			}
			if isProber(aid) && pa >= pr {
				continue // the later-position prober owns the pair
			}
			st.Scanned++
			switch c := sc.count[pa]; c {
			case -1:
				// Already pruned at its first common token.
			case 0:
				suffix := int(lr) - i - 1
				if s := int(la) - int(e.idx) - 1; s < suffix {
					suffix = s
				}
				if 1+suffix < pairNeed(pl.theta, int(la), int(lr)) {
					sc.count[pa] = -1 // positional filter: can't reach theta
				} else {
					sc.count[pa] = 1
				}
				sc.touched = append(sc.touched, pa)
			default:
				sc.count[pa] = c + 1
			}
		}
	}
	for _, pa := range sc.touched {
		if sc.count[pa] > 0 {
			st.Verified++
			if aid := pl.order[pa]; strsim.JaccardSimAtLeast(pl.ordered[aid], sig, pl.theta) {
				a, b := aid, rid
				if a > b {
					a, b = b, a
				}
				emit(a, b)
			}
		}
		sc.count[pa] = 0
	}
	sc.touched = sc.touched[:0]
}

// probeBlockPair handles one 2-D task: pairs between order-position blocks
// [iLo,iHi) and [jLo,jHi) (identical ranges for a diagonal task). The block
// ranges partition the unordered pair space, so tasks never overlap; inside
// a task the first-common-prefix-token rule plus the position ordering keep
// each pair unique. admit filters emission (the incremental Detect keeps
// only pairs touching the new batch).
func (pl *plan) probeBlockPair(iLo, iHi, jLo, jHi int, admit func(a, b int32) bool, st *Stats, emit probeEmit) {
	idx := make(postings)
	st.IndexEntries += pl.indexRange(idx, iLo, iHi)
	diagonal := iLo == jLo && iHi == jHi
	sc := pl.newProbeScratch()
	for p := jLo; p < jHi; p++ {
		rid := pl.order[p]
		// Every record of block j probes; cross-block dedup comes free
		// from block disjointness, diagonal dedup from the position rule
		// (probers only look at earlier positions, which indexRange has
		// fully entered for the diagonal's own block).
		isProber := func(aid int32) bool { return diagonal }
		pl.probeRecord(idx, rid, isProber, sc, st, func(a, b int32) {
			if admit(a, b) {
				emit(a, b)
			}
		})
	}
}
