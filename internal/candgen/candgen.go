package candgen

import (
	"fmt"
	"sort"

	"adrdedup/internal/pairdist"
	"adrdedup/internal/rdd"
	"adrdedup/internal/strsim"
)

// Mode selects the parallel all-pairs partitioning (Özkural & Aykanat).
type Mode int

const (
	// OneD shards probing by record blocks against one shared prefix
	// index — the 1-D row-wise partitioning. Index construction is itself
	// a record-block stage; the driver concatenates the shard postings.
	OneD Mode = iota
	// TwoD shards by block *pairs*: records split into B size-ordered
	// blocks and each of the B(B+1)/2 block pairs becomes one task that
	// indexes one block and probes the other. No shared index, no
	// cross-task pair overlap.
	TwoD
)

func (m Mode) String() string {
	if m == TwoD {
		return "prefix-2d"
	}
	return "prefix-1d"
}

// Params configures a generation run.
type Params struct {
	// Theta is the Jaccard similarity threshold over signature sets; a
	// pair is emitted iff JaccardSimAtLeast(sig(a), sig(b), Theta). Must
	// be in (0, 1].
	Theta float64
	// Partitions is the probe-stage task count (OneD) or the record block
	// count B (TwoD, giving B(B+1)/2 tasks). 0 uses the engine's default
	// parallelism.
	Partitions int
	// Mode selects the partitioning; the zero value is OneD.
	Mode Mode
	// MinArrival restricts output to Eq. 3's incremental shape: only
	// pairs with max(A, B) >= MinArrival — at least one end in the new
	// batch — are generated. 0 generates all pairs.
	MinArrival int
}

func (p Params) validate() error {
	if p.Theta <= 0 || p.Theta > 1 {
		return fmt.Errorf("candgen: theta %v outside (0, 1]", p.Theta)
	}
	if p.Mode != OneD && p.Mode != TwoD {
		return fmt.Errorf("candgen: unknown mode %d", p.Mode)
	}
	if p.MinArrival < 0 {
		return fmt.Errorf("candgen: negative MinArrival %d", p.MinArrival)
	}
	return nil
}

// Stats reports how much work generation did — the numbers behind the
// candidate-reduction claims.
type Stats struct {
	// Records is the input size; EmptyRecords of them had empty
	// signatures (paired among themselves at similarity 1).
	Records, EmptyRecords int
	// IndexEntries counts prefix postings entered into inverted indexes
	// (2-D counts per-task indexes, whose union covers each prefix once
	// per off-diagonal block pairing).
	IndexEntries int64
	// Scanned counts posting-list entries surviving the length bound;
	// Verified counts full merge-scan verifications (each candidate pair
	// exactly once); Emitted counts pairs passing verification.
	Scanned, Verified, Emitted int64
}

// TotalPairs is the size of the search space the generator replaces: all
// unordered pairs over n records, restricted to pairs with max end >=
// minArrival when minArrival > 0.
func TotalPairs(n, minArrival int) int64 {
	all := int64(n) * int64(n-1) / 2
	if minArrival <= 0 || minArrival >= n {
		if minArrival >= n {
			return 0
		}
		return all
	}
	old := int64(minArrival)
	return all - old*(old-1)/2
}

// Signatures extracts the signature set of every feature (the sorted union
// of its interned token-ID sets). All features must be interned — signature
// comparison is only meaningful inside one interner ID space.
func Signatures(feats []pairdist.Features) ([][]uint32, error) {
	sigs := make([][]uint32, len(feats))
	for i, f := range feats {
		s, ok := f.SignatureIDs()
		if !ok {
			return nil, fmt.Errorf("candgen: feature %d not interned", i)
		}
		sigs[i] = s
	}
	return sigs, nil
}

// pairLess orders IDPairs by (A, B).
func pairLess(a, b pairdist.IDPair) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}

// Pairs generates every unordered record pair whose signature Jaccard
// similarity reaches p.Theta, as rdd stages on ctx's engine. The result is
// sorted by (A, B) with A < B and is exactly the brute-force ≥θ set —
// prefix filtering prunes candidates, never answers. See Params.MinArrival
// for the incremental restriction.
func Pairs(ctx *rdd.Context, sigs [][]uint32, p Params) ([]pairdist.IDPair, Stats, error) {
	var st Stats
	if err := p.validate(); err != nil {
		return nil, st, err
	}
	n := len(sigs)
	st.Records = n
	if n < 2 || p.MinArrival >= n {
		return nil, st, nil
	}
	parts := p.Partitions
	if parts <= 0 {
		parts = ctx.DefaultParallelism()
	}

	// Stage 1: global token frequencies, counted per record block.
	src := rdd.Parallelize(ctx, sigs, parts).SetName("signatures").WithBytesPerRecord(64)
	partials, err := rdd.MapPartitions(src, func(in [][]uint32) ([]map[uint32]int64, error) {
		return []map[uint32]int64{countTokens(in)}, nil
	}).SetName("candgen.tokenFreq").Collect()
	if err != nil {
		return nil, st, fmt.Errorf("candgen: counting token frequencies: %w", err)
	}
	counts := make(map[uint32]int64)
	for _, m := range partials {
		mergeCounts(counts, m)
	}
	ranks := rankTokens(counts)

	// Stage 2: each signature re-ordered into frequency-rank space.
	// Narrow map over the block-partitioned source, so Collect preserves
	// record order and positions align with record IDs.
	ctx.Cluster().Broadcast(int64(len(ranks)) * 8)
	ordered, err := rdd.Map(src, func(sig []uint32) []uint32 {
		return rankTransform(sig, ranks)
	}).SetName("candgen.rank").Collect()
	if err != nil {
		return nil, st, fmt.Errorf("candgen: rank-ordering signatures: %w", err)
	}
	pl := assemblePlan(ordered, p.Theta)
	st.EmptyRecords = len(pl.empty)

	var pairs []pairdist.IDPair
	switch p.Mode {
	case OneD:
		pairs, err = pl.runOneD(ctx, p, parts, &st)
	case TwoD:
		pairs, err = pl.runTwoD(ctx, p, parts, &st)
	}
	if err != nil {
		return nil, st, err
	}

	// Empty signatures are mutually similar at 1 >= theta; pair them,
	// honoring the incremental restriction.
	for i := 0; i < len(pl.empty); i++ {
		for j := i + 1; j < len(pl.empty); j++ {
			a, b := pl.empty[i], pl.empty[j]
			if p.MinArrival > 0 && int(b) < p.MinArrival {
				continue
			}
			pairs = append(pairs, pairdist.IDPair{A: int(a), B: int(b)})
		}
	}

	sort.Slice(pairs, func(i, j int) bool { return pairLess(pairs[i], pairs[j]) })
	st.Emitted = int64(len(pairs))
	return pairs, st, nil
}

// taskResult is one probe task's output: its verified pairs plus its share
// of the work counters, merged driver-side.
type taskResult struct {
	pairs []pairdist.IDPair
	st    Stats
}

func mergeResults(results []taskResult, st *Stats) []pairdist.IDPair {
	var pairs []pairdist.IDPair
	for _, r := range results {
		pairs = append(pairs, r.pairs...)
		st.IndexEntries += r.st.IndexEntries
		st.Scanned += r.st.Scanned
		st.Verified += r.st.Verified
	}
	return pairs
}

// runOneD: stage "prefixIndex" builds postings per record block (the driver
// concatenates the shards — posting lists stay position-sorted because
// blocks are contiguous in processing order), then stage "probe1d" scans
// each prober block against the shared index.
func (pl *plan) runOneD(ctx *rdd.Context, p Params, parts int, st *Stats) ([]pairdist.IDPair, error) {
	type posting struct {
		tok uint32
		ent postEntry
	}
	positions := make([]int32, len(pl.order))
	for i := range positions {
		positions[i] = int32(i)
	}
	posSrc := rdd.Parallelize(ctx, positions, parts).SetName("orderPositions").WithBytesPerRecord(4)
	shards, err := rdd.MapPartitions(posSrc, func(in []int32) ([]posting, error) {
		var out []posting
		for _, pos := range in {
			id := pl.order[pos]
			for k, t := range pl.prefix(id) {
				out = append(out, posting{tok: t, ent: postEntry{pos: pos, idx: int32(k)}})
			}
		}
		return out, nil
	}).SetName("candgen.prefixIndex").WithBytesPerRecord(12).Collect()
	if err != nil {
		return nil, fmt.Errorf("candgen: building prefix index: %w", err)
	}
	idx := make(postings)
	for _, e := range shards {
		idx[e.tok] = append(idx[e.tok], e.ent)
	}
	st.IndexEntries = int64(len(shards))

	isProber := func(id int32) bool { return p.MinArrival == 0 || int(id) >= p.MinArrival }
	var probers []int32
	for _, id := range pl.order {
		if isProber(id) {
			probers = append(probers, id)
		}
	}
	if len(probers) == 0 {
		return nil, nil
	}

	// The index and rank-space signatures are broadcast to the probe
	// tasks; charge them like ComputeVectors charges its feature table.
	ctx.Cluster().Broadcast(int64(len(shards))*8 + recordBytes(pl.ordered))
	probeSrc := rdd.Parallelize(ctx, probers, parts).SetName("probers").WithBytesPerRecord(4)
	results, err := rdd.MapPartitions(probeSrc, func(in []int32) ([]taskResult, error) {
		var res taskResult
		sc := pl.newProbeScratch()
		for _, rid := range in {
			pl.probeRecord(idx, rid, isProber, sc, &res.st, func(a, b int32) {
				res.pairs = append(res.pairs, pairdist.IDPair{A: int(a), B: int(b)})
			})
		}
		return []taskResult{res}, nil
	}).SetName("candgen.probe1d").Collect()
	if err != nil {
		return nil, fmt.Errorf("candgen: probing prefix index: %w", err)
	}
	return mergeResults(results, st), nil
}

// runTwoD: records split into B contiguous blocks of the processing order;
// each unordered block pair becomes one self-contained task that indexes
// the first block and probes the second.
func (pl *plan) runTwoD(ctx *rdd.Context, p Params, parts int, st *Stats) ([]pairdist.IDPair, error) {
	m := len(pl.order)
	if m == 0 {
		return nil, nil
	}
	blocks := parts
	if blocks > m {
		blocks = m
	}
	bounds := make([]int, blocks+1)
	for b := 0; b <= blocks; b++ {
		bounds[b] = b * m / blocks
	}
	type blockPair struct{ i, j int }
	var tasks []blockPair
	for i := 0; i < blocks; i++ {
		for j := i; j < blocks; j++ {
			tasks = append(tasks, blockPair{i, j})
		}
	}
	admit := func(a, b int32) bool {
		return p.MinArrival == 0 || int(a) >= p.MinArrival || int(b) >= p.MinArrival
	}

	ctx.Cluster().Broadcast(recordBytes(pl.ordered))
	taskSrc := rdd.Parallelize(ctx, tasks, len(tasks)).SetName("blockPairs").WithBytesPerRecord(8)
	results, err := rdd.MapPartitions(taskSrc, func(in []blockPair) ([]taskResult, error) {
		var res taskResult
		for _, t := range in {
			pl.probeBlockPair(bounds[t.i], bounds[t.i+1], bounds[t.j], bounds[t.j+1], admit, &res.st,
				func(a, b int32) {
					res.pairs = append(res.pairs, pairdist.IDPair{A: int(a), B: int(b)})
				})
		}
		return []taskResult{res}, nil
	}).SetName("candgen.block2d").Collect()
	if err != nil {
		return nil, fmt.Errorf("candgen: probing 2-D block pairs: %w", err)
	}
	return mergeResults(results, st), nil
}

func recordBytes(ordered [][]uint32) int64 {
	var n int64
	for _, s := range ordered {
		n += int64(len(s)) * 4
	}
	return n
}

// BruteForcePairs is the quadratic recall oracle: every unordered pair
// checked with the same verification predicate the generator uses. It
// defines the set Pairs must reproduce; experiments time it to show where
// the quadratic wall stands.
func BruteForcePairs(sigs [][]uint32, theta float64, minArrival int) []pairdist.IDPair {
	var out []pairdist.IDPair
	for b := 1; b < len(sigs); b++ {
		if minArrival > 0 && b < minArrival {
			continue
		}
		for a := 0; a < b; a++ {
			if strsim.JaccardSimAtLeast(sigs[a], sigs[b], theta) {
				out = append(out, pairdist.IDPair{A: a, B: b})
			}
		}
	}
	return out
}
