package candgen

import (
	"math/rand"
	"strings"
	"testing"

	"adrdedup/internal/intern"
	"adrdedup/internal/pairdist"
)

func TestMinOverlap(t *testing.T) {
	// Exactness contract: minOverlap(θ, l) is the least o with
	// float64(o) >= θ*float64(l) — the verifier's own predicate — clamped
	// to [1, l].
	for _, theta := range []float64{1e-9, 0.1, 1.0 / 3, 0.5, 0.7, 0.999, 1} {
		for l := 1; l <= 200; l++ {
			o := minOverlap(theta, l)
			if o < 1 || o > l {
				t.Fatalf("minOverlap(%v, %d) = %d outside [1, %d]", theta, l, o, l)
			}
			if float64(o) < theta*float64(l) && o < l {
				t.Fatalf("minOverlap(%v, %d) = %d below threshold", theta, l, o)
			}
			if o > 1 && float64(o-1) >= theta*float64(l) {
				t.Fatalf("minOverlap(%v, %d) = %d not minimal", theta, l, o)
			}
		}
	}
	if got := minOverlap(1, 17); got != 17 {
		t.Errorf("minOverlap(1, 17) = %d, want 17 (θ=1 demands identity)", got)
	}
}

func TestTotalPairs(t *testing.T) {
	cases := []struct {
		n, minArrival int
		want          int64
	}{
		{0, 0, 0},
		{1, 0, 0},
		{2, 0, 1},
		{5, 0, 10},
		{5, 2, 9},  // all 10 minus the 1 old-old pair {0,1}
		{5, 4, 4},  // only pairs touching record 4
		{5, 5, 0},  // batch empty
		{5, 9, 0},
		{400, 0, 79800},
	}
	for _, c := range cases {
		if got := TotalPairs(c.n, c.minArrival); got != c.want {
			t.Errorf("TotalPairs(%d, %d) = %d, want %d", c.n, c.minArrival, got, c.want)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	sigs := [][]uint32{{1}, {1}}
	for _, p := range []Params{
		{Theta: 0},
		{Theta: -0.5},
		{Theta: 1.5},
		{Theta: 0.5, Mode: Mode(9)},
		{Theta: 0.5, MinArrival: -1},
	} {
		if _, _, err := Pairs(testEngine(0), sigs, p); err == nil {
			t.Errorf("Pairs with %+v: want validation error", p)
		}
	}
	if _, _, err := Pairs(testEngine(0), sigs, Params{Theta: 0.5}); err != nil {
		t.Errorf("Pairs with valid params: %v", err)
	}
}

func TestModeString(t *testing.T) {
	if OneD.String() != "prefix-1d" || TwoD.String() != "prefix-2d" {
		t.Errorf("Mode strings = %q, %q", OneD.String(), TwoD.String())
	}
}

func TestSignatures(t *testing.T) {
	it := intern.New()
	feats := []pairdist.Features{
		{Interned: true, DrugIDs: it.SortedSet([]string{"aspirin"}),
			ADRIDs:  it.SortedSet([]string{"nausea", "headache"}),
			DescIDs: it.SortedSet([]string{"aspirin", "sever"})},
		{Interned: true}, // empty but interned
	}
	sigs, err := Signatures(feats)
	if err != nil {
		t.Fatal(err)
	}
	// Union of all three sets, sorted, deduplicated: 4 distinct tokens.
	if len(sigs[0]) != 4 {
		t.Errorf("signature 0 = %v, want 4 distinct token IDs", sigs[0])
	}
	for i := 1; i < len(sigs[0]); i++ {
		if sigs[0][i-1] >= sigs[0][i] {
			t.Errorf("signature 0 not strictly increasing: %v", sigs[0])
		}
	}
	if sigs[1] != nil {
		t.Errorf("empty feature signature = %v, want nil", sigs[1])
	}

	if _, err := Signatures([]pairdist.Features{{}}); err == nil ||
		!strings.Contains(err.Error(), "not interned") {
		t.Errorf("Signatures on uninterned feature: err = %v", err)
	}
}

// TestPlanInvariants checks the structural contract of the driver-side plan
// on random corpora: order/pos are inverses, lengths ascend along the
// processing order, prefixes follow the l - minOverlap + 1 formula, and the
// rank transform is a bijection (set sizes preserved, output sorted).
func TestPlanInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		sigs := randomCorpus(rng, 1+rng.Intn(60), 300)
		theta := 0.05 + 0.95*rng.Float64()
		pl := buildPlan(sigs, theta)
		if len(pl.order)+len(pl.empty) != len(sigs) {
			t.Fatalf("order %d + empty %d != records %d", len(pl.order), len(pl.empty), len(sigs))
		}
		for p, id := range pl.order {
			if pl.pos[id] != int32(p) {
				t.Fatalf("pos[%d] = %d, want %d", id, pl.pos[id], p)
			}
			if int(pl.lens[p]) != len(pl.ordered[id]) {
				t.Fatalf("lens[%d] = %d, want %d", p, pl.lens[p], len(pl.ordered[id]))
			}
			if p > 0 && pl.lens[p-1] > pl.lens[p] {
				t.Fatalf("lens not ascending at %d: %v", p, pl.lens)
			}
			wantPrefix := len(sigs[id]) - minOverlap(theta, len(sigs[id])) + 1
			if int(pl.prefixLen[id]) != wantPrefix {
				t.Fatalf("prefixLen[%d] = %d, want %d", id, pl.prefixLen[id], wantPrefix)
			}
		}
		for _, id := range pl.empty {
			if pl.pos[id] != -1 {
				t.Fatalf("empty record %d has pos %d, want -1", id, pl.pos[id])
			}
			if len(sigs[id]) != 0 {
				t.Fatalf("record %d listed empty but has %d tokens", id, len(sigs[id]))
			}
		}
		for id, sig := range sigs {
			rs := pl.ordered[id]
			if len(rs) != len(sig) {
				t.Fatalf("rank transform changed set size of %d: %d -> %d", id, len(sig), len(rs))
			}
			for i := 1; i < len(rs); i++ {
				if rs[i-1] >= rs[i] {
					t.Fatalf("rank-space signature %d not strictly increasing: %v", id, rs)
				}
			}
		}
	}
}

// TestRankOrderPutsRareTokensFirst pins the point of the frequency ordering:
// the token appearing in fewest records gets the lowest rank, so it leads
// every prefix that contains it.
func TestRankOrderPutsRareTokensFirst(t *testing.T) {
	sigs := [][]uint32{
		{10, 20}, {10, 20}, {10, 20}, {10, 30},
	}
	// Frequencies: 10→4, 20→3, 30→1. Ranks: 30→0, 20→1, 10→2.
	pl := buildPlan(sigs, 0.5)
	want := []uint32{0, 2} // record 3 = {10, 30} → ranks {2, 0} sorted
	got := pl.ordered[3]
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("rank-space signature of {10,30} = %v, want %v", got, want)
	}
}
