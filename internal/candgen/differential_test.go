package candgen

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"adrdedup/internal/cluster"
	"adrdedup/internal/pairdist"
	"adrdedup/internal/rdd"
)

// Differential recall suite: randomized signature corpora, run through the
// staged prefix-filtered generator in both partitionings, across partition
// counts and under fault injection, must emit *exactly* the pair set of two
// independent oracles — BruteForcePairs (same predicate, quadratic scan)
// and a map-based naive Jaccard implemented from scratch below. Exactness
// is the contract: prefix filtering must never prune a pair at or above θ
// and verification must never admit one below it.

// naiveAtLeast is the from-scratch oracle predicate: hash-set intersection,
// |A∩B| >= θ·|A∪B| in float64 — the definition both strsim.JaccardSimAtLeast
// and the generator must reproduce. Two empty sets are similar at 1.
func naiveAtLeast(a, b []uint32, theta float64) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	set := make(map[uint32]bool, len(a))
	for _, t := range a {
		set[t] = true
	}
	inter := 0
	for _, t := range b {
		if set[t] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) >= theta*float64(union)
}

func naivePairs(sigs [][]uint32, theta float64, minArrival int) []pairdist.IDPair {
	var out []pairdist.IDPair
	for b := 1; b < len(sigs); b++ {
		if minArrival > 0 && b < minArrival {
			continue
		}
		for a := 0; a < b; a++ {
			if naiveAtLeast(sigs[a], sigs[b], theta) {
				out = append(out, pairdist.IDPair{A: a, B: b})
			}
		}
	}
	return out
}

// randomCorpus draws n signature sets with Zipf-skewed token frequencies —
// a few hot tokens shared by many records (the regime prefix filtering must
// survive) plus a long rare tail — including some empty and some duplicated
// signatures.
func randomCorpus(rng *rand.Rand, n int, vocab uint64) [][]uint32 {
	zipf := rand.NewZipf(rng, 1.3, 1.2, vocab)
	sigs := make([][]uint32, n)
	for i := range sigs {
		switch rng.Intn(10) {
		case 0: // empty signature
		case 1: // exact duplicate of an earlier record
			if i > 0 {
				sigs[i] = append([]uint32(nil), sigs[rng.Intn(i)]...)
				continue
			}
			fallthrough
		default:
			size := 1 + rng.Intn(25)
			set := make(map[uint32]bool, size)
			for len(set) < size {
				set[uint32(zipf.Uint64())] = true
			}
			s := make([]uint32, 0, size)
			for t := range set {
				s = append(s, t)
			}
			// Sorted, deduplicated — the intern.SortedSet contract.
			for x := 1; x < len(s); x++ {
				for y := x; y > 0 && s[y-1] > s[y]; y-- {
					s[y-1], s[y] = s[y], s[y-1]
				}
			}
			sigs[i] = s
		}
	}
	return sigs
}

func testEngine(failureRate float64) *rdd.Context {
	return rdd.NewContext(cluster.New(cluster.Config{
		Executors: 2, CoresPerExecutor: 2,
		FailureRate: failureRate, MaxTaskRetries: 80, Seed: 99,
	}))
}

// canonPairs sorts a copy into (A, B) order — the order Pairs promises —
// so oracles that enumerate in a different order compare as sets.
func canonPairs(in []pairdist.IDPair) []pairdist.IDPair {
	if len(in) == 0 {
		return nil
	}
	out := append([]pairdist.IDPair(nil), in...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// TestDifferentialPrefixRecall is the CI-smoke recall gate (run uncached):
// randomized corpora at several θ including the paper's 0.5, all-pairs and
// incremental restriction, 1-D and 2-D partitioning, multiple partition
// counts, clean and fault-injected.
func TestDifferentialPrefixRecall(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 40 + rng.Intn(80)
		// Tiny 400-token vocabulary: adversarially collision-heavy, the
		// worst case for prefix pruning but the best stress for recall.
		sigs := randomCorpus(rng, n, 400)
		for _, theta := range []float64{0.3, 0.5, 0.8, 1.0} {
			for _, minArrival := range []int{0, n / 2} {
				want := canonPairs(naivePairs(sigs, theta, minArrival))
				brute := canonPairs(BruteForcePairs(sigs, theta, minArrival))
				if !reflect.DeepEqual(brute, want) {
					t.Fatalf("seed%d θ=%v min=%d: BruteForcePairs diverges from naive oracle: %d vs %d pairs",
						seed, theta, minArrival, len(brute), len(want))
				}
				for _, mode := range []Mode{OneD, TwoD} {
					for _, parts := range []int{1, 3, 7} {
						for _, failureRate := range []float64{0, 0.3} {
							name := fmt.Sprintf("seed%d/θ=%v/min=%d/%s/parts%d/fail%v",
								seed, theta, minArrival, mode, parts, failureRate)
							got, st, err := Pairs(testEngine(failureRate), sigs, Params{
								Theta: theta, Partitions: parts, Mode: mode, MinArrival: minArrival,
							})
							if err != nil {
								t.Fatalf("%s: %v", name, err)
							}
							if !sort.SliceIsSorted(got, func(i, j int) bool {
								if got[i].A != got[j].A {
									return got[i].A < got[j].A
								}
								return got[i].B < got[j].B
							}) {
								t.Errorf("%s: Pairs output not in (A, B) order", name)
							}
							if !reflect.DeepEqual(canonPairs(got), want) {
								t.Errorf("%s: emitted %d pairs, oracle %d\n got: %v\nwant: %v",
									name, len(got), len(want), got, want)
							}
							if st.Emitted != int64(len(got)) {
								t.Errorf("%s: Stats.Emitted = %d, len = %d", name, st.Emitted, len(got))
							}
						}
					}
				}
			}
		}
	}
}

// TestPrefixFilterPrunes asserts the point of the subsystem: on a corpus
// with realistic frequency skew, the number of verifications is a small
// fraction of the quadratic pair space.
func TestPrefixFilterPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Realistic vocabulary size (a drug/ADR/description token space runs to
	// tens of thousands of distinct terms), unlike the adversarial 400-token
	// recall corpus where near-universal collision is the point.
	sigs := randomCorpus(rng, 400, 50000)
	_, st, err := Pairs(testEngine(0), sigs, Params{Theta: 0.5, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	all := TotalPairs(len(sigs), 0)
	if st.Verified*10 > all {
		t.Errorf("verified %d of %d pairs; prefix filter pruned less than 10x", st.Verified, all)
	}
	if st.Verified == 0 {
		t.Error("no verifications; test would be vacuous")
	}
}
