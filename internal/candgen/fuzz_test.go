package candgen

import (
	"testing"
)

// decodeCorpus turns arbitrary fuzz bytes into a signature corpus. Byte 0
// scales θ into (0, 1]; the rest split into records on 0xFF, each remaining
// byte one token ID mod 48 (a small universe forces collisions, duplicates
// inside a record, and empty records — exactly the shapes the plan must
// normalize away).
func decodeCorpus(data []byte) (theta float64, sigs [][]uint32) {
	theta = 0.5
	if len(data) > 0 {
		theta = float64(1+int(data[0])) / 256
		data = data[1:]
	}
	sigs = [][]uint32{nil}
	for _, b := range data {
		if b == 0xFF {
			sigs = append(sigs, nil)
			continue
		}
		tok := uint32(b % 48)
		last := sigs[len(sigs)-1]
		dup := false
		for _, t := range last {
			if t == tok {
				dup = true
				break
			}
		}
		if !dup {
			// Insertion sort keeps each signature sorted + deduplicated,
			// the intern.SortedSet contract Signatures guarantees.
			i := len(last)
			last = append(last, tok)
			for ; i > 0 && last[i-1] > last[i]; i-- {
				last[i-1], last[i] = last[i], last[i-1]
			}
			sigs[len(sigs)-1] = last
		}
	}
	return theta, sigs
}

// FuzzPrefixPlan fuzzes prefix-index construction end to end: arbitrary
// bytes become a signature corpus and threshold, the plan is built, its
// structural invariants are asserted, the inverted index is constructed
// over the full processing order, and the single-task generation result is
// compared pair-for-pair against the from-scratch quadratic oracle. Recall
// exactness is the property under fuzz: no byte string may produce a plan
// that drops or duplicates a qualifying pair.
func FuzzPrefixPlan(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte{128, 1, 2, 3, 0xFF, 1, 2, 3, 0xFF, 0xFF, 4})
	f.Add([]byte{255, 7, 7, 7, 0xFF, 7, 9, 0xFF, 9})
	f.Add([]byte{1, 0xFF, 0xFF, 0xFF, 5, 6, 0xFF, 6, 5})
	f.Add([]byte{64, 47, 46, 45, 44, 0xFF, 44, 45, 46, 0xFF, 1, 44})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			t.Skip("cap corpus size; the oracle is quadratic")
		}
		theta, sigs := decodeCorpus(data)
		pl := buildPlan(sigs, theta)

		// Structural invariants of the plan and index.
		if len(pl.order)+len(pl.empty) != len(sigs) {
			t.Fatalf("order %d + empty %d != %d records", len(pl.order), len(pl.empty), len(sigs))
		}
		for p, id := range pl.order {
			if pl.pos[id] != int32(p) {
				t.Fatalf("pos/order not inverse at %d", id)
			}
			if p > 0 && pl.lens[p-1] > pl.lens[p] {
				t.Fatalf("processing order not size-ascending at %d", p)
			}
			l := len(pl.ordered[id])
			if pf := int(pl.prefixLen[id]); pf < 1 || pf > l {
				t.Fatalf("prefixLen[%d] = %d outside [1, %d]", id, pf, l)
			}
		}
		idx := make(postings)
		entries := pl.indexRange(idx, 0, len(pl.order))
		var listed int64
		for tok, list := range idx {
			listed += int64(len(list))
			for i, e := range list {
				if i > 0 && list[i-1].pos >= e.pos {
					t.Fatalf("posting list %d not position-ascending: %v", tok, list)
				}
				id := pl.order[e.pos]
				pf := pl.prefix(id)
				if int(e.idx) >= len(pf) || pf[e.idx] != tok {
					t.Fatalf("record %d posted under %d at index %d, but prefix is %v", id, tok, e.idx, pf)
				}
			}
		}
		if listed != entries {
			t.Fatalf("indexRange reported %d entries, lists hold %d", entries, listed)
		}

		// Recall exactness, single diagonal block (the 2-D kernel covering
		// the whole corpus), against the independent quadratic oracle.
		var st Stats
		got := map[[2]int32]int{}
		pl.probeBlockPair(0, len(pl.order), 0, len(pl.order),
			func(a, b int32) bool { return true }, &st,
			func(a, b int32) { got[[2]int32{a, b}]++ })
		for i := 0; i < len(pl.empty); i++ {
			for j := i + 1; j < len(pl.empty); j++ {
				got[[2]int32{pl.empty[i], pl.empty[j]}]++
			}
		}
		want := naivePairs(sigs, theta, 0)
		for _, p := range want {
			k := [2]int32{int32(p.A), int32(p.B)}
			switch got[k] {
			case 1:
				delete(got, k)
			case 0:
				t.Fatalf("θ=%v: qualifying pair (%d,%d) dropped; sigs=%v", theta, p.A, p.B, sigs)
			default:
				t.Fatalf("θ=%v: pair (%d,%d) emitted %d times; sigs=%v", theta, p.A, p.B, got[k], sigs)
			}
		}
		for k := range got {
			t.Fatalf("θ=%v: non-qualifying pair (%d,%d) emitted; sigs=%v", theta, k[0], k[1], sigs)
		}
	})
}
