package knn

import (
	"sort"

	"adrdedup/internal/rdd"
	"adrdedup/internal/vecmath"
)

// KDTree is an in-memory k-d tree over labelled vectors — the per-block
// local index of Zhang et al. (related work §6; they use R-trees, the
// in-memory analogue is a k-d tree). It accelerates intra-block kNN search
// when blocks are large and the dimensionality is small, which is exactly
// the pair-vector setting (7 dims).
type KDTree struct {
	dim    int
	pts    [][]float64
	labels []int
	ids    []int
	nodes  []kdNode
	root   int
}

type kdNode struct {
	point       int // index into pts
	axis        int
	left, right int // node indices; -1 = none
}

// BuildKDTree indexes the vectors. Labels and ids may be nil (zero labels,
// positional ids). The build is O(n log^2 n) from re-sorting per level.
func BuildKDTree(pts [][]float64, labels, ids []int) *KDTree {
	t := &KDTree{pts: pts, labels: labels, ids: ids, root: -1}
	if len(pts) == 0 {
		return t
	}
	t.dim = len(pts[0])
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	t.nodes = make([]kdNode, 0, len(pts))
	t.root = t.build(order, 0)
	return t
}

func (t *KDTree) build(order []int, depth int) int {
	if len(order) == 0 {
		return -1
	}
	axis := depth % t.dim
	sort.Slice(order, func(i, j int) bool {
		return t.pts[order[i]][axis] < t.pts[order[j]][axis]
	})
	mid := len(order) / 2
	node := kdNode{point: order[mid], axis: axis}
	t.nodes = append(t.nodes, node)
	self := len(t.nodes) - 1
	left := append([]int(nil), order[:mid]...)
	right := append([]int(nil), order[mid+1:]...)
	t.nodes[self].left = t.build(left, depth+1)
	t.nodes[self].right = t.build(right, depth+1)
	return self
}

// Len returns the number of indexed points.
func (t *KDTree) Len() int { return len(t.pts) }

// Query returns the k nearest indexed points to q, ascending by distance,
// along with the number of distance computations performed (the work an
// exhaustive scan would spend on every point).
func (t *KDTree) Query(q []float64, k int) ([]Neighbor, int64) {
	if t.root < 0 || k <= 0 {
		return nil, 0
	}
	s := &kdSearch{tree: t, q: q, k: k}
	s.walk(t.root)
	return rdd.BoundedMin(s.found, k, Less), s.computed
}

type kdSearch struct {
	tree     *KDTree
	q        []float64
	k        int
	found    []Neighbor
	worst    float64 // k-th best distance so far (valid when full)
	full     bool
	computed int64
}

func (s *kdSearch) walk(node int) {
	if node < 0 {
		return
	}
	t := s.tree
	n := t.nodes[node]
	p := t.pts[n.point]
	d := vecmath.Dist(s.q, p)
	s.computed++
	s.offer(n.point, d)

	diff := s.q[n.axis] - p[n.axis]
	near, far := n.left, n.right
	if diff > 0 {
		near, far = n.right, n.left
	}
	s.walk(near)
	// The far subtree can only contain a better neighbor when the
	// splitting plane is closer than the current k-th best.
	if !s.full || abs(diff) < s.worst {
		s.walk(far)
	}
}

func (s *kdSearch) offer(point int, d float64) {
	label := 0
	if s.tree.labels != nil {
		label = s.tree.labels[point]
	}
	id := point
	if s.tree.ids != nil {
		id = s.tree.ids[point]
	}
	s.found = append(s.found, Neighbor{Index: id, Dist: d, Label: label})
	// Recompute the pruning bound lazily: keep found bounded so the
	// append-heavy search does not grow without limit.
	if len(s.found) >= 4*s.k {
		s.found = rdd.BoundedMin(s.found, s.k, Less)
	}
	if len(s.found) >= s.k {
		top := rdd.BoundedMin(s.found, s.k, Less)
		s.worst = top[len(top)-1].Dist
		s.full = true
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
