// Package knn provides exact k-nearest-neighbor search over pair distance
// vectors: a driver-side brute-force join (ground truth for tests) and the
// naive block-partitioned parallel kNN join of §4.3.1 — the strategy the
// paper's Fast kNN improves on, kept here as the comparison baseline.
package knn

import (
	"runtime"
	"sync"

	"adrdedup/internal/rdd"
	"adrdedup/internal/vecmath"
)

// Neighbor is one training point returned by a kNN query.
type Neighbor struct {
	// Index identifies the training point.
	Index int
	// Dist is the Euclidean distance to the query.
	Dist float64
	// Label is the training point's label (+1 / -1).
	Label int
}

// Less orders neighbors by distance, breaking ties by index so results are
// deterministic.
func Less(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.Index < b.Index
}

// BruteForce finds the k nearest training points for every query, exactly.
// It parallelizes over queries with plain goroutines (no cluster accounting)
// and is the reference implementation the Fast kNN classifier is tested
// against.
func BruteForce(queries, train [][]float64, labels []int, k int) [][]Neighbor {
	out := make([][]Neighbor, len(queries))
	parallelism := runtime.GOMAXPROCS(0)
	chunk := (len(queries) + parallelism - 1) / parallelism
	if chunk < 1 {
		chunk = 1
	}
	var wg sync.WaitGroup
	for lo := 0; lo < len(queries); lo += chunk {
		hi := lo + chunk
		if hi > len(queries) {
			hi = len(queries)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = Query(queries[i], train, labels, k)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// Query returns the k nearest training points to q, ascending by distance.
func Query(q []float64, train [][]float64, labels []int, k int) []Neighbor {
	cands := make([]Neighbor, len(train))
	for j, t := range train {
		lbl := 0
		if labels != nil {
			lbl = labels[j]
		}
		cands[j] = Neighbor{Index: j, Dist: vecmath.Dist(q, t), Label: lbl}
	}
	return rdd.BoundedMin(cands, k, Less)
}

// Merge combines neighbor lists into the k nearest overall, deduplicating by
// training index (a neighbor may be found by several partitions).
func Merge(k int, lists ...[]Neighbor) []Neighbor {
	var all []Neighbor
	seen := make(map[int]bool)
	for _, l := range lists {
		for _, n := range l {
			if !seen[n.Index] {
				seen[n.Index] = true
				all = append(all, n)
			}
		}
	}
	return rdd.BoundedMin(all, k, Less)
}

// Item is one vector with identity and label, the element type of the
// parallel join.
type Item struct {
	ID    int
	Vec   []float64
	Label int
}

// NaiveJoin is the block nested-loop parallel kNN join of §4.3.1: S is split
// into c blocks and T into b blocks; every (Si, Tj) block pair is compared
// (a Cartesian stage), then per-query neighbor lists are merged by query ID
// (a reduce stage). It is exact but does quadratic work and shuffles every
// block of T to every block of S — the cost Fast kNN's Voronoi partitioning
// avoids. Returned neighbor lists are keyed by query ID.
func NaiveJoin(ctx *rdd.Context, queries, train []Item, k, sBlocks, tBlocks int) (map[int][]Neighbor, error) {
	sb := blockRDD(ctx, queries, sBlocks, "S")
	tb := blockRDD(ctx, train, tBlocks, "T")

	// Each Cartesian partition holds exactly one (Si, Tj) block pair.
	blockPairs := rdd.Cartesian(sb, tb)
	partial := rdd.FlatMap(blockPairs, func(p rdd.Tuple2[[]Item, []Item]) []rdd.Pair[int, []Neighbor] {
		out := make([]rdd.Pair[int, []Neighbor], 0, len(p.A))
		for _, q := range p.A {
			cands := make([]Neighbor, len(p.B))
			for j, t := range p.B {
				cands[j] = Neighbor{Index: t.ID, Dist: vecmath.Dist(q.Vec, t.Vec), Label: t.Label}
			}
			out = append(out, rdd.KV(q.ID, rdd.BoundedMin(cands, k, Less)))
		}
		return out
	}).SetName("knn.partial")

	merged := rdd.ReduceByKey(partial, func(a, b []Neighbor) []Neighbor {
		return Merge(k, a, b)
	}, sBlocks)
	rows, err := merged.Collect()
	if err != nil {
		return nil, err
	}
	ctx.Cluster().Metrics().Comparisons.Add(int64(len(queries)) * int64(len(train)))
	out := make(map[int][]Neighbor, len(rows))
	for _, kv := range rows {
		out[kv.Key] = kv.Value
	}
	return out, nil
}

// blockRDD turns items into an RDD whose elements are whole blocks, one per
// partition, so Cartesian pairs blocks rather than individual vectors.
func blockRDD(ctx *rdd.Context, items []Item, blocks int, name string) *rdd.RDD[[]Item] {
	if blocks < 1 {
		blocks = 1
	}
	if blocks > len(items) && len(items) > 0 {
		blocks = len(items)
	}
	chunks := make([][]Item, 0, blocks)
	n := len(items)
	for b := 0; b < blocks; b++ {
		lo := b * n / blocks
		hi := (b + 1) * n / blocks
		chunks = append(chunks, items[lo:hi])
	}
	return rdd.Parallelize(ctx, chunks, blocks).SetName(name + ".blocks")
}
