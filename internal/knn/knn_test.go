package knn

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"adrdedup/internal/cluster"
	"adrdedup/internal/rdd"
)

func randVecs(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for d := range v {
			v[d] = rng.Float64()
		}
		out[i] = v
	}
	return out
}

func TestQueryExactSmall(t *testing.T) {
	train := [][]float64{{0}, {1}, {2}, {3}, {10}}
	labels := []int{1, -1, 1, -1, 1}
	got := Query([]float64{1.4}, train, labels, 3)
	wantIdx := []int{1, 2, 0}
	for i, n := range got {
		if n.Index != wantIdx[i] {
			t.Errorf("neighbor %d = index %d, want %d", i, n.Index, wantIdx[i])
		}
		if n.Label != labels[n.Index] {
			t.Errorf("neighbor %d label mismatch", i)
		}
	}
	if got[0].Dist >= got[1].Dist || got[1].Dist >= got[2].Dist {
		t.Error("neighbors not in ascending distance order")
	}
}

func TestQueryTieBreaksByIndex(t *testing.T) {
	train := [][]float64{{1}, {1}, {1}, {1}}
	got := Query([]float64{0}, train, nil, 2)
	if got[0].Index != 0 || got[1].Index != 1 {
		t.Errorf("tie break wrong: %v", got)
	}
}

func TestBruteForceMatchesQuery(t *testing.T) {
	train := randVecs(300, 5, 1)
	queries := randVecs(40, 5, 2)
	labels := make([]int, len(train))
	for i := range labels {
		labels[i] = 1 - 2*(i%2)
	}
	got := BruteForce(queries, train, labels, 7)
	for i, q := range queries {
		want := Query(q, train, labels, 7)
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("query %d mismatch", i)
		}
	}
}

func TestMergeDeduplicates(t *testing.T) {
	a := []Neighbor{{Index: 1, Dist: 0.1}, {Index: 2, Dist: 0.2}}
	b := []Neighbor{{Index: 1, Dist: 0.1}, {Index: 3, Dist: 0.05}}
	got := Merge(3, a, b)
	if len(got) != 3 {
		t.Fatalf("merged = %v", got)
	}
	if got[0].Index != 3 || got[1].Index != 1 || got[2].Index != 2 {
		t.Errorf("merge order wrong: %v", got)
	}
}

func TestNaiveJoinMatchesBruteForce(t *testing.T) {
	trainVecs := randVecs(400, 4, 3)
	queryVecs := randVecs(60, 4, 4)
	train := make([]Item, len(trainVecs))
	for i, v := range trainVecs {
		train[i] = Item{ID: i, Vec: v, Label: 1 - 2*(i%2)}
	}
	queries := make([]Item, len(queryVecs))
	for i, v := range queryVecs {
		queries[i] = Item{ID: 1000 + i, Vec: v}
	}
	labels := make([]int, len(train))
	for i := range labels {
		labels[i] = train[i].Label
	}

	ctx := rdd.NewContext(cluster.New(cluster.Config{Executors: 4}))
	const k = 5
	got, err := NaiveJoin(ctx, queries, train, k, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := BruteForce(queryVecs, trainVecs, labels, k)
	if len(got) != len(queries) {
		t.Fatalf("results for %d queries, want %d", len(got), len(queries))
	}
	for i := range queries {
		g := got[1000+i]
		w := want[i]
		if len(g) != len(w) {
			t.Fatalf("query %d: %d neighbors, want %d", i, len(g), len(w))
		}
		for j := range g {
			if g[j].Index != w[j].Index || math.Abs(g[j].Dist-w[j].Dist) > 1e-12 {
				t.Fatalf("query %d neighbor %d: got %+v want %+v", i, j, g[j], w[j])
			}
		}
	}
}

func TestNaiveJoinUnderFaultInjection(t *testing.T) {
	trainVecs := randVecs(200, 3, 5)
	queryVecs := randVecs(20, 3, 6)
	train := make([]Item, len(trainVecs))
	for i, v := range trainVecs {
		train[i] = Item{ID: i, Vec: v, Label: 1}
	}
	queries := make([]Item, len(queryVecs))
	for i, v := range queryVecs {
		queries[i] = Item{ID: i, Vec: v}
	}
	run := func(rate float64) map[int][]Neighbor {
		ctx := rdd.NewContext(cluster.New(cluster.Config{
			Executors: 4, FailureRate: rate, MaxTaskRetries: 40, Seed: 8,
		}))
		got, err := NaiveJoin(ctx, queries, train, 4, 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	clean := run(0)
	faulty := run(0.25)
	for id, w := range clean {
		g := faulty[id]
		if len(g) != len(w) {
			t.Fatalf("query %d: %d vs %d neighbors", id, len(g), len(w))
		}
		for j := range g {
			if g[j].Index != w[j].Index {
				t.Fatalf("fault injection changed query %d neighbor %d", id, j)
			}
		}
	}
}

func TestNaiveJoinShufflesEveryBlockPair(t *testing.T) {
	// The cost the paper's method avoids: naive join compares |S| x |T|.
	trainVecs := randVecs(100, 2, 9)
	queryVecs := randVecs(10, 2, 10)
	train := make([]Item, len(trainVecs))
	for i, v := range trainVecs {
		train[i] = Item{ID: i, Vec: v}
	}
	queries := make([]Item, len(queryVecs))
	for i, v := range queryVecs {
		queries[i] = Item{ID: i, Vec: v}
	}
	ctx := rdd.NewContext(cluster.New(cluster.Config{Executors: 4}))
	if _, err := NaiveJoin(ctx, queries, train, 3, 2, 5); err != nil {
		t.Fatal(err)
	}
	if c := ctx.Cluster().Metrics().Comparisons.Load(); c != 1000 {
		t.Errorf("comparisons = %d, want 10*100", c)
	}
}

func TestBoundedResultsSortedAscending(t *testing.T) {
	train := randVecs(500, 6, 11)
	q := randVecs(1, 6, 12)[0]
	got := Query(q, train, nil, 20)
	if !sort.SliceIsSorted(got, func(i, j int) bool { return Less(got[i], got[j]) }) {
		t.Error("neighbors not sorted")
	}
}
