package knn

import (
	"math"
	"testing"
)

func TestKDTreeMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		n, dim, k int
		seed      int64
	}{
		{n: 500, dim: 2, k: 5, seed: 1},
		{n: 1000, dim: 7, k: 9, seed: 2},
		{n: 50, dim: 3, k: 60, seed: 3}, // k > n
		{n: 1, dim: 4, k: 1, seed: 4},
	} {
		pts := randVecs(tc.n, tc.dim, tc.seed)
		labels := make([]int, tc.n)
		for i := range labels {
			labels[i] = 1 - 2*(i%2)
		}
		tree := BuildKDTree(pts, labels, nil)
		if tree.Len() != tc.n {
			t.Fatalf("Len = %d", tree.Len())
		}
		queries := randVecs(30, tc.dim, tc.seed+100)
		for qi, q := range queries {
			got, computed := tree.Query(q, tc.k)
			want := Query(q, pts, labels, tc.k)
			if len(got) != len(want) {
				t.Fatalf("n=%d dim=%d k=%d query %d: %d neighbors, want %d",
					tc.n, tc.dim, tc.k, qi, len(got), len(want))
			}
			for j := range got {
				// Ties can reorder equal distances; compare by distance.
				if math.Abs(got[j].Dist-want[j].Dist) > 1e-12 {
					t.Fatalf("query %d neighbor %d: dist %v vs %v", qi, j, got[j].Dist, want[j].Dist)
				}
			}
			if computed <= 0 || computed > int64(tc.n) {
				t.Fatalf("computed = %d for n = %d", computed, tc.n)
			}
		}
	}
}

func TestKDTreePrunesInLowDimensions(t *testing.T) {
	// In 2 dimensions with many points, the tree must visit far fewer
	// points than an exhaustive scan.
	pts := randVecs(20000, 2, 5)
	tree := BuildKDTree(pts, nil, nil)
	q := []float64{0.5, 0.5}
	_, computed := tree.Query(q, 5)
	if computed > 4000 {
		t.Errorf("visited %d of 20000 points; pruning ineffective", computed)
	}
}

func TestKDTreeCustomIDs(t *testing.T) {
	pts := [][]float64{{0}, {1}, {2}}
	ids := []int{100, 200, 300}
	tree := BuildKDTree(pts, nil, ids)
	got, _ := tree.Query([]float64{0.9}, 1)
	if len(got) != 1 || got[0].Index != 200 {
		t.Errorf("nearest = %+v, want id 200", got)
	}
}

func TestKDTreeEmpty(t *testing.T) {
	tree := BuildKDTree(nil, nil, nil)
	got, computed := tree.Query([]float64{1}, 3)
	if got != nil || computed != 0 {
		t.Errorf("empty tree query = %v, %d", got, computed)
	}
}

func TestKDTreeDuplicatePoints(t *testing.T) {
	pts := make([][]float64, 100)
	for i := range pts {
		pts[i] = []float64{1, 2, 3}
	}
	tree := BuildKDTree(pts, nil, nil)
	got, _ := tree.Query([]float64{1, 2, 3}, 10)
	if len(got) != 10 {
		t.Fatalf("got %d neighbors", len(got))
	}
	for _, n := range got {
		if n.Dist != 0 {
			t.Errorf("distance %v on identical points", n.Dist)
		}
	}
}

func BenchmarkKDTreeVsLinear(b *testing.B) {
	pts := randVecs(50000, 7, 9)
	labels := make([]int, len(pts))
	tree := BuildKDTree(pts, labels, nil)
	q := randVecs(1, 7, 10)[0]
	b.Run("kdtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree.Query(q, 9)
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Query(q, pts, labels, 9)
		}
	})
}
