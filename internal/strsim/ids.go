package strsim

// This file holds the interned-token similarity kernel: token sets are
// represented as sorted, deduplicated []uint32 ID slices (built once per
// report by intern.Interner.SortedSet) and compared by a branch-predictable
// merge scan — no hashing, no maps, no allocation per comparison. The float
// result is bit-identical to Jaccard over the equivalent string sets: both
// reduce to float64(|A∩B|) / float64(|A∪B|) with the same integer counts.

// JaccardSortedIDs returns the Jaccard similarity |A∩B| / |A∪B| of two
// sorted, deduplicated ID sets. Two empty sets have similarity 1; one empty
// and one non-empty set have similarity 0, matching Jaccard over strings.
func JaccardSortedIDs(a, b []uint32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	// Disjoint-range early-out: sorted sets whose ranges do not overlap
	// cannot intersect.
	if a[len(a)-1] < b[0] || b[len(b)-1] < a[0] {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ai, bj := a[i], b[j]
		if ai == bj {
			inter++
			i++
			j++
		} else if ai < bj {
			i++
		} else {
			j++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// JaccardDistanceSortedIDs is 1 - JaccardSortedIDs(a, b), the Eq. 4 set
// distance over interned ID sets.
func JaccardDistanceSortedIDs(a, b []uint32) float64 {
	return 1 - JaccardSortedIDs(a, b)
}

// UnionSortedIDs merges sorted, deduplicated ID sets into one sorted,
// deduplicated set. It is how a report's per-field token sets combine into
// the single signature set the prefix-filtered candidate generator indexes.
// The result is freshly allocated (nil when every input is empty).
func UnionSortedIDs(sets ...[]uint32) []uint32 {
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	if total == 0 {
		return nil
	}
	out := make([]uint32, 0, total)
	// Iterative two-way merge: with the three small per-field sets this
	// beats a heap and keeps the code obvious.
	for _, s := range sets {
		if len(s) == 0 {
			continue
		}
		if len(out) == 0 {
			out = append(out, s...)
			continue
		}
		merged := make([]uint32, 0, len(out)+len(s))
		i, j := 0, 0
		for i < len(out) && j < len(s) {
			switch {
			case out[i] < s[j]:
				merged = append(merged, out[i])
				i++
			case out[i] > s[j]:
				merged = append(merged, s[j])
				j++
			default:
				merged = append(merged, out[i])
				i++
				j++
			}
		}
		merged = append(merged, out[i:]...)
		merged = append(merged, s[j:]...)
		out = merged
	}
	return out
}

// JaccardSimUpperBound bounds the Jaccard similarity of any two sets with
// the given cardinalities: sim <= min(la, lb) / max(la, lb), since the
// intersection is at most the smaller set and the union at least the
// larger. Candidate filters use it to reject pairs from lengths alone.
func JaccardSimUpperBound(la, lb int) float64 {
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	if la > lb {
		la, lb = lb, la
	}
	return float64(la) / float64(lb)
}

// JaccardSimAtLeast reports whether JaccardSortedIDs(a, b) >= minSim,
// early-outing on the length-ratio upper bound and, during the merge scan,
// as soon as the remaining elements cannot lift the intersection high
// enough. For a required similarity s, |A∩B| must reach
// s*(|A|+|B|) / (1+s) (from inter >= s*(la+lb-inter)).
func JaccardSimAtLeast(a, b []uint32, minSim float64) bool {
	if minSim <= 0 {
		return true
	}
	if JaccardSimUpperBound(len(a), len(b)) < minSim {
		return false
	}
	if len(a) == 0 && len(b) == 0 {
		return true // similarity 1
	}
	// Smallest integer intersection meeting the threshold. The float
	// estimate never overshoots the true minimum (it is a truncation of a
	// value < minimum+1), and the loop lifts it under exactly the predicate
	// the final return uses, so the early-outs below are exact.
	total := len(a) + len(b)
	need := int(minSim * float64(total) / (1 + minSim))
	for float64(need) < minSim*float64(total-need) {
		need++
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		// Positional early-out: even matching every remaining element of
		// the shorter side cannot reach the needed intersection.
		rem := len(a) - i
		if r := len(b) - j; r < rem {
			rem = r
		}
		if inter+rem < need {
			return false
		}
		ai, bj := a[i], b[j]
		if ai == bj {
			inter++
			if inter >= need {
				return true
			}
			i++
			j++
		} else if ai < bj {
			i++
		} else {
			j++
		}
	}
	return float64(inter) >= minSim*float64(len(a)+len(b)-inter)
}
