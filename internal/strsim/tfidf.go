package strsim

import "math"

// NGrams returns the n-grams of the token sequence (word n-grams joined
// with '\x1f'), a standard record-linkage field representation that keeps
// some word order, unlike plain token sets. n <= 1 returns the tokens.
func NGrams(tokens []string, n int) []string {
	if n <= 1 || len(tokens) == 0 {
		return tokens
	}
	if len(tokens) < n {
		return nil
	}
	out := make([]string, 0, len(tokens)-n+1)
	for i := 0; i+n <= len(tokens); i++ {
		g := tokens[i]
		for j := 1; j < n; j++ {
			g += "\x1f" + tokens[i+j]
		}
		out = append(out, g)
	}
	return out
}

// CharNGrams returns the character n-grams of s (runes), the usual
// representation for short noisy strings like drug names.
func CharNGrams(s string, n int) []string {
	runes := []rune(s)
	if n <= 0 || len(runes) < n {
		if len(runes) == 0 || n <= 0 {
			return nil
		}
		return []string{s}
	}
	out := make([]string, 0, len(runes)-n+1)
	for i := 0; i+n <= len(runes); i++ {
		out = append(out, string(runes[i:i+n]))
	}
	return out
}

// IDFModel holds inverse document frequencies learned from a corpus of
// token lists. Rare tokens (drug names, reaction terms) weigh more than
// boilerplate, sharpening text similarity between report narratives.
type IDFModel struct {
	idf  map[string]float64
	docs float64
}

// NewIDFModel computes smoothed IDF weights from the documents:
// idf(t) = ln((1+N)/(1+df(t))) + 1.
func NewIDFModel(docs [][]string) *IDFModel {
	df := make(map[string]float64)
	for _, d := range docs {
		seen := make(map[string]struct{}, len(d))
		for _, t := range d {
			if _, dup := seen[t]; !dup {
				seen[t] = struct{}{}
				df[t]++
			}
		}
	}
	n := float64(len(docs))
	idf := make(map[string]float64, len(df))
	for t, f := range df {
		idf[t] = math.Log((1+n)/(1+f)) + 1
	}
	return &IDFModel{idf: idf, docs: n}
}

// Weight returns the IDF weight of a token. Unseen tokens get the maximal
// smoothed weight (they are rarer than anything observed).
func (m *IDFModel) Weight(token string) float64 {
	if w, ok := m.idf[token]; ok {
		return w
	}
	return math.Log(1+m.docs) + 1
}

// Cosine computes TF-IDF weighted cosine similarity between two token
// lists. Two empty lists are fully similar; one empty list is dissimilar.
func (m *IDFModel) Cosine(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	wa := m.vector(a)
	wb := m.vector(b)
	var dot, na, nb float64
	for t, x := range wa {
		na += x * x
		if y, ok := wb[t]; ok {
			dot += x * y
		}
	}
	for _, y := range wb {
		nb += y * y
	}
	if dot == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

func (m *IDFModel) vector(tokens []string) map[string]float64 {
	tf := make(map[string]float64, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	for t, f := range tf {
		tf[t] = f * m.Weight(t)
	}
	return tf
}
