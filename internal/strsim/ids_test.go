package strsim

import (
	"math"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

// sortedSet turns arbitrary fuzz bytes into a sorted deduplicated ID set.
func sortedSet(raw []uint8) []uint32 {
	if len(raw) == 0 {
		return nil
	}
	ids := make([]uint32, len(raw))
	for i, v := range raw {
		ids[i] = uint32(v % 40)
	}
	slices.Sort(ids)
	return slices.Compact(ids)
}

// stringsOf maps an ID set to an equivalent string set, so the ID kernel
// can be compared bit-for-bit with the string kernel.
func stringsOf(ids []uint32) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(rune('A' + id))
	}
	return out
}

func TestJaccardSortedIDsEdgeCases(t *testing.T) {
	cases := []struct {
		a, b []uint32
		want float64
	}{
		{nil, nil, 1},
		{nil, []uint32{1}, 0},
		{[]uint32{1}, nil, 0},
		{[]uint32{1, 2}, []uint32{1, 2}, 1},
		{[]uint32{1, 2}, []uint32{3, 4}, 0},       // disjoint ranges (early-out)
		{[]uint32{1, 3}, []uint32{2, 4}, 0},       // interleaved, no overlap
		{[]uint32{1, 2, 3}, []uint32{2, 3, 4}, 0.5},
	}
	for _, c := range cases {
		if got := JaccardSortedIDs(c.a, c.b); got != c.want {
			t.Errorf("JaccardSortedIDs(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := JaccardDistanceSortedIDs(c.a, c.b); got != 1-c.want {
			t.Errorf("JaccardDistanceSortedIDs(%v, %v) = %v, want %v", c.a, c.b, got, 1-c.want)
		}
	}
}

// TestJaccardSortedIDsMatchesStringKernel is the core bit-identity claim:
// the merge scan over ID sets returns the exact float the map-based string
// kernel returns for the equivalent sets.
func TestJaccardSortedIDsMatchesStringKernel(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		a, b := sortedSet(ra), sortedSet(rb)
		return JaccardSortedIDs(a, b) == Jaccard(stringsOf(a), stringsOf(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestJaccardSimUpperBound(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		a, b := sortedSet(ra), sortedSet(rb)
		return JaccardSortedIDs(a, b) <= JaccardSimUpperBound(len(a), len(b))+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	if JaccardSimUpperBound(0, 0) != 1 || JaccardSimUpperBound(0, 3) != 0 {
		t.Error("empty-set bounds wrong")
	}
	if JaccardSimUpperBound(2, 4) != 0.5 || JaccardSimUpperBound(4, 2) != 0.5 {
		t.Error("length-ratio bound not symmetric")
	}
}

func TestJaccardSimAtLeastMatchesExact(t *testing.T) {
	thresholds := []float64{0, 0.1, 0.25, 0.5, 2.0 / 3, 0.75, 0.9, 1}
	f := func(ra, rb []uint8, ti uint8) bool {
		a, b := sortedSet(ra), sortedSet(rb)
		minSim := thresholds[int(ti)%len(thresholds)]
		exact := JaccardSortedIDs(a, b) >= minSim
		return JaccardSimAtLeast(a, b, minSim) == exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

// --- small-set fast-path equivalence (satellite) ---

// jaccardRef is the original map-based implementation, kept in the test as
// the oracle for the quadratic small-set path.
func jaccardRef(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sa := make(map[string]struct{}, len(a))
	for _, t := range a {
		sa[t] = struct{}{}
	}
	sb := make(map[string]struct{}, len(b))
	for _, t := range b {
		sb[t] = struct{}{}
	}
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(sa)+len(sb)-inter)
}

// cosineRef is the original map-based cosine, the oracle for cosineSmall.
func cosineRef(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	ca := counts(a)
	cb := counts(b)
	var dot, na, nb float64
	for t, x := range ca {
		na += float64(x) * float64(x)
		if y, ok := cb[t]; ok {
			dot += float64(x) * float64(y)
		}
	}
	for _, y := range cb {
		nb += float64(y) * float64(y)
	}
	if dot == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// tokensOf maps fuzz bytes to token slices with deliberate duplicates and a
// tiny alphabet so overlaps, repeats, and empty inputs all occur.
func tokensOf(raw []uint8) []string {
	out := make([]string, len(raw))
	for i, v := range raw {
		out[i] = string(rune('a' + v%6))
	}
	return out
}

func TestJaccardSmallSetPathMatchesMapPath(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		if len(ra) > smallSetLen {
			ra = ra[:smallSetLen]
		}
		if len(rb) > smallSetLen {
			rb = rb[:smallSetLen]
		}
		a, b := tokensOf(ra), tokensOf(rb)
		return Jaccard(a, b) == jaccardRef(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

func TestCosineSmallSetPathMatchesMapPath(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		if len(ra) > smallSetLen {
			ra = ra[:smallSetLen]
		}
		if len(rb) > smallSetLen {
			rb = rb[:smallSetLen]
		}
		a, b := tokensOf(ra), tokensOf(rb)
		return Cosine(a, b) == cosineRef(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

// TestLargeSetStillUsesMapPathConsistently pins that results agree across
// the size threshold: truncating just above and below smallSetLen changes
// the implementation, never the value for identical inputs.
func TestJaccardAgreesAcrossThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := smallSetLen + 1 + rng.Intn(8)
		a := make([]string, n)
		b := make([]string, rng.Intn(n+1))
		for i := range a {
			a[i] = string(rune('a' + rng.Intn(6)))
		}
		for i := range b {
			b[i] = string(rune('a' + rng.Intn(6)))
		}
		if got, want := Jaccard(a, b), jaccardRef(a, b); got != want {
			t.Fatalf("large-set Jaccard(%v, %v) = %v, want %v", a, b, got, want)
		}
		if got, want := Cosine(a, b), cosineRef(a, b); got != want {
			t.Fatalf("large-set Cosine(%v, %v) = %v, want %v", a, b, got, want)
		}
	}
}

func BenchmarkJaccardSmallSets(b *testing.B) {
	x := []string{"atorvastatin", "calcium"}
	y := []string{"atorvastatin", "simvastatin", "ezetimibe"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Jaccard(x, y)
	}
}

func BenchmarkJaccardSortedIDs(b *testing.B) {
	x := []uint32{3, 17, 29, 41, 56, 77, 81, 90}
	y := []uint32{3, 18, 29, 44, 56, 79, 81, 95}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JaccardSortedIDs(x, y)
	}
}

func TestUnionSortedIDs(t *testing.T) {
	cases := []struct {
		sets [][]uint32
		want []uint32
	}{
		{nil, nil},
		{[][]uint32{nil, nil, nil}, nil},
		{[][]uint32{{1, 3}, nil, {2}}, []uint32{1, 2, 3}},
		{[][]uint32{{1, 2, 3}, {1, 2, 3}}, []uint32{1, 2, 3}},
		{[][]uint32{{5}, {1}, {3}}, []uint32{1, 3, 5}},
		{[][]uint32{{0, 7, 9}, {7, 8}, {0, 9, 10}}, []uint32{0, 7, 8, 9, 10}},
	}
	for _, c := range cases {
		if got := UnionSortedIDs(c.sets...); !slices.Equal(got, c.want) {
			t.Errorf("UnionSortedIDs(%v) = %v, want %v", c.sets, got, c.want)
		}
	}
}

func TestUnionSortedIDsRandomizedAgainstMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		sets := make([][]uint32, rng.Intn(5))
		want := map[uint32]bool{}
		for i := range sets {
			raw := make([]uint8, rng.Intn(12))
			rng.Read(raw)
			sets[i] = sortedSet(raw)
			for _, id := range sets[i] {
				want[id] = true
			}
		}
		got := UnionSortedIDs(sets...)
		if len(got) != len(want) {
			t.Fatalf("union of %v has %d ids, want %d", sets, len(got), len(want))
		}
		for i, id := range got {
			if i > 0 && got[i-1] >= id {
				t.Fatalf("union of %v not strictly increasing: %v", sets, got)
			}
			if !want[id] {
				t.Fatalf("union of %v contains foreign id %d", sets, id)
			}
		}
		// The result must be fresh storage: mutating it must not alias any
		// input set.
		if len(got) > 0 {
			got[0] = ^uint32(0)
			for _, s := range sets {
				for _, id := range s {
					if id == ^uint32(0) {
						t.Fatal("UnionSortedIDs aliased an input slice")
					}
				}
			}
		}
	}
}
