package strsim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLevenshteinTable(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"atorvastatin", "atorvastatine", 1},
		{"rhabdomyolysis", "rhabdomyolysi", 1},
		{"gumbo", "gambol", 2},
		{"a", "b", 1},
		{"ab", "ba", 2},
		{"résumé", "resume", 2},
		{"influenza vaccine", "influenza vaccine,dtpa vaccine", 13},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSymmetry(t *testing.T) {
	f := func(a, b string) bool {
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinIdentity(t *testing.T) {
	f := func(a string) bool {
		return Levenshtein(a, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinTriangleInequality(t *testing.T) {
	f := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinBoundedByLongerLength(t *testing.T) {
	f := func(a, b string) bool {
		la := len([]rune(a))
		lb := len([]rune(b))
		n := la
		if lb > n {
			n = lb
		}
		d := Levenshtein(a, b)
		return d >= 0 && d <= n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinSim(t *testing.T) {
	if got := LevenshteinSim("", ""); got != 1 {
		t.Errorf("LevenshteinSim of empty strings = %v, want 1", got)
	}
	if got := LevenshteinSim("abc", "abc"); got != 1 {
		t.Errorf("identical strings similarity = %v, want 1", got)
	}
	if got := LevenshteinSim("abc", "xyz"); got != 0 {
		t.Errorf("disjoint strings similarity = %v, want 0", got)
	}
	got := LevenshteinSim("kitten", "sitting")
	want := 1 - 3.0/7.0
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("LevenshteinSim(kitten, sitting) = %v, want %v", got, want)
	}
}

func TestHamming(t *testing.T) {
	if d, ok := Hamming("karolin", "kathrin"); !ok || d != 3 {
		t.Errorf("Hamming(karolin, kathrin) = %d,%v want 3,true", d, ok)
	}
	if d, ok := Hamming("", ""); !ok || d != 0 {
		t.Errorf("Hamming of empty strings = %d,%v want 0,true", d, ok)
	}
	if _, ok := Hamming("ab", "abc"); ok {
		t.Error("Hamming of different-length strings should report undefined")
	}
	if d, ok := Hamming("1011101", "1001001"); !ok || d != 2 {
		t.Errorf("Hamming binary = %d,%v want 2,true", d, ok)
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []string
		want float64
	}{
		{nil, nil, 1},
		{[]string{"a"}, nil, 0},
		{nil, []string{"a"}, 0},
		{[]string{"a", "b"}, []string{"a", "b"}, 1},
		{[]string{"a", "b"}, []string{"b", "c"}, 1.0 / 3},
		{[]string{"a", "a", "b"}, []string{"a", "b", "b"}, 1}, // multiset collapse
		{[]string{"a"}, []string{"b"}, 0},
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); !close64(got, c.want) {
			t.Errorf("Jaccard(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaccardDistanceComplement(t *testing.T) {
	f := func(a, b []string) bool {
		return close64(JaccardDistance(a, b), 1-Jaccard(a, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaccardSymmetryAndRange(t *testing.T) {
	f := func(a, b []string) bool {
		s1 := Jaccard(a, b)
		s2 := Jaccard(b, a)
		return close64(s1, s2) && s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine(nil, nil); got != 1 {
		t.Errorf("Cosine(nil, nil) = %v, want 1", got)
	}
	if got := Cosine([]string{"a"}, nil); got != 0 {
		t.Errorf("Cosine with one empty = %v, want 0", got)
	}
	if got := Cosine([]string{"a", "b"}, []string{"a", "b"}); !close64(got, 1) {
		t.Errorf("Cosine of identical = %v, want 1", got)
	}
	if got := Cosine([]string{"a"}, []string{"b"}); got != 0 {
		t.Errorf("Cosine of disjoint = %v, want 0", got)
	}
	// counts: a=(2,1), b=(1,2) over tokens {x,y}: dot=4, |a|=|b|=sqrt(5).
	got := Cosine([]string{"x", "x", "y"}, []string{"x", "y", "y"})
	if !close64(got, 4.0/5.0) {
		t.Errorf("Cosine multiset = %v, want 0.8", got)
	}
}

func TestCosineRangeProperty(t *testing.T) {
	f := func(a, b []string) bool {
		s := Cosine(a, b)
		return s >= 0 && s <= 1+1e-9 && close64(s, Cosine(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaroWinkler(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"a", "", 0},
		{"martha", "marhta", 0.9611111111111111},
		{"dwayne", "duane", 0.8400000000000001},
		{"dixon", "dicksonx", 0.8133333333333332},
		{"abc", "abc", 1},
	}
	for _, c := range cases {
		if got := JaroWinkler(c.a, c.b); !close64(got, c.want) {
			t.Errorf("JaroWinkler(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinklerRange(t *testing.T) {
	f := func(a, b string) bool {
		s := JaroWinkler(a, b)
		return s >= 0 && s <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinRandomEditsUpperBound(t *testing.T) {
	// Applying n random single-rune edits to a string yields edit
	// distance at most n from the original.
	rng := rand.New(rand.NewSource(7))
	letters := "abcdefghij"
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(20) + 1
		base := make([]rune, n)
		for i := range base {
			base[i] = rune(letters[rng.Intn(len(letters))])
		}
		edits := rng.Intn(5)
		mutated := append([]rune(nil), base...)
		for e := 0; e < edits; e++ {
			if len(mutated) == 0 {
				mutated = append(mutated, rune(letters[rng.Intn(len(letters))]))
				continue
			}
			switch rng.Intn(3) {
			case 0: // substitute
				mutated[rng.Intn(len(mutated))] = rune(letters[rng.Intn(len(letters))])
			case 1: // delete
				i := rng.Intn(len(mutated))
				mutated = append(mutated[:i], mutated[i+1:]...)
			case 2: // insert
				i := rng.Intn(len(mutated) + 1)
				mutated = append(mutated[:i], append([]rune{rune(letters[rng.Intn(len(letters))])}, mutated[i:]...)...)
			}
		}
		if d := Levenshtein(string(base), string(mutated)); d > edits {
			t.Fatalf("edit distance %d exceeds %d edits applied (base %q mutated %q)",
				d, edits, string(base), string(mutated))
		}
	}
}

func TestJaccardOnRealisticDrugNames(t *testing.T) {
	a := strings.Fields("influenza vaccine dtpa vaccine")
	b := strings.Fields("influenza vaccine dtpa vaccine")
	if got := Jaccard(a, b); got != 1 {
		t.Errorf("identical drug lists Jaccard = %v, want 1", got)
	}
	c := strings.Fields("atorvastatin")
	if got := Jaccard(a, c); got != 0 {
		t.Errorf("disjoint drug lists Jaccard = %v, want 0", got)
	}
}

func close64(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
