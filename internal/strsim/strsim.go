// Package strsim provides the string similarity metrics used for field
// matching in duplicate detection (§4.2 of the paper): Levenshtein edit
// distance, Hamming distance, Jaccard coefficient over sets, cosine
// similarity over token multisets, and Jaro-Winkler similarity.
//
// All similarity functions return values in [0, 1] where 1 means identical.
// All distance functions are non-negative and zero iff the inputs match
// under the metric's notion of equality.
package strsim

import (
	"math"
	"unicode/utf8"
)

// Levenshtein returns the edit distance between a and b: the minimum number
// of single-rune insertions, deletions, and substitutions required to
// transform a into b.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	ra := []rune(a)
	rb := []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	// Keep the shorter string in rb to bound the row buffer.
	if len(rb) > len(ra) {
		ra, rb = rb, ra
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// LevenshteinSim converts edit distance to a similarity in [0, 1]:
// 1 - dist/max(len(a), len(b)). Two empty strings are fully similar.
func LevenshteinSim(a, b string) float64 {
	la := utf8.RuneCountInString(a)
	lb := utf8.RuneCountInString(b)
	n := la
	if lb > n {
		n = lb
	}
	if n == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(n)
}

// Hamming returns the Hamming distance between a and b: the number of
// positions at which the corresponding runes differ. The second return is
// false when the inputs have different lengths, for which Hamming distance
// is undefined.
func Hamming(a, b string) (int, bool) {
	ra := []rune(a)
	rb := []rune(b)
	if len(ra) != len(rb) {
		return 0, false
	}
	d := 0
	for i := range ra {
		if ra[i] != rb[i] {
			d++
		}
	}
	return d, true
}

// smallSetLen is the per-side length at or below which Jaccard and Cosine
// use a quadratic slice scan instead of building maps. Drug and ADR value
// sets are typically 1-3 tokens, for which hashing costs more than the
// whole scan; both paths compute identical integer counts, so the float
// results are bit-identical (see the property tests).
const smallSetLen = 8

// Jaccard returns the Jaccard similarity coefficient |A∩B| / |A∪B| between
// two sets of tokens. Duplicate tokens within one input count once. Two
// empty sets have similarity 1 (they are identical).
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(a) <= smallSetLen && len(b) <= smallSetLen {
		return jaccardSmall(a, b)
	}
	sa := make(map[string]struct{}, len(a))
	for _, t := range a {
		sa[t] = struct{}{}
	}
	sb := make(map[string]struct{}, len(b))
	for _, t := range b {
		sb[t] = struct{}{}
	}
	inter := 0
	for t := range sa {
		if _, ok := sb[t]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	return float64(inter) / float64(union)
}

// jaccardSmall is the allocation-free small-set path: distinct and
// intersection counts come from quadratic scans over the slices.
func jaccardSmall(a, b []string) float64 {
	na, inter := 0, 0
	for i, t := range a {
		if seenBefore(a, i, t) {
			continue
		}
		na++
		if contains(b, t) {
			inter++
		}
	}
	nb := 0
	for i, t := range b {
		if seenBefore(b, i, t) {
			continue
		}
		nb++
	}
	return float64(inter) / float64(na+nb-inter)
}

// seenBefore reports whether s[i] already occurred in s[:i].
func seenBefore(s []string, i int, t string) bool {
	for _, u := range s[:i] {
		if u == t {
			return true
		}
	}
	return false
}

func contains(s []string, t string) bool {
	for _, u := range s {
		if u == t {
			return true
		}
	}
	return false
}

func countOf(s []string, t string) int {
	n := 0
	for _, u := range s {
		if u == t {
			n++
		}
	}
	return n
}

// JaccardDistance is 1 - Jaccard(a, b), the set distance used by the paper
// for string-typed fields (Eq. 4).
func JaccardDistance(a, b []string) float64 {
	return 1 - Jaccard(a, b)
}

// Cosine returns the cosine similarity between the token-count vectors of a
// and b. Two empty token lists have similarity 1; one empty and one
// non-empty list have similarity 0.
func Cosine(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(a) <= smallSetLen && len(b) <= smallSetLen {
		return cosineSmall(a, b)
	}
	ca := counts(a)
	cb := counts(b)
	var dot, na, nb float64
	for t, x := range ca {
		na += float64(x) * float64(x)
		if y, ok := cb[t]; ok {
			dot += float64(x) * float64(y)
		}
	}
	for _, y := range cb {
		nb += float64(y) * float64(y)
	}
	if dot == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// cosineSmall is the allocation-free small-set path. All partial sums are
// small integers (counts and products of counts), which float64 represents
// exactly, so the result is bit-identical to the map path regardless of
// accumulation order.
func cosineSmall(a, b []string) float64 {
	var dot, na, nb float64
	for i, t := range a {
		if seenBefore(a, i, t) {
			continue
		}
		x := float64(countOf(a, t))
		na += x * x
		if y := countOf(b, t); y > 0 {
			dot += x * float64(y)
		}
	}
	for i, t := range b {
		if seenBefore(b, i, t) {
			continue
		}
		y := float64(countOf(b, t))
		nb += y * y
	}
	if dot == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// JaroWinkler returns the Jaro-Winkler similarity between a and b in [0, 1],
// boosting matches with a common prefix of up to four runes by the standard
// scaling factor 0.1.
func JaroWinkler(a, b string) float64 {
	j := jaro(a, b)
	if j == 0 {
		return 0
	}
	ra := []rune(a)
	rb := []rune(b)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

func jaro(a, b string) float64 {
	ra := []rune(a)
	rb := []rune(b)
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	window := max2(len(ra), len(rb))/2 - 1
	if window < 0 {
		window = 0
	}
	matchedA := make([]bool, len(ra))
	matchedB := make([]bool, len(rb))
	matches := 0
	for i, c := range ra {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > len(rb) {
			hi = len(rb)
		}
		for j := lo; j < hi; j++ {
			if !matchedB[j] && rb[j] == c {
				matchedA[i] = true
				matchedB[j] = true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := range ra {
		if !matchedA[i] {
			continue
		}
		for !matchedB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(len(ra)) + m/float64(len(rb)) + (m-t)/m) / 3
}

func counts(tokens []string) map[string]int {
	c := make(map[string]int, len(tokens))
	for _, t := range tokens {
		c[t]++
	}
	return c
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
