package strsim

import (
	"reflect"
	"strings"
	"testing"
)

func TestNGrams(t *testing.T) {
	toks := strings.Fields("a b c d")
	got := NGrams(toks, 2)
	want := []string{"a\x1fb", "b\x1fc", "c\x1fd"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("bigrams = %v", got)
	}
	if got := NGrams(toks, 1); !reflect.DeepEqual(got, toks) {
		t.Errorf("n=1 should return tokens: %v", got)
	}
	if got := NGrams(toks, 5); got != nil {
		t.Errorf("n>len should be nil: %v", got)
	}
	if got := NGrams(nil, 2); got != nil {
		t.Errorf("empty input: %v", got)
	}
	if got := NGrams(toks, 4); !reflect.DeepEqual(got, []string{"a\x1fb\x1fc\x1fd"}) {
		t.Errorf("n=len: %v", got)
	}
}

func TestCharNGrams(t *testing.T) {
	got := CharNGrams("abcd", 2)
	if !reflect.DeepEqual(got, []string{"ab", "bc", "cd"}) {
		t.Errorf("char bigrams = %v", got)
	}
	if got := CharNGrams("ab", 3); !reflect.DeepEqual(got, []string{"ab"}) {
		t.Errorf("short string = %v", got)
	}
	if got := CharNGrams("", 2); got != nil {
		t.Errorf("empty = %v", got)
	}
	if got := CharNGrams("résumé", 3); len(got) != 4 {
		t.Errorf("rune handling: %v", got)
	}
	// Trigram Jaccard between near-identical drug names is high.
	a := CharNGrams("atorvastatin", 3)
	b := CharNGrams("atorvastatine", 3)
	if Jaccard(a, b) < 0.8 {
		t.Errorf("trigram Jaccard of near-identical names = %v", Jaccard(a, b))
	}
}

func TestIDFModelWeights(t *testing.T) {
	docs := [][]string{
		{"patient", "cough"},
		{"patient", "rhabdomyolysis"},
		{"patient", "cough", "headache"},
		{"patient", "fever"},
	}
	m := NewIDFModel(docs)
	common := m.Weight("patient") // in every doc
	rare := m.Weight("rhabdomyolysis")
	unseen := m.Weight("neverseen")
	if common >= rare {
		t.Errorf("common weight %v not below rare %v", common, rare)
	}
	if unseen < rare {
		t.Errorf("unseen weight %v below rare %v", unseen, rare)
	}
}

func TestIDFCosine(t *testing.T) {
	docs := [][]string{
		{"patient", "experienced", "cough"},
		{"patient", "experienced", "rash"},
		{"patient", "experienced", "rhabdomyolysis"},
		{"patient", "experienced", "fever"},
	}
	m := NewIDFModel(docs)
	if got := m.Cosine(nil, nil); got != 1 {
		t.Errorf("empty-empty = %v", got)
	}
	if got := m.Cosine([]string{"a"}, nil); got != 0 {
		t.Errorf("empty-one = %v", got)
	}
	same := []string{"patient", "rhabdomyolysis"}
	if got := m.Cosine(same, same); got < 0.999 {
		t.Errorf("identical = %v", got)
	}
	// Sharing the rare term must beat sharing the common term.
	rareShared := m.Cosine(
		[]string{"patient", "rhabdomyolysis"},
		[]string{"experienced", "rhabdomyolysis"})
	commonShared := m.Cosine(
		[]string{"patient", "rhabdomyolysis"},
		[]string{"patient", "fever"})
	if rareShared <= commonShared {
		t.Errorf("rare-term overlap (%v) should beat common-term overlap (%v)",
			rareShared, commonShared)
	}
	// Plain cosine cannot make that distinction.
	if Cosine([]string{"patient", "rhabdomyolysis"}, []string{"experienced", "rhabdomyolysis"}) !=
		Cosine([]string{"patient", "rhabdomyolysis"}, []string{"patient", "fever"}) {
		t.Error("control: unweighted cosine should tie these")
	}
}
