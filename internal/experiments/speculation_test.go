package experiments

import (
	"testing"

	"adrdedup/internal/cluster"
)

// TestSpeculationSpeedupFloor pins the headline property of the straggler
// exhibit: with the default parameters, speculative execution cuts the
// skewed workload's virtual makespan by at least 1.5x, across seeds.
func TestSpeculationSpeedupFloor(t *testing.T) {
	env := testEnv(t)
	for _, seed := range []int64{1, 2, 7} {
		rows, err := Speculation(env, SpeculationParams{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if got := SpeculationSpeedup(rows); got < 1.5 {
			t.Errorf("seed %d: makespan reduction %.2fx, want >= 1.5x (rows %+v)", seed, got, rows)
		}
		for _, r := range rows {
			if !r.Speculation && (r.SpeculativeLaunches != 0 || r.SpeculativeWins != 0 || r.WastedTime != 0) {
				t.Errorf("seed %d: speculation-off row has speculative accounting: %+v", seed, r)
			}
			if r.Speculation && r.SpeculativeWins > r.SpeculativeLaunches {
				t.Errorf("seed %d: wins %d > launches %d", seed, r.SpeculativeWins, r.SpeculativeLaunches)
			}
		}
	}
}

// BenchmarkSpeculationSkew snapshots the straggler-mitigation exhibit for
// bench-json: the reported speedup metric is the off/on virtual makespan
// ratio of the injected-straggler workload.
func BenchmarkSpeculationSkew(b *testing.B) {
	env, err := NewEnv(EnvConfig{
		Cluster: cluster.Config{Executors: 8, CoresPerExecutor: 1, SchedulerOverheadMS: 2, ShuffleLatencyMS: 1},
		Corpus:  SmallCorpus(1),
		Seed:    2,
	})
	if err != nil {
		b.Fatal(err)
	}
	var rows []SpeculationRow
	for i := 0; i < b.N; i++ {
		rows, err = Speculation(env, SpeculationParams{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	var on, off, launches, wins float64
	for _, r := range rows {
		if r.Speculation {
			on = r.ExecutionTime.Seconds()
			launches = float64(r.SpeculativeLaunches)
			wins = float64(r.SpeculativeWins)
		} else {
			off = r.ExecutionTime.Seconds()
		}
	}
	b.ReportMetric(SpeculationSpeedup(rows), "speedup")
	b.ReportMetric(off, "makespan-off-s")
	b.ReportMetric(on, "makespan-on-s")
	b.ReportMetric(launches, "spec-launches")
	b.ReportMetric(wins, "spec-wins")
}
