package experiments

import (
	"testing"

	"adrdedup/internal/cluster"
)

// TestRecoveryOverheadCeiling pins the recovery exhibit to a sane band
// across seeds: executor kills must actually happen and cost something
// (ratio > 1), but lineage recovery recomputes only lost map partitions, so
// the faulty makespan stays within 5x of the clean one — nowhere near the
// rerun-everything worst case.
func TestRecoveryOverheadCeiling(t *testing.T) {
	env := testEnv(t)
	for _, seed := range []int64{1, 2, 7} {
		rows, err := Recovery(env, RecoveryParams{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ratio := RecoveryOverhead(rows)
		if ratio <= 1.0 {
			t.Errorf("seed %d: overhead ratio %.2fx, want > 1 (kills must cost something): %+v", seed, ratio, rows)
		}
		if ratio > 5.0 {
			t.Errorf("seed %d: overhead ratio %.2fx exceeds the 5x ceiling: %+v", seed, ratio, rows)
		}
		for _, r := range rows {
			if !r.Faulty && (r.ExecutorFailures != 0 || r.RecomputedTasks != 0) {
				t.Errorf("seed %d: clean row has recovery accounting: %+v", seed, r)
			}
			if r.Faulty {
				if r.ExecutorFailures == 0 {
					t.Errorf("seed %d: faulty row lost no executors; exhibit is vacuous", seed)
				}
				if r.RecomputedTasks > r.MapOutputsLost {
					t.Errorf("seed %d: recomputed %d tasks for %d lost outputs", seed, r.RecomputedTasks, r.MapOutputsLost)
				}
			}
		}
	}
}

// BenchmarkRecoveryOverhead snapshots the executor-loss recovery exhibit for
// bench-json: the overhead metric is the faulty/clean virtual makespan ratio
// of the shuffle workload under deterministic kills, averaged over 3 seeds.
func BenchmarkRecoveryOverhead(b *testing.B) {
	env, err := NewEnv(EnvConfig{
		Cluster: cluster.Config{Executors: 8, CoresPerExecutor: 1, SchedulerOverheadMS: 2, ShuffleLatencyMS: 1},
		Corpus:  SmallCorpus(1),
		Seed:    2,
	})
	if err != nil {
		b.Fatal(err)
	}
	seeds := []int64{1, 2, 7}
	var overhead, kills, lost, recomputed, resub float64
	for i := 0; i < b.N; i++ {
		overhead, kills, lost, recomputed, resub = 0, 0, 0, 0, 0
		for _, seed := range seeds {
			rows, err := Recovery(env, RecoveryParams{Seed: seed})
			if err != nil {
				b.Fatal(err)
			}
			overhead += RecoveryOverhead(rows)
			for _, r := range rows {
				if r.Faulty {
					kills += float64(r.ExecutorFailures)
					lost += float64(r.MapOutputsLost)
					recomputed += float64(r.RecomputedTasks)
					resub += float64(r.RecomputedStages)
				}
			}
		}
	}
	n := float64(len(seeds))
	b.ReportMetric(overhead/n, "overhead-ratio")
	b.ReportMetric(kills/n, "executor-kills")
	b.ReportMetric(lost/n, "map-outputs-lost")
	b.ReportMetric(recomputed/n, "recomputed-tasks")
	b.ReportMetric(resub/n, "recomputed-stages")
}
