package experiments

import (
	"testing"

	"adrdedup/internal/candgen"
)

// TestCandidatesExhibitShape runs the candidate-wall exhibit at reduced
// scale and pins its claims: the emitted candidate set is a small fraction
// of the quadratic space, the funnel only narrows
// (Scanned >= Verified >= Candidates), and the brute-force extrapolation
// prices the full quadratic space at the sampled per-pair rate.
func TestCandidatesExhibitShape(t *testing.T) {
	res, err := Candidates(CandidatesParams{
		Records: 3000, SamplePairs: 20000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPairs != candgen.TotalPairs(3000, 0) {
		t.Errorf("TotalPairs = %d", res.TotalPairs)
	}
	if res.Verified == 0 || res.Candidates == 0 {
		t.Fatalf("empty funnel: %+v", res)
	}
	if res.Scanned < res.Verified || res.Verified < res.Candidates {
		t.Errorf("funnel not narrowing: scanned %d, verified %d, candidates %d",
			res.Scanned, res.Verified, res.Candidates)
	}
	if res.ReductionX < 10 {
		t.Errorf("candidate reduction %.1fx, want >= 10x", res.ReductionX)
	}
	if res.BruteExtrapolated < res.SampleWall {
		t.Errorf("extrapolation %v below sample measurement %v",
			res.BruteExtrapolated, res.SampleWall)
	}
	// The extrapolation is linear in pair count, so the prefix path's
	// downstream share must mirror the candidate reduction exactly.
	if res.PrefixDownstream > res.BruteExtrapolated {
		t.Errorf("downstream obligation %v exceeds brute extrapolation %v",
			res.PrefixDownstream, res.BruteExtrapolated)
	}
	if res.PrefixWall <= 0 || res.PrefixTotal < res.PrefixWall {
		t.Errorf("wall accounting broken: wall %v, total %v", res.PrefixWall, res.PrefixTotal)
	}
}

// TestCandidatesModesAgree: both all-pairs partitionings emit the identical
// candidate set on the same corpus.
func TestCandidatesModesAgree(t *testing.T) {
	oneD, err := Candidates(CandidatesParams{Records: 1500, SamplePairs: 5000, Seed: 9, Mode: candgen.OneD})
	if err != nil {
		t.Fatal(err)
	}
	twoD, err := Candidates(CandidatesParams{Records: 1500, SamplePairs: 5000, Seed: 9, Mode: candgen.TwoD})
	if err != nil {
		t.Fatal(err)
	}
	if oneD.Candidates != twoD.Candidates {
		t.Errorf("1-D emitted %d candidates, 2-D %d", oneD.Candidates, twoD.Candidates)
	}
	if oneD.Verified != twoD.Verified {
		t.Errorf("1-D verified %d, 2-D %d", oneD.Verified, twoD.Verified)
	}
}

// BenchmarkCandidateGen snapshots the candidate-wall exhibit for bench-json
// at full scale: a 100k-report corpus (5.0 billion quadratic pairs), where
// the extrapolated brute-force obligation is the infeasibility line and the
// prefix-filtered generator completes outright.
func BenchmarkCandidateGen(b *testing.B) {
	var res CandidatesResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Candidates(CandidatesParams{Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Records), "records")
	b.ReportMetric(float64(res.TotalPairs), "quadratic-pairs")
	b.ReportMetric(float64(res.Verified), "verified-pairs")
	b.ReportMetric(float64(res.Candidates), "candidates")
	b.ReportMetric(res.ReductionX, "reduction-x")
	b.ReportMetric(res.PrefixWall.Seconds(), "prefix-wall-s")
	b.ReportMetric(res.PrefixTotal.Seconds(), "prefix-total-s")
	b.ReportMetric(res.BruteExtrapolated.Seconds(), "brute-extrapolated-s")
	b.ReportMetric(res.SpeedupX, "speedup-x")
}
