package experiments

import (
	"fmt"
	"io"
	"strings"

	"adrdedup/internal/adr"
	"adrdedup/internal/adrgen"
)

// Table1 prints one generated duplicate pair per perturbation mode, mirroring
// the paper's Table 1 exhibits of field-level discrepancies.
func Table1(w io.Writer, corpus *adrgen.Corpus) error {
	byMode := map[adrgen.DuplicateMode]*adrgen.DuplicatePair{}
	for i := range corpus.Duplicates {
		d := &corpus.Duplicates[i]
		if byMode[d.Mode] == nil {
			byMode[d.Mode] = d
		}
	}
	for _, mode := range []adrgen.DuplicateMode{adrgen.ChannelOverlap, adrgen.FollowUp} {
		d := byMode[mode]
		if d == nil {
			continue
		}
		a, b := corpus.Reports[d.IdxA], corpus.Reports[d.IdxB]
		fmt.Fprintf(w, "--- duplicate pair (%s) ---\n", mode)
		rows := []struct {
			name string
			av   string
			bv   string
		}{
			{"patient age", fmt.Sprint(a.CalculatedAge), fmt.Sprint(b.CalculatedAge)},
			{"patient sex", a.Sex, b.Sex},
			{"patient state", a.ResidentialState, b.ResidentialState},
			{"onset date", a.OnsetDate, b.OnsetDate},
			{"reaction outcome description", a.ReactionOutcomeDesc, b.ReactionOutcomeDesc},
			{"drug name", a.GenericNameDesc, b.GenericNameDesc},
			{"ADR name", a.MedDRAPTName, b.MedDRAPTName},
			{"report description", truncate(a.ReportDescription, 90), truncate(b.ReportDescription, 90)},
		}
		for _, r := range rows {
			marker := " "
			if r.av != r.bv {
				marker = "*"
			}
			fmt.Fprintf(w, "%s %-30s | %-50s | %s\n", marker, r.name, r.av, r.bv)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

// Table2 prints the 37-field TGA schema with the selected (bold-in-paper)
// fields marked.
func Table2(w io.Writer) {
	fmt.Fprintf(w, "%-4s %-22s %-38s %-12s %s\n", "#", "group", "field", "type", "selected")
	for i, f := range adr.Schema() {
		sel := ""
		if f.Selected {
			sel = "yes"
		}
		fmt.Fprintf(w, "%-4d %-22s %-38s %-12s %s\n", i+1, f.Group, f.Name, f.Type, sel)
	}
}

// Table3Result mirrors the paper's dataset summary.
type Table3Result struct {
	Summary        adr.Summary
	DuplicatePairs int
}

// Table3 computes the dataset summary over a corpus.
func Table3(corpus *adrgen.Corpus) (Table3Result, error) {
	db := adr.NewDatabase()
	for _, r := range corpus.Reports {
		r.ArrivalSeq = 0
		if err := db.Add(r); err != nil {
			return Table3Result{}, err
		}
	}
	return Table3Result{
		Summary:        db.Summarize(),
		DuplicatePairs: len(corpus.Duplicates),
	}, nil
}

// WriteTable3 renders the summary in the paper's layout.
func WriteTable3(w io.Writer, r Table3Result) {
	rows := [][2]string{
		{"Report Period", r.Summary.ReportPeriod},
		{"Number of cases", fmt.Sprint(r.Summary.NumCases)},
		{"Number of fields per report", fmt.Sprint(r.Summary.NumFields)},
		{"Number of unique drugs", fmt.Sprint(r.Summary.UniqueDrugs)},
		{"Number of unique ADRs", fmt.Sprint(r.Summary.UniqueADRs)},
		{"Known duplicate pairs", fmt.Sprint(r.DuplicatePairs)},
	}
	width := 0
	for _, row := range rows {
		if len(row[0]) > width {
			width = len(row[0])
		}
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%s%s  %s\n", row[0], strings.Repeat(" ", width-len(row[0])), row[1])
	}
}
