package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"adrdedup/internal/adrgen"
	"adrdedup/internal/candgen"
	"adrdedup/internal/cluster"
	"adrdedup/internal/intern"
	"adrdedup/internal/pairdist"
	"adrdedup/internal/rdd"
)

// The candidate-wall exhibit: §4.1 observes that checking reports pairwise
// is quadratic in database size, which is the wall that forces the paper
// onto a cluster. The brute-force candidate path materializes every pair
// and owes each one a distance-vector computation, so its cost is
// per-pair-vectorization × the quadratic pair count — measured here on a
// pair sample through the engine and extrapolated to the full space, since
// running it outright is the point of infeasibility. The prefix-filtered
// generator (internal/candgen) crosses the same corpus whole; the exhibit
// reports its funnel, wall-clock, and the candidate-count reduction that
// shrinks the downstream vectorize/classify obligation.

// CandidatesParams configures the exhibit.
type CandidatesParams struct {
	// Records is the corpus size (default 100,000 — an order past the
	// paper's 10,382-report TGA corpus).
	Records int
	// Theta is the signature-similarity threshold (default 0.5, the
	// detector's DefaultCandidateTheta).
	Theta float64
	// Partitions is the generation parallelism (default 25, the paper's
	// executor count).
	Partitions int
	// Mode is the all-pairs partitioning (default 1-D).
	Mode candgen.Mode
	// SamplePairs is the number of random pairs vectorized to price the
	// brute-force path's per-pair cost (default 200,000).
	SamplePairs int
	Seed        int64
}

func (p CandidatesParams) withDefaults() CandidatesParams {
	if p.Records <= 0 {
		p.Records = 100000
	}
	if p.Theta <= 0 {
		p.Theta = 0.5
	}
	if p.Partitions <= 0 {
		p.Partitions = 25
	}
	if p.SamplePairs <= 0 {
		p.SamplePairs = 200000
	}
	if max := candgen.TotalPairs(p.Records, 0); int64(p.SamplePairs) > max {
		p.SamplePairs = int(max)
	}
	return p
}

// CandidatesResult is the exhibit's measurement.
type CandidatesResult struct {
	Records    int
	Theta      float64
	Mode       string
	Partitions int

	// TotalPairs is the quadratic search space; Scanned/Verified/Candidates
	// are the generator's shrinking funnel (length-bound survivors, exact
	// verifications, emitted candidates).
	TotalPairs   int64
	IndexEntries int64
	Scanned      int64
	Verified     int64
	Candidates   int64
	// ReductionX is TotalPairs / Candidates: the shrink factor between the
	// quadratic enumeration and the candidate set actually handed to the
	// downstream vectorize/classify stages. (Verified records the
	// generator's own exact-check workload; its cost is inside PrefixWall.)
	ReductionX float64

	// PrefixWall is the measured wall-clock of the staged prefix generator
	// over the whole corpus; PrefixDownstream prices the vectorization its
	// candidate set still owes (per-pair rate × Candidates); PrefixTotal is
	// their sum — the end-to-end cost of the prefix path.
	PrefixWall       time.Duration
	PrefixDownstream time.Duration
	PrefixTotal      time.Duration
	// SamplePairs random pairs were vectorized through the engine in
	// SampleWall to price the per-pair cost; BruteExtrapolated scales that
	// rate to the full quadratic space — the brute-force candidate path's
	// obligation.
	SamplePairs       int
	SampleWall        time.Duration
	BruteExtrapolated time.Duration
	// SpeedupX is BruteExtrapolated / PrefixTotal.
	SpeedupX float64
}

// samplePairs draws m distinct-member pairs uniformly at random — the
// deterministic sample whose vectorization prices the brute path's per-pair
// cost.
func samplePairs(n, m int, seed int64) []pairdist.IDPair {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]pairdist.IDPair, m)
	for i := range pairs {
		a, b := rng.Intn(n), rng.Intn(n-1)
		if b >= a {
			b++
		}
		if a > b {
			a, b = b, a
		}
		pairs[i] = pairdist.IDPair{A: a, B: b}
	}
	return pairs
}

// Candidates generates a Records-sized corpus, extracts signature sets, runs
// the prefix-filtered generator whole, and prices the brute-force path by
// vectorizing a random pair sample and extrapolating to the quadratic space.
func Candidates(p CandidatesParams) (CandidatesResult, error) {
	p = p.withDefaults()
	var res CandidatesResult
	res.Records = p.Records
	res.Theta = p.Theta
	res.Mode = p.Mode.String()
	res.Partitions = p.Partitions
	res.SamplePairs = p.SamplePairs

	// Corpus scaled from the paper's Table 3 shape: duplicates grow
	// linearly with the report count, lexicons by Heaps' law (~√n — a
	// bigger spontaneous-reporting database sees more distinct drugs and
	// reactions, sublinearly), and campaigns linearly (about 17 reports
	// per campaign at the default fraction — a real database accumulates
	// more campaigns, not ever-larger ones; either fixed-size choice would
	// grow quadratic near-duplicate mass that no generator could shrink).
	heaps := math.Sqrt(float64(p.Records) / 10382)
	if heaps < 1 {
		heaps = 1
	}
	corpus := adrgen.Generate(adrgen.Config{
		NumReports:     p.Records,
		DuplicatePairs: p.Records / 36,
		NumDrugs:       int(1366 * heaps),
		NumADRs:        int(2351 * heaps),
		Campaigns:      p.Records/50 + 1,
		Seed:           p.Seed,
	})
	cfg := DefaultCluster()
	cfg.Seed = p.Seed
	ctx := rdd.NewContext(cluster.New(cfg))
	it := intern.New()
	feats, err := pairdist.ExtractAllWith(ctx, it, corpus.Reports, p.Partitions)
	if err != nil {
		return res, fmt.Errorf("experiments: extracting features: %w", err)
	}
	sigs, err := candgen.Signatures(feats)
	if err != nil {
		return res, fmt.Errorf("experiments: building signatures: %w", err)
	}

	res.TotalPairs = candgen.TotalPairs(len(sigs), 0)

	start := time.Now()
	pairs, st, err := candgen.Pairs(ctx, sigs, candgen.Params{
		Theta: p.Theta, Partitions: p.Partitions, Mode: p.Mode,
	})
	if err != nil {
		return res, fmt.Errorf("experiments: prefix generation: %w", err)
	}
	res.PrefixWall = time.Since(start)
	res.IndexEntries = st.IndexEntries
	res.Scanned = st.Scanned
	res.Verified = st.Verified
	res.Candidates = int64(len(pairs))
	if res.Candidates > 0 {
		res.ReductionX = float64(res.TotalPairs) / float64(res.Candidates)
	}

	// Price the per-pair vectorization through the same engine the brute
	// path would use, then extrapolate linearly by pair count: the brute
	// candidate path owes this for every pair in the quadratic space, the
	// prefix path only for its emitted candidates.
	sample := samplePairs(len(sigs), p.SamplePairs, p.Seed+1)
	start = time.Now()
	if _, err := pairdist.ComputeVectors(ctx, feats, sample, p.Partitions); err != nil {
		return res, fmt.Errorf("experiments: vectorizing pair sample: %w", err)
	}
	res.SampleWall = time.Since(start)
	perPair := float64(res.SampleWall) / float64(len(sample))
	res.BruteExtrapolated = time.Duration(perPair * float64(res.TotalPairs))
	res.PrefixDownstream = time.Duration(perPair * float64(res.Candidates))
	res.PrefixTotal = res.PrefixWall + res.PrefixDownstream
	if res.PrefixTotal > 0 {
		res.SpeedupX = float64(res.BruteExtrapolated) / float64(res.PrefixTotal)
	}
	return res, nil
}
