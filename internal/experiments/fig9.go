package experiments

import (
	"time"

	"adrdedup/internal/core"
)

// Fig9Params configures the training-size scalability sweep (paper Fig. 9:
// execution time grows 1.4-2.1x when the training set grows 5x, for block
// numbers 4, 8, 12).
type Fig9Params struct {
	// TrainSizes to sweep (paper: 1M-5M; default 100k-500k).
	TrainSizes []int
	// BlockNumbers are the testing-set partition counts c (paper: 4, 8, 12).
	BlockNumbers []int
	TestSize     int
	K, B         int
	HardFraction float64
	Seed         int64
}

func (p Fig9Params) withDefaults() Fig9Params {
	if len(p.TrainSizes) == 0 {
		p.TrainSizes = []int{100_000, 200_000, 300_000, 400_000, 500_000}
	}
	if len(p.BlockNumbers) == 0 {
		p.BlockNumbers = []int{4, 8, 12}
	}
	if p.TestSize <= 0 {
		p.TestSize = 10_000
	}
	if p.K <= 0 {
		p.K = 9
	}
	if p.B <= 0 {
		p.B = 32
	}
	if p.HardFraction <= 0 {
		p.HardFraction = 0.3
	}
	return p
}

// Fig9Point is one (training size, block number) measurement.
type Fig9Point struct {
	TrainPairs    int
	BlockNumber   int
	ExecutionTime time.Duration
}

// Fig9 sweeps training size per block number, reporting classification
// virtual time.
func Fig9(env *Env, p Fig9Params) ([]Fig9Point, error) {
	p = p.withDefaults()
	var out []Fig9Point
	for _, size := range p.TrainSizes {
		data, err := env.BuildPairData(size, p.TestSize, p.HardFraction, p.Seed)
		if err != nil {
			return nil, err
		}
		for _, c := range p.BlockNumbers {
			clf, err := core.Train(env.Ctx, data.Train, core.Config{K: p.K, B: p.B, C: c, Seed: p.Seed})
			if err != nil {
				return nil, err
			}
			_, stats, err := clf.Classify(data.TestVecs)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig9Point{TrainPairs: size, BlockNumber: c, ExecutionTime: stats.VirtualTime})
		}
	}
	return out, nil
}
