package experiments

import (
	"time"

	"adrdedup/internal/adrgen"
	"adrdedup/internal/core"
	"adrdedup/internal/eval"
	"adrdedup/internal/knn"
	"adrdedup/internal/pairdist"
)

// AblationParams configures the design-choice ablations DESIGN.md calls out.
type AblationParams struct {
	TrainSize, TestSize int
	K, B, C             int
	HardFraction        float64
	Seed                int64
}

func (p AblationParams) withDefaults() AblationParams {
	if p.TrainSize <= 0 {
		p.TrainSize = 200_000
	}
	if p.TestSize <= 0 {
		p.TestSize = 10_000
	}
	if p.K <= 0 {
		p.K = 9
	}
	if p.B <= 0 {
		p.B = 32
	}
	if p.C <= 0 {
		p.C = 8
	}
	if p.HardFraction <= 0 {
		p.HardFraction = 0.3
	}
	return p
}

// AblationRow is one variant measurement.
type AblationRow struct {
	Variant                 string
	AUPR                    float64
	IntraClusterComparisons int64
	CrossClusterComparisons int64
	AdditionalClusters      int64
	ExecutionTime           time.Duration
}

// Ablation runs the Fast kNN design ablations:
//
//   - "fast-knn": the full method;
//   - "majority-vote": Eq. 1 voting instead of Eq. 5 inverse-distance
//     weighting (the imbalance-robust scoring is the point of §4.3);
//   - "no-partition-pruning": cross-cluster stage searches every partition
//     (the naive strategy of §4.3.1) instead of applying Algorithm 1;
//   - "no-positive-shortcut": cross-cluster stage runs for every testing
//     pair instead of only those whose top-k contains a positive
//     (observations 1-3);
//   - "random-partition": uniform random partitioning instead of k-means
//     Voronoi cells (observation 4 loses its geometric basis, so every
//     partition must be searched).
func Ablation(env *Env, p AblationParams) ([]AblationRow, error) {
	p = p.withDefaults()
	data, err := env.BuildPairData(p.TrainSize, p.TestSize, p.HardFraction, p.Seed)
	if err != nil {
		return nil, err
	}
	base := core.Config{K: p.K, B: p.B, C: p.C, Seed: p.Seed}

	variants := []struct {
		name string
		cfg  core.Config
		vote bool
	}{
		{name: "fast-knn", cfg: base},
		{name: "majority-vote", cfg: base, vote: true},
		{name: "no-partition-pruning", cfg: withFlag(base, func(c *core.Config) { c.DisablePartitionPruning = true })},
		{name: "no-positive-shortcut", cfg: withFlag(base, func(c *core.Config) { c.DisablePositiveShortcut = true })},
		{name: "random-partition", cfg: withFlag(base, func(c *core.Config) { c.RandomPartition = true })},
		{name: "kdtree-local-index", cfg: withFlag(base, func(c *core.Config) { c.LocalIndex = true })},
	}

	var out []AblationRow
	for _, v := range variants {
		clf, err := core.Train(env.Ctx, data.Train, v.cfg)
		if err != nil {
			return nil, err
		}
		results, stats, err := clf.Classify(data.TestVecs)
		if err != nil {
			return nil, err
		}
		scores := make([]float64, len(results))
		for _, r := range results {
			if v.vote {
				scores[r.ID] = voteScore(r.Neighbors)
			} else {
				scores[r.ID] = r.Score
			}
		}
		aupr, err := eval.AUPR(scores, data.TestLabels)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationRow{
			Variant:                 v.name,
			AUPR:                    aupr,
			IntraClusterComparisons: stats.IntraClusterComparisons,
			CrossClusterComparisons: stats.CrossClusterComparisons,
			AdditionalClusters:      stats.AdditionalClustersChecked,
			ExecutionTime:           stats.VirtualTime,
		})
	}
	return out, nil
}

func withFlag(cfg core.Config, set func(*core.Config)) core.Config {
	set(&cfg)
	return cfg
}

// TextMetricRow is one field-metric measurement.
type TextMetricRow struct {
	Metric string
	AUPR   float64
}

// TextMetricAblation compares the paper's Jaccard field distance against a
// cosine alternative: pair vectors are recomputed under each metric and the
// same Fast kNN configuration is evaluated on both.
func TextMetricAblation(env *Env, p AblationParams) ([]TextMetricRow, error) {
	p = p.withDefaults()
	trainIDs, err := env.Corpus.SamplePairs(adrgen.PairSampleOptions{
		Total: p.TrainSize, Positives: env.TrainDups, HardFraction: p.HardFraction, Seed: p.Seed,
	})
	if err != nil {
		return nil, err
	}
	testIDs, err := env.Corpus.SamplePairs(adrgen.PairSampleOptions{
		Total: p.TestSize, Positives: env.TestDups, HardFraction: p.HardFraction, Seed: p.Seed + 1,
	})
	if err != nil {
		return nil, err
	}

	var out []TextMetricRow
	for _, metric := range []pairdist.TextMetric{pairdist.JaccardMetric, pairdist.CosineMetric} {
		train := make([]core.TrainingPair, len(trainIDs))
		for i, id := range trainIDs {
			train[i] = core.TrainingPair{
				Vec:   pairdist.DistanceWith(env.Feats[id.A], env.Feats[id.B], metric),
				Label: id.Label,
			}
		}
		testVecs := make([][]float64, len(testIDs))
		testLabels := make([]int, len(testIDs))
		for i, id := range testIDs {
			testVecs[i] = pairdist.DistanceWith(env.Feats[id.A], env.Feats[id.B], metric)
			testLabels[i] = id.Label
		}
		clf, err := core.Train(env.Ctx, train, core.Config{K: p.K, B: p.B, C: p.C, Seed: p.Seed})
		if err != nil {
			return nil, err
		}
		results, _, err := clf.Classify(testVecs)
		if err != nil {
			return nil, err
		}
		scores := make([]float64, len(results))
		for _, r := range results {
			scores[r.ID] = r.Score
		}
		aupr, err := eval.AUPR(scores, testLabels)
		if err != nil {
			return nil, err
		}
		out = append(out, TextMetricRow{Metric: metric.String(), AUPR: aupr})
	}
	return out, nil
}

// voteScore is the Eq. 1 majority vote: the sum of neighbor labels. It
// ignores distances, which is exactly what makes it fragile under extreme
// imbalance.
func voteScore(neighbors []knn.Neighbor) float64 {
	s := 0.0
	for _, n := range neighbors {
		s += float64(n.Label)
	}
	return s
}
