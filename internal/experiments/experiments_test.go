package experiments

import (
	"strings"
	"testing"

	"adrdedup/internal/cluster"
)

// testEnv builds a small, fast environment shared across tests.
func testEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(EnvConfig{
		Cluster: cluster.Config{Executors: 8, CoresPerExecutor: 1, SchedulerOverheadMS: 2, ShuffleLatencyMS: 1},
		Corpus:  SmallCorpus(1),
		Seed:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestBuildPairDataShape(t *testing.T) {
	env := testEnv(t)
	data, err := env.BuildPairData(5000, 1000, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Train) != 5000 || len(data.TestVecs) != 1000 || len(data.TestLabels) != 1000 {
		t.Fatalf("sizes: %d/%d/%d", len(data.Train), len(data.TestVecs), len(data.TestLabels))
	}
	trainPos, testPos := 0, 0
	for _, p := range data.Train {
		if p.Label == +1 {
			trainPos++
		}
	}
	for _, l := range data.TestLabels {
		if l == +1 {
			testPos++
		}
	}
	if trainPos != len(env.TrainDups) {
		t.Errorf("train positives = %d, want %d", trainPos, len(env.TrainDups))
	}
	if testPos != len(env.TestDups) {
		t.Errorf("test positives = %d, want %d", testPos, len(env.TestDups))
	}
}

func TestFig5ShapeKNNBeatsSVM(t *testing.T) {
	env := testEnv(t)
	res, err := Fig5(env, Fig5Params{TrainSizes: []int{20_000, 40_000}, TestSize: 5_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.AUPRKNN <= p.AUPRSVM {
			t.Errorf("train=%d: kNN AUPR %.3f not above SVM %.3f (paper's headline result)",
				p.TrainPairs, p.AUPRKNN, p.AUPRSVM)
		}
		if p.AUPRKNN < 0.5 {
			t.Errorf("kNN AUPR %.3f unreasonably low", p.AUPRKNN)
		}
	}
	if res.ImprovementOverSVM <= 0 {
		t.Errorf("mean improvement = %.3f, want positive", res.ImprovementOverSVM)
	}
	if res.CurveLargest["kNN"] == nil || res.CurveSmall["SVM"] == nil {
		t.Error("PR curves missing")
	}
}

func TestFig6ShapeFlatAUPRGrowingTime(t *testing.T) {
	env := testEnv(t)
	points, err := Fig6(env, Fig6Params{
		Ks: []int{5, 13, 21}, TrainSize: 40_000, TestSize: 4_000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Fig. 6(a): AUPR varies little with k.
	lo, hi := points[0].AUPR, points[0].AUPR
	for _, p := range points {
		if p.AUPR < lo {
			lo = p.AUPR
		}
		if p.AUPR > hi {
			hi = p.AUPR
		}
	}
	if hi-lo > 0.25 {
		t.Errorf("AUPR swing %.3f-%.3f too large; paper reports insensitivity to k", lo, hi)
	}
	// Fig. 6(b): larger k means more partitions checked.
	if points[2].CrossChecked < points[0].CrossChecked {
		t.Errorf("k=21 checked %d additional clusters, k=5 checked %d; want non-decreasing",
			points[2].CrossChecked, points[0].CrossChecked)
	}
}

func TestFig7ShapeComparisonTradeoff(t *testing.T) {
	env := testEnv(t)
	points, err := Fig7(env, Fig7Params{
		Bs: []int{5, 20, 40}, TrainSize: 40_000, TestSize: 4_000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 7(a): intra-cluster comparisons decrease with b.
	if points[2].IntraClusterComparisons >= points[0].IntraClusterComparisons {
		t.Errorf("intra comparisons should fall with b: %d (b=5) -> %d (b=40)",
			points[0].IntraClusterComparisons, points[2].IntraClusterComparisons)
	}
	// Fig. 7(b): additional clusters checked increase with b.
	if points[2].AdditionalClustersChecked <= points[0].AdditionalClustersChecked {
		t.Errorf("additional clusters should grow with b: %d (b=5) -> %d (b=40)",
			points[0].AdditionalClustersChecked, points[2].AdditionalClustersChecked)
	}
	// Fig. 8(a): the cross/intra ratio stays small.
	for _, p := range points {
		if p.CrossIntraRatio > 0.5 {
			t.Errorf("b=%d: cross/intra ratio %.3f too large", p.B, p.CrossIntraRatio)
		}
	}
}

func TestFig7MemoryPressureAtSmallB(t *testing.T) {
	env := testEnv(t)
	points, err := Fig7(env, Fig7Params{
		Bs: []int{4, 40}, TrainSize: 60_000, TestSize: 2_000, Seed: 6,
		PressureMemoryMB: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].PressureEvents == 0 {
		t.Error("small b should overrun 1MB executors (Fig. 8(b) regime)")
	}
	if points[1].PressureEvents > points[0].PressureEvents {
		t.Error("large b should relieve memory pressure")
	}
}

func TestFig9ShapeSublinearGrowth(t *testing.T) {
	env := testEnv(t)
	points, err := Fig9(env, Fig9Params{
		TrainSizes:   []int{20_000, 60_000},
		BlockNumbers: []int{4, 8},
		TestSize:     3_000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	// Time grows with training size per block number.
	byBlock := map[int][]Fig9Point{}
	for _, p := range points {
		byBlock[p.BlockNumber] = append(byBlock[p.BlockNumber], p)
	}
	for c, ps := range byBlock {
		if ps[1].ExecutionTime <= ps[0].ExecutionTime/2 {
			t.Errorf("block=%d: time did not grow with training size: %v -> %v",
				c, ps[0].ExecutionTime, ps[1].ExecutionTime)
		}
	}
}

func TestFig10ShapeExecutorScaling(t *testing.T) {
	env := testEnv(t)
	// DistancePairs must be large enough that the distance stage stays
	// compute-dominated: the interned merge-scan kernel cut per-pair cost
	// by an order of magnitude, so at the old 20k pairs the fixed per-stage
	// scheduler overhead swamped the speedup 16 executors buy.
	points, err := Fig10(env, Fig10Params{
		Executors:     []int{2, 16},
		TrainSizes:    []int{60_000},
		TestSize:      4_000,
		DistancePairs: 60_000,
		Seed:          8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	if points[1].ExecutionTime >= points[0].ExecutionTime {
		t.Errorf("16 executors (%v) not faster than 2 (%v)",
			points[1].ExecutionTime, points[0].ExecutionTime)
	}
	if points[1].DistanceTime >= points[0].DistanceTime {
		t.Errorf("distance stage should speed up with executors: %v -> %v",
			points[0].DistanceTime, points[1].DistanceTime)
	}
	// Fig. 10(b): the distance stage is a small share of the total.
	if points[0].DistanceTime > points[0].ExecutionTime {
		t.Errorf("distance time %v exceeds classification time %v",
			points[0].DistanceTime, points[0].ExecutionTime)
	}
}

func TestFig11ShapePruningNeverLosesDuplicates(t *testing.T) {
	env := testEnv(t)
	points, err := Fig11(env, Fig11Params{
		Thresholds: []float64{0.3, 0.9},
		TrainSize:  20_000, TestSize: 5_000,
		PositiveClusters: 8, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	baseline := points[0]
	if baseline.Threshold != -1 || baseline.IncludedFraction != 1 {
		t.Errorf("baseline row = %+v", baseline)
	}
	// Tighter thresholds include fewer pairs; generous thresholds
	// approach 100%.
	if points[1].IncludedFraction > points[2].IncludedFraction {
		t.Errorf("0.3 includes %.2f but 0.9 includes %.2f; want monotone",
			points[1].IncludedFraction, points[2].IncludedFraction)
	}
	if points[1].IncludedFraction >= 0.999 {
		t.Error("threshold 0.3 pruned nothing; sweep is vacuous")
	}
	// The paper reports no true duplicate pruned at any threshold; at
	// this test's reduced scale (40 training positives instead of ~140)
	// the positive clusters under-cover the duplicate modes, so we assert
	// the paper's property at the generous threshold and bound the loss
	// at the tight one.
	testPos := len(env.TestDups)
	if last := points[len(points)-1]; last.TrueDuplicatesPruned != 0 {
		t.Errorf("f(theta)=%.1f pruned %d true duplicates; paper reports none",
			last.Threshold, last.TrueDuplicatesPruned)
	}
	if tight := points[1]; tight.TrueDuplicatesPruned > testPos/4 {
		t.Errorf("f(theta)=%.1f pruned %d of %d true duplicates",
			tight.Threshold, tight.TrueDuplicatesPruned, testPos)
	}
}

func TestAblationShapes(t *testing.T) {
	env := testEnv(t)
	rows, err := Ablation(env, AblationParams{TrainSize: 30_000, TestSize: 4_000, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	full := byName["fast-knn"]
	// Weighted scoring and majority voting trade blows on rank-based AUPR
	// (weighting wins on decision quality, where magnitudes matter); the
	// guard here is that weighting is never materially worse.
	if full.AUPR < byName["majority-vote"].AUPR-0.05 {
		t.Errorf("weighted scoring (%.3f) far below majority vote (%.3f)",
			full.AUPR, byName["majority-vote"].AUPR)
	}
	if byName["no-partition-pruning"].CrossClusterComparisons <= full.CrossClusterComparisons {
		t.Error("disabling Algorithm 1 should increase cross-cluster comparisons")
	}
	if byName["random-partition"].CrossClusterComparisons <= full.CrossClusterComparisons {
		t.Error("random partitioning should increase cross-cluster comparisons")
	}
}

func TestTextMetricAblation(t *testing.T) {
	env := testEnv(t)
	rows, err := TextMetricAblation(env, AblationParams{TrainSize: 20_000, TestSize: 3_000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Metric != "jaccard" || rows[1].Metric != "cosine" {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.AUPR < 0.3 || r.AUPR > 1 {
			t.Errorf("%s AUPR = %.3f out of plausible range", r.Metric, r.AUPR)
		}
	}
}

func TestLoadBalanceLPTNotWorse(t *testing.T) {
	env := testEnv(t)
	rows, err := LoadBalance(env, LoadBalanceParams{
		TrainSize: 40_000, TestSize: 3_000, B: 24, Executors: 8, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Policy != "fifo" || rows[1].Policy != "lpt" {
		t.Fatalf("rows = %+v", rows)
	}
	// LPT packs the straggler clusters first; on skewed Voronoi cells it
	// should not be materially slower than FIFO. Task durations are
	// measured real time, so the two runs execute (and time) the
	// workload independently — under host CPU contention either run can
	// measure arbitrarily slower, so only a loose sanity bound is
	// asserted here; the deterministic makespan guarantee (LPT never
	// worse on identical durations, optimal on the adversarial example)
	// is covered by the scheduler unit tests in internal/cluster.
	if float64(rows[1].ExecutionTime) > 3*float64(rows[0].ExecutionTime) {
		t.Errorf("LPT (%v) wildly slower than FIFO (%v)", rows[1].ExecutionTime, rows[0].ExecutionTime)
	}
	for _, row := range rows {
		if row.ExecutionTime <= 0 {
			t.Errorf("policy %s reported no execution time", row.Policy)
		}
	}
}

func TestTables(t *testing.T) {
	env := testEnv(t)
	var sb strings.Builder
	if err := Table1(&sb, env.Corpus); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "channel-overlap") || !strings.Contains(sb.String(), "follow-up") {
		t.Error("Table 1 missing a duplicate mode exhibit")
	}

	sb.Reset()
	Table2(&sb)
	if !strings.Contains(sb.String(), "MedDRA PT code") || !strings.Contains(sb.String(), "report description") {
		t.Error("Table 2 missing fields")
	}

	res, err := Table3(env.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.NumCases != 2000 || res.DuplicatePairs != 80 {
		t.Errorf("table 3 = %+v", res)
	}
	sb.Reset()
	WriteTable3(&sb, res)
	out := sb.String()
	if !strings.Contains(out, "Known duplicate pairs") || !strings.Contains(out, "80") {
		t.Errorf("table 3 output:\n%s", out)
	}
}
