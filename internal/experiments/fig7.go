package experiments

import (
	"time"

	"adrdedup/internal/cluster"
	"adrdedup/internal/core"
)

// Fig7Params configures the cluster-number sweep (paper Figs. 7 and 8).
type Fig7Params struct {
	// Bs are the training cluster counts to sweep (paper: 10-70).
	Bs []int
	// TrainSize and TestSize (paper: 4M and 10,000; default 400k / 10k).
	TrainSize, TestSize int
	K, C                int
	HardFraction        float64
	Seed                int64
	// PressureMemoryMB enables the Fig. 8(b) memory model: executor
	// memory small enough that low cluster numbers overrun it (joined
	// partitions spill, time out, and retry). 0 disables pressure.
	PressureMemoryMB int
}

func (p Fig7Params) withDefaults() Fig7Params {
	if len(p.Bs) == 0 {
		p.Bs = []int{10, 25, 40, 55, 70}
	}
	if p.TrainSize <= 0 {
		p.TrainSize = 400_000
	}
	if p.TestSize <= 0 {
		p.TestSize = 10_000
	}
	if p.K <= 0 {
		p.K = 9
	}
	if p.C <= 0 {
		p.C = 8
	}
	if p.HardFraction <= 0 {
		p.HardFraction = 0.3
	}
	return p
}

// Fig7Point is one cluster-number measurement, covering Figs. 7(a)-(c) and
// 8(a)-(b).
type Fig7Point struct {
	B                         int
	IntraClusterComparisons   int64
	AdditionalClustersChecked int64
	CrossClusterComparisons   int64
	CrossIntraRatio           float64
	ExecutionTime             time.Duration
	PressureEvents            int64
	TaskRetries               int64
}

// Fig7 sweeps the training cluster number b and reports the comparison
// counts (Fig. 7), the cross/intra ratio (Fig. 8(a)), and the virtual
// execution time (Fig. 8(b)).
func Fig7(env *Env, p Fig7Params) ([]Fig7Point, error) {
	p = p.withDefaults()
	data, err := env.BuildPairData(p.TrainSize, p.TestSize, p.HardFraction, p.Seed)
	if err != nil {
		return nil, err
	}
	var out []Fig7Point
	for _, b := range p.Bs {
		if p.PressureMemoryMB > 0 {
			cfg := env.Ctx.Cluster().Config()
			cfg.MemoryPerExecutorMB = p.PressureMemoryMB
			cfg.PressureTimeouts = true
			env.ResetEngine(cfg)
		}
		clf, err := core.Train(env.Ctx, data.Train, core.Config{K: p.K, B: b, C: p.C, Seed: p.Seed})
		if err != nil {
			return nil, err
		}
		metricsBefore := env.Ctx.Cluster().Metrics().Snapshot()
		_, stats, err := clf.Classify(data.TestVecs)
		if err != nil {
			return nil, err
		}
		metricsAfter := env.Ctx.Cluster().Metrics().Snapshot()
		point := Fig7Point{
			B:                         b,
			IntraClusterComparisons:   stats.IntraClusterComparisons,
			AdditionalClustersChecked: stats.AdditionalClustersChecked,
			CrossClusterComparisons:   stats.CrossClusterComparisons,
			ExecutionTime:             stats.VirtualTime,
			PressureEvents:            metricsAfter.PressureEvents - metricsBefore.PressureEvents,
			TaskRetries:               metricsAfter.TaskFailures - metricsBefore.TaskFailures,
		}
		if stats.IntraClusterComparisons > 0 {
			point.CrossIntraRatio = float64(stats.CrossClusterComparisons) /
				float64(stats.IntraClusterComparisons)
		}
		out = append(out, point)
	}
	return out, nil
}

// Fig8MemoryConfig returns a cluster config whose executor memory reproduces
// the paper's Fig. 8(b) regime at this library's default scale: joined
// partitions fit comfortably for b >= ~25 and overrun memory below that.
func Fig8MemoryConfig(base cluster.Config, trainSize int) cluster.Config {
	// One negative block is ~trainSize/b pairs x ~72 bytes. At the
	// default 400k training pairs, 1MB executors start thrashing below
	// b ~= 28, matching the paper's "below 25" observation.
	base.MemoryPerExecutorMB = 1
	base.PressureTimeouts = true
	return base
}
