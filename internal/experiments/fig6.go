package experiments

import (
	"time"

	"adrdedup/internal/core"
	"adrdedup/internal/eval"
)

// Fig6Params configures the k sweep (paper Fig. 6: AUPR nearly flat in k;
// execution time grows ~31% from k=5 to k=21).
type Fig6Params struct {
	// Ks are the neighbor counts to sweep (paper: 5, 9, 13, 17, 21).
	Ks []int
	// TrainSize and TestSize (paper: 3M and 10,000; default 300k / 10k).
	TrainSize, TestSize int
	B, C                int
	HardFraction        float64
	Seed                int64
}

func (p Fig6Params) withDefaults() Fig6Params {
	if len(p.Ks) == 0 {
		p.Ks = []int{5, 9, 13, 17, 21}
	}
	if p.TrainSize <= 0 {
		p.TrainSize = 300_000
	}
	if p.TestSize <= 0 {
		p.TestSize = 10_000
	}
	if p.B <= 0 {
		p.B = 32
	}
	if p.C <= 0 {
		p.C = 8
	}
	if p.HardFraction <= 0 {
		p.HardFraction = 0.3
	}
	return p
}

// Fig6Point is one k measurement.
type Fig6Point struct {
	K             int
	AUPR          float64
	ExecutionTime time.Duration // virtual cluster time of classification
	CrossChecked  int64         // additional partitions examined
}

// Fig6 sweeps k, reporting AUPR (Fig. 6(a)) and classification execution
// time (Fig. 6(b)).
func Fig6(env *Env, p Fig6Params) ([]Fig6Point, error) {
	p = p.withDefaults()
	data, err := env.BuildPairData(p.TrainSize, p.TestSize, p.HardFraction, p.Seed)
	if err != nil {
		return nil, err
	}
	var out []Fig6Point
	for _, k := range p.Ks {
		clf, err := core.Train(env.Ctx, data.Train, core.Config{K: k, B: p.B, C: p.C, Seed: p.Seed})
		if err != nil {
			return nil, err
		}
		results, stats, err := clf.Classify(data.TestVecs)
		if err != nil {
			return nil, err
		}
		scores := make([]float64, len(results))
		for _, r := range results {
			scores[r.ID] = r.Score
		}
		aupr, err := eval.AUPR(scores, data.TestLabels)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig6Point{
			K:             k,
			AUPR:          aupr,
			ExecutionTime: stats.VirtualTime,
			CrossChecked:  stats.AdditionalClustersChecked,
		})
	}
	return out, nil
}
