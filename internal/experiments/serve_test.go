package experiments

import (
	"testing"
)

// TestServeExhibitShape runs the serving exhibit at reduced scale and pins
// its claims: every report lands exactly once, nothing errors, duplicates
// are found, and the server's counters agree with the client's.
func TestServeExhibitShape(t *testing.T) {
	res, err := ServeLoad(ServeParams{
		SeedReports: 400, SeedDuplicates: 20, TrainPairs: 400,
		Reports: 2000, BatchSize: 200, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Load.Sent != 2000 || res.Load.Errors != 0 {
		t.Fatalf("load sent=%d errors=%d, want 2000/0", res.Load.Sent, res.Load.Errors)
	}
	if res.Stats.Ingested != 2000 {
		t.Errorf("server ingested %d, want 2000", res.Stats.Ingested)
	}
	if res.Load.Matched == 0 {
		t.Error("sustained ingest flagged no duplicates; exhibit would be vacuous")
	}
	if res.Load.Matched != res.Stats.Matched {
		t.Errorf("client saw %d matches, server counted %d", res.Load.Matched, res.Stats.Matched)
	}
	if res.Stats.DatabaseReports != 400+2000 {
		t.Errorf("final database %d reports, want %d", res.Stats.DatabaseReports, 2400)
	}
	if res.Load.Latency.P99MS <= 0 || res.Load.Reports <= 0 {
		t.Errorf("degenerate exhibit metrics: p99=%.2fms throughput=%.0f/s",
			res.Load.Latency.P99MS, res.Load.Reports)
	}
}

// BenchmarkServeSustained snapshots the serving exhibit for bench-json: a
// 30k-report stream pushed over HTTP at the bootstrapped service, reporting
// end-to-end ingest throughput and client-observed latency percentiles.
func BenchmarkServeSustained(b *testing.B) {
	var res ServeResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = ServeLoad(ServeParams{Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Load.Sent), "reports")
	b.ReportMetric(res.Load.Reports, "reports/s")
	b.ReportMetric(res.Load.Latency.P50MS, "p50-ms")
	b.ReportMetric(res.Load.Latency.P95MS, "p95-ms")
	b.ReportMetric(res.Load.Latency.P99MS, "p99-ms")
	b.ReportMetric(float64(res.Load.Matched), "matched")
	b.ReportMetric(float64(res.Stats.QueueFullRejects), "throttled-429s")
	b.ReportMetric(res.SeedDuration.Seconds(), "seed-s")
	b.ReportMetric(res.TrainDuration.Seconds(), "train-s")
}
