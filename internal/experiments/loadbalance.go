package experiments

import (
	"time"

	"adrdedup/internal/cluster"
	"adrdedup/internal/core"
)

// LoadBalanceParams configures the FIFO-vs-LPT scheduling comparison — the
// load balancing the paper's §7 names as future work. The gain appears when
// task durations are skewed, which is exactly what uneven Voronoi cluster
// sizes produce (the paper blames them for the Fig. 7/8 upticks at b = 70).
type LoadBalanceParams struct {
	TrainSize, TestSize int
	K, B, C             int
	// Executors is deliberately close to the cluster count so one
	// oversized cluster straggles.
	Executors    int
	HardFraction float64
	Seed         int64
}

func (p LoadBalanceParams) withDefaults() LoadBalanceParams {
	if p.TrainSize <= 0 {
		p.TrainSize = 200_000
	}
	if p.TestSize <= 0 {
		p.TestSize = 10_000
	}
	if p.K <= 0 {
		p.K = 9
	}
	if p.B <= 0 {
		p.B = 48
	}
	if p.C <= 0 {
		p.C = 8
	}
	if p.Executors <= 0 {
		p.Executors = 16
	}
	if p.HardFraction <= 0 {
		p.HardFraction = 0.3
	}
	return p
}

// LoadBalanceRow is one scheduling-policy measurement.
type LoadBalanceRow struct {
	Policy        string
	ExecutionTime time.Duration
}

// LoadBalance runs the identical classification workload under FIFO and LPT
// scheduling and reports the virtual execution times.
func LoadBalance(env *Env, p LoadBalanceParams) ([]LoadBalanceRow, error) {
	p = p.withDefaults()
	data, err := env.BuildPairData(p.TrainSize, p.TestSize, p.HardFraction, p.Seed)
	if err != nil {
		return nil, err
	}
	baseCfg := env.Ctx.Cluster().Config()
	baseCfg.Executors = p.Executors
	var out []LoadBalanceRow
	for _, policy := range []cluster.SchedulePolicy{cluster.ScheduleFIFO, cluster.ScheduleLPT} {
		cfg := baseCfg
		cfg.Scheduling = policy
		env.ResetEngine(cfg)
		clf, err := core.Train(env.Ctx, data.Train, core.Config{K: p.K, B: p.B, C: p.C, Seed: p.Seed})
		if err != nil {
			return nil, err
		}
		_, stats, err := clf.Classify(data.TestVecs)
		if err != nil {
			return nil, err
		}
		out = append(out, LoadBalanceRow{Policy: policy.String(), ExecutionTime: stats.VirtualTime})
	}
	return out, nil
}
