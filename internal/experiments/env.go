// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic TGA-profile corpus. Each experiment is a
// function returning a typed result that both cmd/experiments (pretty
// printing) and the root bench suite (testing.B) consume.
//
// Scale: the paper runs 1-5 million training pairs on a 14-node cluster;
// the defaults here are one tenth of that (100k-500k pairs) so every
// experiment completes on one machine in seconds-to-minutes. The Scale
// field multiplies pair counts back up for full-scale runs. Reported
// execution times are the virtual cluster times (see internal/cluster),
// which is what makes executor-count sweeps meaningful on a laptop.
package experiments

import (
	"fmt"

	"adrdedup/internal/adrgen"
	"adrdedup/internal/cluster"
	"adrdedup/internal/core"
	"adrdedup/internal/intern"
	"adrdedup/internal/pairdist"
	"adrdedup/internal/rdd"
)

// Env is a prepared corpus + engine shared by the experiments.
type Env struct {
	Corpus *adrgen.Corpus
	Ctx    *rdd.Context
	// Interner holds the token IDs behind Feats; every feature of the
	// environment shares it, so pair vectorization runs on the merge-scan
	// Jaccard kernel.
	Interner *intern.Interner
	Feats    []pairdist.Features

	// TrainDups and TestDups are the ground-truth duplicate split used to
	// build labelled training sets and evaluated test sets.
	TrainDups []adrgen.DuplicatePair
	TestDups  []adrgen.DuplicatePair
}

// EnvConfig controls environment construction.
type EnvConfig struct {
	Cluster cluster.Config
	Corpus  adrgen.Config
	// DupSplit is the fraction of ground-truth duplicates that go to the
	// training side (default 0.5).
	DupSplit float64
	Seed     int64
}

// NewEnv generates the corpus, extracts report features in parallel, and
// splits the ground truth.
func NewEnv(cfg EnvConfig) (*Env, error) {
	if cfg.DupSplit <= 0 || cfg.DupSplit >= 1 {
		cfg.DupSplit = 0.5
	}
	corpus := adrgen.Generate(cfg.Corpus)
	cl := cluster.New(cfg.Cluster)
	ctx := rdd.NewContext(cl)
	it := intern.New()
	feats, err := pairdist.ExtractAllWith(ctx, it, corpus.Reports, ctx.DefaultParallelism())
	if err != nil {
		return nil, fmt.Errorf("experiments: extracting features: %w", err)
	}
	trainDups, testDups := corpus.SplitDuplicates(cfg.DupSplit, cfg.Seed)
	return &Env{
		Corpus:    corpus,
		Ctx:       ctx,
		Interner:  it,
		Feats:     feats,
		TrainDups: trainDups,
		TestDups:  testDups,
	}, nil
}

// ResetEngine replaces the virtual cluster (e.g. to sweep executor counts or
// memory budgets) while keeping the corpus and features. The trace event log
// is carried over so one export spans every engine configuration of a sweep.
func (e *Env) ResetEngine(cfg cluster.Config) {
	tracer := e.Ctx.Cluster().Tracer()
	cl := cluster.New(cfg)
	cl.SetTracer(tracer)
	e.Ctx = rdd.NewContext(cl)
}

// PairData is a labelled train set plus an evaluated test set of pair
// vectors.
type PairData struct {
	Train      []core.TrainingPair
	TestVecs   [][]float64
	TestLabels []int // ground truth (+1/-1) for PR evaluation
}

// BuildPairData samples and vectorizes a training set of trainTotal pairs
// (positives = the train half of the duplicate split) and a test set of
// testTotal pairs (positives = the held-out half).
func (e *Env) BuildPairData(trainTotal, testTotal int, hardFraction float64, seed int64) (*PairData, error) {
	trainIDs, err := e.Corpus.SamplePairs(adrgen.PairSampleOptions{
		Total: trainTotal, Positives: e.TrainDups, HardFraction: hardFraction, Seed: seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: sampling training pairs: %w", err)
	}
	testIDs, err := e.Corpus.SamplePairs(adrgen.PairSampleOptions{
		Total: testTotal, Positives: e.TestDups, HardFraction: hardFraction, Seed: seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: sampling test pairs: %w", err)
	}

	trainRecs, err := e.vectorize(trainIDs)
	if err != nil {
		return nil, err
	}
	testRecs, err := e.vectorize(testIDs)
	if err != nil {
		return nil, err
	}

	out := &PairData{
		Train:      make([]core.TrainingPair, len(trainRecs)),
		TestVecs:   make([][]float64, len(testRecs)),
		TestLabels: make([]int, len(testRecs)),
	}
	for i, r := range trainRecs {
		out.Train[i] = core.TrainingPair{Vec: r.Vec, Label: r.Label}
	}
	for i, r := range testRecs {
		out.TestVecs[i] = r.Vec
		out.TestLabels[i] = r.Label
	}
	return out, nil
}

func (e *Env) vectorize(ids []adrgen.LabeledPair) ([]pairdist.PairRecord, error) {
	idPairs := make([]pairdist.IDPair, len(ids))
	for i, p := range ids {
		idPairs[i] = pairdist.IDPair{A: p.A, B: p.B, Label: p.Label}
	}
	recs, err := pairdist.ComputeVectors(e.Ctx, e.Feats, idPairs, e.Ctx.DefaultParallelism())
	if err != nil {
		return nil, fmt.Errorf("experiments: vectorizing pairs: %w", err)
	}
	return recs, nil
}

// SVMLabels converts training pairs to the parallel slices the SVM baseline
// consumes.
func SVMLabels(train []core.TrainingPair) ([][]float64, []int) {
	vecs := make([][]float64, len(train))
	labels := make([]int, len(train))
	for i, p := range train {
		vecs[i] = p.Vec
		labels[i] = p.Label
	}
	return vecs, labels
}

// DefaultCorpus is the Table 3 profile at one-tenth pair-sampling scale
// (the corpus itself is always full size: 10,382 reports, 286 duplicates).
func DefaultCorpus(seed int64) adrgen.Config {
	return adrgen.Config{Seed: seed}
}

// SmallCorpus is a reduced corpus for quick runs and benchmarks.
func SmallCorpus(seed int64) adrgen.Config {
	return adrgen.Config{NumReports: 2000, DuplicatePairs: 80, NumDrugs: 400, NumADRs: 700, Seed: seed}
}

// DefaultCluster mirrors the paper's testbed shape at laptop scale:
// 25 executors with 1 core each (the §5 configuration for Figs. 6-9),
// gigabit-class network, and a scheduler overhead per stage.
func DefaultCluster() cluster.Config {
	return cluster.Config{
		Executors:           25,
		CoresPerExecutor:    1,
		MemoryPerExecutorMB: 64,
		NetworkMBps:         1000,
		ShuffleLatencyMS:    2,
		SchedulerOverheadMS: 5,
	}
}
