package experiments

import (
	"time"

	"adrdedup/internal/core"
)

// Fig11Params configures the testing-set pruning sweep (paper Fig. 11:
// thresholds 0.3/0.5/0.7/0.9 keep ~65/73/75/~100% of the testing set and cut
// detection time to 35-65% of the unpruned run, without ever pruning a true
// duplicate).
type Fig11Params struct {
	// Thresholds are the f(θ) values to sweep.
	Thresholds []float64
	// TrainSize (paper: 1,000,000 with 266 positives; default 100k) and
	// TestSize (paper: 204,736; default 20k).
	TrainSize, TestSize int
	// PositiveClusters is l (paper: 200; scaled default 20 — the scaled
	// positive set is ~140 pairs).
	PositiveClusters int
	K, B, C          int
	HardFraction     float64
	Seed             int64
}

func (p Fig11Params) withDefaults() Fig11Params {
	if len(p.Thresholds) == 0 {
		p.Thresholds = []float64{0.3, 0.5, 0.7, 0.9}
	}
	if p.TrainSize <= 0 {
		p.TrainSize = 100_000
	}
	if p.TestSize <= 0 {
		p.TestSize = 20_000
	}
	if p.PositiveClusters <= 0 {
		p.PositiveClusters = 20
	}
	if p.K <= 0 {
		p.K = 9
	}
	if p.B <= 0 {
		p.B = 40
	}
	if p.C <= 0 {
		p.C = 8
	}
	if p.HardFraction <= 0 {
		// Fig. 11's testing set is dominated by near-miss pairs (the
		// paper prunes 0-35% across thresholds, so most pairs sit near
		// the positive region); sample accordingly.
		p.HardFraction = 0.8
	}
	return p
}

// Fig11Point is one pruning-threshold measurement.
type Fig11Point struct {
	// Threshold is f(θ); a negative value denotes the unpruned baseline.
	Threshold float64
	// IncludedFraction is the share of testing pairs kept for
	// classification.
	IncludedFraction float64
	// DetectionTime is the classification virtual time.
	DetectionTime time.Duration
	// TrueDuplicatesPruned counts ground-truth duplicates lost to
	// pruning (the paper reports zero at every threshold).
	TrueDuplicatesPruned int
}

// Fig11 sweeps the pruning threshold, leading with an unpruned baseline row
// (Threshold = -1).
func Fig11(env *Env, p Fig11Params) ([]Fig11Point, error) {
	p = p.withDefaults()
	data, err := env.BuildPairData(p.TrainSize, p.TestSize, p.HardFraction, p.Seed)
	if err != nil {
		return nil, err
	}
	run := func(pruning *core.PruningConfig) (Fig11Point, error) {
		clf, err := core.Train(env.Ctx, data.Train, core.Config{
			K: p.K, B: p.B, C: p.C, Seed: p.Seed, Pruning: pruning,
		})
		if err != nil {
			return Fig11Point{}, err
		}
		results, stats, err := clf.Classify(data.TestVecs)
		if err != nil {
			return Fig11Point{}, err
		}
		point := Fig11Point{
			Threshold:        -1,
			IncludedFraction: 1 - float64(stats.PrunedPairs)/float64(stats.TestPairs),
			DetectionTime:    stats.VirtualTime,
		}
		for _, r := range results {
			if r.Pruned && data.TestLabels[r.ID] == +1 {
				point.TrueDuplicatesPruned++
			}
		}
		return point, nil
	}

	baseline, err := run(nil)
	if err != nil {
		return nil, err
	}
	out := []Fig11Point{baseline}
	for _, th := range p.Thresholds {
		point, err := run(&core.PruningConfig{Clusters: p.PositiveClusters, FTheta: th})
		if err != nil {
			return nil, err
		}
		point.Threshold = th
		out = append(out, point)
	}
	return out, nil
}
