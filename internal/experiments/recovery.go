package experiments

import (
	"fmt"
	"time"

	"adrdedup/internal/cluster"
)

// RecoveryParams configures the executor-loss recovery exhibit: a fixed
// shuffle-heavy workload (map → shuffle → reduce rounds with deterministic
// virtual task costs) run clean and then under deterministic executor kills.
// The overhead ratio — faulty over clean virtual makespan — measures what
// lineage recovery costs: lost map outputs recomputed, stages resubmitted,
// and surviving executors carrying the drained slots.
type RecoveryParams struct {
	// Rounds is the number of map→reduce shuffle rounds.
	Rounds int
	// MapTasks and ReduceTasks size each round's stages.
	MapTasks, ReduceTasks int
	Executors             int
	// TaskMS is the fixed virtual duration of every task.
	TaskMS float64
	// ExecutorFailureRate is the per-(stage, executor) kill probability of
	// the faulty run (the clean run uses 0).
	ExecutorFailureRate float64
	Seed                int64
}

func (p RecoveryParams) withDefaults() RecoveryParams {
	if p.Rounds <= 0 {
		p.Rounds = 6
	}
	if p.MapTasks <= 0 {
		p.MapTasks = 32
	}
	if p.ReduceTasks <= 0 {
		p.ReduceTasks = 8
	}
	if p.Executors <= 0 {
		p.Executors = 8
	}
	if p.TaskMS <= 0 {
		p.TaskMS = 5
	}
	if p.ExecutorFailureRate <= 0 {
		p.ExecutorFailureRate = 0.1
	}
	return p
}

// RecoveryRow is one configuration's measurement.
type RecoveryRow struct {
	Faulty           bool
	ExecutionTime    time.Duration
	ExecutorFailures int64
	MapOutputsLost   int64
	FetchFailures    int64
	RecomputedTasks  int64
	RecomputedStages int64
}

// RecoveryOverhead returns the faulty/clean virtual makespan ratio of a
// two-row result — the headline recovery-cost metric.
func RecoveryOverhead(rows []RecoveryRow) float64 {
	var clean, faulty time.Duration
	for _, r := range rows {
		if r.Faulty {
			faulty = r.ExecutionTime
		} else {
			clean = r.ExecutionTime
		}
	}
	if clean <= 0 {
		return 0
	}
	return float64(faulty) / float64(clean)
}

// Recovery runs the identical shuffle workload without and with executor
// kills and reports virtual execution times plus the recovery accounting.
// Both runs must produce identical committed shuffle reads (recovery is
// correct, not just bounded); Recovery returns an error if they diverge.
func Recovery(env *Env, p RecoveryParams) ([]RecoveryRow, error) {
	p = p.withDefaults()
	baseCfg := env.Ctx.Cluster().Config()
	baseCfg.Executors = p.Executors
	baseCfg.CoresPerExecutor = 1
	baseCfg.Seed = p.Seed
	// Every resubmission draws fresh kill decisions, so at 20% per executor
	// a stage can lose hosts several resubmits in a row before the pool
	// thins out; the default retry budget (4) is for production-shaped kill
	// rates, not a torture exhibit.
	baseCfg.MaxStageRetries = 16

	var out []RecoveryRow
	var reads []int64
	for _, faulty := range []bool{false, true} {
		cfg := baseCfg
		if faulty {
			cfg.ExecutorFailureRate = p.ExecutorFailureRate
		} else {
			cfg.ExecutorFailureRate = 0
		}
		env.ResetEngine(cfg)
		cl := env.Ctx.Cluster()
		cl.ResetClock()
		taskNS := p.TaskMS * 1e6
		for round := 0; round < p.Rounds; round++ {
			sh := cl.Shuffles().Register()
			mapOutput := func(tc *cluster.TaskContext, part int) error {
				tc.AddVirtualNS(taskNS)
				tc.WriteShuffleAs(sh, part%p.ReduceTasks, part, []int{part}, 4, 256)
				return nil
			}
			cl.Shuffles().SetRecompute(sh, func(lost []int) error {
				_, err := cl.RunRecoveryStage(fmt.Sprintf("recovery.map#%d.recompute", round),
					len(lost), func(tc *cluster.TaskContext) error {
						return mapOutput(tc, lost[tc.Task()])
					})
				return err
			})
			if _, err := cl.RunStage(fmt.Sprintf("recovery.map#%d", round), p.MapTasks,
				func(tc *cluster.TaskContext) error {
					return mapOutput(tc, tc.Task())
				}); err != nil {
				return nil, err
			}
			cl.Shuffles().MarkDone(sh)
			if _, err := cl.RunStage(fmt.Sprintf("recovery.reduce#%d", round), p.ReduceTasks,
				func(tc *cluster.TaskContext) error {
					blocks, err := tc.FetchShuffle(sh, tc.Task())
					if err != nil {
						return err
					}
					tc.AddVirtualNS(taskNS)
					tc.AddRecords(int64(len(blocks)))
					return nil
				}); err != nil {
				return nil, err
			}
			cl.Shuffles().Unregister(sh)
		}
		m := cl.Metrics().Snapshot()
		reads = append(reads, m.RecordsProcessed)
		out = append(out, RecoveryRow{
			Faulty:           faulty,
			ExecutionTime:    cl.VirtualElapsed(),
			ExecutorFailures: m.ExecutorFailures,
			MapOutputsLost:   m.MapOutputsLost,
			FetchFailures:    m.FetchFailures,
			RecomputedTasks:  m.RecomputedTasks,
			RecomputedStages: m.RecomputedStages,
		})
	}
	if reads[0] != reads[1] {
		return nil, fmt.Errorf("recovery diverged: clean run read %d shuffle blocks, faulty %d",
			reads[0], reads[1])
	}
	return out, nil
}
