package experiments

import (
	"fmt"
	"time"

	"adrdedup/internal/cluster"
)

// SpeculationParams configures the straggler-mitigation experiment: a
// skewed stage workload — the all-pairs partition skew the paper's §4.3.2
// names as its scaling limiter — run with speculative execution off and on.
// Stragglers come from the engine's deterministic injector (a virtual charge
// standing for the slowdown's cost, plus a real cancellable stall the
// monitor can race), on top of Zipf-like task-duration skew.
type SpeculationParams struct {
	// Tasks per stage and stages per configuration.
	Tasks, Rounds int
	Executors     int
	// BaseTaskMS is the virtual duration of an unskewed task;
	// SkewFactor multiplies the duration of the heaviest task.
	BaseTaskMS float64
	SkewFactor float64
	// StragglerRate/StragglerVirtualMS/StragglerRealDelayMS feed the
	// engine's injector (see cluster.Config).
	StragglerRate        float64
	StragglerVirtualMS   float64
	StragglerRealDelayMS float64
	Seed                 int64
}

func (p SpeculationParams) withDefaults() SpeculationParams {
	if p.Tasks <= 0 {
		p.Tasks = 48
	}
	if p.Rounds <= 0 {
		p.Rounds = 4
	}
	if p.Executors <= 0 {
		p.Executors = 8
	}
	if p.BaseTaskMS <= 0 {
		p.BaseTaskMS = 4
	}
	if p.SkewFactor <= 0 {
		p.SkewFactor = 3
	}
	if p.StragglerRate <= 0 {
		p.StragglerRate = 0.1
	}
	if p.StragglerVirtualMS <= 0 {
		p.StragglerVirtualMS = 400
	}
	if p.StragglerRealDelayMS <= 0 {
		// Long enough that the monitor reliably races a duplicate before
		// the straggler's primary wakes and wins its own commit.
		p.StragglerRealDelayMS = 25
	}
	return p
}

// SpeculationRow is one configuration's measurement.
type SpeculationRow struct {
	Speculation         bool
	ExecutionTime       time.Duration
	SpeculativeLaunches int64
	SpeculativeWins     int64
	WastedTime          time.Duration
	Stragglers          int64
}

// SpeculationSpeedup returns the off/on makespan ratio of a two-row result.
func SpeculationSpeedup(rows []SpeculationRow) float64 {
	var off, on time.Duration
	for _, r := range rows {
		if r.Speculation {
			on = r.ExecutionTime
		} else {
			off = r.ExecutionTime
		}
	}
	if on <= 0 {
		return 0
	}
	return float64(off) / float64(on)
}

// Speculation runs the identical skewed straggler-injected workload with
// speculation disabled and enabled and reports virtual execution times plus
// the mitigation accounting (launches, wins, wasted time).
func Speculation(env *Env, p SpeculationParams) ([]SpeculationRow, error) {
	p = p.withDefaults()
	baseCfg := env.Ctx.Cluster().Config()
	baseCfg.Executors = p.Executors
	baseCfg.CoresPerExecutor = 1
	baseCfg.Seed = p.Seed
	baseCfg.StragglerRate = p.StragglerRate
	baseCfg.StragglerVirtualMS = p.StragglerVirtualMS
	baseCfg.StragglerRealDelayMS = p.StragglerRealDelayMS
	// Speculate once half the stage has committed: the workload's median is
	// representative early, and a late quantile leaves tail stragglers
	// unmitigated.
	baseCfg.SpeculationQuantile = 0.5

	var out []SpeculationRow
	for _, speculate := range []bool{false, true} {
		cfg := baseCfg
		cfg.Speculation = speculate
		env.ResetEngine(cfg)
		cl := env.Ctx.Cluster()
		cl.ResetClock()
		for round := 0; round < p.Rounds; round++ {
			// Zipf-like duration skew: task i costs base * (1 + (skew-1)/(1+i)),
			// so task 0 is SkewFactor x base and the tail is near-uniform —
			// the shape of uneven Voronoi cell sizes.
			_, err := cl.RunStage(fmt.Sprintf("speculation.skew#%d", round), p.Tasks,
				func(tc *cluster.TaskContext) error {
					i := float64(tc.Task())
					tc.AddVirtualNS(p.BaseTaskMS * 1e6 * (1 + (p.SkewFactor-1)/(1+i)))
					return nil
				})
			if err != nil {
				return nil, err
			}
		}
		m := cl.Metrics().Snapshot()
		out = append(out, SpeculationRow{
			Speculation:         speculate,
			ExecutionTime:       cl.VirtualElapsed(),
			SpeculativeLaunches: m.SpeculativeTasksLaunched,
			SpeculativeWins:     m.SpeculativeWins,
			WastedTime:          time.Duration(m.SpeculativeWastedNS),
			Stragglers:          m.StragglersInjected,
		})
	}
	return out, nil
}
