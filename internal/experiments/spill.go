package experiments

import (
	"fmt"
	"math"
	"time"

	"adrdedup/internal/adrgen"
	"adrdedup/internal/candgen"
	"adrdedup/internal/cluster"
	"adrdedup/internal/intern"
	"adrdedup/internal/pairdist"
	"adrdedup/internal/rdd"
)

// The memory-pressure exhibit: the paper's pipeline only reaches database
// scale because Spark executors spill to local disk instead of holding every
// shuffle buffer and cached partition in RAM. This exhibit runs the candidate
// generation pipeline — signature extraction, the prefix-filtered generator,
// and the shuffle-sort that fixes the candidate order for downstream
// vectorize/classify — twice over the same corpus: once unbounded and once
// under a per-executor budget far below the working set. The budgeted run
// must spill (block cache, shuffle buffers, external merge runs) and still
// produce byte-identical candidates; the makespan delta prices what the
// virtual spill disk (SpillMBps) costs relative to keeping everything
// resident.

// SpillParams configures the exhibit.
type SpillParams struct {
	// Records is the corpus size (default 4,000 — big enough that the
	// candidate working set dwarfs the budget below).
	Records int
	// Theta is the signature-similarity threshold (default 0.5).
	Theta float64
	// Partitions is the pipeline parallelism (default 16).
	Partitions int
	// Executors sizes the virtual cluster (default 8).
	Executors int
	// MemoryPerExecutorBytes is the budgeted run's per-executor budget
	// (default 16 KiB — pathological on purpose; the unbounded run uses the
	// engine default).
	MemoryPerExecutorBytes int64
	// TargetPartitionMB enables adaptive post-shuffle coalescing on the
	// budgeted run (default 1), so the exhibit also reports how many
	// undersized reduce partitions the AQE planner eliminated.
	TargetPartitionMB int
	Seed              int64
}

func (p SpillParams) withDefaults() SpillParams {
	if p.Records <= 0 {
		p.Records = 4000
	}
	if p.Theta <= 0 {
		p.Theta = 0.5
	}
	if p.Partitions <= 0 {
		p.Partitions = 16
	}
	if p.Executors <= 0 {
		p.Executors = 8
	}
	if p.MemoryPerExecutorBytes <= 0 {
		p.MemoryPerExecutorBytes = 16 << 10
	}
	if p.TargetPartitionMB <= 0 {
		p.TargetPartitionMB = 1
	}
	return p
}

// SpillRow is one configuration's measurement.
type SpillRow struct {
	Budgeted               bool
	MemoryPerExecutorBytes int64
	ExecutionTime          time.Duration
	Candidates             int64
	SpillEvents            int64
	SpilledBytes           int64
	CoalescedPartitions    int64
}

// SpillOverhead returns the budgeted/unbounded virtual makespan ratio — the
// headline cost of running the working set through the spill tier instead of
// RAM.
func SpillOverhead(rows []SpillRow) float64 {
	var unbounded, budgeted time.Duration
	for _, r := range rows {
		if r.Budgeted {
			budgeted = r.ExecutionTime
		} else {
			unbounded = r.ExecutionTime
		}
	}
	if unbounded <= 0 {
		return 0
	}
	return float64(budgeted) / float64(unbounded)
}

// Spill runs the candidate pipeline unbounded and under the budget and
// reports both rows. The two candidate outputs must be byte-identical —
// spilling is a placement decision, never a semantic one — and Spill returns
// an error if they diverge.
func Spill(p SpillParams) ([]SpillRow, error) {
	p = p.withDefaults()

	// Corpus scaled the same way as the candidate-wall exhibit: duplicates
	// linear in the report count, lexicons by Heaps' law.
	heaps := math.Sqrt(float64(p.Records) / 10382)
	if heaps < 1 {
		heaps = 1
	}
	corpus := adrgen.Generate(adrgen.Config{
		NumReports:     p.Records,
		DuplicatePairs: p.Records / 36,
		NumDrugs:       int(1366 * heaps),
		NumADRs:        int(2351 * heaps),
		Campaigns:      p.Records/50 + 1,
		Seed:           p.Seed,
	})

	run := func(budgeted bool) (SpillRow, []pairdist.IDPair, error) {
		row := SpillRow{Budgeted: budgeted}
		cfg := cluster.Config{
			Executors:           p.Executors,
			CoresPerExecutor:    1,
			NetworkMBps:         1000,
			ShuffleLatencyMS:    2,
			SchedulerOverheadMS: 5,
			Seed:                p.Seed,
		}
		if budgeted {
			cfg.SpillToDisk = true
			cfg.MemoryPerExecutorBytes = p.MemoryPerExecutorBytes
			cfg.TargetPartitionMB = p.TargetPartitionMB
			row.MemoryPerExecutorBytes = p.MemoryPerExecutorBytes
		}
		cl := cluster.New(cfg)
		defer cl.Close()
		ctx := rdd.NewContext(cl)

		it := intern.New()
		feats, err := pairdist.ExtractAllWith(ctx, it, corpus.Reports, p.Partitions)
		if err != nil {
			return row, nil, fmt.Errorf("experiments: extracting features: %w", err)
		}
		sigs, err := candgen.Signatures(feats)
		if err != nil {
			return row, nil, fmt.Errorf("experiments: building signatures: %w", err)
		}
		pairs, _, err := candgen.Pairs(ctx, sigs, candgen.Params{
			Theta: p.Theta, Partitions: p.Partitions,
		})
		if err != nil {
			return row, nil, fmt.Errorf("experiments: prefix generation: %w", err)
		}

		// Downstream order fix: shuffle-sort the candidates into (A, B)
		// order, through a cached RDD so the budgeted run presses the block
		// cache as well as the shuffle buffers and the external merge.
		cands := rdd.Parallelize(ctx, pairs, p.Partitions).
			SetName("candidates").WithBytesPerRecord(24).Cache()
		sorted, err := rdd.SortBy(cands, func(a, b pairdist.IDPair) bool {
			if a.A != b.A {
				return a.A < b.A
			}
			return a.B < b.B
		}, p.Partitions).Collect()
		if err != nil {
			return row, nil, fmt.Errorf("experiments: sorting candidates: %w", err)
		}

		m := cl.Metrics().Snapshot()
		row.ExecutionTime = cl.VirtualElapsed()
		row.Candidates = int64(len(sorted))
		row.SpillEvents = m.SpillEvents
		row.SpilledBytes = m.SpilledBytes
		row.CoalescedPartitions = m.CoalescedPartitions
		return row, sorted, nil
	}

	var out []SpillRow
	var outputs [][]pairdist.IDPair
	for _, budgeted := range []bool{false, true} {
		row, pairs, err := run(budgeted)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
		outputs = append(outputs, pairs)
	}
	if len(outputs[0]) != len(outputs[1]) {
		return nil, fmt.Errorf("spill run diverged: %d candidates unbounded, %d budgeted",
			len(outputs[0]), len(outputs[1]))
	}
	for i := range outputs[0] {
		if outputs[0][i] != outputs[1][i] {
			return nil, fmt.Errorf("spill run diverged at candidate %d: unbounded %+v, budgeted %+v",
				i, outputs[0][i], outputs[1][i])
		}
	}
	return out, nil
}
