package experiments

import (
	"time"

	"adrdedup/internal/adrgen"
	"adrdedup/internal/core"
)

// Fig10Params configures the executor scaling sweep (paper Fig. 10:
// execution time falls with executor count but flattens as coordination and
// shuffle overheads grow; the pairwise-distance stage is a small share of
// the total and speeds up near-linearly).
type Fig10Params struct {
	// Executors are the executor counts to sweep (paper: 5-25).
	Executors []int
	// TrainSizes per curve (paper: 2M, 3M, 4M; default 200k-400k).
	TrainSizes []int
	TestSize   int
	// K, B, C follow the paper's Fig. 10 setting (b=48, block number 5).
	K, B, C      int
	HardFraction float64
	Seed         int64
	// DistancePairs is the pair count of the pairwise-distance timing of
	// Fig. 10(b) (the paper computes distances over the 10,382-report
	// corpus; default 100k pairs).
	DistancePairs int
}

func (p Fig10Params) withDefaults() Fig10Params {
	if len(p.Executors) == 0 {
		p.Executors = []int{5, 10, 15, 20, 25}
	}
	if len(p.TrainSizes) == 0 {
		p.TrainSizes = []int{200_000, 300_000, 400_000}
	}
	if p.TestSize <= 0 {
		p.TestSize = 10_000
	}
	if p.K <= 0 {
		p.K = 9
	}
	if p.B <= 0 {
		p.B = 48
	}
	if p.C <= 0 {
		p.C = 5
	}
	if p.HardFraction <= 0 {
		p.HardFraction = 0.3
	}
	if p.DistancePairs <= 0 {
		p.DistancePairs = 100_000
	}
	return p
}

// Fig10Point is one (executors, training size) measurement.
type Fig10Point struct {
	Executors     int
	TrainPairs    int
	ExecutionTime time.Duration // Fig. 10(a): classification
	DistanceTime  time.Duration // Fig. 10(b): pairwise distance computing
}

// Fig10 sweeps executor counts. For each executor count the engine is
// rebuilt, so virtual makespans reflect the slot count.
func Fig10(env *Env, p Fig10Params) ([]Fig10Point, error) {
	p = p.withDefaults()
	baseCfg := env.Ctx.Cluster().Config()
	var out []Fig10Point
	for _, execs := range p.Executors {
		cfg := baseCfg
		cfg.Executors = execs
		env.ResetEngine(cfg)

		// Fig. 10(b): time the pairwise distance stage once per
		// executor count.
		distIDs, err := env.Corpus.SamplePairs(adrgen.PairSampleOptions{
			Total: p.DistancePairs, Positives: env.TrainDups,
			HardFraction: p.HardFraction, Seed: p.Seed + 99,
		})
		if err != nil {
			return nil, err
		}
		before := env.Ctx.Cluster().VirtualElapsed()
		if _, err := env.vectorize(distIDs); err != nil {
			return nil, err
		}
		distTime := env.Ctx.Cluster().VirtualElapsed() - before

		for _, size := range p.TrainSizes {
			data, err := env.BuildPairData(size, p.TestSize, p.HardFraction, p.Seed)
			if err != nil {
				return nil, err
			}
			clf, err := core.Train(env.Ctx, data.Train, core.Config{K: p.K, B: p.B, C: p.C, Seed: p.Seed})
			if err != nil {
				return nil, err
			}
			_, stats, err := clf.Classify(data.TestVecs)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig10Point{
				Executors:     execs,
				TrainPairs:    size,
				ExecutionTime: stats.VirtualTime,
				DistanceTime:  distTime,
			})
		}
	}
	return out, nil
}
