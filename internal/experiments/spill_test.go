package experiments

import "testing"

// TestSpillOutputIdentical is the exhibit's acceptance test: the budgeted
// run must actually spill (otherwise the scenario is vacuous) and still
// produce byte-identical candidates — Spill itself errors on divergence, so
// a nil error plus non-zero spill counters is the whole property. It doubles
// as the CI memory-pressure smoke.
func TestSpillOutputIdentical(t *testing.T) {
	rows, err := Spill(SpillParams{Records: 1500, Partitions: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Budgeted {
			if r.SpillEvents == 0 || r.SpilledBytes == 0 {
				t.Errorf("budgeted run spilled nothing (events %d, bytes %d); working set under budget?",
					r.SpillEvents, r.SpilledBytes)
			}
		} else {
			if r.SpillEvents != 0 || r.SpilledBytes != 0 || r.CoalescedPartitions != 0 {
				t.Errorf("unbounded run has spill/coalesce accounting: %+v", r)
			}
		}
		if r.Candidates == 0 {
			t.Errorf("row %+v emitted no candidates", r)
		}
	}
	if ratio := SpillOverhead(rows); ratio < 1 {
		t.Errorf("spill overhead ratio %.3f < 1: spilling made the run faster than RAM", ratio)
	}
}

// BenchmarkSpillOverhead snapshots the memory-pressure exhibit for
// bench-json: the reported ratio is the budgeted/unbounded virtual makespan
// of the identical candidate pipeline, alongside the spilled volume.
func BenchmarkSpillOverhead(b *testing.B) {
	var rows []SpillRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = Spill(SpillParams{Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	var unbounded, budgeted, spilledMB, spillEvents, coalesced float64
	for _, r := range rows {
		if r.Budgeted {
			budgeted = r.ExecutionTime.Seconds()
			spilledMB = float64(r.SpilledBytes) / (1 << 20)
			spillEvents = float64(r.SpillEvents)
			coalesced = float64(r.CoalescedPartitions)
		} else {
			unbounded = r.ExecutionTime.Seconds()
		}
	}
	b.ReportMetric(SpillOverhead(rows), "overhead-ratio")
	b.ReportMetric(unbounded, "makespan-unbounded-s")
	b.ReportMetric(budgeted, "makespan-budgeted-s")
	b.ReportMetric(spilledMB, "spilled-MB")
	b.ReportMetric(spillEvents, "spill-events")
	b.ReportMetric(coalesced, "coalesced-partitions")
}
