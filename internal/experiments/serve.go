package experiments

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"adrdedup"
	"adrdedup/internal/cluster"
	"adrdedup/internal/core"
	"adrdedup/internal/serve"
)

// ServeParams sizes the sustained-ingest serving exhibit: an adrdedupd-style
// server (bootstrapped seed database, prefix-index candidates, work-stealing
// engine) is driven over real HTTP by the adrload client code, and the
// steady-state throughput and latency percentiles are the exhibit's claims.
// Zero values take the full-scale defaults.
type ServeParams struct {
	// SeedReports / SeedDuplicates / TrainPairs size the bootstrap
	// (defaults 2000 / 80 / 1200).
	SeedReports    int
	SeedDuplicates int
	TrainPairs     int
	// Reports is the stream pushed at the service (default 30000) in
	// batches of BatchSize (default 500).
	Reports   int
	BatchSize int
	// ServerWorkers and QueueDepth configure the service pipeline
	// (defaults 2 / 64); ClientWorkers the concurrent submitters
	// (default 4).
	ServerWorkers int
	QueueDepth    int
	ClientWorkers int
	// CandidateTheta is the prefix-filter signature-similarity floor
	// (default 0.8). The exhibit runs hotter than the batch default (0.5):
	// campaign-free synthetic traffic over a small drug vocabulary makes
	// moderate signature overlap ubiquitous, and a 0.5 floor drowns the
	// service in low-grade candidate pairs.
	CandidateTheta float64
	// Seed makes the whole exhibit deterministic.
	Seed int64
}

func (p ServeParams) withDefaults() ServeParams {
	if p.SeedReports <= 0 {
		p.SeedReports = 2000
	}
	if p.SeedDuplicates <= 0 {
		p.SeedDuplicates = 80
	}
	if p.TrainPairs <= 0 {
		p.TrainPairs = 1200
	}
	if p.Reports <= 0 {
		p.Reports = 30000
	}
	if p.BatchSize <= 0 {
		p.BatchSize = 500
	}
	if p.ServerWorkers <= 0 {
		p.ServerWorkers = 2
	}
	if p.QueueDepth <= 0 {
		p.QueueDepth = 64
	}
	if p.ClientWorkers <= 0 {
		p.ClientWorkers = 4
	}
	if p.CandidateTheta <= 0 {
		p.CandidateTheta = 0.8
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// ServeResult is the serving exhibit's outcome: the load driver's view
// (throughput, client-observed latency) plus the server's own counters.
type ServeResult struct {
	Params ServeParams
	Load   serve.LoadResult
	Stats  serve.Stats
	// SeedDuration and TrainDuration are the bootstrap costs, reported so
	// the exhibit separates startup from steady-state serving.
	SeedDuration  time.Duration
	TrainDuration time.Duration
}

// ServeLoad boots the online service in-process, drives the configured
// stream at it over HTTP, drains, and reports. A run with Errors != 0 is
// returned as an error: the exhibit's baseline claim is a zero-error
// sustained ingest.
func ServeLoad(p ServeParams) (ServeResult, error) {
	p = p.withDefaults()
	boot, err := serve.NewBootstrap(serve.BootstrapConfig{
		SeedReports:    p.SeedReports,
		SeedDuplicates: p.SeedDuplicates,
		TrainPairs:     p.TrainPairs,
		Seed:           p.Seed,
		Detector: adrdedup.Options{
			Cluster:        cluster.Config{Executors: 8},
			Classifier:     core.Config{Seed: p.Seed},
			Candidates:     adrdedup.CandidatePrefixIndex,
			CandidateTheta: p.CandidateTheta,
		},
	})
	if err != nil {
		return ServeResult{}, err
	}
	srv := serve.New(boot.Detector, serve.Config{
		Workers:    p.ServerWorkers,
		QueueDepth: p.QueueDepth,
	})
	if err := srv.Start(); err != nil {
		boot.Detector.Engine().Cluster().Close()
		return ServeResult{}, err
	}
	ts := httptest.NewServer(srv.Handler())

	res, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		BaseURL:   ts.URL,
		Workers:   p.ClientWorkers,
		BatchSize: p.BatchSize,
		Count:     p.Reports,
		Traffic:   serve.TrafficConfig{Seed: p.Seed + 1},
	})
	ts.Close()
	stats := srv.Stats()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	closeErr := srv.Close(ctx)
	if err != nil {
		return ServeResult{}, err
	}
	if closeErr != nil {
		return ServeResult{}, fmt.Errorf("draining after load: %w", closeErr)
	}
	if res.Errors > 0 {
		return ServeResult{}, fmt.Errorf("load run hit %d errors (first: %s)", res.Errors, res.FirstError)
	}
	if res.Sent != uint64(p.Reports) {
		return ServeResult{}, fmt.Errorf("load run sent %d of %d reports", res.Sent, p.Reports)
	}
	return ServeResult{
		Params:        p,
		Load:          res,
		Stats:         stats,
		SeedDuration:  boot.SeedDuration,
		TrainDuration: boot.TrainDuration,
	}, nil
}
