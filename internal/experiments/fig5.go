package experiments

import (
	"fmt"

	"adrdedup/internal/core"
	"adrdedup/internal/eval"
	"adrdedup/internal/svm"
)

// Fig5Params configures the classifier comparison (paper Fig. 5: kNN vs SVM
// vs SVM clustering across training set sizes).
type Fig5Params struct {
	// TrainSizes are the training pair counts to sweep (paper: 1M-5M;
	// default 100k-500k).
	TrainSizes []int
	// TestSize is the test pair count (paper: 20,000).
	TestSize int
	// K, B, C configure Fast kNN.
	K, B, C int
	// SVMClusters is the cluster count of the SVM-clustering variant
	// (paper: 8).
	SVMClusters int
	// HardFraction controls negative sampling difficulty.
	HardFraction float64
	Seed         int64
}

func (p Fig5Params) withDefaults() Fig5Params {
	if len(p.TrainSizes) == 0 {
		p.TrainSizes = []int{100_000, 200_000, 300_000, 400_000, 500_000}
	}
	if p.TestSize <= 0 {
		p.TestSize = 20_000
	}
	if p.K <= 0 {
		p.K = 9
	}
	if p.B <= 0 {
		p.B = 32
	}
	if p.C <= 0 {
		p.C = 8
	}
	if p.SVMClusters <= 0 {
		p.SVMClusters = 8
	}
	if p.HardFraction <= 0 {
		p.HardFraction = 0.3
	}
	return p
}

// Fig5Point is one training-size measurement (Fig. 5(c) bar group).
type Fig5Point struct {
	TrainPairs        int
	AUPRKNN           float64
	AUPRSVM           float64
	AUPRSVMClustering float64
}

// Fig5Result aggregates the comparison: AUPR bars per training size plus
// full PR curves at the largest and smallest sizes (Fig. 5(a) and (b)).
type Fig5Result struct {
	Points       []Fig5Point
	CurveLargest map[string][]eval.Point // keyed "kNN" / "SVM"
	CurveSmall   map[string][]eval.Point
	// ImprovementOverSVM is the mean relative AUPR gain of kNN over SVM
	// (paper: 19.1% average).
	ImprovementOverSVM float64
}

// Fig5 runs the classifier comparison.
func Fig5(env *Env, p Fig5Params) (*Fig5Result, error) {
	p = p.withDefaults()
	res := &Fig5Result{}
	var gain, gainN float64
	for i, size := range p.TrainSizes {
		data, err := env.BuildPairData(size, p.TestSize, p.HardFraction, p.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		knnScores, err := knnScores(env, data, core.Config{K: p.K, B: p.B, C: p.C, Seed: p.Seed})
		if err != nil {
			return nil, err
		}
		vecs, labels := SVMLabels(data.Train)
		svmModel, err := svm.Train(vecs, labels, svm.Options{Seed: p.Seed})
		if err != nil {
			return nil, fmt.Errorf("fig5: training SVM on %d pairs: %w", size, err)
		}
		svmScores := svmModel.DecisionBatch(data.TestVecs)
		clModel, err := svm.TrainClustered(vecs, labels, p.SVMClusters, svm.Options{Seed: p.Seed})
		if err != nil {
			return nil, fmt.Errorf("fig5: training SVM clustering: %w", err)
		}
		clScores := clModel.DecisionBatch(data.TestVecs)

		point := Fig5Point{TrainPairs: size}
		if point.AUPRKNN, err = eval.AUPR(knnScores, data.TestLabels); err != nil {
			return nil, err
		}
		if point.AUPRSVM, err = eval.AUPR(svmScores, data.TestLabels); err != nil {
			return nil, err
		}
		if point.AUPRSVMClustering, err = eval.AUPR(clScores, data.TestLabels); err != nil {
			return nil, err
		}
		res.Points = append(res.Points, point)
		if point.AUPRSVM > 0 {
			gain += (point.AUPRKNN - point.AUPRSVM) / point.AUPRSVM
			gainN++
		}

		first := i == 0
		last := i == len(p.TrainSizes)-1
		if first || last {
			curves := make(map[string][]eval.Point, 2)
			if curves["kNN"], err = eval.PRCurve(knnScores, data.TestLabels); err != nil {
				return nil, err
			}
			if curves["SVM"], err = eval.PRCurve(svmScores, data.TestLabels); err != nil {
				return nil, err
			}
			if first {
				res.CurveSmall = curves
			}
			if last {
				res.CurveLargest = curves
			}
		}
	}
	if gainN > 0 {
		res.ImprovementOverSVM = gain / gainN
	}
	return res, nil
}

// knnScores trains Fast kNN and returns the Eq. 5 scores over the test set,
// ordered by test index.
func knnScores(env *Env, data *PairData, cfg core.Config) ([]float64, error) {
	clf, err := core.Train(env.Ctx, data.Train, cfg)
	if err != nil {
		return nil, fmt.Errorf("training Fast kNN: %w", err)
	}
	results, _, err := clf.Classify(data.TestVecs)
	if err != nil {
		return nil, fmt.Errorf("classifying with Fast kNN: %w", err)
	}
	scores := make([]float64, len(results))
	for _, r := range results {
		scores[r.ID] = r.Score
	}
	return scores, nil
}
