package adrgen

import (
	"encoding/json"
	"fmt"
	"io"
)

// GroundTruthRecord is the serialized form of one known duplicate pair, as
// a regulator's officers would record it (by case number).
type GroundTruthRecord struct {
	CaseA string `json:"caseA"`
	CaseB string `json:"caseB"`
	Mode  string `json:"mode"`
}

// WriteGroundTruth serializes the corpus's duplicate ground truth as JSON.
func WriteGroundTruth(w io.Writer, duplicates []DuplicatePair) error {
	records := make([]GroundTruthRecord, len(duplicates))
	for i, d := range duplicates {
		records[i] = GroundTruthRecord{CaseA: d.CaseA, CaseB: d.CaseB, Mode: d.Mode.String()}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// ReadGroundTruth parses ground truth previously written by
// WriteGroundTruth. Only case numbers and modes survive the round trip;
// corpus indices are not serialized (they are meaningless outside the
// generating process).
func ReadGroundTruth(r io.Reader) ([]GroundTruthRecord, error) {
	var out []GroundTruthRecord
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("adrgen: decoding ground truth: %w", err)
	}
	for i, rec := range out {
		if rec.CaseA == "" || rec.CaseB == "" {
			return nil, fmt.Errorf("adrgen: ground truth record %d missing case numbers", i)
		}
	}
	return out, nil
}
