package adrgen

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"adrdedup/internal/adr"
)

// Config controls corpus generation. The zero value is filled with the TGA
// dataset's published statistics (Table 3).
type Config struct {
	// NumReports is the corpus size (Table 3: 10,382).
	NumReports int
	// DuplicatePairs is the number of injected duplicate pairs
	// (Table 3: 286). Each pair contributes two distinct reports.
	DuplicatePairs int
	// NumDrugs and NumADRs bound the lexicon sizes (Table 3: 1,366 and
	// 2,351).
	NumDrugs int
	NumADRs  int
	// Seed makes generation deterministic.
	Seed int64
	// Start and End bound report dates (paper: 1 Jul - 31 Dec 2013).
	Start time.Time
	End   time.Time
	// CampaignFraction is the share of reports that belong to reporting
	// campaigns — clusters of *distinct* patients sharing a drug, onset
	// date, state, and overlapping reactions (e.g. a mass vaccination
	// clinic). Campaign pairs are the confusable non-duplicates that make
	// real ADR duplicate detection hard. Default 0.35.
	CampaignFraction float64
	// Campaigns is the number of campaign templates (default 60).
	Campaigns int
}

func (c Config) withDefaults() Config {
	if c.NumReports <= 0 {
		c.NumReports = 10382
	}
	if c.DuplicatePairs < 0 {
		c.DuplicatePairs = 0
	} else if c.DuplicatePairs == 0 {
		c.DuplicatePairs = 286
	}
	if 2*c.DuplicatePairs > c.NumReports {
		c.DuplicatePairs = c.NumReports / 2
	}
	if c.NumDrugs <= 0 {
		c.NumDrugs = 1366
	}
	if c.NumADRs <= 0 {
		c.NumADRs = 2351
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2013, 7, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.End.IsZero() {
		c.End = time.Date(2013, 12, 31, 0, 0, 0, 0, time.UTC)
	}
	switch {
	case c.CampaignFraction < 0 || c.CampaignFraction >= 1:
		c.CampaignFraction = 0 // negative disables campaigns
	case c.CampaignFraction == 0:
		c.CampaignFraction = 0.35
	}
	if c.Campaigns <= 0 {
		c.Campaigns = 60
	}
	return c
}

// DuplicateMode classifies how a duplicate pair arose (§1 names both
// sources).
type DuplicateMode int

const (
	// ChannelOverlap duplicates are the same event reported through two
	// channels (Table 1's examples): same facts, independently written
	// narratives, occasional data-entry errors.
	ChannelOverlap DuplicateMode = iota
	// FollowUp duplicates are follow-up reports wrongly filed as new
	// records: updated outcome, extended narrative.
	FollowUp
)

func (m DuplicateMode) String() string {
	if m == FollowUp {
		return "follow-up"
	}
	return "channel-overlap"
}

// DuplicatePair records one injected ground-truth duplicate.
type DuplicatePair struct {
	IdxA, IdxB   int // indices into Corpus.Reports
	CaseA, CaseB string
	Mode         DuplicateMode
}

// Corpus is a generated report collection plus its ground truth.
type Corpus struct {
	Config     Config
	Reports    []adr.Report
	Duplicates []DuplicatePair
	// CampaignOf maps each report index to its campaign ID, or -1 when
	// the report is not part of a campaign. Distinct reports in the same
	// campaign are the confusable non-duplicates.
	CampaignOf []int

	drugs []string
	adrs  []string
}

// Drugs returns the drug lexicon used during generation.
func (c *Corpus) Drugs() []string { return c.drugs }

// ADRs returns the reaction lexicon used during generation.
func (c *Corpus) ADRs() []string { return c.adrs }

// IsDuplicatePair reports whether reports i and j form a ground-truth
// duplicate pair.
func (c *Corpus) IsDuplicatePair(i, j int) bool {
	if i > j {
		i, j = j, i
	}
	for _, d := range c.Duplicates {
		a, b := d.IdxA, d.IdxB
		if a > b {
			a, b = b, a
		}
		if a == i && b == j {
			return true
		}
	}
	return false
}

// Generate builds a synthetic corpus. Reports are shuffled into a random
// arrival order, so the two halves of a duplicate pair are usually far apart
// in the stream — as they are in a real regulator database.
func Generate(cfg Config) *Corpus {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &generator{
		cfg:   cfg,
		rng:   rng,
		drugs: DrugLexicon(cfg.NumDrugs),
		adrs:  ADRLexicon(cfg.NumADRs),
	}

	g.makeCampaigns()
	numBase := cfg.NumReports - cfg.DuplicatePairs
	reports := make([]adr.Report, 0, cfg.NumReports)
	campaignIDs := make([]int, 0, cfg.NumReports)
	for i := 0; i < numBase; i++ {
		r, camp := g.baseReport(i)
		reports = append(reports, r)
		campaignIDs = append(campaignIDs, camp)
	}

	// Pick distinct base reports to duplicate.
	perm := rng.Perm(numBase)
	type pendingDup struct {
		baseIdx int
		mode    DuplicateMode
	}
	pending := make([]pendingDup, 0, cfg.DuplicatePairs)
	for i := 0; i < cfg.DuplicatePairs; i++ {
		mode := ChannelOverlap
		if rng.Float64() < 0.4 {
			mode = FollowUp
		}
		pending = append(pending, pendingDup{baseIdx: perm[i], mode: mode})
	}
	dupOf := make([]int, 0, cfg.DuplicatePairs)   // index of the copy
	dupBase := make([]int, 0, cfg.DuplicatePairs) // index of the original
	modes := make([]DuplicateMode, 0, cfg.DuplicatePairs)
	for i, p := range pending {
		copyReport := g.duplicateOf(reports[p.baseIdx], numBase+i, p.mode)
		reports = append(reports, copyReport)
		campaignIDs = append(campaignIDs, campaignIDs[p.baseIdx])
		dupBase = append(dupBase, p.baseIdx)
		dupOf = append(dupOf, numBase+i)
		modes = append(modes, p.mode)
	}

	// Shuffle arrival order, tracking where each report lands.
	order := rng.Perm(len(reports))
	shuffled := make([]adr.Report, len(reports))
	shuffledCamp := make([]int, len(reports))
	newPos := make([]int, len(reports))
	for to, from := range order {
		shuffled[to] = reports[from]
		shuffledCamp[to] = campaignIDs[from]
		newPos[from] = to
	}
	for i := range shuffled {
		shuffled[i].ArrivalSeq = i
	}

	corpus := &Corpus{Config: cfg, Reports: shuffled, CampaignOf: shuffledCamp, drugs: g.drugs, adrs: g.adrs}
	for i := range dupOf {
		a, b := newPos[dupBase[i]], newPos[dupOf[i]]
		corpus.Duplicates = append(corpus.Duplicates, DuplicatePair{
			IdxA: a, IdxB: b,
			CaseA: shuffled[a].CaseNumber, CaseB: shuffled[b].CaseNumber,
			Mode: modes[i],
		})
	}
	return corpus
}

type generator struct {
	cfg       Config
	rng       *rand.Rand
	drugs     []string
	adrs      []string
	campaigns []campaign
}

// campaign is a shared reporting context: one drug exposure event that many
// distinct patients report, with a common onset date, state, and reaction
// pool. Two campaign reports look deceptively duplicate-like.
type campaign struct {
	drugs   []string
	onset   string
	state   string
	adrPool []string
	// ageBase anchors the cohort: campaigns target an age band (school
	// programs, aged-care clinics), so two distinct campaign patients
	// often share the exact age — which is what makes these pairs
	// genuinely confusable with duplicates.
	ageBase int
	// sex is non-empty for single-sex campaigns (e.g. HPV programs).
	sex string
	// canonical is the reaction list most members report verbatim (web
	// form checkboxes), and template is the narrative form the campaign
	// channel produces — together they make many distinct campaign pairs
	// agree closely on both the ADR list and the description text.
	canonical []string
	template  int
}

func (g *generator) makeCampaigns() {
	g.campaigns = make([]campaign, g.cfg.Campaigns)
	for i := range g.campaigns {
		poolSize := 5 + g.rng.Intn(4)
		pool := make([]string, 0, poolSize)
		seen := make(map[string]struct{}, poolSize)
		for len(pool) < poolSize {
			a := g.adrs[g.skewedIndex(len(g.adrs))]
			if _, dup := seen[a]; dup {
				continue
			}
			seen[a] = struct{}{}
			pool = append(pool, a)
		}
		sex := ""
		if g.rng.Float64() < 0.5 {
			sex = []string{"M", "F"}[g.rng.Intn(2)]
		}
		g.campaigns[i] = campaign{
			drugs:     g.pickDrugs(),
			onset:     adr.FormatOnsetDate(g.randomDate(g.cfg.Start)),
			state:     States[g.rng.Intn(8)], // real states only
			adrPool:   pool,
			ageBase:   1 + g.rng.Intn(88),
			sex:       sex,
			canonical: pool[:3],
			template:  g.rng.Intn(numTemplates),
		}
	}
}

// skewedIndex returns an index in [0, n) biased toward small values, giving
// the drug/ADR usage distribution a realistic head-heavy shape.
func (g *generator) skewedIndex(n int) int {
	u := g.rng.Float64()
	return int(u * u * float64(n))
}

func (g *generator) pickDrugs() []string {
	n := 1
	if g.rng.Float64() < 0.25 {
		n = 2
	}
	seen := make(map[string]struct{}, n)
	out := make([]string, 0, n)
	for len(out) < n {
		d := g.drugs[g.skewedIndex(len(g.drugs))]
		if _, dup := seen[d]; dup {
			continue
		}
		seen[d] = struct{}{}
		out = append(out, d)
	}
	return out
}

func (g *generator) pickADRs() []string {
	n := 1 + g.rng.Intn(4)
	seen := make(map[string]struct{}, n)
	out := make([]string, 0, n)
	for len(out) < n {
		a := g.adrs[g.skewedIndex(len(g.adrs))]
		if _, dup := seen[a]; dup {
			continue
		}
		seen[a] = struct{}{}
		out = append(out, a)
	}
	return out
}

func (g *generator) randomDate(after time.Time) time.Time {
	span := g.cfg.End.Sub(after)
	if span <= 0 {
		return after
	}
	return after.Add(time.Duration(g.rng.Int63n(int64(span)/int64(24*time.Hour))) * 24 * time.Hour)
}

func (g *generator) baseReport(i int) (adr.Report, int) {
	age := 1 + g.rng.Intn(95)
	sex := "M"
	if g.rng.Float64() < 0.55 {
		sex = "F"
	}
	onset := g.randomDate(g.cfg.Start)
	reportDate := onset.Add(time.Duration(g.rng.Intn(30)) * 24 * time.Hour)
	if reportDate.After(g.cfg.End) {
		reportDate = g.cfg.End
	}
	drugs := g.pickDrugs()
	adrs := g.pickADRs()
	state := States[g.rng.Intn(len(States))]
	outcome := Outcomes[g.rng.Intn(len(Outcomes))]
	onsetStr := adr.FormatOnsetDate(onset)
	if g.rng.Float64() < 0.08 {
		onsetStr = "-" // missing onset, as in Table 1(a)
	}

	// Campaign reports share exposure context with other distinct
	// patients: same drug, onset, state, an age cohort, and overlapping
	// (often identical) reaction lists and narrative templates.
	campaignID := -1
	template := g.rng.Intn(numTemplates)
	if len(g.campaigns) > 0 && g.rng.Float64() < g.cfg.CampaignFraction {
		campaignID = g.rng.Intn(len(g.campaigns))
		camp := g.campaigns[campaignID]
		drugs = camp.drugs
		onsetStr = camp.onset
		state = camp.state
		age = camp.ageBase + g.rng.Intn(8)
		if camp.sex != "" {
			sex = camp.sex
		}
		if g.rng.Float64() < 0.2 {
			adrs = append([]string(nil), camp.canonical...)
		} else {
			n := 2 + g.rng.Intn(3)
			if n > len(camp.adrPool) {
				n = len(camp.adrPool)
			}
			perm := g.rng.Perm(len(camp.adrPool))
			adrs = make([]string, n)
			for j := 0; j < n; j++ {
				adrs[j] = camp.adrPool[perm[j]]
			}
		}
		if g.rng.Float64() < 0.6 {
			template = camp.template
		}
	}

	r := adr.Report{
		CaseNumber:          fmt.Sprintf("TGA-2013-%06d", i),
		ReportDate:          reportDate.Format("2006-01-02"),
		CalculatedAge:       age,
		Sex:                 sex,
		WeightCode:          fmt.Sprintf("W%d", g.rng.Intn(9)),
		EthnicityCode:       fmt.Sprintf("E%d", g.rng.Intn(6)),
		ResidentialState:    state,
		OnsetDate:           onsetStr,
		DateOfOutcome:       reportDate.Format("2006-01-02"),
		ReactionOutcomeCode: fmt.Sprintf("O%d", g.rng.Intn(len(Outcomes))),
		ReactionOutcomeDesc: outcome,
		SeverityCode:        fmt.Sprintf("S%d", g.rng.Intn(4)),
		SeverityDesc:        []string{"Mild", "Moderate", "Severe", "Life-threatening"}[g.rng.Intn(4)],
		TreatmentText:       "None reported",
		HospitalisationCode: fmt.Sprintf("H%d", g.rng.Intn(3)),
		HospitalisationDesc: []string{"Not hospitalised", "Hospitalised", "Unknown"}[g.rng.Intn(3)],
		MedDRAPTName:        strings.Join(adrs, ","),
		MedDRAPTCode:        ptCodes(adrs, g.adrs),
		MedDRALLTName:       strings.Join(adrs, ","),
		MedDRALLTCode:       ptCodes(adrs, g.adrs),
		SuspectCode:         "S1",
		SuspectDesc:         "Suspected medicine",
		TradeNameDesc:       strings.ToUpper(drugs[0]),
		TradeNameCode:       fmt.Sprintf("T%05d", g.rng.Intn(99999)),
		GenericNameDesc:     strings.Join(drugs, ","),
		GenericNameCode:     ptCodes(drugs, g.drugs),
		DosageAmount:        fmt.Sprintf("%d", []int{5, 10, 20, 40, 80}[g.rng.Intn(5)]),
		UnitProportionCode:  "MG",
		DosageFormCode:      fmt.Sprintf("F%d", g.rng.Intn(6)),
		DosageFormDesc:      []string{"Tablet", "Capsule", "Injection", "Syrup", "Patch", "Inhaler"}[g.rng.Intn(6)],
		RouteOfAdminCode:    fmt.Sprintf("R%d", g.rng.Intn(4)),
		RouteOfAdminDesc:    []string{"Oral", "Intravenous", "Intramuscular", "Subcutaneous"}[g.rng.Intn(4)],
		DosageStartDate:     onset.AddDate(0, 0, -g.rng.Intn(60)).Format("2006-01-02"),
		ReporterType:        ReporterTypes[g.rng.Intn(len(ReporterTypes))],
		ReportTypeDesc:      "Spontaneous report",
	}
	r.ReportDescription = g.describe(r, template)
	return r, campaignID
}

// ptCodes derives stable MedDRA-style codes from lexicon positions so that
// identical terms always carry identical codes.
func ptCodes(values, lexicon []string) string {
	pos := make(map[string]int, len(lexicon))
	for i, v := range lexicon {
		pos[v] = i
	}
	codes := make([]string, len(values))
	for i, v := range values {
		codes[i] = fmt.Sprintf("PT%06d", pos[v])
	}
	return strings.Join(codes, ",")
}

// duplicateOf derives the second half of a duplicate pair from base,
// applying the Table 1 perturbation modes.
func (g *generator) duplicateOf(base adr.Report, i int, mode DuplicateMode) adr.Report {
	r := base
	r.CaseNumber = fmt.Sprintf("TGA-2013-%06d", i)
	r.ReporterType = ReporterTypes[g.rng.Intn(len(ReporterTypes))]
	if d, err := time.Parse("2006-01-02", base.ReportDate); err == nil {
		followUp := d.AddDate(0, 0, 1+g.rng.Intn(21))
		if followUp.After(g.cfg.End) {
			followUp = g.cfg.End
		}
		r.ReportDate = followUp.Format("2006-01-02")
	}

	switch mode {
	case ChannelOverlap:
		// Independently written narrative for the same event.
		r.ReportDescription = g.describe(r, g.rng.Intn(numTemplates))
		if g.rng.Float64() < 0.5 {
			r.ReactionOutcomeDesc = Outcomes[g.rng.Intn(len(Outcomes))]
		}
		if g.rng.Float64() < 0.12 {
			r.CalculatedAge = transposeAge(g.rng, base.CalculatedAge)
		}
		if g.rng.Float64() < 0.15 {
			r.ResidentialState = []string{"Not Known", "-"}[g.rng.Intn(2)]
		}
		if g.rng.Float64() < 0.35 {
			r.MedDRAPTName, r.MedDRAPTCode = perturbList(g.rng, base.MedDRAPTName, base.MedDRAPTCode, g.adrs)
		}
		if g.rng.Float64() < 0.1 {
			r.OnsetDate = "-"
		}
	case FollowUp:
		// Same narrative extended with an update; outcome progresses;
		// the onset date is often corrected or refined by the
		// follow-up, so the categorical onset field frequently
		// mismatches the original.
		r.ReportDescription = g.extendDescription(base.ReportDescription, r)
		if g.rng.Float64() < 0.8 {
			r.ReactionOutcomeDesc = []string{"Recovered", "Recovering", "Recovered With Sequelae"}[g.rng.Intn(3)]
		}
		if g.rng.Float64() < 0.8 {
			// Follow-ups recode reactions after diagnosis: the
			// preliminary symptom terms are replaced with the
			// diagnosed condition (Table 1(a): myalgia/weakness
			// becomes rhabdomyolysis), so the ADR list often moves
			// far from the original.
			r.MedDRAPTName, r.MedDRAPTCode = g.recodeList(base.MedDRAPTName)
		}
		if g.rng.Float64() < 0.5 {
			if t, err := time.Parse(adr.DateLayout, base.OnsetDate); err == nil {
				r.OnsetDate = adr.FormatOnsetDate(t.AddDate(0, 0, 1+g.rng.Intn(3)))
			} else {
				r.OnsetDate = adr.FormatOnsetDate(g.randomDate(g.cfg.Start))
			}
		}
	}
	return r
}

// transposeAge simulates the handwriting misread of Table 1(b) (84 vs 34):
// the leading digit is replaced.
func transposeAge(rng *rand.Rand, age int) int {
	if age < 10 {
		return age + 10*(1+rng.Intn(8))
	}
	s := []byte(fmt.Sprintf("%d", age))
	orig := s[0]
	for s[0] == orig {
		s[0] = byte('1' + rng.Intn(9))
	}
	var out int
	fmt.Sscanf(string(s), "%d", &out)
	return out
}

// recodeList replaces most of a reaction list with newly coded terms,
// keeping at most one original term — the follow-up diagnosis recoding.
func (g *generator) recodeList(names string) (string, string) {
	ns := adr.SplitMulti(names)
	var kept []string
	if len(ns) > 0 && g.rng.Float64() < 0.5 {
		kept = append(kept, ns[g.rng.Intn(len(ns))])
	}
	target := len(kept) + 1 + g.rng.Intn(2)
	seen := make(map[string]struct{}, target)
	for _, k := range kept {
		seen[k] = struct{}{}
	}
	for len(kept) < target {
		a := g.adrs[g.skewedIndex(len(g.adrs))]
		if _, dup := seen[a]; dup {
			continue
		}
		seen[a] = struct{}{}
		kept = append(kept, a)
	}
	return strings.Join(kept, ","), ptCodes(kept, g.adrs)
}

// perturbList reorders the comma-separated term list and drops or adds one
// term, keeping codes consistent with names.
func perturbList(rng *rand.Rand, names, codes string, lexicon []string) (string, string) {
	ns := adr.SplitMulti(names)
	cs := adr.SplitMulti(codes)
	if len(ns) == 0 {
		return names, codes
	}
	type term struct{ name, code string }
	terms := make([]term, len(ns))
	for i := range ns {
		code := ""
		if i < len(cs) {
			code = cs[i]
		}
		terms[i] = term{ns[i], code}
	}
	rng.Shuffle(len(terms), func(i, j int) { terms[i], terms[j] = terms[j], terms[i] })
	switch {
	case len(terms) > 1 && rng.Float64() < 0.5:
		terms = terms[:len(terms)-1] // dropped symptom
	case rng.Float64() < 0.5:
		pos := make(map[string]int, len(lexicon))
		for i, v := range lexicon {
			pos[v] = i
		}
		extra := lexicon[rng.Intn(len(lexicon))]
		terms = append(terms, term{extra, fmt.Sprintf("PT%06d", pos[extra])})
	}
	outN := make([]string, len(terms))
	outC := make([]string, len(terms))
	for i, t := range terms {
		outN[i] = t.name
		outC[i] = t.code
	}
	return strings.Join(outN, ","), strings.Join(outC, ",")
}
