package adrgen

import (
	"fmt"
	"math/rand"
	"sort"

	"adrdedup/internal/adr"
)

// LabeledPair is one report pair with its duplicate label: +1 for duplicate,
// -1 for non-duplicate (the paper's label convention).
type LabeledPair struct {
	A, B  int // indices into Corpus.Reports
	Label int
}

// PairSampleOptions controls labelled pair-set construction.
type PairSampleOptions struct {
	// Total is the pair count to produce. Since positives are fixed by the
	// ground truth, the negative count is Total - len(Positives) — the
	// extreme imbalance of §3 arises naturally.
	Total int
	// Positives selects which ground-truth duplicate pairs to include
	// (e.g. the training half of a split). Nil means all of them.
	Positives []DuplicatePair
	// HardFraction is the share of negatives sampled from confusable
	// report pairs: two distinct reports of the same campaign (same
	// drug, onset date, state, overlapping reactions) or, failing that,
	// pairs sharing a drug or an ADR term. The remainder is sampled
	// uniformly.
	HardFraction float64
	// Seed makes sampling deterministic.
	Seed int64
}

// SamplePairs builds a labelled pair set: every selected ground-truth
// duplicate pair (label +1) plus sampled distinct non-duplicate pairs
// (label -1) up to Total.
func (c *Corpus) SamplePairs(opts PairSampleOptions) ([]LabeledPair, error) {
	positives := opts.Positives
	if positives == nil {
		positives = c.Duplicates
	}
	if opts.Total < len(positives) {
		return nil, fmt.Errorf("adrgen: total %d smaller than %d positives", opts.Total, len(positives))
	}
	if opts.HardFraction < 0 || opts.HardFraction > 1 {
		return nil, fmt.Errorf("adrgen: hard fraction %v out of [0,1]", opts.HardFraction)
	}
	n := len(c.Reports)
	if n < 2 {
		return nil, fmt.Errorf("adrgen: corpus too small (%d reports)", n)
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	isDup := make(map[[2]int]bool, len(c.Duplicates))
	for _, d := range c.Duplicates {
		isDup[pairKey(d.IdxA, d.IdxB)] = true
	}

	out := make([]LabeledPair, 0, opts.Total)
	used := make(map[[2]int]bool, opts.Total)
	for _, d := range positives {
		k := pairKey(d.IdxA, d.IdxB)
		if used[k] {
			continue
		}
		used[k] = true
		out = append(out, LabeledPair{A: d.IdxA, B: d.IdxB, Label: +1})
	}

	byDrug := c.indexBy(func(r adr.Report) []string { return adr.SplitMulti(r.GenericNameDesc) })
	byADR := c.indexBy(func(r adr.Report) []string { return adr.SplitMulti(r.MedDRAPTName) })
	var campaignMembers [][]int
	if len(c.CampaignOf) == len(c.Reports) {
		byCampaign := make(map[int][]int)
		for i, camp := range c.CampaignOf {
			if camp >= 0 {
				byCampaign[camp] = append(byCampaign[camp], i)
			}
		}
		for _, members := range byCampaign {
			if len(members) >= 2 {
				campaignMembers = append(campaignMembers, members)
			}
		}
		sort.Slice(campaignMembers, func(i, j int) bool {
			return campaignMembers[i][0] < campaignMembers[j][0]
		})
	}

	needed := opts.Total - len(out)
	hardTarget := int(float64(needed) * opts.HardFraction)
	// Cap the attempts so a pathological corpus (e.g. every report
	// identical) cannot loop forever.
	maxAttempts := 50*needed + 1000
	attempts := 0
	addPair := func(a, b int) bool {
		if a == b {
			return false
		}
		k := pairKey(a, b)
		if used[k] || isDup[k] {
			return false
		}
		used[k] = true
		out = append(out, LabeledPair{A: k[0], B: k[1], Label: -1})
		return true
	}
	for hard := 0; hard < hardTarget && attempts < maxAttempts; attempts++ {
		// Prefer confusable same-campaign pairs; fall back to pairs
		// sharing a drug or an ADR term.
		if len(campaignMembers) > 0 && rng.Float64() < 0.6 {
			members := campaignMembers[rng.Intn(len(campaignMembers))]
			a := members[rng.Intn(len(members))]
			b := members[rng.Intn(len(members))]
			if addPair(a, b) {
				hard++
			}
			continue
		}
		idx := byDrug
		if rng.Float64() < 0.5 {
			idx = byADR
		}
		a := rng.Intn(n)
		keys := idx.keysOf[a]
		if len(keys) == 0 {
			continue
		}
		peers := idx.byKey[keys[rng.Intn(len(keys))]]
		if len(peers) < 2 {
			continue
		}
		b := peers[rng.Intn(len(peers))]
		if addPair(a, b) {
			hard++
		}
	}
	for len(out) < opts.Total && attempts < maxAttempts {
		attempts++
		addPair(rng.Intn(n), rng.Intn(n))
	}
	if len(out) < opts.Total {
		return nil, fmt.Errorf("adrgen: could only sample %d of %d pairs", len(out), opts.Total)
	}
	// Positives were emitted first; shuffle so downstream partitioning
	// does not see them clustered.
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, nil
}

// SplitDuplicates partitions the ground-truth duplicate pairs into a
// training and a testing subset, deterministically for a given seed.
func (c *Corpus) SplitDuplicates(trainFraction float64, seed int64) (train, test []DuplicatePair) {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(c.Duplicates))
	cut := int(float64(len(c.Duplicates)) * trainFraction)
	for i, p := range perm {
		if i < cut {
			train = append(train, c.Duplicates[p])
		} else {
			test = append(test, c.Duplicates[p])
		}
	}
	return train, test
}

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

type valueIndex struct {
	keysOf [][]string
	byKey  map[string][]int
}

func (c *Corpus) indexBy(keys func(adr.Report) []string) *valueIndex {
	idx := &valueIndex{
		keysOf: make([][]string, len(c.Reports)),
		byKey:  make(map[string][]int),
	}
	for i, r := range c.Reports {
		ks := keys(r)
		idx.keysOf[i] = ks
		for _, k := range ks {
			idx.byKey[k] = append(idx.byKey[k], i)
		}
	}
	return idx
}
