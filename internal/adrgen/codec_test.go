package adrgen

import (
	"bytes"
	"strings"
	"testing"
)

func TestGroundTruthRoundTrip(t *testing.T) {
	c := Generate(Config{NumReports: 200, DuplicatePairs: 15, NumDrugs: 40, NumADRs: 60, Seed: 3})
	var buf bytes.Buffer
	if err := WriteGroundTruth(&buf, c.Duplicates); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGroundTruth(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 15 {
		t.Fatalf("records = %d", len(got))
	}
	for i, rec := range got {
		d := c.Duplicates[i]
		if rec.CaseA != d.CaseA || rec.CaseB != d.CaseB || rec.Mode != d.Mode.String() {
			t.Errorf("record %d = %+v, want %+v", i, rec, d)
		}
	}
}

func TestReadGroundTruthRejectsBadInput(t *testing.T) {
	if _, err := ReadGroundTruth(strings.NewReader("{oops")); err == nil {
		t.Error("invalid JSON must error")
	}
	if _, err := ReadGroundTruth(strings.NewReader(`[{"caseA":"","caseB":"x"}]`)); err == nil {
		t.Error("missing case number must error")
	}
}
