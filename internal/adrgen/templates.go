package adrgen

import (
	"fmt"
	"strings"

	"adrdedup/internal/adr"
)

// numTemplates is the number of distinct narrative templates. Duplicate
// pairs from different channels pick templates independently, so their
// descriptions paraphrase the same facts — the Table 1 pattern the text
// pipeline must see through.
const numTemplates = 6

func sexWord(sex string) string {
	if sex == "F" {
		return "female"
	}
	return "male"
}

func joinTerms(csv string, conj string) string {
	parts := adr.SplitMulti(csv)
	for i := range parts {
		parts[i] = strings.ToLower(parts[i])
	}
	switch len(parts) {
	case 0:
		return "an unspecified reaction"
	case 1:
		return parts[0]
	default:
		return strings.Join(parts[:len(parts)-1], ", ") + " " + conj + " " + parts[len(parts)-1]
	}
}

// describe renders the report's facts through one of the narrative
// templates. Every template mentions the drug, the reactions, the age and
// sex, and (when known) the onset date, so that paraphrases share content
// words after stop-word removal and stemming; each template adds its own
// boilerplate so raw strings differ substantially.
func (g *generator) describe(r adr.Report, template int) string {
	drug := joinTerms(r.GenericNameDesc, "and")
	reactions := joinTerms(r.MedDRAPTName, "and")
	sw := sexWord(r.Sex)
	onset := r.OnsetDate
	if onset == "-" || onset == "" {
		onset = "an unknown date"
	}
	var b strings.Builder
	switch template % numTemplates {
	case 0:
		fmt.Fprintf(&b, "Reference number %s is a literature report received on %s pertaining to a %d year-old %s patient who experienced %s while on %s for the treatment of unknown indication.",
			r.CaseNumber, r.ReportDate, r.CalculatedAge, sw, reactions, drug)
		fmt.Fprintf(&b, " The reporter considered the events possibly related to the suspect medicine. No further information was available at the time of reporting.")
	case 1:
		fmt.Fprintf(&b, "The %d-year-old %s subject started treatment with %s %s mg, start date and duration of therapy unknown.",
			r.CalculatedAge, sw, drug, r.DosageAmount)
		fmt.Fprintf(&b, " On %s the subject presented with %s and was assessed by the treating physician.", onset, reactions)
		fmt.Fprintf(&b, " Outcome at the time of the report was recorded as %s.", strings.ToLower(r.ReactionOutcomeDesc))
	case 2:
		fmt.Fprintf(&b, "On %s, within hours of administration of %s, the subject, a %d year-old %s, experienced %s.",
			onset, drug, r.CalculatedAge, sw, reactions)
		fmt.Fprintf(&b, " Symptoms persisted and the subject sought medical attention. Concomitant medications were not reported. The case was assessed as %s.",
			strings.ToLower(r.SeverityDesc))
	case 3:
		fmt.Fprintf(&b, "A %s report concerning a %d year-old %s patient treated with %s.",
			strings.ToLower(r.ReporterType), r.CalculatedAge, sw, drug)
		fmt.Fprintf(&b, " Following administration the patient developed %s with onset on %s.", reactions, onset)
		fmt.Fprintf(&b, " The patient required review; hospitalisation status: %s. Causality was not formally assessed.",
			strings.ToLower(r.HospitalisationDesc))
	case 4:
		fmt.Fprintf(&b, "This spontaneous case describes %s in a %d-year-old %s patient who received %s (%s mg, %s).",
			reactions, r.CalculatedAge, sw, drug, r.DosageAmount, strings.ToLower(r.RouteOfAdminDesc))
		fmt.Fprintf(&b, " Event onset was %s. At follow-up the outcome was %s. The report originated from a %s.",
			onset, strings.ToLower(r.ReactionOutcomeDesc), strings.ToLower(r.ReporterType))
	default:
		fmt.Fprintf(&b, "In the afternoon of %s, the patient, %d years of age (%s), experienced %s for several hours after taking %s and had to seek assistance.",
			onset, r.CalculatedAge, sw, reactions, drug)
		fmt.Fprintf(&b, " She required observation before feeling better and did not attend hospital. Additional symptoms were reported subsequently.")
	}
	return b.String()
}

// extendDescription models a follow-up narrative: the original text plus an
// update paragraph, possibly truncated at the front as data-entry systems
// often do.
func (g *generator) extendDescription(original string, r adr.Report) string {
	update := fmt.Sprintf(" Follow-up received on %s: the patient's condition was reported as %s.",
		r.ReportDate, strings.ToLower(r.ReactionOutcomeDesc))
	return original + update
}
