package adrgen

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"adrdedup/internal/adr"
	"adrdedup/internal/text"
)

func smallConfig() Config {
	return Config{NumReports: 600, DuplicatePairs: 30, NumDrugs: 120, NumADRs: 200, Seed: 7}
}

func TestLexiconSizesAndUniqueness(t *testing.T) {
	for _, n := range []int{10, 100, 1366, 2000} {
		drugs := DrugLexicon(n)
		if len(drugs) != n {
			t.Fatalf("DrugLexicon(%d) returned %d names", n, len(drugs))
		}
		seen := make(map[string]bool)
		for _, d := range drugs {
			if seen[d] {
				t.Fatalf("duplicate drug %q at n=%d", d, n)
			}
			seen[d] = true
		}
	}
	for _, n := range []int{10, 2351, 3000} {
		adrs := ADRLexicon(n)
		if len(adrs) != n {
			t.Fatalf("ADRLexicon(%d) returned %d terms", n, len(adrs))
		}
		seen := make(map[string]bool)
		for _, a := range adrs {
			if seen[a] {
				t.Fatalf("duplicate ADR %q at n=%d", a, n)
			}
			seen[a] = true
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig())
	b := Generate(smallConfig())
	if !reflect.DeepEqual(a.Reports, b.Reports) {
		t.Error("same seed produced different reports")
	}
	if !reflect.DeepEqual(a.Duplicates, b.Duplicates) {
		t.Error("same seed produced different ground truth")
	}
	c := Generate(Config{NumReports: 600, DuplicatePairs: 30, NumDrugs: 120, NumADRs: 200, Seed: 8})
	if reflect.DeepEqual(a.Reports, c.Reports) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestGenerateCorpusShape(t *testing.T) {
	c := Generate(smallConfig())
	if len(c.Reports) != 600 {
		t.Fatalf("reports = %d", len(c.Reports))
	}
	if len(c.Duplicates) != 30 {
		t.Fatalf("duplicate pairs = %d", len(c.Duplicates))
	}
	caseNums := make(map[string]bool)
	for i, r := range c.Reports {
		if r.ArrivalSeq != i {
			t.Errorf("report %d ArrivalSeq = %d", i, r.ArrivalSeq)
		}
		if r.CaseNumber == "" || caseNums[r.CaseNumber] {
			t.Errorf("bad or duplicate case number %q", r.CaseNumber)
		}
		caseNums[r.CaseNumber] = true
		if r.CalculatedAge < 1 || r.CalculatedAge > 105 {
			t.Errorf("age out of range: %d", r.CalculatedAge)
		}
		if r.GenericNameDesc == "" || r.MedDRAPTName == "" {
			t.Errorf("report %d missing drug or ADR", i)
		}
	}
	for _, d := range c.Duplicates {
		if d.IdxA == d.IdxB {
			t.Error("self-duplicate pair")
		}
		if c.Reports[d.IdxA].CaseNumber != d.CaseA || c.Reports[d.IdxB].CaseNumber != d.CaseB {
			t.Error("duplicate pair case numbers out of sync with indices")
		}
	}
}

func TestTable3StatisticsAtFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale corpus in -short mode")
	}
	c := Generate(Config{Seed: 1})
	if len(c.Reports) != 10382 {
		t.Errorf("reports = %d, want 10382", len(c.Reports))
	}
	if len(c.Duplicates) != 286 {
		t.Errorf("duplicates = %d, want 286", len(c.Duplicates))
	}
	db := adr.NewDatabase()
	for _, r := range c.Reports {
		r.ArrivalSeq = 0
		if err := db.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	s := db.Summarize()
	// The lexicons bound unique counts; with head-heavy sampling over
	// 10k reports nearly the whole lexicon is touched.
	if s.UniqueDrugs < 1000 || s.UniqueDrugs > 1366 {
		t.Errorf("unique drugs = %d, want close to 1366", s.UniqueDrugs)
	}
	if s.UniqueADRs < 1700 || s.UniqueADRs > 2351 {
		t.Errorf("unique ADRs = %d, want close to 2351", s.UniqueADRs)
	}
	if !strings.HasPrefix(s.ReportPeriod, "2013-") {
		t.Errorf("period = %q", s.ReportPeriod)
	}
}

func TestDuplicatesShareIdentifyingFields(t *testing.T) {
	c := Generate(smallConfig())
	ageMatches := 0
	for _, d := range c.Duplicates {
		a, b := c.Reports[d.IdxA], c.Reports[d.IdxB]
		if a.Sex != b.Sex {
			t.Errorf("duplicate pair %s/%s differs in sex", d.CaseA, d.CaseB)
		}
		if a.CalculatedAge == b.CalculatedAge {
			ageMatches++
		}
		if a.GenericNameDesc != b.GenericNameDesc {
			t.Errorf("duplicate pair %s/%s differs in drugs", d.CaseA, d.CaseB)
		}
	}
	// Age errors are injected in ~12% of channel-overlap duplicates only.
	if ageMatches < len(c.Duplicates)*3/4 {
		t.Errorf("only %d/%d duplicate pairs share age", ageMatches, len(c.Duplicates))
	}
}

func TestDuplicateDescriptionsShareContentWords(t *testing.T) {
	c := Generate(smallConfig())
	for _, d := range c.Duplicates {
		a := text.Process(c.Reports[d.IdxA].ReportDescription)
		b := text.Process(c.Reports[d.IdxB].ReportDescription)
		set := make(map[string]bool)
		for _, tok := range a {
			set[tok] = true
		}
		shared := 0
		for _, tok := range b {
			if set[tok] {
				shared++
			}
		}
		if shared < 3 {
			t.Errorf("pair %s/%s (%s) shares only %d processed tokens",
				d.CaseA, d.CaseB, d.Mode, shared)
		}
	}
}

func TestDescriptionsAreNarrativeLength(t *testing.T) {
	// §4.1: the report description field is significantly longer than
	// identifying fields, with the majority 250-300 characters.
	c := Generate(smallConfig())
	longEnough := 0
	for _, r := range c.Reports {
		if len(r.ReportDescription) >= 150 {
			longEnough++
		}
	}
	if longEnough < len(c.Reports)*9/10 {
		t.Errorf("only %d/%d descriptions are narrative-length", longEnough, len(c.Reports))
	}
}

func TestIsDuplicatePair(t *testing.T) {
	c := Generate(smallConfig())
	d := c.Duplicates[0]
	if !c.IsDuplicatePair(d.IdxA, d.IdxB) || !c.IsDuplicatePair(d.IdxB, d.IdxA) {
		t.Error("IsDuplicatePair false for ground-truth pair")
	}
	if c.IsDuplicatePair(d.IdxA, d.IdxA) {
		t.Error("self pair reported as duplicate")
	}
}

func TestTransposeAgeAlwaysChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for age := 1; age < 100; age++ {
		got := transposeAge(rng, age)
		if got == age {
			t.Errorf("transposeAge(%d) unchanged", age)
		}
		if got < 1 {
			t.Errorf("transposeAge(%d) = %d", age, got)
		}
	}
}

func TestModeStrings(t *testing.T) {
	if ChannelOverlap.String() != "channel-overlap" || FollowUp.String() != "follow-up" {
		t.Error("mode strings wrong")
	}
}

func TestSamplePairs(t *testing.T) {
	c := Generate(smallConfig())
	pairs, err := c.SamplePairs(PairSampleOptions{Total: 2000, HardFraction: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2000 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	pos, neg := 0, 0
	seen := make(map[[2]int]bool)
	for _, p := range pairs {
		if p.A == p.B {
			t.Error("self pair sampled")
		}
		k := pairKey(p.A, p.B)
		if seen[k] {
			t.Errorf("pair %v sampled twice", k)
		}
		seen[k] = true
		switch p.Label {
		case +1:
			pos++
			if !c.IsDuplicatePair(p.A, p.B) {
				t.Error("positive label on non-duplicate pair")
			}
		case -1:
			neg++
			if c.IsDuplicatePair(p.A, p.B) {
				t.Error("negative label on ground-truth duplicate")
			}
		default:
			t.Errorf("bad label %d", p.Label)
		}
	}
	if pos != len(c.Duplicates) {
		t.Errorf("positives = %d, want %d", pos, len(c.Duplicates))
	}
	if neg != 2000-pos {
		t.Errorf("negatives = %d", neg)
	}
}

func TestSamplePairsDeterministic(t *testing.T) {
	c := Generate(smallConfig())
	a, err := c.SamplePairs(PairSampleOptions{Total: 500, HardFraction: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.SamplePairs(PairSampleOptions{Total: 500, HardFraction: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different samples")
	}
}

func TestSamplePairsValidation(t *testing.T) {
	c := Generate(smallConfig())
	if _, err := c.SamplePairs(PairSampleOptions{Total: 5}); err == nil {
		t.Error("expected error when total < positives")
	}
	if _, err := c.SamplePairs(PairSampleOptions{Total: 100, HardFraction: 2}); err == nil {
		t.Error("expected error for bad hard fraction")
	}
}

func TestSamplePairsSubsetPositives(t *testing.T) {
	c := Generate(smallConfig())
	train, test := c.SplitDuplicates(0.6, 3)
	if len(train)+len(test) != len(c.Duplicates) {
		t.Fatalf("split sizes %d+%d != %d", len(train), len(test), len(c.Duplicates))
	}
	pairs, err := c.SamplePairs(PairSampleOptions{Total: 300, Positives: train, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	pos := 0
	for _, p := range pairs {
		if p.Label == +1 {
			pos++
		}
	}
	if pos != len(train) {
		t.Errorf("positives = %d, want %d", pos, len(train))
	}
}

func TestSplitDuplicatesDeterministicAndDisjoint(t *testing.T) {
	c := Generate(smallConfig())
	tr1, te1 := c.SplitDuplicates(0.5, 11)
	tr2, _ := c.SplitDuplicates(0.5, 11)
	if !reflect.DeepEqual(tr1, tr2) {
		t.Error("split not deterministic")
	}
	inTrain := make(map[[2]int]bool)
	for _, d := range tr1 {
		inTrain[pairKey(d.IdxA, d.IdxB)] = true
	}
	for _, d := range te1 {
		if inTrain[pairKey(d.IdxA, d.IdxB)] {
			t.Error("train and test overlap")
		}
	}
}
