// Package adrgen generates synthetic adverse drug reaction corpora with the
// statistical profile of the TGA dataset the paper evaluates on (Table 3:
// 10,382 reports over six months, 1,366 unique drugs, 2,351 unique ADR
// terms, 286 labelled duplicate pairs) and duplicate-pair noise modelled on
// the discrepancies of Table 1 (differing outcome descriptions, age
// transposition errors, reordered/partial ADR lists, paraphrased report
// descriptions, follow-up reports). The real TGA extract is proprietary;
// this generator is the substitution documented in DESIGN.md.
package adrgen

import "fmt"

// realDrugs seeds the drug lexicon with names that appear in the paper or
// are common in pharmacovigilance data, so generated reports read
// plausibly.
var realDrugs = []string{
	"Atorvastatin", "Influenza Vaccine", "Dtpa Vaccine", "Simvastatin",
	"Amoxicillin", "Paracetamol", "Ibuprofen", "Warfarin", "Metformin",
	"Omeprazole", "Salbutamol", "Prednisolone", "Ramipril", "Clopidogrel",
	"Ceftriaxone", "Azithromycin", "Diclofenac", "Enalapril", "Furosemide",
	"Gabapentin",
}

// realADRs seeds the reaction lexicon with MedDRA-style preferred terms,
// including every term used in the paper's Table 1 examples.
var realADRs = []string{
	"Rhabdomyolysis", "Vomiting", "Pyrexia", "Cough", "Headache",
	"Choking sensation", "Chills", "Myalgia", "Nausea", "Dizziness",
	"Rash", "Pruritus", "Urticaria", "Anaphylactic reaction", "Diarrhoea",
	"Fatigue", "Dyspnoea", "Syncope", "Injection site pain", "Arthralgia",
}

var drugPrefixes = []string{
	"Ator", "Simva", "Rosu", "Prava", "Fluva", "Cef", "Amoxi", "Clari",
	"Azi", "Doxy", "Line", "Vanco", "Genta", "Tobra", "Strepto", "Erythro",
	"Oxy", "Hydro", "Chlor", "Fluo", "Brom", "Iodo", "Nitro", "Sulfa",
	"Keto", "Ibu", "Napro", "Indo", "Pira", "Levo", "Dextro", "Meta",
	"Para", "Orto", "Cyclo", "Benz", "Phen", "Tolu", "Xylo", "Quin",
	"Riva", "Dabi", "Apix", "Edox", "Fonda", "Hepa", "Warfa", "Acen",
	"Tica", "Prasu", "Clopi", "Dipy", "Cilo", "Pento", "Theo", "Amino",
}

var drugSuffixes = []string{
	"statin", "cillin", "mycin", "cycline", "floxacin", "azole", "prazole",
	"sartan", "pril", "olol", "dipine", "semide", "thiazide", "gliptin",
	"formin", "glitazone", "parin", "xaban", "gatran", "grel", "profen",
	"coxib", "triptan", "setron", "pitant", "mab", "nib", "ciclib",
}

var vaccineKinds = []string{
	"Influenza", "Dtpa", "Measles", "Mumps", "Rubella", "Varicella",
	"Hepatitis A", "Hepatitis B", "Pneumococcal", "Meningococcal",
	"Rotavirus", "Zoster", "Typhoid", "Yellow Fever", "Rabies", "Polio",
}

var adrQualifiers = []string{
	"Acute", "Chronic", "Severe", "Mild", "Transient", "Recurrent",
	"Persistent", "Generalised", "Localised", "Intermittent", "Progressive",
	"Drug-induced", "Allergic", "Toxic", "Idiopathic", "Secondary",
	"Peripheral", "Central", "Bilateral", "Unilateral", "Postural",
	"Nocturnal", "Exertional", "Febrile", "Haemorrhagic", "Ischaemic",
	"Necrotising", "Atypical", "Fulminant", "Subacute", "Refractory",
	"Paroxysmal", "Vasovagal", "Neuropathic", "Psychogenic", "Metabolic",
	"Autoimmune", "Infective", "Inflammatory", "Degenerative",
}

var adrConditions = []string{
	"dermatitis", "hepatitis", "nephritis", "gastritis", "colitis",
	"pancreatitis", "myocarditis", "pericarditis", "pneumonitis",
	"vasculitis", "neuritis", "arthritis", "myopathy", "neuropathy",
	"encephalopathy", "cardiomyopathy", "nephropathy", "retinopathy",
	"anaemia", "thrombocytopenia", "neutropenia", "leukopenia",
	"hyperkalaemia", "hypokalaemia", "hyponatraemia", "hypoglycaemia",
	"hyperglycaemia", "hypotension", "hypertension", "bradycardia",
	"tachycardia", "arrhythmia", "fibrillation", "oedema", "erythema",
	"alopecia", "paraesthesia", "dyskinesia", "dystonia", "tremor",
	"seizure", "confusion", "insomnia", "somnolence", "depression",
	"agitation", "hallucination", "tinnitus", "vertigo", "blurred vision",
	"dysphagia", "dyspepsia", "constipation", "flatulence", "stomatitis",
	"epistaxis", "haematuria", "proteinuria", "jaundice", "pallor",
}

// DrugLexicon returns n unique drug names: the seeded real names first,
// then vaccines, then combinatorial generic names.
func DrugLexicon(n int) []string {
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	add := func(name string) bool {
		if len(out) >= n {
			return false
		}
		if _, dup := seen[name]; dup {
			return true
		}
		seen[name] = struct{}{}
		out = append(out, name)
		return true
	}
	for _, d := range realDrugs {
		add(d)
	}
	for _, v := range vaccineKinds {
		add(v + " Vaccine")
	}
	for _, suf := range drugSuffixes {
		for _, pre := range drugPrefixes {
			if !add(pre + suf) {
				return out
			}
		}
	}
	// Combinatorial space exhausted (56x28 = 1568 plus seeds); number the
	// remainder if a caller asks for more.
	for i := 0; len(out) < n; i++ {
		add(fmt.Sprintf("Investigational Agent %04d", i))
	}
	return out
}

// ADRLexicon returns n unique MedDRA-style preferred terms: the seeded real
// terms first, then qualifier x condition combinations.
func ADRLexicon(n int) []string {
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	add := func(name string) bool {
		if len(out) >= n {
			return false
		}
		if _, dup := seen[name]; dup {
			return true
		}
		seen[name] = struct{}{}
		out = append(out, name)
		return true
	}
	for _, a := range realADRs {
		add(a)
	}
	for _, cond := range adrConditions {
		for _, q := range adrQualifiers {
			if !add(q + " " + cond) {
				return out
			}
		}
	}
	for i := 0; len(out) < n; i++ {
		add(fmt.Sprintf("Unclassified reaction %04d", i))
	}
	return out
}

// States are Australian jurisdictions plus the missing-data markers seen in
// Table 1 ("Not Known", "-").
var States = []string{"NSW", "VIC", "QLD", "WA", "SA", "TAS", "ACT", "NT", "Not Known", "-"}

// Outcomes are reaction outcome descriptions, including the Table 1 values.
var Outcomes = []string{"Recovered", "Unknown", "Not Recovered", "Recovering", "Fatal", "Recovered With Sequelae"}

// ReporterTypes are the submission channels §1 describes.
var ReporterTypes = []string{"General Practitioner", "Pharmacist", "Hospital", "Consumer", "Pharmaceutical Company", "Nurse"}
