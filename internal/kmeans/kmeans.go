// Package kmeans implements Lloyd's k-means with k-means++ seeding. The
// paper uses k-means in three places: to Voronoi-partition the labelled
// training pairs (§4.3.1), to cluster the positive pairs for testing-set
// pruning (§4.3.4), and to build the "SVM clustering" baseline's training
// sample (§5.2.2). Clusters produced by k-means form a Voronoi diagram —
// each point is closer to its own center than to any other — which is the
// property Algorithm 1's hyperplane bound depends on.
package kmeans

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"adrdedup/internal/vecmath"
)

// Options configures a run. The zero value uses sensible defaults.
type Options struct {
	// MaxIter bounds Lloyd iterations (default 50).
	MaxIter int
	// Tol stops iteration when no center moves more than Tol (default 1e-6).
	Tol float64
	// Seed drives k-means++ seeding and empty-cluster repair.
	Seed int64
	// Parallelism caps assignment-step goroutines; 0 means GOMAXPROCS.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 50
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Result is a completed clustering.
type Result struct {
	// Centers holds k centroids.
	Centers [][]float64
	// Assign maps each input point to its center index.
	Assign []int
	// Sizes counts points per cluster.
	Sizes []int
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
	// Inertia is the total squared distance of points to their centers.
	Inertia float64
}

// ErrNoData is returned when there are no points to cluster.
var ErrNoData = errors.New("kmeans: no data")

// Run clusters data into k groups. When k >= len(data) every point becomes
// its own center. Results are deterministic for a given seed.
func Run(data [][]float64, k int, opts Options) (*Result, error) {
	if len(data) == 0 {
		return nil, ErrNoData
	}
	if k <= 0 {
		return nil, fmt.Errorf("kmeans: k = %d", k)
	}
	dim := len(data[0])
	for i, v := range data {
		if len(v) != dim {
			return nil, fmt.Errorf("kmeans: point %d has dim %d, want %d", i, len(v), dim)
		}
	}
	if k > len(data) {
		k = len(data)
	}
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	centers := seedPlusPlus(data, k, rng)
	assign := make([]int, len(data))
	res := &Result{}
	for iter := 0; iter < opts.MaxIter; iter++ {
		res.Iterations = iter + 1
		inertia := assignAll(data, centers, assign, opts.Parallelism)
		res.Inertia = inertia

		newCenters, sizes := recompute(data, assign, k, dim)
		repairEmpty(newCenters, sizes, data, assign, rng)

		moved := 0.0
		for c := range centers {
			if d := vecmath.Dist(centers[c], newCenters[c]); d > moved {
				moved = d
			}
		}
		centers = newCenters
		res.Sizes = sizes
		if moved <= opts.Tol {
			break
		}
	}
	// Final assignment against the final centers.
	res.Inertia = assignAll(data, centers, assign, opts.Parallelism)
	res.Centers = centers
	res.Assign = assign
	res.Sizes = make([]int, k)
	for _, a := range assign {
		res.Sizes[a]++
	}
	return res, nil
}

// seedPlusPlus picks initial centers with the k-means++ D^2 weighting.
func seedPlusPlus(data [][]float64, k int, rng *rand.Rand) [][]float64 {
	centers := make([][]float64, 0, k)
	centers = append(centers, vecmath.Clone(data[rng.Intn(len(data))]))
	d2 := make([]float64, len(data))
	for i, v := range data {
		d2[i] = vecmath.SqDist(v, centers[0])
	}
	for len(centers) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var next int
		if total <= 0 {
			// All remaining points coincide with existing centers;
			// pick uniformly.
			next = rng.Intn(len(data))
		} else {
			target := rng.Float64() * total
			acc := 0.0
			for i, d := range d2 {
				acc += d
				if acc >= target {
					next = i
					break
				}
			}
		}
		c := vecmath.Clone(data[next])
		centers = append(centers, c)
		for i, v := range data {
			if d := vecmath.SqDist(v, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centers
}

// assignAll assigns every point to its nearest center, returning the total
// inertia. The scan parallelizes across chunks.
func assignAll(data [][]float64, centers [][]float64, assign []int, parallelism int) float64 {
	chunk := (len(data) + parallelism - 1) / parallelism
	if chunk < 1024 {
		chunk = 1024
	}
	var wg sync.WaitGroup
	partial := make([]float64, (len(data)+chunk-1)/chunk)
	for w := 0; w*chunk < len(data); w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(data) {
			hi = len(data)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var sum float64
			for i := lo; i < hi; i++ {
				a, d := vecmath.ArgMinDist(data[i], centers)
				assign[i] = a
				sum += d
			}
			partial[w] = sum
		}(w, lo, hi)
	}
	wg.Wait()
	var inertia float64
	for _, s := range partial {
		inertia += s
	}
	return inertia
}

func recompute(data [][]float64, assign []int, k, dim int) ([][]float64, []int) {
	centers := make([][]float64, k)
	sizes := make([]int, k)
	for c := range centers {
		centers[c] = make([]float64, dim)
	}
	for i, v := range data {
		a := assign[i]
		sizes[a]++
		vecmath.Add(centers[a], v)
	}
	for c := range centers {
		if sizes[c] > 0 {
			vecmath.Scale(centers[c], 1/float64(sizes[c]))
		}
	}
	return centers, sizes
}

// repairEmpty reseats empty clusters on random points so k clusters survive.
func repairEmpty(centers [][]float64, sizes []int, data [][]float64, assign []int, rng *rand.Rand) {
	for c := range centers {
		if sizes[c] == 0 {
			p := rng.Intn(len(data))
			copy(centers[c], data[p])
		}
	}
}

// Radii returns, per cluster, the distance from the center to its farthest
// member — the dcp_i quantity of the paper's testing-set pruning (§4.3.4,
// Step 2).
func Radii(data [][]float64, res *Result) []float64 {
	radii := make([]float64, len(res.Centers))
	for i, v := range data {
		c := res.Assign[i]
		if d := vecmath.Dist(v, res.Centers[c]); d > radii[c] {
			radii[c] = d
		}
	}
	return radii
}
