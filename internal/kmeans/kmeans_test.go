package kmeans

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"adrdedup/internal/vecmath"
)

// blobs generates n points around each of the given centers.
func blobs(centers [][]float64, n int, spread float64, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	var out [][]float64
	for _, c := range centers {
		for i := 0; i < n; i++ {
			p := make([]float64, len(c))
			for d := range p {
				p[d] = c[d] + rng.NormFloat64()*spread
			}
			out = append(out, p)
		}
	}
	return out
}

func TestRunRecoversWellSeparatedBlobs(t *testing.T) {
	trueCenters := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	data := blobs(trueCenters, 100, 0.5, 1)
	res, err := Run(data, 3, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 3 {
		t.Fatalf("centers = %d", len(res.Centers))
	}
	// Every true center must be within 1.0 of some found center.
	for _, tc := range trueCenters {
		best := math.Inf(1)
		for _, c := range res.Centers {
			if d := vecmath.Dist(tc, c); d < best {
				best = d
			}
		}
		if best > 1.0 {
			t.Errorf("no recovered center near %v (closest %.2f)", tc, best)
		}
	}
	for _, s := range res.Sizes {
		if s < 80 || s > 120 {
			t.Errorf("cluster size %d far from 100", s)
		}
	}
}

func TestVoronoiProperty(t *testing.T) {
	// Each point must be assigned to its nearest center — the property
	// Algorithm 1's hyperplane bound depends on.
	data := blobs([][]float64{{0, 0}, {5, 5}, {10, 0}, {0, 10}}, 50, 1.5, 2)
	res, err := Run(data, 4, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		want, _ := vecmath.ArgMinDist(v, res.Centers)
		if res.Assign[i] != want {
			t.Fatalf("point %d assigned to %d, nearest is %d", i, res.Assign[i], want)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	data := blobs([][]float64{{0, 0}, {8, 8}}, 200, 1, 5)
	a, err := Run(data, 5, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(data, 5, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Centers, b.Centers) || !reflect.DeepEqual(a.Assign, b.Assign) {
		t.Error("same seed produced different clusterings")
	}
}

func TestKLargerThanData(t *testing.T) {
	data := [][]float64{{0}, {1}, {2}}
	res, err := Run(data, 10, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 3 {
		t.Errorf("centers = %d, want clamped to 3", len(res.Centers))
	}
	if res.Inertia > 1e-9 {
		t.Errorf("inertia = %v, want 0 when every point is a center", res.Inertia)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(nil, 3, Options{}); err != ErrNoData {
		t.Errorf("empty data error = %v", err)
	}
	if _, err := Run([][]float64{{1}}, 0, Options{}); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := Run([][]float64{{1}, {1, 2}}, 1, Options{}); err == nil {
		t.Error("expected error for ragged dims")
	}
}

func TestIdenticalPoints(t *testing.T) {
	data := make([][]float64, 50)
	for i := range data {
		data[i] = []float64{3, 3}
	}
	res, err := Run(data, 4, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-9 {
		t.Errorf("inertia = %v on identical points", res.Inertia)
	}
}

func TestSizesSumAndAssignRange(t *testing.T) {
	data := blobs([][]float64{{0, 0, 0}, {4, 4, 4}}, 75, 1, 11)
	k := 6
	res, err := Run(data, k, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(data) {
		t.Errorf("sizes sum to %d, want %d", total, len(data))
	}
	for i, a := range res.Assign {
		if a < 0 || a >= k {
			t.Fatalf("assign[%d] = %d out of range", i, a)
		}
	}
}

func TestInertiaDecreasesWithMoreClusters(t *testing.T) {
	data := blobs([][]float64{{0, 0}, {6, 0}, {0, 6}, {6, 6}}, 60, 1.2, 17)
	var prev float64 = math.Inf(1)
	for _, k := range []int{1, 2, 4, 8} {
		res, err := Run(data, k, Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev*1.001 {
			t.Errorf("inertia rose from %v to %v at k=%d", prev, res.Inertia, k)
		}
		prev = res.Inertia
	}
}

func TestRadii(t *testing.T) {
	data := [][]float64{{0, 0}, {0, 2}, {10, 0}, {10, 4}}
	res, err := Run(data, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	radii := Radii(data, res)
	if len(radii) != 2 {
		t.Fatalf("radii = %v", radii)
	}
	for c, r := range radii {
		// Radius must cover every member of the cluster.
		for i, v := range data {
			if res.Assign[i] != c {
				continue
			}
			if d := vecmath.Dist(v, res.Centers[c]); d > r+1e-9 {
				t.Errorf("member %d at distance %v exceeds radius %v", i, d, r)
			}
		}
	}
}

func TestEmptyClusterRepair(t *testing.T) {
	// Two far blobs, k=3: one cluster will start empty at some point; the
	// repair must keep all k centers usable and the run must terminate.
	data := blobs([][]float64{{0, 0}, {100, 100}}, 30, 0.1, 21)
	res, err := Run(data, 3, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 3 {
		t.Errorf("centers = %d", len(res.Centers))
	}
}
