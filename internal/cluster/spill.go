package cluster

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// SpillCodec serializes block payloads for the disk-backed spill store. The
// block and shuffle services store `any`, so they cannot pick an encoding
// themselves; the typed layer that produced the data (internal/rdd, or a
// raw-cluster caller) registers a codec that knows the concrete type. Blocks
// without a codec are never spilled: the block cache falls back to plain
// eviction (lineage recompute on next read) and the shuffle service keeps the
// block resident.
//
// Decode(Encode(v)) must reproduce v's observable value exactly — spilling is
// a storage decision and must never change job output.
type SpillCodec interface {
	Encode(v any) ([]byte, error)
	Decode(b []byte) (any, error)
}

// codecFuncs adapts a pair of functions to SpillCodec.
type codecFuncs struct {
	encode func(v any) ([]byte, error)
	decode func(b []byte) (any, error)
}

func (c codecFuncs) Encode(v any) ([]byte, error) { return c.encode(v) }
func (c codecFuncs) Decode(b []byte) (any, error) { return c.decode(b) }

// GobCodec builds a SpillCodec for blocks whose dynamic type is exactly T,
// using encoding/gob. Note the usual gob caveat: an empty slice may decode as
// nil — both compare equal element-wise, which is the contract the engine's
// partition comparisons rely on, but callers using reflect.DeepEqual on
// spilled partitions should normalize first.
func GobCodec[T any]() SpillCodec {
	return codecFuncs{
		encode: func(v any) ([]byte, error) {
			t, ok := v.(T)
			if !ok {
				return nil, fmt.Errorf("cluster: gob spill codec: block is %T, not %T", v, t)
			}
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(&t); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
		decode: func(b []byte) (v any, err error) {
			// gob decoding of corrupt input can panic; a spill read-back
			// must degrade to an error like the checkpoint codec does.
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("cluster: gob spill codec: decode panicked: %v", r)
				}
			}()
			var t T
			if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&t); err != nil {
				return nil, err
			}
			return t, nil
		},
	}
}

// Spill frame format: every spilled block is wrapped in a self-describing,
// integrity-checked frame before hitting disk:
//
//	magic "ASPL" (4) | version (1) | crc32(raw payload) (4, LE) |
//	raw payload length (uvarint) | DEFLATE-compressed payload
//
// The CRC is over the *uncompressed* payload, so corruption introduced at any
// layer (disk, compression, truncation) is caught before a corrupt block can
// reach a task. decodeSpillFrame never panics on arbitrary input — it is the
// FuzzSpillCodec target.
var spillMagic = [4]byte{'A', 'S', 'P', 'L'}

const spillFrameVersion = 1

// maxSpillFrameRaw bounds the declared payload length a frame may claim, so
// a corrupt length field cannot drive a giant allocation during decode.
const maxSpillFrameRaw = int64(1) << 33 // 8 GiB

// ErrSpillCorrupt is the sentinel under every spill-frame decode failure.
var ErrSpillCorrupt = errors.New("cluster: corrupt spill frame")

// encodeSpillFrame wraps a raw payload in the spill frame format.
func encodeSpillFrame(raw []byte) []byte {
	var buf bytes.Buffer
	buf.Write(spillMagic[:])
	buf.WriteByte(spillFrameVersion)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(raw))
	buf.Write(crc[:])
	var lenBuf [binary.MaxVarintLen64]byte
	buf.Write(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(raw)))])
	// flate.NewWriter only errors for invalid levels; BestSpeed is valid.
	zw, _ := flate.NewWriter(&buf, flate.BestSpeed)
	zw.Write(raw) //nolint:errcheck // bytes.Buffer writes cannot fail
	zw.Close()    //nolint:errcheck
	return buf.Bytes()
}

// decodeSpillFrame unwraps and verifies a spill frame, returning the raw
// payload. Corrupt or truncated frames yield an error wrapping
// ErrSpillCorrupt; no input panics.
func decodeSpillFrame(frame []byte) ([]byte, error) {
	r := bytes.NewReader(frame)
	var head [9]byte // magic + version + crc
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("%w: short header", ErrSpillCorrupt)
	}
	if !bytes.Equal(head[:4], spillMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrSpillCorrupt, head[:4])
	}
	if head[4] != spillFrameVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrSpillCorrupt, head[4])
	}
	wantCRC := binary.LittleEndian.Uint32(head[5:9])
	rawLen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("%w: bad length varint", ErrSpillCorrupt)
	}
	if int64(rawLen) < 0 || int64(rawLen) > maxSpillFrameRaw {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrSpillCorrupt, rawLen)
	}
	// Read at most rawLen+1 decompressed bytes: one extra detects frames
	// whose payload is longer than declared without decompressing further.
	zr := flate.NewReader(r)
	defer zr.Close()
	raw := make([]byte, 0, rawLen)
	got, err := io.ReadAll(io.LimitReader(zr, int64(rawLen)+1))
	if err != nil {
		return nil, fmt.Errorf("%w: decompress: %v", ErrSpillCorrupt, err)
	}
	raw = append(raw, got...)
	if uint64(len(raw)) != rawLen {
		return nil, fmt.Errorf("%w: payload length %d, frame declares %d",
			ErrSpillCorrupt, len(raw), rawLen)
	}
	if crc32.ChecksumIEEE(raw) != wantCRC {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrSpillCorrupt)
	}
	return raw, nil
}

// SpillRef is a handle to one block persisted in the spill store.
type SpillRef struct {
	id int
	// rawBytes is the uncompressed payload size, diskBytes the framed and
	// compressed size actually written (the basis for virtual disk time).
	rawBytes  int64
	diskBytes int64
	// executor is the host whose local disk holds the file; like Spark
	// shuffle files, spilled blocks die with their executor.
	executor int
}

// RawBytes returns the uncompressed size of the spilled payload.
func (r SpillRef) RawBytes() int64 { return r.rawBytes }

// DiskBytes returns the framed, compressed on-disk size.
func (r SpillRef) DiskBytes() int64 { return r.diskBytes }

// SpillStore is the cluster's disk-backed overflow tier: blocks that no
// longer fit an executor's memory budget are framed (encodeSpillFrame),
// compressed, and written to per-cluster temporary files. Reads verify the
// frame and charge virtual disk time at Config.SpillMBps — the disk analogue
// of NetworkMBps. Files model executor-local disk: InvalidateExecutor on the
// owning service must free the dead host's spills.
type SpillStore struct {
	cluster *Cluster

	mu     sync.Mutex
	dir    string
	nextID int
	live   map[int]string // spill id -> file path
}

func newSpillStore(c *Cluster) *SpillStore {
	return &SpillStore{cluster: c, live: make(map[int]string)}
}

// dirLocked lazily creates the store's temp directory. Callers hold s.mu.
func (s *SpillStore) dirLocked() (string, error) {
	if s.dir != "" {
		return s.dir, nil
	}
	dir, err := os.MkdirTemp("", "adrdedup-spill-")
	if err != nil {
		return "", fmt.Errorf("cluster: creating spill dir: %w", err)
	}
	s.dir = dir
	return dir, nil
}

// Put frames, compresses, and persists one encoded payload, returning its
// ref. The caller decides attribution: executor is recorded on the ref so
// executor loss can free its local spills. Virtual disk-write time is charged
// to the cluster clock by the caller via SpillWriteNS (spills happen on the
// commit path, outside any single attempt's accounting).
func (s *SpillStore) Put(raw []byte, executor int) (SpillRef, error) {
	frame := encodeSpillFrame(raw)
	s.mu.Lock()
	defer s.mu.Unlock()
	dir, err := s.dirLocked()
	if err != nil {
		return SpillRef{}, err
	}
	s.nextID++
	id := s.nextID
	path := filepath.Join(dir, fmt.Sprintf("spill-%d.blk", id))
	if err := os.WriteFile(path, frame, 0o600); err != nil {
		return SpillRef{}, fmt.Errorf("cluster: writing spill block: %w", err)
	}
	s.live[id] = path
	return SpillRef{id: id, rawBytes: int64(len(raw)), diskBytes: int64(len(frame)), executor: executor}, nil
}

// Get reads back and verifies one spilled payload.
func (s *SpillStore) Get(ref SpillRef) ([]byte, error) {
	s.mu.Lock()
	path, ok := s.live[ref.id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("cluster: spill block %d already freed", ref.id)
	}
	frame, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading spill block %d: %w", ref.id, err)
	}
	raw, err := decodeSpillFrame(frame)
	if err != nil {
		return nil, fmt.Errorf("cluster: spill block %d: %w", ref.id, err)
	}
	return raw, nil
}

// Free deletes one spilled block's file.
func (s *SpillStore) Free(ref SpillRef) {
	s.mu.Lock()
	path, ok := s.live[ref.id]
	delete(s.live, ref.id)
	s.mu.Unlock()
	if ok {
		os.Remove(path) //nolint:errcheck // best-effort temp cleanup
	}
}

// Close removes every spilled file and the store's directory. The owning
// cluster calls it from Cluster.Close.
func (s *SpillStore) Close() {
	s.mu.Lock()
	dir := s.dir
	s.dir = ""
	s.live = make(map[int]string)
	s.mu.Unlock()
	if dir != "" {
		os.RemoveAll(dir) //nolint:errcheck
	}
}

// Spill exposes the cluster's spill store to the RDD layer (external merge
// runs spill through the same framed, compressed, virtually-charged tier the
// block and shuffle services use).
func (c *Cluster) Spill() *SpillStore { return c.spill }

// SpillingEnabled reports whether the disk overflow tier is on.
func (c *Cluster) SpillingEnabled() bool { return c.cfg.SpillToDisk }

// ExecutorMemoryBytes returns one executor's memory budget in bytes,
// honouring the fine-grained MemoryPerExecutorBytes override.
func (c *Cluster) ExecutorMemoryBytes() int64 { return c.cfg.executorMemoryBytes() }

// SpillIONS returns the virtual disk time for moving n on-disk bytes through
// the spill tier at Config.SpillMBps, the disk analogue of the network charge
// in FetchShuffle.
func (c *Cluster) SpillIONS(n int64) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) / (c.cfg.SpillMBps * 1e6) * 1e9
}

// recordSpill accounts one spill write: counters, trace, and virtual disk
// time on the cluster clock. detail names the spilled subject.
func (c *Cluster) recordSpill(ref SpillRef, detail string) {
	ns := c.AccountSpillWrite(ref, detail)
	c.mu.Lock()
	c.virtualNS += ns
	c.mu.Unlock()
}

// recordSpillLoad accounts one spill read-back in the trace; the virtual
// disk time is returned for the reader to charge to its attempt.
func (c *Cluster) recordSpillLoad(ref SpillRef, detail string) float64 {
	ns := c.SpillIONS(ref.diskBytes)
	if c.tracer.Enabled() {
		c.tracer.Emit(Event{Kind: EventSpillLoad, Task: -1, Attempt: -1, Executor: ref.executor,
			Bytes: ref.diskBytes, VirtualNS: ns, Detail: detail})
	}
	return ns
}

// AccountSpillWrite records one spill write in the counters and the trace and
// returns its virtual disk time for the caller to charge — task-side spillers
// (the RDD layer's external merge) add it to their own attempt; commit-path
// spillers put it on the cluster clock. detail names the spilled subject.
func (c *Cluster) AccountSpillWrite(ref SpillRef, detail string) float64 {
	c.metrics.SpillEvents.Add(1)
	c.metrics.SpilledBytes.Add(ref.diskBytes)
	ns := c.SpillIONS(ref.diskBytes)
	if c.tracer.Enabled() {
		c.tracer.Emit(Event{Kind: EventSpill, Task: -1, Attempt: -1, Executor: ref.executor,
			Bytes: ref.diskBytes, VirtualNS: ns, Detail: detail})
	}
	return ns
}

// AccountSpillRead records one spill read-back in the trace and returns its
// virtual disk time for the caller to charge to its attempt.
func (c *Cluster) AccountSpillRead(ref SpillRef, detail string) float64 {
	return c.recordSpillLoad(ref, detail)
}
