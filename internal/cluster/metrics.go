package cluster

import "sync/atomic"

// Metrics is the cluster-wide counter registry. All counters are atomic and
// may be read at any time; Snapshot returns a consistent-enough copy for
// reporting (experiment harness output, tests).
type Metrics struct {
	StagesRun        atomic.Int64
	TasksLaunched    atomic.Int64
	TaskFailures     atomic.Int64
	RecordsProcessed atomic.Int64
	// Comparisons counts pairwise distance computations; the paper's
	// Figs. 7-8 report intra- vs cross-cluster comparison counts, which
	// the classifier layer derives from this and its own counters.
	Comparisons           atomic.Int64
	ShuffleBytesWritten   atomic.Int64
	ShuffleRecordsWritten atomic.Int64
	ShuffleBytesRead      atomic.Int64
	BroadcastBytes        atomic.Int64
	BlocksCached          atomic.Int64
	BlockHits             atomic.Int64
	BlockMisses           atomic.Int64
	BlockEvictions        atomic.Int64
	BlockRecomputes       atomic.Int64
	PressureEvents        atomic.Int64
	// SpeculativeTasksLaunched counts speculative duplicate chains started
	// by the straggler monitor; SpeculativeWins counts those that won
	// their task's commit race. SpeculativeWastedNS is the virtual time
	// charged to losing copies (mitigation cost). StragglersInjected
	// counts attempts slowed by the StragglerRate injector.
	SpeculativeTasksLaunched atomic.Int64
	SpeculativeWins          atomic.Int64
	SpeculativeWastedNS      atomic.Int64
	StragglersInjected       atomic.Int64

	// Executor-loss recovery counters. ExecutorFailures counts injected
	// (or operator-triggered) executor kills; MapOutputsLost the shuffle
	// map outputs dropped with them; ExecutorsBlacklisted the kills that
	// pushed an executor over the repeated-failure threshold into backoff.
	// FetchFailures counts reduce-stage attempts aborted by lost map
	// outputs; RecomputedStages the lineage patch-up resubmissions run in
	// response; RecomputedTasks the lost map partitions those patch-ups
	// regenerated (never more than MapOutputsLost — recovery recomputes
	// only what was actually lost). CheckpointedPartitions and
	// CheckpointBytes count partitions materialized to reliable storage by
	// rdd.Checkpoint, which truncates lineage so recovery replays from the
	// checkpoint instead of the full chain.
	ExecutorFailures       atomic.Int64
	MapOutputsLost         atomic.Int64
	ExecutorsBlacklisted   atomic.Int64
	FetchFailures          atomic.Int64
	RecomputedStages       atomic.Int64
	RecomputedTasks        atomic.Int64
	CheckpointedPartitions atomic.Int64
	CheckpointBytes        atomic.Int64

	// Memory-bounded engine counters. SpillEvents counts blocks written to
	// the disk overflow tier (block cache overflow, shuffle buffers over
	// the executor budget, external-merge runs); SpilledBytes the framed,
	// compressed bytes they put on disk. CoalescedPartitions counts reduce
	// partitions eliminated by adaptive post-shuffle coalescing (inputs
	// merged away, i.e. pre-count minus post-count summed over coalesced
	// stages). Like the recovery counters these account mechanism cost
	// separately from work: Records/Comparisons/Shuffle counters stay
	// bit-identical between budgeted and unbounded runs of the same job.
	SpillEvents         atomic.Int64
	SpilledBytes        atomic.Int64
	CoalescedPartitions atomic.Int64
}

// MetricsSnapshot is a plain-value copy of Metrics.
type MetricsSnapshot struct {
	StagesRun             int64
	TasksLaunched         int64
	TaskFailures          int64
	RecordsProcessed      int64
	Comparisons           int64
	ShuffleBytesWritten   int64
	ShuffleRecordsWritten int64
	ShuffleBytesRead      int64
	BroadcastBytes        int64
	BlocksCached          int64
	BlockHits             int64
	BlockMisses           int64
	BlockEvictions        int64
	BlockRecomputes       int64
	PressureEvents        int64

	SpeculativeTasksLaunched int64
	SpeculativeWins          int64
	SpeculativeWastedNS      int64
	StragglersInjected       int64

	ExecutorFailures       int64
	MapOutputsLost         int64
	ExecutorsBlacklisted   int64
	FetchFailures          int64
	RecomputedStages       int64
	RecomputedTasks        int64
	CheckpointedPartitions int64
	CheckpointBytes        int64

	SpillEvents         int64
	SpilledBytes        int64
	CoalescedPartitions int64
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		StagesRun:             m.StagesRun.Load(),
		TasksLaunched:         m.TasksLaunched.Load(),
		TaskFailures:          m.TaskFailures.Load(),
		RecordsProcessed:      m.RecordsProcessed.Load(),
		Comparisons:           m.Comparisons.Load(),
		ShuffleBytesWritten:   m.ShuffleBytesWritten.Load(),
		ShuffleRecordsWritten: m.ShuffleRecordsWritten.Load(),
		ShuffleBytesRead:      m.ShuffleBytesRead.Load(),
		BroadcastBytes:        m.BroadcastBytes.Load(),
		BlocksCached:          m.BlocksCached.Load(),
		BlockHits:             m.BlockHits.Load(),
		BlockMisses:           m.BlockMisses.Load(),
		BlockEvictions:        m.BlockEvictions.Load(),
		BlockRecomputes:       m.BlockRecomputes.Load(),
		PressureEvents:        m.PressureEvents.Load(),

		SpeculativeTasksLaunched: m.SpeculativeTasksLaunched.Load(),
		SpeculativeWins:          m.SpeculativeWins.Load(),
		SpeculativeWastedNS:      m.SpeculativeWastedNS.Load(),
		StragglersInjected:       m.StragglersInjected.Load(),

		ExecutorFailures:       m.ExecutorFailures.Load(),
		MapOutputsLost:         m.MapOutputsLost.Load(),
		ExecutorsBlacklisted:   m.ExecutorsBlacklisted.Load(),
		FetchFailures:          m.FetchFailures.Load(),
		RecomputedStages:       m.RecomputedStages.Load(),
		RecomputedTasks:        m.RecomputedTasks.Load(),
		CheckpointedPartitions: m.CheckpointedPartitions.Load(),
		CheckpointBytes:        m.CheckpointBytes.Load(),

		SpillEvents:         m.SpillEvents.Load(),
		SpilledBytes:        m.SpilledBytes.Load(),
		CoalescedPartitions: m.CoalescedPartitions.Load(),
	}
}

// Reset zeroes every counter.
func (m *Metrics) Reset() {
	m.StagesRun.Store(0)
	m.TasksLaunched.Store(0)
	m.TaskFailures.Store(0)
	m.RecordsProcessed.Store(0)
	m.Comparisons.Store(0)
	m.ShuffleBytesWritten.Store(0)
	m.ShuffleRecordsWritten.Store(0)
	m.ShuffleBytesRead.Store(0)
	m.BroadcastBytes.Store(0)
	m.BlocksCached.Store(0)
	m.BlockHits.Store(0)
	m.BlockMisses.Store(0)
	m.BlockEvictions.Store(0)
	m.BlockRecomputes.Store(0)
	m.PressureEvents.Store(0)
	m.SpeculativeTasksLaunched.Store(0)
	m.SpeculativeWins.Store(0)
	m.SpeculativeWastedNS.Store(0)
	m.StragglersInjected.Store(0)
	m.ExecutorFailures.Store(0)
	m.MapOutputsLost.Store(0)
	m.ExecutorsBlacklisted.Store(0)
	m.FetchFailures.Store(0)
	m.RecomputedStages.Store(0)
	m.RecomputedTasks.Store(0)
	m.CheckpointedPartitions.Store(0)
	m.CheckpointBytes.Store(0)
	m.SpillEvents.Store(0)
	m.SpilledBytes.Store(0)
	m.CoalescedPartitions.Store(0)
}
