package cluster

import "sync/atomic"

// Metrics is the cluster-wide counter registry. All counters are atomic and
// may be read at any time; Snapshot returns a consistent-enough copy for
// reporting (experiment harness output, tests).
type Metrics struct {
	StagesRun        atomic.Int64
	TasksLaunched    atomic.Int64
	TaskFailures     atomic.Int64
	RecordsProcessed atomic.Int64
	// Comparisons counts pairwise distance computations; the paper's
	// Figs. 7-8 report intra- vs cross-cluster comparison counts, which
	// the classifier layer derives from this and its own counters.
	Comparisons           atomic.Int64
	ShuffleBytesWritten   atomic.Int64
	ShuffleRecordsWritten atomic.Int64
	ShuffleBytesRead      atomic.Int64
	BroadcastBytes        atomic.Int64
	BlocksCached          atomic.Int64
	BlockHits             atomic.Int64
	BlockMisses           atomic.Int64
	BlockEvictions        atomic.Int64
	BlockRecomputes       atomic.Int64
	PressureEvents        atomic.Int64
	// SpeculativeTasksLaunched counts speculative duplicate chains started
	// by the straggler monitor; SpeculativeWins counts those that won
	// their task's commit race. SpeculativeWastedNS is the virtual time
	// charged to losing copies (mitigation cost). StragglersInjected
	// counts attempts slowed by the StragglerRate injector.
	SpeculativeTasksLaunched atomic.Int64
	SpeculativeWins          atomic.Int64
	SpeculativeWastedNS      atomic.Int64
	StragglersInjected       atomic.Int64
}

// MetricsSnapshot is a plain-value copy of Metrics.
type MetricsSnapshot struct {
	StagesRun             int64
	TasksLaunched         int64
	TaskFailures          int64
	RecordsProcessed      int64
	Comparisons           int64
	ShuffleBytesWritten   int64
	ShuffleRecordsWritten int64
	ShuffleBytesRead      int64
	BroadcastBytes        int64
	BlocksCached          int64
	BlockHits             int64
	BlockMisses           int64
	BlockEvictions        int64
	BlockRecomputes       int64
	PressureEvents        int64

	SpeculativeTasksLaunched int64
	SpeculativeWins          int64
	SpeculativeWastedNS      int64
	StragglersInjected       int64
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		StagesRun:             m.StagesRun.Load(),
		TasksLaunched:         m.TasksLaunched.Load(),
		TaskFailures:          m.TaskFailures.Load(),
		RecordsProcessed:      m.RecordsProcessed.Load(),
		Comparisons:           m.Comparisons.Load(),
		ShuffleBytesWritten:   m.ShuffleBytesWritten.Load(),
		ShuffleRecordsWritten: m.ShuffleRecordsWritten.Load(),
		ShuffleBytesRead:      m.ShuffleBytesRead.Load(),
		BroadcastBytes:        m.BroadcastBytes.Load(),
		BlocksCached:          m.BlocksCached.Load(),
		BlockHits:             m.BlockHits.Load(),
		BlockMisses:           m.BlockMisses.Load(),
		BlockEvictions:        m.BlockEvictions.Load(),
		BlockRecomputes:       m.BlockRecomputes.Load(),
		PressureEvents:        m.PressureEvents.Load(),

		SpeculativeTasksLaunched: m.SpeculativeTasksLaunched.Load(),
		SpeculativeWins:          m.SpeculativeWins.Load(),
		SpeculativeWastedNS:      m.SpeculativeWastedNS.Load(),
		StragglersInjected:       m.StragglersInjected.Load(),
	}
}

// Reset zeroes every counter.
func (m *Metrics) Reset() {
	m.StagesRun.Store(0)
	m.TasksLaunched.Store(0)
	m.TaskFailures.Store(0)
	m.RecordsProcessed.Store(0)
	m.Comparisons.Store(0)
	m.ShuffleBytesWritten.Store(0)
	m.ShuffleRecordsWritten.Store(0)
	m.ShuffleBytesRead.Store(0)
	m.BroadcastBytes.Store(0)
	m.BlocksCached.Store(0)
	m.BlockHits.Store(0)
	m.BlockMisses.Store(0)
	m.BlockEvictions.Store(0)
	m.BlockRecomputes.Store(0)
	m.PressureEvents.Store(0)
	m.SpeculativeTasksLaunched.Store(0)
	m.SpeculativeWins.Store(0)
	m.SpeculativeWastedNS.Store(0)
	m.StragglersInjected.Store(0)
}
