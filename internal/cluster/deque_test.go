package cluster

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// TestDequeOwnerOrder pins the single-threaded contract: the owner pops LIFO
// and, once the owner stops, a lone thief drains the rest FIFO.
func TestDequeOwnerOrder(t *testing.T) {
	d := newWSDeque(4)
	for i := int64(0); i < 10; i++ {
		d.push(i)
	}
	for want := int64(9); want >= 7; want-- {
		v, ok := d.pop()
		if !ok || v != want {
			t.Fatalf("pop = %d, %v; want %d, true", v, ok, want)
		}
	}
	for want := int64(0); want <= 6; want++ {
		v, ok, _ := d.steal()
		if !ok || v != want {
			t.Fatalf("steal = %d, %v; want %d, true", v, ok, want)
		}
	}
	if v, ok := d.pop(); ok {
		t.Fatalf("pop on empty deque = %d, true", v)
	}
	if v, ok, retry := d.steal(); ok || retry {
		t.Fatalf("steal on empty deque = %d, %v, %v", v, ok, retry)
	}
}

// TestDequeGrow pushes far past the initial capacity and checks nothing is
// lost or reordered across growth.
func TestDequeGrow(t *testing.T) {
	d := newWSDeque(2)
	const n = 10000
	for i := int64(0); i < n; i++ {
		d.push(i)
	}
	for want := int64(n - 1); want >= 0; want-- {
		v, ok := d.pop()
		if !ok || v != want {
			t.Fatalf("pop = %d, %v; want %d, true", v, ok, want)
		}
	}
}

// TestDequeStealStress hammers one owner (push/pop) against several thieves
// under the race detector and verifies the exactly-once multiset property:
// every pushed value is claimed by exactly one claimant, none dropped, none
// duplicated.
func TestDequeStealStress(t *testing.T) {
	const (
		total   = 200000
		thieves = 4
	)
	d := newWSDeque(8)
	var claimed sync.Map // value -> claimant count probe
	var dups, got atomic.Int64
	record := func(v int64) {
		if _, loaded := claimed.LoadOrStore(v, true); loaded {
			dups.Add(1)
		}
		got.Add(1)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok, retry := d.steal()
				if ok {
					record(v)
					continue
				}
				if !retry {
					select {
					case <-stop:
						// Owner finished; one final clean sweep below.
						for {
							v, ok, retry := d.steal()
							if ok {
								record(v)
							} else if !retry {
								return
							}
						}
					default:
						runtime.Gosched()
					}
				}
			}
		}()
	}

	// Owner: interleave batched pushes with LIFO pops.
	rng := rand.New(rand.NewSource(1))
	next := int64(0)
	for next < total {
		burst := int64(1 + rng.Intn(64))
		for b := int64(0); b < burst && next < total; b++ {
			d.push(next)
			next++
		}
		for rng.Intn(2) == 0 {
			v, ok := d.pop()
			if !ok {
				break
			}
			record(v)
		}
	}
	close(stop)
	wg.Wait()
	// Drain anything left after the thieves retired.
	for {
		v, ok := d.pop()
		if !ok {
			break
		}
		record(v)
	}

	if dups.Load() != 0 {
		t.Fatalf("%d values claimed more than once", dups.Load())
	}
	if got.Load() != total {
		t.Fatalf("claimed %d of %d pushed values", got.Load(), total)
	}
}

// TestDequeNeverDropsOrDuplicates is the quick.Check property behind the
// stress test: for arbitrary (bounded) task counts and thief counts, the
// multiset of claimed values equals the multiset pushed.
func TestDequeNeverDropsOrDuplicates(t *testing.T) {
	prop := func(rawN uint16, rawThieves uint8) bool {
		n := int64(rawN%2000) + 1
		thieves := int(rawThieves%3) + 1
		d := newWSDeque(4)
		for i := int64(0); i < n; i++ {
			d.push(i)
		}
		seen := make([]atomic.Bool, n)
		var dropped, dups atomic.Int64
		record := func(v int64) {
			if v < 0 || v >= n {
				dropped.Add(1) // out-of-range is as fatal as a drop
				return
			}
			if seen[v].Swap(true) {
				dups.Add(1)
			}
		}
		var wg sync.WaitGroup
		for i := 0; i < thieves; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					v, ok, retry := d.steal()
					if ok {
						record(v)
					} else if !retry {
						return
					}
				}
			}()
		}
		for {
			v, ok := d.pop()
			if !ok {
				// pop's false can be a lost last-element race, not
				// emptiness; confirm via a clean steal sweep.
				v, ok, retry := d.steal()
				if ok {
					record(v)
					continue
				}
				if retry {
					continue
				}
				break
			}
			record(v)
		}
		wg.Wait()
		if dropped.Load() != 0 || dups.Load() != 0 {
			return false
		}
		for i := range seen {
			if !seen[i].Load() {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
