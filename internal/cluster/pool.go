package cluster

import "sync/atomic"

// This file implements RealParallel mode: instead of one goroutine per task
// gated by a semaphore (the legacy launch path in executeAttempt), a stage's
// tasks are seeded round-robin into per-worker Chase-Lev deques and executed
// by a fixed pool of Config.RealWorkers goroutines. Each worker pops its own
// deque LIFO (cache-warm work first) and steals FIFO from the others when it
// drains, so skewed stages — candgen posting lists, Cartesian shards — keep
// every core busy without any central dispatch lock.
//
// Determinism: execution order under stealing is nondeterministic, but every
// observable side effect is commit-gated (task.go) — shuffle writes are keyed
// idempotently by (map task, seq), metric deltas are buffered per attempt and
// folded only on the single winning commit, and fault/straggler injection is
// hashed from (seed, stage, task, attempt), not from arrival order. Results
// and committed counters are therefore bit-identical to the virtual-time
// scheduler's, which TestRealParallelBitIdentical pins across the chaos grid.
//
// Scratch ownership: each worker checks one WorkerScratch out of the cluster
// pool for the whole stage and threads it through every chain it runs, so
// kernels reach their zero-alloc steady state per worker and two concurrent
// tasks can never alias a buffer.
//
// Paused workers: a primary chain that blocks in a simulated delay releases
// its semaphore token (tc.pause) and the pool spawns a spare, steal-only
// worker to soak up the freed capacity — otherwise a stage whose first tasks
// all stall in straggler sleeps would idle the machine exactly when the
// straggler monitor needs committed completions to compute its quantile.
type poolRun struct {
	sr      *stageRun
	deques  []*wsDeque
	workers int
	pending atomic.Int64 // tasks seeded but not yet claimed by any worker
	spares  atomic.Int64 // spare workers currently alive
}

// startPool seeds the deques and launches the worker pool for one submission
// attempt's launch set. Callers wait on sr.wg as with the legacy path.
func (sr *stageRun) startPool(launch []int) {
	n := sr.c.cfg.RealWorkers
	if n > len(launch) {
		n = len(launch)
	}
	pr := &poolRun{sr: sr, workers: n, deques: make([]*wsDeque, n)}
	for w := 0; w < n; w++ {
		pr.deques[w] = newWSDeque((len(launch) + n - 1) / n)
	}
	// Round-robin task i to deque i%n, pushed in reverse so the owner's
	// LIFO pop yields its tasks in ascending order — the same order the
	// legacy path launches them, which keeps trace interleavings familiar.
	for w := 0; w < n; w++ {
		for i := len(launch) - 1; i >= 0; i-- {
			if i%n == w {
				pr.deques[w].push(int64(launch[i]))
			}
		}
	}
	pr.pending.Store(int64(len(launch)))
	sr.pool = pr
	for w := 0; w < n; w++ {
		sr.wg.Add(1)
		go pr.worker(w)
	}
}

// worker is one pool member: it holds a semaphore token, owns deque w and a
// WorkerScratch, and runs primary chains until every deque is drained.
func (pr *poolRun) worker(w int) {
	defer pr.sr.wg.Done()
	pr.sr.sem <- struct{}{}
	defer func() { <-pr.sr.sem }()
	sc := pr.sr.c.scratch.get()
	defer pr.sr.c.scratch.put(sc)
	for {
		task, ok := pr.claim(w)
		if !ok {
			return
		}
		pr.pending.Add(-1)
		pr.sr.runChain(int(task), false, sc)
	}
}

// claim returns the next task for worker w: its own deque's bottom first,
// then a steal sweep over the other deques. It returns false only after a
// full sweep finds every deque empty with no contended CAS — a lost steal
// race means another worker claimed that task, never that it was dropped.
func (pr *poolRun) claim(w int) (int64, bool) {
	if v, ok := pr.deques[w].pop(); ok {
		return v, true
	}
	for {
		retry := false
		for i := 1; i <= len(pr.deques); i++ {
			v, ok, again := pr.deques[(w+i)%len(pr.deques)].steal()
			if ok {
				return v, true
			}
			retry = retry || again
		}
		if !retry {
			return 0, false
		}
	}
}

// claimSteal is the spare workers' claim: steal-only (spares own no deque,
// and pop is owner-only), same clean-sweep termination.
func (pr *poolRun) claimSteal() (int64, bool) {
	for {
		retry := false
		for _, d := range pr.deques {
			v, ok, again := d.steal()
			if ok {
				return v, true
			}
			retry = retry || again
		}
		if !retry {
			return 0, false
		}
	}
}

// ensureSpare spawns a steal-only spare worker if unclaimed tasks remain and
// the spare budget (one per pool worker) allows. Called from tc.pause, i.e.
// from inside a running chain, so sr.wg is necessarily non-zero and the Add
// cannot race wg.Wait.
func (pr *poolRun) ensureSpare() {
	for {
		s := pr.spares.Load()
		if s >= int64(pr.workers) || pr.pending.Load() <= 0 {
			return
		}
		if pr.spares.CompareAndSwap(s, s+1) {
			pr.sr.wg.Add(1)
			go pr.spare()
			return
		}
	}
}

// spare soaks up capacity freed by paused primaries: it takes the released
// semaphore token, steals until the deques drain, then retires.
func (pr *poolRun) spare() {
	defer pr.sr.wg.Done()
	defer pr.spares.Add(-1)
	pr.sr.sem <- struct{}{}
	defer func() { <-pr.sr.sem }()
	sc := pr.sr.c.scratch.get()
	defer pr.sr.c.scratch.put(sc)
	for {
		task, ok := pr.claimSteal()
		if !ok {
			return
		}
		pr.pending.Add(-1)
		pr.sr.runChain(int(task), false, sc)
	}
}
