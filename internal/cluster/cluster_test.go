package cluster

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunStageRunsAllTasks(t *testing.T) {
	c := New(Config{Executors: 2, CoresPerExecutor: 2})
	var ran atomic.Int64
	stats, err := c.RunStage("count", 10, func(tc *TaskContext) error {
		ran.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 10 {
		t.Errorf("ran %d tasks, want 10", ran.Load())
	}
	if stats.Tasks != 10 || stats.Attempts != 10 || stats.Failures != 0 {
		t.Errorf("unexpected stats: %+v", stats)
	}
}

func TestRunStagePropagatesTaskError(t *testing.T) {
	c := New(Config{})
	boom := errors.New("boom")
	_, err := c.RunStage("failing", 4, func(tc *TaskContext) error {
		if tc.Task() == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

func TestFaultInjectionRetriesAndSucceeds(t *testing.T) {
	c := New(Config{FailureRate: 0.3, MaxTaskRetries: 20, Seed: 1})
	var attempts atomic.Int64
	stats, err := c.RunStage("flaky", 50, func(tc *TaskContext) error {
		attempts.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failures == 0 {
		t.Error("expected some injected failures at rate 0.3")
	}
	if stats.Attempts != int(attempts.Load()) {
		t.Errorf("stats.Attempts=%d, actual closure invocations=%d", stats.Attempts, attempts.Load())
	}
	if stats.Attempts != stats.Tasks+stats.Failures {
		t.Errorf("attempts %d != tasks %d + failures %d", stats.Attempts, stats.Tasks, stats.Failures)
	}
}

func TestFaultInjectionDeterministic(t *testing.T) {
	run := func() int {
		c := New(Config{FailureRate: 0.3, MaxTaskRetries: 20, Seed: 42})
		stats, err := c.RunStage("flaky", 30, func(tc *TaskContext) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		return stats.Failures
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different failure counts: %d vs %d", a, b)
	}
}

func TestTaskExhaustsRetries(t *testing.T) {
	// FailureRate 1.0 fails every attempt; the stage must error out.
	c := New(Config{FailureRate: 1.0, MaxTaskRetries: 3, Seed: 7})
	_, err := c.RunStage("doomed", 1, func(tc *TaskContext) error { return nil })
	if !errors.Is(err, ErrTaskFailed) {
		t.Errorf("err = %v, want ErrTaskFailed", err)
	}
}

func TestShuffleCommitOnSuccessOnly(t *testing.T) {
	c := New(Config{FailureRate: 0.5, MaxTaskRetries: 50, Seed: 3})
	sh := c.Shuffles().Register()
	_, err := c.RunStage("map", 8, func(tc *TaskContext) error {
		tc.WriteShuffle(sh, 0, []int{tc.Task()}, 1, 8)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Shuffles().MarkDone(sh)
	var got []any
	_, err = c.RunStage("reduce", 1, func(tc *TaskContext) error {
		var ferr error
		got, ferr = tc.FetchShuffle(sh, 0)
		return ferr
	})
	if err != nil {
		t.Fatal(err)
	}
	// Despite retries, exactly one committed block per map task.
	if len(got) != 8 {
		t.Errorf("fetched %d blocks, want 8 (failed attempts must not commit)", len(got))
	}
	seen := make(map[int]bool)
	for _, b := range got {
		v := b.([]int)[0]
		if seen[v] {
			t.Errorf("duplicate committed block for task %d", v)
		}
		seen[v] = true
	}
}

func TestShuffleFetchChargesVirtualTime(t *testing.T) {
	c := New(Config{NetworkMBps: 1, ShuffleLatencyMS: 10}) // slow network
	sh := c.Shuffles().Register()
	_, err := c.RunStage("map", 1, func(tc *TaskContext) error {
		tc.WriteShuffle(sh, 0, []byte{1}, 1, 10*1e6) // 10MB
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	before := c.VirtualElapsed()
	_, err = c.RunStage("reduce", 1, func(tc *TaskContext) error {
		_, ferr := tc.FetchShuffle(sh, 0)
		return ferr
	})
	if err != nil {
		t.Fatal(err)
	}
	delta := c.VirtualElapsed() - before
	// 10MB at 1MB/s = 10s plus 10ms latency.
	if delta < 10*time.Second {
		t.Errorf("virtual delta %v, want >= 10s for simulated transfer", delta)
	}
}

func TestListScheduleMakespan(t *testing.T) {
	c := New(Config{Executors: 2, CoresPerExecutor: 1})
	// 4 equal tasks on 2 slots: makespan = 2 x task duration.
	d := []float64{100, 100, 100, 100}
	if got := c.listSchedule(d); got != 200 {
		t.Errorf("makespan = %v, want 200", got)
	}
	// Unequal tasks: greedy earliest-slot assignment.
	d = []float64{300, 100, 100, 100}
	// slot0: 300; slot1: 100+100+100 = 300.
	if got := c.listSchedule(d); got != 300 {
		t.Errorf("makespan = %v, want 300", got)
	}
}

func TestVirtualTimeScalesWithExecutors(t *testing.T) {
	// The same workload must have a smaller virtual makespan on more
	// executors — the property Figs. 9-10 rely on.
	makespan := func(executors int) time.Duration {
		c := New(Config{Executors: executors, CoresPerExecutor: 1})
		_, err := c.RunStage("work", 20, func(tc *TaskContext) error {
			tc.AddVirtualNS(1e6) // 1ms simulated work per task
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return c.VirtualElapsed()
	}
	small := makespan(2)
	large := makespan(10)
	if large >= small {
		t.Errorf("10 executors (%v) not faster than 2 executors (%v)", large, small)
	}
}

func TestMemoryPressurePenalty(t *testing.T) {
	cfg := Config{MemoryPerExecutorMB: 1, SpillPenalty: 5}
	c := New(cfg)
	_, err := c.RunStage("pressured", 1, func(tc *TaskContext) error {
		tc.SetWorkingSetBytes(10 * mb)
		tc.AddVirtualNS(1e6)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Metrics().PressureEvents.Load() == 0 {
		t.Error("expected a pressure event")
	}
	pressured := c.VirtualElapsed()

	c2 := New(cfg)
	_, err = c2.RunStage("fits", 1, func(tc *TaskContext) error {
		tc.SetWorkingSetBytes(100)
		tc.AddVirtualNS(1e6)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if pressured < 4*c2.VirtualElapsed() {
		t.Errorf("pressure penalty too small: %v vs %v", pressured, c2.VirtualElapsed())
	}
}

func TestPressureTimeoutsCauseRetry(t *testing.T) {
	c := New(Config{MemoryPerExecutorMB: 1, PressureTimeouts: true, MaxTaskRetries: 3})
	stats, err := c.RunStage("pressured", 2, func(tc *TaskContext) error {
		tc.SetWorkingSetBytes(10 * mb)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failures != 2 {
		t.Errorf("failures = %d, want 2 (one timeout per pressured task)", stats.Failures)
	}
	if stats.Attempts != 4 {
		t.Errorf("attempts = %d, want 4", stats.Attempts)
	}
}

func TestBroadcastAdvancesClock(t *testing.T) {
	c := New(Config{Executors: 10, NetworkMBps: 1, ShuffleLatencyMS: 1})
	before := c.VirtualElapsed()
	// Torrent-style tree broadcast: 1MB at 1MB/s per hop, ceil(log2(11))
	// = 4 hops on the critical path = 4s (+latency).
	c.Broadcast(1e6)
	delta := c.VirtualElapsed() - before
	if delta < 4*time.Second || delta > 5*time.Second {
		t.Errorf("broadcast virtual time %v, want ~4s (tree depth 4)", delta)
	}
	// The critical path grows logarithmically, not linearly, with the
	// executor count.
	big := New(Config{Executors: 160, NetworkMBps: 1, ShuffleLatencyMS: 1})
	big.Broadcast(1e6)
	if d := big.VirtualElapsed(); d > 3*delta {
		t.Errorf("16x executors took %v vs %v; broadcast should scale ~log(E)", d, delta)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := New(Config{})
	cfg := c.Config()
	if cfg.Executors <= 0 || cfg.CoresPerExecutor <= 0 || cfg.MaxTaskRetries <= 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if c.SlotCount() != cfg.Executors*cfg.CoresPerExecutor {
		t.Errorf("SlotCount = %d", c.SlotCount())
	}
}

func TestResetClock(t *testing.T) {
	c := New(Config{})
	if _, err := c.RunStage("s", 1, func(tc *TaskContext) error {
		tc.AddVirtualNS(5e6)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if c.VirtualElapsed() == 0 {
		t.Fatal("clock did not advance")
	}
	c.ResetClock()
	if c.VirtualElapsed() != 0 {
		t.Error("ResetClock did not zero the clock")
	}
}

func TestMetricsSnapshotAndReset(t *testing.T) {
	c := New(Config{})
	if _, err := c.RunStage("s", 3, func(tc *TaskContext) error {
		tc.AddRecords(10)
		tc.AddComparisons(5)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	snap := c.Metrics().Snapshot()
	if snap.RecordsProcessed != 30 || snap.Comparisons != 15 || snap.StagesRun != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
	c.Metrics().Reset()
	if s := c.Metrics().Snapshot(); s.RecordsProcessed != 0 || s.StagesRun != 0 {
		t.Errorf("reset snapshot = %+v", s)
	}
}
