package cluster

import (
	"fmt"
	"sync"
)

// CheckpointStore models reliable (HDFS-like) storage for materialized RDD
// partitions. Unlike the executor-hosted block cache and shuffle outputs, a
// checkpointed partition survives executor loss: rdd.Checkpoint encodes each
// partition here and truncates the RDD's lineage, so later recomputation —
// cache eviction, executor-kill recovery — replays from the checkpoint
// instead of the full upstream chain.
type CheckpointStore struct {
	cluster *Cluster
	mu      sync.Mutex
	blocks  map[BlockID][]byte
}

func newCheckpointStore(c *Cluster) *CheckpointStore {
	return &CheckpointStore{cluster: c, blocks: make(map[BlockID][]byte)}
}

// Put stores one encoded partition, replacing any previous version.
func (s *CheckpointStore) Put(id BlockID, encoded []byte) {
	s.mu.Lock()
	_, replaced := s.blocks[id]
	s.blocks[id] = encoded
	s.mu.Unlock()
	if !replaced {
		s.cluster.metrics.CheckpointedPartitions.Add(1)
	}
	s.cluster.metrics.CheckpointBytes.Add(int64(len(encoded)))
	if s.cluster.tracer.Enabled() {
		s.cluster.tracer.Emit(Event{Kind: EventCheckpoint, Task: -1, Attempt: -1,
			Executor: ReliableStorage, Bytes: int64(len(encoded)),
			Detail: fmt.Sprintf("rdd%d/p%d", id.RDD, id.Partition)})
	}
}

// Get returns the encoded partition and whether it is present.
func (s *CheckpointStore) Get(id BlockID) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blocks[id]
	return b, ok
}

// Len returns the number of checkpointed partitions.
func (s *CheckpointStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blocks)
}

// Checkpoints exposes the cluster's reliable checkpoint storage.
func (c *Cluster) Checkpoints() *CheckpointStore { return c.checkpoints }
