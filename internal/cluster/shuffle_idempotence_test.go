package cluster

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Bucket-commit idempotence: shuffle blocks are keyed by (map task, write
// seq), so duplicate commits of the same deterministic map output — retried
// attempts, or speculative duplicates racing through the commit window —
// must leave every reduce partition equal to a single write, and fetch
// order must be deterministic regardless of commit interleaving.

func TestShuffleDuplicateCommitIsIdempotent(t *testing.T) {
	cases := []struct {
		name   string
		dups   int // extra commits of the same writes
		shards int
	}{
		{"single-write", 0, 3},
		{"one-duplicate", 1, 3},
		{"many-duplicates", 5, 4},
		{"single-partition", 2, 1},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			writeAll := func(s *ShuffleService, id int) {
				// Three map tasks, each writing multiple sequenced blocks
				// across the reduce partitions.
				for mapTask := 0; mapTask < 3; mapTask++ {
					seq := 0
					for r := 0; r < tt.shards; r++ {
						s.write(id, r, mapTask, seq, 0, []int{mapTask*100 + r}, 1, 8)
						seq++
						if r%2 == 0 { // a second block for even partitions
							s.write(id, r, mapTask, seq, 0, []int{mapTask*100 + r + 50}, 1, 8)
							seq++
						}
					}
				}
			}

			once := newShuffleService(New(Config{}))
			idOnce := once.Register()
			writeAll(once, idOnce)

			dup := newShuffleService(New(Config{}))
			idDup := dup.Register()
			for i := 0; i <= tt.dups; i++ {
				writeAll(dup, idDup)
			}

			for r := 0; r < tt.shards; r++ {
				wantBlocks, wantBytes, _, _, _ := once.fetch(idOnce, r)
				gotBlocks, gotBytes, _, _, _ := dup.fetch(idDup, r)
				if !reflect.DeepEqual(gotBlocks, wantBlocks) {
					t.Errorf("partition %d: duplicate commits changed contents: %v != %v", r, gotBlocks, wantBlocks)
				}
				if gotBytes != wantBytes {
					t.Errorf("partition %d: bytes %d != %d", r, gotBytes, wantBytes)
				}
			}
		})
	}
}

// TestShuffleFetchOrderProperty: for any write set, fetch returns blocks in
// (map task, seq) order — independent of write interleaving and duplicate
// commits — so reduce-side partition contents are a pure function of the
// committed map outputs.
func TestShuffleFetchOrderProperty(t *testing.T) {
	f := func(seed int64, nWrites uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		type w struct {
			reduce, mapTask, seq int
			val                  int
		}
		writes := make([]w, int(nWrites)%24+1)
		for i := range writes {
			writes[i] = w{
				reduce:  rng.Intn(3),
				mapTask: rng.Intn(4),
				seq:     rng.Intn(4),
				val:     rng.Intn(1000),
			}
		}
		// Writes with the same (reduce, mapTask, seq) key collide; keep the
		// last value per key as the reference, mirroring last-write-wins.
		ref := map[[3]int]int{}
		for _, x := range writes {
			ref[[3]int{x.reduce, x.mapTask, x.seq}] = x.val
		}

		s := newShuffleService(New(Config{}))
		id := s.Register()
		for _, x := range writes {
			s.write(id, x.reduce, x.mapTask, x.seq, 0, x.val, 1, 8)
		}
		// Re-commit a shuffled duplicate of the final values (idempotence
		// under re-ordered duplicate commits).
		perm := rng.Perm(len(writes))
		for _, pi := range perm {
			x := writes[pi]
			s.write(id, x.reduce, x.mapTask, x.seq, 0, ref[[3]int{x.reduce, x.mapTask, x.seq}], 1, 8)
		}

		for r := 0; r < 3; r++ {
			var keys [][3]int
			for k := range ref {
				if k[0] == r {
					keys = append(keys, k)
				}
			}
			// Expected order: (mapTask, seq) ascending.
			for i := 0; i < len(keys); i++ {
				for j := i + 1; j < len(keys); j++ {
					if keys[j][1] < keys[i][1] || (keys[j][1] == keys[i][1] && keys[j][2] < keys[i][2]) {
						keys[i], keys[j] = keys[j], keys[i]
					}
				}
			}
			want := make([]any, len(keys))
			for i, k := range keys {
				want[i] = ref[k]
			}
			got, bytes, _, _, _ := s.fetch(id, r)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				return false
			}
			if bytes != int64(len(want))*8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestShuffleUnregisterDropsBlocks: unregistered shuffles free their blocks
// and later fetches see nothing.
func TestShuffleUnregisterDropsBlocks(t *testing.T) {
	s := newShuffleService(New(Config{}))
	id := s.Register()
	s.write(id, 0, 0, 0, 0, "x", 1, 1)
	s.MarkDone(id)
	if !s.Done(id) {
		t.Fatal("MarkDone not visible")
	}
	s.Unregister(id)
	if blocks, bytes, _, _, _ := s.fetch(id, 0); len(blocks) != 0 || bytes != 0 {
		t.Errorf("fetch after Unregister returned %v (%d bytes)", blocks, bytes)
	}
	if s.Done(id) {
		t.Error("Done still true after Unregister")
	}
}
