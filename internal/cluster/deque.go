package cluster

import "sync/atomic"

// wsDeque is a Chase-Lev work-stealing deque of task indices. The owning
// worker pushes and pops at the bottom (LIFO, cache-warm work first); thieves
// steal from the top (FIFO, the oldest — and under our round-robin seeding,
// lowest-numbered — partition migrates). Go's sequentially consistent
// sync/atomic semantics make the published algorithm's relaxed-memory
// subtleties moot; the slots themselves are atomic so a thief reading a slot
// the owner is about to overwrite after a growth race is well-defined (the
// thief's CAS on top then fails and the value is discarded).
//
// push and pop must only be called by the deque's single owner goroutine;
// steal is safe from any number of concurrent thieves.
type wsDeque struct {
	top    atomic.Int64 // next slot thieves take from
	bottom atomic.Int64 // next slot the owner pushes to
	buf    atomic.Pointer[wsBuf]
}

// wsBuf is one ring buffer generation; grow replaces it wholesale so thieves
// racing a resize keep reading a consistent (old) generation.
type wsBuf struct {
	mask int64 // len(slot)-1; length is a power of two
	slot []atomic.Int64
}

func (b *wsBuf) load(i int64) int64     { return b.slot[i&b.mask].Load() }
func (b *wsBuf) store(i int64, v int64) { b.slot[i&b.mask].Store(v) }

func newWSDeque(capacity int) *wsDeque {
	n := int64(8)
	for n < int64(capacity) {
		n <<= 1
	}
	d := &wsDeque{}
	d.buf.Store(&wsBuf{mask: n - 1, slot: make([]atomic.Int64, n)})
	return d
}

// push appends v at the bottom. Owner only.
func (d *wsDeque) push(v int64) {
	b := d.bottom.Load()
	t := d.top.Load()
	buf := d.buf.Load()
	if b-t >= buf.mask { // full (keep one slot of slack)
		buf = d.grow(buf, t, b)
	}
	buf.store(b, v)
	d.bottom.Store(b + 1)
}

// grow doubles the ring, copying the live window [t, b). The old buffer is
// left intact for thieves still holding it; their CAS on top serializes who
// actually claimed each element.
func (d *wsDeque) grow(old *wsBuf, t, b int64) *wsBuf {
	nb := &wsBuf{mask: (old.mask+1)*2 - 1, slot: make([]atomic.Int64, (old.mask+1)*2)}
	for i := t; i < b; i++ {
		nb.store(i, old.load(i))
	}
	d.buf.Store(nb)
	return nb
}

// pop removes and returns the bottom element. Owner only. On the last
// element it races thieves with a CAS on top; losing means a thief got it.
func (d *wsDeque) pop() (int64, bool) {
	b := d.bottom.Load() - 1
	buf := d.buf.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b { // empty: restore
		d.bottom.Store(b + 1)
		return 0, false
	}
	v := buf.load(b)
	if t == b {
		// Last element: win it against thieves by advancing top.
		ok := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(b + 1)
		if !ok {
			return 0, false
		}
	}
	return v, true
}

// steal removes and returns the top element. Safe for concurrent thieves.
// retry=true means the CAS lost to a rival (owner or thief) and the deque
// may still hold work — the caller should try again before moving on.
func (d *wsDeque) steal() (v int64, ok, retry bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return 0, false, false
	}
	buf := d.buf.Load()
	v = buf.load(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return 0, false, true
	}
	return v, true, false
}
