package cluster

import "sync"

// WorkerScratch is a per-worker bundle of reusable buffers. In RealParallel
// mode every pool worker owns exactly one WorkerScratch for the lifetime of
// the stage and hands it to each task it runs via TaskContext.Scratch, so
// kernels (pairdist tiling, candgen posting merges) keep their zero-alloc
// steady state even with many tasks in flight: the buffers grow to the
// high-water mark once and are reused for every subsequent task on that
// worker. Two workers never share a WorkerScratch, so no synchronization or
// aliasing hazard exists between concurrent tasks (pool_test.go proves this).
//
// Buffers returned by the getters are valid until the same getter is called
// again on the same scratch; their contents are unspecified (stale data from
// the previous task), so callers must fully overwrite what they read.
type WorkerScratch struct {
	f64 []float64
	i32 []int32
	u32 []uint32
}

// Float64s returns a length-n float64 buffer with unspecified contents.
func (s *WorkerScratch) Float64s(n int) []float64 {
	if cap(s.f64) < n {
		s.f64 = make([]float64, roundCap(n))
	}
	return s.f64[:n]
}

// Int32s returns a length-n int32 buffer with unspecified contents.
func (s *WorkerScratch) Int32s(n int) []int32 {
	if cap(s.i32) < n {
		s.i32 = make([]int32, roundCap(n))
	}
	return s.i32[:n]
}

// Uint32s returns a length-n uint32 buffer with unspecified contents.
func (s *WorkerScratch) Uint32s(n int) []uint32 {
	if cap(s.u32) < n {
		s.u32 = make([]uint32, roundCap(n))
	}
	return s.u32[:n]
}

// roundCap rounds a requested buffer size up to the next power of two so a
// slowly growing sequence of requests settles after O(log n) allocations.
func roundCap(n int) int {
	c := 64
	for c < n {
		c <<= 1
	}
	return c
}

// scratchPool recycles WorkerScratch instances across stages and across the
// non-pool execution paths (legacy goroutine-per-task mode, speculative
// chains), so warmed buffers survive stage boundaries instead of being
// reallocated per stage.
type scratchPool struct {
	mu   sync.Mutex
	free []*WorkerScratch
}

func (p *scratchPool) get() *WorkerScratch {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return s
	}
	return &WorkerScratch{}
}

func (p *scratchPool) put(s *WorkerScratch) {
	if s == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, s)
	p.mu.Unlock()
}
