package cluster

import "fmt"

// CoalescePlan computes the adaptive post-shuffle partition grouping for a
// committed shuffle — Spark AQE's CoalesceShufflePartitions, driven by the
// byte accounting the shuffle service keeps per reduce partition.
//
// Consecutive reduce partitions are merged greedily: a partition joins the
// current group only while the group's total stays within
// Config.TargetPartitionMB, so a merged group never exceeds the target; a
// single partition already above the target stands alone. Merging only
// consecutive partitions preserves both reduce-side input order within each
// output partition and global order across them (range-partitioned sorts
// stay sorted). Every input partition lands in exactly one group, so total
// bytes and records are preserved exactly.
//
// It returns nil — run the stage unchanged — when coalescing is disabled
// (TargetPartitionMB <= 0), the shuffle has at most one partition, or no
// merge is possible. A non-nil plan emits one stage_coalesce trace event and
// counts the eliminated partitions in CoalescedPartitions.
// CoalescingEnabled reports whether adaptive post-shuffle partition
// coalescing is configured (Config.TargetPartitionMB > 0). The RDD layer
// checks it at build time: a shuffle that may later coalesce cannot promise
// its declared partition count, so co-partitioning shortcuts are disabled.
func (c *Cluster) CoalescingEnabled() bool { return c.cfg.TargetPartitionMB > 0 }

func (c *Cluster) CoalescePlan(shuffleID, numPartitions int, stage string) [][]int {
	if c.cfg.TargetPartitionMB <= 0 || numPartitions <= 1 {
		return nil
	}
	bytes, _ := c.shuffles.partitionSizes(shuffleID, numPartitions)
	groups := coalesceGroups(bytes, int64(c.cfg.TargetPartitionMB)*mb)
	if len(groups) >= numPartitions {
		return nil
	}
	c.metrics.CoalescedPartitions.Add(int64(numPartitions - len(groups)))
	if c.tracer.Enabled() {
		var total int64
		for _, b := range bytes {
			total += b
		}
		c.tracer.Emit(Event{Kind: EventStageCoalesce, Stage: stage, Task: -1, Attempt: -1,
			Executor: -1, Bytes: total,
			Detail: fmt.Sprintf("shuffle %d: %d -> %d partitions (target %d MB)",
				shuffleID, numPartitions, len(groups), c.cfg.TargetPartitionMB)})
	}
	return groups
}

// coalesceGroups greedily merges consecutive partitions so that no merged
// group's byte total exceeds target. An oversized partition forms its own
// singleton group (it was already above the ceiling on input; splitting is
// not the coalescer's job).
func coalesceGroups(bytes []int64, target int64) [][]int {
	groups := make([][]int, 0, len(bytes))
	var cur []int
	var curBytes int64
	for p, b := range bytes {
		if len(cur) > 0 && curBytes+b > target {
			groups = append(groups, cur)
			cur, curBytes = nil, 0
		}
		cur = append(cur, p)
		curBytes += b
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	return groups
}
