package cluster

import (
	"math"
	"sort"
)

// This file holds the virtual-clock schedulers. After a stage's tasks have
// really executed, their measured virtual durations are placed onto
// Executors x CoresPerExecutor virtual slots:
//
//   - listScheduleSlots is the plain greedy list scheduler (FIFO or LPT
//     order, earliest-available slot) used for stages without speculative
//     copies. It runs on a min-heap of slot availability times, so placement
//     is O(tasks x log slots) instead of the old O(tasks x slots) linear
//     scan; the heap's (avail, slot) ordering reproduces the linear scan's
//     lowest-index tie-breaking exactly.
//
//   - speculativeSchedule is a discrete-event simulation of the same greedy
//     schedule with Spark-style straggler speculation layered on: once
//     SpeculationQuantile of the stage's tasks have (virtually) finished,
//     any running task slower than SpeculationMultiplier x the median
//     effective duration launches a duplicate copy on an idle slot, the
//     first copy to finish completes the task, and the losing copy is
//     cancelled and charged to its slot up to the completion time. Because
//     speculative copies launch only on otherwise-idle slots after the task
//     queue has drained, the speculative makespan can never exceed the plain
//     list-scheduled makespan of the same durations (the no-speculation
//     model); the property test pins this.

// policyOrder returns task indices in placement order: submission order for
// FIFO, longest-duration-first (stable) for LPT.
func policyOrder(durations []float64, policy SchedulePolicy) []int {
	order := make([]int, len(durations))
	for i := range order {
		order[i] = i
	}
	if policy == ScheduleLPT {
		sort.SliceStable(order, func(a, b int) bool {
			return durations[order[a]] > durations[order[b]]
		})
	}
	return order
}

// slotHeap is a binary min-heap of virtual executor slots keyed by
// (availability time, slot index). The secondary index ordering makes the
// root the lowest-indexed slot among ties, matching the linear-scan
// reference scheduler's tie-breaking bit for bit.
type slotHeap struct {
	avail []float64 // heap-ordered availability times
	slot  []int     // slot index carried alongside avail
}

func newSlotHeap(slots int) *slotHeap {
	h := &slotHeap{avail: make([]float64, slots), slot: make([]int, slots)}
	for i := range h.slot {
		h.slot[i] = i // all-zero avail times are already a valid heap
	}
	return h
}

func (h *slotHeap) less(i, j int) bool {
	if h.avail[i] != h.avail[j] {
		return h.avail[i] < h.avail[j]
	}
	return h.slot[i] < h.slot[j]
}

func (h *slotHeap) swap(i, j int) {
	h.avail[i], h.avail[j] = h.avail[j], h.avail[i]
	h.slot[i], h.slot[j] = h.slot[j], h.slot[i]
}

// assign places a task of duration d on the earliest-available slot and
// returns that slot's index and new availability time.
func (h *slotHeap) assign(d float64) (int, float64) {
	slot := h.slot[0]
	h.avail[0] += d
	after := h.avail[0]
	// Sift the updated root down to restore the heap property.
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < len(h.avail) && h.less(left, smallest) {
			smallest = left
		}
		if right < len(h.avail) && h.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return slot, after
		}
		h.swap(i, smallest)
		i = smallest
	}
}

// listSchedule assigns task virtual durations to executor slots, always
// picking the earliest-available slot, and returns the makespan in
// nanoseconds. Placement order follows the configured policy: submission
// order (FIFO) or longest-first (LPT load balancing).
func (c *Cluster) listSchedule(durations []float64) float64 {
	makespan, _ := c.listScheduleSlots(durations)
	return makespan
}

// listScheduleSlots is listSchedule returning also the slot each task was
// placed on, indexed by the task's original (submission-order) position.
func (c *Cluster) listScheduleSlots(durations []float64) (float64, []int) {
	return c.listScheduleSlotsN(durations, c.SlotCount())
}

// listScheduleSlotsN is listScheduleSlots over an explicit slot count — the
// stage scheduler passes the surviving executors' slots, so a stage that
// lost hosts schedules onto the shrunken pool.
func (c *Cluster) listScheduleSlotsN(durations []float64, slots int) (float64, []int) {
	if slots < 1 {
		slots = 1
	}
	h := newSlotHeap(slots)
	assigned := make([]int, len(durations))
	makespan := 0.0
	for _, task := range policyOrder(durations, c.cfg.Scheduling) {
		slot, after := h.assign(durations[task])
		assigned[task] = slot
		if after > makespan {
			makespan = after
		}
	}
	return makespan, assigned
}

// specTaskInput is one task's measured attempt-chain durations, fed to the
// speculative virtual scheduler by RunStage.
type specTaskInput struct {
	// primaryNS is the primary chain's total virtual duration (all its
	// attempts, after any spill penalty).
	primaryNS float64
	// specNS is the speculative chain's total virtual duration; only
	// meaningful when hasSpec.
	specNS float64
	// hasSpec marks tasks whose real execution launched a speculative
	// copy (with at least one attempt).
	hasSpec bool
	// specCanWin marks speculative chains that reached a successful
	// attempt and could therefore have completed the task. Chains that
	// were cancelled or exhausted mid-run only waste slot time.
	specCanWin bool
}

// specPlacement is the speculative scheduler's verdict for one task.
type specPlacement struct {
	slot     int // slot the primary copy ran on
	specSlot int // slot the speculative copy was charged to, -1 if none

	startNS      float64 // primary start
	specLaunchNS float64 // speculative copy launch, 0 if none
	completionNS float64 // first copy to finish (or primary finish)

	// primaryChargedNS / specChargedNS are the virtual time actually
	// charged to each copy's slot: the full duration for the copy that
	// completed the task, and the truncated time-until-cancellation for
	// the losing copy.
	primaryChargedNS float64
	specChargedNS    float64

	// specVirtualWinner reports that the speculative copy completed the
	// task in the virtual schedule (its finish preceded the primary's).
	specVirtualWinner bool
}

// simEvent kinds, ordered by processing priority at equal times.
const (
	evFinish      = iota // a running copy finished
	evSpecTrigger        // a task crossed the straggler threshold
)

type simEvent struct {
	atNS float64
	kind int
	task int
	spec bool // for evFinish: which copy finished
}

// eventBefore fixes a deterministic total order on simultaneous events:
// finishes before triggers, then lower task index, primary before spec.
func eventBefore(a, b simEvent) bool {
	if a.atNS != b.atNS {
		return a.atNS < b.atNS
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.task != b.task {
		return a.task < b.task
	}
	return !a.spec && b.spec
}

// speculativeSchedule runs the discrete-event speculative scheduler over the
// measured chain durations and returns the stage makespan plus per-task
// placements. It is only invoked for stages whose real execution launched at
// least one speculative copy; stages without speculation keep the plain
// (bit-identical to pre-speculation) list schedule.
func (c *Cluster) speculativeSchedule(tasks []specTaskInput) (float64, []specPlacement) {
	return c.speculativeScheduleN(tasks, c.SlotCount())
}

// speculativeScheduleN is speculativeSchedule over an explicit slot count
// (the surviving executors' slots after any kills).
func (c *Cluster) speculativeScheduleN(tasks []specTaskInput, slots int) (float64, []specPlacement) {
	n := len(tasks)
	if slots < 1 {
		slots = 1
	}
	quantileCount := int(math.Ceil(c.cfg.SpeculationQuantile * float64(n)))
	if quantileCount < 1 {
		quantileCount = 1
	}

	primary := make([]float64, n)
	for i, t := range tasks {
		primary[i] = t.primaryNS
	}
	queue := policyOrder(primary, c.cfg.Scheduling)
	queueIdx := 0

	place := make([]specPlacement, n)
	for i := range place {
		place[i].specSlot = -1
	}

	slotIdle := make([]bool, slots)
	for i := range slotIdle {
		slotIdle[i] = true
	}
	idleSlot := func() int {
		for s, idle := range slotIdle {
			if idle {
				return s
			}
		}
		return -1
	}

	primaryRunning := make([]bool, n)
	specRunning := make([]bool, n)
	taskDone := make([]bool, n)
	specLaunched := make([]bool, n)
	triggered := make([]bool, n)
	done := 0

	var events []simEvent
	push := func(e simEvent) { events = append(events, e) }
	pop := func() (simEvent, bool) {
		best := -1
		for i, e := range events {
			if best < 0 || eventBefore(e, events[best]) {
				best = i
			}
		}
		if best < 0 {
			return simEvent{}, false
		}
		e := events[best]
		events = append(events[:best], events[best+1:]...)
		return e, true
	}

	var completedDur []float64
	medianKnown := false
	var threshold float64 // straggler threshold: multiplier x median

	startPrimary := func(task, slot int, t float64) {
		slotIdle[slot] = false
		primaryRunning[task] = true
		place[task].slot = slot
		place[task].startNS = t
		push(simEvent{atNS: t + tasks[task].primaryNS, kind: evFinish, task: task})
		if medianKnown && tasks[task].hasSpec && !triggered[task] {
			triggered[task] = true
			push(simEvent{atNS: math.Max(t, place[task].startNS+threshold), kind: evSpecTrigger, task: task})
		}
	}
	startSpec := func(task, slot int, t float64) {
		slotIdle[slot] = false
		specRunning[task] = true
		specLaunched[task] = true
		place[task].specSlot = slot
		place[task].specLaunchNS = t
		push(simEvent{atNS: t + tasks[task].specNS, kind: evFinish, task: task, spec: true})
	}

	// waitingSpecs holds triggered tasks that found no idle slot yet, in
	// trigger order.
	var waitingSpecs []int

	// fill launches queued primaries onto idle slots, then (only once the
	// queue is drained, so speculation can never delay a primary) waiting
	// speculative copies.
	fill := func(t float64) {
		for queueIdx < n {
			s := idleSlot()
			if s < 0 {
				return
			}
			startPrimary(queue[queueIdx], s, t)
			queueIdx++
		}
		for len(waitingSpecs) > 0 {
			task := waitingSpecs[0]
			if taskDone[task] || specLaunched[task] {
				waitingSpecs = waitingSpecs[1:]
				continue
			}
			s := idleSlot()
			if s < 0 {
				return
			}
			waitingSpecs = waitingSpecs[1:]
			startSpec(task, s, t)
		}
	}

	completeTask := func(task int, t float64, bySpec bool) {
		taskDone[task] = true
		place[task].completionNS = t
		place[task].specVirtualWinner = bySpec
		if bySpec {
			place[task].specChargedNS = tasks[task].specNS
			// Cancel the primary copy: charged up to the completion.
			place[task].primaryChargedNS = t - place[task].startNS
			primaryRunning[task] = false
			slotIdle[place[task].slot] = true
		} else {
			place[task].primaryChargedNS = tasks[task].primaryNS
			if specRunning[task] {
				// Cancel the speculative copy at the completion.
				place[task].specChargedNS = t - place[task].specLaunchNS
				specRunning[task] = false
				slotIdle[place[task].specSlot] = true
			}
		}
		done++
		completedDur = append(completedDur, t-place[task].startNS)
		if !medianKnown && done >= quantileCount {
			medianKnown = true
			sorted := append([]float64(nil), completedDur...)
			sort.Float64s(sorted)
			threshold = c.cfg.SpeculationMultiplier * sorted[len(sorted)/2]
			// Arm triggers for every already-running speculatable task.
			for i := 0; i < n; i++ {
				if primaryRunning[i] && tasks[i].hasSpec && !triggered[i] {
					triggered[i] = true
					push(simEvent{atNS: math.Max(t, place[i].startNS+threshold), kind: evSpecTrigger, task: i})
				}
			}
		}
	}

	fill(0)
	makespan := 0.0
	for {
		e, ok := pop()
		if !ok {
			break
		}
		switch e.kind {
		case evFinish:
			if e.spec {
				if !specRunning[e.task] {
					break // cancelled earlier
				}
				specRunning[e.task] = false
				slotIdle[place[e.task].specSlot] = true
				if tasks[e.task].specCanWin && !taskDone[e.task] {
					completeTask(e.task, e.atNS, true)
				} else if !taskDone[e.task] {
					// A doomed speculative chain only wasted its slot.
					place[e.task].specChargedNS = tasks[e.task].specNS
				}
			} else {
				if !primaryRunning[e.task] {
					break // cancelled earlier
				}
				primaryRunning[e.task] = false
				slotIdle[place[e.task].slot] = true
				if !taskDone[e.task] {
					completeTask(e.task, e.atNS, false)
				}
			}
			if e.atNS > makespan {
				makespan = e.atNS
			}
			fill(e.atNS)
		case evSpecTrigger:
			if taskDone[e.task] || specLaunched[e.task] || !primaryRunning[e.task] {
				break
			}
			if s := idleSlot(); s >= 0 && queueIdx >= n {
				startSpec(e.task, s, e.atNS)
			} else {
				waitingSpecs = append(waitingSpecs, e.task)
			}
		}
	}
	return makespan, place
}
