package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// This file holds the real-execution half of speculative execution: the
// per-stage runner that executes every task's primary attempt chain, the
// straggler monitor that launches speculative duplicate chains, and the
// first-completion-wins commit arbitration between rival chains.
//
// The policy mirrors Spark's: once SpeculationQuantile of a stage's tasks
// have committed, any task whose primary chain has been running longer than
// SpeculationMultiplier x the median committed real duration (but at least
// SpeculationMinRuntimeMS) gets one speculative duplicate chain. The two
// chains race; the first successful attempt wins an atomic per-task commit
// and cancels the rival via its attempt context. The loser's buffered side
// effects — shuffle writes, published results, metric deltas — are
// discarded, exactly like a failed attempt's, which is what the chaos
// harness (chaos_test.go) verifies bit-for-bit against a sequential oracle.

// stageRun coordinates one stage's real execution, possibly across several
// submission attempts (the resubmission loop in runStage re-runs the
// uncommitted tasks after lineage recovery).
type stageRun struct {
	c        *Cluster
	stageID  int
	name     string
	run      func(tc *TaskContext) error
	recovery bool
	// live is the stage attempt's live-executor list, set by runStage
	// before each attempt launches and stable while its chains run.
	live []int
	sem  chan struct{}
	wg   sync.WaitGroup
	// pool is the current submission attempt's work-stealing pool in
	// RealParallel mode (nil otherwise / between attempts). Written by
	// startPool before its workers launch and read only from chains those
	// workers run, so the wg.Wait between attempts orders all accesses.
	pool *poolRun

	// results holds the committed task results (PublishResult); only the
	// single winning attempt of a task writes its slot, and readers wait
	// for wg, so no further synchronization is needed.
	results []any

	mu            sync.Mutex
	states        []taskState
	committedReal []float64 // real commit durations (ns), feeds the straggler median
}

// taskState is the commit/cancellation bookkeeping of one task.
type taskState struct {
	start         time.Time // primary chain start (zero until launched)
	committed     bool
	specWinner    bool // the speculative chain won the commit race
	specLaunched  bool
	primaryDone   bool
	specDone      bool
	executor      int // live executor the primary chain was placed on
	primaryCancel context.CancelFunc
	specCancel    context.CancelFunc
	primary       chainResult
	spec          chainResult
}

// chainResult is what one attempt chain (primary or speculative) reports
// back: its accumulated virtual-time accounting and how it ended.
type chainResult struct {
	ran           bool // the chain launched at all
	virtualNS     float64
	computeNS     float64
	shuffleWaitNS float64
	attempts      int
	failures      int
	stragglers    int
	succeeded     bool  // reached a successful attempt (won or lost the race)
	committed     bool  // won the commit race
	err           error // retries exhausted (nil when committed or abandoned)
}

// absorb merges a later submission attempt's chain accounting into the
// accumulated record: the work spent before a fetch-failure-triggered
// resubmission really happened and stays charged, while the terminal fields
// (succeeded/committed/err) reflect the latest attempt.
func (r *chainResult) absorb(res chainResult) {
	r.ran = r.ran || res.ran
	r.virtualNS += res.virtualNS
	r.computeNS += res.computeNS
	r.shuffleWaitNS += res.shuffleWaitNS
	r.attempts += res.attempts
	r.failures += res.failures
	r.stragglers += res.stragglers
	r.succeeded = res.succeeded
	r.committed = res.committed
	r.err = res.err
}

func (c *Cluster) newStageRun(stageID int, name string, numTasks int, run func(tc *TaskContext) error, collect, recovery bool) *stageRun {
	// In RealParallel mode the semaphore gates the fixed worker pool (plus
	// spares standing in for paused workers), so it must admit RealWorkers
	// tokens even when that exceeds RealParallelism.
	par := c.cfg.RealParallelism
	if c.cfg.RealParallel {
		par = c.cfg.RealWorkers
	}
	sr := &stageRun{
		c:        c,
		stageID:  stageID,
		name:     name,
		run:      run,
		recovery: recovery,
		sem:      make(chan struct{}, par),
		states:   make([]taskState, numTasks),
	}
	for i := range sr.states {
		sr.states[i].executor = -1
	}
	if collect {
		sr.results = make([]any, numTasks)
	}
	return sr
}

// executeAttempt runs one submission attempt: every not-yet-committed task's
// primary chain on the bounded worker pool and, with speculation enabled,
// the straggler monitor alongside. It returns when every launched chain has
// finished, and — on every path — only after the monitor goroutine has
// stopped, so a failing stage never leaks it.
func (sr *stageRun) executeAttempt() {
	var launch []int
	sr.mu.Lock()
	for i := range sr.states {
		if !sr.states[i].committed {
			launch = append(launch, i)
		}
	}
	sr.mu.Unlock()
	if len(launch) == 0 {
		return
	}
	var stopMonitor, monitorDone chan struct{}
	if sr.c.cfg.Speculation && len(sr.states) > 1 {
		stopMonitor = make(chan struct{})
		monitorDone = make(chan struct{})
		go sr.monitor(stopMonitor, monitorDone)
	}
	defer func() {
		if stopMonitor != nil {
			close(stopMonitor)
			<-monitorDone
		}
	}()
	if sr.c.cfg.RealParallel {
		sr.startPool(launch)
	} else {
		for _, i := range launch {
			sr.wg.Add(1)
			sr.sem <- struct{}{}
			go func(task int) {
				defer sr.wg.Done()
				defer func() { <-sr.sem }()
				sr.runChain(task, false, nil)
			}(i)
		}
	}
	sr.wg.Wait()
}

// pauseSlot releases the chain's worker token around a blocking sleep; in
// pool mode it additionally offers the freed capacity to a spare worker so
// unclaimed tasks keep running while this one stalls.
func (sr *stageRun) pauseSlot() {
	<-sr.sem
	if pr := sr.pool; pr != nil {
		pr.ensureSpare()
	}
}

// resumeSlot re-acquires a worker token after a blocking sleep.
func (sr *stageRun) resumeSlot() { sr.sem <- struct{}{} }

// fetchFailures collects the *FetchFailedError terminal errors of the last
// attempt's uncommitted tasks, in task order. It returns nil when any
// uncommitted task failed for a different reason: genuine failures are not
// repairable by lineage resubmission, so the stage must fail as usual.
func (sr *stageRun) fetchFailures() []*FetchFailedError {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	var out []*FetchFailedError
	for i := range sr.states {
		st := &sr.states[i]
		if st.committed {
			continue
		}
		var ff *FetchFailedError
		if !errors.As(st.primary.err, &ff) {
			return nil
		}
		out = append(out, ff)
	}
	return out
}

// resetForResubmit rearms the uncommitted tasks for the next submission
// attempt. Committed tasks keep their single commit; accumulated accounting
// stays (absorb merges the next attempt in), and specLaunched stays set so a
// task is speculated at most once across the whole stage.
func (sr *stageRun) resetForResubmit() {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	for i := range sr.states {
		st := &sr.states[i]
		if st.committed {
			continue
		}
		st.start = time.Time{}
		st.primaryDone = false
		st.specDone = false
		st.primary.err = nil
		st.primary.succeeded = false
		st.spec.err = nil
		st.spec.succeeded = false
	}
}

// monitor polls the stage's progress and launches speculative duplicate
// chains for stragglers. Speculative chains deliberately bypass the real
// worker semaphore: their rivals are typically blocked in simulated delays,
// and letting a speculative copy wait behind them would deadlock the very
// mitigation it implements.
func (sr *stageRun) monitor(stop, done chan struct{}) {
	defer close(done)
	cfg := sr.c.cfg
	n := len(sr.states)
	quantile := int(math.Ceil(cfg.SpeculationQuantile * float64(n)))
	if quantile < 1 {
		quantile = 1
	}
	minRuntimeNS := cfg.SpeculationMinRuntimeMS * 1e6
	ticker := time.NewTicker(cfg.SpeculationInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-sr.c.poolCtx.Done():
			// Cluster closed mid-stage: the chains' attempt contexts are
			// children of poolCtx and are waking too, so no straggler is
			// left to mitigate.
			return
		case <-ticker.C:
		}
		now := time.Now()
		sr.mu.Lock()
		if len(sr.committedReal) < quantile {
			sr.mu.Unlock()
			continue
		}
		sorted := append([]float64(nil), sr.committedReal...)
		sort.Float64s(sorted)
		threshold := cfg.SpeculationMultiplier * sorted[len(sorted)/2]
		if threshold < minRuntimeNS {
			threshold = minRuntimeNS
		}
		var launches []int
		for i := range sr.states {
			st := &sr.states[i]
			if st.committed || st.specLaunched || st.start.IsZero() {
				continue
			}
			if st.primaryDone {
				continue // exhausted its retries; nothing left to mitigate
			}
			if float64(now.Sub(st.start).Nanoseconds()) > threshold {
				// The primary chain is still running (primaryDone is
				// false), so wg cannot reach zero before this Add.
				st.specLaunched = true
				sr.wg.Add(1)
				launches = append(launches, i)
			}
		}
		sr.mu.Unlock()
		for _, task := range launches {
			sr.c.metrics.SpeculativeTasksLaunched.Add(1)
			sr.c.tracer.Emit(Event{Kind: EventTaskSpecLaunch, Stage: sr.name, StageID: sr.stageID,
				Task: task, Attempt: -1, Speculative: true,
				Executor: sr.c.hostFor(sr.live, sr.stageID, task, true)})
			go func(task int) {
				defer sr.wg.Done()
				sr.runChain(task, true, nil)
			}(task)
		}
	}
}

// runChain executes one attempt chain (primary or speculative) of a task.
// Placement is deterministic: the chain runs on hostFor's pick among the
// attempt's live executors (a speculative copy lands on a different host
// than its primary whenever one exists).
//
// sc is the worker-owned scratch threaded to every attempt's TaskContext;
// callers without one (the legacy launch path, speculative chains) pass nil
// and the chain checks one out of the cluster pool for its duration.
func (sr *stageRun) runChain(task int, speculative bool, sc *WorkerScratch) {
	if sc == nil {
		sc = sr.c.scratch.get()
		defer sr.c.scratch.put(sc)
	}
	// The attempt context is a child of the cluster's pool context, so
	// Cluster.Close cancels in-flight chains (waking straggler sleeps)
	// in addition to the rival-commit cancellation below.
	ctx, cancel := context.WithCancel(sr.c.poolCtx)
	defer cancel()
	exec := sr.c.hostFor(sr.live, sr.stageID, task, speculative)
	sr.mu.Lock()
	st := &sr.states[task]
	if speculative {
		st.specCancel = cancel
	} else {
		st.start = time.Now()
		st.primaryCancel = cancel
		st.executor = exec
	}
	alreadyCommitted := st.committed
	sr.mu.Unlock()

	var res chainResult
	if !alreadyCommitted {
		res = sr.runAttempts(ctx, task, speculative, exec, sc)
	}
	res.ran = true

	sr.mu.Lock()
	if speculative {
		st.spec.absorb(res)
		st.specDone = true
		st.specCancel = nil
	} else {
		st.primary.absorb(res)
		st.primaryDone = true
		st.primaryCancel = nil
	}
	sr.mu.Unlock()
}

// isCommitted reports whether the task already has a committed winner.
func (sr *stageRun) isCommitted(task int) bool {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return sr.states[task].committed
}

// raced reports whether the task launched a speculative chain.
func (sr *stageRun) raced(task int) bool {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return sr.states[task].specLaunched
}

// tryCommit arbitrates first-completion-wins: at most one attempt of a task
// ever commits. The winner cancels the rival chain and publishes the
// attempt's buffered side effects; a false return means a rival already won
// and the caller must discard.
func (sr *stageRun) tryCommit(task int, speculative bool, tc *TaskContext) bool {
	sr.mu.Lock()
	st := &sr.states[task]
	if st.committed {
		sr.mu.Unlock()
		return false
	}
	st.committed = true
	st.specWinner = speculative
	sr.committedReal = append(sr.committedReal, float64(time.Since(st.start).Nanoseconds()))
	var rival context.CancelFunc
	if speculative {
		rival = st.primaryCancel
	} else {
		rival = st.specCancel
	}
	sr.mu.Unlock()
	if rival != nil {
		rival()
	}
	tc.commit()
	if sr.results != nil && tc.published {
		sr.results[task] = tc.result
	}
	return true
}

// runAttempts is one chain's retry loop: up to 1+MaxTaskRetries attempts,
// each with a fresh TaskContext bound to the chain's cancellation context.
// Injected failures, pressure timeouts, and genuine errors consume the
// retry budget exactly as without speculation; a successful attempt races
// for the task commit and the chain ends either way.
func (sr *stageRun) runAttempts(ctx context.Context, task int, speculative bool, exec int, sc *WorkerScratch) chainResult {
	c := sr.c
	cfg := c.cfg
	var out chainResult
	var lastErr error
	for attempt := 0; attempt <= cfg.MaxTaskRetries; attempt++ {
		if ctx.Err() != nil || sr.isCommitted(task) {
			return out // abandoned: a rival won between attempts
		}
		tc := &TaskContext{cluster: c, ctx: ctx, stageID: sr.stageID, stageName: sr.name,
			task: task, attempt: attempt, speculative: speculative,
			executor: exec, recovery: sr.recovery, scratch: sc}
		if !speculative {
			// Primary chains hold a worker token; blocking sleeps yield it
			// so stalled tasks don't starve real workers (and, in pool
			// mode, let a spare worker soak up the freed capacity).
			tc.pause = sr.pauseSlot
			tc.resume = sr.resumeSlot
		}
		c.tracer.Emit(Event{Kind: EventTaskStart, Stage: sr.name, StageID: sr.stageID,
			Task: task, Attempt: attempt, Speculative: speculative, Executor: exec})

		if c.injectStraggler(sr.stageID, task, attempt, speculative) {
			out.stragglers++
			c.metrics.StragglersInjected.Add(1)
			// The virtual cost is charged up front so a cancelled straggler
			// still accounts its would-be duration deterministically; the
			// real block gives the monitor a wall-clock window to race in.
			tc.AddVirtualNS(cfg.StragglerVirtualMS * 1e6)
			c.tracer.Emit(Event{Kind: EventTaskStraggler, Stage: sr.name, StageID: sr.stageID,
				Task: task, Attempt: attempt, Speculative: speculative, Executor: exec,
				VirtualNS: cfg.StragglerVirtualMS * 1e6})
			tc.sleep(time.Duration(cfg.StragglerRealDelayMS * 1e6))
		}

		tc.sleptNS = 0 // injected delay sits outside the compute window
		realStart := time.Now()
		err := sr.run(tc)
		computeNS := float64(time.Since(realStart).Nanoseconds()) - tc.sleptNS
		if computeNS < 0 {
			computeNS = 0
		}
		virtual := computeNS + tc.virtualNS + tc.shuffleWaitNS

		pressured := false
		if tc.workingSetBytes > int64(cfg.MemoryPerExecutorMB)*mb {
			virtual *= cfg.SpillPenalty
			pressured = true
			c.metrics.PressureEvents.Add(1)
		}
		out.attempts++
		out.virtualNS += virtual
		out.computeNS += computeNS
		out.shuffleWaitNS += tc.shuffleWaitNS

		if ctx.Err() != nil {
			// Cancelled mid-attempt by a winning rival: discard and stop.
			tc.discard()
			if c.tracer.Enabled() {
				c.tracer.Emit(Event{Kind: EventTaskCancelled, Stage: sr.name, StageID: sr.stageID,
					Task: task, Attempt: attempt, Speculative: speculative, Executor: exec,
					Outcome: "loser", VirtualNS: virtual})
			}
			return out
		}
		if err != nil {
			out.failures++
			lastErr = err
			tc.discard()
			var ff *FetchFailedError
			if errors.As(err, &ff) {
				// A fetch failure is a stage-level fault, not a task
				// fault: the lost map outputs cannot reappear by retrying
				// the reduce task on the same inputs. The chain ends here
				// — without consuming further task retries — and the stage
				// scheduler recomputes the parent's lost partitions and
				// resubmits.
				out.err = err
				if !speculative {
					c.metrics.FetchFailures.Add(1)
				}
				if c.tracer.Enabled() {
					c.tracer.Emit(Event{Kind: EventFetchFailed, Stage: sr.name, StageID: sr.stageID,
						Task: task, Attempt: attempt, Speculative: speculative, Executor: exec,
						VirtualNS: virtual, Detail: err.Error()})
				}
				return out
			}
			if c.tracer.Enabled() {
				c.tracer.Emit(Event{Kind: EventTaskError, Stage: sr.name, StageID: sr.stageID,
					Task: task, Attempt: attempt, Speculative: speculative, Executor: exec,
					VirtualNS: virtual, Detail: err.Error()})
			}
			continue
		}

		kind := EventKind("")
		if c.injectFailure(sr.stageID, task, attempt, speculative) {
			kind = EventTaskFailInjected
		}
		if pressured && cfg.PressureTimeouts && attempt == 0 {
			// Simulated executor timeout under memory pressure.
			kind = EventTaskPressureTimeout
		}
		if kind != "" {
			out.failures++
			tc.discard()
			c.tracer.Emit(Event{Kind: kind, Stage: sr.name, StageID: sr.stageID,
				Task: task, Attempt: attempt, Speculative: speculative, Executor: exec,
				VirtualNS: virtual})
			continue
		}

		// Successful attempt: race for the task's single commit.
		out.succeeded = true
		if sr.tryCommit(task, speculative, tc) {
			out.committed = true
			ev := Event{Kind: EventTaskSuccess, Stage: sr.name, StageID: sr.stageID,
				Task: task, Attempt: attempt, Speculative: speculative, Executor: exec,
				VirtualNS: virtual}
			if sr.raced(task) {
				ev.Outcome = "winner"
			}
			c.tracer.Emit(ev)
		} else {
			tc.discard()
			c.tracer.Emit(Event{Kind: EventTaskCancelled, Stage: sr.name, StageID: sr.stageID,
				Task: task, Attempt: attempt, Speculative: speculative, Executor: exec,
				Outcome: "loser", VirtualNS: virtual})
		}
		return out
	}
	if lastErr != nil {
		out.err = fmt.Errorf("%w: %w", ErrTaskFailed, lastErr)
	} else {
		out.err = ErrTaskFailed
	}
	return out
}
