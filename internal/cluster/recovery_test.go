package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// Tests for executor-loss recovery: host-local shuffle invalidation,
// FetchFailed-driven lineage resubmission, the blacklist policy, typed stage
// aborts, and the reliable checkpoint store. The chaos harness
// (chaos_test.go) exercises the same machinery end to end against the
// sequential oracle; these tests pin the individual mechanisms.

func TestShuffleInvalidateExecutor(t *testing.T) {
	s := newShuffleService(New(Config{}))
	id := s.Register()
	// Map tasks 0,1 hosted on executor 0; map task 2 on executor 1. Reduce
	// partition 0 reads all three, partition 1 only map task 2.
	s.write(id, 0, 0, 0, 0, "a", 1, 1)
	s.write(id, 0, 1, 0, 0, "b", 1, 1)
	s.write(id, 0, 2, 0, 1, "c", 1, 1)
	s.write(id, 1, 2, 0, 1, "d", 1, 1)
	s.MarkDone(id)

	if lost := s.invalidateExecutor(1); lost != 1 {
		t.Fatalf("invalidateExecutor(1) dropped %d map outputs, want 1", lost)
	}
	if got := s.LostMapTasks(id); len(got) != 1 || got[0] != 2 {
		t.Fatalf("LostMapTasks = %v, want [2]", got)
	}
	// Both partitions that read map task 2 must fail, naming the lost map
	// task and its executor; nothing else is lost.
	for _, reduce := range []int{0, 1} {
		_, _, _, ferr, _ := s.fetch(id, reduce)
		if ferr == nil {
			t.Fatalf("fetch(partition %d) succeeded despite lost map output", reduce)
		}
		if len(ferr.MapTasks) != 1 || ferr.MapTasks[0] != 2 || ferr.Executors[0] != 1 {
			t.Errorf("partition %d: FetchFailed = %+v, want map task 2 on executor 1", reduce, ferr)
		}
		if !errors.Is(ferr, ErrFetchFailed) {
			t.Errorf("FetchFailedError does not unwrap to ErrFetchFailed")
		}
	}

	// Recomputing the lost map task (same block keys, new host) repairs
	// every partition.
	s.write(id, 0, 2, 0, 2, "c", 1, 1)
	s.write(id, 1, 2, 1, 2, "d", 1, 1)
	if got := s.LostMapTasks(id); len(got) != 0 {
		t.Fatalf("LostMapTasks after repair = %v, want none", got)
	}
	blocks, _, _, ferr, _ := s.fetch(id, 0)
	if ferr != nil {
		t.Fatalf("fetch after repair: %v", ferr)
	}
	if len(blocks) != 3 {
		t.Fatalf("partition 0 has %d blocks after repair, want 3", len(blocks))
	}
	// Surviving blocks on executor 0 were untouched.
	if blocks[0].(string) != "a" || blocks[1].(string) != "b" || blocks[2].(string) != "c" {
		t.Errorf("repaired partition 0 = %v, want [a b c]", blocks)
	}
}

// TestFetchFailedResubmitsOnlyLostPartitions is the recovery end-to-end: kill
// one executor after the map stage, and the reduce stage must detect the
// loss, recompute exactly the map partitions that executor hosted, and
// complete — with the trace and metrics telling the story.
func TestFetchFailedResubmitsOnlyLostPartitions(t *testing.T) {
	c := New(Config{Executors: 4, CoresPerExecutor: 1, Trace: true})
	sh := c.Shuffles().Register()
	const mapTasks = 8
	mapOutput := func(tc *TaskContext, part int) error {
		tc.WriteShuffleAs(sh, part%2, part, []int{part}, 1, 8)
		return nil
	}
	var recomputed []int
	c.Shuffles().SetRecompute(sh, func(lost []int) error {
		recomputed = append(recomputed, lost...)
		_, err := c.RunRecoveryStage("map.recompute", len(lost), func(tc *TaskContext) error {
			return mapOutput(tc, lost[tc.Task()])
		})
		return err
	})
	mapStats, err := c.RunStage("map", mapTasks, func(tc *TaskContext) error {
		return mapOutput(tc, tc.Task())
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Shuffles().MarkDone(sh)

	// Kill the executor hosting map task 0; every map task it hosted is lost.
	victim := mapStats.TaskStats[0].Executor
	var lostWant []int
	for _, ts := range mapStats.TaskStats {
		if ts.Executor == victim {
			lostWant = append(lostWant, ts.Task)
		}
	}
	if !c.FailExecutor(victim) {
		t.Fatalf("FailExecutor(%d) refused", victim)
	}
	if len(c.LiveExecutors()) != 3 {
		t.Fatalf("LiveExecutors = %v after killing %d", c.LiveExecutors(), victim)
	}

	reduceStats, err := c.RunStage("reduce", 2, func(tc *TaskContext) error {
		blocks, ferr := tc.FetchShuffle(sh, tc.Task())
		if ferr != nil {
			return ferr
		}
		if len(blocks) != 4 {
			return fmt.Errorf("partition %d: %d blocks, want 4", tc.Task(), len(blocks))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("reduce did not recover: %v", err)
	}
	if reduceStats.Resubmits != 1 {
		t.Errorf("Resubmits = %d, want 1", reduceStats.Resubmits)
	}
	if fmt.Sprint(recomputed) != fmt.Sprint(lostWant) {
		t.Errorf("recomputed map tasks %v, want exactly the lost ones %v", recomputed, lostWant)
	}
	m := c.Metrics().Snapshot()
	if m.ExecutorFailures != 1 || m.MapOutputsLost != int64(len(lostWant)) {
		t.Errorf("ExecutorFailures=%d MapOutputsLost=%d, want 1/%d", m.ExecutorFailures, m.MapOutputsLost, len(lostWant))
	}
	if m.RecomputedStages != 1 || m.RecomputedTasks != int64(len(lostWant)) {
		t.Errorf("RecomputedStages=%d RecomputedTasks=%d, want 1/%d", m.RecomputedStages, m.RecomputedTasks, len(lostWant))
	}
	if m.FetchFailures == 0 {
		t.Error("FetchFailures not counted")
	}
	kinds := map[EventKind]int{}
	for _, e := range c.Tracer().Snapshot() {
		kinds[e.Kind]++
	}
	for _, k := range []EventKind{EventExecutorLost, EventFetchFailed, EventStageResubmit} {
		if kinds[k] == 0 {
			t.Errorf("trace missing %q event", k)
		}
	}
}

// TestRecoveryDoesNotRecountWork: patch-up recomputation must not re-add the
// already-committed work counters — the committed totals stay identical to a
// run that never lost an executor.
func TestRecoveryDoesNotRecountWork(t *testing.T) {
	run := func(kill bool) MetricsSnapshot {
		c := New(Config{Executors: 4, CoresPerExecutor: 1})
		sh := c.Shuffles().Register()
		mapOutput := func(tc *TaskContext, part int) error {
			tc.AddRecords(3)
			tc.WriteShuffleAs(sh, 0, part, []int{part}, 2, 16)
			return nil
		}
		c.Shuffles().SetRecompute(sh, func(lost []int) error {
			_, err := c.RunRecoveryStage("map.recompute", len(lost), func(tc *TaskContext) error {
				return mapOutput(tc, lost[tc.Task()])
			})
			return err
		})
		stats, err := c.RunStage("map", 6, func(tc *TaskContext) error {
			return mapOutput(tc, tc.Task())
		})
		if err != nil {
			t.Fatal(err)
		}
		c.Shuffles().MarkDone(sh)
		if kill {
			if !c.FailExecutor(stats.TaskStats[0].Executor) {
				t.Fatal("FailExecutor refused")
			}
		}
		if _, err := c.RunStage("reduce", 1, func(tc *TaskContext) error {
			_, ferr := tc.FetchShuffle(sh, 0)
			return ferr
		}); err != nil {
			t.Fatal(err)
		}
		return c.Metrics().Snapshot()
	}
	clean := run(false)
	faulty := run(true)
	if faulty.RecomputedTasks == 0 {
		t.Fatal("kill run recomputed nothing; test is vacuous")
	}
	if clean.RecordsProcessed != faulty.RecordsProcessed ||
		clean.ShuffleRecordsWritten != faulty.ShuffleRecordsWritten ||
		clean.ShuffleBytesWritten != faulty.ShuffleBytesWritten ||
		clean.ShuffleBytesRead != faulty.ShuffleBytesRead {
		t.Errorf("recovery leaked counters:\n clean  %+v\n faulty %+v", clean, faulty)
	}
}

func TestBlacklistBackoffAndReadmission(t *testing.T) {
	c := New(Config{Executors: 3, ExecutorRecoveryStages: 1,
		BlacklistAfterFailures: 2, BlacklistBackoffStages: 2, Trace: true})
	noop := func(tc *TaskContext) error { return nil }
	runStages := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := c.RunStage("tick", 1, noop); err != nil {
				t.Fatal(err)
			}
		}
	}

	// First loss: plain recovery, one stage of downtime.
	if !c.FailExecutor(0) {
		t.Fatal("FailExecutor(0) refused")
	}
	if live := c.LiveExecutors(); len(live) != 2 {
		t.Fatalf("LiveExecutors = %v after first kill", live)
	}
	if c.FailExecutor(0) {
		t.Fatal("killed an executor that is already down")
	}
	runStages(1)
	if live := c.LiveExecutors(); len(live) != 3 {
		t.Fatalf("executor 0 not re-admitted after recovery: %v", live)
	}

	// Second loss crosses BlacklistAfterFailures=2: downtime is
	// recovery (1) + backoff (2<<0) = 3 stage submissions.
	if !c.FailExecutor(0) {
		t.Fatal("second FailExecutor(0) refused")
	}
	if got := c.Metrics().ExecutorsBlacklisted.Load(); got != 1 {
		t.Fatalf("ExecutorsBlacklisted = %d, want 1", got)
	}
	runStages(2)
	if live := c.LiveExecutors(); len(live) != 2 {
		t.Fatalf("blacklisted executor returned early: %v", live)
	}
	runStages(1)
	if live := c.LiveExecutors(); len(live) != 3 {
		t.Fatalf("blacklisted executor not re-admitted after backoff: %v", live)
	}

	// Third loss: backoff doubles to 2<<1 = 4, total downtime 5.
	if !c.FailExecutor(0) {
		t.Fatal("third FailExecutor(0) refused")
	}
	runStages(4)
	if live := c.LiveExecutors(); len(live) != 2 {
		t.Fatalf("backoff did not grow exponentially: %v", live)
	}
	runStages(1)
	if live := c.LiveExecutors(); len(live) != 3 {
		t.Fatalf("executor never re-admitted: %v", live)
	}

	sawBlacklist := false
	for _, e := range c.Tracer().Snapshot() {
		if e.Kind == EventExecutorBlacklisted && e.Executor == 0 {
			sawBlacklist = true
		}
	}
	if !sawBlacklist {
		t.Error("trace missing executor_blacklisted event")
	}
}

func TestFailExecutorNeverKillsLastHost(t *testing.T) {
	c := New(Config{Executors: 2})
	if !c.FailExecutor(0) {
		t.Fatal("first kill refused")
	}
	if c.FailExecutor(1) {
		t.Error("killed the last live executor")
	}
	if c.FailExecutor(7) || c.FailExecutor(-1) {
		t.Error("killed an out-of-range executor")
	}
}

func TestStageAbortMissingRecompute(t *testing.T) {
	c := New(Config{Executors: 4, CoresPerExecutor: 1})
	sh := c.Shuffles().Register()
	stats, err := c.RunStage("map", 4, func(tc *TaskContext) error {
		tc.WriteShuffle(sh, 0, []int{tc.Task()}, 1, 8)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Shuffles().MarkDone(sh)
	if !c.FailExecutor(stats.TaskStats[0].Executor) {
		t.Fatal("FailExecutor refused")
	}
	_, err = c.RunStage("reduce", 1, func(tc *TaskContext) error {
		_, ferr := tc.FetchShuffle(sh, 0)
		return ferr
	})
	if !errors.Is(err, ErrStageAborted) {
		t.Fatalf("err = %v, want ErrStageAborted (no recompute callback)", err)
	}
	if !errors.Is(err, ErrFetchFailed) {
		t.Errorf("abort does not carry the fetch failure: %v", err)
	}
	var abort *StageAbortedError
	if !errors.As(err, &abort) {
		t.Fatalf("err = %T, want *StageAbortedError", err)
	}
	if abort.Stage != "reduce" {
		t.Errorf("abort.Stage = %q", abort.Stage)
	}
}

// TestStageAbortAfterMaxRetries: a recompute callback that never actually
// restores the lost blocks forces the resubmission loop to exhaust
// MaxStageRetries and abort with the typed error, deterministically.
func TestStageAbortAfterMaxRetries(t *testing.T) {
	run := func() error {
		c := New(Config{Executors: 4, CoresPerExecutor: 1, MaxStageRetries: 2})
		sh := c.Shuffles().Register()
		c.Shuffles().SetRecompute(sh, func(lost []int) error { return nil }) // lies: repairs nothing
		stats, err := c.RunStage("map", 4, func(tc *TaskContext) error {
			tc.WriteShuffle(sh, 0, []int{tc.Task()}, 1, 8)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		c.Shuffles().MarkDone(sh)
		if !c.FailExecutor(stats.TaskStats[0].Executor) {
			t.Fatal("FailExecutor refused")
		}
		_, err = c.RunStage("reduce", 1, func(tc *TaskContext) error {
			_, ferr := tc.FetchShuffle(sh, 0)
			return ferr
		})
		return err
	}
	err := run()
	if !errors.Is(err, ErrStageAborted) {
		t.Fatalf("err = %v, want ErrStageAborted", err)
	}
	var abort *StageAbortedError
	if !errors.As(err, &abort) || abort.Resubmits != 2 {
		t.Fatalf("abort = %+v, want Resubmits=2 (MaxStageRetries)", abort)
	}
	if again := run(); again == nil || again.Error() != err.Error() {
		t.Errorf("abort not deterministic:\n first: %v\nsecond: %v", err, again)
	}
}

// TestSpeculationMonitorStoppedOnErrorPaths: RunStage's error exits (task
// exhaustion, stage abort) must stop the straggler monitor goroutine before
// returning — in both execution modes, since RealParallel's pool workers and
// spares are additional goroutines that must also drain. Run under -race,
// repeated failing stages would otherwise accumulate leaked monitors. The
// straggler injection exercises the pause/spare handoff on the pool path, so
// retired spares are covered too.
func TestSpeculationMonitorStoppedOnErrorPaths(t *testing.T) {
	boom := errors.New("boom")
	for _, realParallel := range []bool{false, true} {
		before := runtime.NumGoroutine()
		for i := 0; i < 10; i++ {
			c := New(Config{Executors: 4, Speculation: true, MaxTaskRetries: 1,
				SpeculationQuantile: 0.1, SpeculationInterval: 50 * time.Microsecond,
				RealParallel: realParallel, RealWorkers: 3,
				StragglerRate: 0.3, StragglerRealDelayMS: 1})
			_, err := c.RunStage("failing", 8, func(tc *TaskContext) error {
				if tc.Task()%2 == 1 {
					return boom
				}
				return nil
			})
			if !errors.Is(err, boom) {
				t.Fatalf("realParallel=%v: err = %v", realParallel, err)
			}
			c.Close()
		}
		leaked := true
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before+2 {
				leaked = false
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if leaked {
			t.Errorf("realParallel=%v: goroutine count %d stayed above baseline %d: monitor/worker leak",
				realParallel, runtime.NumGoroutine(), before)
		}
	}
}

// TestTraceExecutorFieldSchema is the regression test on the exported JSON
// schema: every event carries an "executor" key — the binding executor for
// task-level events, -1 for stage-level and driver-level events.
func TestTraceExecutorFieldSchema(t *testing.T) {
	c := New(Config{Executors: 4, CoresPerExecutor: 1, Trace: true})
	sh := c.Shuffles().Register()
	mapOutput := func(tc *TaskContext, part int) error {
		tc.WriteShuffleAs(sh, 0, part, []int{part}, 1, 8)
		return nil
	}
	c.Shuffles().SetRecompute(sh, func(lost []int) error {
		_, err := c.RunRecoveryStage("map.recompute", len(lost), func(tc *TaskContext) error {
			return mapOutput(tc, lost[tc.Task()])
		})
		return err
	})
	stats, err := c.RunStage("map", 6, func(tc *TaskContext) error { return mapOutput(tc, tc.Task()) })
	if err != nil {
		t.Fatal(err)
	}
	c.Shuffles().MarkDone(sh)
	if !c.FailExecutor(stats.TaskStats[0].Executor) {
		t.Fatal("FailExecutor refused")
	}
	if _, err := c.RunStage("reduce", 1, func(tc *TaskContext) error {
		_, ferr := tc.FetchShuffle(sh, 0)
		return ferr
	}); err != nil {
		t.Fatal(err)
	}
	c.Broadcast(100)

	var buf bytes.Buffer
	if err := c.Tracer().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Events []map[string]any `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not parseable: %v", err)
	}
	taskLevel := map[string]bool{
		"task_start": true, "task_success": true, "task_fail_injected": true,
		"fetch_failed": true, "speculative_launch": true, "executor_lost": true,
	}
	stageLevel := map[string]bool{
		"stage_start": true, "stage_end": true, "stage_resubmit": true, "broadcast": true,
	}
	sawTask, sawStage := false, false
	for _, e := range doc.Events {
		raw, ok := e["executor"]
		if !ok {
			t.Fatalf("event %v missing executor field", e)
		}
		exec := int(raw.(float64))
		kind := e["kind"].(string)
		switch {
		case taskLevel[kind]:
			sawTask = true
			if exec < 0 || exec >= 4 {
				t.Errorf("%s event bound to executor %d, want [0,4)", kind, exec)
			}
		case stageLevel[kind]:
			sawStage = true
			if exec != -1 {
				t.Errorf("%s event bound to executor %d, want -1", kind, exec)
			}
		}
	}
	if !sawTask || !sawStage {
		t.Fatalf("schema test saw no task-level (%v) or stage-level (%v) events", sawTask, sawStage)
	}
}

// TestRecoveryProperty (testing/quick, 300+ cases): for random programs and
// kill rates, a run that recovers must be byte-identical to the sequential
// oracle, and the recomputed-task count can never exceed the number of map
// outputs lost (recovery recomputes only lost partitions, never whole
// stages). Runs that exhaust recovery must carry the typed abort.
func TestRecoveryProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short")
	}
	f := func(seedRaw uint16, execSel, killSel uint8) bool {
		seed := int64(seedRaw)%997 + 1
		executors := 2 + int(execSel)%4
		killRate := []float64{0.2, 0.3, 0.5}[int(killSel)%3]
		prog := genChaosProgram(seed * 31)
		want := chaosOracle(prog)
		cfg := chaosConfig(seed, executors, 0, killRate, false, false, 0)
		c := New(cfg)
		state, sums, err := runChaosProgram(c, prog)
		m := c.Metrics().Snapshot()
		if m.RecomputedTasks > m.MapOutputsLost {
			t.Logf("seed=%d exec=%d kill=%v: RecomputedTasks %d > MapOutputsLost %d",
				seed, executors, killRate, m.RecomputedTasks, m.MapOutputsLost)
			return false
		}
		if err != nil {
			if !errors.Is(err, ErrStageAborted) {
				t.Logf("seed=%d exec=%d kill=%v: untyped failure %v", seed, executors, killRate, err)
				return false
			}
			return true
		}
		if len(state) != len(want.finalState) {
			return false
		}
		for i := range state {
			if !int64sEqual(state[i], want.finalState[i]) {
				t.Logf("seed=%d exec=%d kill=%v: partition %d = %v, want %v",
					seed, executors, killRate, i, state[i], want.finalState[i])
				return false
			}
		}
		for i := range sums {
			if sums[i] != want.finalResults[i] {
				return false
			}
		}
		return m.RecordsProcessed == want.records &&
			m.ShuffleRecordsWritten == want.shufRecords &&
			m.ShuffleBytesRead == want.shufRead
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointStoreSurvivesExecutorLoss(t *testing.T) {
	c := New(Config{Executors: 2, Trace: true})
	id := BlockID{RDD: 3, Partition: 1}
	c.Checkpoints().Put(id, []byte("payload"))
	if got := c.Metrics().CheckpointedPartitions.Load(); got != 1 {
		t.Fatalf("CheckpointedPartitions = %d", got)
	}
	// Replacement must not double-count partitions.
	c.Checkpoints().Put(id, []byte("payload2"))
	if got := c.Metrics().CheckpointedPartitions.Load(); got != 1 {
		t.Fatalf("CheckpointedPartitions after replace = %d, want 1", got)
	}
	if !c.FailExecutor(0) {
		t.Fatal("FailExecutor refused")
	}
	b, ok := c.Checkpoints().Get(id)
	if !ok || string(b) != "payload2" {
		t.Fatalf("checkpoint lost with executor: %q %v", b, ok)
	}
	sawEvent := false
	for _, e := range c.Tracer().Snapshot() {
		if e.Kind == EventCheckpoint {
			sawEvent = true
			if e.Executor != ReliableStorage {
				t.Errorf("checkpoint event executor = %d, want ReliableStorage", e.Executor)
			}
			if !strings.Contains(e.Detail, "rdd3/p1") {
				t.Errorf("checkpoint event detail = %q", e.Detail)
			}
		}
	}
	if !sawEvent {
		t.Error("no checkpoint trace event")
	}
}

func TestBlockStoreInvalidateExecutor(t *testing.T) {
	c := New(Config{Executors: 2, MemoryPerExecutorMB: 64})
	bs := c.Blocks()
	bs.Put(BlockID{RDD: 1, Partition: 0}, "a", 100, 0)
	bs.Put(BlockID{RDD: 1, Partition: 1}, "b", 100, 1)
	bs.Put(BlockID{RDD: 2, Partition: 0}, "c", 100, ReliableStorage)
	if n := bs.InvalidateExecutor(0); n != 1 {
		t.Fatalf("InvalidateExecutor dropped %d blocks, want 1", n)
	}
	if _, ok := bs.Get(BlockID{RDD: 1, Partition: 0}); ok {
		t.Error("block hosted on dead executor still readable")
	}
	if _, ok := bs.Get(BlockID{RDD: 1, Partition: 1}); !ok {
		t.Error("surviving executor's block dropped")
	}
	if _, ok := bs.Get(BlockID{RDD: 2, Partition: 0}); !ok {
		t.Error("reliable-storage block dropped on executor loss")
	}
}
