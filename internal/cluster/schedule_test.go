package cluster

import "testing"

func TestSchedulePolicyString(t *testing.T) {
	if ScheduleFIFO.String() != "fifo" || ScheduleLPT.String() != "lpt" {
		t.Error("policy strings wrong")
	}
}

func TestLPTBeatsFIFOOnSkewedTasks(t *testing.T) {
	// Skewed durations with the long task last: FIFO fills slots with
	// short tasks first and the straggler lands on a loaded slot; LPT
	// places it first. This is the load-balancing gain the paper's §7
	// names as future work.
	durations := []float64{10, 10, 10, 10, 10, 10, 100}
	fifo := New(Config{Executors: 2, CoresPerExecutor: 1})
	lpt := New(Config{Executors: 2, CoresPerExecutor: 1, Scheduling: ScheduleLPT})
	f := fifo.listSchedule(durations)
	l := lpt.listSchedule(durations)
	if l >= f {
		t.Errorf("LPT makespan %v not below FIFO %v", l, f)
	}
	// LPT optimum here: slot A = 100, slot B = 60 -> makespan 100.
	if l != 100 {
		t.Errorf("LPT makespan = %v, want 100", l)
	}
	// FIFO: A = 10+10+10 = 30... tasks alternate; the 100 lands on a slot
	// with 30 already -> 130.
	if f != 130 {
		t.Errorf("FIFO makespan = %v, want 130", f)
	}
}

func TestLPTDoesNotMutateCallerDurations(t *testing.T) {
	c := New(Config{Executors: 2, Scheduling: ScheduleLPT})
	durations := []float64{1, 5, 2}
	c.listSchedule(durations)
	if durations[0] != 1 || durations[1] != 5 || durations[2] != 2 {
		t.Error("listSchedule mutated the caller's slice")
	}
}

func TestLPTNeverWorseThanFIFO(t *testing.T) {
	cases := [][]float64{
		{},
		{5},
		{1, 1, 1, 1},
		{9, 1, 8, 2, 7, 3},
		{100, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
		{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9},
	}
	for _, durations := range cases {
		for _, slots := range []int{1, 2, 3, 5} {
			fifo := New(Config{Executors: slots, CoresPerExecutor: 1})
			lpt := New(Config{Executors: slots, CoresPerExecutor: 1, Scheduling: ScheduleLPT})
			f := fifo.listSchedule(durations)
			l := lpt.listSchedule(durations)
			// LPT is a 4/3-approximation; against FIFO's arbitrary
			// order it can only tie or win on these adversarial
			// inputs (long task last).
			if l > f {
				t.Errorf("slots=%d durations=%v: LPT %v worse than FIFO %v", slots, durations, l, f)
			}
		}
	}
}
