package cluster

import (
	"container/list"
	"fmt"
	"sync"
)

// BlockID identifies one cached RDD partition.
type BlockID struct {
	RDD       int
	Partition int
}

// BlockStore is the cluster's in-memory partition cache, the analogue of
// Spark's block manager. Capacity is the sum of the executors' memory
// budgets; when an insert would exceed it, least-recently used blocks are
// displaced. What displacement means depends on the block: with
// Config.SpillToDisk set and a SpillCodec attached (PutSpillable), the block
// is spilled to executor-local disk — MEMORY_AND_DISK storage — and read back
// transparently on the next Get, charging virtual disk time. Blocks without
// a codec (or with spilling off) are evicted as before and recomputed from
// lineage by the RDD layer on the next read.
type BlockStore struct {
	cluster  *Cluster
	mu       sync.Mutex
	capacity int64
	used     int64
	lru      *list.List // front = most recently used; holds *blockEntry
	index    map[BlockID]*list.Element
	// spilled holds blocks displaced to the disk tier; they are out of the
	// LRU and do not count toward used. Like shuffle files, a spilled
	// block lives on its executor's local disk and dies with the host.
	spilled map[BlockID]*blockEntry
}

type blockEntry struct {
	id    BlockID
	data  any
	bytes int64
	// executor is the host whose loss drops this block; ReliableStorage
	// marks blocks that survive executor failures (checkpoints, driver-
	// side inserts).
	executor int
	// codec, when non-nil, makes the block spillable instead of evictable.
	codec SpillCodec
	// spill is set while the block lives on disk (data is nil then).
	spill *SpillRef
}

// ReliableStorage is the executor argument for blocks that are not hosted on
// any single executor and therefore survive executor loss.
const ReliableStorage = -1

func newBlockStore(capacity int64, c *Cluster) *BlockStore {
	return &BlockStore{
		cluster:  c,
		capacity: capacity,
		lru:      list.New(),
		index:    make(map[BlockID]*list.Element),
		spilled:  make(map[BlockID]*blockEntry),
	}
}

// Get returns the cached partition and whether it was present, updating
// recency on a hit. Spilled blocks are read back transparently; the virtual
// disk time that costs is charged to the cluster clock. Tasks should prefer
// GetWithCost so the charge lands on their own attempt.
func (b *BlockStore) Get(id BlockID) (any, bool) {
	data, ns, ok := b.GetWithCost(id)
	if ns > 0 {
		b.cluster.mu.Lock()
		b.cluster.virtualNS += ns
		b.cluster.mu.Unlock()
	}
	return data, ok
}

// GetWithCost is Get returning the virtual disk time of any spill read-back
// the hit required, so task-side callers can charge it to their attempt.
func (b *BlockStore) GetWithCost(id BlockID) (any, float64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.index[id]; ok {
		b.lru.MoveToFront(el)
		b.cluster.metrics.BlockHits.Add(1)
		e := el.Value.(*blockEntry)
		b.traceBlock(EventBlockHit, id, e.bytes)
		return e.data, 0, true
	}
	if e, ok := b.spilled[id]; ok {
		data, ns, err := b.unspillLocked(e)
		if err == nil {
			b.cluster.metrics.BlockHits.Add(1)
			b.traceBlock(EventBlockHit, id, e.bytes)
			return data, ns, true
		}
		// A block that cannot come back from disk is simply gone; lineage
		// recompute covers it like an eviction would.
	}
	b.cluster.metrics.BlockMisses.Add(1)
	b.traceBlock(EventBlockMiss, id, 0)
	return nil, 0, false
}

// unspillLocked reads one spilled block back into the memory tier,
// re-admitting it at the LRU front (which may displace others). On any
// read-back failure the block is dropped entirely. Callers hold b.mu.
func (b *BlockStore) unspillLocked(e *blockEntry) (any, float64, error) {
	ref := *e.spill
	delete(b.spilled, e.id)
	raw, err := b.cluster.spill.Get(ref)
	if err == nil {
		var data any
		data, err = e.codec.Decode(raw)
		if err == nil {
			e.data = data
			e.spill = nil
			b.cluster.spill.Free(ref)
			b.index[e.id] = b.lru.PushFront(e)
			b.used += e.bytes
			for b.used > b.capacity {
				b.displaceLocked()
			}
			ns := b.cluster.recordSpillLoad(ref, fmt.Sprintf("rdd%d/p%d", e.id.RDD, e.id.Partition))
			return data, ns, nil
		}
	}
	b.cluster.spill.Free(ref)
	return nil, 0, err
}

// traceBlock emits one block-store trace event; the Enabled check keeps the
// disabled path free of the Detail formatting.
func (b *BlockStore) traceBlock(kind EventKind, id BlockID, bytes int64) {
	if !b.cluster.tracer.Enabled() {
		return
	}
	b.cluster.tracer.Emit(Event{Kind: kind, Task: -1, Attempt: -1, Executor: -1, Bytes: bytes,
		Detail: fmt.Sprintf("rdd%d/p%d", id.RDD, id.Partition)})
}

// Put caches a partition hosted on the given executor (ReliableStorage for
// blocks that survive executor loss). Blocks larger than the whole store are
// rejected (the partition stays recompute-only). Existing entries are
// replaced, adopting the new host. Blocks stored through Put carry no codec
// and are evicted (not spilled) under memory pressure.
func (b *BlockStore) Put(id BlockID, data any, bytes int64, executor int) bool {
	return b.PutSpillable(id, data, bytes, executor, nil)
}

// PutSpillable is Put with a SpillCodec attached: under memory pressure the
// block is spilled to the executor's local disk instead of evicted, provided
// Config.SpillToDisk is set.
func (b *BlockStore) PutSpillable(id BlockID, data any, bytes int64, executor int, codec SpillCodec) bool {
	if bytes > b.capacity && !(b.cluster.cfg.SpillToDisk && codec != nil) {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.spilled[id]; ok {
		// Replacing a spilled block: the on-disk copy is stale.
		b.cluster.spill.Free(*e.spill)
		delete(b.spilled, id)
	}
	if el, ok := b.index[id]; ok {
		e := el.Value.(*blockEntry)
		b.used += bytes - e.bytes
		e.data = data
		e.bytes = bytes
		e.executor = executor
		e.codec = codec
		b.lru.MoveToFront(el)
	} else {
		e := &blockEntry{id: id, data: data, bytes: bytes, executor: executor, codec: codec}
		b.index[id] = b.lru.PushFront(e)
		b.used += bytes
		b.cluster.metrics.BlocksCached.Add(1)
		b.traceBlock(EventBlockCached, id, bytes)
	}
	for b.used > b.capacity {
		b.displaceLocked()
	}
	return true
}

// InvalidateExecutor drops every cached partition hosted on executor e —
// resident and spilled alike: a spilled block lives on the dead host's local
// disk — returning how many disappeared. Dropped partitions are recomputed
// from lineage on the next read, exactly like evicted ones.
func (b *BlockStore) InvalidateExecutor(e int) int {
	if e == ReliableStorage {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	var next *list.Element
	for el := b.lru.Front(); el != nil; el = next {
		next = el.Next()
		be := el.Value.(*blockEntry)
		if be.executor != e {
			continue
		}
		b.lru.Remove(el)
		delete(b.index, be.id)
		b.used -= be.bytes
		n++
	}
	for id, be := range b.spilled {
		if be.executor != e {
			continue
		}
		b.cluster.spill.Free(*be.spill)
		delete(b.spilled, id)
		n++
	}
	return n
}

// displaceLocked removes the least-recently-used block from the memory tier:
// spillable blocks (PutSpillable + Config.SpillToDisk) move to the disk tier,
// everything else is evicted and must be recomputed from lineage. Callers
// hold b.mu.
func (b *BlockStore) displaceLocked() {
	el := b.lru.Back()
	if el == nil {
		return
	}
	e := el.Value.(*blockEntry)
	if b.cluster.cfg.SpillToDisk && e.codec != nil {
		if raw, err := e.codec.Encode(e.data); err == nil {
			if ref, err := b.cluster.spill.Put(raw, e.executor); err == nil {
				b.lru.Remove(el)
				delete(b.index, e.id)
				b.used -= e.bytes
				e.data = nil
				e.spill = &ref
				b.spilled[e.id] = e
				b.cluster.recordSpill(ref, fmt.Sprintf("rdd%d/p%d", e.id.RDD, e.id.Partition))
				return
			}
		}
		// Encoding or disk trouble: fall back to plain eviction; lineage
		// recompute keeps the job correct either way.
	}
	b.lru.Remove(el)
	delete(b.index, e.id)
	b.used -= e.bytes
	b.cluster.metrics.BlockEvictions.Add(1)
	b.traceBlock(EventBlockEvict, e.id, e.bytes)
}

// Remove drops a specific block if present (Unpersist support).
func (b *BlockStore) Remove(id BlockID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.index[id]; ok {
		e := el.Value.(*blockEntry)
		b.lru.Remove(el)
		delete(b.index, id)
		b.used -= e.bytes
	}
	if e, ok := b.spilled[id]; ok {
		b.cluster.spill.Free(*e.spill)
		delete(b.spilled, id)
	}
}

// DropAll clears the cache (test/benchmark hygiene between runs).
func (b *BlockStore) DropAll() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lru.Init()
	b.index = make(map[BlockID]*list.Element)
	for _, e := range b.spilled {
		b.cluster.spill.Free(*e.spill)
	}
	b.spilled = make(map[BlockID]*blockEntry)
	b.used = 0
}

// Used returns the bytes currently resident in the memory tier (spilled
// blocks count zero — that is the point of spilling).
func (b *BlockStore) Used() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Capacity returns the store's byte capacity.
func (b *BlockStore) Capacity() int64 { return b.capacity }

// Len returns the number of cached blocks, resident plus spilled.
func (b *BlockStore) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.index) + len(b.spilled)
}

// SpilledLen returns how many blocks currently live in the disk tier.
func (b *BlockStore) SpilledLen() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.spilled)
}
