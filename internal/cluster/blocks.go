package cluster

import (
	"container/list"
	"fmt"
	"sync"
)

// BlockID identifies one cached RDD partition.
type BlockID struct {
	RDD       int
	Partition int
}

// BlockStore is the cluster's in-memory partition cache, the analogue of
// Spark's block manager with MEMORY_ONLY storage. Capacity is the sum of the
// executors' memory budgets; when an insert would exceed it, least-recently
// used blocks are evicted. Evicted partitions are recomputed from lineage by
// the RDD layer on the next read (and the recomputation is counted).
type BlockStore struct {
	cluster  *Cluster
	mu       sync.Mutex
	capacity int64
	used     int64
	lru      *list.List // front = most recently used; holds *blockEntry
	index    map[BlockID]*list.Element
}

type blockEntry struct {
	id    BlockID
	data  any
	bytes int64
	// executor is the host whose loss drops this block; ReliableStorage
	// marks blocks that survive executor failures (checkpoints, driver-
	// side inserts).
	executor int
}

// ReliableStorage is the executor argument for blocks that are not hosted on
// any single executor and therefore survive executor loss.
const ReliableStorage = -1

func newBlockStore(capacity int64, c *Cluster) *BlockStore {
	return &BlockStore{
		cluster:  c,
		capacity: capacity,
		lru:      list.New(),
		index:    make(map[BlockID]*list.Element),
	}
}

// Get returns the cached partition and whether it was present, updating
// recency on a hit.
func (b *BlockStore) Get(id BlockID) (any, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	el, ok := b.index[id]
	if !ok {
		b.cluster.metrics.BlockMisses.Add(1)
		b.traceBlock(EventBlockMiss, id, 0)
		return nil, false
	}
	b.lru.MoveToFront(el)
	b.cluster.metrics.BlockHits.Add(1)
	e := el.Value.(*blockEntry)
	b.traceBlock(EventBlockHit, id, e.bytes)
	return e.data, true
}

// traceBlock emits one block-store trace event; the Enabled check keeps the
// disabled path free of the Detail formatting.
func (b *BlockStore) traceBlock(kind EventKind, id BlockID, bytes int64) {
	if !b.cluster.tracer.Enabled() {
		return
	}
	b.cluster.tracer.Emit(Event{Kind: kind, Task: -1, Attempt: -1, Executor: -1, Bytes: bytes,
		Detail: fmt.Sprintf("rdd%d/p%d", id.RDD, id.Partition)})
}

// Put caches a partition hosted on the given executor (ReliableStorage for
// blocks that survive executor loss). Blocks larger than the whole store are
// rejected (the partition stays recompute-only). Existing entries are
// replaced, adopting the new host.
func (b *BlockStore) Put(id BlockID, data any, bytes int64, executor int) bool {
	if bytes > b.capacity {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.index[id]; ok {
		e := el.Value.(*blockEntry)
		b.used += bytes - e.bytes
		e.data = data
		e.bytes = bytes
		e.executor = executor
		b.lru.MoveToFront(el)
	} else {
		e := &blockEntry{id: id, data: data, bytes: bytes, executor: executor}
		b.index[id] = b.lru.PushFront(e)
		b.used += bytes
		b.cluster.metrics.BlocksCached.Add(1)
		b.traceBlock(EventBlockCached, id, bytes)
	}
	for b.used > b.capacity {
		b.evictLocked()
	}
	return true
}

// InvalidateExecutor drops every cached partition hosted on executor e,
// returning how many disappeared. Dropped partitions are recomputed from
// lineage on the next read, exactly like evicted ones.
func (b *BlockStore) InvalidateExecutor(e int) int {
	if e == ReliableStorage {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	var next *list.Element
	for el := b.lru.Front(); el != nil; el = next {
		next = el.Next()
		be := el.Value.(*blockEntry)
		if be.executor != e {
			continue
		}
		b.lru.Remove(el)
		delete(b.index, be.id)
		b.used -= be.bytes
		n++
	}
	return n
}

// evictLocked removes the least-recently-used block. Callers hold b.mu.
func (b *BlockStore) evictLocked() {
	el := b.lru.Back()
	if el == nil {
		return
	}
	e := el.Value.(*blockEntry)
	b.lru.Remove(el)
	delete(b.index, e.id)
	b.used -= e.bytes
	b.cluster.metrics.BlockEvictions.Add(1)
	b.traceBlock(EventBlockEvict, e.id, e.bytes)
}

// Remove drops a specific block if present (Unpersist support).
func (b *BlockStore) Remove(id BlockID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.index[id]; ok {
		e := el.Value.(*blockEntry)
		b.lru.Remove(el)
		delete(b.index, id)
		b.used -= e.bytes
	}
}

// DropAll clears the cache (test/benchmark hygiene between runs).
func (b *BlockStore) DropAll() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lru.Init()
	b.index = make(map[BlockID]*list.Element)
	b.used = 0
}

// Used returns the bytes currently cached.
func (b *BlockStore) Used() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Capacity returns the store's byte capacity.
func (b *BlockStore) Capacity() int64 { return b.capacity }

// Len returns the number of cached blocks.
func (b *BlockStore) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.index)
}
