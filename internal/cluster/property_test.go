package cluster

import (
	"testing"
	"testing/quick"
)

// TestMakespanBoundsProperty: for any task durations and slot count, the
// list-scheduled makespan is at least the longest task and the average load,
// and at most the total work.
func TestMakespanBoundsProperty(t *testing.T) {
	f := func(raw []uint16, execs uint8) bool {
		durations := make([]float64, len(raw))
		var total, longest float64
		for i, r := range raw {
			durations[i] = float64(r)
			total += durations[i]
			if durations[i] > longest {
				longest = durations[i]
			}
		}
		slots := int(execs)%8 + 1
		for _, policy := range []SchedulePolicy{ScheduleFIFO, ScheduleLPT} {
			c := New(Config{Executors: slots, CoresPerExecutor: 1, Scheduling: policy})
			m := c.listSchedule(durations)
			if m < longest-1e-9 {
				return false
			}
			if m < total/float64(slots)-1e-9 {
				return false
			}
			if m > total+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestGrahamBoundProperty: any greedy list schedule (FIFO or LPT) satisfies
// Graham's bound makespan <= total/m + longest, which also bounds it by
// twice the trivial lower bound max(longest, total/m).
func TestGrahamBoundProperty(t *testing.T) {
	f := func(raw []uint16, execs uint8) bool {
		if len(raw) == 0 {
			return true
		}
		durations := make([]float64, len(raw))
		var total, longest float64
		for i, r := range raw {
			durations[i] = float64(r) + 1 // avoid all-zero degeneracy
			total += durations[i]
			if durations[i] > longest {
				longest = durations[i]
			}
		}
		m := float64(int(execs)%8 + 1)
		for _, policy := range []SchedulePolicy{ScheduleFIFO, ScheduleLPT} {
			c := New(Config{Executors: int(m), CoresPerExecutor: 1, Scheduling: policy})
			if c.listSchedule(durations) > total/m+longest+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFailureInjectionRateProperty: observed failure frequency tracks the
// configured rate across many tasks.
func TestFailureInjectionRateProperty(t *testing.T) {
	c := New(Config{FailureRate: 0.25, MaxTaskRetries: 50, Seed: 99})
	stats, err := c.RunStage("many", 2000, func(tc *TaskContext) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(stats.Failures) / float64(stats.Attempts)
	if rate < 0.18 || rate > 0.32 {
		t.Errorf("observed failure rate %.3f far from configured 0.25", rate)
	}
}
