package cluster

// TaskContext is handed to every task attempt. It accumulates the attempt's
// simulated I/O time, bookkeeping counters, and buffered shuffle writes.
// Shuffle writes become visible to downstream stages only when the attempt
// succeeds (commit-on-success, as in Spark); a failed attempt's writes are
// discarded, which is what makes task retry safe.
//
// A TaskContext is used by a single goroutine (its task); it must not be
// shared across tasks.
type TaskContext struct {
	cluster *Cluster
	stageID int
	task    int
	attempt int

	virtualNS       float64
	workingSetBytes int64

	pendingShuffle []pendingWrite
}

type pendingWrite struct {
	shuffleID int
	reduceID  int
	data      any
	records   int64
	bytes     int64
}

// Task returns the task's index within its stage.
func (tc *TaskContext) Task() int { return tc.task }

// Attempt returns the zero-based attempt number of this execution.
func (tc *TaskContext) Attempt() int { return tc.attempt }

// AddRecords counts records processed by the task (throughput metric).
func (tc *TaskContext) AddRecords(n int64) {
	tc.cluster.metrics.RecordsProcessed.Add(n)
}

// AddComparisons counts pairwise comparisons performed by the task; the
// experiment harness reads this for the paper's Figs. 7-8.
func (tc *TaskContext) AddComparisons(n int64) {
	tc.cluster.metrics.Comparisons.Add(n)
}

// AddVirtualNS adds simulated (non-CPU) time to the attempt, e.g. network
// waits. It does not consume real time.
func (tc *TaskContext) AddVirtualNS(ns float64) {
	if ns > 0 {
		tc.virtualNS += ns
	}
}

// SetWorkingSetBytes declares the task's peak in-memory working set. When it
// exceeds the executor memory budget the scheduler applies the spill penalty
// (and, if configured, a first-attempt timeout failure).
func (tc *TaskContext) SetWorkingSetBytes(n int64) {
	if n > tc.workingSetBytes {
		tc.workingSetBytes = n
	}
}

// WriteShuffle buffers one output bucket for the given shuffle and reduce
// partition. The write is committed when the attempt succeeds.
func (tc *TaskContext) WriteShuffle(shuffleID, reduceID int, data any, records, bytes int64) {
	tc.pendingShuffle = append(tc.pendingShuffle, pendingWrite{
		shuffleID: shuffleID,
		reduceID:  reduceID,
		data:      data,
		records:   records,
		bytes:     bytes,
	})
}

// FetchShuffle reads all committed map-output blocks for the given reduce
// partition and charges the simulated network transfer to this attempt.
func (tc *TaskContext) FetchShuffle(shuffleID, reduceID int) []any {
	blocks, bytes := tc.cluster.shuffles.fetch(shuffleID, reduceID)
	cfg := tc.cluster.cfg
	transferNS := float64(bytes)/(cfg.NetworkMBps*1e6)*1e9 +
		cfg.ShuffleLatencyMS*1e6*float64(len(blocks))
	tc.AddVirtualNS(transferNS)
	tc.cluster.metrics.ShuffleBytesRead.Add(bytes)
	return blocks
}

func (tc *TaskContext) commit() {
	for _, w := range tc.pendingShuffle {
		tc.cluster.shuffles.write(w.shuffleID, w.reduceID, w.data, w.bytes)
		tc.cluster.metrics.ShuffleBytesWritten.Add(w.bytes)
		tc.cluster.metrics.ShuffleRecordsWritten.Add(w.records)
	}
	tc.pendingShuffle = nil
}

func (tc *TaskContext) discard() {
	tc.pendingShuffle = nil
}
