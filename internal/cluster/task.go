package cluster

import (
	"context"
	"time"
)

// TaskContext is handed to every task attempt. It accumulates the attempt's
// simulated I/O time, bookkeeping counters, and buffered shuffle writes.
//
// All observable side effects of an attempt are commit-on-success, as in
// Spark: shuffle writes become visible to downstream stages, the published
// task result is surfaced, and metric deltas (records, comparisons, shuffle
// bytes read/written) are folded into the cluster-wide Metrics registry,
// only when the attempt succeeds AND wins the task's commit race. A failed,
// fail-injected, or speculation-losing attempt's buffered writes and counter
// deltas are discarded, which is what makes task retry and speculative
// duplicate attempts safe — and what keeps the experiment harness's
// comparison/shuffle counters identical between fault-free, fault-injected,
// and speculative runs of the same job.
//
// A TaskContext is used by a single goroutine (its attempt); it must not be
// shared across attempts. With speculation enabled, two attempts of the same
// task may run concurrently — each gets its own TaskContext, and closures
// that publish output must do so through the commit-gated channels
// (WriteShuffle, PublishResult, the metric counters) or their own
// synchronization.
type TaskContext struct {
	cluster     *Cluster
	ctx         context.Context
	stageID     int
	stageName   string
	task        int
	attempt     int
	speculative bool
	// executor is the live executor this attempt's chain was placed on;
	// committed shuffle blocks and cached partitions are hosted there and
	// die with it.
	executor int
	// recovery marks attempts of a patch-up stage regenerating lost
	// output. Their shuffle writes commit normally (the data must come
	// back) but their work-counter deltas are NOT folded into the metrics
	// registry: the regenerated output was already counted when it first
	// committed, and double-counting it would make recovered runs diverge
	// from the sequential oracle. Recovery cost is accounted separately
	// (RecomputedTasks/RecomputedStages and virtual time).
	recovery bool

	// Attempt-scoped virtual time. virtualNS is general simulated I/O
	// (broadcast reads, user-charged waits); shuffleWaitNS is the share
	// spent fetching shuffle blocks, tracked separately so StageStats can
	// report a compute vs. shuffle-wait breakdown. sleptNS is real
	// wall-clock time spent blocked in Delay, subtracted from the
	// attempt's measured compute time.
	virtualNS       float64
	shuffleWaitNS   float64
	sleptNS         float64
	workingSetBytes int64

	// scratch is the worker-owned reusable buffer bundle for this attempt.
	// In RealParallel mode the pool worker running the chain owns it for
	// the whole stage; elsewhere the chain checks one out per task. Either
	// way it is never shared between concurrently running attempts.
	scratch *WorkerScratch

	// pause/resume yield and re-acquire the attempt's real worker slot
	// around blocking sleeps: a task stalled in simulated delay burns no
	// CPU, so holding a RealParallelism token would starve other tasks —
	// and, on small hosts, the very completions the straggler monitor's
	// quantile gate waits for. Nil for attempts that hold no token
	// (speculative chains).
	pause  func()
	resume func()

	// Buffered metric deltas, folded into cluster.Metrics in commit().
	records          int64
	comparisons      int64
	shuffleBytesRead int64

	pendingShuffle []pendingWrite

	// result is the value buffered by PublishResult; published holds
	// whether it was set (so a typed nil still publishes).
	result    any
	published bool
}

type pendingWrite struct {
	shuffleID int
	reduceID  int
	mapTask   int
	seq       int
	data      any
	records   int64
	bytes     int64
}

// Task returns the task's index within its stage.
func (tc *TaskContext) Task() int { return tc.task }

// Attempt returns the zero-based attempt number of this execution within its
// chain (the primary and speculative chains number attempts independently).
func (tc *TaskContext) Attempt() int { return tc.attempt }

// Speculative reports whether this attempt belongs to a speculative
// duplicate chain launched by the straggler monitor.
func (tc *TaskContext) Speculative() bool { return tc.speculative }

// Executor returns the live executor this attempt runs on. Side effects the
// task hosts locally (shuffle map output, cached partitions) are lost if
// that executor later fails.
func (tc *TaskContext) Executor() int { return tc.executor }

// Scratch returns the attempt's worker-owned scratch buffers. Kernels use it
// for zero-alloc temporary storage: the buffers grow to each worker's
// high-water mark once and are reused by every later task on that worker.
// The scratch is exclusive to this attempt while it runs — concurrent tasks
// on other workers hold different instances — but its buffer contents are
// unspecified at attempt start (stale data from a previous task).
func (tc *TaskContext) Scratch() *WorkerScratch {
	if tc.scratch == nil {
		// Bare TaskContexts (tests, direct construction) still work; they
		// just allocate a private scratch on first use.
		tc.scratch = &WorkerScratch{}
	}
	return tc.scratch
}

// Context returns the attempt's context. It is cancelled when a rival
// attempt of the same task commits first (speculation's
// first-completion-wins), so long-running task closures can poll it to stop
// early. The attempt's buffered side effects are discarded either way.
func (tc *TaskContext) Context() context.Context {
	if tc.ctx == nil {
		return context.Background()
	}
	return tc.ctx
}

// Delay simulates a straggling attempt: it charges virtualNS of virtual time
// immediately (so the would-be cost stays accounted even if the attempt is
// later cancelled by a winning rival) and then blocks for up to d of real
// wall-clock time, returning early if the attempt is cancelled. The real
// block is excluded from the attempt's measured compute time.
func (tc *TaskContext) Delay(d time.Duration, virtualNS float64) {
	tc.AddVirtualNS(virtualNS)
	tc.sleep(d)
}

// sleep blocks for up to d, waking early on attempt cancellation, and
// records the slept time so it can be excluded from measured compute. The
// attempt's real worker slot is yielded for the duration of the block.
func (tc *TaskContext) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	start := time.Now()
	if tc.pause != nil {
		tc.pause()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-tc.Context().Done():
	}
	if tc.pause != nil {
		tc.resume()
	}
	// The re-acquire wait counts as slept, not compute: the task did no
	// work while queueing for a slot.
	tc.sleptNS += float64(time.Since(start).Nanoseconds())
}

// PublishResult buffers v as the attempt's task result. The winning
// attempt's value becomes the task's entry in the results returned by
// RunStageResults; losing and failed attempts' values are discarded.
func (tc *TaskContext) PublishResult(v any) {
	tc.result = v
	tc.published = true
}

// AddRecords counts records processed by the task (throughput metric). The
// count is buffered and committed only if the attempt succeeds.
func (tc *TaskContext) AddRecords(n int64) {
	tc.records += n
}

// AddComparisons counts pairwise comparisons performed by the task; the
// experiment harness reads this for the paper's Figs. 7-8. The count is
// buffered and committed only if the attempt succeeds.
func (tc *TaskContext) AddComparisons(n int64) {
	tc.comparisons += n
}

// AddVirtualNS adds simulated (non-CPU) time to the attempt, e.g. network
// waits. It does not consume real time.
func (tc *TaskContext) AddVirtualNS(ns float64) {
	if ns > 0 {
		tc.virtualNS += ns
	}
}

// SetWorkingSetBytes declares the task's peak in-memory working set. When it
// exceeds the executor memory budget the scheduler applies the spill penalty
// (and, if configured, a first-attempt timeout failure).
func (tc *TaskContext) SetWorkingSetBytes(n int64) {
	if n > tc.workingSetBytes {
		tc.workingSetBytes = n
	}
}

// WriteShuffle buffers one output bucket for the given shuffle and reduce
// partition. The write is committed when the attempt succeeds. Committed
// buckets are keyed by (map task, write sequence), so a duplicate commit of
// the same deterministic output — e.g. by a retried or speculative attempt —
// is idempotent: the bucket contents equal a single write.
func (tc *TaskContext) WriteShuffle(shuffleID, reduceID int, data any, records, bytes int64) {
	tc.WriteShuffleAs(shuffleID, reduceID, tc.task, data, records, bytes)
}

// WriteShuffleAs is WriteShuffle with an explicit map-task identity. A
// recovery task regenerating executor-lost output runs under its own
// patch-up stage's task numbering but must commit blocks under the original
// map partition's (map task, seq) keys, or the recomputed blocks would not
// splice back into the reduce-side sort order the first run established.
func (tc *TaskContext) WriteShuffleAs(shuffleID, reduceID, mapTask int, data any, records, bytes int64) {
	tc.pendingShuffle = append(tc.pendingShuffle, pendingWrite{
		shuffleID: shuffleID,
		reduceID:  reduceID,
		mapTask:   mapTask,
		seq:       len(tc.pendingShuffle),
		data:      data,
		records:   records,
		bytes:     bytes,
	})
}

// FetchShuffle reads all committed map-output blocks for the given reduce
// partition and charges the simulated network transfer to this attempt as
// shuffle-wait time. The bytes-read metric is buffered and committed only if
// the attempt succeeds.
//
// When any map output the partition depends on was lost with its executor,
// FetchShuffle returns a *FetchFailedError. The task must propagate it: the
// scheduler recognizes the error, recomputes the lost map partitions from
// lineage, and resubmits the stage — retrying the fetch locally cannot bring
// the blocks back.
func (tc *TaskContext) FetchShuffle(shuffleID, reduceID int) ([]any, error) {
	blocks, bytes, spillNS, ff, err := tc.cluster.shuffles.fetch(shuffleID, reduceID)
	if ff != nil {
		return nil, ff
	}
	if err != nil {
		return nil, err
	}
	cfg := tc.cluster.cfg
	transferNS := float64(bytes)/(cfg.NetworkMBps*1e6)*1e9 +
		cfg.ShuffleLatencyMS*1e6*float64(len(blocks))
	// Spilled blocks cost their disk read-back on top of the network
	// transfer; both are I/O wait from the reduce attempt's perspective.
	transferNS += spillNS
	if transferNS > 0 {
		tc.shuffleWaitNS += transferNS
	}
	tc.shuffleBytesRead += bytes
	return blocks, nil
}

// commit publishes the attempt's buffered side effects: shuffle output
// becomes fetchable and metric deltas are folded into the cluster registry.
// It is only ever called for the single attempt that won the task's commit
// arbitration, so exactly one attempt per task publishes.
func (tc *TaskContext) commit() {
	m := tc.cluster.metrics
	for _, w := range tc.pendingShuffle {
		tc.cluster.shuffles.write(w.shuffleID, w.reduceID, w.mapTask, w.seq, tc.executor, w.data, w.records, w.bytes)
		if !tc.recovery {
			m.ShuffleBytesWritten.Add(w.bytes)
			m.ShuffleRecordsWritten.Add(w.records)
		}
	}
	tc.pendingShuffle = nil
	if tc.recovery {
		// Recomputed work re-creates already-counted output; folding its
		// deltas in again would break the work-counter invariance against
		// the sequential oracle (see the recovery field).
		tc.records, tc.comparisons, tc.shuffleBytesRead = 0, 0, 0
		return
	}
	if tc.records != 0 {
		m.RecordsProcessed.Add(tc.records)
	}
	if tc.comparisons != 0 {
		m.Comparisons.Add(tc.comparisons)
	}
	if tc.shuffleBytesRead != 0 {
		m.ShuffleBytesRead.Add(tc.shuffleBytesRead)
	}
	tc.records, tc.comparisons, tc.shuffleBytesRead = 0, 0, 0
}

// discard drops the attempt's buffered side effects (failed attempt).
func (tc *TaskContext) discard() {
	tc.pendingShuffle = nil
	tc.records, tc.comparisons, tc.shuffleBytesRead = 0, 0, 0
}
