package cluster

// TaskContext is handed to every task attempt. It accumulates the attempt's
// simulated I/O time, bookkeeping counters, and buffered shuffle writes.
//
// All observable side effects of an attempt are commit-on-success, as in
// Spark: shuffle writes become visible to downstream stages, and metric
// deltas (records, comparisons, shuffle bytes read/written) are folded into
// the cluster-wide Metrics registry, only when the attempt succeeds. A
// failed or fail-injected attempt's buffered writes and counter deltas are
// discarded, which is what makes task retry safe — and what keeps the
// experiment harness's comparison/shuffle counters identical between
// fault-free and fault-injected runs of the same job.
//
// A TaskContext is used by a single goroutine (its task); it must not be
// shared across tasks.
type TaskContext struct {
	cluster   *Cluster
	stageID   int
	stageName string
	task      int
	attempt   int

	// Attempt-scoped virtual time. virtualNS is general simulated I/O
	// (broadcast reads, user-charged waits); shuffleWaitNS is the share
	// spent fetching shuffle blocks, tracked separately so StageStats can
	// report a compute vs. shuffle-wait breakdown.
	virtualNS       float64
	shuffleWaitNS   float64
	workingSetBytes int64

	// Buffered metric deltas, folded into cluster.Metrics in commit().
	records          int64
	comparisons      int64
	shuffleBytesRead int64

	pendingShuffle []pendingWrite
}

type pendingWrite struct {
	shuffleID int
	reduceID  int
	data      any
	records   int64
	bytes     int64
}

// Task returns the task's index within its stage.
func (tc *TaskContext) Task() int { return tc.task }

// Attempt returns the zero-based attempt number of this execution.
func (tc *TaskContext) Attempt() int { return tc.attempt }

// AddRecords counts records processed by the task (throughput metric). The
// count is buffered and committed only if the attempt succeeds.
func (tc *TaskContext) AddRecords(n int64) {
	tc.records += n
}

// AddComparisons counts pairwise comparisons performed by the task; the
// experiment harness reads this for the paper's Figs. 7-8. The count is
// buffered and committed only if the attempt succeeds.
func (tc *TaskContext) AddComparisons(n int64) {
	tc.comparisons += n
}

// AddVirtualNS adds simulated (non-CPU) time to the attempt, e.g. network
// waits. It does not consume real time.
func (tc *TaskContext) AddVirtualNS(ns float64) {
	if ns > 0 {
		tc.virtualNS += ns
	}
}

// SetWorkingSetBytes declares the task's peak in-memory working set. When it
// exceeds the executor memory budget the scheduler applies the spill penalty
// (and, if configured, a first-attempt timeout failure).
func (tc *TaskContext) SetWorkingSetBytes(n int64) {
	if n > tc.workingSetBytes {
		tc.workingSetBytes = n
	}
}

// WriteShuffle buffers one output bucket for the given shuffle and reduce
// partition. The write is committed when the attempt succeeds.
func (tc *TaskContext) WriteShuffle(shuffleID, reduceID int, data any, records, bytes int64) {
	tc.pendingShuffle = append(tc.pendingShuffle, pendingWrite{
		shuffleID: shuffleID,
		reduceID:  reduceID,
		data:      data,
		records:   records,
		bytes:     bytes,
	})
}

// FetchShuffle reads all committed map-output blocks for the given reduce
// partition and charges the simulated network transfer to this attempt as
// shuffle-wait time. The bytes-read metric is buffered and committed only if
// the attempt succeeds.
func (tc *TaskContext) FetchShuffle(shuffleID, reduceID int) []any {
	blocks, bytes := tc.cluster.shuffles.fetch(shuffleID, reduceID)
	cfg := tc.cluster.cfg
	transferNS := float64(bytes)/(cfg.NetworkMBps*1e6)*1e9 +
		cfg.ShuffleLatencyMS*1e6*float64(len(blocks))
	if transferNS > 0 {
		tc.shuffleWaitNS += transferNS
	}
	tc.shuffleBytesRead += bytes
	return blocks
}

// commit publishes the attempt's buffered side effects: shuffle output
// becomes fetchable and metric deltas are folded into the cluster registry.
func (tc *TaskContext) commit() {
	m := tc.cluster.metrics
	for _, w := range tc.pendingShuffle {
		tc.cluster.shuffles.write(w.shuffleID, w.reduceID, w.data, w.bytes)
		m.ShuffleBytesWritten.Add(w.bytes)
		m.ShuffleRecordsWritten.Add(w.records)
	}
	tc.pendingShuffle = nil
	if tc.records != 0 {
		m.RecordsProcessed.Add(tc.records)
	}
	if tc.comparisons != 0 {
		m.Comparisons.Add(tc.comparisons)
	}
	if tc.shuffleBytesRead != 0 {
		m.ShuffleBytesRead.Add(tc.shuffleBytesRead)
	}
	tc.records, tc.comparisons, tc.shuffleBytesRead = 0, 0, 0
}

// discard drops the attempt's buffered side effects (failed attempt).
func (tc *TaskContext) discard() {
	tc.pendingShuffle = nil
	tc.records, tc.comparisons, tc.shuffleBytesRead = 0, 0, 0
}
