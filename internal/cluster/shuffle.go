package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ShuffleService stores committed map-side shuffle output per
// (shuffle, reduce partition). Like Spark's shuffle files, output is retained
// until the shuffle is unregistered, so downstream recomputation (e.g. after
// a cache eviction) can re-read it without re-running the map stage.
//
// Bucket commits are idempotent: blocks are keyed by (map task, write
// sequence), so if two attempts of the same map task ever both commit —
// retried attempts, or speculative duplicates racing through the commit
// window — the bucket contents equal those of a single write. Fetches return
// blocks sorted by that key, which makes reduce-side input order (and hence
// downstream partition contents) deterministic regardless of the real-time
// order in which map tasks committed.
//
// Blocks are host-local: every committed block records the executor that
// produced it, and losing an executor invalidates exactly its blocks. A
// reduce-side fetch that touches a lost map output fails with
// *FetchFailedError naming the missing map tasks, and the stage scheduler
// repairs the shuffle through the recompute callback the producing RDD
// registered (SetRecompute) before resubmitting the reduce stage — Spark's
// MapOutputTracker + lineage resubmission protocol.
//
// # Memory budgets
//
// With Config.SpillToDisk set and a codec registered (SetCodec), each
// executor's committed shuffle buffers are held to its memory budget: a
// commit that would push the producing executor over the budget spills the
// incoming block to that executor's local disk (framed, compressed, charged
// at SpillMBps) instead of keeping it resident. Fetches read spilled blocks
// back transparently, returning the extra virtual disk time for the reduce
// attempt to charge. Spilling is a pure storage decision: fetched contents,
// fetch ordering, and the committed byte/record counters are identical to an
// unbounded run — only SpillEvents/SpilledBytes and the virtual clock see it.
type ShuffleService struct {
	cluster *Cluster

	mu       sync.Mutex
	nextID   int
	shuffles map[int]*shuffleState
	// residentBytes tracks each executor's in-memory committed shuffle
	// bytes across all registered shuffles, the quantity the budget bounds.
	residentBytes map[int]int64
}

// shuffleState is one registered shuffle's block and availability tracking.
type shuffleState struct {
	done bool
	// buckets[reduceID] maps each (map task, seq) key to its committed
	// block for that reduce partition.
	buckets map[int]map[blockKey]*shuffleBlock
	// hosts records which executor hosts each map task's committed output.
	hosts map[int]int
	// lost maps each map task whose output was dropped by an executor loss
	// to the executor that died holding it; cleared when the recomputed
	// output commits.
	lost map[int]int
	// lostByPart[reduceID] holds the subset of lost map tasks that had
	// written a block for that reduce partition, so fetches fail precisely
	// for the partitions that actually lost data.
	lostByPart map[int]map[int]int
	// recompute re-runs the given lost map partitions from lineage; the
	// producing layer (internal/rdd, or a raw-cluster caller) registers it
	// alongside the map stage.
	recompute func(lost []int) error
	// codec, when set, lets this shuffle's blocks spill under memory
	// pressure; without one every block stays resident (pre-budget
	// behaviour).
	codec SpillCodec
}

// blockKey identifies one map-output bucket within a reduce partition.
type blockKey struct {
	mapTask int
	seq     int
}

type shuffleBlock struct {
	data     any
	bytes    int64
	records  int64
	executor int
	// spill is set while the block lives on its executor's disk (data is
	// nil then).
	spill *SpillRef
}

// ErrFetchFailed is the sentinel under every *FetchFailedError, so callers
// can errors.Is a wrapped task error to detect shuffle-fetch failures.
var ErrFetchFailed = errors.New("cluster: shuffle fetch failed")

// FetchFailedError reports that a reduce-side shuffle read touched map
// outputs that were lost with their executor. MapTasks lists the missing map
// partitions for the fetched reduce partition; Executors the dead hosts that
// held them (both sorted ascending).
type FetchFailedError struct {
	ShuffleID int
	Partition int
	MapTasks  []int
	Executors []int
}

func (e *FetchFailedError) Error() string {
	return fmt.Sprintf("shuffle %d partition %d: map outputs %v lost with executors %v",
		e.ShuffleID, e.Partition, e.MapTasks, e.Executors)
}

func (e *FetchFailedError) Unwrap() error { return ErrFetchFailed }

func newShuffleService(c *Cluster) *ShuffleService {
	return &ShuffleService{
		cluster:       c,
		shuffles:      make(map[int]*shuffleState),
		residentBytes: make(map[int]int64),
	}
}

func newShuffleState() *shuffleState {
	return &shuffleState{
		buckets:    make(map[int]map[blockKey]*shuffleBlock),
		hosts:      make(map[int]int),
		lost:       make(map[int]int),
		lostByPart: make(map[int]map[int]int),
	}
}

// Register allocates a new shuffle ID.
func (s *ShuffleService) Register() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	s.shuffles[s.nextID] = newShuffleState()
	return s.nextID
}

// SetCodec registers the spill codec for a shuffle's blocks. The producing
// layer calls it alongside Register; shuffles without a codec never spill.
func (s *ShuffleService) SetCodec(id int, codec SpillCodec) {
	s.mu.Lock()
	if st, ok := s.shuffles[id]; ok {
		st.codec = codec
	}
	s.mu.Unlock()
}

// SetRecompute registers the lineage callback that regenerates the given map
// tasks' output after an executor loss. The scheduler invokes it from the
// stage-resubmission path; without one, a fetch failure on this shuffle is
// unrecoverable and aborts the reduce stage.
func (s *ShuffleService) SetRecompute(id int, fn func(lost []int) error) {
	s.mu.Lock()
	if st, ok := s.shuffles[id]; ok {
		st.recompute = fn
	}
	s.mu.Unlock()
}

// recomputeFor returns the shuffle's registered recompute callback, nil when
// absent.
func (s *ShuffleService) recomputeFor(id int) func(lost []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.shuffles[id]; ok {
		return st.recompute
	}
	return nil
}

// MarkDone records that the shuffle's map stage completed.
func (s *ShuffleService) MarkDone(id int) {
	s.mu.Lock()
	if st, ok := s.shuffles[id]; ok {
		st.done = true
	}
	s.mu.Unlock()
}

// Done reports whether the shuffle's map stage completed.
func (s *ShuffleService) Done(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.shuffles[id]
	return ok && st.done
}

// Unregister drops all blocks and tracking state of a shuffle, releasing its
// resident-byte shares and spilled files.
func (s *ShuffleService) Unregister(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.shuffles[id]
	if !ok {
		return
	}
	for _, bucket := range st.buckets {
		for _, b := range bucket {
			s.releaseLocked(b)
		}
	}
	delete(s.shuffles, id)
}

// Mark returns a watermark covering every shuffle registered so far. A later
// ReleaseSince(mark) drops exactly the shuffles registered after this call.
func (s *ShuffleService) Mark() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextID
}

// ReleaseSince unregisters every shuffle registered after the watermark,
// returning their resident bytes and spilled files. Map outputs are only
// read while the job that produced them runs, so a long-lived driver (the
// online serving layer) releases each job's shuffles once its results are
// collected instead of retaining them for the cluster's lifetime.
func (s *ShuffleService) ReleaseSince(mark int) {
	s.mu.Lock()
	var ids []int
	for id := range s.shuffles {
		if id > mark {
			ids = append(ids, id)
		}
	}
	s.mu.Unlock()
	for _, id := range ids {
		s.Unregister(id)
	}
}

// Registered returns the number of currently registered shuffles, for tests
// and diagnostics.
func (s *ShuffleService) Registered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shuffles)
}

// releaseLocked returns one block's storage: its resident-byte share or its
// spilled file. Callers hold s.mu.
func (s *ShuffleService) releaseLocked(b *shuffleBlock) {
	if b.spill != nil {
		s.cluster.spill.Free(*b.spill)
		return
	}
	s.residentBytes[b.executor] -= b.bytes
}

// LostMapTasks returns the map tasks whose output is currently lost, sorted
// ascending. The resubmission path recomputes exactly this set.
func (s *ShuffleService) LostMapTasks(id int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.shuffles[id]
	if !ok || len(st.lost) == 0 {
		return nil
	}
	out := make([]int, 0, len(st.lost))
	for m := range st.lost {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

func (s *ShuffleService) write(shuffleID, reduceID, mapTask, seq, executor int, data any, records, bytes int64) {
	s.mu.Lock()
	st, ok := s.shuffles[shuffleID]
	if !ok {
		st = newShuffleState()
		s.shuffles[shuffleID] = st
	}
	bucket, ok := st.buckets[reduceID]
	if !ok {
		bucket = make(map[blockKey]*shuffleBlock)
		st.buckets[reduceID] = bucket
	}
	key := blockKey{mapTask: mapTask, seq: seq}
	// Last write wins; attempts of a deterministic task write identical
	// data, so a duplicate commit leaves the bucket unchanged.
	if old, ok := bucket[key]; ok {
		s.releaseLocked(old)
	}
	blk := &shuffleBlock{data: data, bytes: bytes, records: records, executor: executor}

	// Budget check: a commit that would push the producing executor's
	// resident shuffle buffers over its memory budget spills the incoming
	// block to local disk instead (Spark's shuffle spill, at commit
	// granularity). Only shuffles with a registered codec can spill.
	var spilledRef *SpillRef
	if s.cluster.cfg.SpillToDisk && st.codec != nil &&
		s.residentBytes[executor]+bytes > s.cluster.cfg.executorMemoryBytes() {
		if raw, err := st.codec.Encode(data); err == nil {
			if ref, err := s.cluster.spill.Put(raw, executor); err == nil {
				blk.data = nil
				blk.spill = &ref
				spilledRef = &ref
			}
		}
		// Encoding or disk trouble: keep the block resident; correctness
		// beats the budget.
	}
	if blk.spill == nil {
		s.residentBytes[executor] += bytes
	}
	bucket[key] = blk
	st.hosts[mapTask] = executor
	delete(st.lost, mapTask)
	delete(st.lostByPart[reduceID], mapTask)
	s.mu.Unlock()

	// Account the spill outside s.mu: recordSpill takes the cluster clock
	// and tracer locks.
	if spilledRef != nil {
		s.cluster.recordSpill(*spilledRef,
			fmt.Sprintf("shuffle %d reduce %d map %d/%d", shuffleID, reduceID, mapTask, seq))
	}
}

// invalidateExecutor drops every committed block hosted by executor e —
// resident and spilled alike, spilled blocks living on the dead host's local
// disk — and marks the affected map tasks lost, returning how many map
// outputs disappeared across all registered shuffles.
func (s *ShuffleService) invalidateExecutor(e int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, st := range s.shuffles {
		for m, host := range st.hosts {
			if host != e {
				continue
			}
			delete(st.hosts, m)
			st.lost[m] = e
			n++
			for rid, bucket := range st.buckets {
				for k, b := range bucket {
					if k.mapTask == m {
						s.releaseLocked(b)
						delete(bucket, k)
						lp, ok := st.lostByPart[rid]
						if !ok {
							lp = make(map[int]int)
							st.lostByPart[rid] = lp
						}
						lp[m] = e
					}
				}
			}
		}
	}
	return n
}

// fetch returns the reduce partition's committed blocks sorted by
// (map task, seq), the raw bytes moved (the network charge, identical
// whether blocks were resident or spilled), and the virtual disk time spent
// reading spilled blocks back. It returns a *FetchFailedError when any map
// output the partition depends on was lost with its executor, and a hard
// error when a spilled block cannot be decoded.
func (s *ShuffleService) fetch(shuffleID, reduceID int) ([]any, int64, float64, *FetchFailedError, error) {
	s.mu.Lock()
	st, ok := s.shuffles[shuffleID]
	if !ok {
		s.mu.Unlock()
		return nil, 0, 0, nil, nil
	}
	if lp := st.lostByPart[reduceID]; len(lp) > 0 {
		ff := &FetchFailedError{ShuffleID: shuffleID, Partition: reduceID}
		seen := make(map[int]bool)
		for m, e := range lp {
			ff.MapTasks = append(ff.MapTasks, m)
			if !seen[e] {
				seen[e] = true
				ff.Executors = append(ff.Executors, e)
			}
		}
		sort.Ints(ff.MapTasks)
		sort.Ints(ff.Executors)
		s.mu.Unlock()
		return nil, 0, 0, ff, nil
	}
	bucket := st.buckets[reduceID]
	keys := make([]blockKey, 0, len(bucket))
	for k := range bucket {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].mapTask != keys[j].mapTask {
			return keys[i].mapTask < keys[j].mapTask
		}
		return keys[i].seq < keys[j].seq
	})
	out := make([]any, len(keys))
	var bytes int64
	var spilledIdx []int
	var spilledRefs []SpillRef
	codec := st.codec
	for i, k := range keys {
		b := bucket[k]
		bytes += b.bytes
		if b.spill != nil {
			// Defer the disk reads until s.mu is released.
			spilledIdx = append(spilledIdx, i)
			spilledRefs = append(spilledRefs, *b.spill)
			continue
		}
		out[i] = b.data
	}
	s.mu.Unlock()

	var spillNS float64
	for j, i := range spilledIdx {
		ref := spilledRefs[j]
		raw, err := s.cluster.spill.Get(ref)
		if err != nil {
			return nil, 0, 0, nil, fmt.Errorf("shuffle %d partition %d: %w", shuffleID, reduceID, err)
		}
		data, err := codec.Decode(raw)
		if err != nil {
			return nil, 0, 0, nil, fmt.Errorf("shuffle %d partition %d: decoding spilled block: %w",
				shuffleID, reduceID, err)
		}
		out[i] = data
		spillNS += s.cluster.recordSpillLoad(ref,
			fmt.Sprintf("shuffle %d reduce %d", shuffleID, reduceID))
	}
	return out, bytes, spillNS, nil, nil
}

// partitionSizes returns each reduce partition's committed raw bytes and
// records (resident and spilled alike) for a shuffle with numPartitions
// reduce partitions — the byte accounting adaptive coalescing plans from.
func (s *ShuffleService) partitionSizes(id, numPartitions int) (bytes, records []int64) {
	bytes = make([]int64, numPartitions)
	records = make([]int64, numPartitions)
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.shuffles[id]
	if !ok {
		return bytes, records
	}
	for rid, bucket := range st.buckets {
		if rid < 0 || rid >= numPartitions {
			continue
		}
		for _, b := range bucket {
			bytes[rid] += b.bytes
			records[rid] += b.records
		}
	}
	return bytes, records
}

// ResidentShuffleBytes returns executor e's in-memory committed shuffle
// bytes (the quantity the memory budget bounds), for tests and diagnostics.
func (s *ShuffleService) ResidentShuffleBytes(e int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.residentBytes[e]
}

// Shuffles exposes the shuffle service to the RDD layer.
func (c *Cluster) Shuffles() *ShuffleService { return c.shuffles }
