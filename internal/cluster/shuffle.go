package cluster

import "sync"

// ShuffleService stores committed map-side shuffle output per
// (shuffle, reduce partition). Like Spark's shuffle files, output is retained
// until the shuffle is unregistered, so downstream recomputation (e.g. after
// a cache eviction) can re-read it without re-running the map stage.
type ShuffleService struct {
	mu     sync.Mutex
	nextID int
	// blocks[shuffleID][reduceID] is the list of committed map-output
	// buckets for that reduce partition.
	blocks map[int]map[int][]shuffleBlock
	done   map[int]bool
}

type shuffleBlock struct {
	data  any
	bytes int64
}

func newShuffleService() *ShuffleService {
	return &ShuffleService{
		blocks: make(map[int]map[int][]shuffleBlock),
		done:   make(map[int]bool),
	}
}

// Register allocates a new shuffle ID.
func (s *ShuffleService) Register() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	s.blocks[s.nextID] = make(map[int][]shuffleBlock)
	return s.nextID
}

// MarkDone records that the shuffle's map stage completed.
func (s *ShuffleService) MarkDone(id int) {
	s.mu.Lock()
	s.done[id] = true
	s.mu.Unlock()
}

// Done reports whether the shuffle's map stage completed.
func (s *ShuffleService) Done(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done[id]
}

// Unregister drops all blocks of a shuffle.
func (s *ShuffleService) Unregister(id int) {
	s.mu.Lock()
	delete(s.blocks, id)
	delete(s.done, id)
	s.mu.Unlock()
}

func (s *ShuffleService) write(shuffleID, reduceID int, data any, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.blocks[shuffleID]
	if !ok {
		m = make(map[int][]shuffleBlock)
		s.blocks[shuffleID] = m
	}
	m[reduceID] = append(m[reduceID], shuffleBlock{data: data, bytes: bytes})
}

func (s *ShuffleService) fetch(shuffleID, reduceID int) ([]any, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bl := s.blocks[shuffleID][reduceID]
	out := make([]any, len(bl))
	var bytes int64
	for i, b := range bl {
		out[i] = b.data
		bytes += b.bytes
	}
	return out, bytes
}

// Shuffles exposes the shuffle service to the RDD layer.
func (c *Cluster) Shuffles() *ShuffleService { return c.shuffles }
