package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ShuffleService stores committed map-side shuffle output per
// (shuffle, reduce partition). Like Spark's shuffle files, output is retained
// until the shuffle is unregistered, so downstream recomputation (e.g. after
// a cache eviction) can re-read it without re-running the map stage.
//
// Bucket commits are idempotent: blocks are keyed by (map task, write
// sequence), so if two attempts of the same map task ever both commit —
// retried attempts, or speculative duplicates racing through the commit
// window — the bucket contents equal those of a single write. Fetches return
// blocks sorted by that key, which makes reduce-side input order (and hence
// downstream partition contents) deterministic regardless of the real-time
// order in which map tasks committed.
//
// Unlike the pre-recovery service, blocks are host-local: every committed
// block records the executor that produced it, and losing an executor
// invalidates exactly its blocks. A reduce-side fetch that touches a lost
// map output fails with *FetchFailedError naming the missing map tasks, and
// the stage scheduler repairs the shuffle through the recompute callback the
// producing RDD registered (SetRecompute) before resubmitting the reduce
// stage — Spark's MapOutputTracker + lineage resubmission protocol.
type ShuffleService struct {
	mu       sync.Mutex
	nextID   int
	shuffles map[int]*shuffleState
}

// shuffleState is one registered shuffle's block and availability tracking.
type shuffleState struct {
	done bool
	// buckets[reduceID] maps each (map task, seq) key to its committed
	// block for that reduce partition.
	buckets map[int]map[blockKey]shuffleBlock
	// hosts records which executor hosts each map task's committed output.
	hosts map[int]int
	// lost maps each map task whose output was dropped by an executor loss
	// to the executor that died holding it; cleared when the recomputed
	// output commits.
	lost map[int]int
	// lostByPart[reduceID] holds the subset of lost map tasks that had
	// written a block for that reduce partition, so fetches fail precisely
	// for the partitions that actually lost data.
	lostByPart map[int]map[int]int
	// recompute re-runs the given lost map partitions from lineage; the
	// producing layer (internal/rdd, or a raw-cluster caller) registers it
	// alongside the map stage.
	recompute func(lost []int) error
}

// blockKey identifies one map-output bucket within a reduce partition.
type blockKey struct {
	mapTask int
	seq     int
}

type shuffleBlock struct {
	data     any
	bytes    int64
	executor int
}

// ErrFetchFailed is the sentinel under every *FetchFailedError, so callers
// can errors.Is a wrapped task error to detect shuffle-fetch failures.
var ErrFetchFailed = errors.New("cluster: shuffle fetch failed")

// FetchFailedError reports that a reduce-side shuffle read touched map
// outputs that were lost with their executor. MapTasks lists the missing map
// partitions for the fetched reduce partition; Executors the dead hosts that
// held them (both sorted ascending).
type FetchFailedError struct {
	ShuffleID int
	Partition int
	MapTasks  []int
	Executors []int
}

func (e *FetchFailedError) Error() string {
	return fmt.Sprintf("shuffle %d partition %d: map outputs %v lost with executors %v",
		e.ShuffleID, e.Partition, e.MapTasks, e.Executors)
}

func (e *FetchFailedError) Unwrap() error { return ErrFetchFailed }

func newShuffleService() *ShuffleService {
	return &ShuffleService{shuffles: make(map[int]*shuffleState)}
}

func newShuffleState() *shuffleState {
	return &shuffleState{
		buckets:    make(map[int]map[blockKey]shuffleBlock),
		hosts:      make(map[int]int),
		lost:       make(map[int]int),
		lostByPart: make(map[int]map[int]int),
	}
}

// Register allocates a new shuffle ID.
func (s *ShuffleService) Register() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	s.shuffles[s.nextID] = newShuffleState()
	return s.nextID
}

// SetRecompute registers the lineage callback that regenerates the given map
// tasks' output after an executor loss. The scheduler invokes it from the
// stage-resubmission path; without one, a fetch failure on this shuffle is
// unrecoverable and aborts the reduce stage.
func (s *ShuffleService) SetRecompute(id int, fn func(lost []int) error) {
	s.mu.Lock()
	if st, ok := s.shuffles[id]; ok {
		st.recompute = fn
	}
	s.mu.Unlock()
}

// recomputeFor returns the shuffle's registered recompute callback, nil when
// absent.
func (s *ShuffleService) recomputeFor(id int) func(lost []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.shuffles[id]; ok {
		return st.recompute
	}
	return nil
}

// MarkDone records that the shuffle's map stage completed.
func (s *ShuffleService) MarkDone(id int) {
	s.mu.Lock()
	if st, ok := s.shuffles[id]; ok {
		st.done = true
	}
	s.mu.Unlock()
}

// Done reports whether the shuffle's map stage completed.
func (s *ShuffleService) Done(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.shuffles[id]
	return ok && st.done
}

// Unregister drops all blocks and tracking state of a shuffle.
func (s *ShuffleService) Unregister(id int) {
	s.mu.Lock()
	delete(s.shuffles, id)
	s.mu.Unlock()
}

// LostMapTasks returns the map tasks whose output is currently lost, sorted
// ascending. The resubmission path recomputes exactly this set.
func (s *ShuffleService) LostMapTasks(id int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.shuffles[id]
	if !ok || len(st.lost) == 0 {
		return nil
	}
	out := make([]int, 0, len(st.lost))
	for m := range st.lost {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

func (s *ShuffleService) write(shuffleID, reduceID, mapTask, seq, executor int, data any, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.shuffles[shuffleID]
	if !ok {
		st = newShuffleState()
		s.shuffles[shuffleID] = st
	}
	bucket, ok := st.buckets[reduceID]
	if !ok {
		bucket = make(map[blockKey]shuffleBlock)
		st.buckets[reduceID] = bucket
	}
	// Last write wins; attempts of a deterministic task write identical
	// data, so a duplicate commit leaves the bucket unchanged.
	bucket[blockKey{mapTask: mapTask, seq: seq}] = shuffleBlock{data: data, bytes: bytes, executor: executor}
	st.hosts[mapTask] = executor
	delete(st.lost, mapTask)
	delete(st.lostByPart[reduceID], mapTask)
}

// invalidateExecutor drops every committed block hosted by executor e and
// marks the affected map tasks lost, returning how many map outputs
// disappeared across all registered shuffles.
func (s *ShuffleService) invalidateExecutor(e int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, st := range s.shuffles {
		for m, host := range st.hosts {
			if host != e {
				continue
			}
			delete(st.hosts, m)
			st.lost[m] = e
			n++
			for rid, bucket := range st.buckets {
				for k := range bucket {
					if k.mapTask == m {
						delete(bucket, k)
						lp, ok := st.lostByPart[rid]
						if !ok {
							lp = make(map[int]int)
							st.lostByPart[rid] = lp
						}
						lp[m] = e
					}
				}
			}
		}
	}
	return n
}

// fetch returns the reduce partition's committed blocks sorted by
// (map task, seq), or a *FetchFailedError when any map output the partition
// depends on was lost with its executor.
func (s *ShuffleService) fetch(shuffleID, reduceID int) ([]any, int64, *FetchFailedError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.shuffles[shuffleID]
	if !ok {
		return nil, 0, nil
	}
	if lp := st.lostByPart[reduceID]; len(lp) > 0 {
		ff := &FetchFailedError{ShuffleID: shuffleID, Partition: reduceID}
		seen := make(map[int]bool)
		for m, e := range lp {
			ff.MapTasks = append(ff.MapTasks, m)
			if !seen[e] {
				seen[e] = true
				ff.Executors = append(ff.Executors, e)
			}
		}
		sort.Ints(ff.MapTasks)
		sort.Ints(ff.Executors)
		return nil, 0, ff
	}
	bucket := st.buckets[reduceID]
	keys := make([]blockKey, 0, len(bucket))
	for k := range bucket {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].mapTask != keys[j].mapTask {
			return keys[i].mapTask < keys[j].mapTask
		}
		return keys[i].seq < keys[j].seq
	})
	out := make([]any, len(keys))
	var bytes int64
	for i, k := range keys {
		b := bucket[k]
		out[i] = b.data
		bytes += b.bytes
	}
	return out, bytes, nil
}

// Shuffles exposes the shuffle service to the RDD layer.
func (c *Cluster) Shuffles() *ShuffleService { return c.shuffles }
