package cluster

import (
	"sort"
	"sync"
)

// ShuffleService stores committed map-side shuffle output per
// (shuffle, reduce partition). Like Spark's shuffle files, output is retained
// until the shuffle is unregistered, so downstream recomputation (e.g. after
// a cache eviction) can re-read it without re-running the map stage.
//
// Bucket commits are idempotent: blocks are keyed by (map task, write
// sequence), so if two attempts of the same map task ever both commit —
// retried attempts, or speculative duplicates racing through the commit
// window — the bucket contents equal those of a single write. Fetches return
// blocks sorted by that key, which makes reduce-side input order (and hence
// downstream partition contents) deterministic regardless of the real-time
// order in which map tasks committed.
type ShuffleService struct {
	mu     sync.Mutex
	nextID int
	// blocks[shuffleID][reduceID] maps each (map task, seq) key to its
	// committed bucket for that reduce partition.
	blocks map[int]map[int]map[blockKey]shuffleBlock
	done   map[int]bool
}

// blockKey identifies one map-output bucket within a reduce partition.
type blockKey struct {
	mapTask int
	seq     int
}

type shuffleBlock struct {
	data  any
	bytes int64
}

func newShuffleService() *ShuffleService {
	return &ShuffleService{
		blocks: make(map[int]map[int]map[blockKey]shuffleBlock),
		done:   make(map[int]bool),
	}
}

// Register allocates a new shuffle ID.
func (s *ShuffleService) Register() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	s.blocks[s.nextID] = make(map[int]map[blockKey]shuffleBlock)
	return s.nextID
}

// MarkDone records that the shuffle's map stage completed.
func (s *ShuffleService) MarkDone(id int) {
	s.mu.Lock()
	s.done[id] = true
	s.mu.Unlock()
}

// Done reports whether the shuffle's map stage completed.
func (s *ShuffleService) Done(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done[id]
}

// Unregister drops all blocks of a shuffle.
func (s *ShuffleService) Unregister(id int) {
	s.mu.Lock()
	delete(s.blocks, id)
	delete(s.done, id)
	s.mu.Unlock()
}

func (s *ShuffleService) write(shuffleID, reduceID, mapTask, seq int, data any, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.blocks[shuffleID]
	if !ok {
		m = make(map[int]map[blockKey]shuffleBlock)
		s.blocks[shuffleID] = m
	}
	bucket, ok := m[reduceID]
	if !ok {
		bucket = make(map[blockKey]shuffleBlock)
		m[reduceID] = bucket
	}
	// Last write wins; attempts of a deterministic task write identical
	// data, so a duplicate commit leaves the bucket unchanged.
	bucket[blockKey{mapTask: mapTask, seq: seq}] = shuffleBlock{data: data, bytes: bytes}
}

func (s *ShuffleService) fetch(shuffleID, reduceID int) ([]any, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bucket := s.blocks[shuffleID][reduceID]
	keys := make([]blockKey, 0, len(bucket))
	for k := range bucket {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].mapTask != keys[j].mapTask {
			return keys[i].mapTask < keys[j].mapTask
		}
		return keys[i].seq < keys[j].seq
	})
	out := make([]any, len(keys))
	var bytes int64
	for i, k := range keys {
		b := bucket[k]
		out[i] = b.data
		bytes += b.bytes
	}
	return out, bytes
}

// Shuffles exposes the shuffle service to the RDD layer.
func (c *Cluster) Shuffles() *ShuffleService { return c.shuffles }
