package cluster

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSpillCodec fuzzes the spill frame codec. Invariants:
//
//   - decodeSpillFrame never panics, whatever bytes the spill store hands
//     back (a half-written or bit-rotted frame surfaces as an error wrapping
//     ErrSpillCorrupt, not a crash);
//   - decode ∘ encode is the identity on the raw payload;
//   - every decode failure wraps the ErrSpillCorrupt sentinel, so callers
//     can distinguish corruption from I/O errors with errors.Is.
//
// The committed corpus under testdata/fuzz/FuzzSpillCodec seeds valid
// frames, truncations, header mutations, and junk.
func FuzzSpillCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a spill frame"))
	valid := encodeSpillFrame([]byte("adverse drug reaction report #42"))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	// Flip a payload bit: header parses, checksum must catch it.
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped)
	// Wrong version byte.
	badVer := append([]byte(nil), valid...)
	badVer[4] = 0xFF
	f.Add(badVer)
	f.Add(encodeSpillFrame(nil))

	f.Fuzz(func(t *testing.T, frame []byte) {
		raw, err := decodeSpillFrame(frame) // must not panic
		if err != nil {
			if !errors.Is(err, ErrSpillCorrupt) {
				t.Fatalf("decode error does not wrap ErrSpillCorrupt: %v", err)
			}
			return
		}
		// A frame that decodes must round-trip: re-encoding its payload and
		// decoding again yields the same bytes.
		again, err := decodeSpillFrame(encodeSpillFrame(raw))
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if !bytes.Equal(raw, again) {
			t.Fatalf("round trip changed payload: %d bytes -> %d bytes", len(raw), len(again))
		}
	})
}

// TestSpillFrameRoundTrip pins the codec outside the fuzzer so `go test`
// exercises it on every run: encode → decode is the identity for payloads
// from empty through incompressible.
func TestSpillFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		bytes.Repeat([]byte("abcd"), 10000), // highly compressible
		func() []byte { // incompressible-ish
			b := make([]byte, 4096)
			s := uint32(2463534242)
			for i := range b {
				s ^= s << 13
				s ^= s >> 17
				s ^= s << 5
				b[i] = byte(s)
			}
			return b
		}(),
	}
	for i, p := range payloads {
		frame := encodeSpillFrame(p)
		got, err := decodeSpillFrame(frame)
		if err != nil {
			t.Fatalf("payload %d: decode: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("payload %d: round trip changed %d bytes -> %d bytes", i, len(p), len(got))
		}
	}
}
