package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// aggressiveSpecConfig speculates as eagerly as the knobs allow, maximizing
// commit/cancel window coverage in the tests below.
func aggressiveSpecConfig(executors int, seed int64) Config {
	return Config{
		Executors:               executors,
		CoresPerExecutor:        1,
		Seed:                    seed,
		Speculation:             true,
		SpeculationQuantile:     0.1,
		SpeculationMultiplier:   1.01,
		SpeculationInterval:     50 * time.Microsecond,
		SpeculationMinRuntimeMS: -1,
	}
}

// TestSpeculationRescuesStraggler: a stage where one task's primary attempt
// stalls must get a speculative duplicate that wins the commit race, and the
// trace must record the launch, the winner, and the cancelled loser.
func TestSpeculationRescuesStraggler(t *testing.T) {
	cfg := aggressiveSpecConfig(4, 1)
	cfg.Trace = true
	c := New(cfg)
	const tasks = 8
	stats, err := c.RunStage("straggle", tasks, func(tc *TaskContext) error {
		if tc.Task() == 3 && !tc.Speculative() {
			// Primary copy of task 3 stalls: 200ms of virtual cost and a
			// long cancellable real block.
			tc.Delay(2*time.Second, 200e6)
		}
		tc.AddRecords(1)
		tc.PublishResult(tc.Task())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SpeculativeTasks < 1 {
		t.Fatalf("no speculative task launched: %+v", stats)
	}
	if stats.SpeculativeWins < 1 {
		t.Fatalf("speculative copy did not win the race: %+v", stats)
	}
	ts := stats.TaskStats[3]
	if !ts.Speculative || !ts.SpecWinner {
		t.Errorf("task 3 stat = %+v, want Speculative and SpecWinner", ts)
	}
	if got := c.Metrics().RecordsProcessed.Load(); got != tasks {
		t.Errorf("RecordsProcessed = %d, want %d (losing attempt leaked a commit)", got, tasks)
	}
	var sawLaunch, sawWinner, sawLoser bool
	for _, e := range c.Tracer().Snapshot() {
		switch e.Kind {
		case EventTaskSpecLaunch:
			sawLaunch = true
		case EventTaskSuccess:
			if e.Outcome == "winner" && e.Task == 3 {
				sawWinner = true
			}
		case EventTaskCancelled:
			if e.Outcome == "loser" && e.Task == 3 {
				sawLoser = true
			}
		}
	}
	if !sawLaunch || !sawWinner || !sawLoser {
		t.Errorf("trace missing speculation events: launch=%v winner=%v loser=%v",
			sawLaunch, sawWinner, sawLoser)
	}
}

// TestSpeculationMakespanReduction: the virtual makespan with a winning
// speculative copy must undercut the same stage without speculation, since
// the duplicate finishes long before the straggler's virtual charge.
func TestSpeculationMakespanReduction(t *testing.T) {
	run := func(speculate bool) time.Duration {
		cfg := aggressiveSpecConfig(4, 1)
		cfg.Speculation = speculate
		c := New(cfg)
		stats, err := c.RunStage("skew", 8, func(tc *TaskContext) error {
			if tc.Task() == 0 && !tc.Speculative() {
				tc.Delay(time.Second, 500e6)
			}
			tc.AddVirtualNS(1e6)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.VirtualDuration
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Errorf("speculation makespan %v not below baseline %v", with, without)
	}
}

// TestSpeculationExactlyOneCommit: under aggressive speculation plus fault
// and straggler injection, every task commits exactly once — counters see
// one AddRecords per task and the published results are the winners'.
func TestSpeculationExactlyOneCommit(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := aggressiveSpecConfig(4, seed)
		cfg.FailureRate = 0.3
		cfg.MaxTaskRetries = 12
		cfg.StragglerRate = 0.4
		cfg.StragglerVirtualMS = 20
		cfg.StragglerRealDelayMS = 2
		c := New(cfg)
		const tasks = 24
		results, stats, err := c.RunStageResults("one-commit", tasks, func(tc *TaskContext) error {
			tc.AddRecords(1)
			tc.AddComparisons(3)
			tc.PublishResult(tc.Task() * 10)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		m := c.Metrics().Snapshot()
		if m.RecordsProcessed != tasks {
			t.Errorf("seed %d: RecordsProcessed = %d, want %d", seed, m.RecordsProcessed, tasks)
		}
		if m.Comparisons != 3*tasks {
			t.Errorf("seed %d: Comparisons = %d, want %d", seed, m.Comparisons, 3*tasks)
		}
		for i, r := range results {
			if r.(int) != i*10 {
				t.Errorf("seed %d: result[%d] = %v, want %d", seed, i, r, i*10)
			}
		}
		if stats.SpeculativeWins > stats.SpeculativeTasks {
			t.Errorf("seed %d: wins %d exceed launches %d", seed, stats.SpeculativeWins, stats.SpeculativeTasks)
		}
	}
}

// TestSpeculativeMakespanNeverExceedsBaseline: for any chain durations, the
// speculative discrete-event schedule's makespan is bounded by the plain
// list schedule of the primary durations (the no-speculation model) —
// duplicate copies only ever occupy otherwise-idle slots.
func TestSpeculativeMakespanNeverExceedsBaseline(t *testing.T) {
	f := func(raw []uint16, execs uint8, flags uint64) bool {
		n := len(raw)
		tasks := make([]specTaskInput, n)
		primary := make([]float64, n)
		for i, r := range raw {
			primary[i] = float64(r) + 1
			tasks[i] = specTaskInput{
				primaryNS:  primary[i],
				specNS:     float64(r%97) + 1,
				hasSpec:    flags>>(uint(i)%64)&1 == 1,
				specCanWin: flags>>((uint(i)+1)%64)&1 == 1,
			}
		}
		for _, policy := range []SchedulePolicy{ScheduleFIFO, ScheduleLPT} {
			c := New(Config{Executors: int(execs)%8 + 1, CoresPerExecutor: 1,
				Scheduling: policy, Speculation: true, SpeculationQuantile: 0.5})
			base := c.listSchedule(primary)
			specMakespan, places := c.speculativeSchedule(tasks)
			if specMakespan > base+1e-6 {
				return false
			}
			for i, p := range places {
				if p.specSlot < 0 && p.specChargedNS != 0 {
					return false
				}
				if p.primaryChargedNS < 0 || p.specChargedNS < 0 {
					return false
				}
				if !tasks[i].hasSpec && p.specSlot >= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSpeculationOffIsBitIdentical: with speculation disabled the engine
// must produce the exact stage accounting it always has — same makespan,
// slots, attempts — for a seeded fault-injected workload, pinning that the
// refactor did not disturb the non-speculative path.
func TestSpeculationOffIsBitIdentical(t *testing.T) {
	run := func() StageStats {
		c := New(Config{Executors: 3, CoresPerExecutor: 2, Seed: 42, FailureRate: 0.3})
		stats, err := c.RunStage("pin", 12, func(tc *TaskContext) error {
			tc.AddVirtualNS(float64(tc.Task()+1) * 1e6)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	a, b := run(), run()
	if a.Attempts != b.Attempts || a.Failures != b.Failures {
		t.Errorf("attempt accounting not deterministic: %+v vs %+v", a, b)
	}
	for i := range a.TaskStats {
		// Slots depend on measured real compute and are not asserted;
		// the attempt/failure pattern is seed-deterministic.
		if a.TaskStats[i].Attempts != b.TaskStats[i].Attempts ||
			a.TaskStats[i].Failures != b.TaskStats[i].Failures {
			t.Errorf("task %d attempt pattern differs across identical runs", i)
		}
		if a.TaskStats[i].SpecSlot != -1 {
			t.Errorf("task %d has SpecSlot %d without speculation", i, a.TaskStats[i].SpecSlot)
		}
	}
}

// TestSpeculationRaceStress drives many clusters concurrently, each running
// stages under the most aggressive speculation settings plus fault and
// straggler injection, to expose commit/cancel races to the race detector.
// Wired into `make race`; short mode caps the load.
func TestSpeculationRaceStress(t *testing.T) {
	clusters, stages := 6, 8
	if testing.Short() {
		clusters, stages = 2, 3
	}
	var wg sync.WaitGroup
	errs := make(chan error, clusters)
	for ci := 0; ci < clusters; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cfg := aggressiveSpecConfig(2+ci%3, int64(ci+1))
			cfg.FailureRate = 0.3
			cfg.MaxTaskRetries = 12
			cfg.StragglerRate = 0.5
			cfg.StragglerVirtualMS = 10
			cfg.StragglerRealDelayMS = 1
			cfg.Trace = true
			cfg.TraceCapacity = 1 << 12
			c := New(cfg)
			for s := 0; s < stages; s++ {
				shID := c.Shuffles().Register()
				tasks := 8 + s
				_, err := c.RunStage(fmt.Sprintf("stress-map-%d", s), tasks, func(tc *TaskContext) error {
					tc.AddRecords(1)
					tc.WriteShuffle(shID, tc.Task()%4, []int64{int64(tc.Task())}, 1, 8)
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
				c.Shuffles().MarkDone(shID)
				results, _, err := c.RunStageResults(fmt.Sprintf("stress-reduce-%d", s), 4, func(tc *TaskContext) error {
					blocks, ferr := tc.FetchShuffle(shID, tc.Task())
					if ferr != nil {
						return ferr
					}
					tc.PublishResult(len(blocks))
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
				total := 0
				for _, r := range results {
					total += r.(int)
				}
				if total != tasks {
					errs <- fmt.Errorf("cluster %d stage %d: %d shuffle blocks visible, want %d", ci, s, total, tasks)
					return
				}
				c.Shuffles().Unregister(shID)
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestHeapSchedulerMatchesLinearReference pins the min-heap list scheduler
// to the O(tasks x slots) linear-scan reference it replaced: identical
// makespans AND identical per-task slot assignments (including tie-breaks)
// on randomized durations, both policies.
func TestHeapSchedulerMatchesLinearReference(t *testing.T) {
	// linearScheduleSlots is the replaced implementation, kept as the
	// behavioural reference: earliest-available slot, lowest index wins
	// ties.
	linearScheduleSlots := func(c *Cluster, durations []float64) (float64, []int) {
		slots := c.SlotCount()
		if slots < 1 {
			slots = 1
		}
		avail := make([]float64, slots)
		assigned := make([]int, len(durations))
		for _, task := range policyOrder(durations, c.cfg.Scheduling) {
			best := 0
			for s := 1; s < slots; s++ {
				if avail[s] < avail[best] {
					best = s
				}
			}
			avail[best] += durations[task]
			assigned[task] = best
		}
		makespan := 0.0
		for _, v := range avail {
			if v > makespan {
				makespan = v
			}
		}
		return makespan, assigned
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60)
		durations := make([]float64, n)
		for i := range durations {
			// Duplicates on purpose: tie-breaking is the delicate part.
			durations[i] = float64(rng.Intn(8))
		}
		execs := 1 + rng.Intn(9)
		cores := 1 + rng.Intn(3)
		for _, policy := range []SchedulePolicy{ScheduleFIFO, ScheduleLPT} {
			c := New(Config{Executors: execs, CoresPerExecutor: cores, Scheduling: policy})
			wantM, wantSlots := linearScheduleSlots(c, durations)
			gotM, gotSlots := c.listScheduleSlots(durations)
			if gotM != wantM {
				t.Fatalf("trial %d policy %v: makespan %v != reference %v", trial, policy, gotM, wantM)
			}
			for i := range wantSlots {
				if gotSlots[i] != wantSlots[i] {
					t.Fatalf("trial %d policy %v task %d: slot %d != reference %d (durations %v)",
						trial, policy, i, gotSlots[i], wantSlots[i], durations)
				}
			}
		}
	}
}
