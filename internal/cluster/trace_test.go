package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestTracerDisabledRecordsNothing(t *testing.T) {
	c := New(Config{})
	if _, err := c.RunStage("quiet", 4, func(tc *TaskContext) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if n := c.Tracer().Len(); n != 0 {
		t.Errorf("disabled tracer retained %d events", n)
	}
}

func TestTraceStageAndTaskEvents(t *testing.T) {
	c := New(Config{Executors: 2, Trace: true, FailureRate: 0.4, MaxTaskRetries: 30, Seed: 11})
	if _, err := c.RunStage("traced", 12, func(tc *TaskContext) error { return nil }); err != nil {
		t.Fatal(err)
	}
	events := c.Tracer().Snapshot()
	byKind := map[EventKind]int{}
	for _, e := range events {
		byKind[e.Kind]++
		if e.Kind == EventStageStart || e.Kind == EventStageEnd {
			if e.Stage != "traced" || e.Task != -1 {
				t.Errorf("stage event malformed: %+v", e)
			}
		}
	}
	if byKind[EventStageStart] != 1 || byKind[EventStageEnd] != 1 {
		t.Errorf("stage lifecycle events = %v", byKind)
	}
	if byKind[EventTaskSuccess] != 12 {
		t.Errorf("task_success = %d, want 12", byKind[EventTaskSuccess])
	}
	if byKind[EventTaskFailInjected] == 0 {
		t.Error("expected injected-failure events at rate 0.4")
	}
	if byKind[EventTaskStart] != byKind[EventTaskSuccess]+byKind[EventTaskFailInjected] {
		t.Errorf("task_start %d != success %d + fail %d",
			byKind[EventTaskStart], byKind[EventTaskSuccess], byKind[EventTaskFailInjected])
	}
	// Sequence numbers are strictly increasing, oldest first.
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("events out of order at %d: %d then %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(8)
	tr.Enable()
	for i := 0; i < 20; i++ {
		tr.Emit(Event{Kind: EventTaskStart, Task: i})
	}
	if tr.Len() != 8 {
		t.Errorf("Len = %d, want 8", tr.Len())
	}
	if tr.Dropped() != 12 {
		t.Errorf("Dropped = %d, want 12", tr.Dropped())
	}
	snap := tr.Snapshot()
	if snap[0].Task != 12 || snap[len(snap)-1].Task != 19 {
		t.Errorf("ring kept wrong window: first task %d, last %d", snap[0].Task, snap[len(snap)-1].Task)
	}
}

func TestTraceWriteJSONParseable(t *testing.T) {
	c := New(Config{Trace: true})
	sh := c.Shuffles().Register()
	if _, err := c.RunStage("map", 3, func(tc *TaskContext) error {
		tc.WriteShuffle(sh, 0, []int{tc.Task()}, 1, 64)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	c.Shuffles().MarkDone(sh)
	if _, err := c.RunStage("reduce", 1, func(tc *TaskContext) error {
		tc.FetchShuffle(sh, 0)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	c.Broadcast(1000)

	var buf bytes.Buffer
	if err := c.Tracer().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DroppedEvents int64 `json:"droppedEvents"`
		Events        []struct {
			Seq   int64  `json:"seq"`
			Kind  string `json:"kind"`
			Stage string `json:"stage"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace export not parseable: %v\n%s", err, buf.String())
	}
	perStage := map[string]int{}
	sawBroadcast := false
	for _, e := range doc.Events {
		if e.Stage != "" {
			perStage[e.Stage]++
		}
		if e.Kind == string(EventBroadcast) {
			sawBroadcast = true
		}
	}
	if perStage["map"] < 1 || perStage["reduce"] < 1 {
		t.Errorf("want >= 1 event per stage, got %v", perStage)
	}
	if !sawBroadcast {
		t.Error("broadcast event missing")
	}
}

func TestTracerResetKeepsSeqMonotone(t *testing.T) {
	tr := NewTracer(4)
	tr.Enable()
	tr.Emit(Event{Kind: EventBroadcast})
	first := tr.Snapshot()[0].Seq
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("Reset kept events")
	}
	tr.Emit(Event{Kind: EventBroadcast})
	if s := tr.Snapshot()[0].Seq; s <= first {
		t.Errorf("seq went backwards after Reset: %d then %d", first, s)
	}
}

func TestMetricsCommitOnSuccessOnly(t *testing.T) {
	// Under heavy fault injection, every failed attempt's counter deltas
	// must be discarded: the committed totals equal the fault-free run's.
	run := func(rate float64) MetricsSnapshot {
		c := New(Config{FailureRate: rate, MaxTaskRetries: 50, Seed: 5})
		sh := c.Shuffles().Register()
		if _, err := c.RunStage("map", 10, func(tc *TaskContext) error {
			tc.AddRecords(7)
			tc.AddComparisons(3)
			tc.WriteShuffle(sh, 0, []int{tc.Task()}, 2, 16)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		c.Shuffles().MarkDone(sh)
		if _, err := c.RunStage("reduce", 2, func(tc *TaskContext) error {
			tc.FetchShuffle(sh, 0)
			tc.AddRecords(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return c.Metrics().Snapshot()
	}
	clean := run(0)
	faulty := run(0.5)

	if clean.TaskFailures != 0 || faulty.TaskFailures == 0 {
		t.Fatalf("failure setup wrong: clean %d, faulty %d", clean.TaskFailures, faulty.TaskFailures)
	}
	if clean.RecordsProcessed != faulty.RecordsProcessed {
		t.Errorf("RecordsProcessed: clean %d != faulty %d", clean.RecordsProcessed, faulty.RecordsProcessed)
	}
	if clean.Comparisons != faulty.Comparisons {
		t.Errorf("Comparisons: clean %d != faulty %d", clean.Comparisons, faulty.Comparisons)
	}
	if clean.ShuffleRecordsWritten != faulty.ShuffleRecordsWritten {
		t.Errorf("ShuffleRecordsWritten: clean %d != faulty %d",
			clean.ShuffleRecordsWritten, faulty.ShuffleRecordsWritten)
	}
	if clean.ShuffleBytesWritten != faulty.ShuffleBytesWritten {
		t.Errorf("ShuffleBytesWritten: clean %d != faulty %d",
			clean.ShuffleBytesWritten, faulty.ShuffleBytesWritten)
	}
	if clean.ShuffleBytesRead != faulty.ShuffleBytesRead {
		t.Errorf("ShuffleBytesRead: clean %d != faulty %d", clean.ShuffleBytesRead, faulty.ShuffleBytesRead)
	}
	if faulty.TasksLaunched <= clean.TasksLaunched {
		t.Errorf("faulty TasksLaunched %d should exceed clean %d (retries)",
			faulty.TasksLaunched, clean.TasksLaunched)
	}
}

func TestFailedStageStillRecorded(t *testing.T) {
	c := New(Config{FailureRate: 1.0, MaxTaskRetries: 2, Seed: 9, Trace: true})
	_, err := c.RunStage("doomed", 3, func(tc *TaskContext) error { return nil })
	if !errors.Is(err, ErrTaskFailed) {
		t.Fatalf("err = %v, want ErrTaskFailed", err)
	}
	m := c.Metrics().Snapshot()
	if m.StagesRun != 1 {
		t.Errorf("StagesRun = %d, want 1 (failed stages must be counted)", m.StagesRun)
	}
	// 3 tasks x (1 first attempt + 2 retries), all failing.
	if m.TasksLaunched != 9 || m.TaskFailures != 9 {
		t.Errorf("TasksLaunched=%d TaskFailures=%d, want 9/9", m.TasksLaunched, m.TaskFailures)
	}
	h := c.StageHistory()
	if len(h) != 1 || h[0].Name != "doomed" {
		t.Fatalf("failed stage missing from history: %+v", h)
	}
	if h[0].Attempts != 9 || h[0].Failures != 9 {
		t.Errorf("history stats = %+v", h[0])
	}
	// The stage_end trace event carries the failure.
	var end *Event
	for _, e := range c.Tracer().Snapshot() {
		if e.Kind == EventStageEnd {
			ev := e
			end = &ev
		}
	}
	if end == nil || !strings.Contains(end.Detail, "doomed") {
		t.Errorf("stage_end event missing failure detail: %+v", end)
	}
}

func TestRetryBudgetIsFirstAttemptPlusRetries(t *testing.T) {
	var invocations atomic.Int64
	c := New(Config{FailureRate: 1.0, MaxTaskRetries: 3, Seed: 1})
	_, err := c.RunStage("budget", 1, func(tc *TaskContext) error {
		invocations.Add(1)
		return nil
	})
	if !errors.Is(err, ErrTaskFailed) {
		t.Fatalf("err = %v", err)
	}
	if got := invocations.Load(); got != 4 {
		t.Errorf("invocations = %d, want 4 (1 first attempt + 3 retries)", got)
	}
}

func TestGenuineErrorsRetriedLikeInjectedOnes(t *testing.T) {
	// A transient genuine error must be retried within the same budget.
	boom := errors.New("transient")
	c := New(Config{MaxTaskRetries: 3})
	stats, err := c.RunStage("flaky-code", 1, func(tc *TaskContext) error {
		if tc.Attempt() < 2 {
			return boom
		}
		tc.AddRecords(5)
		return nil
	})
	if err != nil {
		t.Fatalf("transient error not retried to success: %v", err)
	}
	if stats.Attempts != 3 || stats.Failures != 2 {
		t.Errorf("stats = %+v, want 3 attempts / 2 failures", stats)
	}
	// Counters from the failed attempts must not have leaked.
	if got := c.Metrics().RecordsProcessed.Load(); got != 5 {
		t.Errorf("RecordsProcessed = %d, want 5", got)
	}

	// A permanent genuine error exhausts the budget and surfaces both
	// ErrTaskFailed and the underlying cause.
	c2 := New(Config{MaxTaskRetries: 1})
	_, err = c2.RunStage("doomed-code", 1, func(tc *TaskContext) error { return boom })
	if !errors.Is(err, ErrTaskFailed) || !errors.Is(err, boom) {
		t.Errorf("err = %v, want both ErrTaskFailed and the cause", err)
	}
}

func TestStageStatsTaskBreakdown(t *testing.T) {
	c := New(Config{Executors: 2, CoresPerExecutor: 1, NetworkMBps: 1, ShuffleLatencyMS: 5})
	sh := c.Shuffles().Register()
	if _, err := c.RunStage("map", 4, func(tc *TaskContext) error {
		tc.WriteShuffle(sh, 0, []byte{1}, 1, 1e6)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	c.Shuffles().MarkDone(sh)
	stats, err := c.RunStage("reduce", 4, func(tc *TaskContext) error {
		if tc.Task() == 0 {
			tc.FetchShuffle(sh, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.TaskStats) != 4 {
		t.Fatalf("TaskStats len = %d", len(stats.TaskStats))
	}
	for i, ts := range stats.TaskStats {
		if ts.Task != i || ts.Attempts != 1 {
			t.Errorf("TaskStats[%d] = %+v", i, ts)
		}
		if ts.Slot < 0 || ts.Slot >= c.SlotCount() {
			t.Errorf("task %d scheduled on bad slot %d", i, ts.Slot)
		}
	}
	// Only task 0 fetched: 4MB at 1MB/s = 4s of shuffle wait.
	if stats.TaskStats[0].ShuffleWaitDuration == 0 {
		t.Error("fetching task has zero shuffle wait")
	}
	if stats.TaskStats[1].ShuffleWaitDuration != 0 {
		t.Error("non-fetching task charged shuffle wait")
	}
	if stats.ShuffleWaitDuration != stats.TaskStats[0].ShuffleWaitDuration {
		t.Errorf("stage shuffle wait %v != task sum %v",
			stats.ShuffleWaitDuration, stats.TaskStats[0].ShuffleWaitDuration)
	}
	if stats.SchedulerOverhead <= 0 && c.cfg.SchedulerOverheadMS > 0 {
		t.Error("scheduler overhead missing")
	}
	// Virtual duration of the fetching task includes its shuffle wait.
	if stats.TaskStats[0].VirtualDuration < stats.TaskStats[0].ShuffleWaitDuration {
		t.Errorf("task virtual %v < shuffle wait %v",
			stats.TaskStats[0].VirtualDuration, stats.TaskStats[0].ShuffleWaitDuration)
	}
}

func TestWriteStageSummary(t *testing.T) {
	c := New(Config{Executors: 2, SchedulerOverheadMS: 1})
	if _, err := c.RunStage("alpha", 2, func(tc *TaskContext) error {
		tc.AddVirtualNS(1e6)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteStageSummary(&buf, c.StageHistory())
	out := buf.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "TOTAL") {
		t.Errorf("summary missing rows:\n%s", out)
	}
}

func TestListScheduleSlotsLPTMapping(t *testing.T) {
	c := New(Config{Executors: 2, CoresPerExecutor: 1, Scheduling: ScheduleLPT})
	durations := []float64{10, 100, 10, 10}
	makespan, slots := c.listScheduleSlots(durations)
	if makespan != 100 {
		t.Errorf("makespan = %v, want 100 (LPT isolates the straggler)", makespan)
	}
	if len(slots) != 4 {
		t.Fatalf("slots = %v", slots)
	}
	// The long task gets its own slot; the three short ones share the other.
	long := slots[1]
	for i, s := range slots {
		if i == 1 {
			continue
		}
		if s == long {
			t.Errorf("short task %d shares slot %d with the straggler", i, long)
		}
	}
}
