// Package cluster simulates a Spark-style compute cluster on a single
// machine. It is the execution substrate underneath the RDD layer
// (internal/rdd): it runs stages of tasks on a bounded worker pool, injects
// and recovers from task failures, caches materialized partitions in a
// memory-bounded block store, moves shuffle data between stages, and keeps a
// *virtual clock* so that executor-scaling experiments (paper Figs. 8-10)
// reproduce cluster behaviour independently of the host's core count.
//
// # Virtual time
//
// Every task measures its real single-threaded compute time and may add
// virtual time for simulated I/O (shuffle reads, broadcasts). After a stage's
// tasks have all really executed (in parallel, up to the host's cores), the
// scheduler *list-schedules* the per-task virtual durations onto
// Executors x CoresPerExecutor virtual slots in task order. The stage's
// virtual makespan is the maximum slot finish time. Summed across stages this
// yields the execution times reported by the experiment harness: a 5-executor
// configuration and a 25-executor configuration run the same real
// computation, but their virtual makespans differ exactly as the paper's
// cluster wall-clock would.
//
// # Fault tolerance
//
// Each task attempt may be failed by the injector with probability
// Config.FailureRate (deterministic per seed/stage/task/attempt). Failed
// attempts discard their buffered shuffle output — like Spark, output commits
// only on success — and are retried up to MaxTaskRetries times, charging the
// wasted attempt's virtual time to the slot that ran it. Tasks whose declared
// working set exceeds executor memory suffer a spill penalty and, when
// PressureTimeouts is set, a simulated timeout failure on their first attempt
// (reproducing the paper's observation for cluster numbers below 25).
//
// # Speculative execution
//
// With Config.Speculation set, each stage runs a straggler monitor: once
// SpeculationQuantile of its tasks have committed, any task running longer
// than SpeculationMultiplier x the median committed duration gets one
// speculative duplicate attempt chain. The rival chains race; the first
// successful attempt wins the task's single commit and cancels the other via
// its attempt context. Virtual-clock accounting replays the race in a
// discrete-event simulation (see speculativeSchedule) where duplicate copies
// only ever occupy otherwise-idle slots, so the speculative makespan never
// exceeds the no-speculation list-schedule bound. The StragglerRate injector
// creates deterministic slow tasks (virtual cost plus a real, cancellable
// delay) to exercise the machinery, mirroring how FailureRate exercises
// retries.
//
// # Real-parallel execution
//
// Config.RealParallel replaces the goroutine-per-task launch with a
// goroutine-per-core work-stealing pool (pool.go): RealWorkers workers with
// per-worker LIFO deques, FIFO stealing, and per-worker scratch buffers
// (WorkerScratch) handed to tasks through TaskContext.Scratch. Virtual-time
// accounting is unchanged — the mode only changes how fast the real
// computation saturates the host. Because all side effects are commit-gated
// and injection is hashed from stable identities, results and committed
// counters stay bit-identical to the default mode.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"
)

// Config describes the simulated cluster.
type Config struct {
	// Executors is the number of executor processes (paper: Spark executors).
	Executors int
	// CoresPerExecutor is the number of concurrent task slots per executor.
	CoresPerExecutor int
	// MemoryPerExecutorMB bounds both the block cache share and the task
	// working-set pressure threshold of each executor.
	MemoryPerExecutorMB int
	// MemoryPerExecutorBytes, when positive, overrides MemoryPerExecutorMB
	// at byte granularity. Chaos and property tests use it to force memory
	// pressure on workloads far smaller than a megabyte.
	MemoryPerExecutorBytes int64
	// SpillToDisk enables the disk overflow tier: blocks that exceed an
	// executor's memory budget (cached partitions in the block store,
	// committed shuffle buffers) are framed, compressed, and spilled to
	// executor-local disk instead of being dropped, and read back
	// transparently, charging virtual disk time at SpillMBps. Off by
	// default: without it the engine keeps its historical
	// evict-and-recompute behaviour.
	SpillToDisk bool
	// SpillMBps is the simulated executor-local disk bandwidth used to
	// charge virtual time for spill writes and read-backs, the disk
	// analogue of NetworkMBps. 0 selects the default 500.
	SpillMBps float64
	// TargetPartitionMB enables Spark-AQE-style adaptive post-shuffle
	// partition coalescing: after a map stage commits, consecutive reduce
	// partitions smaller than this target are merged toward
	// TargetPartitionMB bytes each (stage_coalesce trace events,
	// CoalescedPartitions metric). 0 disables coalescing.
	TargetPartitionMB int
	// NetworkMBps is the simulated per-executor network bandwidth used to
	// charge virtual time for shuffle reads and broadcasts.
	NetworkMBps float64
	// ShuffleLatencyMS is the fixed virtual latency charged per fetched
	// shuffle block.
	ShuffleLatencyMS float64
	// SchedulerOverheadMS is the fixed virtual cost charged per stage, plus
	// a per-executor coordination share (task dispatch, result pickup).
	SchedulerOverheadMS float64
	// FailureRate is the probability that any given task attempt fails.
	FailureRate float64
	// ExecutorFailureRate is the probability, drawn deterministically per
	// (seed, stage submission, executor), that a live executor is killed
	// when a stage is submitted. A killed executor's slots drain and its
	// committed shuffle map outputs and cached partitions are dropped;
	// downstream fetches of the lost outputs fail with FetchFailedError
	// and trigger lineage resubmission. The last live executor is never
	// killed.
	ExecutorFailureRate float64
	// MaxStageRetries bounds how many times one stage may be resubmitted
	// after fetch failures before it aborts with a *StageAbortedError.
	// 0 selects the default 4.
	MaxStageRetries int
	// ExecutorRecoveryStages is how many stage submissions a killed
	// executor stays out of the pool before a replacement rejoins
	// (pre-blacklist). 0 selects the default 1.
	ExecutorRecoveryStages int
	// BlacklistAfterFailures is the lifetime failure count at which an
	// executor is blacklisted: beyond plain recovery, each further loss
	// serves an exponentially growing backoff before re-admission.
	// 0 selects the default 3.
	BlacklistAfterFailures int
	// BlacklistBackoffStages is the base backoff, in stage submissions,
	// of a freshly blacklisted executor; it doubles per additional
	// failure. 0 selects the default 4.
	BlacklistBackoffStages int
	// MaxTaskRetries bounds the retries after a task's first attempt: a
	// task runs at most 1+MaxTaskRetries attempts before the stage fails
	// with ErrTaskFailed. Injected failures, pressure timeouts, and
	// genuine task errors all consume the same retry budget, as in Spark.
	MaxTaskRetries int
	// SpillPenalty multiplies a task's virtual duration when its working
	// set exceeds executor memory (simulated spill/GC thrash).
	SpillPenalty float64
	// PressureTimeouts injects a timeout failure on the first attempt of
	// any task under memory pressure, as the paper reports for small
	// cluster numbers.
	PressureTimeouts bool
	// Seed drives all stochastic behaviour (fault and straggler injection).
	Seed int64
	// RealParallelism caps worker goroutines; 0 means GOMAXPROCS.
	RealParallelism int
	// RealParallel switches stage execution from the legacy
	// goroutine-per-task launch to the goroutine-per-core work-stealing
	// worker pool (pool.go): RealWorkers goroutines with per-worker LIFO
	// deques, FIFO stealing over partitions, and per-worker WorkerScratch
	// buffers so zero-alloc kernels survive concurrency. The virtual-time
	// scheduler stays the oracle: results and committed counters are
	// bit-identical to the default mode, only real wall-clock changes.
	RealParallel bool
	// RealWorkers is the pool size in RealParallel mode. 0 selects
	// runtime.NumCPU() — one worker per core.
	RealWorkers int
	// Scheduling selects the task-to-slot placement policy. The paper
	// names executor load balancing as future work (§7); LPT implements
	// it.
	Scheduling SchedulePolicy

	// Speculation enables straggler mitigation: stages monitor running
	// tasks and launch speculative duplicate attempts for stragglers;
	// the first completion wins the task's commit.
	Speculation bool
	// SpeculationQuantile is the fraction of a stage's tasks that must
	// commit before stragglers are considered (Spark:
	// spark.speculation.quantile). 0 selects the default 0.75.
	SpeculationQuantile float64
	// SpeculationMultiplier: a running task is a straggler when its
	// elapsed time exceeds this multiple of the median committed task
	// duration (Spark: spark.speculation.multiplier). 0 selects the
	// default 1.5.
	SpeculationMultiplier float64
	// SpeculationInterval is the real-time period of the straggler
	// monitor's checks. 0 selects the default 250µs.
	SpeculationInterval time.Duration
	// SpeculationMinRuntimeMS is a real-time floor under the straggler
	// threshold, keeping speculation from duplicating sub-millisecond
	// tasks on noisy medians. 0 selects the default 1ms; negative
	// disables the floor.
	SpeculationMinRuntimeMS float64

	// StragglerRate is the probability that any given task attempt is an
	// injected straggler (deterministic per seed/stage/task/attempt, like
	// FailureRate).
	StragglerRate float64
	// StragglerVirtualMS is the virtual time an injected straggler charges
	// up front, representing the slowdown's would-be cost. 0 selects the
	// default 250ms.
	StragglerVirtualMS float64
	// StragglerRealDelayMS is the real, cancellable wall-clock delay an
	// injected straggler blocks for, giving the monitor a window to race
	// a speculative copy. 0 selects the default 5ms; negative disables
	// the real delay (the virtual charge still applies).
	StragglerRealDelayMS float64

	// Trace enables the structured stage/task event log (see Tracer).
	// Disabled tracing costs one atomic load per would-be event.
	Trace bool
	// TraceCapacity bounds the trace event ring; 0 selects the default
	// (65536 events). When the ring wraps, the oldest events are dropped
	// and counted.
	TraceCapacity int
}

// SchedulePolicy is the task placement policy of the virtual scheduler.
type SchedulePolicy int

const (
	// ScheduleFIFO assigns tasks to the earliest-available slot in
	// submission order — Spark's default behaviour and the paper's
	// baseline.
	ScheduleFIFO SchedulePolicy = iota
	// ScheduleLPT sorts tasks longest-first before placement (longest
	// processing time). With skewed task durations — e.g. uneven Voronoi
	// cluster sizes, which the paper identifies as its scalability
	// limiter — LPT produces tighter makespans.
	ScheduleLPT
)

func (p SchedulePolicy) String() string {
	if p == ScheduleLPT {
		return "lpt"
	}
	return "fifo"
}

// Defaults fills unset fields with production-like values.
func (c Config) withDefaults() Config {
	if c.Executors <= 0 {
		c.Executors = 4
	}
	if c.CoresPerExecutor <= 0 {
		c.CoresPerExecutor = 1
	}
	if c.MemoryPerExecutorMB <= 0 {
		c.MemoryPerExecutorMB = 1024
	}
	if c.NetworkMBps <= 0 {
		c.NetworkMBps = 1000
	}
	if c.ShuffleLatencyMS < 0 {
		c.ShuffleLatencyMS = 0
	}
	if c.MaxTaskRetries <= 0 {
		c.MaxTaskRetries = 4
	}
	if c.MaxStageRetries <= 0 {
		c.MaxStageRetries = 4
	}
	if c.ExecutorRecoveryStages <= 0 {
		c.ExecutorRecoveryStages = 1
	}
	if c.BlacklistAfterFailures <= 0 {
		c.BlacklistAfterFailures = 3
	}
	if c.BlacklistBackoffStages <= 0 {
		c.BlacklistBackoffStages = 4
	}
	if c.SpillPenalty < 1 {
		c.SpillPenalty = 3
	}
	if c.RealParallelism <= 0 {
		c.RealParallelism = runtime.GOMAXPROCS(0)
	}
	if c.RealWorkers <= 0 {
		c.RealWorkers = runtime.NumCPU()
	}
	if c.SpeculationQuantile <= 0 {
		c.SpeculationQuantile = 0.75
	}
	if c.SpeculationQuantile > 1 {
		c.SpeculationQuantile = 1
	}
	if c.SpeculationMultiplier <= 0 {
		c.SpeculationMultiplier = 1.5
	}
	if c.SpeculationInterval <= 0 {
		c.SpeculationInterval = 250 * time.Microsecond
	}
	if c.SpeculationMinRuntimeMS == 0 {
		c.SpeculationMinRuntimeMS = 1
	} else if c.SpeculationMinRuntimeMS < 0 {
		c.SpeculationMinRuntimeMS = 0
	}
	if c.StragglerVirtualMS == 0 {
		c.StragglerVirtualMS = 250
	} else if c.StragglerVirtualMS < 0 {
		c.StragglerVirtualMS = 0
	}
	if c.StragglerRealDelayMS == 0 {
		c.StragglerRealDelayMS = 5
	} else if c.StragglerRealDelayMS < 0 {
		c.StragglerRealDelayMS = 0
	}
	if c.SpillMBps <= 0 {
		c.SpillMBps = 500
	}
	return c
}

// executorMemoryBytes returns one executor's memory budget in bytes,
// honouring the fine-grained byte override.
func (c Config) executorMemoryBytes() int64 {
	if c.MemoryPerExecutorBytes > 0 {
		return c.MemoryPerExecutorBytes
	}
	return int64(c.MemoryPerExecutorMB) * mb
}

// Cluster is a simulated Spark cluster. All methods are safe for concurrent
// use by tasks of a running job; jobs themselves are submitted sequentially.
type Cluster struct {
	cfg Config

	mu           sync.Mutex
	virtualNS    float64
	stageCounter int
	execs        []executorMeta

	blocks      *BlockStore
	shuffles    *ShuffleService
	checkpoints *CheckpointStore
	spill       *SpillStore
	metrics     *Metrics
	history     stageHistory
	tracer      *Tracer

	// poolCtx parents every attempt context; Close cancels it, waking any
	// chain blocked in a simulated real delay (straggler sleeps) so no
	// goroutine outlives the cluster.
	poolCtx    context.Context
	poolCancel context.CancelFunc
	// scratch recycles per-worker buffer bundles across stages and modes.
	scratch scratchPool
}

// New creates a cluster with the given configuration.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{cfg: cfg}
	c.execs = make([]executorMeta, cfg.Executors)
	c.spill = newSpillStore(c)
	c.blocks = newBlockStore(int64(cfg.Executors)*cfg.executorMemoryBytes(), c)
	c.shuffles = newShuffleService(c)
	c.checkpoints = newCheckpointStore(c)
	c.metrics = &Metrics{}
	c.tracer = NewTracer(cfg.TraceCapacity)
	if cfg.Trace {
		c.tracer.Enable()
	}
	c.poolCtx, c.poolCancel = context.WithCancel(context.Background())
	return c
}

// Close releases the cluster's disk-backed resources (spilled block files)
// and cancels the shared pool context, waking any task chain still blocked
// in a simulated real delay. Stages still running when Close is called fail
// fast; the normal pattern is to Close only after the last job returns.
// A cluster that never spilled holds no disk state, so Close is cheap.
func (c *Cluster) Close() {
	c.poolCancel()
	c.spill.Close()
}

const mb = int64(1 << 20)

// Config returns the (defaulted) configuration the cluster runs with.
func (c *Cluster) Config() Config { return c.cfg }

// Metrics returns the cluster's metrics registry.
func (c *Cluster) Metrics() *Metrics { return c.metrics }

// Blocks returns the cluster's block store (partition cache).
func (c *Cluster) Blocks() *BlockStore { return c.blocks }

// VirtualElapsed returns the total virtual wall-clock accumulated across all
// stages run so far.
func (c *Cluster) VirtualElapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.virtualNS)
}

// ResetClock zeroes the virtual clock (metrics and caches are kept).
func (c *Cluster) ResetClock() {
	c.mu.Lock()
	c.virtualNS = 0
	c.mu.Unlock()
}

// StageStats reports one stage's execution, including the virtual-time
// breakdown and a per-task view. Stages that fail (a task exhausted its
// retries) are still fully accounted: their stats are recorded in the
// metrics registry and stage history before RunStage returns the error.
type StageStats struct {
	Name     string
	Tasks    int
	Attempts int
	Failures int
	// VirtualDuration is the stage's virtual makespan (list-scheduled
	// onto the executor slots) plus scheduler overhead.
	VirtualDuration time.Duration
	// ComputeDuration sums the tasks' measured single-threaded compute
	// time across all attempts (before list scheduling).
	ComputeDuration time.Duration
	// ShuffleWaitDuration sums the tasks' simulated shuffle-fetch waits
	// across all attempts.
	ShuffleWaitDuration time.Duration
	// SchedulerOverhead is the fixed per-stage coordination cost included
	// in VirtualDuration.
	SchedulerOverhead time.Duration
	RealDuration      time.Duration
	// SpeculativeTasks counts tasks for which the straggler monitor
	// launched a speculative duplicate chain.
	SpeculativeTasks int
	// SpeculativeWins counts tasks whose speculative chain won the real
	// commit race.
	SpeculativeWins int
	// WastedDuration is the virtual time charged to losing copies of
	// speculated tasks (the cost of mitigation), summed over the stage.
	WastedDuration time.Duration
	// Stragglers counts injected straggler attempts across the stage.
	Stragglers int
	// Resubmits counts lineage-recovery resubmissions of the stage after
	// shuffle fetch failures (0 for a clean run).
	Resubmits int
	// TaskStats breaks the stage down per task, including the virtual
	// slot each task was list-scheduled onto.
	TaskStats []TaskStat
}

// TaskStat is one task's share of a stage, summed over all its attempts
// (primary and speculative chains combined).
type TaskStat struct {
	Task     int
	Attempts int
	Failures int
	// Slot is the virtual executor slot (0..Executors*CoresPerExecutor-1)
	// the task's primary chain was list-scheduled onto.
	Slot int
	// Executor is the live executor the primary chain was placed on; its
	// hosted output dies with that executor.
	Executor int
	// SpecSlot is the slot the speculative copy was charged to, -1 when
	// the task was not speculated (or its copy never started in the
	// virtual schedule).
	SpecSlot int
	// ComputeDuration is the measured single-threaded compute time.
	ComputeDuration time.Duration
	// ShuffleWaitDuration is the simulated shuffle-fetch wait.
	ShuffleWaitDuration time.Duration
	// VirtualDuration is the total virtual time charged to the task's
	// slots (compute + simulated I/O, across all attempts of both chains,
	// after any spill penalty; losing copies charged up to cancellation).
	VirtualDuration time.Duration
	// WastedDuration is the share of VirtualDuration charged to the
	// losing copy of a speculated task.
	WastedDuration time.Duration
	// Speculative reports that the straggler monitor launched a duplicate
	// chain for this task.
	Speculative bool
	// SpecWinner reports that the speculative chain won the real commit
	// race (the trace's outcome=winner row carries the same fact
	// per-attempt).
	SpecWinner bool
	// Stragglers counts injected straggler attempts of this task.
	Stragglers int
}

// ErrTaskFailed is returned when a task exhausts its retry budget.
var ErrTaskFailed = errors.New("cluster: task failed after max retries")

// ErrStageAborted is the sentinel under every *StageAbortedError, so callers
// can errors.Is a stage failure to detect exhausted (or impossible) lineage
// recovery.
var ErrStageAborted = errors.New("cluster: stage aborted: lineage recovery exhausted")

// StageAbortedError reports that a stage could not be completed by lineage
// resubmission: either MaxStageRetries resubmissions were already spent, or
// a lost shuffle had no registered recompute callback. Cause carries the
// terminal fetch failure (or patch-up error).
type StageAbortedError struct {
	Stage     string
	StageID   int
	Resubmits int
	Cause     error
}

func (e *StageAbortedError) Error() string {
	return fmt.Sprintf("stage %q (id %d) aborted after %d resubmissions: %v",
		e.Stage, e.StageID, e.Resubmits, e.Cause)
}

func (e *StageAbortedError) Unwrap() []error { return []error{ErrStageAborted, e.Cause} }

// RunStage executes numTasks tasks, each invoking run with a fresh
// TaskContext. Tasks run really in parallel (bounded by RealParallelism) and
// their virtual durations are list-scheduled onto the configured executor
// slots to advance the cluster's virtual clock.
func (c *Cluster) RunStage(name string, numTasks int, run func(tc *TaskContext) error) (StageStats, error) {
	_, stats, err := c.runStage(name, numTasks, run, false, false)
	return stats, err
}

// RunRecoveryStage runs a patch-up stage that regenerates output lost with a
// failed executor (the recompute callbacks registered via
// ShuffleService.SetRecompute use it). Its tasks' commit-gated side effects
// land normally — the lost blocks must come back — but their work-counter
// deltas are not re-added to the metrics registry: the output was already
// counted when it first committed, and recovery cost is accounted
// separately through RecomputedTasks/RecomputedStages and virtual time.
func (c *Cluster) RunRecoveryStage(name string, numTasks int, run func(tc *TaskContext) error) (StageStats, error) {
	_, stats, err := c.runStage(name, numTasks, run, false, true)
	return stats, err
}

// RunStageResults is RunStage for stages whose tasks produce a value: each
// task publishes via TaskContext.PublishResult, and the returned slice holds
// the committed (winning-attempt) value per task. With speculation enabled,
// rival attempts of a task may run concurrently; collecting results through
// the commit gate keeps exactly one writer per task.
func (c *Cluster) RunStageResults(name string, numTasks int, run func(tc *TaskContext) error) ([]any, StageStats, error) {
	return c.runStage(name, numTasks, run, true, false)
}

func (c *Cluster) runStage(name string, numTasks int, run func(tc *TaskContext) error, collect, recovery bool) ([]any, StageStats, error) {
	c.mu.Lock()
	c.stageCounter++
	stageID := c.stageCounter
	c.mu.Unlock()
	c.tracer.Emit(Event{Kind: EventStageStart, Stage: name, StageID: stageID, Task: -1, Attempt: -1, Executor: -1})

	start := time.Now()
	sr := c.newStageRun(stageID, name, numTasks, run, collect, recovery)

	// The stage loop: each submission point first draws the deterministic
	// executor-kill decisions, then runs every not-yet-committed task on
	// the surviving executors. Attempts that die on a FetchFailedError
	// (their shuffle read touched map outputs lost with an executor) do
	// not fail the stage; instead the lost map partitions are recomputed
	// from lineage via the shuffle's recompute callback and the stage is
	// resubmitted, up to MaxStageRetries times before aborting with a
	// typed *StageAbortedError.
	var abortErr error
	resubmits := 0
	for {
		sr.live = c.injectExecutorFailures(stageID, resubmits)
		sr.executeAttempt()
		failed := sr.fetchFailures()
		if len(failed) == 0 {
			break
		}
		if resubmits >= c.cfg.MaxStageRetries {
			abortErr = &StageAbortedError{Stage: name, StageID: stageID,
				Resubmits: resubmits, Cause: failed[0]}
			break
		}
		resubmits++
		if err := c.repairShuffles(name, stageID, resubmits, failed); err != nil {
			abortErr = err
			break
		}
		sr.resetForResubmit()
	}

	stats := StageStats{
		Name:         name,
		Tasks:        numTasks,
		RealDuration: time.Since(start),
		TaskStats:    make([]TaskStat, numTasks),
	}
	stats.Resubmits = resubmits
	var firstErr error
	anySpec := false
	for i := range sr.states {
		st := &sr.states[i]
		ts := &stats.TaskStats[i]
		ts.Task = i
		ts.Executor = st.executor
		ts.Attempts = st.primary.attempts + st.spec.attempts
		ts.Failures = st.primary.failures + st.spec.failures
		ts.ComputeDuration = time.Duration(st.primary.computeNS + st.spec.computeNS)
		ts.ShuffleWaitDuration = time.Duration(st.primary.shuffleWaitNS + st.spec.shuffleWaitNS)
		ts.Speculative = st.specLaunched
		ts.SpecWinner = st.specWinner
		ts.Stragglers = st.primary.stragglers + st.spec.stragglers
		ts.SpecSlot = -1
		if st.spec.ran && st.spec.attempts > 0 {
			anySpec = true
		}
		if st.specLaunched {
			stats.SpeculativeTasks++
		}
		if st.specWinner {
			stats.SpeculativeWins++
		}
		stats.Attempts += ts.Attempts
		stats.Failures += ts.Failures
		stats.ComputeDuration += ts.ComputeDuration
		stats.ShuffleWaitDuration += ts.ShuffleWaitDuration
		stats.Stragglers += ts.Stragglers
		if !st.committed && firstErr == nil {
			err := st.primary.err
			if err == nil {
				err = ErrTaskFailed
			}
			firstErr = fmt.Errorf("stage %q task %d: %w", name, i, err)
		}
	}
	if abortErr != nil {
		// Exhausted lineage recovery outranks the per-task fetch errors
		// the final attempt left behind.
		firstErr = abortErr
	}

	// The virtual schedule places tasks onto the slots of the executors
	// that survived to the stage's final attempt: losing hosts shrinks the
	// stage's effective parallelism.
	liveSlots := len(sr.live) * c.cfg.CoresPerExecutor
	if liveSlots < 1 {
		liveSlots = c.SlotCount()
	}
	var makespanNS float64
	if !anySpec {
		// No speculative copies actually ran: the plain list schedule,
		// bit-identical to a cluster without speculation.
		durations := make([]float64, numTasks)
		for i := range sr.states {
			durations[i] = sr.states[i].primary.virtualNS
		}
		var slots []int
		makespanNS, slots = c.listScheduleSlotsN(durations, liveSlots)
		for i := range stats.TaskStats {
			stats.TaskStats[i].Slot = slots[i]
			stats.TaskStats[i].VirtualDuration = time.Duration(durations[i])
		}
	} else {
		inputs := make([]specTaskInput, numTasks)
		for i := range sr.states {
			st := &sr.states[i]
			inputs[i] = specTaskInput{
				primaryNS:  st.primary.virtualNS,
				specNS:     st.spec.virtualNS,
				hasSpec:    st.spec.ran && st.spec.attempts > 0,
				specCanWin: st.spec.succeeded,
			}
		}
		var places []specPlacement
		makespanNS, places = c.speculativeScheduleN(inputs, liveSlots)
		for i, p := range places {
			ts := &stats.TaskStats[i]
			ts.Slot = p.slot
			ts.SpecSlot = p.specSlot
			ts.VirtualDuration = time.Duration(p.primaryChargedNS + p.specChargedNS)
			if p.specSlot >= 0 {
				if p.specVirtualWinner {
					ts.WastedDuration = time.Duration(p.primaryChargedNS)
				} else {
					ts.WastedDuration = time.Duration(p.specChargedNS)
				}
				stats.WastedDuration += ts.WastedDuration
			}
		}
	}

	overheadNS := c.cfg.SchedulerOverheadMS * 1e6 * (1 + 0.05*float64(c.cfg.Executors))
	stats.VirtualDuration = time.Duration(makespanNS + overheadNS)
	stats.SchedulerOverhead = time.Duration(overheadNS)

	c.mu.Lock()
	c.virtualNS += makespanNS + overheadNS
	c.mu.Unlock()

	// Failed stages are accounted like successful ones: their attempts,
	// failures, and virtual time happened and must not vanish from the
	// metrics or the stage history.
	c.metrics.StagesRun.Add(1)
	c.metrics.TasksLaunched.Add(int64(stats.Attempts))
	c.metrics.TaskFailures.Add(int64(stats.Failures))
	c.metrics.SpeculativeWins.Add(int64(stats.SpeculativeWins))
	c.metrics.SpeculativeWastedNS.Add(int64(stats.WastedDuration))
	c.history.add(stats)
	if c.tracer.Enabled() {
		e := Event{Kind: EventStageEnd, Stage: name, StageID: stageID,
			Task: -1, Attempt: -1, Executor: -1, VirtualNS: makespanNS + overheadNS}
		if firstErr != nil {
			e.Detail = firstErr.Error()
		}
		c.tracer.Emit(e)
	}
	return sr.results, stats, firstErr
}

// repairShuffles handles one round of fetch failures: for every shuffle the
// failed stage attempt could not read, it recomputes exactly the lost map
// partitions through the recompute callback the producing layer registered,
// then the caller resubmits the stage. A shuffle without a callback is
// unrecoverable and aborts the stage with a typed error.
func (c *Cluster) repairShuffles(name string, stageID, resubmit int, failures []*FetchFailedError) error {
	// One repair per shuffle even if many reduce tasks tripped on it.
	seen := make(map[int]bool)
	for _, ff := range failures {
		if seen[ff.ShuffleID] {
			continue
		}
		seen[ff.ShuffleID] = true
		lost := c.shuffles.LostMapTasks(ff.ShuffleID)
		if len(lost) == 0 {
			continue // repaired already (shared parent fixed in an inner stage)
		}
		rec := c.shuffles.recomputeFor(ff.ShuffleID)
		if rec == nil {
			return &StageAbortedError{Stage: name, StageID: stageID, Resubmits: resubmit - 1,
				Cause: fmt.Errorf("shuffle %d has no recompute callback: %w", ff.ShuffleID, ff)}
		}
		if c.tracer.Enabled() {
			c.tracer.Emit(Event{Kind: EventStageResubmit, Stage: name, StageID: stageID,
				Task: -1, Attempt: -1, Executor: -1,
				Detail: fmt.Sprintf("resubmit %d: recomputing %d lost map outputs of shuffle %d",
					resubmit, len(lost), ff.ShuffleID)})
		}
		c.metrics.RecomputedStages.Add(1)
		if err := rec(lost); err != nil {
			return &StageAbortedError{Stage: name, StageID: stageID, Resubmits: resubmit - 1,
				Cause: fmt.Errorf("recomputing shuffle %d map outputs %v: %w", ff.ShuffleID, lost, err)}
		}
		c.metrics.RecomputedTasks.Add(int64(len(lost)))
	}
	return nil
}

// injectFailure decides deterministically whether the given attempt fails.
// Speculative attempts draw from a salted stream so enabling speculation
// never perturbs the primary chains' failure pattern for a given seed.
func (c *Cluster) injectFailure(stageID, task, attempt int, speculative bool) bool {
	if c.cfg.FailureRate <= 0 {
		return false
	}
	h := fnv.New64a()
	if speculative {
		fmt.Fprintf(h, "%d/%d/%d/%d/spec", c.cfg.Seed, stageID, task, attempt)
	} else {
		fmt.Fprintf(h, "%d/%d/%d/%d", c.cfg.Seed, stageID, task, attempt)
	}
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	return rng.Float64() < c.cfg.FailureRate
}

// injectStraggler decides deterministically whether the given attempt is an
// injected straggler. The stream is independent of injectFailure's.
// Speculative attempts are never stragglers: the injected pathology models a
// slow or contended executor, and a speculative copy is by construction
// relaunched on a different, healthy one — that asymmetry is the reason
// speculation works at all.
func (c *Cluster) injectStraggler(stageID, task, attempt int, speculative bool) bool {
	if c.cfg.StragglerRate <= 0 || speculative {
		return false
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "straggler/%d/%d/%d/%d", c.cfg.Seed, stageID, task, attempt)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	return rng.Float64() < c.cfg.StragglerRate
}

// Broadcast charges the virtual cost of distributing bytes to every
// executor. Like Spark's torrent broadcast, distribution is tree-shaped:
// executors that already hold the data re-serve it, so the critical path is
// logarithmic in the executor count rather than linear.
func (c *Cluster) Broadcast(bytes int64) {
	perHop := float64(bytes)/(c.cfg.NetworkMBps*1e6)*1e9 + c.cfg.ShuffleLatencyMS*1e6
	depth := math.Ceil(math.Log2(float64(c.cfg.Executors) + 1))
	c.mu.Lock()
	c.virtualNS += perHop * depth
	c.mu.Unlock()
	c.metrics.BroadcastBytes.Add(bytes)
	c.tracer.Emit(Event{Kind: EventBroadcast, Task: -1, Attempt: -1, Executor: -1,
		Bytes: bytes, VirtualNS: perHop * depth})
}

// SlotCount returns the number of virtual task slots (executors x cores).
func (c *Cluster) SlotCount() int {
	return c.cfg.Executors * c.cfg.CoresPerExecutor
}
