// Package cluster simulates a Spark-style compute cluster on a single
// machine. It is the execution substrate underneath the RDD layer
// (internal/rdd): it runs stages of tasks on a bounded worker pool, injects
// and recovers from task failures, caches materialized partitions in a
// memory-bounded block store, moves shuffle data between stages, and keeps a
// *virtual clock* so that executor-scaling experiments (paper Figs. 8-10)
// reproduce cluster behaviour independently of the host's core count.
//
// # Virtual time
//
// Every task measures its real single-threaded compute time and may add
// virtual time for simulated I/O (shuffle reads, broadcasts). After a stage's
// tasks have all really executed (in parallel, up to the host's cores), the
// scheduler *list-schedules* the per-task virtual durations onto
// Executors x CoresPerExecutor virtual slots in task order. The stage's
// virtual makespan is the maximum slot finish time. Summed across stages this
// yields the execution times reported by the experiment harness: a 5-executor
// configuration and a 25-executor configuration run the same real
// computation, but their virtual makespans differ exactly as the paper's
// cluster wall-clock would.
//
// # Fault tolerance
//
// Each task attempt may be failed by the injector with probability
// Config.FailureRate (deterministic per seed/stage/task/attempt). Failed
// attempts discard their buffered shuffle output — like Spark, output commits
// only on success — and are retried up to MaxTaskRetries times, charging the
// wasted attempt's virtual time to the slot that ran it. Tasks whose declared
// working set exceeds executor memory suffer a spill penalty and, when
// PressureTimeouts is set, a simulated timeout failure on their first attempt
// (reproducing the paper's observation for cluster numbers below 25).
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Config describes the simulated cluster.
type Config struct {
	// Executors is the number of executor processes (paper: Spark executors).
	Executors int
	// CoresPerExecutor is the number of concurrent task slots per executor.
	CoresPerExecutor int
	// MemoryPerExecutorMB bounds both the block cache share and the task
	// working-set pressure threshold of each executor.
	MemoryPerExecutorMB int
	// NetworkMBps is the simulated per-executor network bandwidth used to
	// charge virtual time for shuffle reads and broadcasts.
	NetworkMBps float64
	// ShuffleLatencyMS is the fixed virtual latency charged per fetched
	// shuffle block.
	ShuffleLatencyMS float64
	// SchedulerOverheadMS is the fixed virtual cost charged per stage, plus
	// a per-executor coordination share (task dispatch, result pickup).
	SchedulerOverheadMS float64
	// FailureRate is the probability that any given task attempt fails.
	FailureRate float64
	// MaxTaskRetries bounds the retries after a task's first attempt: a
	// task runs at most 1+MaxTaskRetries attempts before the stage fails
	// with ErrTaskFailed. Injected failures, pressure timeouts, and
	// genuine task errors all consume the same retry budget, as in Spark.
	MaxTaskRetries int
	// SpillPenalty multiplies a task's virtual duration when its working
	// set exceeds executor memory (simulated spill/GC thrash).
	SpillPenalty float64
	// PressureTimeouts injects a timeout failure on the first attempt of
	// any task under memory pressure, as the paper reports for small
	// cluster numbers.
	PressureTimeouts bool
	// Seed drives all stochastic behaviour (fault injection).
	Seed int64
	// RealParallelism caps worker goroutines; 0 means GOMAXPROCS.
	RealParallelism int
	// Scheduling selects the task-to-slot placement policy. The paper
	// names executor load balancing as future work (§7); LPT implements
	// it.
	Scheduling SchedulePolicy
	// Trace enables the structured stage/task event log (see Tracer).
	// Disabled tracing costs one atomic load per would-be event.
	Trace bool
	// TraceCapacity bounds the trace event ring; 0 selects the default
	// (65536 events). When the ring wraps, the oldest events are dropped
	// and counted.
	TraceCapacity int
}

// SchedulePolicy is the task placement policy of the virtual scheduler.
type SchedulePolicy int

const (
	// ScheduleFIFO assigns tasks to the earliest-available slot in
	// submission order — Spark's default behaviour and the paper's
	// baseline.
	ScheduleFIFO SchedulePolicy = iota
	// ScheduleLPT sorts tasks longest-first before placement (longest
	// processing time). With skewed task durations — e.g. uneven Voronoi
	// cluster sizes, which the paper identifies as its scalability
	// limiter — LPT produces tighter makespans.
	ScheduleLPT
)

func (p SchedulePolicy) String() string {
	if p == ScheduleLPT {
		return "lpt"
	}
	return "fifo"
}

// Defaults fills unset fields with production-like values.
func (c Config) withDefaults() Config {
	if c.Executors <= 0 {
		c.Executors = 4
	}
	if c.CoresPerExecutor <= 0 {
		c.CoresPerExecutor = 1
	}
	if c.MemoryPerExecutorMB <= 0 {
		c.MemoryPerExecutorMB = 1024
	}
	if c.NetworkMBps <= 0 {
		c.NetworkMBps = 1000
	}
	if c.ShuffleLatencyMS < 0 {
		c.ShuffleLatencyMS = 0
	}
	if c.MaxTaskRetries <= 0 {
		c.MaxTaskRetries = 4
	}
	if c.SpillPenalty < 1 {
		c.SpillPenalty = 3
	}
	if c.RealParallelism <= 0 {
		c.RealParallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// Cluster is a simulated Spark cluster. All methods are safe for concurrent
// use by tasks of a running job; jobs themselves are submitted sequentially.
type Cluster struct {
	cfg Config

	mu           sync.Mutex
	virtualNS    float64
	stageCounter int

	blocks   *BlockStore
	shuffles *ShuffleService
	metrics  *Metrics
	history  stageHistory
	tracer   *Tracer
}

// New creates a cluster with the given configuration.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{cfg: cfg}
	c.blocks = newBlockStore(int64(cfg.Executors)*int64(cfg.MemoryPerExecutorMB)*mb, c)
	c.shuffles = newShuffleService()
	c.metrics = &Metrics{}
	c.tracer = NewTracer(cfg.TraceCapacity)
	if cfg.Trace {
		c.tracer.Enable()
	}
	return c
}

const mb = int64(1 << 20)

// Config returns the (defaulted) configuration the cluster runs with.
func (c *Cluster) Config() Config { return c.cfg }

// Metrics returns the cluster's metrics registry.
func (c *Cluster) Metrics() *Metrics { return c.metrics }

// Blocks returns the cluster's block store (partition cache).
func (c *Cluster) Blocks() *BlockStore { return c.blocks }

// VirtualElapsed returns the total virtual wall-clock accumulated across all
// stages run so far.
func (c *Cluster) VirtualElapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.virtualNS)
}

// ResetClock zeroes the virtual clock (metrics and caches are kept).
func (c *Cluster) ResetClock() {
	c.mu.Lock()
	c.virtualNS = 0
	c.mu.Unlock()
}

// StageStats reports one stage's execution, including the virtual-time
// breakdown and a per-task view. Stages that fail (a task exhausted its
// retries) are still fully accounted: their stats are recorded in the
// metrics registry and stage history before RunStage returns the error.
type StageStats struct {
	Name     string
	Tasks    int
	Attempts int
	Failures int
	// VirtualDuration is the stage's virtual makespan (list-scheduled
	// onto the executor slots) plus scheduler overhead.
	VirtualDuration time.Duration
	// ComputeDuration sums the tasks' measured single-threaded compute
	// time across all attempts (before list scheduling).
	ComputeDuration time.Duration
	// ShuffleWaitDuration sums the tasks' simulated shuffle-fetch waits
	// across all attempts.
	ShuffleWaitDuration time.Duration
	// SchedulerOverhead is the fixed per-stage coordination cost included
	// in VirtualDuration.
	SchedulerOverhead time.Duration
	RealDuration      time.Duration
	// TaskStats breaks the stage down per task, including the virtual
	// slot each task was list-scheduled onto.
	TaskStats []TaskStat
}

// TaskStat is one task's share of a stage, summed over all its attempts.
type TaskStat struct {
	Task     int
	Attempts int
	Failures int
	// Slot is the virtual executor slot (0..Executors*CoresPerExecutor-1)
	// the task's duration was list-scheduled onto.
	Slot int
	// ComputeDuration is the measured single-threaded compute time.
	ComputeDuration time.Duration
	// ShuffleWaitDuration is the simulated shuffle-fetch wait.
	ShuffleWaitDuration time.Duration
	// VirtualDuration is the total virtual time charged to the slot
	// (compute + simulated I/O, across all attempts, after any spill
	// penalty).
	VirtualDuration time.Duration
}

// ErrTaskFailed is returned when a task exhausts its retry budget.
var ErrTaskFailed = errors.New("cluster: task failed after max retries")

// RunStage executes numTasks tasks, each invoking run with a fresh
// TaskContext. Tasks run really in parallel (bounded by RealParallelism) and
// their virtual durations are list-scheduled onto the configured executor
// slots to advance the cluster's virtual clock.
func (c *Cluster) RunStage(name string, numTasks int, run func(tc *TaskContext) error) (StageStats, error) {
	c.mu.Lock()
	c.stageCounter++
	stageID := c.stageCounter
	c.mu.Unlock()
	c.tracer.Emit(Event{Kind: EventStageStart, Stage: name, StageID: stageID, Task: -1, Attempt: -1})

	start := time.Now()
	outcomes := make([]taskOutcome, numTasks)

	sem := make(chan struct{}, c.cfg.RealParallelism)
	var wg sync.WaitGroup
	for i := 0; i < numTasks; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(task int) {
			defer wg.Done()
			defer func() { <-sem }()
			outcomes[task] = c.runTask(stageID, name, task, run)
		}(i)
	}
	wg.Wait()

	stats := StageStats{
		Name:         name,
		Tasks:        numTasks,
		RealDuration: time.Since(start),
		TaskStats:    make([]TaskStat, numTasks),
	}
	durations := make([]float64, numTasks)
	var firstErr error
	for i, o := range outcomes {
		durations[i] = o.virtualNS
		stats.Attempts += o.attempts
		stats.Failures += o.failures
		stats.ComputeDuration += time.Duration(o.computeNS)
		stats.ShuffleWaitDuration += time.Duration(o.shuffleWaitNS)
		stats.TaskStats[i] = TaskStat{
			Task:                i,
			Attempts:            o.attempts,
			Failures:            o.failures,
			ComputeDuration:     time.Duration(o.computeNS),
			ShuffleWaitDuration: time.Duration(o.shuffleWaitNS),
			VirtualDuration:     time.Duration(o.virtualNS),
		}
		if o.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("stage %q task %d: %w", name, i, o.err)
		}
	}

	makespanNS, slots := c.listScheduleSlots(durations)
	for i := range stats.TaskStats {
		stats.TaskStats[i].Slot = slots[i]
	}
	overheadNS := c.cfg.SchedulerOverheadMS * 1e6 * (1 + 0.05*float64(c.cfg.Executors))
	stats.VirtualDuration = time.Duration(makespanNS + overheadNS)
	stats.SchedulerOverhead = time.Duration(overheadNS)

	c.mu.Lock()
	c.virtualNS += makespanNS + overheadNS
	c.mu.Unlock()

	// Failed stages are accounted like successful ones: their attempts,
	// failures, and virtual time happened and must not vanish from the
	// metrics or the stage history.
	c.metrics.StagesRun.Add(1)
	c.metrics.TasksLaunched.Add(int64(stats.Attempts))
	c.metrics.TaskFailures.Add(int64(stats.Failures))
	c.history.add(stats)
	if c.tracer.Enabled() {
		e := Event{Kind: EventStageEnd, Stage: name, StageID: stageID,
			Task: -1, Attempt: -1, VirtualNS: makespanNS + overheadNS}
		if firstErr != nil {
			e.Detail = firstErr.Error()
		}
		c.tracer.Emit(e)
	}
	return stats, firstErr
}

// taskOutcome is what one task (across all its attempts) reports back to
// RunStage.
type taskOutcome struct {
	virtualNS     float64
	computeNS     float64
	shuffleWaitNS float64
	attempts      int
	failures      int
	err           error
}

// runTask executes one task, retrying failed attempts (injected, pressure
// timeouts, and genuine errors alike) up to MaxTaskRetries times after the
// first attempt. Every attempt's virtual time is charged to the task's slot;
// only a successful attempt commits its buffered side effects.
func (c *Cluster) runTask(stageID int, stageName string, task int, run func(tc *TaskContext) error) taskOutcome {
	var out taskOutcome
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxTaskRetries; attempt++ {
		tc := &TaskContext{cluster: c, stageID: stageID, stageName: stageName, task: task, attempt: attempt}
		c.tracer.Emit(Event{Kind: EventTaskStart, Stage: stageName, StageID: stageID, Task: task, Attempt: attempt})
		realStart := time.Now()
		err := run(tc)
		computeNS := float64(time.Since(realStart).Nanoseconds())
		virtual := computeNS + tc.virtualNS + tc.shuffleWaitNS

		pressured := false
		if tc.workingSetBytes > int64(c.cfg.MemoryPerExecutorMB)*mb {
			virtual *= c.cfg.SpillPenalty
			pressured = true
			c.metrics.PressureEvents.Add(1)
		}
		out.attempts = attempt + 1
		out.virtualNS += virtual
		out.computeNS += computeNS
		out.shuffleWaitNS += tc.shuffleWaitNS

		if err != nil {
			out.failures++
			lastErr = err
			tc.discard()
			if c.tracer.Enabled() {
				c.tracer.Emit(Event{Kind: EventTaskError, Stage: stageName, StageID: stageID,
					Task: task, Attempt: attempt, VirtualNS: virtual, Detail: err.Error()})
			}
			continue
		}

		kind := EventKind("")
		if c.injectFailure(stageID, task, attempt) {
			kind = EventTaskFailInjected
		}
		if pressured && c.cfg.PressureTimeouts && attempt == 0 {
			// Simulated executor timeout under memory pressure.
			kind = EventTaskPressureTimeout
		}
		if kind != "" {
			out.failures++
			tc.discard()
			c.tracer.Emit(Event{Kind: kind, Stage: stageName, StageID: stageID,
				Task: task, Attempt: attempt, VirtualNS: virtual})
			continue
		}

		tc.commit()
		c.tracer.Emit(Event{Kind: EventTaskSuccess, Stage: stageName, StageID: stageID,
			Task: task, Attempt: attempt, VirtualNS: virtual})
		return out
	}
	if lastErr != nil {
		out.err = fmt.Errorf("%w: %w", ErrTaskFailed, lastErr)
	} else {
		out.err = ErrTaskFailed
	}
	return out
}

// injectFailure decides deterministically whether the given attempt fails.
func (c *Cluster) injectFailure(stageID, task, attempt int) bool {
	if c.cfg.FailureRate <= 0 {
		return false
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%d/%d/%d", c.cfg.Seed, stageID, task, attempt)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	return rng.Float64() < c.cfg.FailureRate
}

// listSchedule assigns task virtual durations to executor slots, always
// picking the earliest-available slot, and returns the makespan in
// nanoseconds. Placement order follows the configured policy: submission
// order (FIFO) or longest-first (LPT load balancing).
func (c *Cluster) listSchedule(durations []float64) float64 {
	makespan, _ := c.listScheduleSlots(durations)
	return makespan
}

// listScheduleSlots is listSchedule returning also the slot each task was
// placed on, indexed by the task's original (submission-order) position.
func (c *Cluster) listScheduleSlots(durations []float64) (float64, []int) {
	slots := c.cfg.Executors * c.cfg.CoresPerExecutor
	if slots < 1 {
		slots = 1
	}
	order := make([]int, len(durations))
	for i := range order {
		order[i] = i
	}
	if c.cfg.Scheduling == ScheduleLPT {
		sort.SliceStable(order, func(a, b int) bool {
			return durations[order[a]] > durations[order[b]]
		})
	}
	avail := make([]float64, slots)
	assigned := make([]int, len(durations))
	for _, task := range order {
		// Earliest-available slot; linear scan is fine for slot counts
		// in the hundreds.
		best := 0
		for s := 1; s < slots; s++ {
			if avail[s] < avail[best] {
				best = s
			}
		}
		avail[best] += durations[task]
		assigned[task] = best
	}
	makespan := 0.0
	for _, t := range avail {
		if t > makespan {
			makespan = t
		}
	}
	return makespan, assigned
}

// Broadcast charges the virtual cost of distributing bytes to every
// executor. Like Spark's torrent broadcast, distribution is tree-shaped:
// executors that already hold the data re-serve it, so the critical path is
// logarithmic in the executor count rather than linear.
func (c *Cluster) Broadcast(bytes int64) {
	perHop := float64(bytes)/(c.cfg.NetworkMBps*1e6)*1e9 + c.cfg.ShuffleLatencyMS*1e6
	depth := math.Ceil(math.Log2(float64(c.cfg.Executors) + 1))
	c.mu.Lock()
	c.virtualNS += perHop * depth
	c.mu.Unlock()
	c.metrics.BroadcastBytes.Add(bytes)
	c.tracer.Emit(Event{Kind: EventBroadcast, Task: -1, Attempt: -1,
		Bytes: bytes, VirtualNS: perHop * depth})
}

// SlotCount returns the number of virtual task slots (executors x cores).
func (c *Cluster) SlotCount() int {
	return c.cfg.Executors * c.cfg.CoresPerExecutor
}
