// Package cluster simulates a Spark-style compute cluster on a single
// machine. It is the execution substrate underneath the RDD layer
// (internal/rdd): it runs stages of tasks on a bounded worker pool, injects
// and recovers from task failures, caches materialized partitions in a
// memory-bounded block store, moves shuffle data between stages, and keeps a
// *virtual clock* so that executor-scaling experiments (paper Figs. 8-10)
// reproduce cluster behaviour independently of the host's core count.
//
// # Virtual time
//
// Every task measures its real single-threaded compute time and may add
// virtual time for simulated I/O (shuffle reads, broadcasts). After a stage's
// tasks have all really executed (in parallel, up to the host's cores), the
// scheduler *list-schedules* the per-task virtual durations onto
// Executors x CoresPerExecutor virtual slots in task order. The stage's
// virtual makespan is the maximum slot finish time. Summed across stages this
// yields the execution times reported by the experiment harness: a 5-executor
// configuration and a 25-executor configuration run the same real
// computation, but their virtual makespans differ exactly as the paper's
// cluster wall-clock would.
//
// # Fault tolerance
//
// Each task attempt may be failed by the injector with probability
// Config.FailureRate (deterministic per seed/stage/task/attempt). Failed
// attempts discard their buffered shuffle output — like Spark, output commits
// only on success — and are retried up to MaxTaskRetries times, charging the
// wasted attempt's virtual time to the slot that ran it. Tasks whose declared
// working set exceeds executor memory suffer a spill penalty and, when
// PressureTimeouts is set, a simulated timeout failure on their first attempt
// (reproducing the paper's observation for cluster numbers below 25).
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Config describes the simulated cluster.
type Config struct {
	// Executors is the number of executor processes (paper: Spark executors).
	Executors int
	// CoresPerExecutor is the number of concurrent task slots per executor.
	CoresPerExecutor int
	// MemoryPerExecutorMB bounds both the block cache share and the task
	// working-set pressure threshold of each executor.
	MemoryPerExecutorMB int
	// NetworkMBps is the simulated per-executor network bandwidth used to
	// charge virtual time for shuffle reads and broadcasts.
	NetworkMBps float64
	// ShuffleLatencyMS is the fixed virtual latency charged per fetched
	// shuffle block.
	ShuffleLatencyMS float64
	// SchedulerOverheadMS is the fixed virtual cost charged per stage, plus
	// a per-executor coordination share (task dispatch, result pickup).
	SchedulerOverheadMS float64
	// FailureRate is the probability that any given task attempt fails.
	FailureRate float64
	// MaxTaskRetries bounds attempts per task (first run + retries).
	MaxTaskRetries int
	// SpillPenalty multiplies a task's virtual duration when its working
	// set exceeds executor memory (simulated spill/GC thrash).
	SpillPenalty float64
	// PressureTimeouts injects a timeout failure on the first attempt of
	// any task under memory pressure, as the paper reports for small
	// cluster numbers.
	PressureTimeouts bool
	// Seed drives all stochastic behaviour (fault injection).
	Seed int64
	// RealParallelism caps worker goroutines; 0 means GOMAXPROCS.
	RealParallelism int
	// Scheduling selects the task-to-slot placement policy. The paper
	// names executor load balancing as future work (§7); LPT implements
	// it.
	Scheduling SchedulePolicy
}

// SchedulePolicy is the task placement policy of the virtual scheduler.
type SchedulePolicy int

const (
	// ScheduleFIFO assigns tasks to the earliest-available slot in
	// submission order — Spark's default behaviour and the paper's
	// baseline.
	ScheduleFIFO SchedulePolicy = iota
	// ScheduleLPT sorts tasks longest-first before placement (longest
	// processing time). With skewed task durations — e.g. uneven Voronoi
	// cluster sizes, which the paper identifies as its scalability
	// limiter — LPT produces tighter makespans.
	ScheduleLPT
)

func (p SchedulePolicy) String() string {
	if p == ScheduleLPT {
		return "lpt"
	}
	return "fifo"
}

// Defaults fills unset fields with production-like values.
func (c Config) withDefaults() Config {
	if c.Executors <= 0 {
		c.Executors = 4
	}
	if c.CoresPerExecutor <= 0 {
		c.CoresPerExecutor = 1
	}
	if c.MemoryPerExecutorMB <= 0 {
		c.MemoryPerExecutorMB = 1024
	}
	if c.NetworkMBps <= 0 {
		c.NetworkMBps = 1000
	}
	if c.ShuffleLatencyMS < 0 {
		c.ShuffleLatencyMS = 0
	}
	if c.MaxTaskRetries <= 0 {
		c.MaxTaskRetries = 4
	}
	if c.SpillPenalty < 1 {
		c.SpillPenalty = 3
	}
	if c.RealParallelism <= 0 {
		c.RealParallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// Cluster is a simulated Spark cluster. All methods are safe for concurrent
// use by tasks of a running job; jobs themselves are submitted sequentially.
type Cluster struct {
	cfg Config

	mu           sync.Mutex
	virtualNS    float64
	stageCounter int

	blocks   *BlockStore
	shuffles *ShuffleService
	metrics  *Metrics
	history  stageHistory
}

// New creates a cluster with the given configuration.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{cfg: cfg}
	c.blocks = newBlockStore(int64(cfg.Executors)*int64(cfg.MemoryPerExecutorMB)*mb, c)
	c.shuffles = newShuffleService()
	c.metrics = &Metrics{}
	return c
}

const mb = int64(1 << 20)

// Config returns the (defaulted) configuration the cluster runs with.
func (c *Cluster) Config() Config { return c.cfg }

// Metrics returns the cluster's metrics registry.
func (c *Cluster) Metrics() *Metrics { return c.metrics }

// Blocks returns the cluster's block store (partition cache).
func (c *Cluster) Blocks() *BlockStore { return c.blocks }

// VirtualElapsed returns the total virtual wall-clock accumulated across all
// stages run so far.
func (c *Cluster) VirtualElapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.virtualNS)
}

// ResetClock zeroes the virtual clock (metrics and caches are kept).
func (c *Cluster) ResetClock() {
	c.mu.Lock()
	c.virtualNS = 0
	c.mu.Unlock()
}

// StageStats reports one stage's execution.
type StageStats struct {
	Name            string
	Tasks           int
	Attempts        int
	Failures        int
	VirtualDuration time.Duration
	RealDuration    time.Duration
}

// ErrTaskFailed is returned when a task exhausts its retry budget.
var ErrTaskFailed = errors.New("cluster: task failed after max retries")

// RunStage executes numTasks tasks, each invoking run with a fresh
// TaskContext. Tasks run really in parallel (bounded by RealParallelism) and
// their virtual durations are list-scheduled onto the configured executor
// slots to advance the cluster's virtual clock.
func (c *Cluster) RunStage(name string, numTasks int, run func(tc *TaskContext) error) (StageStats, error) {
	c.mu.Lock()
	c.stageCounter++
	stageID := c.stageCounter
	c.mu.Unlock()

	start := time.Now()
	durations := make([]float64, numTasks)
	attempts := make([]int, numTasks)
	failures := make([]int, numTasks)
	errs := make([]error, numTasks)

	sem := make(chan struct{}, c.cfg.RealParallelism)
	var wg sync.WaitGroup
	for i := 0; i < numTasks; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(task int) {
			defer wg.Done()
			defer func() { <-sem }()
			durations[task], attempts[task], failures[task], errs[task] = c.runTask(stageID, task, run)
		}(i)
	}
	wg.Wait()

	stats := StageStats{Name: name, Tasks: numTasks, RealDuration: time.Since(start)}
	for i := 0; i < numTasks; i++ {
		if errs[i] != nil {
			return stats, fmt.Errorf("stage %q task %d: %w", name, i, errs[i])
		}
		stats.Attempts += attempts[i]
		stats.Failures += failures[i]
	}

	makespanNS := c.listSchedule(durations)
	overheadNS := c.cfg.SchedulerOverheadMS * 1e6 * (1 + 0.05*float64(c.cfg.Executors))
	stats.VirtualDuration = time.Duration(makespanNS + overheadNS)

	c.mu.Lock()
	c.virtualNS += makespanNS + overheadNS
	c.mu.Unlock()

	c.metrics.StagesRun.Add(1)
	c.metrics.TasksLaunched.Add(int64(stats.Attempts))
	c.metrics.TaskFailures.Add(int64(stats.Failures))
	c.history.add(stats)
	return stats, nil
}

// runTask executes one task with retries; it returns the task's total virtual
// duration (all attempts), the number of attempts, failures, and the final
// error (nil on success).
func (c *Cluster) runTask(stageID, task int, run func(tc *TaskContext) error) (float64, int, int, error) {
	var totalVirtual float64
	for attempt := 0; attempt < c.cfg.MaxTaskRetries; attempt++ {
		tc := &TaskContext{cluster: c, stageID: stageID, task: task, attempt: attempt}
		realStart := time.Now()
		err := run(tc)
		computeNS := float64(time.Since(realStart).Nanoseconds())
		virtual := computeNS + tc.virtualNS

		pressured := false
		if tc.workingSetBytes > int64(c.cfg.MemoryPerExecutorMB)*mb {
			virtual *= c.cfg.SpillPenalty
			pressured = true
			c.metrics.PressureEvents.Add(1)
		}

		if err != nil {
			totalVirtual += virtual
			return totalVirtual, attempt + 1, attempt + 1, err
		}

		fail := c.injectFailure(stageID, task, attempt)
		if pressured && c.cfg.PressureTimeouts && attempt == 0 {
			fail = true // simulated executor timeout under memory pressure
		}
		if fail {
			totalVirtual += virtual
			tc.discard()
			continue
		}

		tc.commit()
		totalVirtual += virtual
		return totalVirtual, attempt + 1, attempt, nil
	}
	return totalVirtual, c.cfg.MaxTaskRetries, c.cfg.MaxTaskRetries, ErrTaskFailed
}

// injectFailure decides deterministically whether the given attempt fails.
func (c *Cluster) injectFailure(stageID, task, attempt int) bool {
	if c.cfg.FailureRate <= 0 {
		return false
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%d/%d/%d", c.cfg.Seed, stageID, task, attempt)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	return rng.Float64() < c.cfg.FailureRate
}

// listSchedule assigns task virtual durations to executor slots, always
// picking the earliest-available slot, and returns the makespan in
// nanoseconds. Placement order follows the configured policy: submission
// order (FIFO) or longest-first (LPT load balancing).
func (c *Cluster) listSchedule(durations []float64) float64 {
	slots := c.cfg.Executors * c.cfg.CoresPerExecutor
	if slots < 1 {
		slots = 1
	}
	if c.cfg.Scheduling == ScheduleLPT {
		sorted := make([]float64, len(durations))
		copy(sorted, durations)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		durations = sorted
	}
	avail := make([]float64, slots)
	for _, d := range durations {
		// Earliest-available slot; linear scan is fine for slot counts
		// in the hundreds.
		best := 0
		for s := 1; s < slots; s++ {
			if avail[s] < avail[best] {
				best = s
			}
		}
		avail[best] += d
	}
	makespan := 0.0
	for _, t := range avail {
		if t > makespan {
			makespan = t
		}
	}
	return makespan
}

// Broadcast charges the virtual cost of distributing bytes to every
// executor. Like Spark's torrent broadcast, distribution is tree-shaped:
// executors that already hold the data re-serve it, so the critical path is
// logarithmic in the executor count rather than linear.
func (c *Cluster) Broadcast(bytes int64) {
	perHop := float64(bytes)/(c.cfg.NetworkMBps*1e6)*1e9 + c.cfg.ShuffleLatencyMS*1e6
	depth := math.Ceil(math.Log2(float64(c.cfg.Executors) + 1))
	c.mu.Lock()
	c.virtualNS += perHop * depth
	c.mu.Unlock()
	c.metrics.BroadcastBytes.Add(bytes)
}

// SlotCount returns the number of virtual task slots (executors x cores).
func (c *Cluster) SlotCount() int {
	return c.cfg.Executors * c.cfg.CoresPerExecutor
}
