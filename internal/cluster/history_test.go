package cluster

import (
	"fmt"
	"testing"
)

func TestStageHistoryRecordsStages(t *testing.T) {
	c := New(Config{Executors: 2})
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("stage-%d", i)
		if _, err := c.RunStage(name, 2, func(tc *TaskContext) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	h := c.StageHistory()
	if len(h) != 3 {
		t.Fatalf("history length = %d, want 3", len(h))
	}
	for i, s := range h {
		if want := fmt.Sprintf("stage-%d", i); s.Name != want {
			t.Errorf("history[%d].Name = %q, want %q (oldest first)", i, s.Name, want)
		}
		if s.Tasks != 2 {
			t.Errorf("history[%d].Tasks = %d", i, s.Tasks)
		}
	}
}

func TestStageHistoryBounded(t *testing.T) {
	c := New(Config{Executors: 1})
	for i := 0; i < historyCap+10; i++ {
		if _, err := c.RunStage(fmt.Sprintf("s%d", i), 1, func(tc *TaskContext) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	h := c.StageHistory()
	if len(h) != historyCap {
		t.Fatalf("history length = %d, want %d", len(h), historyCap)
	}
	// Oldest retained entry should be stage 10.
	if h[0].Name != "s10" {
		t.Errorf("oldest = %q, want s10", h[0].Name)
	}
	if h[len(h)-1].Name != fmt.Sprintf("s%d", historyCap+9) {
		t.Errorf("newest = %q", h[len(h)-1].Name)
	}
}

func TestStageHistoryEmpty(t *testing.T) {
	c := New(Config{})
	if h := c.StageHistory(); h != nil {
		t.Errorf("fresh cluster history = %v", h)
	}
}
