package cluster

import "testing"

func TestBlockStorePutGet(t *testing.T) {
	c := New(Config{Executors: 1, MemoryPerExecutorMB: 1})
	bs := c.Blocks()
	id := BlockID{RDD: 1, Partition: 0}
	if _, ok := bs.Get(id); ok {
		t.Fatal("empty store returned a block")
	}
	if !bs.Put(id, []int{1, 2, 3}, 100, 0) {
		t.Fatal("Put rejected a small block")
	}
	got, ok := bs.Get(id)
	if !ok {
		t.Fatal("block not found after Put")
	}
	if v := got.([]int); len(v) != 3 || v[0] != 1 {
		t.Errorf("got %v", v)
	}
	if bs.Used() != 100 || bs.Len() != 1 {
		t.Errorf("Used=%d Len=%d", bs.Used(), bs.Len())
	}
}

func TestBlockStoreReplace(t *testing.T) {
	c := New(Config{Executors: 1, MemoryPerExecutorMB: 1})
	bs := c.Blocks()
	id := BlockID{RDD: 1, Partition: 0}
	bs.Put(id, "a", 100, 0)
	bs.Put(id, "b", 200, 0)
	if bs.Used() != 200 || bs.Len() != 1 {
		t.Errorf("after replace Used=%d Len=%d, want 200, 1", bs.Used(), bs.Len())
	}
	got, _ := bs.Get(id)
	if got.(string) != "b" {
		t.Errorf("got %v, want b", got)
	}
}

func TestBlockStoreLRUEviction(t *testing.T) {
	c := New(Config{Executors: 1, MemoryPerExecutorMB: 1}) // 1MB capacity
	bs := c.Blocks()
	half := int64(600 << 10) // 600KB; two don't fit
	a := BlockID{RDD: 1, Partition: 0}
	b := BlockID{RDD: 1, Partition: 1}
	bs.Put(a, "a", half, 0)
	bs.Put(b, "b", half, 0) // evicts a (LRU)
	if _, ok := bs.Get(a); ok {
		t.Error("block a should have been evicted")
	}
	if _, ok := bs.Get(b); !ok {
		t.Error("block b should be resident")
	}
	if c.Metrics().BlockEvictions.Load() != 1 {
		t.Errorf("evictions = %d, want 1", c.Metrics().BlockEvictions.Load())
	}
}

func TestBlockStoreLRURecencyOrder(t *testing.T) {
	c := New(Config{Executors: 1, MemoryPerExecutorMB: 1})
	bs := c.Blocks()
	third := int64(400 << 10)
	a := BlockID{RDD: 1, Partition: 0}
	b := BlockID{RDD: 1, Partition: 1}
	d := BlockID{RDD: 1, Partition: 2}
	bs.Put(a, "a", third, 0)
	bs.Put(b, "b", third, 0)
	bs.Get(a)                // touch a: now b is LRU
	bs.Put(d, "d", third, 0) // evicts b
	if _, ok := bs.Get(b); ok {
		t.Error("b should have been evicted (LRU after touch of a)")
	}
	if _, ok := bs.Get(a); !ok {
		t.Error("a should survive (recently used)")
	}
}

func TestBlockStoreRejectsOversized(t *testing.T) {
	c := New(Config{Executors: 1, MemoryPerExecutorMB: 1})
	bs := c.Blocks()
	if bs.Put(BlockID{RDD: 1}, "x", bs.Capacity()+1, 0) {
		t.Error("Put should reject blocks larger than capacity")
	}
}

func TestBlockStoreRemoveAndDropAll(t *testing.T) {
	c := New(Config{Executors: 1, MemoryPerExecutorMB: 10})
	bs := c.Blocks()
	a := BlockID{RDD: 1, Partition: 0}
	b := BlockID{RDD: 1, Partition: 1}
	bs.Put(a, "a", 10, 0)
	bs.Put(b, "b", 10, 0)
	bs.Remove(a)
	if _, ok := bs.Get(a); ok {
		t.Error("a not removed")
	}
	if bs.Used() != 10 {
		t.Errorf("Used=%d, want 10", bs.Used())
	}
	bs.DropAll()
	if bs.Len() != 0 || bs.Used() != 0 {
		t.Errorf("DropAll left Len=%d Used=%d", bs.Len(), bs.Used())
	}
}

func TestBlockStoreConcurrentAccess(t *testing.T) {
	c := New(Config{Executors: 4, MemoryPerExecutorMB: 1})
	bs := c.Blocks()
	_, err := c.RunStage("hammer", 32, func(tc *TaskContext) error {
		id := BlockID{RDD: tc.Task() % 8, Partition: tc.Task() % 4}
		bs.Put(id, tc.Task(), 1000, 0)
		bs.Get(id)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
