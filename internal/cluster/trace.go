package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind classifies a trace event.
type EventKind string

// Trace event kinds. Stage and task events come from the scheduler, block
// events from the block store (plus lineage recomputes reported by the RDD
// layer), and broadcast events from Cluster.Broadcast.
const (
	EventStageStart          EventKind = "stage_start"
	EventStageEnd            EventKind = "stage_end"
	EventTaskStart           EventKind = "task_start"
	EventTaskSuccess         EventKind = "task_success"
	EventTaskFailInjected    EventKind = "task_fail_injected"
	EventTaskPressureTimeout EventKind = "task_pressure_timeout"
	EventTaskError           EventKind = "task_error"
	// EventTaskSpecLaunch marks the straggler monitor launching a
	// speculative duplicate chain (Attempt is -1: it announces the chain,
	// not one attempt). EventTaskStraggler marks an attempt slowed by the
	// straggler injector. EventTaskCancelled marks an attempt abandoned
	// because a rival attempt of the same task won the commit race; its
	// Outcome is "loser", and the winning attempt's task_success carries
	// Outcome "winner".
	EventTaskSpecLaunch EventKind = "task_spec_launch"
	EventTaskStraggler  EventKind = "task_straggler"
	EventTaskCancelled  EventKind = "task_cancelled"
	EventBlockCached    EventKind = "block_cached"
	EventBlockHit       EventKind = "block_hit"
	EventBlockMiss      EventKind = "block_miss"
	EventBlockEvict     EventKind = "block_evict"
	EventBlockRecompute EventKind = "block_recompute"
	EventBroadcast      EventKind = "broadcast"
	// Executor-loss recovery events. executor_lost marks a killed executor
	// (its Detail counts the dropped map outputs and cached partitions);
	// executor_blacklisted marks one crossing the repeated-failure
	// threshold into exponential backoff. fetch_failed is emitted by a
	// reduce attempt whose shuffle read touched lost map outputs, and
	// stage_resubmit marks the scheduler recomputing those outputs from
	// lineage before re-running the stage. checkpoint marks one partition
	// materialized to reliable storage by rdd.Checkpoint.
	EventExecutorLost        EventKind = "executor_lost"
	EventExecutorBlacklisted EventKind = "executor_blacklisted"
	EventFetchFailed         EventKind = "fetch_failed"
	EventStageResubmit       EventKind = "stage_resubmit"
	EventCheckpoint          EventKind = "checkpoint"
	// Memory-bounded engine events. spill marks one block written to the
	// disk overflow tier (Bytes is the framed, compressed on-disk size;
	// Executor the host whose local disk holds it); spill_load marks its
	// read-back. stage_coalesce marks adaptive post-shuffle partition
	// coalescing deciding a reduce-side plan (Detail carries the
	// before/after partition counts and target).
	EventSpill         EventKind = "spill"
	EventSpillLoad     EventKind = "spill_load"
	EventStageCoalesce EventKind = "stage_coalesce"
)

// Event is one structured record of the cluster's execution. Task and
// Attempt are -1 for events that are not bound to a task (stage lifecycle,
// broadcasts, block-store activity observed outside a traced task).
type Event struct {
	// Seq is a monotonically increasing sequence number; events with
	// higher Seq were recorded later.
	Seq int64 `json:"seq"`
	// Kind is the event type.
	Kind EventKind `json:"kind"`
	// Stage is the stage name (with the RDD layer's lineage tag) for
	// stage/task events; empty otherwise.
	Stage string `json:"stage,omitempty"`
	// StageID is the cluster-wide stage counter value, 0 when unbound.
	StageID int `json:"stageID,omitempty"`
	// Task is the task index within its stage, -1 when unbound.
	Task int `json:"task"`
	// Attempt is the zero-based attempt number, -1 when unbound.
	Attempt int `json:"attempt"`
	// Executor is the executor the event's subject ran on (task-level
	// events) or refers to (executor lifecycle events); -1 when the event
	// is not bound to an executor. Always exported, so recovery events in
	// JSON traces are attributable to hosts.
	Executor int `json:"executor"`
	// Bytes carries the payload size for shuffle/block/broadcast events.
	Bytes int64 `json:"bytes,omitempty"`
	// VirtualNS is the virtual duration charged by the event's subject
	// (e.g. a finished task attempt or stage), in nanoseconds.
	VirtualNS float64 `json:"virtualNS,omitempty"`
	// Speculative marks events of a speculative duplicate attempt chain.
	Speculative bool `json:"speculative,omitempty"`
	// Outcome is set on commit-race resolutions: "winner" on the
	// task_success of a raced task, "loser" on the task_cancelled of the
	// rival attempt.
	Outcome string `json:"outcome,omitempty"`
	// Detail is a free-form annotation: block ids ("rdd3/p7"), error
	// strings, failure causes.
	Detail string `json:"detail,omitempty"`
}

// Tracer is a bounded, concurrency-safe ring buffer of Events. A disabled
// tracer (the default) drops events with a single atomic load on the hot
// path, so leaving tracing compiled into the scheduler is free in production
// runs. When the ring wraps, the oldest events are overwritten and counted
// in Dropped.
type Tracer struct {
	enabled atomic.Bool

	mu      sync.Mutex
	events  []Event
	next    int
	full    bool
	seq     int64
	dropped int64
}

// defaultTraceCapacity bounds the event ring when no capacity is configured.
const defaultTraceCapacity = 1 << 16

// NewTracer creates a disabled tracer with the given ring capacity
// (<= 0 selects the default).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = defaultTraceCapacity
	}
	return &Tracer{events: make([]Event, capacity)}
}

// Enable turns event recording on.
func (t *Tracer) Enable() { t.enabled.Store(true) }

// Disable turns event recording off; already-recorded events are kept.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Enabled reports whether events are being recorded. Callers that must build
// an Event (formatting a Detail string, say) should check this first to keep
// the disabled path allocation-free.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Emit records one event, stamping its sequence number. It is a no-op on a
// disabled tracer.
func (t *Tracer) Emit(e Event) {
	if !t.enabled.Load() {
		return
	}
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	if t.full {
		t.dropped++
	}
	t.events[t.next] = e
	t.next = (t.next + 1) % len(t.events)
	if t.next == 0 {
		t.full = true
	}
	t.mu.Unlock()
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.events)
	}
	return t.next
}

// Dropped returns how many events were overwritten after the ring filled.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot copies the retained events, oldest first.
func (t *Tracer) Snapshot() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Event
	if t.full {
		out = append(out, t.events[t.next:]...)
	}
	out = append(out, t.events[:t.next]...)
	return out
}

// Reset discards all retained events and the dropped counter; the sequence
// counter keeps advancing so Seq stays globally monotone.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.next = 0
	t.full = false
	t.dropped = 0
	t.mu.Unlock()
}

// traceExport is the JSON document WriteJSON produces.
type traceExport struct {
	DroppedEvents int64   `json:"droppedEvents"`
	Events        []Event `json:"events"`
}

// WriteJSON exports the retained events (oldest first) as one indented JSON
// document: {"droppedEvents": n, "events": [...]}.
func (t *Tracer) WriteJSON(w io.Writer) error {
	doc := traceExport{DroppedEvents: t.Dropped(), Events: t.Snapshot()}
	if doc.Events == nil {
		doc.Events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Tracer returns the cluster's trace event sink.
func (c *Cluster) Tracer() *Tracer { return c.tracer }

// SetTracer replaces the cluster's trace sink, e.g. to share one event log
// across engine resets (experiments recreate the cluster per configuration
// sweep). It must be called while no job is running.
func (c *Cluster) SetTracer(t *Tracer) {
	if t != nil {
		c.tracer = t
	}
}

// WriteStageSummary renders a human-readable per-stage table: task counts,
// attempts, failures, and the virtual-time breakdown into compute,
// shuffle-wait, and scheduler overhead. Stages are printed oldest first.
func WriteStageSummary(w io.Writer, stages []StageStats) {
	fmt.Fprintf(w, "%-44s %6s %8s %5s %5s %12s %12s %12s %10s %10s\n",
		"stage", "tasks", "attempts", "fail", "spec", "virtual", "compute", "shuf-wait", "overhead", "wasted")
	var totVirtual, totCompute, totShuffle, totOverhead, totWasted time.Duration
	var totTasks, totAttempts, totFailures, totSpec int
	for _, s := range stages {
		name := s.Name
		if len(name) > 44 {
			name = name[:41] + "..."
		}
		fmt.Fprintf(w, "%-44s %6d %8d %5d %5d %12s %12s %12s %10s %10s\n",
			name, s.Tasks, s.Attempts, s.Failures, s.SpeculativeTasks,
			roundDur(s.VirtualDuration), roundDur(s.ComputeDuration),
			roundDur(s.ShuffleWaitDuration), roundDur(s.SchedulerOverhead),
			roundDur(s.WastedDuration))
		totVirtual += s.VirtualDuration
		totCompute += s.ComputeDuration
		totShuffle += s.ShuffleWaitDuration
		totOverhead += s.SchedulerOverhead
		totWasted += s.WastedDuration
		totTasks += s.Tasks
		totAttempts += s.Attempts
		totFailures += s.Failures
		totSpec += s.SpeculativeTasks
	}
	fmt.Fprintf(w, "%-44s %6d %8d %5d %5d %12s %12s %12s %10s %10s\n",
		fmt.Sprintf("TOTAL (%d stages)", len(stages)), totTasks, totAttempts, totFailures, totSpec,
		roundDur(totVirtual), roundDur(totCompute), roundDur(totShuffle),
		roundDur(totOverhead), roundDur(totWasted))
}

func roundDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}
