package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCoalesceGroupsProperties is the quick.Check property suite for the
// adaptive coalescer's planning function. For random partition byte sizes and
// targets it asserts the two invariants everything downstream relies on:
//
//  1. Ceiling: a merged group (>= 2 members) never exceeds the target. A
//     singleton may — an input partition already above the target is not the
//     coalescer's to split — but no merge ever *creates* an over-target
//     partition when its inputs were below it.
//  2. Conservation: every input partition index appears in exactly one group,
//     in ascending order across and within groups, so total bytes and records
//     are preserved exactly and reduce-side input order is untouched.
func TestCoalesceGroupsProperties(t *testing.T) {
	prop := func(sizes []uint16, targetSeed uint16) bool {
		bytes := make([]int64, len(sizes))
		for i, s := range sizes {
			bytes[i] = int64(s)
		}
		target := int64(targetSeed)%8192 + 1
		groups := coalesceGroups(bytes, target)

		next := 0
		for _, g := range groups {
			if len(g) == 0 {
				return false
			}
			var sum int64
			for _, p := range g {
				if p != next { // exactly-once, ascending, consecutive
					return false
				}
				next++
				sum += bytes[p]
			}
			if len(g) > 1 && sum > target {
				return false // merging pushed a group over the ceiling
			}
		}
		return next == len(bytes)
	}
	if err := quick.Check(prop, &quick.Config{
		MaxCount: 2000,
		Rand:     rand.New(rand.NewSource(42)),
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCoalesceGroupsGreedy pins concrete plans: undersized runs merge up to
// the target, oversized partitions stand alone.
func TestCoalesceGroupsGreedy(t *testing.T) {
	groups := coalesceGroups([]int64{10, 10, 10, 100, 5, 5}, 30)
	want := [][]int{{0, 1, 2}, {3}, {4, 5}}
	if len(groups) != len(want) {
		t.Fatalf("groups = %v, want %v", groups, want)
	}
	for i := range want {
		if len(groups[i]) != len(want[i]) {
			t.Fatalf("groups = %v, want %v", groups, want)
		}
		for j := range want[i] {
			if groups[i][j] != want[i][j] {
				t.Fatalf("groups = %v, want %v", groups, want)
			}
		}
	}
}

// TestCoalescePlan covers the cluster-level planner: disabled and
// single-partition shuffles return nil, a real merge counts the eliminated
// partitions and conserves bytes/records through partitionSizes.
func TestCoalescePlan(t *testing.T) {
	t.Run("disabled", func(t *testing.T) {
		c := New(Config{})
		defer c.Close()
		id := c.Shuffles().Register()
		if plan := c.CoalescePlan(id, 4, "s"); plan != nil {
			t.Fatalf("plan = %v with coalescing disabled, want nil", plan)
		}
	})

	t.Run("merges-and-counts", func(t *testing.T) {
		c := New(Config{TargetPartitionMB: 1})
		defer c.Close()
		id := c.Shuffles().Register()
		// Four reduce partitions, ~quarter-target each: all four merge.
		const mb4 = int64(1) << 18
		for rid := 0; rid < 4; rid++ {
			c.Shuffles().write(id, rid, 0, rid, 0, []int64{1}, 1, mb4)
		}
		plan := c.CoalescePlan(id, 4, "s")
		if len(plan) != 1 || len(plan[0]) != 4 {
			t.Fatalf("plan = %v, want one group of four", plan)
		}
		if got := c.Metrics().Snapshot().CoalescedPartitions; got != 3 {
			t.Fatalf("CoalescedPartitions = %d, want 3", got)
		}
		// Conservation: the plan's groups cover the same bytes and records
		// partitionSizes reports for the ungrouped shuffle.
		bytes, records := c.Shuffles().partitionSizes(id, 4)
		var wantB, wantR, gotB, gotR int64
		for rid := 0; rid < 4; rid++ {
			wantB += bytes[rid]
			wantR += records[rid]
		}
		for _, g := range plan {
			for _, p := range g {
				gotB += bytes[p]
				gotR += records[p]
			}
		}
		if gotB != wantB || gotR != wantR {
			t.Fatalf("plan covers %d bytes / %d records, want %d / %d", gotB, gotR, wantB, wantR)
		}
	})

	t.Run("no-merge-possible", func(t *testing.T) {
		c := New(Config{TargetPartitionMB: 1})
		defer c.Close()
		id := c.Shuffles().Register()
		for rid := 0; rid < 3; rid++ {
			c.Shuffles().write(id, rid, 0, rid, 0, []int64{1}, 1, 2*int64(1)<<20)
		}
		if plan := c.CoalescePlan(id, 3, "s"); plan != nil {
			t.Fatalf("plan = %v for all-oversized partitions, want nil", plan)
		}
	})
}
