package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// The chaos harness: seeded randomized stage programs run on the cluster
// under every combination of {fault injection, injected stragglers,
// speculation on/off, executor count} and must produce partition contents,
// published results, and committed counters bit-identical to a sequential
// oracle that never retries, never speculates, and never races. This is the
// same differential discipline the RDD layer's differential suite applies to
// operator fusion, aimed here at attempt races: any path by which a losing
// or failed attempt leaks a shuffle write, a result, or a counter delta
// shows up as a diff against the oracle.
//
// Determinism rests on three engine properties the harness exercises
// together: commit-on-success side effects (task.go), idempotent
// (mapTask, seq)-keyed shuffle buckets fetched in sorted order (shuffle.go),
// and first-completion-wins commits under speculation (speculation.go).

// chaosOp is one stage (or map+reduce stage pair) of a chaos program.
type chaosOp struct {
	kind     int // 0 = map, 1 = shuffle
	mulA     int64
	addB     int64
	newParts int
}

// chaosProgram is a randomized pipeline over [][]int64 partitions.
type chaosProgram struct {
	initial [][]int64
	ops     []chaosOp
}

func genChaosProgram(seed int64) chaosProgram {
	rng := rand.New(rand.NewSource(seed))
	parts := 2 + rng.Intn(5)
	initial := make([][]int64, parts)
	for i := range initial {
		vals := make([]int64, rng.Intn(9))
		for j := range vals {
			vals[j] = rng.Int63n(1000)
		}
		initial[i] = vals
	}
	ops := make([]chaosOp, 3+rng.Intn(3))
	for i := range ops {
		switch rng.Intn(2) {
		case 0:
			ops[i] = chaosOp{kind: 0, mulA: 1 + rng.Int63n(9), addB: rng.Int63n(100)}
		default:
			ops[i] = chaosOp{kind: 1, newParts: 2 + rng.Intn(5)}
		}
	}
	return chaosProgram{initial: initial, ops: ops}
}

// chaosExpect is the oracle's prediction of the committed counters.
type chaosExpect struct {
	records      int64
	comparisons  int64
	shufRecords  int64
	shufWritten  int64
	shufRead     int64
	finalState   [][]int64
	finalResults []int64 // per final partition: checksum published by the last map
}

// chaosOracle executes the program sequentially: single attempt per task, no
// failures, no duplicates. Shuffle reduce partitions concatenate map-output
// buckets in (map task, write seq) order — exactly the engine's sorted fetch.
func chaosOracle(p chaosProgram) chaosExpect {
	var e chaosExpect
	state := make([][]int64, len(p.initial))
	for i, part := range p.initial {
		state[i] = append([]int64(nil), part...)
	}
	for _, op := range p.ops {
		switch op.kind {
		case 0:
			for i, part := range state {
				e.records += int64(len(part))
				e.comparisons += int64(len(part))*2 + 1
				out := make([]int64, len(part))
				for j, v := range part {
					out[j] = v*op.mulA + op.addB
				}
				state[i] = out
			}
		case 1:
			// Map side: partition values by v mod newParts; each map task
			// writes its non-empty buckets in bucket order, so within one
			// map task seq increases with the bucket index.
			next := make([][]int64, op.newParts)
			for _, part := range state { // map tasks in task order
				e.records += int64(len(part))
				buckets := make([][]int64, op.newParts)
				for _, v := range part {
					b := int(v % int64(op.newParts))
					buckets[b] = append(buckets[b], v)
				}
				for b, bucket := range buckets {
					if len(bucket) == 0 {
						continue
					}
					e.shufRecords += int64(len(bucket))
					e.shufWritten += int64(len(bucket)) * 8
					next[b] = append(next[b], bucket...)
				}
			}
			for _, part := range next {
				e.records += int64(len(part))
				e.shufRead += int64(len(part)) * 8
			}
			state = next
		}
	}
	e.finalState = state
	e.finalResults = make([]int64, len(state))
	for i, part := range state {
		var sum int64
		for _, v := range part {
			sum += v*31 + 7
		}
		e.finalResults[i] = sum
	}
	return e
}

// runChaosProgram executes the program on a real cluster, returning the
// final partition state and the per-partition checksum published through the
// commit-gated result path.
func runChaosProgram(c *Cluster, p chaosProgram) ([][]int64, []int64, error) {
	state := make([][]int64, len(p.initial))
	for i, part := range p.initial {
		state[i] = append([]int64(nil), part...)
	}
	for oi, op := range p.ops {
		switch op.kind {
		case 0:
			in := state
			results, _, err := c.RunStageResults(fmt.Sprintf("chaos.map#%d", oi), len(in), func(tc *TaskContext) error {
				part := in[tc.Task()]
				tc.AddRecords(int64(len(part)))
				tc.AddComparisons(int64(len(part))*2 + 1)
				out := make([]int64, len(part))
				for j, v := range part {
					out[j] = v*op.mulA + op.addB
				}
				tc.PublishResult(out)
				return nil
			})
			if err != nil {
				return nil, nil, err
			}
			for i, r := range results {
				state[i] = r.([]int64)
			}
		case 1:
			in := state
			shID := c.Shuffles().Register()
			// The codec lets the memory-budget tiers spill these blocks;
			// without budgets it is inert.
			c.Shuffles().SetCodec(shID, GobCodec[[]int64]())
			// mapOutput writes one parent partition's buckets under an
			// explicit map-task identity so executor-loss recomputation
			// reproduces the original block keys.
			mapOutput := func(tc *TaskContext, part int) error {
				vals := in[part]
				tc.AddRecords(int64(len(vals)))
				buckets := make([][]int64, op.newParts)
				for _, v := range vals {
					b := int(v % int64(op.newParts))
					buckets[b] = append(buckets[b], v)
				}
				for b, bucket := range buckets {
					if len(bucket) == 0 {
						continue
					}
					tc.WriteShuffleAs(shID, b, part, bucket, int64(len(bucket)), int64(len(bucket))*8)
				}
				return nil
			}
			c.Shuffles().SetRecompute(shID, func(lost []int) error {
				_, rerr := c.RunRecoveryStage(fmt.Sprintf("chaos.shufmap#%d.recompute", oi),
					len(lost), func(tc *TaskContext) error {
						return mapOutput(tc, lost[tc.Task()])
					})
				return rerr
			})
			_, err := c.RunStage(fmt.Sprintf("chaos.shufmap#%d", oi), len(in), func(tc *TaskContext) error {
				return mapOutput(tc, tc.Task())
			})
			if err != nil {
				return nil, nil, err
			}
			c.Shuffles().MarkDone(shID)
			results, _, err := c.RunStageResults(fmt.Sprintf("chaos.reduce#%d", oi), op.newParts, func(tc *TaskContext) error {
				blocks, ferr := tc.FetchShuffle(shID, tc.Task())
				if ferr != nil {
					return ferr
				}
				var out []int64
				for _, blk := range blocks {
					out = append(out, blk.([]int64)...)
				}
				tc.AddRecords(int64(len(out)))
				tc.PublishResult(out)
				return nil
			})
			if err != nil {
				return nil, nil, err
			}
			state = make([][]int64, op.newParts)
			for i, r := range results {
				state[i], _ = r.([]int64)
			}
			c.Shuffles().Unregister(shID)
		}
	}
	results, _, err := c.RunStageResults("chaos.checksum", len(state), func(tc *TaskContext) error {
		var sum int64
		for _, v := range state[tc.Task()] {
			sum += v*31 + 7
		}
		tc.PublishResult(sum)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sums := make([]int64, len(results))
	for i, r := range results {
		sums[i] = r.(int64)
	}
	return state, sums, nil
}

// chaosMemTiers is the harness's memory-budget axis: unbounded keeps every
// shuffle block resident (and must record zero spills), tight leaves room for
// a handful of 64-byte blocks per executor, and oneblock is the pathological
// budget where a single maximal block fills an executor and almost every
// commit spills. Spilling must be invisible to everything the oracle checks.
var chaosMemTiers = []struct {
	name   string
	budget int64 // bytes per executor; 0 = unbounded
}{
	{"unbounded", 0},
	{"tight", 256},
	{"oneblock", 64},
}

// chaosConfig builds the cluster configuration for one combo. MaxTaskRetries
// is set high enough that retry exhaustion is effectively impossible, so
// pass/fail stays deterministic per seed (a speculative chain rescuing an
// exhausted primary would otherwise depend on real-time racing).
func chaosConfig(seed int64, executors int, failureRate, execFail float64, stragglers, speculation bool, memBudget int64) Config {
	cfg := Config{
		Executors:             executors,
		CoresPerExecutor:      1,
		Seed:                  seed,
		FailureRate:           failureRate,
		ExecutorFailureRate:   execFail,
		MaxTaskRetries:        12,
		Speculation:           speculation,
		SpeculationQuantile:   0.5,
		SpeculationMultiplier: 1.2,
		StragglerVirtualMS:    40,
		StragglerRealDelayMS:  2,
	}
	if stragglers {
		cfg.StragglerRate = 0.3
	}
	if memBudget > 0 {
		cfg.SpillToDisk = true
		cfg.MemoryPerExecutorBytes = memBudget
	}
	return cfg
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestChaos is the deterministic chaos harness: 10 seeded programs x
// {1,4,8 executors} x {fault injection off/on} x {executor kills off/on} x
// {stragglers off/on} x {speculation off/on} x {unbounded/tight/oneblock
// memory budget} = 1440 combinations, every one bit-identical to the
// sequential oracle. Executor kills exercise the full recovery path —
// host-local shuffle loss, FetchFailed, lineage resubmission — and the
// committed counters must still match the oracle exactly: patch-up
// recomputation runs in recovery mode and contributes no work-counter
// deltas. The memory tiers force shuffle blocks through the disk overflow
// tier; spilling must be visible only in the SpillEvents/SpilledBytes
// counters (accounted separately, like the recovery counters), never in
// partition contents, published results, or work counters. A combo that
// exhausts MaxStageRetries must fail with the typed StageAbortedError, and
// must fail identically when re-run. Short mode trims the seed set, keeping
// the full grid shape.
func TestChaos(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		prog := genChaosProgram(seed * 7919)
		want := chaosOracle(prog)
		for _, executors := range []int{1, 4, 8} {
			for _, failureRate := range []float64{0, 0.3} {
				for _, execFail := range []float64{0, 0.3} {
					for _, stragglers := range []bool{false, true} {
						for _, speculation := range []bool{false, true} {
							for _, tier := range chaosMemTiers {
								name := fmt.Sprintf("seed=%d/exec=%d/fail=%v/kill=%v/strag=%v/spec=%v/mem=%s",
									seed, executors, failureRate, execFail, stragglers, speculation, tier.name)
								cfg := chaosConfig(seed, executors, failureRate, execFail, stragglers, speculation, tier.budget)
								unbounded := tier.budget == 0
								t.Run(name, func(t *testing.T) {
									t.Parallel()
									c := New(cfg)
									defer c.Close()
									state, sums, err := runChaosProgram(c, prog)
									if err != nil {
										if execFail == 0 {
											t.Fatalf("program failed without executor kills: %v", err)
										}
										// Retry exhaustion is the only legitimate
										// failure, it must carry the typed abort,
										// and a re-run must abort the same stage.
										// (The FetchFailed cause may name a
										// different lost subset: which outputs
										// are still missing at the final fetch
										// depends on real-time attempt races.)
										var abort *StageAbortedError
										if !errors.As(err, &abort) {
											t.Fatalf("program failed without typed stage abort: %v", err)
										}
										c2 := New(cfg)
										defer c2.Close()
										_, _, err2 := runChaosProgram(c2, prog)
										var abort2 *StageAbortedError
										if err2 == nil || !errors.As(err2, &abort2) || abort.Stage != abort2.Stage {
											t.Fatalf("abort not deterministic:\n  first: %v\n second: %v", err, err2)
										}
										return
									}
									if len(state) != len(want.finalState) {
										t.Fatalf("final partitions = %d, want %d", len(state), len(want.finalState))
									}
									for i := range state {
										if !int64sEqual(state[i], want.finalState[i]) {
											t.Errorf("partition %d = %v, want %v", i, state[i], want.finalState[i])
										}
									}
									for i := range sums {
										if sums[i] != want.finalResults[i] {
											t.Errorf("published checksum %d = %d, want %d", i, sums[i], want.finalResults[i])
										}
									}
									m := c.Metrics().Snapshot()
									// Counters are commit-gated: retried, cancelled,
									// and speculation-losing attempts must not leak.
									if m.RecordsProcessed != want.records {
										t.Errorf("RecordsProcessed = %d, want %d", m.RecordsProcessed, want.records)
									}
									if m.Comparisons != want.comparisons {
										t.Errorf("Comparisons = %d, want %d", m.Comparisons, want.comparisons)
									}
									if m.ShuffleRecordsWritten != want.shufRecords {
										t.Errorf("ShuffleRecordsWritten = %d, want %d", m.ShuffleRecordsWritten, want.shufRecords)
									}
									if m.ShuffleBytesWritten != want.shufWritten {
										t.Errorf("ShuffleBytesWritten = %d, want %d", m.ShuffleBytesWritten, want.shufWritten)
									}
									if m.ShuffleBytesRead != want.shufRead {
										t.Errorf("ShuffleBytesRead = %d, want %d", m.ShuffleBytesRead, want.shufRead)
									}
									if !stragglers && m.StragglersInjected != 0 {
										t.Errorf("StragglersInjected = %d with injection off", m.StragglersInjected)
									}
									if !speculation && m.SpeculativeTasksLaunched != 0 {
										t.Errorf("SpeculativeTasksLaunched = %d with speculation off", m.SpeculativeTasksLaunched)
									}
									// Spill counters are accounted separately, like
									// the recovery counters: they may vary with
									// attempt races, but must be zero without a
									// budget and never bleed into work counters
									// (asserted bit-exact above).
									if unbounded && (m.SpillEvents != 0 || m.SpilledBytes != 0) {
										t.Errorf("SpillEvents/SpilledBytes = %d/%d with no memory budget",
											m.SpillEvents, m.SpilledBytes)
									}
									if m.SpillEvents == 0 && m.SpilledBytes != 0 {
										t.Errorf("SpilledBytes = %d with zero SpillEvents", m.SpilledBytes)
									}
								})
							}
						}
					}
				}
			}
		}
	}
}

// TestChaosMemoryPressureSpills pins that the pathological one-block budget
// actually drives the overflow tier on a shuffle-heavy program (the grid
// above only proves spilling is *harmless*): a single-executor, fault-free
// run must both spill and stay bit-identical to the oracle.
func TestChaosMemoryPressureSpills(t *testing.T) {
	prog := chaosProgram{
		initial: [][]int64{{1, 2, 3, 4, 5, 6, 7, 8}, {9, 10, 11, 12, 13, 14, 15, 16}},
		ops: []chaosOp{
			{kind: 1, newParts: 2},
			{kind: 0, mulA: 3, addB: 1},
			{kind: 1, newParts: 3},
		},
	}
	want := chaosOracle(prog)
	c := New(chaosConfig(1, 1, 0, 0, false, false, 64))
	defer c.Close()
	state, _, err := runChaosProgram(c, prog)
	if err != nil {
		t.Fatalf("program failed: %v", err)
	}
	for i := range state {
		if !int64sEqual(state[i], want.finalState[i]) {
			t.Errorf("partition %d = %v, want %v", i, state[i], want.finalState[i])
		}
	}
	m := c.Metrics().Snapshot()
	if m.SpillEvents == 0 || m.SpilledBytes == 0 {
		t.Fatalf("SpillEvents/SpilledBytes = %d/%d, want both > 0 under the one-block budget",
			m.SpillEvents, m.SpilledBytes)
	}
	if m.RecordsProcessed != want.records || m.ShuffleBytesRead != want.shufRead {
		t.Errorf("work counters diverged under spilling: records %d/%d, shufRead %d/%d",
			m.RecordsProcessed, want.records, m.ShuffleBytesRead, want.shufRead)
	}
}

// TestChaosComboCount pins the harness's combination count to the
// acceptance floor (>= 720 in full mode: the original 240-combo floor
// tripled by the memory-budget axis).
func TestChaosComboCount(t *testing.T) {
	combos := 10 * 3 * 2 * 2 * 2 * 2 * len(chaosMemTiers)
	if combos < 720 {
		t.Fatalf("chaos grid has %d combos, need >= 720", combos)
	}
}

// TestRealParallelBitIdentical is the chaos harness's real-parallel axis:
// the same seeded programs, fault/kill/straggler/speculation/memory grid,
// but executed on the work-stealing goroutine-per-core pool
// (Config.RealParallel) with 1 and 3 workers. Work-stealing reorders task
// execution arbitrarily — a stolen task runs on a different goroutine, with
// a different WorkerScratch, interleaved with different neighbors — yet
// partition contents, published results, and committed counters must stay
// bit-identical to the same sequential oracle the virtual-time scheduler is
// held to, because every observable side effect is commit-gated and every
// injection decision is hashed from stable identities rather than arrival
// order. Aborting combos must abort deterministically, exactly as in
// TestChaos.
func TestRealParallelBitIdentical(t *testing.T) {
	seeds := 3
	if testing.Short() {
		seeds = 1
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		prog := genChaosProgram(seed * 7919)
		want := chaosOracle(prog)
		for _, executors := range []int{1, 4} {
			for _, failureRate := range []float64{0, 0.3} {
				for _, execFail := range []float64{0, 0.3} {
					for _, stragglers := range []bool{false, true} {
						for _, speculation := range []bool{false, true} {
							for _, tier := range chaosMemTiers[:2] { // unbounded, tight
								for _, workers := range []int{1, 3} {
									name := fmt.Sprintf("seed=%d/exec=%d/fail=%v/kill=%v/strag=%v/spec=%v/mem=%s/workers=%d",
										seed, executors, failureRate, execFail, stragglers, speculation, tier.name, workers)
									cfg := chaosConfig(seed, executors, failureRate, execFail, stragglers, speculation, tier.budget)
									cfg.RealParallel = true
									cfg.RealWorkers = workers
									t.Run(name, func(t *testing.T) {
										t.Parallel()
										c := New(cfg)
										defer c.Close()
										state, sums, err := runChaosProgram(c, prog)
										if err != nil {
											if execFail == 0 {
												t.Fatalf("program failed without executor kills: %v", err)
											}
											var abort *StageAbortedError
											if !errors.As(err, &abort) {
												t.Fatalf("program failed without typed stage abort: %v", err)
											}
											c2 := New(cfg)
											defer c2.Close()
											_, _, err2 := runChaosProgram(c2, prog)
											var abort2 *StageAbortedError
											if err2 == nil || !errors.As(err2, &abort2) || abort.Stage != abort2.Stage {
												t.Fatalf("abort not deterministic:\n  first: %v\n second: %v", err, err2)
											}
											return
										}
										if len(state) != len(want.finalState) {
											t.Fatalf("final partitions = %d, want %d", len(state), len(want.finalState))
										}
										for i := range state {
											if !int64sEqual(state[i], want.finalState[i]) {
												t.Errorf("partition %d = %v, want %v", i, state[i], want.finalState[i])
											}
										}
										for i := range sums {
											if sums[i] != want.finalResults[i] {
												t.Errorf("published checksum %d = %d, want %d", i, sums[i], want.finalResults[i])
											}
										}
										m := c.Metrics().Snapshot()
										if m.RecordsProcessed != want.records {
											t.Errorf("RecordsProcessed = %d, want %d", m.RecordsProcessed, want.records)
										}
										if m.Comparisons != want.comparisons {
											t.Errorf("Comparisons = %d, want %d", m.Comparisons, want.comparisons)
										}
										if m.ShuffleRecordsWritten != want.shufRecords {
											t.Errorf("ShuffleRecordsWritten = %d, want %d", m.ShuffleRecordsWritten, want.shufRecords)
										}
										if m.ShuffleBytesWritten != want.shufWritten {
											t.Errorf("ShuffleBytesWritten = %d, want %d", m.ShuffleBytesWritten, want.shufWritten)
										}
										if m.ShuffleBytesRead != want.shufRead {
											t.Errorf("ShuffleBytesRead = %d, want %d", m.ShuffleBytesRead, want.shufRead)
										}
									})
								}
							}
						}
					}
				}
			}
		}
	}
}
