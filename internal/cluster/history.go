package cluster

import "sync"

// historyCap bounds the retained stage history; the experiment harness runs
// thousands of stages and only recent ones matter for inspection.
const historyCap = 512

// stageHistory is a bounded ring of completed StageStats.
type stageHistory struct {
	mu      sync.Mutex
	entries []StageStats
	next    int
	full    bool
}

func (h *stageHistory) add(s StageStats) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.entries == nil {
		h.entries = make([]StageStats, historyCap)
	}
	h.entries[h.next] = s
	h.next = (h.next + 1) % historyCap
	if h.next == 0 {
		h.full = true
	}
}

func (h *stageHistory) snapshot() []StageStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.entries == nil {
		return nil
	}
	var out []StageStats
	if h.full {
		out = append(out, h.entries[h.next:]...)
	}
	out = append(out, h.entries[:h.next]...)
	return out
}

// StageHistory returns the most recent completed stages, oldest first
// (bounded to the last 512). Use it to inspect which stages dominated a
// job's virtual time — the paper's executor load-balancing discussion is
// about exactly this skew.
func (c *Cluster) StageHistory() []StageStats {
	return c.history.snapshot()
}
