package cluster

import (
	"fmt"
	"hash/fnv"
	"math/rand"
)

// This file models the executor lifecycle: deterministic executor-kill
// injection at stage submission points, loss handling (dropping the dead
// executor's committed shuffle outputs and cached partitions), and the
// blacklist policy that keeps repeatedly-failing executors out of the slot
// pool with exponential backoff before re-admission.
//
// Executor placement is deterministic and independent of real execution
// timing: each task chain is hashed onto the stage's live-executor list, so
// a given (seed, stage, task) always lands on the same host and killing that
// host always invalidates the same outputs. Speculative duplicate chains are
// offset to a different live executor when one exists — relaunching on the
// same sick host would defeat the mitigation.

// executorMeta tracks one executor's failure history and availability. The
// zero value is a healthy executor.
type executorMeta struct {
	// downUntil is the stage counter at which the executor rejoins the
	// pool: it is out of service for every stage submitted while
	// stageCounter < downUntil.
	downUntil int
	// kills is the lifetime executor-loss count; it drives the blacklist
	// decision and the exponential backoff length.
	kills int
}

// liveExecutorsLocked returns the executors in service at the given stage
// counter, in ascending ID order. Callers hold c.mu.
func (c *Cluster) liveExecutorsLocked(stageID int) []int {
	live := make([]int, 0, len(c.execs))
	for e := range c.execs {
		if c.execs[e].downUntil <= stageID {
			live = append(live, e)
		}
	}
	return live
}

// LiveExecutors returns the executors currently in service (not lost, not
// serving a blacklist backoff), in ascending ID order.
func (c *Cluster) LiveExecutors() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveExecutorsLocked(c.stageCounter)
}

// FailExecutor kills executor e immediately: its committed shuffle map
// outputs and cached partitions are dropped, and it leaves the slot pool
// until it recovers (or, past the blacklist threshold, until its backoff
// expires). It returns false when e is out of range, already down, or the
// last live executor — the cluster never kills its final host, mirroring the
// driver's own survival. Deterministic chaos runs use ExecutorFailureRate
// instead; this entry point serves tests and operational tooling.
func (c *Cluster) FailExecutor(e int) bool {
	c.mu.Lock()
	stageID := c.stageCounter
	if e < 0 || e >= len(c.execs) || c.execs[e].downUntil > stageID {
		c.mu.Unlock()
		return false
	}
	if len(c.liveExecutorsLocked(stageID)) <= 1 {
		c.mu.Unlock()
		return false
	}
	c.mu.Unlock()
	c.failExecutor(e, stageID)
	return true
}

// injectExecutorFailures is called at every stage submission (and
// resubmission): it draws one deterministic kill decision per live executor
// from a stream keyed by (seed, stage, resubmission, executor), applies the
// losses, and returns the surviving live-executor list the stage attempt
// will schedule onto. The last live executor is never killed.
func (c *Cluster) injectExecutorFailures(stageID, resubmit int) []int {
	c.mu.Lock()
	live := c.liveExecutorsLocked(stageID)
	c.mu.Unlock()
	if c.cfg.ExecutorFailureRate <= 0 {
		return live
	}
	var kills []int
	remaining := len(live)
	for _, e := range live {
		if remaining <= 1 {
			break
		}
		h := fnv.New64a()
		fmt.Fprintf(h, "exec/%d/%d/%d/%d", c.cfg.Seed, stageID, resubmit, e)
		rng := rand.New(rand.NewSource(int64(h.Sum64())))
		if rng.Float64() < c.cfg.ExecutorFailureRate {
			kills = append(kills, e)
			remaining--
		}
	}
	for _, e := range kills {
		c.failExecutor(e, stageID)
	}
	if len(kills) == 0 {
		return live
	}
	c.mu.Lock()
	live = c.liveExecutorsLocked(stageID)
	c.mu.Unlock()
	return live
}

// failExecutor records executor e's loss at stage counter stageID, drops its
// hosted state, and applies the blacklist policy. An executor that has now
// failed BlacklistAfterFailures or more times is blacklisted: its downtime
// grows as BlacklistBackoffStages << (failures - threshold), capped, before
// it is re-admitted to the pool.
func (c *Cluster) failExecutor(e, stageID int) {
	c.mu.Lock()
	m := &c.execs[e]
	m.kills++
	kills := m.kills
	down := c.cfg.ExecutorRecoveryStages
	blacklisted := false
	if kills >= c.cfg.BlacklistAfterFailures {
		over := kills - c.cfg.BlacklistAfterFailures
		if over > 8 {
			over = 8 // cap the shift; beyond this the executor is effectively gone
		}
		down += c.cfg.BlacklistBackoffStages << over
		blacklisted = true
	}
	m.downUntil = stageID + down
	virtNow := c.virtualNS
	c.mu.Unlock()

	lostOutputs := c.shuffles.invalidateExecutor(e)
	lostBlocks := c.blocks.InvalidateExecutor(e)
	c.metrics.ExecutorFailures.Add(1)
	c.metrics.MapOutputsLost.Add(int64(lostOutputs))
	if c.tracer.Enabled() {
		c.tracer.Emit(Event{Kind: EventExecutorLost, StageID: stageID,
			Task: -1, Attempt: -1, Executor: e, VirtualNS: virtNow,
			Detail: fmt.Sprintf("%d map outputs, %d cached partitions lost", lostOutputs, lostBlocks)})
	}
	if blacklisted {
		c.metrics.ExecutorsBlacklisted.Add(1)
		if c.tracer.Enabled() {
			c.tracer.Emit(Event{Kind: EventExecutorBlacklisted, StageID: stageID,
				Task: -1, Attempt: -1, Executor: e,
				Detail: fmt.Sprintf("%d failures: off duty for %d stages", kills, down)})
		}
	}
}

// hostFor deterministically places a task chain onto one of the stage's live
// executors. The primary chain hashes (seed, stage, task) onto the list; a
// speculative duplicate takes the next live executor so the copy runs on a
// different host whenever more than one is alive.
func (c *Cluster) hostFor(live []int, stageID, task int, speculative bool) int {
	if len(live) == 0 {
		return -1
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "host/%d/%d/%d", c.cfg.Seed, stageID, task)
	i := int(h.Sum64() % uint64(len(live)))
	if speculative && len(live) > 1 {
		i = (i + 1) % len(live)
	}
	return live[i]
}
