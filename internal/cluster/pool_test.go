package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestRealParallelMatchesVirtualScheduler runs the same chaos program under
// the legacy goroutine-per-task mode and the work-stealing pool and compares
// them directly: final state, published results, and every committed work
// counter must match, not just both match the oracle.
func TestRealParallelMatchesVirtualScheduler(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		prog := genChaosProgram(seed * 104729)
		base := chaosConfig(seed, 4, 0.3, 0, true, true, 0)

		ref := New(base)
		refState, refSums, refErr := runChaosProgram(ref, prog)
		ref.Close()

		cfg := base
		cfg.RealParallel = true
		cfg.RealWorkers = 3
		pool := New(cfg)
		poolState, poolSums, poolErr := runChaosProgram(pool, prog)
		pool.Close()

		if (refErr == nil) != (poolErr == nil) {
			t.Fatalf("seed %d: error divergence: ref=%v pool=%v", seed, refErr, poolErr)
		}
		if refErr != nil {
			continue
		}
		if len(poolState) != len(refState) {
			t.Fatalf("seed %d: partitions %d vs %d", seed, len(poolState), len(refState))
		}
		for i := range refState {
			if !int64sEqual(poolState[i], refState[i]) {
				t.Errorf("seed %d: partition %d = %v, want %v", seed, i, poolState[i], refState[i])
			}
		}
		if !int64sEqual(poolSums, refSums) {
			t.Errorf("seed %d: published results %v, want %v", seed, poolSums, refSums)
		}
		rm, pm := ref.Metrics().Snapshot(), pool.Metrics().Snapshot()
		if pm.RecordsProcessed != rm.RecordsProcessed ||
			pm.Comparisons != rm.Comparisons ||
			pm.ShuffleRecordsWritten != rm.ShuffleRecordsWritten ||
			pm.ShuffleBytesWritten != rm.ShuffleBytesWritten ||
			pm.ShuffleBytesRead != rm.ShuffleBytesRead {
			t.Errorf("seed %d: committed counters diverged:\n  ref:  %+v\n  pool: %+v", seed, rm, pm)
		}
	}
}

// TestRealParallelScratchIsolation proves two pool workers never alias a
// WorkerScratch: two tasks rendezvous mid-flight (so both are provably
// concurrent), each fills its scratch buffer with a task-unique marker while
// holding the barrier, and then checks its buffer was not clobbered by the
// other task. The scratch pointers themselves must differ.
func TestRealParallelScratchIsolation(t *testing.T) {
	c := New(Config{Executors: 1, RealParallel: true, RealWorkers: 2})
	defer c.Close()

	var mu sync.Mutex
	scratches := make(map[int]*WorkerScratch)
	var barrier sync.WaitGroup
	barrier.Add(2)

	_, err := c.RunStage("isolation", 2, func(tc *TaskContext) error {
		sc := tc.Scratch()
		mu.Lock()
		scratches[tc.Task()] = sc
		mu.Unlock()

		marker := float64(1000 + tc.Task())
		buf := sc.Float64s(256)
		for i := range buf {
			buf[i] = marker
		}
		// Both tasks hold filled buffers here; if the two workers shared a
		// scratch, one marker would overwrite the other.
		barrier.Done()
		barrier.Wait()
		for i := range buf {
			if buf[i] != marker {
				return errors.New("scratch buffer clobbered by concurrent task")
			}
		}
		ids := sc.Int32s(64)
		for i := range ids {
			ids[i] = int32(tc.Task())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(scratches) != 2 {
		t.Fatalf("recorded %d scratches, want 2", len(scratches))
	}
	if scratches[0] == scratches[1] {
		t.Fatalf("both tasks received the same WorkerScratch %p", scratches[0])
	}
}

// TestRealParallelSpareWorkers pins the pause handoff: when a pool worker's
// task blocks in a simulated delay it releases its token and a spare worker
// must pick up the remaining tasks, so a stage of blocking tasks overlaps
// its sleeps instead of serializing them.
func TestRealParallelSpareWorkers(t *testing.T) {
	const (
		tasks = 8
		delay = 20 * time.Millisecond
	)
	c := New(Config{Executors: 1, RealParallel: true, RealWorkers: 2})
	defer c.Close()
	start := time.Now()
	_, err := c.RunStage("sleepy", tasks, func(tc *TaskContext) error {
		tc.Delay(delay, 0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Workers (2) plus spares (cap 2) give concurrency 4: the serial bound
	// is 8x20ms = 160ms, the expected overlap ~2x20ms-wave = 40ms. Assert
	// well under serial with slack for scheduler noise.
	if elapsed >= tasks*delay {
		t.Fatalf("stage took %v, want overlap below the %v serial bound", elapsed, tasks*delay)
	}
}

// TestCloseWakesInflightDelays pins the shared pool context: Close must
// cancel attempt contexts so chains blocked in long straggler delays wake
// immediately instead of holding goroutines (and the caller) for the full
// simulated delay.
func TestCloseWakesInflightDelays(t *testing.T) {
	for _, realParallel := range []bool{false, true} {
		cfg := Config{
			Executors:            1,
			RealParallel:         realParallel,
			RealWorkers:          2,
			StragglerRate:        1, // every attempt blocks...
			StragglerRealDelayMS: 5000,
			MaxTaskRetries:       1,
		}
		c := New(cfg)
		done := make(chan error, 1)
		go func() {
			_, err := c.RunStage("stuck", 2, func(tc *TaskContext) error { return nil })
			done <- err
		}()
		time.Sleep(20 * time.Millisecond) // let the chains enter their delay
		start := time.Now()
		c.Close()
		select {
		case <-done:
			// The stage returned promptly (success or fail-fast both fine);
			// the point is that Close unblocked the 5s sleeps.
			if waited := time.Since(start); waited > 2*time.Second {
				t.Errorf("realParallel=%v: stage took %v after Close", realParallel, waited)
			}
		case <-time.After(3 * time.Second):
			t.Fatalf("realParallel=%v: stage still blocked 3s after Close", realParallel)
		}
	}
}

// TestScratchPoolRecycles pins that WorkerScratch instances checked back in
// are reused rather than reallocated: a second stage on the same cluster
// must see warmed buffers (capacity retained from the first stage).
func TestScratchPoolRecycles(t *testing.T) {
	c := New(Config{Executors: 1, RealParallel: true, RealWorkers: 1})
	defer c.Close()
	var firstPtr *WorkerScratch
	_, err := c.RunStage("warm", 1, func(tc *TaskContext) error {
		firstPtr = tc.Scratch()
		firstPtr.Float64s(4096)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var secondPtr *WorkerScratch
	var warmedCap int
	_, err = c.RunStage("reuse", 1, func(tc *TaskContext) error {
		secondPtr = tc.Scratch()
		warmedCap = cap(secondPtr.Float64s(1))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if secondPtr != firstPtr {
		t.Fatalf("second stage got scratch %p, want recycled %p", secondPtr, firstPtr)
	}
	if warmedCap < 4096 {
		t.Fatalf("recycled scratch capacity = %d, want >= 4096 from the first stage", warmedCap)
	}
}
