package pairdist

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"testing"

	"adrdedup/internal/adr"
	"adrdedup/internal/adrgen"
	"adrdedup/internal/cluster"
	"adrdedup/internal/intern"
	"adrdedup/internal/rdd"
)

// assertVecsBitIdentical fails unless the two vectors are equal under ==,
// i.e. bit-identical (no tolerance).
func assertVecsBitIdentical(t *testing.T, tag string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d vs %d", tag, len(got), len(want))
	}
	for d := range got {
		if got[d] != want[d] {
			t.Fatalf("%s dim %d: interned %v != legacy %v", tag, d, got[d], want[d])
		}
	}
}

// TestInternedKernelBitIdenticalOnGeneratedCorpora pins the interned
// merge-scan kernel to the legacy string-set kernel over randomized
// generated report corpora: every pair's distance vector must be
// bit-identical.
func TestInternedKernelBitIdenticalOnGeneratedCorpora(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		c := adrgen.Generate(adrgen.Config{
			NumReports: 150, DuplicatePairs: 15, NumDrugs: 40, NumADRs: 60, Seed: seed,
		})
		it := intern.New()
		legacy := make([]Features, len(c.Reports))
		interned := make([]Features, len(c.Reports))
		for i, r := range c.Reports {
			legacy[i] = Extract(r)
			interned[i] = ExtractWith(it, r)
		}
		rng := rand.New(rand.NewSource(seed * 31))
		for trial := 0; trial < 2000; trial++ {
			a, b := rng.Intn(len(legacy)), rng.Intn(len(legacy))
			assertVecsBitIdentical(t, fmt.Sprintf("seed %d pair (%d,%d)", seed, a, b),
				Distance(interned[a], interned[b]), Distance(legacy[a], legacy[b]))
		}
	}
}

// TestInternedKernelEdgeCaseReports covers the boundary report shapes:
// empty fields, duplicate tokens in multi-valued fields, all-stopword
// descriptions, and unicode tokens.
func TestInternedKernelEdgeCaseReports(t *testing.T) {
	reports := []adr.Report{
		{}, // everything empty
		{GenericNameDesc: "Aspirin", MedDRAPTName: "Headache", ReportDescription: "severe headache after aspirin"},
		{GenericNameDesc: "Aspirin,Aspirin,Aspirin"}, // duplicate tokens
		{MedDRAPTName: "Nausea,Vomiting,Nausea"},
		{ReportDescription: "the of and to"},     // all stopwords -> empty token set
		{ReportDescription: "头痛 悪心 ñandú café"},  // unicode tokens
		{GenericNameDesc: "头痛药", MedDRAPTName: "头痛", ReportDescription: "头痛 headache 头痛"},
		{CalculatedAge: 30, Sex: "F", ResidentialState: "NSW", OnsetDate: "01/01/2020"},
		{CalculatedAge: 30, Sex: "F", ResidentialState: "VIC", OnsetDate: "01/01/2020",
			GenericNameDesc: "Paracetamol,Codeine", MedDRAPTName: "Dizziness",
			ReportDescription: "dizziness and mild nausea reported after paracetamol with codeine"},
	}
	it := intern.New()
	legacy := make([]Features, len(reports))
	interned := make([]Features, len(reports))
	for i, r := range reports {
		legacy[i] = Extract(r)
		interned[i] = ExtractWith(it, r)
	}
	for a := range reports {
		for b := range reports {
			for _, m := range []TextMetric{JaccardMetric, CosineMetric} {
				assertVecsBitIdentical(t, fmt.Sprintf("%s (%d,%d)", m, a, b),
					DistanceWith(interned[a], interned[b], m),
					DistanceWith(legacy[a], legacy[b], m))
			}
		}
	}
}

// TestMixedFeaturesFallBackToStringKernel: comparing an interned feature
// against a legacy one must silently use the string kernel, not read
// incomparable ID sets.
func TestMixedFeaturesFallBackToStringKernel(t *testing.T) {
	r1 := adr.Report{GenericNameDesc: "Aspirin,Ibuprofen", MedDRAPTName: "Headache",
		ReportDescription: "headache resolved after ibuprofen"}
	r2 := adr.Report{GenericNameDesc: "Ibuprofen", MedDRAPTName: "Headache,Nausea",
		ReportDescription: "persistent headache with nausea"}
	it := intern.New()
	mixed := Distance(ExtractWith(it, r1), Extract(r2))
	pure := Distance(Extract(r1), Extract(r2))
	assertVecsBitIdentical(t, "mixed-vs-legacy", mixed, pure)
}

// TestComputeVectorsArenaMatchesLegacyAndIsIsolated checks the parallel
// arena-backed path against the serial legacy kernel, and that the
// full-capacity re-slicing isolates neighboring vectors from append.
func TestComputeVectorsArenaMatchesLegacyAndIsIsolated(t *testing.T) {
	c := adrgen.Generate(adrgen.Config{NumReports: 120, DuplicatePairs: 10, NumDrugs: 25, NumADRs: 35, Seed: 11})
	ctx := rdd.NewContext(cluster.New(cluster.Config{Executors: 4}))
	it := intern.New()
	feats, err := ExtractAllWith(ctx, it, c.Reports, 4)
	if err != nil {
		t.Fatal(err)
	}
	legacy := make([]Features, len(c.Reports))
	for i, r := range c.Reports {
		legacy[i] = Extract(r)
	}
	rng := rand.New(rand.NewSource(12))
	pairs := make([]IDPair, 500)
	for i := range pairs {
		pairs[i] = IDPair{A: rng.Intn(len(feats)), B: rng.Intn(len(feats))}
	}
	recs, err := ComputeVectors(ctx, feats, pairs, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		assertVecsBitIdentical(t, fmt.Sprintf("pair %d", i),
			r.Vec, Distance(legacy[r.A], legacy[r.B]))
		if cap(r.Vec) != Dims {
			t.Fatalf("pair %d: Vec capacity %d, want %d (full-capacity arena slice)", i, cap(r.Vec), Dims)
		}
	}
	// Appending to one vector must reallocate, never clobber a neighbor.
	if len(recs) >= 2 {
		saved := append([]float64(nil), recs[1].Vec...)
		_ = append(recs[0].Vec, 99)
		assertVecsBitIdentical(t, "arena isolation", recs[1].Vec, saved)
	}
}

// TestInternedFeaturesGobRoundTrip pins that interned features survive
// serialization: a persisted feature cache must compare identically after
// decode (gob is the repo's model/persist codec).
func TestInternedFeaturesGobRoundTrip(t *testing.T) {
	it := intern.New()
	f := ExtractWith(it, adr.Report{
		CalculatedAge: 61, Sex: "M", ResidentialState: "QLD", OnsetDate: "05/06/2014",
		GenericNameDesc: "Atorvastatin,Aspirin", MedDRAPTName: "Myalgia,Rhabdomyolysis",
		ReportDescription: "the patient developed myalgia then rhabdomyolysis on atorvastatin",
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		t.Fatal(err)
	}
	var got Features
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.Interned {
		t.Fatal("Interned flag lost in round trip")
	}
	other := ExtractWith(it, adr.Report{GenericNameDesc: "Aspirin", MedDRAPTName: "Myalgia",
		ReportDescription: "myalgia on aspirin"})
	assertVecsBitIdentical(t, "decoded-vs-original", Distance(got, other), Distance(f, other))
}
