// Package pairdist implements the report distance calculation of §4.2: the
// seven selected TGA fields are compared field-by-field to produce a
// distance vector per report pair, and report pairs are compared to each
// other by the Euclidean distance between their distance vectors.
//
// Field rules (§4.2):
//   - calculated age (numerical): distance 0 when equal, else 1;
//   - sex, residential state, onset date (categorical): 0 when equal, else 1;
//   - drug name, ADR name (string): Jaccard distance over the comma-split
//     value sets (Eq. 4);
//   - report description (free text): Jaccard distance over the tokenized,
//     stop-worded, stemmed token set.
package pairdist

import (
	"adrdedup/internal/adr"
	"adrdedup/internal/cluster"
	"adrdedup/internal/intern"
	"adrdedup/internal/rdd"
	"adrdedup/internal/strsim"
	"adrdedup/internal/text"
	"adrdedup/internal/vecmath"
)

// Dims is the width of a pair distance vector: one entry per selected field.
const Dims = 7

// Field indices within a distance vector.
const (
	FieldAge = iota
	FieldSex
	FieldState
	FieldOnsetDate
	FieldDrugName
	FieldADRName
	FieldDescription
)

// FieldNames labels the vector dimensions, in order.
var FieldNames = [Dims]string{
	"calculated age", "sex", "residential state", "onset date",
	"generic name description", "MedDRA PT name", "report description",
}

// Features is the preprocessed form of one report: everything the distance
// function needs, with the NLP pipeline already applied. Extracting features
// once per report keeps the pairwise stage O(1) string work per comparison.
//
// When built through ExtractWith/ExtractAllWith, the three token sets are
// additionally interned into sorted, deduplicated uint32 ID sets (DrugIDs,
// ADRIDs, DescIDs), which is what lets the Jaccard kernel run as an
// allocation-free merge scan. ID sets from different interners are not
// comparable: all features compared against each other must come from one
// shared interner (the Detector keeps one for its lifetime). DistanceWith
// falls back to the string kernel whenever either side lacks IDs.
type Features struct {
	Age        int
	Sex        string
	State      string
	OnsetDate  string
	DrugSet    []string
	ADRSet     []string
	DescTokens []string

	// DrugIDs, ADRIDs, DescIDs are the interned forms of the three token
	// sets: sorted, deduplicated IDs from the interner passed to
	// ExtractWith. Valid only when Interned is true.
	DrugIDs []uint32
	ADRIDs  []uint32
	DescIDs []uint32
	// Interned records that the ID sets were built (they may legitimately
	// be empty, so presence cannot be inferred from non-nil slices).
	Interned bool
}

// Extract preprocesses one report without interning. Features built this
// way always take the legacy string-set kernel; it is kept as the
// differential oracle for the interned path.
func Extract(r adr.Report) Features {
	return Features{
		Age:        r.CalculatedAge,
		Sex:        r.Sex,
		State:      r.ResidentialState,
		OnsetDate:  r.OnsetDate,
		DrugSet:    adr.SplitMulti(r.GenericNameDesc),
		ADRSet:     adr.SplitMulti(r.MedDRAPTName),
		DescTokens: text.Process(r.ReportDescription),
	}
}

// ExtractWith preprocesses one report and interns its token sets through
// it, enabling the merge-scan Jaccard kernel. The interner may be shared by
// concurrent extract tasks.
func ExtractWith(it *intern.Interner, r adr.Report) Features {
	f := Extract(r)
	f.DrugIDs = it.SortedSet(f.DrugSet)
	f.ADRIDs = it.SortedSet(f.ADRSet)
	f.DescIDs = it.SortedSet(f.DescTokens)
	f.Interned = true
	return f
}

// SignatureIDs returns the report's signature set: the sorted union of the
// three interned token-ID sets (drugs, ADRs, description). All three share
// one interner ID space, so the union is a well-defined token set; it is
// what the prefix-filtered candidate generator (internal/candgen) indexes.
// Valid only for interned features (ok is false otherwise).
func (f Features) SignatureIDs() (ids []uint32, ok bool) {
	if !f.Interned {
		return nil, false
	}
	return strsim.UnionSortedIDs(f.DrugIDs, f.ADRIDs, f.DescIDs), true
}

// TextMetric selects the token-set distance used for string and free-text
// fields. The paper uses Jaccard (Eq. 4); cosine is provided for the metric
// ablation (both are among the §1 candidates).
type TextMetric int

const (
	// JaccardMetric is 1 - |A∩B|/|A∪B| (the paper's choice).
	JaccardMetric TextMetric = iota
	// CosineMetric is 1 - cosine similarity over token counts.
	CosineMetric
)

func (m TextMetric) String() string {
	if m == CosineMetric {
		return "cosine"
	}
	return "jaccard"
}

func (m TextMetric) distance(a, b []string) float64 {
	if m == CosineMetric {
		return 1 - strsim.Cosine(a, b)
	}
	return strsim.JaccardDistance(a, b)
}

// Distance computes the §4.2 distance vector between two preprocessed
// reports using the paper's Jaccard metric. Every component lies in [0, 1].
func Distance(a, b Features) []float64 {
	return DistanceWith(a, b, JaccardMetric)
}

// DistanceWith computes the distance vector under the chosen token metric.
func DistanceWith(a, b Features, m TextMetric) []float64 {
	v := make([]float64, Dims)
	DistanceInto(v, a, b, m)
	return v
}

// DistanceInto computes the distance vector into dst (which must have at
// least Dims elements) and performs no allocation. When both features are
// interned and the metric is Jaccard, the three token-set distances run as
// merge scans over the sorted ID sets — bit-identical to the string kernel,
// since both reduce to float64(|A∩B|)/float64(|A∪B|) over the same counts.
// Cosine needs token multiplicities, which the deduplicated ID sets drop,
// so it always takes the string path.
func DistanceInto(dst []float64, a, b Features, m TextMetric) {
	_ = dst[Dims-1]
	dst[FieldAge] = 0
	if a.Age != b.Age {
		dst[FieldAge] = 1
	}
	dst[FieldSex] = 0
	if a.Sex != b.Sex {
		dst[FieldSex] = 1
	}
	dst[FieldState] = 0
	if a.State != b.State {
		dst[FieldState] = 1
	}
	dst[FieldOnsetDate] = 0
	if a.OnsetDate != b.OnsetDate {
		dst[FieldOnsetDate] = 1
	}
	if m == JaccardMetric && a.Interned && b.Interned {
		dst[FieldDrugName] = strsim.JaccardDistanceSortedIDs(a.DrugIDs, b.DrugIDs)
		dst[FieldADRName] = strsim.JaccardDistanceSortedIDs(a.ADRIDs, b.ADRIDs)
		dst[FieldDescription] = strsim.JaccardDistanceSortedIDs(a.DescIDs, b.DescIDs)
		return
	}
	dst[FieldDrugName] = m.distance(a.DrugSet, b.DrugSet)
	dst[FieldADRName] = m.distance(a.ADRSet, b.ADRSet)
	dst[FieldDescription] = m.distance(a.DescTokens, b.DescTokens)
}

// VectorDist is the distance between two report pairs: the Euclidean
// distance between their distance vectors (§4.2).
func VectorDist(a, b []float64) float64 {
	return vecmath.Dist(a, b)
}

// MaxVectorDist bounds VectorDist for Dims-dimensional unit-cube vectors;
// useful for normalizing scores and thresholds.
var MaxVectorDist = vecmath.Dist(make([]float64, Dims), onesVec())

func onesVec() []float64 {
	v := make([]float64, Dims)
	for i := range v {
		v[i] = 1
	}
	return v
}

// ExtractAll preprocesses reports in parallel on the cluster (the text
// pipeline dominates; this is the first stage of the paper's workflow in
// Figure 1). Features are not interned — callers that compare features
// across multiple extraction calls should use ExtractAllWith with one
// long-lived interner instead.
func ExtractAll(ctx *rdd.Context, reports []adr.Report, partitions int) ([]Features, error) {
	return extractAll(ctx, nil, reports, partitions)
}

// ExtractAllWith is ExtractAll with token interning through it, enabling
// the merge-scan Jaccard kernel downstream. The interner is shared by the
// parallel extract tasks (it is safe for concurrent use) and must be the
// same one for every feature set that will be compared together.
func ExtractAllWith(ctx *rdd.Context, it *intern.Interner, reports []adr.Report, partitions int) ([]Features, error) {
	return extractAll(ctx, it, reports, partitions)
}

func extractAll(ctx *rdd.Context, it *intern.Interner, reports []adr.Report, partitions int) ([]Features, error) {
	extract := Extract
	if it != nil {
		extract = func(r adr.Report) Features { return ExtractWith(it, r) }
	}
	type indexed struct {
		i int
		f Features
	}
	src := rdd.Parallelize(ctx, reports, partitions).SetName("reports").WithBytesPerRecord(600)
	extracted := rdd.MapPartitionsWithIndex(src, func(p int, in []adr.Report) ([]indexed, error) {
		out := make([]indexed, len(in))
		for i, r := range in {
			out[i] = indexed{i: r.ArrivalSeq, f: extract(r)}
		}
		return out, nil
	}).SetName("features")
	rows, err := extracted.Collect()
	if err != nil {
		return nil, err
	}
	feats := make([]Features, len(reports))
	for _, row := range rows {
		if row.i < 0 || row.i >= len(feats) {
			// Reports straight from a generator may not have arrival
			// sequences assigned; fall back to positional mapping.
			return extractAllPositional(ctx, extract, reports, partitions)
		}
		feats[row.i] = row.f
	}
	return feats, nil
}

func extractAllPositional(ctx *rdd.Context, extract func(adr.Report) Features, reports []adr.Report, partitions int) ([]Features, error) {
	src := rdd.Parallelize(ctx, reports, partitions).SetName("reports").WithBytesPerRecord(600)
	feats, err := rdd.Map(src, extract).SetName("features").Collect()
	if err != nil {
		return nil, err
	}
	return feats, nil
}

// PairRecord is one report pair with its computed distance vector and, when
// known, its label (+1 duplicate, -1 non-duplicate, 0 unknown).
type PairRecord struct {
	A, B  int
	Vec   []float64
	Label int
}

// IDPair identifies a report pair to vectorize, optionally labelled.
type IDPair struct {
	A, B  int
	Label int
}

// ComputeVectors computes distance vectors for the given report pairs in
// parallel (the pairwise distance computing module of Figure 1; timed
// separately in the paper's Fig. 10(b)). The features slice is broadcast to
// the executors.
func ComputeVectors(ctx *rdd.Context, feats []Features, pairs []IDPair, partitions int) ([]PairRecord, error) {
	// Broadcasting features to every executor: charge ~300 bytes each.
	ctx.Cluster().Broadcast(int64(len(feats)) * 300)
	src := rdd.Parallelize(ctx, pairs, partitions).SetName("pairIDs").WithBytesPerRecord(24)
	vectors := rdd.MapPartitionsTC(src, func(tc *cluster.TaskContext, _ int, in []IDPair) ([]PairRecord, error) {
		// One flat arena backs every distance vector of the partition:
		// Dims*len(in) floats in a single allocation, re-sliced per pair
		// (full-capacity slices, so an append on one Vec can never bleed
		// into its neighbor). Nothing downstream mutates Vec contents, so
		// sharing one backing array is safe; it does keep the whole
		// partition's arena alive while any one Vec is referenced.
		//
		// The sweep runs cache-tiled using the attempt's worker-owned
		// scratch: concurrent tasks (RealParallel mode) each hold their
		// own WorkerScratch, so the tiling buffers are never shared.
		out := make([]PairRecord, len(in))
		arena := make([]float64, Dims*len(in))
		SweepInto(tc.Scratch(), arena, feats, in, JaccardMetric)
		for i, p := range in {
			out[i] = PairRecord{A: p.A, B: p.B, Label: p.Label,
				Vec: arena[i*Dims : (i+1)*Dims : (i+1)*Dims]}
		}
		return out, nil
	}).SetName("pairVectors").WithBytesPerRecord(16 + 8*Dims)
	recs, err := vectors.Collect()
	if err != nil {
		return nil, err
	}
	// Charge the comparison count once, driver-side.
	ctx.Cluster().Metrics().Comparisons.Add(int64(len(pairs)))
	return recs, nil
}
