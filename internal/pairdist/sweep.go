package pairdist

import (
	"adrdedup/internal/cluster"
)

// SweepTile is the cache tile width of SweepInto: pairs are computed in
// blocks of SweepTile x SweepTile report indices, so one block's worth of
// Features (ID-set headers plus their hot prefixes) stays resident in cache
// while every pair touching it is processed. 128 reports/side keeps a block's
// working set comfortably inside L2 for typical ADR token-set sizes.
const SweepTile = 128

// SweepInto computes the distance vector of every pair into arena, writing
// pairs[i]'s vector at arena[i*Dims : (i+1)*Dims]. arena must hold at least
// Dims*len(pairs) floats.
//
// When a WorkerScratch is provided and the batch is large enough to benefit,
// the pairs are visited in cache-tiled order: a counting sort over
// (A/SweepTile, B/SweepTile) tile keys — entirely inside one reused scratch
// buffer, so the steady state allocates nothing — groups pairs that touch
// the same block of features. Each vector is still written at its pair's
// original index, so the arena contents are bit-identical to the untiled
// scan regardless of compute order; only memory locality changes.
//
// A nil scratch, a small batch, or a tile grid too sparse for its pair count
// falls back to the direct in-order scan (identical output).
func SweepInto(sc *cluster.WorkerScratch, arena []float64, feats []Features, pairs []IDPair, m TextMetric) {
	if len(pairs) == 0 {
		return
	}
	_ = arena[Dims*len(pairs)-1]
	nT := (len(feats) + SweepTile - 1) / SweepTile
	nb := nT*nT + 1
	if sc == nil || nT < 2 || len(pairs) < 4*SweepTile || nb > 4*len(pairs) {
		for i, p := range pairs {
			DistanceInto(arena[i*Dims:(i+1)*Dims:(i+1)*Dims], feats[p.A], feats[p.B], m)
		}
		return
	}
	// Counting sort of pair indices by tile key. One scratch buffer holds
	// both the permutation (first len(pairs) entries) and the bucket
	// offsets (the rest); both are fully overwritten before being read.
	buf := sc.Int32s(len(pairs) + nb)
	perm, counts := buf[:len(pairs)], buf[len(pairs):]
	for i := range counts {
		counts[i] = 0
	}
	for _, p := range pairs {
		counts[(p.A/SweepTile)*nT+p.B/SweepTile+1]++
	}
	for k := 1; k < nb; k++ {
		counts[k] += counts[k-1]
	}
	for i, p := range pairs {
		k := (p.A/SweepTile)*nT + p.B/SweepTile
		perm[counts[k]] = int32(i)
		counts[k]++
	}
	for _, pi := range perm {
		p := pairs[pi]
		o := int(pi) * Dims
		DistanceInto(arena[o:o+Dims:o+Dims], feats[p.A], feats[p.B], m)
	}
}
