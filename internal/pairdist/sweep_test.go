package pairdist

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"adrdedup/internal/adrgen"
	"adrdedup/internal/cluster"
	"adrdedup/internal/intern"
)

// sweepCorpus builds an interned feature set large enough to force the tiled
// path (several SweepTile-wide tiles) plus a pair list.
func sweepCorpus(t testing.TB, numReports int, seed int64) []Features {
	t.Helper()
	c := adrgen.Generate(adrgen.Config{
		NumReports: numReports, DuplicatePairs: numReports / 12,
		NumDrugs: 60, NumADRs: 90, Seed: seed,
	})
	it := intern.New()
	feats := make([]Features, numReports)
	for i, r := range c.Reports {
		feats[i] = ExtractWith(it, r)
	}
	return feats
}

func allPairs(n int) []IDPair {
	pairs := make([]IDPair, 0, n*(n-1)/2)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			pairs = append(pairs, IDPair{A: a, B: b})
		}
	}
	return pairs
}

// TestSweepIntoMatchesDirect is the tiling differential: the cache-tiled
// sweep must fill the arena bit-identically to the plain in-order scan, for
// all-pairs batches, shuffled batches, and small batches that take the
// fallback. Each vector lands at its pair's original index regardless of the
// tiled compute order.
func TestSweepIntoMatchesDirect(t *testing.T) {
	const numReports = 300 // > 2 tiles, forces the tiled path for big batches
	feats := sweepCorpus(t, numReports, 42)

	cases := map[string][]IDPair{
		"all-pairs": allPairs(numReports),
		"small":     allPairs(20), // below the tiling threshold: fallback path
	}
	shuffled := allPairs(numReports)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	cases["shuffled"] = shuffled

	for name, pairs := range cases {
		t.Run(name, func(t *testing.T) {
			want := make([]float64, Dims*len(pairs))
			for i, p := range pairs {
				DistanceInto(want[i*Dims:(i+1)*Dims], feats[p.A], feats[p.B], JaccardMetric)
			}
			got := make([]float64, Dims*len(pairs))
			var sc cluster.WorkerScratch
			SweepInto(&sc, got, feats, pairs, JaccardMetric)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("arena[%d] = %v, want %v (pair %d dim %d)",
						i, got[i], want[i], i/Dims, i%Dims)
				}
			}
			// Re-run on the same (now dirty) scratch: stale buffer contents
			// must not leak into results.
			SweepInto(&sc, got, feats, pairs, JaccardMetric)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("dirty-scratch rerun: arena[%d] = %v, want %v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestSweepZeroAlloc pins the acceptance criterion directly: with a warmed
// per-worker scratch and a preallocated arena, the tiled sweep performs zero
// allocations per run.
func TestSweepZeroAlloc(t *testing.T) {
	const numReports = 300
	feats := sweepCorpus(t, numReports, 42)
	pairs := allPairs(numReports)
	arena := make([]float64, Dims*len(pairs))
	var sc cluster.WorkerScratch
	SweepInto(&sc, arena, feats, pairs, JaccardMetric) // warm the scratch
	allocs := testing.AllocsPerRun(5, func() {
		SweepInto(&sc, arena, feats, pairs, JaccardMetric)
	})
	if allocs != 0 {
		t.Fatalf("SweepInto allocs/run = %v, want 0", allocs)
	}
}

// TestSweepArenaIsolation is the satellite's arena-isolation proof: two
// tasks running concurrently on a RealParallel pool must hold distinct
// WorkerScratch instances, and hammering SweepInto from both (same feature
// set, interleaved goroutines) must reproduce the sequential reference
// exactly. A shared tiling buffer would corrupt the counting-sort
// permutation and scatter vectors to wrong indices.
func TestSweepArenaIsolation(t *testing.T) {
	const numReports = 300
	feats := sweepCorpus(t, numReports, 42)
	pairs := allPairs(numReports)
	want := make([]float64, Dims*len(pairs))
	for i, p := range pairs {
		DistanceInto(want[i*Dims:(i+1)*Dims], feats[p.A], feats[p.B], JaccardMetric)
	}

	c := cluster.New(cluster.Config{Executors: 1, RealParallel: true, RealWorkers: 2})
	defer c.Close()

	var mu sync.Mutex
	scratches := make(map[int]*cluster.WorkerScratch)
	arenas := [2][]float64{
		make([]float64, Dims*len(pairs)),
		make([]float64, Dims*len(pairs)),
	}
	var barrier sync.WaitGroup
	barrier.Add(2)
	_, err := c.RunStage("sweep-isolation", 2, func(tc *cluster.TaskContext) error {
		sc := tc.Scratch()
		mu.Lock()
		scratches[tc.Task()] = sc
		mu.Unlock()
		barrier.Done()
		barrier.Wait() // both tasks provably in flight before sweeping
		arena := arenas[tc.Task()]
		for rep := 0; rep < 3; rep++ {
			SweepInto(sc, arena, feats, pairs, JaccardMetric)
			for i := range want {
				if arena[i] != want[i] {
					return fmt.Errorf("task %d rep %d: arena[%d] = %v, want %v",
						tc.Task(), rep, i, arena[i], want[i])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if scratches[0] == scratches[1] {
		t.Fatalf("concurrent tasks shared WorkerScratch %p: tiling buffers alias", scratches[0])
	}
}
