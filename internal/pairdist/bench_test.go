package pairdist

import (
	"testing"

	"adrdedup/internal/adrgen"
	"adrdedup/internal/intern"
)

// benchSink keeps the kernel's results observable to the compiler.
var benchSink float64

// BenchmarkPairKernel measures the all-pairs distance kernel over 240
// generated reports (28,680 pairs per op) — the inner loop of the paper's
// pairwise distance computing module (Fig. 10(b)).
//
//   - legacy: string-set kernel; every pair builds six map[string]struct{}
//     and allocates a fresh []float64 vector (the pre-interning behavior).
//   - interned: sorted-ID merge-scan kernel writing into one flat arena —
//     zero allocations per comparison, one arena per sweep.
//
// `make bench-json` snapshots both into BENCH_pairdist.json; the interned
// kernel must show >=10x fewer allocs/op and less B/op and ns/op.
func BenchmarkPairKernel(b *testing.B) {
	const numReports = 240
	c := adrgen.Generate(adrgen.Config{
		NumReports: numReports, DuplicatePairs: 20, NumDrugs: 60, NumADRs: 90, Seed: 42,
	})
	it := intern.New()
	legacy := make([]Features, numReports)
	interned := make([]Features, numReports)
	for i, r := range c.Reports {
		legacy[i] = Extract(r)
		interned[i] = ExtractWith(it, r)
	}

	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sum float64
			for x := 0; x < numReports; x++ {
				for y := x + 1; y < numReports; y++ {
					v := Distance(legacy[x], legacy[y])
					sum += v[FieldDescription]
				}
			}
			benchSink = sum
		}
	})

	b.Run("interned", func(b *testing.B) {
		b.ReportAllocs()
		var buf [Dims]float64
		for i := 0; i < b.N; i++ {
			var sum float64
			for x := 0; x < numReports; x++ {
				for y := x + 1; y < numReports; y++ {
					DistanceInto(buf[:], interned[x], interned[y], JaccardMetric)
					sum += buf[FieldDescription]
				}
			}
			benchSink = sum
		}
	})

	b.Run("interned-arena", func(b *testing.B) {
		// The ComputeVectors shape: vectors retained, backed by one arena
		// allocation per sweep.
		b.ReportAllocs()
		const pairs = numReports * (numReports - 1) / 2
		for i := 0; i < b.N; i++ {
			arena := make([]float64, Dims*pairs)
			p := 0
			for x := 0; x < numReports; x++ {
				for y := x + 1; y < numReports; y++ {
					DistanceInto(arena[p*Dims:(p+1)*Dims:(p+1)*Dims], interned[x], interned[y], JaccardMetric)
					p++
				}
			}
			benchSink = arena[0]
		}
	})
}

// BenchmarkExtract compares plain extraction against extraction with
// interning, pricing the one-time per-report preprocessing the interned
// kernel buys its zero-allocation comparisons with.
func BenchmarkExtract(b *testing.B) {
	c := adrgen.Generate(adrgen.Config{
		NumReports: 64, DuplicatePairs: 4, NumDrugs: 30, NumADRs: 40, Seed: 7,
	})
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Extract(c.Reports[i%len(c.Reports)])
		}
	})
	b.Run("interned", func(b *testing.B) {
		it := intern.New()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ExtractWith(it, c.Reports[i%len(c.Reports)])
		}
	})
}
