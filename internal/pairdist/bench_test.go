package pairdist

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"adrdedup/internal/adrgen"
	"adrdedup/internal/cluster"
	"adrdedup/internal/intern"
)

// benchSink keeps the kernel's results observable to the compiler.
var benchSink float64

// BenchmarkPairKernel measures the all-pairs distance kernel over 240
// generated reports (28,680 pairs per op) — the inner loop of the paper's
// pairwise distance computing module (Fig. 10(b)).
//
//   - legacy: string-set kernel; every pair builds six map[string]struct{}
//     and allocates a fresh []float64 vector (the pre-interning behavior).
//   - interned: sorted-ID merge-scan kernel writing into one flat arena —
//     zero allocations per comparison, one arena per sweep.
//
// `make bench-json` snapshots both into BENCH_pairdist.json; the interned
// kernel must show >=10x fewer allocs/op and less B/op and ns/op.
func BenchmarkPairKernel(b *testing.B) {
	const numReports = 240
	c := adrgen.Generate(adrgen.Config{
		NumReports: numReports, DuplicatePairs: 20, NumDrugs: 60, NumADRs: 90, Seed: 42,
	})
	it := intern.New()
	legacy := make([]Features, numReports)
	interned := make([]Features, numReports)
	for i, r := range c.Reports {
		legacy[i] = Extract(r)
		interned[i] = ExtractWith(it, r)
	}

	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sum float64
			for x := 0; x < numReports; x++ {
				for y := x + 1; y < numReports; y++ {
					v := Distance(legacy[x], legacy[y])
					sum += v[FieldDescription]
				}
			}
			benchSink = sum
		}
	})

	b.Run("interned", func(b *testing.B) {
		b.ReportAllocs()
		var buf [Dims]float64
		for i := 0; i < b.N; i++ {
			var sum float64
			for x := 0; x < numReports; x++ {
				for y := x + 1; y < numReports; y++ {
					DistanceInto(buf[:], interned[x], interned[y], JaccardMetric)
					sum += buf[FieldDescription]
				}
			}
			benchSink = sum
		}
	})

	b.Run("interned-arena", func(b *testing.B) {
		// The ComputeVectors shape: vectors retained, backed by one arena
		// allocation per sweep.
		b.ReportAllocs()
		const pairs = numReports * (numReports - 1) / 2
		for i := 0; i < b.N; i++ {
			arena := make([]float64, Dims*pairs)
			p := 0
			for x := 0; x < numReports; x++ {
				for y := x + 1; y < numReports; y++ {
					DistanceInto(arena[p*Dims:(p+1)*Dims:(p+1)*Dims], interned[x], interned[y], JaccardMetric)
					p++
				}
			}
			benchSink = arena[0]
		}
	})

	b.Run("tiled", func(b *testing.B) {
		// The RealParallel per-worker shape: cache-tiled sweep with a
		// warmed WorkerScratch and a preallocated arena — the steady state
		// of one pool worker, 0 allocs/op.
		b.ReportAllocs()
		pairs := benchAllPairs(numReports)
		arena := make([]float64, Dims*len(pairs))
		var sc cluster.WorkerScratch
		SweepInto(&sc, arena, interned, pairs, JaccardMetric)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			SweepInto(&sc, arena, interned, pairs, JaccardMetric)
			benchSink = arena[0]
		}
	})
}

func benchAllPairs(n int) []IDPair {
	pairs := make([]IDPair, 0, n*(n-1)/2)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			pairs = append(pairs, IDPair{A: a, B: b})
		}
	}
	return pairs
}

// scalingWorkerCounts is the 1 -> NumCPU sweep grid: powers of two plus the
// exact core count.
func scalingWorkerCounts() []int {
	var counts []int
	for w := 1; w < runtime.NumCPU(); w *= 2 {
		counts = append(counts, w)
	}
	return append(counts, runtime.NumCPU())
}

// scalingChunks splits the all-pairs list into chunks (tasks), with arenas
// preallocated so the timed region allocates nothing per pair.
func scalingChunks(pairs []IDPair, tasks int) ([][]IDPair, [][]float64) {
	chunks := make([][]IDPair, tasks)
	arenas := make([][]float64, tasks)
	for t := 0; t < tasks; t++ {
		lo := t * len(pairs) / tasks
		hi := (t + 1) * len(pairs) / tasks
		chunks[t] = pairs[lo:hi]
		arenas[t] = make([]float64, Dims*(hi-lo))
	}
	return chunks, arenas
}

// BenchmarkRealParallelScaling runs the 240-report all-pairs pair-kernel
// sweep (28,680 pairs/op) as a RealParallel stage with 1 -> NumCPU workers:
// the `make bench-json` engine snapshot and the CI scaling sanity check read
// its ns/op trend. Each worker computes its chunks cache-tiled through its
// own WorkerScratch into a preallocated arena, so per-worker steady state
// stays allocation-free; remaining allocs/op are fixed stage machinery,
// independent of the pair count.
func BenchmarkRealParallelScaling(b *testing.B) {
	const numReports = 240
	c := adrgen.Generate(adrgen.Config{
		NumReports: numReports, DuplicatePairs: 20, NumDrugs: 60, NumADRs: 90, Seed: 42,
	})
	it := intern.New()
	interned := make([]Features, numReports)
	for i, r := range c.Reports {
		interned[i] = ExtractWith(it, r)
	}
	pairs := benchAllPairs(numReports)
	for _, w := range scalingWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cl := cluster.New(cluster.Config{
				Executors: 1, CoresPerExecutor: w,
				RealParallel: true, RealWorkers: w,
			})
			defer cl.Close()
			tasks := 4 * w // 4 chunks per worker leaves room for stealing
			chunks, arenas := scalingChunks(pairs, tasks)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := cl.RunStage("pairsweep", tasks, func(tc *cluster.TaskContext) error {
					ch := chunks[tc.Task()]
					SweepInto(tc.Scratch(), arenas[tc.Task()], interned, ch, JaccardMetric)
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestRealParallelScalingSpeedup is the CI scaling sanity check: on a host
// with at least 4 cores, the 4-worker all-pairs sweep must run at least 2x
// faster than the 1-worker sweep (the acceptance floor; the trend should be
// near-linear to NumCPU). Hosts below 4 cores skip — they cannot exhibit
// the parallelism this asserts.
func TestRealParallelScalingSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("host has %d CPUs, need >= 4 to measure 4-worker speedup", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in short mode")
	}
	const numReports = 240
	c := adrgen.Generate(adrgen.Config{
		NumReports: numReports, DuplicatePairs: 20, NumDrugs: 60, NumADRs: 90, Seed: 42,
	})
	it := intern.New()
	interned := make([]Features, numReports)
	for i, r := range c.Reports {
		interned[i] = ExtractWith(it, r)
	}
	pairs := benchAllPairs(numReports)

	sweep := func(workers int) time.Duration {
		cl := cluster.New(cluster.Config{
			Executors: 1, CoresPerExecutor: workers,
			RealParallel: true, RealWorkers: workers,
		})
		defer cl.Close()
		tasks := 4 * workers
		chunks, arenas := scalingChunks(pairs, tasks)
		run := func() time.Duration {
			start := time.Now()
			if _, err := cl.RunStage("pairsweep", tasks, func(tc *cluster.TaskContext) error {
				SweepInto(tc.Scratch(), arenas[tc.Task()], interned, chunks[tc.Task()], JaccardMetric)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			return time.Since(start)
		}
		run() // warm scratches and caches
		best := run()
		for i := 0; i < 4; i++ {
			if d := run(); d < best {
				best = d
			}
		}
		return best
	}

	t1 := sweep(1)
	t4 := sweep(4)
	speedup := float64(t1) / float64(t4)
	t.Logf("1 worker: %v, 4 workers: %v, speedup %.2fx", t1, t4, speedup)
	if speedup < 2 {
		t.Errorf("4-worker speedup = %.2fx, want >= 2x (1w=%v, 4w=%v)", speedup, t1, t4)
	}
}

// BenchmarkExtract compares plain extraction against extraction with
// interning, pricing the one-time per-report preprocessing the interned
// kernel buys its zero-allocation comparisons with.
func BenchmarkExtract(b *testing.B) {
	c := adrgen.Generate(adrgen.Config{
		NumReports: 64, DuplicatePairs: 4, NumDrugs: 30, NumADRs: 40, Seed: 7,
	})
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Extract(c.Reports[i%len(c.Reports)])
		}
	})
	b.Run("interned", func(b *testing.B) {
		it := intern.New()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ExtractWith(it, c.Reports[i%len(c.Reports)])
		}
	})
}
