package pairdist

import (
	"math"
	"testing"

	"adrdedup/internal/adr"
	"adrdedup/internal/adrgen"
	"adrdedup/internal/cluster"
	"adrdedup/internal/rdd"
)

func reportA() adr.Report {
	return adr.Report{
		CaseNumber:        "A",
		CalculatedAge:     46,
		Sex:               "M",
		ResidentialState:  "NSW",
		OnsetDate:         "30/04/2013 00:00:00",
		GenericNameDesc:   "Atorvastatin",
		MedDRAPTName:      "Rhabdomyolysis",
		ReportDescription: "The patient experienced rhabdomyolysis while on atorvastatin.",
	}
}

func TestDistanceIdenticalReportsIsZero(t *testing.T) {
	f := Extract(reportA())
	v := Distance(f, f)
	for i, x := range v {
		if x != 0 {
			t.Errorf("dim %d (%s) = %v, want 0", i, FieldNames[i], x)
		}
	}
}

func TestDistanceFieldRules(t *testing.T) {
	a := reportA()
	b := reportA()
	b.CalculatedAge = 84
	b.Sex = "F"
	b.ResidentialState = "VIC"
	b.OnsetDate = "-"
	b.GenericNameDesc = "Paracetamol"
	b.MedDRAPTName = "Headache"
	b.ReportDescription = "Completely different narrative about an unrelated medicine event entirely."
	v := Distance(Extract(a), Extract(b))
	for i := FieldAge; i <= FieldOnsetDate; i++ {
		if v[i] != 1 {
			t.Errorf("categorical dim %d = %v, want 1", i, v[i])
		}
	}
	if v[FieldDrugName] != 1 || v[FieldADRName] != 1 {
		t.Errorf("disjoint sets should have Jaccard distance 1: %v", v)
	}
	if v[FieldDescription] <= 0.5 {
		t.Errorf("unrelated descriptions distance = %v, want > 0.5", v[FieldDescription])
	}
}

func TestDistancePartialOverlapInLists(t *testing.T) {
	a := reportA()
	a.MedDRAPTName = "Vomiting,Pyrexia,Cough,Headache"
	b := reportA()
	b.MedDRAPTName = "Cough,Headache,Choking sensation,Chills,Vomiting"
	v := Distance(Extract(a), Extract(b))
	// Overlap = {Vomiting, Cough, Headache} = 3; union = 6; distance = 0.5.
	if math.Abs(v[FieldADRName]-0.5) > 1e-12 {
		t.Errorf("ADR Jaccard distance = %v, want 0.5", v[FieldADRName])
	}
}

func TestDistanceRangeAndSymmetry(t *testing.T) {
	c := adrgen.Generate(adrgen.Config{NumReports: 100, DuplicatePairs: 10, NumDrugs: 30, NumADRs: 40, Seed: 2})
	feats := make([]Features, len(c.Reports))
	for i, r := range c.Reports {
		feats[i] = Extract(r)
	}
	for i := 0; i < 50; i++ {
		a, b := feats[i], feats[99-i]
		v1 := Distance(a, b)
		v2 := Distance(b, a)
		for d := 0; d < Dims; d++ {
			if v1[d] < 0 || v1[d] > 1 {
				t.Fatalf("dim %d out of range: %v", d, v1[d])
			}
			if math.Abs(v1[d]-v2[d]) > 1e-12 {
				t.Fatalf("asymmetric at dim %d", d)
			}
		}
	}
}

func TestDuplicatesCloserThanRandomPairs(t *testing.T) {
	// The property the whole system rests on: ground-truth duplicates have
	// systematically smaller distance vectors than random pairs.
	c := adrgen.Generate(adrgen.Config{NumReports: 400, DuplicatePairs: 40, NumDrugs: 80, NumADRs: 120, Seed: 3})
	feats := make([]Features, len(c.Reports))
	for i, r := range c.Reports {
		feats[i] = Extract(r)
	}
	zero := make([]float64, Dims)
	var dupMean, randMean float64
	for _, d := range c.Duplicates {
		dupMean += VectorDist(Distance(feats[d.IdxA], feats[d.IdxB]), zero)
	}
	dupMean /= float64(len(c.Duplicates))
	n := 0
	for i := 0; i < 200; i += 2 {
		if c.IsDuplicatePair(i, i+1) {
			continue
		}
		randMean += VectorDist(Distance(feats[i], feats[i+1]), zero)
		n++
	}
	randMean /= float64(n)
	if dupMean >= randMean*0.7 {
		t.Errorf("duplicate mean norm %v not clearly below random mean %v", dupMean, randMean)
	}
}

func TestMaxVectorDist(t *testing.T) {
	want := math.Sqrt(Dims)
	if math.Abs(MaxVectorDist-want) > 1e-12 {
		t.Errorf("MaxVectorDist = %v, want sqrt(%d)", MaxVectorDist, Dims)
	}
}

func TestExtractAllMatchesSerial(t *testing.T) {
	c := adrgen.Generate(adrgen.Config{NumReports: 120, DuplicatePairs: 5, NumDrugs: 20, NumADRs: 30, Seed: 4})
	ctx := rdd.NewContext(cluster.New(cluster.Config{Executors: 4}))
	got, err := ExtractAll(ctx, c.Reports, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(c.Reports) {
		t.Fatalf("features = %d", len(got))
	}
	for i, r := range c.Reports {
		want := Extract(r)
		if got[i].Age != want.Age || got[i].Sex != want.Sex ||
			len(got[i].DescTokens) != len(want.DescTokens) {
			t.Fatalf("feature %d mismatch", i)
		}
	}
}

func TestComputeVectors(t *testing.T) {
	c := adrgen.Generate(adrgen.Config{NumReports: 100, DuplicatePairs: 8, NumDrugs: 20, NumADRs: 30, Seed: 5})
	ctx := rdd.NewContext(cluster.New(cluster.Config{Executors: 4}))
	feats, err := ExtractAll(ctx, c.Reports, 4)
	if err != nil {
		t.Fatal(err)
	}
	pairs := []IDPair{{A: 0, B: 1, Label: -1}, {A: 2, B: 3, Label: -1}, {A: 4, B: 5}}
	recs, err := ComputeVectors(ctx, feats, pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	for i, r := range recs {
		if r.A != pairs[i].A || r.B != pairs[i].B || r.Label != pairs[i].Label {
			t.Errorf("record %d identity mismatch: %+v", i, r)
		}
		want := Distance(feats[r.A], feats[r.B])
		for d := 0; d < Dims; d++ {
			if math.Abs(r.Vec[d]-want[d]) > 1e-12 {
				t.Errorf("record %d dim %d = %v, want %v", i, d, r.Vec[d], want[d])
			}
		}
	}
	if ctx.Cluster().Metrics().Comparisons.Load() != 3 {
		t.Errorf("comparisons metric = %d", ctx.Cluster().Metrics().Comparisons.Load())
	}
}
