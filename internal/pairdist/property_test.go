package pairdist

import (
	"math"
	"testing"
	"testing/quick"
)

// featFromRaw builds a Features value from fuzz inputs.
func featFromRaw(age uint8, sex, state, onset bool, drugs, adrs, tokens []uint8) Features {
	word := func(v uint8) string { return string(rune('a' + v%20)) }
	mk := func(vs []uint8) []string {
		out := make([]string, 0, len(vs))
		for _, v := range vs {
			out = append(out, word(v))
		}
		return out
	}
	f := Features{Age: int(age), DrugSet: mk(drugs), ADRSet: mk(adrs), DescTokens: mk(tokens)}
	if sex {
		f.Sex = "M"
	} else {
		f.Sex = "F"
	}
	if state {
		f.State = "NSW"
	} else {
		f.State = "VIC"
	}
	if onset {
		f.OnsetDate = "30/04/2013 00:00:00"
	} else {
		f.OnsetDate = "-"
	}
	return f
}

func TestDistancePropertyRangeSymmetryIdentity(t *testing.T) {
	f := func(age1, age2 uint8, sex1, sex2, st1, st2, on1, on2 bool,
		d1, d2, a1, a2, t1, t2 []uint8) bool {
		fa := featFromRaw(age1, sex1, st1, on1, d1, a1, t1)
		fb := featFromRaw(age2, sex2, st2, on2, d2, a2, t2)
		for _, m := range []TextMetric{JaccardMetric, CosineMetric} {
			ab := DistanceWith(fa, fb, m)
			ba := DistanceWith(fb, fa, m)
			self := DistanceWith(fa, fa, m)
			for d := 0; d < Dims; d++ {
				if ab[d] < 0 || ab[d] > 1+1e-9 {
					return false
				}
				if math.Abs(ab[d]-ba[d]) > 1e-9 {
					return false
				}
				if self[d] > 1e-9 {
					return false
				}
			}
			if VectorDist(ab, ba) > 1e-9 {
				return false
			}
			if VectorDist(ab, ab) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVectorDistBoundedByMax(t *testing.T) {
	f := func(age1, age2 uint8, d1, d2 []uint8) bool {
		fa := featFromRaw(age1, true, true, true, d1, d1, d1)
		fb := featFromRaw(age2, false, false, false, d2, d2, d2)
		v1 := Distance(fa, fb)
		zero := make([]float64, Dims)
		return VectorDist(v1, zero) <= MaxVectorDist+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTextMetricStrings(t *testing.T) {
	if JaccardMetric.String() != "jaccard" || CosineMetric.String() != "cosine" {
		t.Error("metric names wrong")
	}
}
