package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{0, 0}, []float64{3, 4}, 5},
		{[]float64{1, 1, 1}, []float64{1, 1, 1}, 0},
		{[]float64{-1}, []float64{1}, 2},
		{nil, nil, 0},
	}
	for _, c := range cases {
		if got := Dist(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDistPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	Dist([]float64{1}, []float64{1, 2})
}

func randVecPair(rng *rand.Rand, n int) ([]float64, []float64) {
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	return a, b
}

func TestMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(8) + 1
		a, b := randVecPair(rng, n)
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		if d := Dist(a, a); d != 0 {
			t.Fatalf("identity violated: Dist(a,a)=%v", d)
		}
		if d1, d2 := Dist(a, b), Dist(b, a); math.Abs(d1-d2) > 1e-12 {
			t.Fatalf("symmetry violated: %v vs %v", d1, d2)
		}
		if Dist(a, c) > Dist(a, b)+Dist(b, c)+1e-9 {
			t.Fatalf("triangle inequality violated")
		}
	}
}

func TestSqDistConsistentWithDist(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randVecPair(rng, 5)
		return math.Abs(Dist(a, b)*Dist(a, b)-SqDist(a, b)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Errorf("Dot(nil, nil) = %v, want 0", got)
	}
}

func TestNorm(t *testing.T) {
	if got := Norm([]float64{3, 4}); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestAddScale(t *testing.T) {
	v := []float64{1, 2}
	Add(v, []float64{3, 4})
	if v[0] != 4 || v[1] != 6 {
		t.Errorf("Add result %v, want [4 6]", v)
	}
	Scale(v, 0.5)
	if v[0] != 2 || v[1] != 3 {
		t.Errorf("Scale result %v, want [2 3]", v)
	}
}

func TestMean(t *testing.T) {
	got := Mean([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if !Equal(got, []float64{3, 4}, 1e-12) {
		t.Errorf("Mean = %v, want [3 4]", got)
	}
}

func TestMeanPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty input")
		}
	}()
	Mean(nil)
}

func TestArgMinDist(t *testing.T) {
	centers := [][]float64{{0, 0}, {10, 10}, {5, 5}}
	idx, d := ArgMinDist([]float64{4, 4}, centers)
	if idx != 2 {
		t.Errorf("ArgMinDist index = %d, want 2", idx)
	}
	if math.Abs(d-2) > 1e-12 {
		t.Errorf("ArgMinDist sqdist = %v, want 2", d)
	}
}

func TestArgMinDistFirstOnTie(t *testing.T) {
	centers := [][]float64{{1, 0}, {-1, 0}}
	idx, _ := ArgMinDist([]float64{0, 0}, centers)
	if idx != 0 {
		t.Errorf("tie should resolve to first center, got %d", idx)
	}
}

func TestCloneIndependence(t *testing.T) {
	v := []float64{1, 2, 3}
	c := Clone(v)
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone shares backing array with source")
	}
}

func TestEqual(t *testing.T) {
	if !Equal([]float64{1, 2}, []float64{1, 2 + 1e-13}, 1e-12) {
		t.Error("Equal should tolerate eps")
	}
	if Equal([]float64{1}, []float64{1, 2}, 1) {
		t.Error("Equal should reject length mismatch")
	}
	if Equal([]float64{1}, []float64{2}, 0.5) {
		t.Error("Equal should reject out-of-eps values")
	}
}
