// Package vecmath provides dense float64 vector operations shared by the
// clustering, kNN, and classification packages. Vectors are plain []float64
// slices; all binary operations require equal lengths and panic otherwise,
// since a length mismatch is always a programming error in this codebase.
package vecmath

import (
	"fmt"
	"math"
)

// Dist returns the Euclidean (L2) distance between a and b.
func Dist(a, b []float64) float64 {
	return math.Sqrt(SqDist(a, b))
}

// SqDist returns the squared Euclidean distance between a and b. Prefer it
// over Dist for comparisons: it avoids the square root and preserves order.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the L2 norm of v.
func Norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Add accumulates src into dst element-wise.
func Add(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vecmath: dimension mismatch %d vs %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] += src[i]
	}
}

// Scale multiplies every element of v by c in place.
func Scale(v []float64, c float64) {
	for i := range v {
		v[i] *= c
	}
}

// Mean returns the element-wise mean of the vectors. It panics when vs is
// empty or the vectors disagree in length.
func Mean(vs [][]float64) []float64 {
	if len(vs) == 0 {
		panic("vecmath: mean of zero vectors")
	}
	m := make([]float64, len(vs[0]))
	for _, v := range vs {
		Add(m, v)
	}
	Scale(m, 1/float64(len(vs)))
	return m
}

// ArgMinDist returns the index of the center nearest to v (squared Euclidean)
// and the squared distance to it. It panics when centers is empty.
func ArgMinDist(v []float64, centers [][]float64) (int, float64) {
	if len(centers) == 0 {
		panic("vecmath: no centers")
	}
	best := 0
	bestD := SqDist(v, centers[0])
	for i := 1; i < len(centers); i++ {
		if d := SqDist(v, centers[i]); d < bestD {
			best = i
			bestD = d
		}
	}
	return best, bestD
}

// Clone returns a copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Equal reports whether a and b have the same length and elements within eps.
func Equal(a, b []float64, eps float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > eps {
			return false
		}
	}
	return true
}
