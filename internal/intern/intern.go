// Package intern maps string tokens to dense uint32 IDs so the pairwise
// distance kernel can compare token sets by merge-scanning sorted ID slices
// instead of building hash sets per comparison (the hot path of the paper's
// pairwise distance computing module, Figure 1 / Fig. 10(b)).
//
// An Interner is built once per detector (or per extract stage) and shared:
// Intern is safe for concurrent use from parallel extract tasks, and after
// the build the structure is read-mostly — Intern hits the read-locked fast
// path for every previously seen token.
package intern

import (
	"slices"
	"sync"
)

// Interner assigns each distinct token a stable uint32 ID, in first-intern
// order. The zero value is not usable; call New.
type Interner struct {
	mu   sync.RWMutex
	ids  map[string]uint32
	toks []string
}

// New returns an empty interner.
func New() *Interner {
	return &Interner{ids: make(map[string]uint32)}
}

// Intern returns the ID of tok, assigning the next free ID on first sight.
// Safe for concurrent use.
func (it *Interner) Intern(tok string) uint32 {
	it.mu.RLock()
	id, ok := it.ids[tok]
	it.mu.RUnlock()
	if ok {
		return id
	}
	it.mu.Lock()
	defer it.mu.Unlock()
	if id, ok := it.ids[tok]; ok {
		return id
	}
	id = uint32(len(it.toks))
	it.ids[tok] = id
	it.toks = append(it.toks, tok)
	return id
}

// Resolve returns the token for id, and whether id has been assigned.
// Safe for concurrent use.
func (it *Interner) Resolve(id uint32) (string, bool) {
	it.mu.RLock()
	defer it.mu.RUnlock()
	if int(id) >= len(it.toks) {
		return "", false
	}
	return it.toks[id], true
}

// Len returns the number of distinct tokens interned so far.
func (it *Interner) Len() int {
	it.mu.RLock()
	defer it.mu.RUnlock()
	return len(it.toks)
}

// SortedSet interns every token and returns the sorted, deduplicated ID
// set — the representation strsim.JaccardSortedIDs consumes. A nil or empty
// input returns nil. The result is freshly allocated and never aliases
// interner state.
func (it *Interner) SortedSet(tokens []string) []uint32 {
	if len(tokens) == 0 {
		return nil
	}
	ids := make([]uint32, len(tokens))
	for i, t := range tokens {
		ids[i] = it.Intern(t)
	}
	slices.Sort(ids)
	return slices.Compact(ids)
}
