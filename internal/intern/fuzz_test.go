package intern

import (
	"bytes"
	"testing"
)

// FuzzIntern fuzzes the interner with arbitrary byte input split into
// tokens. Invariants, for any input:
//
//   - intern → resolve round-trips every token exactly;
//   - interning is stable: the same token yields the same ID across calls;
//   - IDs are dense: every ID below Len resolves;
//   - SortedSet output is strictly increasing (sorted and deduplicated)
//     and its resolved tokens equal the distinct input tokens.
//
// The committed corpus under testdata/fuzz/FuzzIntern seeds empty input,
// repeated tokens, and multi-byte unicode tokens.
func FuzzIntern(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("aspirin headache aspirin"))
	f.Add([]byte("头痛 nausea 头痛 ñ"))
	f.Add([]byte("a b c d e f g a b c"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tokens := []string{}
		for _, w := range bytes.Fields(data) {
			tokens = append(tokens, string(w))
		}
		it := New()
		ids := make(map[string]uint32)
		for _, tok := range tokens {
			id := it.Intern(tok)
			if prev, ok := ids[tok]; ok && prev != id {
				t.Fatalf("Intern(%q) unstable: %d then %d", tok, prev, id)
			}
			ids[tok] = id
			got, ok := it.Resolve(id)
			if !ok || got != tok {
				t.Fatalf("Resolve(Intern(%q)) = %q, %v", tok, got, ok)
			}
		}
		if it.Len() != len(ids) {
			t.Fatalf("Len = %d, want %d distinct tokens", it.Len(), len(ids))
		}
		for id := uint32(0); int(id) < it.Len(); id++ {
			if _, ok := it.Resolve(id); !ok {
				t.Fatalf("dense ID %d does not resolve", id)
			}
		}
		set := it.SortedSet(tokens)
		if len(set) != len(ids) {
			t.Fatalf("SortedSet has %d ids, want %d", len(set), len(ids))
		}
		for i, id := range set {
			if i > 0 && set[i-1] >= id {
				t.Fatalf("SortedSet not strictly increasing at %d: %v", i, set)
			}
			tok, ok := it.Resolve(id)
			if !ok {
				t.Fatalf("set id %d does not resolve", id)
			}
			if _, seen := ids[tok]; !seen {
				t.Fatalf("set id %d resolves to %q, not an input token", id, tok)
			}
		}
	})
}
