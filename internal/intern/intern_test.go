package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternRoundTrip(t *testing.T) {
	it := New()
	words := []string{"aspirin", "headache", "aspirin", "", "nausea", "头痛"}
	ids := make([]uint32, len(words))
	for i, w := range words {
		ids[i] = it.Intern(w)
	}
	if ids[0] != ids[2] {
		t.Errorf("same token interned to %d and %d", ids[0], ids[2])
	}
	if it.Len() != 5 {
		t.Errorf("Len = %d, want 5 distinct tokens", it.Len())
	}
	for i, w := range words {
		got, ok := it.Resolve(ids[i])
		if !ok || got != w {
			t.Errorf("Resolve(%d) = %q, %v; want %q", ids[i], got, ok, w)
		}
	}
	if _, ok := it.Resolve(uint32(it.Len())); ok {
		t.Error("Resolve past the end reported ok")
	}
}

func TestInternIDsAreDense(t *testing.T) {
	it := New()
	for i := 0; i < 100; i++ {
		if id := it.Intern(fmt.Sprintf("tok%d", i)); id != uint32(i) {
			t.Fatalf("token %d got id %d, want dense first-intern order", i, id)
		}
	}
}

func TestSortedSet(t *testing.T) {
	it := New()
	cases := []struct {
		in   []string
		want int // distinct count
	}{
		{nil, 0},
		{[]string{}, 0},
		{[]string{"a"}, 1},
		{[]string{"b", "a", "b", "a", "c"}, 3},
		{[]string{"x", "x", "x"}, 1},
	}
	for _, c := range cases {
		got := it.SortedSet(c.in)
		if len(got) != c.want {
			t.Errorf("SortedSet(%v) has %d ids, want %d", c.in, len(got), c.want)
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Errorf("SortedSet(%v) = %v not strictly increasing", c.in, got)
			}
		}
	}
}

func TestSortedSetMatchesMapSemantics(t *testing.T) {
	it := New()
	in := []string{"d", "b", "d", "a", "c", "b", "a"}
	ids := it.SortedSet(in)
	distinct := make(map[string]bool)
	for _, s := range in {
		distinct[s] = true
	}
	if len(ids) != len(distinct) {
		t.Fatalf("SortedSet kept %d ids, want %d distinct", len(ids), len(distinct))
	}
	seen := make(map[string]bool)
	for _, id := range ids {
		tok, ok := it.Resolve(id)
		if !ok || !distinct[tok] {
			t.Fatalf("id %d resolves to %q (%v), not an input token", id, tok, ok)
		}
		if seen[tok] {
			t.Fatalf("token %q appears twice in the set", tok)
		}
		seen[tok] = true
	}
}

// TestInternConcurrent hammers one interner from many goroutines over an
// overlapping vocabulary; run with -race. IDs must stay consistent.
func TestInternConcurrent(t *testing.T) {
	it := New()
	const workers = 8
	var wg sync.WaitGroup
	results := make([]map[string]uint32, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := make(map[string]uint32)
			for i := 0; i < 500; i++ {
				tok := fmt.Sprintf("tok%d", (i*7+w)%100)
				m[tok] = it.Intern(tok)
			}
			results[w] = m
		}(w)
	}
	wg.Wait()
	if it.Len() != 100 {
		t.Fatalf("Len = %d, want 100", it.Len())
	}
	for w := 1; w < workers; w++ {
		for tok, id := range results[w] {
			if want, ok := results[0][tok]; ok && id != want {
				t.Fatalf("worker %d saw %q=%d, worker 0 saw %d", w, tok, id, want)
			}
		}
	}
}
