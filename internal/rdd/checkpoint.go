package rdd

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"adrdedup/internal/cluster"
)

// Checkpointing: eager materialization of an RDD into the cluster's reliable
// checkpoint store, truncating its lineage. Where cached partitions live on
// the executor that computed them and die with it, checkpointed partitions
// survive any executor loss — recovery reads them back instead of recomputing
// the full lineage (and in particular never re-runs upstream shuffle map
// stages). This mirrors Spark's RDD.checkpoint(), which the paper's long
// iterative jobs rely on to bound recovery cost.

// encodePartition serializes one partition for the checkpoint store.
func encodePartition[T any](data []T) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(data); err != nil {
		return nil, fmt.Errorf("encoding checkpoint partition: %w", err)
	}
	return buf.Bytes(), nil
}

// decodePartition deserializes a checkpointed partition. gob's decoder can
// panic on some malformed inputs; the recover keeps corrupted store contents
// (and fuzzed inputs) surfacing as errors rather than crashing the task.
func decodePartition[T any](b []byte) (out []T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("decoding checkpoint partition: panic: %v", r)
		}
	}()
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&out); err != nil {
		return nil, fmt.Errorf("decoding checkpoint partition: %w", err)
	}
	return out, nil
}

// Checkpoint eagerly materializes every partition of r into the cluster's
// reliable checkpoint store and truncates the RDD's lineage: the compute
// closure is replaced by a store read, and the streaming description, fused
// chain label, and upstream prepare closures are dropped (a checkpointed RDD
// is a fusion boundary, like a shuffle output). Jobs over r — and over
// descendants — thereafter recompute from the checkpoint instead of from the
// full lineage, so losing an executor that hosted upstream shuffle outputs no
// longer forces map-stage recomputation below the checkpoint.
//
// The materializing job runs through the normal commit gate: only winning
// attempts' encoded partitions are published, and the store write happens
// driver-side exactly once per partition. Writing and later reading the store
// cross the network at the cluster's simulated bandwidth.
func (r *RDD[T]) Checkpoint() error {
	cl := r.ctx.cl
	cfg := cl.Config()
	byteCostNS := func(n int) float64 {
		return float64(n)/(cfg.NetworkMBps*1e6)*1e9 + cfg.ShuffleLatencyMS*1e6
	}
	encoded, err := RunJob(r, "checkpoint", func(tc *cluster.TaskContext, p int, data []T) ([]byte, error) {
		b, err := encodePartition(data)
		if err != nil {
			return nil, err
		}
		tc.AddVirtualNS(byteCostNS(len(b)))
		return b, nil
	})
	if err != nil {
		return fmt.Errorf("checkpointing rdd %q: %w", r.name, err)
	}
	for p, b := range encoded {
		cl.Checkpoints().Put(cluster.BlockID{RDD: r.id, Partition: p}, b)
	}

	id := r.id
	r.mu.Lock()
	r.checkpointed = true
	r.mu.Unlock()
	r.compute = func(tc *cluster.TaskContext, p int) ([]T, error) {
		b, ok := cl.Checkpoints().Get(cluster.BlockID{RDD: id, Partition: p})
		if !ok {
			return nil, fmt.Errorf("checkpointed rdd %d: partition %d missing from store", id, p)
		}
		tc.AddVirtualNS(byteCostNS(len(b)))
		return decodePartition[T](b)
	}
	r.stream = nil
	r.chain = nil
	r.prepare = nil
	return nil
}

// IsCheckpointed reports whether Checkpoint has completed for this RDD.
func (r *RDD[T]) IsCheckpointed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.checkpointed
}
