package rdd

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// TestCollectRoundTripProperty: Parallelize then Collect is the identity for
// any data and any partition count.
func TestCollectRoundTripProperty(t *testing.T) {
	f := func(data []int64, parts uint8) bool {
		ctx := testCtx()
		r := Parallelize(ctx, data, int(parts%16))
		got, err := r.Collect()
		if err != nil {
			return false
		}
		if len(data) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestFilterPartitionProperty: a predicate and its complement partition the
// dataset exactly.
func TestFilterPartitionProperty(t *testing.T) {
	f := func(data []int32, threshold int32) bool {
		ctx := testCtx()
		r := Parallelize(ctx, data, 4)
		below, err := Filter(r, func(x int32) bool { return x < threshold }).Count()
		if err != nil {
			return false
		}
		above, err := Filter(r, func(x int32) bool { return x >= threshold }).Count()
		if err != nil {
			return false
		}
		return below+above == int64(len(data))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestDistinctIdempotentProperty: Distinct twice equals Distinct once.
func TestDistinctIdempotentProperty(t *testing.T) {
	f := func(data []uint8) bool {
		ctx := testCtx()
		r := Parallelize(ctx, data, 3)
		once, err := Distinct(r, 2).Collect()
		if err != nil {
			return false
		}
		twice, err := Distinct(Distinct(r, 2), 3).Collect()
		if err != nil {
			return false
		}
		sort.Slice(once, func(i, j int) bool { return once[i] < once[j] })
		sort.Slice(twice, func(i, j int) bool { return twice[i] < twice[j] })
		if len(once) == 0 && len(twice) == 0 {
			return true
		}
		return reflect.DeepEqual(once, twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestShuffleConservesRecordsProperty: hash partitioning never loses or
// fabricates records, for any key distribution.
func TestShuffleConservesRecordsProperty(t *testing.T) {
	f := func(seed int64, n uint16, keys uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(keys)%50 + 1
		data := make([]Pair[int, int64], int(n)%2000)
		var wantSum int64
		for i := range data {
			v := rng.Int63n(1000)
			data[i] = KV(rng.Intn(k), v)
			wantSum += v
		}
		ctx := testCtx()
		shuffled := PartitionBy(Parallelize(ctx, data, 5), 7)
		vals, err := shuffled.Collect()
		if err != nil {
			return false
		}
		var gotSum int64
		for _, kv := range vals {
			gotSum += kv.Value
		}
		return len(vals) == len(data) && gotSum == wantSum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestCacheTransparencyProperty: caching must never change results.
func TestCacheTransparencyProperty(t *testing.T) {
	f := func(data []int16) bool {
		ctx := testCtx()
		plain := Map(Parallelize(ctx, data, 3), func(x int16) int32 { return int32(x) * 2 })
		cached := Map(Parallelize(ctx, data, 3), func(x int16) int32 { return int32(x) * 2 }).Cache()
		a, err := plain.Collect()
		if err != nil {
			return false
		}
		if _, err := cached.Collect(); err != nil { // populate
			return false
		}
		b, err := cached.Collect() // serve from cache
		if err != nil {
			return false
		}
		if len(a) == 0 && len(b) == 0 {
			return true
		}
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
