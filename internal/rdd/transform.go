package rdd

import (
	"fmt"
	"math/rand"

	"adrdedup/internal/cluster"
)

// Map applies f to every element.
func Map[T, U any](r *RDD[T], f func(T) U) *RDD[U] {
	return newRDD(r.ctx, r.name+".map", r.numPartitions,
		func(tc *cluster.TaskContext, p int) ([]U, error) {
			in, err := r.materialize(tc, p)
			if err != nil {
				return nil, err
			}
			out := make([]U, len(in))
			for i, v := range in {
				out[i] = f(v)
			}
			return out, nil
		}, r.prepare)
}

// Filter keeps the elements for which pred is true.
func Filter[T any](r *RDD[T], pred func(T) bool) *RDD[T] {
	return newRDD(r.ctx, r.name+".filter", r.numPartitions,
		func(tc *cluster.TaskContext, p int) ([]T, error) {
			in, err := r.materialize(tc, p)
			if err != nil {
				return nil, err
			}
			out := make([]T, 0, len(in))
			for _, v := range in {
				if pred(v) {
					out = append(out, v)
				}
			}
			return out, nil
		}, r.prepare)
}

// FlatMap applies f to every element and concatenates the results.
func FlatMap[T, U any](r *RDD[T], f func(T) []U) *RDD[U] {
	return newRDD(r.ctx, r.name+".flatMap", r.numPartitions,
		func(tc *cluster.TaskContext, p int) ([]U, error) {
			in, err := r.materialize(tc, p)
			if err != nil {
				return nil, err
			}
			var out []U
			for _, v := range in {
				out = append(out, f(v)...)
			}
			return out, nil
		}, r.prepare)
}

// MapPartitions applies f to each whole partition.
func MapPartitions[T, U any](r *RDD[T], f func(in []T) ([]U, error)) *RDD[U] {
	return MapPartitionsWithIndex(r, func(_ int, in []T) ([]U, error) { return f(in) })
}

// MapPartitionsWithIndex applies f to each whole partition along with the
// partition index.
func MapPartitionsWithIndex[T, U any](r *RDD[T], f func(partition int, in []T) ([]U, error)) *RDD[U] {
	return newRDD(r.ctx, r.name+".mapPartitions", r.numPartitions,
		func(tc *cluster.TaskContext, p int) ([]U, error) {
			in, err := r.materialize(tc, p)
			if err != nil {
				return nil, err
			}
			return f(p, in)
		}, r.prepare)
}

// Union concatenates two RDDs; the result has the sum of their partitions.
func Union[T any](a, b *RDD[T]) *RDD[T] {
	if a.ctx != b.ctx {
		panic("rdd: Union across contexts")
	}
	prepare := append(append([]func() error{}, a.prepare...), b.prepare...)
	return newRDD(a.ctx, fmt.Sprintf("union(%s,%s)", a.name, b.name),
		a.numPartitions+b.numPartitions,
		func(tc *cluster.TaskContext, p int) ([]T, error) {
			if p < a.numPartitions {
				return a.materialize(tc, p)
			}
			return b.materialize(tc, p-a.numPartitions)
		}, prepare)
}

// Cartesian pairs every element of a with every element of b. The result has
// a.NumPartitions x b.NumPartitions partitions.
func Cartesian[T, U any](a *RDD[T], b *RDD[U]) *RDD[Tuple2[T, U]] {
	if a.ctx != b.ctx {
		panic("rdd: Cartesian across contexts")
	}
	prepare := append(append([]func() error{}, a.prepare...), b.prepare...)
	nb := b.numPartitions
	return newRDD(a.ctx, fmt.Sprintf("cartesian(%s,%s)", a.name, b.name),
		a.numPartitions*nb,
		func(tc *cluster.TaskContext, p int) ([]Tuple2[T, U], error) {
			pa, pb := p/nb, p%nb
			left, err := a.materialize(tc, pa)
			if err != nil {
				return nil, err
			}
			right, err := b.materialize(tc, pb)
			if err != nil {
				return nil, err
			}
			out := make([]Tuple2[T, U], 0, len(left)*len(right))
			for _, x := range left {
				for _, y := range right {
					out = append(out, Tuple2[T, U]{x, y})
				}
			}
			return out, nil
		}, prepare)
}

// Sample returns a Bernoulli sample of r with the given fraction,
// deterministic for a given seed.
func Sample[T any](r *RDD[T], fraction float64, seed int64) *RDD[T] {
	return newRDD(r.ctx, r.name+".sample", r.numPartitions,
		func(tc *cluster.TaskContext, p int) ([]T, error) {
			in, err := r.materialize(tc, p)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(seed + int64(p)*7919))
			out := make([]T, 0, int(float64(len(in))*fraction)+1)
			for _, v := range in {
				if rng.Float64() < fraction {
					out = append(out, v)
				}
			}
			return out, nil
		}, r.prepare)
}

// Coalesce reduces the partition count without a shuffle by concatenating
// ranges of parent partitions.
func Coalesce[T any](r *RDD[T], numPartitions int) *RDD[T] {
	if numPartitions >= r.numPartitions || numPartitions < 1 {
		return r
	}
	n := r.numPartitions
	p := numPartitions
	return newRDD(r.ctx, r.name+".coalesce", p,
		func(tc *cluster.TaskContext, part int) ([]T, error) {
			lo := part * n / p
			hi := (part + 1) * n / p
			var out []T
			for i := lo; i < hi; i++ {
				in, err := r.materialize(tc, i)
				if err != nil {
					return nil, err
				}
				out = append(out, in...)
			}
			return out, nil
		}, r.prepare)
}

// Distinct removes duplicate elements via a shuffle (one partition per hash
// bucket), preserving no particular order.
func Distinct[T comparable](r *RDD[T], numPartitions int) *RDD[T] {
	pairs := Map(r, func(v T) Pair[T, struct{}] { return Pair[T, struct{}]{Key: v} })
	shuffled := PartitionBy(pairs, numPartitions)
	return MapPartitions(shuffled, func(in []Pair[T, struct{}]) ([]T, error) {
		seen := make(map[T]struct{}, len(in))
		out := make([]T, 0, len(in))
		for _, kv := range in {
			if _, ok := seen[kv.Key]; !ok {
				seen[kv.Key] = struct{}{}
				out = append(out, kv.Key)
			}
		}
		return out, nil
	})
}
