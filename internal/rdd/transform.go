package rdd

import (
	"fmt"
	"math/rand"

	"adrdedup/internal/cluster"
)

// Map applies f to every element. Map is a narrow operator: it fuses with
// adjacent narrow operators into a single streaming pass (see fuse.go).
func Map[T, U any](r *RDD[T], f func(T) U) *RDD[U] {
	return mapLabeled(r, "map", f)
}

// mapLabeled is Map with an explicit operator label for fused stage names
// (MapValues, Keys, and Values reuse it under their own labels).
func mapLabeled[T, U any](r *RDD[T], op string, f func(T) U) *RDD[U] {
	return newNarrow(r, op, func(tc *cluster.TaskContext, p int, sizeHint func(int), emit func(U) error) error {
		return r.streamInto(tc, p, sizeHint, func(v T) error {
			return emit(f(v))
		})
	})
}

// Filter keeps the elements for which pred is true. Filter is a narrow
// operator and fuses; the parent's size hint is forwarded as an upper bound.
func Filter[T any](r *RDD[T], pred func(T) bool) *RDD[T] {
	return newNarrow(r, "filter", func(tc *cluster.TaskContext, p int, sizeHint func(int), emit func(T) error) error {
		return r.streamInto(tc, p, sizeHint, func(v T) error {
			if pred(v) {
				return emit(v)
			}
			return nil
		})
	})
}

// FlatMap applies f to every element and concatenates the results. FlatMap
// is a narrow operator and fuses; the parent's size hint is forwarded as a
// guess (output may grow past it).
func FlatMap[T, U any](r *RDD[T], f func(T) []U) *RDD[U] {
	return newNarrow(r, "flatMap", func(tc *cluster.TaskContext, p int, sizeHint func(int), emit func(U) error) error {
		return r.streamInto(tc, p, sizeHint, func(v T) error {
			for _, u := range f(v) {
				if err := emit(u); err != nil {
					return err
				}
			}
			return nil
		})
	})
}

// MapElementsWithIndex applies f to every element along with its partition
// index. It is the element-wise special case of MapPartitionsWithIndex and,
// unlike it, fuses with adjacent narrow operators.
func MapElementsWithIndex[T, U any](r *RDD[T], f func(partition int, v T) U) *RDD[U] {
	return newNarrow(r, "mapIdx", func(tc *cluster.TaskContext, p int, sizeHint func(int), emit func(U) error) error {
		return r.streamInto(tc, p, sizeHint, func(v T) error {
			return emit(f(p, v))
		})
	})
}

// MapPartitions applies f to each whole partition.
func MapPartitions[T, U any](r *RDD[T], f func(in []T) ([]U, error)) *RDD[U] {
	return MapPartitionsWithIndex(r, func(_ int, in []T) ([]U, error) { return f(in) })
}

// MapPartitionsWithIndex applies f to each whole partition along with the
// partition index. Because f is an opaque whole-partition function, this is
// a fusion boundary: the parent is materialized as a slice. Element-wise
// callers should prefer MapElementsWithIndex, which fuses.
func MapPartitionsWithIndex[T, U any](r *RDD[T], f func(partition int, in []T) ([]U, error)) *RDD[U] {
	out := newRDD(r.ctx, r.name+".mapPartitions", r.numPartitions,
		func(tc *cluster.TaskContext, p int) ([]U, error) {
			in, err := r.materialize(tc, p)
			if err != nil {
				return nil, err
			}
			return f(p, in)
		}, r.prepare)
	out.parts = r.partitions
	return out
}

// MapPartitionsTC applies f to each whole partition along with the task's
// TaskContext, giving whole-partition kernels access to per-attempt services
// — most importantly TaskContext.Scratch, the worker-owned buffer bundle
// that keeps zero-alloc kernels allocation-free when tasks run concurrently
// (RealParallel mode). Like MapPartitionsWithIndex it is a fusion boundary.
//
// f may run concurrently for different partitions and may run more than once
// for the same partition (task retries, speculative attempts); it must treat
// the scratch contents as unspecified at entry and must not retain scratch
// buffers in its output.
func MapPartitionsTC[T, U any](r *RDD[T], f func(tc *cluster.TaskContext, partition int, in []T) ([]U, error)) *RDD[U] {
	out := newRDD(r.ctx, r.name+".mapPartitions", r.numPartitions,
		func(tc *cluster.TaskContext, p int) ([]U, error) {
			in, err := r.materialize(tc, p)
			if err != nil {
				return nil, err
			}
			return f(tc, p, in)
		}, r.prepare)
	out.parts = r.partitions
	return out
}

// Union concatenates two RDDs; the result has the sum of their partitions.
// Union is a fusion boundary (multi-parent).
func Union[T any](a, b *RDD[T]) *RDD[T] {
	if a.ctx != b.ctx {
		panic("rdd: Union across contexts")
	}
	prepare := append(append([]func() error{}, a.prepare...), b.prepare...)
	out := newRDD(a.ctx, fmt.Sprintf("union(%s,%s)", a.name, b.name),
		a.numPartitions+b.numPartitions,
		func(tc *cluster.TaskContext, p int) ([]T, error) {
			na := a.partitions()
			if p < na {
				return a.materialize(tc, p)
			}
			return b.materialize(tc, p-na)
		}, prepare)
	out.parts = func() int { return a.partitions() + b.partitions() }
	return out
}

// Cartesian pairs every element of a with every element of b. The result has
// a.NumPartitions x b.NumPartitions partitions. Cartesian is a fusion
// boundary for its parents (both are materialized as slices), but it streams
// its pairs element-by-element into the fused downstream chain, so a
// Cartesian followed by narrow operators never materializes the full cross
// product.
func Cartesian[T, U any](a *RDD[T], b *RDD[U]) *RDD[Tuple2[T, U]] {
	if a.ctx != b.ctx {
		panic("rdd: Cartesian across contexts")
	}
	prepare := append(append([]func() error{}, a.prepare...), b.prepare...)
	stream := func(tc *cluster.TaskContext, p int, sizeHint func(int), emit func(Tuple2[T, U]) error) error {
		// The right side's count is read at execution time: an adaptively
		// coalesced parent changes the p -> (pa, pb) mapping with it.
		nb := b.partitions()
		pa, pb := p/nb, p%nb
		left, err := a.materialize(tc, pa)
		if err != nil {
			return err
		}
		right, err := b.materialize(tc, pb)
		if err != nil {
			return err
		}
		if sizeHint != nil {
			sizeHint(len(left) * len(right))
		}
		for _, x := range left {
			for _, y := range right {
				if err := emit(Tuple2[T, U]{x, y}); err != nil {
					return err
				}
			}
		}
		return nil
	}
	out := newRDD(a.ctx, fmt.Sprintf("cartesian(%s,%s)", a.name, b.name),
		a.numPartitions*b.numPartitions, collectStream(stream), prepare)
	out.parts = func() int { return a.partitions() * b.partitions() }
	out.stream = stream
	return out
}

// Sample returns a Bernoulli sample of r with the given fraction,
// deterministic for a given seed. Sample is a narrow operator and fuses:
// the per-partition RNG consumes one draw per input element in order, so
// fused and unfused execution select identical elements.
func Sample[T any](r *RDD[T], fraction float64, seed int64) *RDD[T] {
	return newNarrow(r, "sample", func(tc *cluster.TaskContext, p int, sizeHint func(int), emit func(T) error) error {
		rng := rand.New(rand.NewSource(seed + int64(p)*7919))
		scaled := func(n int) {
			if sizeHint != nil {
				sizeHint(int(float64(n)*fraction) + 1)
			}
		}
		return r.streamInto(tc, p, scaled, func(v T) error {
			if rng.Float64() < fraction {
				return emit(v)
			}
			return nil
		})
	})
}

// Coalesce reduces the partition count without a shuffle by concatenating
// ranges of parent partitions. Coalesce is a fusion boundary (it reshapes
// partitioning).
func Coalesce[T any](r *RDD[T], numPartitions int) *RDD[T] {
	if numPartitions >= r.numPartitions || numPartitions < 1 {
		return r
	}
	p := numPartitions
	return newRDD(r.ctx, r.name+".coalesce", p,
		func(tc *cluster.TaskContext, part int) ([]T, error) {
			// Resolve the parent count per task: adaptive coalescing may have
			// shrunk it since this RDD was declared. The range arithmetic
			// still covers [0, n) exactly once even when n < p (some output
			// partitions are then empty).
			n := r.partitions()
			lo := part * n / p
			hi := (part + 1) * n / p
			var out []T
			for i := lo; i < hi; i++ {
				in, err := r.materialize(tc, i)
				if err != nil {
					return nil, err
				}
				out = append(out, in...)
			}
			return out, nil
		}, r.prepare)
}

// Distinct removes duplicate elements via a shuffle (one partition per hash
// bucket), preserving no particular order.
func Distinct[T comparable](r *RDD[T], numPartitions int) *RDD[T] {
	pairs := Map(r, func(v T) Pair[T, struct{}] { return Pair[T, struct{}]{Key: v} })
	shuffled := PartitionBy(pairs, numPartitions)
	return MapPartitions(shuffled, func(in []Pair[T, struct{}]) ([]T, error) {
		seen := make(map[T]struct{}, len(in))
		out := make([]T, 0, len(in))
		for _, kv := range in {
			if _, ok := seen[kv.Key]; !ok {
				seen[kv.Key] = struct{}{}
				out = append(out, kv.Key)
			}
		}
		return out, nil
	})
}
