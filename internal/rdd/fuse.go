package rdd

import (
	"sync/atomic"

	"adrdedup/internal/cluster"
)

// Fused narrow-stage execution.
//
// Narrow (element-wise) transformations — Map, Filter, FlatMap, Sample,
// MapValues, Keys, Values, MapElementsWithIndex — carry, in addition to the
// usual per-partition compute closure, a *streaming* description of the
// operator: a function that pushes the partition's elements one at a time
// into a downstream emit callback. When a chain of such operators is
// materialized, the chain collapses into a single one-pass loop over the
// nearest upstream fusion boundary with one output allocation, instead of
// one full intermediate slice per operator.
//
// Fusion boundaries — places where a partition must exist as a real slice —
// are:
//
//   - cached RDDs (the block store holds whole partitions; downstream
//     operators must read through the cache, and the cache must be fed);
//   - shuffle outputs (PartitionBy, and everything built on it) and sources
//     (Parallelize), whose partitions arrive as slices;
//   - multi-parent / partition-reshaping operators (Union, Cartesian,
//     Coalesce) and opaque whole-partition operators (MapPartitions,
//     MapPartitionsWithIndex, SortBy), which consume their parents as
//     slices. Cartesian is special-cased: it is a boundary for its *parents*
//     but streams its pairs element-by-element into the fused downstream
//     chain, so `Cartesian(a, b) → Filter → Map` never materializes the full
//     cross product.
//
// Counter attribution is unchanged by fusion: records and working-set bytes
// are charged where partitions actually materialize — at the boundary RDD a
// job or shuffle map stage runs over — so metrics stay bit-identical to
// unfused execution (the differential suite pins this down).
//
// A cached RDD is a boundary *dynamically*: Cache() may be called after
// downstream transformations were declared, so fusability is re-checked at
// execution time, not frozen at build time.

// streamFn pushes one partition's elements into emit, one element at a time.
// sizeHint, when non-nil, is called at most once before the first emit with
// an upper-bound estimate of the output size, letting collectors pre-size
// their single output allocation. emit's error aborts the stream.
type streamFn[T any] func(tc *cluster.TaskContext, partition int, sizeHint func(int), emit func(T) error) error

// fusionOff disables fused execution when set (every narrow operator then
// materializes its parent, as before fusion existed). It exists so
// benchmarks and the differential suite can compare the two paths; the
// default is fusion on.
var fusionOff atomic.Bool

// SetFusionEnabled toggles fused narrow-stage execution process-wide and
// returns the previous setting. Intended for benchmarks and differential
// tests; production code should leave fusion enabled.
func SetFusionEnabled(on bool) bool {
	return !fusionOff.Swap(!on)
}

// FusionEnabled reports whether fused narrow-stage execution is active.
func FusionEnabled() bool { return !fusionOff.Load() }

// fusable reports whether downstream operators may stream through this RDD
// instead of materializing it: it has a streaming description, fusion is
// enabled, and it is not cached (a cached RDD must be read through — and
// feed — the block store, making it a fusion boundary).
func (r *RDD[T]) fusable() bool {
	if r.stream == nil || !FusionEnabled() {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.cached
}

// streamInto feeds the partition's elements to emit one at a time: through
// the fused streaming path when this RDD is fusable, and by materializing
// the partition and looping over it otherwise (the boundary base case).
func (r *RDD[T]) streamInto(tc *cluster.TaskContext, partition int, sizeHint func(int), emit func(T) error) error {
	if r.fusable() {
		return r.stream(tc, partition, sizeHint, emit)
	}
	data, err := r.materialize(tc, partition)
	if err != nil {
		return err
	}
	if sizeHint != nil {
		sizeHint(len(data))
	}
	for _, v := range data {
		if err := emit(v); err != nil {
			return err
		}
	}
	return nil
}

// collectPresize caps how far a sizeHint may pre-size the collector's output
// slice. Hints are upper bounds (a fused Filter forwards its input size; a
// streaming Cartesian hints the full cross-product size), so an uncapped
// hint would reserve the worst case even when a selective filter keeps a few
// elements — exactly the working-set blowup fusion is meant to remove.
const collectPresize = 8192

// collectStream turns a streaming operator description into the usual
// per-partition compute closure: one pass, one output allocation (pre-sized
// from the chain's size hint, capped at collectPresize).
func collectStream[T any](stream streamFn[T]) func(tc *cluster.TaskContext, partition int) ([]T, error) {
	return func(tc *cluster.TaskContext, partition int) ([]T, error) {
		var out []T
		hint := func(n int) {
			if out != nil || n <= 0 {
				return
			}
			if n > collectPresize {
				n = collectPresize
			}
			out = make([]T, 0, n)
		}
		err := stream(tc, partition, hint, func(v T) error {
			out = append(out, v)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
}

// newNarrow builds the RDD for an element-wise transformation of parent. op
// is the short operator label ("map", "filter", ...) used in fused stage
// names; stream is the element-wise description, from which the compute
// closure falls out via collectStream. The static debug name keeps the
// pre-fusion dotted form (parent.op); the stage name reported to traces is
// computed dynamically by lineageName, joining fused operators with "+" up
// to the nearest boundary (e.g. "reports.map+filter+map").
func newNarrow[T, U any](parent *RDD[T], op string, stream streamFn[U]) *RDD[U] {
	out := newRDD(parent.ctx, parent.name+"."+op, parent.numPartitions,
		collectStream(stream), parent.prepare)
	// Narrow operators mirror their parent's partitioning one-to-one, so the
	// count resolves through the parent: an adaptively coalesced upstream
	// shuffle shrinks the whole narrow chain with it.
	out.parts = parent.partitions
	out.stream = stream
	out.chain = func() string {
		if parent.fusable() {
			return parent.lineageName() + "+" + op
		}
		return parent.lineageName() + "." + op
	}
	return out
}

// lineageName returns the name used to tag stages that materialize this RDD.
// For narrow operators it reflects the fused chain as of the moment the
// stage is submitted (caching a parent splits the chain back into dotted
// segments); SetName overrides it, as it always did.
func (r *RDD[T]) lineageName() string {
	if r.chain != nil && !r.nameOverride {
		return r.chain()
	}
	return r.name
}
