package rdd

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"adrdedup/internal/cluster"
)

// Differential correctness suite for fused narrow-stage execution.
//
// Randomized RDD programs — seeded mixes of narrow operators, shuffles,
// caching, Union and Cartesian — run on the simulated cluster and are checked
// against a plain sequential in-memory oracle that applies the same operators
// to a Go slice. The cluster runs across several partition counts and under
// fault injection; in every configuration the collected multiset must be
// bit-identical to the oracle's. A second differential axis compares fused
// against unfused execution of the identical program (exact order, since
// narrow-only programs are order-deterministic), which also covers Sample,
// whose output depends on partitioning and so has no partition-agnostic
// oracle.

// drec is the differential suite's record type.
type drec = Pair[int, int]

// diffOp is one program step: a cluster-side transformation paired with its
// sequential oracle. np is the shuffle partition parameter (ignored by
// narrow operators). grows marks operators that enlarge the dataset, so the
// generator can bound program blowup. shuffle marks operators that reorder
// across partitions (multiset comparison only); narrowOnly programs admit
// exact-order comparison.
type diffOp struct {
	name    string
	grows   bool
	shuffle bool
	apply   func(r *RDD[drec], np int) *RDD[drec]
	oracle  func(in []drec, np int) []drec
}

func diffOps() []diffOp {
	return []diffOp{
		{
			name: "map",
			apply: func(r *RDD[drec], _ int) *RDD[drec] {
				return Map(r, func(kv drec) drec { return KV((kv.Key*3+1)%17, kv.Value*2+1) })
			},
			oracle: func(in []drec, _ int) []drec {
				out := make([]drec, 0, len(in))
				for _, kv := range in {
					out = append(out, KV((kv.Key*3+1)%17, kv.Value*2+1))
				}
				return out
			},
		},
		{
			name: "filter",
			apply: func(r *RDD[drec], _ int) *RDD[drec] {
				return Filter(r, func(kv drec) bool { return (kv.Key+kv.Value)%3 != 0 })
			},
			oracle: func(in []drec, _ int) []drec {
				var out []drec
				for _, kv := range in {
					if (kv.Key+kv.Value)%3 != 0 {
						out = append(out, kv)
					}
				}
				return out
			},
		},
		{
			name:  "flatMap",
			grows: true,
			apply: func(r *RDD[drec], _ int) *RDD[drec] {
				return FlatMap(r, func(kv drec) []drec {
					if kv.Value%2 == 0 {
						return []drec{kv, KV(kv.Key, kv.Value+100)}
					}
					return []drec{kv}
				})
			},
			oracle: func(in []drec, _ int) []drec {
				var out []drec
				for _, kv := range in {
					out = append(out, kv)
					if kv.Value%2 == 0 {
						out = append(out, KV(kv.Key, kv.Value+100))
					}
				}
				return out
			},
		},
		{
			name: "mapValues",
			apply: func(r *RDD[drec], _ int) *RDD[drec] {
				return MapValues(r, func(v int) int { return v - 7 })
			},
			oracle: func(in []drec, _ int) []drec {
				out := make([]drec, 0, len(in))
				for _, kv := range in {
					out = append(out, KV(kv.Key, kv.Value-7))
				}
				return out
			},
		},
		{
			name: "keys",
			apply: func(r *RDD[drec], _ int) *RDD[drec] {
				return Map(Keys(r), func(k int) drec { return KV(k, k) })
			},
			oracle: func(in []drec, _ int) []drec {
				out := make([]drec, 0, len(in))
				for _, kv := range in {
					out = append(out, KV(kv.Key, kv.Key))
				}
				return out
			},
		},
		{
			name: "cache",
			apply: func(r *RDD[drec], _ int) *RDD[drec] {
				return r.Cache()
			},
			oracle: func(in []drec, _ int) []drec { return in },
		},
		{
			name:  "union",
			grows: true,
			apply: func(r *RDD[drec], _ int) *RDD[drec] {
				return Union(r, Map(r, func(kv drec) drec { return KV(kv.Key+1, kv.Value+13) }))
			},
			oracle: func(in []drec, _ int) []drec {
				out := append([]drec(nil), in...)
				for _, kv := range in {
					out = append(out, KV(kv.Key+1, kv.Value+13))
				}
				return out
			},
		},
		{
			name:  "cartesian",
			grows: true,
			apply: func(r *RDD[drec], _ int) *RDD[drec] {
				other := Parallelize(r.ctx, []int{1, 2, 3}, 2)
				return Map(Cartesian(r, other), func(t Tuple2[drec, int]) drec {
					return KV(t.A.Key+t.B, t.A.Value*t.B)
				})
			},
			oracle: func(in []drec, _ int) []drec {
				var out []drec
				for _, kv := range in {
					for _, y := range []int{1, 2, 3} {
						out = append(out, KV(kv.Key+y, kv.Value*y))
					}
				}
				return out
			},
		},
		{
			name: "coalesce",
			apply: func(r *RDD[drec], _ int) *RDD[drec] {
				return Coalesce(r, 2)
			},
			oracle: func(in []drec, _ int) []drec { return in },
		},
		{
			name:    "partitionBy",
			shuffle: true,
			apply: func(r *RDD[drec], np int) *RDD[drec] {
				return PartitionBy(r, np)
			},
			oracle: func(in []drec, _ int) []drec { return in },
		},
		{
			name:    "reduceByKey",
			shuffle: true,
			apply: func(r *RDD[drec], np int) *RDD[drec] {
				return ReduceByKey(r, func(a, b int) int { return a + b }, np)
			},
			oracle: func(in []drec, _ int) []drec {
				sums := make(map[int]int)
				var order []int
				for _, kv := range in {
					if _, ok := sums[kv.Key]; !ok {
						order = append(order, kv.Key)
					}
					sums[kv.Key] += kv.Value
				}
				out := make([]drec, 0, len(order))
				for _, k := range order {
					out = append(out, KV(k, sums[k]))
				}
				return out
			},
		},
		{
			name:    "sortBy",
			shuffle: true,
			apply: func(r *RDD[drec], np int) *RDD[drec] {
				return SortBy(r, func(a, b drec) bool { return a.Key < b.Key }, np)
			},
			oracle: func(in []drec, _ int) []drec {
				// Stable by key: equal keys keep input order, the engine's
				// contract (stable local sorts + deterministic fetch order).
				out := append([]drec(nil), in...)
				sort.SliceStable(out, func(i, j int) bool { return out[i].Key < out[j].Key })
				return out
			},
		},
		{
			name:    "distinct",
			shuffle: true,
			apply: func(r *RDD[drec], np int) *RDD[drec] {
				return Distinct(r, np)
			},
			oracle: func(in []drec, _ int) []drec {
				seen := make(map[drec]bool, len(in))
				var out []drec
				for _, kv := range in {
					if !seen[kv] {
						seen[kv] = true
						out = append(out, kv)
					}
				}
				return out
			},
		},
	}
}

// genProgram draws nOps operators from ops, bounding dataset growth to at
// most two growing operators per program.
func genProgram(rng *rand.Rand, ops []diffOp, nOps int) []diffOp {
	var prog []diffOp
	grown := 0
	for len(prog) < nOps {
		op := ops[rng.Intn(len(ops))]
		if op.grows {
			if grown >= 2 {
				continue
			}
			grown++
		}
		prog = append(prog, op)
	}
	return prog
}

func progName(prog []diffOp) string {
	s := ""
	for i, op := range prog {
		if i > 0 {
			s += "."
		}
		s += op.name
	}
	return s
}

// diffData is the deterministic input dataset: keys in a small domain so
// keyed operators collide, values spread out.
func diffData(n int) []drec {
	data := make([]drec, n)
	for i := range data {
		data[i] = KV(i%13, i*7%101)
	}
	return data
}

// runOnCluster executes prog on a fresh simulated cluster and collects the
// result. With speculate set, straggler injection and an aggressive
// speculation policy are enabled so duplicate attempts actually race the
// primaries — results must be unaffected either way.
func runOnCluster(t *testing.T, prog []diffOp, data []drec, parts int, failureRate float64, speculate bool) []drec {
	t.Helper()
	cfg := cluster.Config{
		Executors:        2,
		CoresPerExecutor: 2,
		FailureRate:      failureRate,
		MaxTaskRetries:   80,
		Seed:             99,
	}
	if speculate {
		cfg.Speculation = true
		cfg.SpeculationQuantile = 0.25
		cfg.SpeculationMultiplier = 1.1
		cfg.SpeculationMinRuntimeMS = -1
		cfg.StragglerRate = 0.3
		cfg.StragglerVirtualMS = 40
		cfg.StragglerRealDelayMS = 2
	}
	cl := cluster.New(cfg)
	ctx := NewContext(cl)
	r := Parallelize(ctx, data, parts).SetName("diff")
	for i, op := range prog {
		r = op.apply(r, 2+i%3)
	}
	got, err := r.Collect()
	if err != nil {
		t.Fatalf("program %s (parts=%d fail=%v): %v", progName(prog), parts, failureRate, err)
	}
	return got
}

// runOracle applies prog sequentially to a plain slice.
func runOracle(prog []diffOp, data []drec) []drec {
	out := append([]drec(nil), data...)
	for i, op := range prog {
		out = op.oracle(out, 2+i%3)
	}
	return out
}

// canon sorts a record multiset into its canonical order.
func canon(in []drec) []drec {
	out := append([]drec(nil), in...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Value < out[j].Value
	})
	if len(out) == 0 {
		return nil
	}
	return out
}

// TestDifferentialFusedVsOracle: randomized programs over the full operator
// mix (narrow chains, shuffles, caching, Union, Cartesian) must produce the
// oracle's exact multiset on 1, 3, and 8 partitions, fault-free and under
// FailureRate 0.3, with and without speculative execution racing injected
// stragglers.
func TestDifferentialFusedVsOracle(t *testing.T) {
	withFusion(t, true)
	ops := diffOps()
	data := diffData(120)
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := genProgram(rng, ops, 4+rng.Intn(4))
		want := canon(runOracle(prog, data))
		for _, parts := range []int{1, 3, 8} {
			for _, failureRate := range []float64{0, 0.3} {
				for _, speculate := range []bool{false, true} {
					name := fmt.Sprintf("seed%d/%s/parts%d/fail%v/spec%v", seed, progName(prog), parts, failureRate, speculate)
					got := canon(runOnCluster(t, prog, data, parts, failureRate, speculate))
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s: fused cluster result diverges from oracle\n got (%d recs): %v\nwant (%d recs): %v",
							name, len(got), got, len(want), want)
					}
				}
			}
		}
	}
}

// TestSortByStableEqualKeys is the equal-key axis of the sort differential:
// sorting by key alone leaves equal-key order undefined by less, and an
// unstable partition-local sort let it vary with partition layout and sort
// internals. The engine's contract is stronger — equal keys come out in
// input order (stable local sorts over the shuffle's deterministic fetch
// order) — so the exact output sequence must match a sequential stable sort
// for every partitioning and under fault injection.
func TestSortByStableEqualKeys(t *testing.T) {
	data := diffData(200) // 13 key groups, ~15 records each, values unique per key
	want := append([]drec(nil), data...)
	sort.SliceStable(want, func(i, j int) bool { return want[i].Key < want[j].Key })
	for _, parts := range []int{1, 3, 8} {
		for _, np := range []int{1, 2, 5} {
			for _, failureRate := range []float64{0, 0.3} {
				cl := cluster.New(cluster.Config{
					Executors: 2, CoresPerExecutor: 2,
					FailureRate: failureRate, MaxTaskRetries: 80, Seed: 99,
				})
				ctx := NewContext(cl)
				sorted := SortBy(Parallelize(ctx, data, parts).SetName("sortIn"),
					func(a, b drec) bool { return a.Key < b.Key }, np)
				got, err := sorted.Collect()
				if err != nil {
					t.Fatalf("parts=%d np=%d fail=%v: %v", parts, np, failureRate, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("parts=%d np=%d fail=%v: equal-key order diverges from stable oracle",
						parts, np, failureRate)
				}
			}
		}
	}
}

// narrowDiffOps is the operator mix for the exact-order differential: only
// order-deterministic operators (no shuffle), plus Sample and
// MapElementsWithIndex, whose outputs depend on partitioning and therefore
// cannot be checked against a partition-agnostic oracle.
func narrowDiffOps() []diffOp {
	var ops []diffOp
	for _, op := range diffOps() {
		if !op.shuffle {
			ops = append(ops, op)
		}
	}
	ops = append(ops,
		diffOp{
			name: "sample",
			apply: func(r *RDD[drec], _ int) *RDD[drec] {
				return Sample(r, 0.7, 31)
			},
		},
		diffOp{
			name: "mapIdx",
			apply: func(r *RDD[drec], _ int) *RDD[drec] {
				return MapElementsWithIndex(r, func(p int, kv drec) drec {
					return KV(kv.Key, kv.Value+p)
				})
			},
		},
	)
	return ops
}

// TestDifferentialFusedVsUnfused: the identical narrow program, run on
// identically configured clusters with fusion on and off, must produce
// exactly the same sequence — element for element, order included — both
// fault-free and under fault injection.
func TestDifferentialFusedVsUnfused(t *testing.T) {
	ops := narrowDiffOps()
	data := diffData(150)
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed * 31))
		prog := genProgram(rng, ops, 4+rng.Intn(4))
		for _, parts := range []int{1, 3, 8} {
			for _, failureRate := range []float64{0, 0.3} {
				run := func(fused bool) []drec {
					prev := SetFusionEnabled(fused)
					defer SetFusionEnabled(prev)
					return runOnCluster(t, prog, data, parts, failureRate, false)
				}
				fused, unfused := run(true), run(false)
				if len(fused) == 0 && len(unfused) == 0 {
					continue
				}
				if !reflect.DeepEqual(fused, unfused) {
					t.Errorf("seed%d/%s/parts%d/fail%v: fused order diverges from unfused\n fused: %v\nunfused: %v",
						seed, progName(prog), parts, failureRate, fused, unfused)
				}
			}
		}
	}
}
