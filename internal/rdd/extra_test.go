package rdd

import (
	"reflect"
	"sort"
	"testing"
)

func TestLeftOuterJoin(t *testing.T) {
	ctx := testCtx()
	left := Parallelize(ctx, []Pair[string, int]{KV("a", 1), KV("b", 2), KV("c", 3)}, 2)
	right := Parallelize(ctx, []Pair[string, string]{KV("a", "x"), KV("a", "y")}, 2)
	got, err := LeftOuterJoin(left, right, 3).Collect()
	if err != nil {
		t.Fatal(err)
	}
	type row struct {
		k  string
		v  int
		w  string
		ok bool
	}
	var rows []row
	for _, kv := range got {
		rows = append(rows, row{kv.Key, kv.Value.A, kv.Value.B.Value, kv.Value.B.OK})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].k != rows[j].k {
			return rows[i].k < rows[j].k
		}
		return rows[i].w < rows[j].w
	})
	want := []row{
		{"a", 1, "x", true}, {"a", 1, "y", true},
		{"b", 2, "", false}, {"c", 3, "", false},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("rows = %v, want %v", rows, want)
	}
}

func TestSubtractByKey(t *testing.T) {
	ctx := testCtx()
	left := Parallelize(ctx, kvPairs(50, 10), 4) // keys 0..9
	right := Parallelize(ctx, []Pair[int, string]{KV(0, "x"), KV(3, "y"), KV(7, "z")}, 2)
	got, err := SubtractByKey(left, right, 3).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 35 {
		t.Fatalf("kept %d records, want 35", len(got))
	}
	for _, kv := range got {
		if kv.Key == 0 || kv.Key == 3 || kv.Key == 7 {
			t.Fatalf("key %d should have been subtracted", kv.Key)
		}
	}
}

func TestLookup(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, kvPairs(40, 4), 5)
	got, err := Lookup(r, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("found %d values, want 10", len(got))
	}
	for _, v := range got {
		if v%4 != 2 {
			t.Errorf("value %d under wrong key", v)
		}
	}
	missing, err := Lookup(r, 99)
	if err != nil || len(missing) != 0 {
		t.Errorf("missing key: %v, %v", missing, err)
	}
}

func TestMinMaxSum(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, []float64{3, 1, 4, 1, 5, 9, 2, 6}, 3)
	less := func(a, b float64) bool { return a < b }
	mn, err := Min(r, less)
	if err != nil || mn != 1 {
		t.Errorf("Min = %v, %v", mn, err)
	}
	mx, err := Max(r, less)
	if err != nil || mx != 9 {
		t.Errorf("Max = %v, %v", mx, err)
	}
	sum, err := SumFloat64(r)
	if err != nil || sum != 31 {
		t.Errorf("Sum = %v, %v", sum, err)
	}
	empty := Parallelize(ctx, []float64(nil), 1)
	if _, err := Min(empty, less); err != ErrEmpty {
		t.Errorf("Min on empty = %v", err)
	}
	if s, err := SumFloat64(empty); err != nil || s != 0 {
		t.Errorf("Sum on empty = %v, %v", s, err)
	}
}

func TestOptionHelpers(t *testing.T) {
	s := Some(42)
	if !s.OK || s.Value != 42 {
		t.Errorf("Some = %+v", s)
	}
	n := None[int]()
	if n.OK || n.Value != 0 {
		t.Errorf("None = %+v", n)
	}
}
