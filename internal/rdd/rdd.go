// Package rdd implements a Spark-like resilient distributed dataset layer on
// top of the simulated cluster (internal/cluster). An RDD is an immutable,
// lazily evaluated, partitioned collection defined by a per-partition compute
// closure plus its lineage. Transformations (Map, Filter, Join, ReduceByKey,
// ...) build new RDDs without running anything; actions (Collect, Count,
// Reduce, ...) submit jobs. Jobs split into stages at shuffle boundaries,
// exactly as in Spark: a keyed transformation first runs a map stage that
// hash-partitions its input into the shuffle service, then downstream stages
// read the shuffled blocks.
//
// Because Go methods cannot introduce new type parameters, transformations
// that change the element type are package-level functions: rdd.Map(r, f)
// rather than r.Map(f).
//
// RDDs may be cached (Cache) in the cluster's block store. Cached partitions
// that are evicted under memory pressure are transparently recomputed from
// lineage on the next access — the fault-tolerance property the paper relies
// on Spark for.
package rdd

import (
	"fmt"
	"sync"
	"sync/atomic"

	"adrdedup/internal/cluster"
)

// Context owns RDD identity and default parallelism for one logical Spark
// application. It is safe for use from a single driver goroutine (like a
// SparkContext, jobs are submitted sequentially).
type Context struct {
	cl          *cluster.Cluster
	nextID      atomic.Int64
	parallelism int
}

// NewContext creates a driver context bound to a cluster. The default
// parallelism is the cluster's virtual slot count.
func NewContext(cl *cluster.Cluster) *Context {
	return &Context{cl: cl, parallelism: cl.SlotCount()}
}

// Cluster returns the underlying simulated cluster.
func (c *Context) Cluster() *cluster.Cluster { return c.cl }

// DefaultParallelism returns the partition count used when callers pass 0.
func (c *Context) DefaultParallelism() int { return c.parallelism }

// RDD is an immutable partitioned dataset of T.
type RDD[T any] struct {
	ctx  *Context
	id   int
	name string

	numPartitions int
	// parts, when non-nil, resolves the partition count lazily. Adaptive
	// post-shuffle coalescing (cluster.CoalescePlan) can shrink a shuffled
	// RDD's partition count only after its map stage has run and byte sizes
	// are known, which is long after downstream RDDs were declared — so
	// narrow children resolve their count through their parent at submission
	// time instead of freezing numPartitions at build time.
	parts   func() int
	compute func(tc *cluster.TaskContext, partition int) ([]T, error)

	// stream, when non-nil, is the element-wise streaming description of
	// this RDD used for fused narrow-stage execution (see fuse.go).
	// compute and stream produce identical partitions; stream avoids
	// materializing the chain's intermediates.
	stream streamFn[T]

	// chain computes the fused lineage label ("base.map+filter") for stage
	// names; nil for non-narrow RDDs. nameOverride records that SetName
	// replaced the derived name, which then also wins over chain.
	chain        func() string
	nameOverride bool

	// prepare holds idempotent closures that must run (driver-side)
	// before any job over this RDD: one per upstream shuffle map stage.
	prepare []func() error

	// bytesPerRecord is the size estimate used for cache and shuffle
	// accounting.
	bytesPerRecord int64

	mu         sync.Mutex
	cached     bool
	everCached map[int]bool // partitions that were stored at least once

	// checkpointed records that Checkpoint replaced compute with a reliable
	// checkpoint-store read and truncated the lineage (see checkpoint.go).
	checkpointed bool

	// hashPartitioned marks the output of PartitionBy, letting keyed
	// operations skip a redundant shuffle when co-partitioned.
	hashPartitioned bool
}

const defaultBytesPerRecord = 64

func newRDD[T any](ctx *Context, name string, partitions int,
	compute func(tc *cluster.TaskContext, partition int) ([]T, error),
	prepare []func() error) *RDD[T] {
	if partitions < 1 {
		partitions = 1
	}
	return &RDD[T]{
		ctx:            ctx,
		id:             int(ctx.nextID.Add(1)),
		name:           name,
		numPartitions:  partitions,
		compute:        compute,
		prepare:        prepare,
		bytesPerRecord: defaultBytesPerRecord,
		everCached:     make(map[int]bool),
	}
}

// Parallelize distributes data across numPartitions partitions (0 = default
// parallelism). The slice is referenced, not copied; callers must not mutate
// it afterwards.
func Parallelize[T any](ctx *Context, data []T, numPartitions int) *RDD[T] {
	if numPartitions <= 0 {
		numPartitions = ctx.parallelism
	}
	if numPartitions > len(data) && len(data) > 0 {
		numPartitions = len(data)
	}
	if len(data) == 0 {
		numPartitions = 1
	}
	n := len(data)
	p := numPartitions
	return newRDD(ctx, "parallelize", p, func(tc *cluster.TaskContext, part int) ([]T, error) {
		lo := part * n / p
		hi := (part + 1) * n / p
		return data[lo:hi], nil
	}, nil)
}

// Name returns the RDD's debug name.
func (r *RDD[T]) Name() string { return r.name }

// ID returns the RDD's unique id within its context.
func (r *RDD[T]) ID() int { return r.id }

// NumPartitions returns the partition count. For RDDs downstream of an
// adaptively coalesced shuffle the count is resolved lazily: before the
// shuffle's map stage has run it reports the declared (pre-coalesce) count,
// afterwards the post-plan count every job actually uses.
func (r *RDD[T]) NumPartitions() int { return r.partitions() }

// partitions resolves the current partition count (see the parts field).
func (r *RDD[T]) partitions() int {
	if r.parts != nil {
		return r.parts()
	}
	return r.numPartitions
}

// SetName sets the debug name and returns the RDD for chaining. The name
// also replaces the derived fused-chain label in stage names.
func (r *RDD[T]) SetName(name string) *RDD[T] {
	r.name = name
	r.nameOverride = true
	return r
}

// WithBytesPerRecord overrides the per-record size estimate used for cache
// and shuffle byte accounting, returning the RDD for chaining.
func (r *RDD[T]) WithBytesPerRecord(n int64) *RDD[T] {
	if n > 0 {
		r.bytesPerRecord = n
	}
	return r
}

// Cache marks the RDD's partitions for storage in the cluster block store on
// first materialization.
func (r *RDD[T]) Cache() *RDD[T] {
	r.mu.Lock()
	r.cached = true
	r.mu.Unlock()
	return r
}

// Unpersist removes the RDD's partitions from the block store and stops
// future caching.
func (r *RDD[T]) Unpersist() {
	r.mu.Lock()
	r.cached = false
	r.everCached = make(map[int]bool)
	r.mu.Unlock()
	for p := 0; p < r.partitions(); p++ {
		r.ctx.cl.Blocks().Remove(cluster.BlockID{RDD: r.id, Partition: p})
	}
}

// IsCached reports whether caching is enabled for this RDD.
func (r *RDD[T]) IsCached() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cached
}

// ensureDeps runs every upstream shuffle map stage that has not run yet.
// It is called driver-side before submitting a job.
func (r *RDD[T]) ensureDeps() error {
	for _, p := range r.prepare {
		if err := p(); err != nil {
			return err
		}
	}
	return nil
}

// materialize returns the partition's data, serving it from cache when
// possible and recomputing from lineage otherwise.
//
// Aliasing invariant: for a cached RDD the block store holds the canonical
// slice, and every materialize call returns a fresh shallow copy of it, so a
// downstream transformation that reassigns elements of its input (a mutating
// MapPartitions, say) cannot poison the cache for later readers. The copy is
// shallow: elements that are themselves pointers/slices must still not be
// deeply mutated. Uncached RDDs return the computed slice directly; callers
// must treat it as read-only too, since narrow transformations (Parallelize,
// Coalesce) may alias upstream storage.
func (r *RDD[T]) materialize(tc *cluster.TaskContext, partition int) ([]T, error) {
	r.mu.Lock()
	cached := r.cached
	r.mu.Unlock()
	if !cached {
		return r.compute(tc, partition)
	}

	id := cluster.BlockID{RDD: r.id, Partition: partition}
	if v, ns, ok := r.ctx.cl.Blocks().GetWithCost(id); ok {
		// A hit served from the disk tier (the partition had been spilled
		// under memory pressure) costs virtual disk time; charge it to this
		// attempt like a shuffle wait.
		tc.AddVirtualNS(ns)
		return copySlice(v.([]T)), nil
	}
	r.mu.Lock()
	wasCached := r.everCached[partition]
	r.mu.Unlock()
	if wasCached {
		// The block was stored before and has been evicted: this is a
		// lineage recomputation.
		cl := r.ctx.cl
		cl.Metrics().BlockRecomputes.Add(1)
		if cl.Tracer().Enabled() {
			cl.Tracer().Emit(cluster.Event{Kind: cluster.EventBlockRecompute,
				Task: tc.Task(), Attempt: tc.Attempt(), Executor: tc.Executor(),
				Detail: fmt.Sprintf("rdd%d/p%d (%s)", r.id, partition, r.name)})
		}
	}
	data, err := r.compute(tc, partition)
	if err != nil {
		return nil, err
	}
	// Cached partitions are hosted on the caching attempt's executor and
	// die with it; the next read recomputes from lineage like an eviction.
	// The gob codec makes the block spillable: under Config.SpillToDisk,
	// memory pressure moves it to the executor's disk tier instead of
	// dropping it to a lineage recompute.
	if r.ctx.cl.Blocks().PutSpillable(id, data, int64(len(data))*r.bytesPerRecord,
		tc.Executor(), cluster.GobCodec[[]T]()) {
		r.mu.Lock()
		r.everCached[partition] = true
		r.mu.Unlock()
		// The stored slice is now canonical; hand the caller a copy so
		// its mutations cannot reach the cache.
		return copySlice(data), nil
	}
	return data, nil
}

// copySlice returns a fresh shallow copy of s (nil stays nil).
func copySlice[T any](s []T) []T {
	if s == nil {
		return nil
	}
	out := make([]T, len(s))
	copy(out, s)
	return out
}

// RunJob materializes every partition of r and applies fn to each, returning
// the per-partition results in partition order. It is the primitive all
// actions are built on. The submitted stage carries a lineage tag
// ("<name>@rdd<id>") so traces and stage history identify which RDD a stage
// materialized; for fused narrow chains the name joins the fused operators
// with "+" up to the nearest boundary (e.g. "reports.map+filter@rdd7").
func RunJob[T, R any](r *RDD[T], name string, fn func(tc *cluster.TaskContext, partition int, data []T) (R, error)) ([]R, error) {
	if err := r.ensureDeps(); err != nil {
		return nil, fmt.Errorf("rdd %q: preparing dependencies: %w", r.name, err)
	}
	// The partition count is resolved only now, after ensureDeps: adaptive
	// coalescing may have shrunk an upstream shuffle's reduce side when its
	// map stage ran.
	numPartitions := r.partitions()
	// Results flow through the commit gate (PublishResult): with
	// speculation enabled, rival attempts of a partition run concurrently
	// and only the winning attempt's value lands in the slice.
	raw, _, err := r.ctx.cl.RunStageResults(fmt.Sprintf("%s@rdd%d", name, r.id), numPartitions, func(tc *cluster.TaskContext) error {
		data, err := r.materialize(tc, tc.Task())
		if err != nil {
			return err
		}
		tc.AddRecords(int64(len(data)))
		res, err := fn(tc, tc.Task(), data)
		if err != nil {
			return err
		}
		tc.PublishResult(res)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("rdd %q: %w", r.name, err)
	}
	results := make([]R, numPartitions)
	for i, v := range raw {
		if v != nil {
			results[i] = v.(R)
		}
	}
	return results, nil
}
