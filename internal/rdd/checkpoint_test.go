package rdd

import (
	"fmt"
	"strings"
	"testing"

	"adrdedup/internal/cluster"
)

// killAllButOne fails every live executor except the last, invalidating all
// executor-hosted shuffle outputs and cached partitions.
func killAllButOne(t *testing.T, cl *cluster.Cluster) {
	t.Helper()
	live := cl.LiveExecutors()
	if len(live) < 2 {
		t.Fatal("need at least 2 live executors to kill")
	}
	for _, e := range live[:len(live)-1] {
		if !cl.FailExecutor(e) {
			t.Fatalf("FailExecutor(%d) refused", e)
		}
	}
}

func recomputeStages(cl *cluster.Cluster) int {
	n := 0
	for _, s := range cl.StageHistory() {
		if strings.Contains(s.Name, ".recompute") {
			n++
		}
	}
	return n
}

// TestExecutorLossTransparentToJobs: an RDD pipeline run under executor kills
// must produce the same results and committed work counters as a kill-free
// run — recovery is invisible above the cluster layer.
func TestExecutorLossTransparentToJobs(t *testing.T) {
	run := func(killRate float64) ([]Pair[int, int], cluster.MetricsSnapshot) {
		cl := cluster.New(cluster.Config{
			Executors:           4,
			Seed:                23,
			ExecutorFailureRate: killRate,
		})
		ctx := NewContext(cl)
		data := make([]int, 400)
		for i := range data {
			data[i] = i
		}
		keyed := Map(Parallelize(ctx, data, 8), func(v int) Pair[int, int] { return KV(v%5, v) })
		sums := ReduceByKey(keyed, func(a, b int) int { return a + b }, 3)
		out, err := SortBy(sums, func(a, b Pair[int, int]) bool { return a.Key < b.Key }, 2).Collect()
		if err != nil {
			t.Fatalf("pipeline at kill rate %v: %v", killRate, err)
		}
		return out, cl.Metrics().Snapshot()
	}
	wantOut, clean := run(0)
	gotOut, faulty := run(0.3)

	if faulty.ExecutorFailures == 0 {
		t.Fatal("kill rate 0.3 lost no executors; test is vacuous")
	}
	if fmt.Sprint(gotOut) != fmt.Sprint(wantOut) {
		t.Errorf("results diverge under executor loss:\n got %v\nwant %v", gotOut, wantOut)
	}
	if clean.RecordsProcessed != faulty.RecordsProcessed ||
		clean.Comparisons != faulty.Comparisons ||
		clean.ShuffleRecordsWritten != faulty.ShuffleRecordsWritten ||
		clean.ShuffleBytesWritten != faulty.ShuffleBytesWritten ||
		clean.ShuffleBytesRead != faulty.ShuffleBytesRead {
		t.Errorf("work counters diverge under executor loss:\n clean  %+v\n faulty %+v", clean, faulty)
	}
	if faulty.RecomputedTasks > faulty.MapOutputsLost {
		t.Errorf("RecomputedTasks %d > MapOutputsLost %d: recovery recomputed more than it lost",
			faulty.RecomputedTasks, faulty.MapOutputsLost)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	cl := cluster.New(cluster.Config{Executors: 3})
	ctx := NewContext(cl)
	data := make([]int, 100)
	for i := range data {
		data[i] = i * 3
	}
	r := Map(Parallelize(ctx, data, 5), func(v int) int { return v + 1 })
	want, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if r.IsCheckpointed() {
		t.Fatal("IsCheckpointed before Checkpoint")
	}
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if !r.IsCheckpointed() {
		t.Fatal("IsCheckpointed false after Checkpoint")
	}
	if n := cl.Checkpoints().Len(); n != 5 {
		t.Fatalf("checkpoint store holds %d partitions, want 5", n)
	}
	got, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("checkpointed collect = %v, want %v", got, want)
	}
	// Downstream transformations of a checkpointed RDD still work (it is a
	// fusion boundary now, not fusable).
	doubled, err := Map(r, func(v int) int { return v * 2 }).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(doubled) != len(want) || doubled[0] != want[0]*2 {
		t.Errorf("downstream of checkpoint: %v", doubled[:3])
	}
}

func TestCheckpointEmptyPartitions(t *testing.T) {
	cl := cluster.New(cluster.Config{Executors: 2})
	ctx := NewContext(cl)
	r := Filter(Parallelize(ctx, []int{1, 2, 3, 4}, 2), func(v int) bool { return false })
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	got, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty checkpointed RDD collected %v", got)
	}
}

// TestCheckpointTruncatesRecovery is the lineage-truncation acceptance test:
// after Checkpoint, losing every executor that hosted the upstream shuffle
// outputs must NOT trigger map-stage recomputation — jobs read the reliable
// checkpoint store instead of re-fetching the shuffle. The contrast case
// (same pipeline, no checkpoint) must recompute.
func TestCheckpointTruncatesRecovery(t *testing.T) {
	build := func(cl *cluster.Cluster) *RDD[Pair[int, int]] {
		ctx := NewContext(cl)
		data := make([]int, 200)
		for i := range data {
			data[i] = i
		}
		keyed := Map(Parallelize(ctx, data, 6), func(v int) Pair[int, int] { return KV(v%4, v) })
		return ReduceByKey(keyed, func(a, b int) int { return a + b }, 3)
	}
	cfg := cluster.Config{Executors: 4, ExecutorRecoveryStages: 1000}

	// Contrast case: no checkpoint. Killing the hosts after the first job
	// forces lost-map-output recomputation on the second.
	cl := cluster.New(cfg)
	sums := build(cl)
	want, err := sums.Collect()
	if err != nil {
		t.Fatal(err)
	}
	killAllButOne(t, cl)
	if _, err := sums.Collect(); err != nil {
		t.Fatal(err)
	}
	if n := recomputeStages(cl); n == 0 {
		t.Fatal("contrast case recomputed nothing; test is vacuous")
	}

	// Checkpointed case: same kills, zero recompute stages.
	cl2 := cluster.New(cfg)
	sums2 := build(cl2)
	if err := sums2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	killAllButOne(t, cl2)
	got, err := sums2.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if n := recomputeStages(cl2); n != 0 {
		t.Errorf("checkpointed run still ran %d recompute stages; lineage not truncated", n)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("checkpointed recovery = %v, want %v", got, want)
	}
	if cl2.Metrics().CheckpointedPartitions.Load() != 3 {
		t.Errorf("CheckpointedPartitions = %d, want 3", cl2.Metrics().CheckpointedPartitions.Load())
	}
}

// TestCheckpointBeatsCacheUnderExecutorLoss: a cached partition dies with its
// executor (next read recomputes from lineage); a checkpointed partition does
// not. This pins the semantic difference between Cache and Checkpoint.
func TestCheckpointBeatsCacheUnderExecutorLoss(t *testing.T) {
	cfg := cluster.Config{Executors: 3, ExecutorRecoveryStages: 1000}

	cl := cluster.New(cfg)
	ctx := NewContext(cl)
	cached := Map(Parallelize(ctx, []int{1, 2, 3, 4, 5, 6}, 3), func(v int) int { return v * 2 }).Cache()
	if _, err := cached.Collect(); err != nil {
		t.Fatal(err)
	}
	killAllButOne(t, cl)
	if _, err := cached.Collect(); err != nil {
		t.Fatal(err)
	}
	if cl.Metrics().BlockRecomputes.Load() == 0 {
		t.Error("cached partitions survived executor loss; cache is not host-local")
	}

	cl2 := cluster.New(cfg)
	ctx2 := NewContext(cl2)
	ckpt := Map(Parallelize(ctx2, []int{1, 2, 3, 4, 5, 6}, 3), func(v int) int { return v * 2 })
	if err := ckpt.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	killAllButOne(t, cl2)
	if _, err := ckpt.Collect(); err != nil {
		t.Fatal(err)
	}
	if n := cl2.Metrics().BlockRecomputes.Load(); n != 0 {
		t.Errorf("checkpointed RDD recomputed %d blocks after executor loss", n)
	}
}

// TestCheckpointAfterSpillSurvivesExecutorLoss is the regression test for
// checkpoint-over-spill: a cached RDD whose partitions were displaced to
// executor-local spill disk must still checkpoint correctly — the checkpoint
// job reads the spilled blocks back through the block store (charging the
// reader) rather than recomputing or failing — and because the checkpoint
// store is reliable (driver-side), killing the executors that hosted the
// spill files afterwards must not lose data or trigger recompute stages.
func TestCheckpointAfterSpillSurvivesExecutorLoss(t *testing.T) {
	build := func(cl *cluster.Cluster) *RDD[Pair[int, int]] {
		ctx := NewContext(cl)
		data := make([]int, 400)
		for i := range data {
			data[i] = i
		}
		keyed := Map(Parallelize(ctx, data, 8), func(v int) Pair[int, int] { return KV(v%5, v) })
		return ReduceByKey(keyed, func(a, b int) int { return a + b }, 4)
	}

	// Oracle: same pipeline, no budget, no kills.
	clOracle := cluster.New(cluster.Config{Executors: 4})
	defer clOracle.Close()
	want, err := build(clOracle).Collect()
	if err != nil {
		t.Fatal(err)
	}

	// Budgeted run: a pathological 64-byte budget so every cached partition
	// is displaced to spill disk the moment it lands.
	cl := cluster.New(cluster.Config{
		Executors:              4,
		ExecutorRecoveryStages: 1000,
		SpillToDisk:            true,
		MemoryPerExecutorBytes: 64,
	})
	defer cl.Close()
	sums := build(cl).Cache()
	if _, err := sums.Collect(); err != nil {
		t.Fatal(err)
	}
	if cl.Blocks().SpilledLen() == 0 {
		t.Fatal("no cached partition spilled under a 64-byte budget; regression scenario is vacuous")
	}
	// The checkpoint job must read the spilled partitions back, not choke on
	// them. (This is the read path the issue asks to pin.)
	if err := sums.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint over spilled cached partitions: %v", err)
	}

	// Kill the hosts. Their spill files die with them (spill is
	// executor-local disk); only the checkpoint store survives.
	killAllButOne(t, cl)
	got, err := sums.Collect()
	if err != nil {
		t.Fatalf("collect after executor loss: %v", err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("post-kill collect = %v, want %v", got, want)
	}
	if n := recomputeStages(cl); n != 0 {
		t.Errorf("checkpointed run still ran %d recompute stages; spilled state leaked into lineage recovery", n)
	}
}

func TestCheckpointChargesVirtualTime(t *testing.T) {
	cl := cluster.New(cluster.Config{Executors: 2, NetworkMBps: 1}) // slow network
	ctx := NewContext(cl)
	data := make([]int64, 100000)
	r := Parallelize(ctx, data, 2)
	before := cl.VirtualElapsed()
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if delta := cl.VirtualElapsed() - before; delta <= 0 {
		t.Errorf("checkpoint write charged no virtual time (delta %v)", delta)
	}
	if cl.Metrics().CheckpointBytes.Load() == 0 {
		t.Error("CheckpointBytes not accounted")
	}
}

// FuzzCheckpointRoundTrip fuzzes the checkpoint partition codec. Invariants:
//
//   - decodePartition never panics, whatever bytes the store hands back
//     (corruption surfaces as an error, not a crash);
//   - encode → decode is the identity on the element values;
//   - decode → encode → decode is stable (idempotent re-encode) whenever the
//     first decode succeeds.
//
// The committed corpus under testdata/fuzz/FuzzCheckpointRoundTrip seeds
// valid encodings, truncations, and junk.
func FuzzCheckpointRoundTrip(f *testing.F) {
	valid, _ := encodePartition([]int64{0, -1, 1 << 62, 42})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))
	empty, _ := encodePartition([]int64{})
	f.Add(empty)
	f.Fuzz(func(t *testing.T, b []byte) {
		vals, err := decodePartition[int64](b) // must not panic
		if err != nil {
			return
		}
		re, err := encodePartition(vals)
		if err != nil {
			t.Fatalf("re-encoding decoded partition %v: %v", vals, err)
		}
		again, err := decodePartition[int64](re)
		if err != nil {
			t.Fatalf("decoding re-encoded partition: %v", err)
		}
		if len(again) != len(vals) {
			t.Fatalf("round trip changed length: %d -> %d", len(vals), len(again))
		}
		for i := range vals {
			if vals[i] != again[i] {
				t.Fatalf("round trip changed element %d: %d -> %d", i, vals[i], again[i])
			}
		}
	})
}
