package rdd

import (
	"fmt"
	"hash/fnv"
	"sync"

	"adrdedup/internal/cluster"
)

// Pair is a key-value record, the element type of keyed RDDs.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// Tuple2 is a generic 2-tuple, used by joins and Cartesian products.
type Tuple2[A, B any] struct {
	A A
	B B
}

// KV is a convenience constructor for Pair.
func KV[K comparable, V any](k K, v V) Pair[K, V] { return Pair[K, V]{Key: k, Value: v} }

// FNV-1a constants (matching hash/fnv's 64-bit variant).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv1a64 is hash/fnv's New64a/Write/Sum64 as an inlined loop over the
// string's bytes, with no hash-state or byte-slice allocation. Must stay
// bit-identical to the stdlib digest (pinned by TestHashKeyStringFNVPinned
// and FuzzHashKey), since shuffle bucket assignment depends on it.
func fnv1a64(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// hashKey hashes a comparable key to a bucket-friendly uint64. Integers use
// a splitmix64 finalizer; strings use an inlined FNV-1a over the raw bytes
// (no []byte conversion per record); other comparable types fall back to
// hashing their formatted representation.
func hashKey(k any) uint64 {
	switch v := k.(type) {
	case int:
		return splitmix64(uint64(v))
	case int8:
		return splitmix64(uint64(v))
	case int16:
		return splitmix64(uint64(v))
	case int32:
		return splitmix64(uint64(v))
	case int64:
		return splitmix64(uint64(v))
	case uint:
		return splitmix64(uint64(v))
	case uint8:
		return splitmix64(uint64(v))
	case uint16:
		return splitmix64(uint64(v))
	case uint32:
		return splitmix64(uint64(v))
	case uint64:
		return splitmix64(v)
	case string:
		return fnv1a64(v)
	case bool:
		if v {
			return splitmix64(1)
		}
		return splitmix64(0)
	default:
		h := fnv.New64a()
		fmt.Fprintf(h, "%v", v)
		return h.Sum64()
	}
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// PartitionBy hash-partitions a keyed RDD into numPartitions partitions
// (0 = default parallelism) through the shuffle service. This is the stage
// boundary: the parent's partitions are computed by a map stage whose output
// buckets are committed to the shuffle service; the returned RDD's partitions
// read (and are charged virtual network time for) those buckets.
//
// With Config.TargetPartitionMB set, the reduce side is adaptively coalesced:
// once the map stage has committed and per-partition byte sizes are known,
// undersized consecutive reduce partitions are merged toward the target
// (cluster.CoalescePlan) and each output partition fetches its whole group of
// hash buckets, in ascending bucket order. Coalescing changes only the
// partition boundaries, never record content or relative order.
func PartitionBy[K comparable, V any](r *RDD[Pair[K, V]], numPartitions int) *RDD[Pair[K, V]] {
	return partitionByOpt(r, numPartitions, true)
}

// partitionByOpt is PartitionBy with an explicit coalescing opt-out. Joins
// pass allowCoalesce=false: both join sides must agree on the exact
// partition -> key mapping, so their co-partitioning shuffles run with the
// declared count even when adaptive coalescing is on.
func partitionByOpt[K comparable, V any](r *RDD[Pair[K, V]], numPartitions int, allowCoalesce bool) *RDD[Pair[K, V]] {
	if numPartitions <= 0 {
		numPartitions = r.ctx.parallelism
	}
	if r.hashPartitioned && r.numPartitions == numPartitions {
		return r
	}
	ctx := r.ctx
	shID := ctx.cl.Shuffles().Register()
	// The gob codec makes this shuffle's blocks spillable under the
	// executor memory budget; without one every block would stay resident.
	ctx.cl.Shuffles().SetCodec(shID, cluster.GobCodec[[]Pair[K, V]]())
	coalesce := allowCoalesce && ctx.cl.CoalescingEnabled()
	// plan is written once, inside runMapStage's once.Do, and read only
	// after that (the sync.Once gives the happens-before edge): nil means
	// run with the declared partitioning, otherwise plan[p] lists the hash
	// buckets output partition p fetches.
	var plan [][]int
	bytesPerRecord := r.bytesPerRecord

	// mapOutput streams the parent partition's fused narrow chain straight
	// into the shuffle buckets (no intermediate slice), committing them
	// under the given map-task identity. The original map stage runs it for
	// every parent partition; the recompute callback re-runs it for exactly
	// the partitions whose committed output was lost with an executor,
	// producing bit-identical (mapTask, seq) block keys.
	mapOutput := func(tc *cluster.TaskContext, part int) error {
		buckets := make([][]Pair[K, V], numPartitions)
		var records int64
		err := r.streamInto(tc, part, nil, func(kv Pair[K, V]) error {
			records++
			b := int(hashKey(kv.Key) % uint64(numPartitions))
			buckets[b] = append(buckets[b], kv)
			return nil
		})
		if err != nil {
			return err
		}
		// Records are charged here, at the shuffle boundary, exactly as
		// when the input was materialized first.
		tc.AddRecords(records)
		for b, bucket := range buckets {
			if len(bucket) == 0 {
				continue
			}
			tc.WriteShuffleAs(shID, b, part, bucket,
				int64(len(bucket)), int64(len(bucket))*bytesPerRecord)
		}
		return nil
	}
	ctx.cl.Shuffles().SetRecompute(shID, func(lost []int) error {
		_, err := ctx.cl.RunRecoveryStage(
			fmt.Sprintf("%s.shuffleMap#%d.recompute@rdd%d", r.name, shID, r.id),
			len(lost), func(tc *cluster.TaskContext) error {
				return mapOutput(tc, lost[tc.Task()])
			})
		return err
	})

	var once sync.Once
	var onceErr error
	runMapStage := func() error {
		once.Do(func() {
			if onceErr = r.ensureDeps(); onceErr != nil {
				return
			}
			stage := fmt.Sprintf("%s.shuffleMap#%d@rdd%d", r.lineageName(), shID, r.id)
			_, onceErr = ctx.cl.RunStage(stage,
				r.partitions(), func(tc *cluster.TaskContext) error {
					return mapOutput(tc, tc.Task())
				})
			if onceErr == nil {
				ctx.cl.Shuffles().MarkDone(shID)
				if coalesce {
					plan = ctx.cl.CoalescePlan(shID, numPartitions, stage)
				}
			}
		})
		return onceErr
	}

	out := newRDD(ctx, r.name+".partitionBy", numPartitions,
		func(tc *cluster.TaskContext, p int) ([]Pair[K, V], error) {
			group := []int{p}
			if plan != nil {
				group = plan[p]
			}
			var blocks []any
			for _, q := range group {
				bs, err := tc.FetchShuffle(shID, q)
				if err != nil {
					return nil, err
				}
				blocks = append(blocks, bs...)
			}
			var n int
			for _, b := range blocks {
				n += len(b.([]Pair[K, V]))
			}
			out := make([]Pair[K, V], 0, n)
			for _, b := range blocks {
				out = append(out, b.([]Pair[K, V])...)
			}
			tc.SetWorkingSetBytes(int64(n) * bytesPerRecord)
			return out, nil
		}, []func() error{runMapStage})
	out.parts = func() int {
		if plan != nil {
			return len(plan)
		}
		return numPartitions
	}
	// A shuffle that may coalesce cannot promise partition == hash % count,
	// so downstream co-partitioning shortcuts must not trust it.
	out.hashPartitioned = !coalesce
	out.bytesPerRecord = bytesPerRecord
	return out
}

// ReduceByKey merges values per key with f, using map-side combining before
// the shuffle (like Spark's combiner) and a final merge after it.
func ReduceByKey[K comparable, V any](r *RDD[Pair[K, V]], f func(V, V) V, numPartitions int) *RDD[Pair[K, V]] {
	combine := func(in []Pair[K, V]) ([]Pair[K, V], error) {
		acc := make(map[K]V, len(in))
		order := make([]K, 0, len(in))
		for _, kv := range in {
			if cur, ok := acc[kv.Key]; ok {
				acc[kv.Key] = f(cur, kv.Value)
			} else {
				acc[kv.Key] = kv.Value
				order = append(order, kv.Key)
			}
		}
		out := make([]Pair[K, V], 0, len(acc))
		for _, k := range order {
			out = append(out, Pair[K, V]{Key: k, Value: acc[k]})
		}
		return out, nil
	}
	pre := MapPartitions(r, combine).SetName(r.name + ".combine")
	pre.bytesPerRecord = r.bytesPerRecord
	shuffled := PartitionBy(pre, numPartitions)
	out := MapPartitions(shuffled, combine).SetName(r.name + ".reduceByKey")
	out.hashPartitioned = shuffled.hashPartitioned
	return out
}

// AggregateByKey folds values per key into an accumulator of a different
// type: seqOp folds a value into a partition-local accumulator, combOp merges
// accumulators across partitions.
func AggregateByKey[K comparable, V, U any](r *RDD[Pair[K, V]], zero func() U,
	seqOp func(U, V) U, combOp func(U, U) U, numPartitions int) *RDD[Pair[K, U]] {
	local := MapPartitions(r, func(in []Pair[K, V]) ([]Pair[K, U], error) {
		acc := make(map[K]U, len(in))
		order := make([]K, 0, len(in))
		for _, kv := range in {
			cur, ok := acc[kv.Key]
			if !ok {
				cur = zero()
				order = append(order, kv.Key)
			}
			acc[kv.Key] = seqOp(cur, kv.Value)
		}
		out := make([]Pair[K, U], 0, len(acc))
		for _, k := range order {
			out = append(out, Pair[K, U]{Key: k, Value: acc[k]})
		}
		return out, nil
	}).SetName(r.name + ".aggLocal")
	local.bytesPerRecord = r.bytesPerRecord
	shuffled := PartitionBy(local, numPartitions)
	out := MapPartitions(shuffled, func(in []Pair[K, U]) ([]Pair[K, U], error) {
		acc := make(map[K]U, len(in))
		order := make([]K, 0, len(in))
		for _, kv := range in {
			if cur, ok := acc[kv.Key]; ok {
				acc[kv.Key] = combOp(cur, kv.Value)
			} else {
				acc[kv.Key] = kv.Value
				order = append(order, kv.Key)
			}
		}
		out := make([]Pair[K, U], 0, len(acc))
		for _, k := range order {
			out = append(out, Pair[K, U]{Key: k, Value: acc[k]})
		}
		return out, nil
	}).SetName(r.name + ".aggregateByKey")
	out.hashPartitioned = shuffled.hashPartitioned
	return out
}

// GroupByKey gathers all values of each key into one slice.
func GroupByKey[K comparable, V any](r *RDD[Pair[K, V]], numPartitions int) *RDD[Pair[K, []V]] {
	shuffled := PartitionBy(r, numPartitions)
	out := MapPartitions(shuffled, func(in []Pair[K, V]) ([]Pair[K, []V], error) {
		groups := make(map[K][]V, len(in))
		order := make([]K, 0, len(in))
		for _, kv := range in {
			if _, ok := groups[kv.Key]; !ok {
				order = append(order, kv.Key)
			}
			groups[kv.Key] = append(groups[kv.Key], kv.Value)
		}
		out := make([]Pair[K, []V], 0, len(groups))
		for _, k := range order {
			out = append(out, Pair[K, []V]{Key: k, Value: groups[k]})
		}
		return out, nil
	}).SetName(r.name + ".groupByKey")
	out.hashPartitioned = shuffled.hashPartitioned
	return out
}

// Join inner-joins two keyed RDDs on their keys: the result contains one
// (k, (v, w)) record per matching value combination. Both sides are
// co-partitioned into numPartitions hash partitions, then joined locally.
func Join[K comparable, V, W any](a *RDD[Pair[K, V]], b *RDD[Pair[K, W]], numPartitions int) *RDD[Pair[K, Tuple2[V, W]]] {
	if a.ctx != b.ctx {
		panic("rdd: Join across contexts")
	}
	if numPartitions <= 0 {
		numPartitions = a.ctx.parallelism
	}
	sa := partitionByOpt(a, numPartitions, false)
	sb := partitionByOpt(b, numPartitions, false)
	prepare := append(append([]func() error{}, sa.prepare...), sb.prepare...)
	bytesPerRecord := sa.bytesPerRecord + sb.bytesPerRecord
	cl := a.ctx.cl
	out := newRDD(a.ctx, fmt.Sprintf("join(%s,%s)", a.name, b.name), numPartitions,
		func(tc *cluster.TaskContext, p int) ([]Pair[K, Tuple2[V, W]], error) {
			left, err := sa.materialize(tc, p)
			if err != nil {
				return nil, err
			}
			right, err := sb.materialize(tc, p)
			if err != nil {
				return nil, err
			}
			tc.SetWorkingSetBytes(int64(len(left))*sa.bytesPerRecord +
				int64(len(right))*sb.bytesPerRecord)
			// Over-budget build side: probe in spilled chunks instead of one
			// all-resident hash table (output-identical; see extmerge.go).
			if cl.SpillingEnabled() && int64(len(left))*sa.bytesPerRecord > cl.ExecutorMemoryBytes() {
				return externalJoin(tc, cl, fmt.Sprintf("join p%d", p), left, right, sa.bytesPerRecord), nil
			}
			// Count per-key cardinalities first so every value slice and
			// the output are allocated exactly once at final size, instead
			// of growing from nil through the append doubling schedule.
			counts := make(map[K]int, len(left))
			for _, kv := range left {
				counts[kv.Key]++
			}
			byKey := make(map[K][]V, len(counts))
			for _, kv := range left {
				s, ok := byKey[kv.Key]
				if !ok {
					s = make([]V, 0, counts[kv.Key])
				}
				byKey[kv.Key] = append(s, kv.Value)
			}
			outN := 0
			for _, kw := range right {
				outN += counts[kw.Key]
			}
			out := make([]Pair[K, Tuple2[V, W]], 0, outN)
			for _, kw := range right {
				for _, v := range byKey[kw.Key] {
					out = append(out, Pair[K, Tuple2[V, W]]{
						Key:   kw.Key,
						Value: Tuple2[V, W]{A: v, B: kw.Value},
					})
				}
			}
			return out, nil
		}, prepare)
	out.hashPartitioned = true
	out.bytesPerRecord = bytesPerRecord
	return out
}

// CoGroup groups both RDDs' values per key: for every key present in either
// input, the result holds the full value slices from each side.
func CoGroup[K comparable, V, W any](a *RDD[Pair[K, V]], b *RDD[Pair[K, W]], numPartitions int) *RDD[Pair[K, Tuple2[[]V, []W]]] {
	if a.ctx != b.ctx {
		panic("rdd: CoGroup across contexts")
	}
	if numPartitions <= 0 {
		numPartitions = a.ctx.parallelism
	}
	sa := partitionByOpt(a, numPartitions, false)
	sb := partitionByOpt(b, numPartitions, false)
	prepare := append(append([]func() error{}, sa.prepare...), sb.prepare...)
	out := newRDD(a.ctx, fmt.Sprintf("cogroup(%s,%s)", a.name, b.name), numPartitions,
		func(tc *cluster.TaskContext, p int) ([]Pair[K, Tuple2[[]V, []W]], error) {
			left, err := sa.materialize(tc, p)
			if err != nil {
				return nil, err
			}
			right, err := sb.materialize(tc, p)
			if err != nil {
				return nil, err
			}
			vs := make(map[K][]V)
			ws := make(map[K][]W)
			var order []K
			seen := make(map[K]bool)
			for _, kv := range left {
				if !seen[kv.Key] {
					seen[kv.Key] = true
					order = append(order, kv.Key)
				}
				vs[kv.Key] = append(vs[kv.Key], kv.Value)
			}
			for _, kw := range right {
				if !seen[kw.Key] {
					seen[kw.Key] = true
					order = append(order, kw.Key)
				}
				ws[kw.Key] = append(ws[kw.Key], kw.Value)
			}
			out := make([]Pair[K, Tuple2[[]V, []W]], 0, len(order))
			for _, k := range order {
				out = append(out, Pair[K, Tuple2[[]V, []W]]{
					Key:   k,
					Value: Tuple2[[]V, []W]{A: vs[k], B: ws[k]},
				})
			}
			return out, nil
		}, prepare)
	out.hashPartitioned = true
	return out
}

// MapValues transforms only the value of each pair, preserving partitioning.
// Like Map, it is a narrow operator and fuses.
func MapValues[K comparable, V, W any](r *RDD[Pair[K, V]], f func(V) W) *RDD[Pair[K, W]] {
	out := mapLabeled(r, "mapValues", func(kv Pair[K, V]) Pair[K, W] {
		return Pair[K, W]{Key: kv.Key, Value: f(kv.Value)}
	})
	out.hashPartitioned = r.hashPartitioned
	return out
}

// Keys projects a keyed RDD to its keys (narrow, fuses).
func Keys[K comparable, V any](r *RDD[Pair[K, V]]) *RDD[K] {
	return mapLabeled(r, "keys", func(kv Pair[K, V]) K { return kv.Key })
}

// Values projects a keyed RDD to its values (narrow, fuses).
func Values[K comparable, V any](r *RDD[Pair[K, V]]) *RDD[V] {
	return mapLabeled(r, "values", func(kv Pair[K, V]) V { return kv.Value })
}
