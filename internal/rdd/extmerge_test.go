package rdd

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"adrdedup/internal/cluster"
)

// TestExternalSortMatchesSliceStable is the quick.Check property the external
// merge's correctness rests on: for random key sets and per-record byte sizes
// (which vary the effective run length against the fixed 256-byte budget, all
// the way down to one-record runs), the spilled-run merge must be
// element-identical to sort.SliceStable over the same input — including the
// order of equal keys, which the Value field pins to the input position.
func TestExternalSortMatchesSliceStable(t *testing.T) {
	cl := cluster.New(cluster.Config{Executors: 1, SpillToDisk: true, MemoryPerExecutorBytes: 256})
	defer cl.Close()
	less := func(a, b Pair[int64, int64]) bool { return a.Key < b.Key }

	prop := func(keys []int64, bprSeed uint16) bool {
		data := make([]Pair[int64, int64], len(keys))
		for i, k := range keys {
			// Few distinct keys -> many ties; Value = input position makes
			// any stability violation visible.
			data[i] = Pair[int64, int64]{Key: ((k % 16) + 16) % 16, Value: int64(i)}
		}
		bytesPerRecord := int64(bprSeed)%512 + 1

		want := append([]Pair[int64, int64](nil), data...)
		sort.SliceStable(want, func(i, j int) bool { return less(want[i], want[j]) })

		var got []Pair[int64, int64]
		_, err := cl.RunStage("extsort.prop", 1, func(tc *cluster.TaskContext) error {
			got = externalSortStable(tc, cl, "prop",
				append([]Pair[int64, int64](nil), data...), bytesPerRecord, less)
			return nil
		})
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(7)),
	}); err != nil {
		t.Fatal(err)
	}
}

// TestExternalSortSpillsAndCharges pins the mechanism: a partition 16x over
// budget must actually write spill runs (counters and virtual disk time),
// not quietly sort in memory.
func TestExternalSortSpillsAndCharges(t *testing.T) {
	cl := cluster.New(cluster.Config{Executors: 1, SpillToDisk: true, MemoryPerExecutorBytes: 256})
	defer cl.Close()
	data := make([]Pair[int64, int64], 64)
	for i := range data {
		data[i] = Pair[int64, int64]{Key: int64(len(data) - i), Value: int64(i)}
	}
	_, err := cl.RunStage("extsort.spills", 1, func(tc *cluster.TaskContext) error {
		out := externalSortStable(tc, cl, "spills", data, 64, func(a, b Pair[int64, int64]) bool {
			return a.Key < b.Key
		})
		for i := 1; i < len(out); i++ {
			if out[i].Key < out[i-1].Key {
				t.Errorf("output not sorted at %d: %v > %v", i, out[i-1], out[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := cl.Metrics().Snapshot()
	if m.SpillEvents == 0 || m.SpilledBytes == 0 {
		t.Fatalf("SpillEvents/SpilledBytes = %d/%d, want both > 0", m.SpillEvents, m.SpilledBytes)
	}
}

// spillEnv builds two contexts over the same logical data: one unbounded, one
// with a pathological per-executor budget that forces block-cache, shuffle,
// and external-merge spilling. Outputs must be bit-identical between them.
func spillEnv(t *testing.T) (unbounded, tight *Context) {
	t.Helper()
	cu := cluster.New(cluster.Config{Executors: 4, CoresPerExecutor: 1, Seed: 11})
	ct := cluster.New(cluster.Config{Executors: 4, CoresPerExecutor: 1, Seed: 11,
		SpillToDisk: true, MemoryPerExecutorBytes: 512})
	t.Cleanup(func() { cu.Close(); ct.Close() })
	return NewContext(cu), NewContext(ct)
}

func spillInput(ctx *Context) *RDD[Pair[string, int64]] {
	vals := make([]Pair[string, int64], 300)
	for i := range vals {
		vals[i] = Pair[string, int64]{Key: string(rune('a' + i%7)), Value: int64(i * 13 % 97)}
	}
	return Parallelize(ctx, vals, 6)
}

// TestSortBySpillMatchesUnbounded runs the same SortBy pipeline with and
// without the memory budget; the collected outputs must match exactly.
func TestSortBySpillMatchesUnbounded(t *testing.T) {
	un, ti := spillEnv(t)
	run := func(ctx *Context) []Pair[string, int64] {
		sorted := SortBy(spillInput(ctx), func(a, b Pair[string, int64]) bool {
			if a.Key != b.Key {
				return a.Key < b.Key
			}
			return a.Value < b.Value
		}, 4)
		out, err := sorted.Collect()
		if err != nil {
			t.Fatalf("collect: %v", err)
		}
		return out
	}
	want := run(un)
	got := run(ti)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d = %v, want %v", i, got[i], want[i])
		}
	}
	if m := ti.Cluster().Metrics().Snapshot(); m.SpillEvents == 0 {
		t.Fatal("budgeted run recorded no spills; external path not exercised")
	}
	if m := un.Cluster().Metrics().Snapshot(); m.SpillEvents != 0 {
		t.Fatalf("unbounded run recorded %d spills", m.SpillEvents)
	}
}

// TestSpillTraceEvents: a traced budgeted pipeline must surface the spill
// tier in the event log — "spill" events when blocks go to disk, and a
// "stage_coalesce" event when the AQE planner merges undersized reduce
// partitions — with the counters they summarize.
func TestSpillTraceEvents(t *testing.T) {
	cl := cluster.New(cluster.Config{
		Executors: 4, CoresPerExecutor: 1, Seed: 11, Trace: true,
		SpillToDisk: true, MemoryPerExecutorBytes: 512, TargetPartitionMB: 1,
	})
	defer cl.Close()
	sorted := SortBy(spillInput(NewContext(cl)), func(a, b Pair[string, int64]) bool {
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Value < b.Value
	}, 4)
	if _, err := sorted.Collect(); err != nil {
		t.Fatal(err)
	}
	kinds := map[cluster.EventKind]int{}
	for _, e := range cl.Tracer().Snapshot() {
		kinds[e.Kind]++
	}
	if kinds[cluster.EventSpill] == 0 {
		t.Error("no spill events in trace")
	}
	if kinds[cluster.EventSpillLoad] == 0 {
		t.Error("no spill_load events in trace")
	}
	if kinds[cluster.EventStageCoalesce] == 0 {
		t.Error("no stage_coalesce event in trace")
	}
	m := cl.Metrics().Snapshot()
	if int64(kinds[cluster.EventSpill]) != m.SpillEvents {
		t.Errorf("trace has %d spill events, metrics count %d", kinds[cluster.EventSpill], m.SpillEvents)
	}
	if m.CoalescedPartitions == 0 {
		t.Error("stage_coalesce emitted but CoalescedPartitions is 0")
	}
}

// TestJoinSpillMatchesUnbounded does the same for the external join path.
func TestJoinSpillMatchesUnbounded(t *testing.T) {
	un, ti := spillEnv(t)
	run := func(ctx *Context) []Pair[string, Tuple2[int64, int64]] {
		left := spillInput(ctx)
		right := Map(spillInput(ctx), func(p Pair[string, int64]) Pair[string, int64] {
			return Pair[string, int64]{Key: p.Key, Value: -p.Value}
		})
		// Keep the join's own output small enough to collect but its build
		// side over budget (300 records x 64 B > 512 B).
		joined := Join(left, Filter(right, func(p Pair[string, int64]) bool {
			return p.Value%5 == 0
		}), 3)
		out, err := joined.Collect()
		if err != nil {
			t.Fatalf("collect: %v", err)
		}
		return out
	}
	want := run(un)
	got := run(ti)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d = %v, want %v", i, got[i], want[i])
		}
	}
	if m := ti.Cluster().Metrics().Snapshot(); m.SpillEvents == 0 {
		t.Fatal("budgeted join recorded no spills; external path not exercised")
	}
}
