package rdd

import (
	"fmt"
	"testing"

	"adrdedup/internal/cluster"
)

// runCountedPipeline executes a representative shuffle pipeline (map →
// reduceByKey → counting action) on a fresh cluster with the given failure
// rate and returns the final metrics snapshot. Everything except the failure
// rate — data, seed, partitioning — is held fixed.
func runCountedPipeline(t *testing.T, failureRate float64) cluster.MetricsSnapshot {
	t.Helper()
	cl := cluster.New(cluster.Config{
		Executors:      4,
		FailureRate:    failureRate,
		MaxTaskRetries: 50,
		Seed:           42,
	})
	ctx := NewContext(cl)

	data := make([]int, 600)
	for i := range data {
		data[i] = i
	}
	base := Parallelize(ctx, data, 6).SetName("base")
	keyed := Map(base, func(v int) Pair[int, int] { return KV(v%7, v) }).SetName("keyed")
	sums := ReduceByKey(keyed, func(a, b int) int { return a + b }, 4)
	counts, err := RunJob(sums, "tally", func(tc *cluster.TaskContext, p int, in []Pair[int, int]) (int, error) {
		tc.AddRecords(int64(len(in)))
		for range in {
			tc.AddComparisons(3)
		}
		return len(in), nil
	})
	if err != nil {
		t.Fatalf("pipeline at failure rate %v: %v", failureRate, err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 7 {
		t.Fatalf("pipeline at failure rate %v produced %d keys, want 7", failureRate, total)
	}
	return cl.Metrics().Snapshot()
}

// TestFaultInjectionCounterInvariance is the acceptance check for
// attempt-scoped metrics: running the identical job with and without fault
// injection must yield bit-identical work counters, because failed attempts'
// deltas are discarded rather than committed. Only the launch/failure
// counters may differ.
func TestFaultInjectionCounterInvariance(t *testing.T) {
	clean := runCountedPipeline(t, 0)
	faulty := runCountedPipeline(t, 0.3)

	if faulty.TaskFailures == 0 {
		t.Fatal("failure rate 0.3 injected no failures; test is vacuous")
	}
	if faulty.TasksLaunched <= clean.TasksLaunched {
		t.Errorf("TasksLaunched: faulty %d should exceed clean %d",
			faulty.TasksLaunched, clean.TasksLaunched)
	}
	if clean.TaskFailures != 0 {
		t.Errorf("clean run reported %d failures", clean.TaskFailures)
	}

	invariant := []struct {
		name          string
		clean, faulty int64
	}{
		{"Comparisons", clean.Comparisons, faulty.Comparisons},
		{"RecordsProcessed", clean.RecordsProcessed, faulty.RecordsProcessed},
		{"ShuffleRecordsWritten", clean.ShuffleRecordsWritten, faulty.ShuffleRecordsWritten},
		{"ShuffleBytesWritten", clean.ShuffleBytesWritten, faulty.ShuffleBytesWritten},
		{"ShuffleBytesRead", clean.ShuffleBytesRead, faulty.ShuffleBytesRead},
		{"StagesRun", clean.StagesRun, faulty.StagesRun},
	}
	for _, c := range invariant {
		if c.clean != c.faulty {
			t.Errorf("%s differs under fault injection: clean %d, faulty %d",
				c.name, c.clean, c.faulty)
		}
	}
	if clean.Comparisons == 0 || clean.ShuffleRecordsWritten == 0 || clean.ShuffleBytesRead == 0 {
		t.Errorf("pipeline exercised no counters: %+v", clean)
	}
}

// TestCachedPartitionsSurviveMutatingMapPartitions is the regression test for
// the materialize aliasing bug: a downstream MapPartitions that mutates its
// input slice in place must not corrupt the cached parent partition, because
// materialize hands out defensive copies of cached blocks.
func TestCachedPartitionsSurviveMutatingMapPartitions(t *testing.T) {
	ctx := NewContext(cluster.New(cluster.Config{Executors: 2}))

	parent := Map(Parallelize(ctx, []int{1, 2, 3, 4, 5, 6}, 3),
		func(v int) int { return v * 10 }).Cache()
	want, err := parent.Collect() // materializes the cache
	if err != nil {
		t.Fatal(err)
	}

	// An in-place mutator, as user code might legitimately write: sorting,
	// zeroing, or overwriting its input buffer.
	mutated, err := MapPartitions(parent, func(in []int) ([]int, error) {
		for i := range in {
			in[i] = -1
		}
		return in, nil
	}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range mutated {
		if v != -1 {
			t.Fatalf("mutator did not see its own writes: %v", mutated)
		}
	}

	got, err := parent.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("cached parent corrupted by downstream mutation:\n got %v\nwant %v", got, want)
	}
	if hits := ctx.Cluster().Metrics().BlockHits.Load(); hits == 0 {
		t.Error("second Collect did not hit the cache; aliasing regression not exercised")
	}
}

// TestStageNamesCarryLineageTags checks that RDD jobs tag their stage names
// with the RDD id, so traces and stage history can be joined back to the
// lineage graph.
func TestStageNamesCarryLineageTags(t *testing.T) {
	cl := cluster.New(cluster.Config{Executors: 2})
	ctx := NewContext(cl)
	r := Parallelize(ctx, []int{1, 2, 3}, 2).SetName("nums")
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	h := cl.StageHistory()
	if len(h) == 0 {
		t.Fatal("no stage history")
	}
	want := fmt.Sprintf("@rdd%d", r.ID())
	last := h[len(h)-1].Name
	if !contains(last, want) {
		t.Errorf("stage name %q missing lineage tag %q", last, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
